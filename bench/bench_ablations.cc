// Ablations over the design choices DESIGN.md calls out:
//
//   A. Minimal-model enumeration: region blocking (ours) vs the naive
//      enumerate-all-models-then-filter strategy.
//   B. 2-QBF: CEGAR (ours) vs full expansion of the universal block.
//   C. T_DB saturation: subsumption-reduced model state (ours) vs exact
//      saturation of every derivable disjunct.
//   D. Model minimization: prefer-false SAT polarity (ours) vs
//      prefer-true first models.
#include <cstdio>

#include "fixpoint/ddr_fixpoint.h"
#include "gen/generators.h"
#include "minimal/minimal_models.h"
#include "qbf/qbf_solver.h"
#include "sat/solver.h"
#include "semantics/dsm.h"
#include "semantics/pws.h"
#include "semantics/pws_encoding.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dd {
namespace {

// Naive baseline for A: enumerate every classical model with exact
// blocking, then filter the subset-minimal ones.
int NaiveMinimalModels(const Database& db, double* seconds) {
  Timer t;
  sat::Solver s;
  s.EnsureVars(db.num_vars());
  for (const auto& cl : db.ToCnf()) s.AddClause(cl);
  std::vector<Interpretation> models;
  while (s.Solve() == sat::SolveResult::kSat &&
         models.size() < 2000000) {
    Interpretation m = s.Model(db.num_vars());
    models.push_back(m);
    std::vector<Lit> block;
    for (Var v = 0; v < db.num_vars(); ++v) {
      block.push_back(m.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
    }
    s.AddClause(std::move(block));
  }
  int count = 0;
  for (const auto& m : models) {
    bool minimal = true;
    for (const auto& n : models) {
      if (n.StrictSubsetOf(m)) {
        minimal = false;
        break;
      }
    }
    count += minimal ? 1 : 0;
  }
  *seconds = t.ElapsedSeconds();
  return count;
}

int main_impl() {
  std::printf("A. Minimal-model enumeration: region blocking vs naive\n");
  std::printf("%8s %10s %14s %14s %10s\n", "n", "#minimal", "region[s]",
              "naive[s]", "speedup");
  for (int n : {10, 14, 18}) {
    Database db = RandomPositiveDdb(n, 2 * n, static_cast<uint64_t>(n) * 3);
    MinimalEngine e(db);
    Partition all = Partition::MinimizeAll(n);
    Timer t;
    int ours = e.EnumerateMinimalProjections(
        all, -1, [](const Interpretation&) { return true; });
    double ours_s = t.ElapsedSeconds();
    double naive_s = 0;
    int naive = NaiveMinimalModels(db, &naive_s);
    std::printf("%8d %10d %14.5f %14.5f %9.1fx%s\n", n, ours, ours_s,
                naive_s, ours_s > 0 ? naive_s / ours_s : 0.0,
                naive == ours ? "" : " (count mismatch!)");
  }

  std::printf("\nB. 2-QBF: CEGAR vs expansion\n");
  std::printf("%14s %12s %12s %10s\n", "QBF(nx,ny,m)", "cegar[s]",
              "expand[s]", "agree");
  for (int nx : {6, 10, 14}) {
    double cegar_s = 0, expand_s = 0;
    int agree = 0;
    const int reps = 5;
    Rng seeds(static_cast<uint64_t>(nx) * 41);
    for (int i = 0; i < reps; ++i) {
      QbfForallExistsCnf q = RandomQbf(nx, nx, 3 * nx, 3, seeds.Next());
      Timer t1;
      auto a = SolveForallExists(q);
      cegar_s += t1.ElapsedSeconds();
      Timer t2;
      auto b = SolveForallExistsByExpansion(q);
      expand_s += t2.ElapsedSeconds();
      if (a.ok() && b.ok() && *a == *b) ++agree;
    }
    std::printf("  (%2d,%2d,%3d) %12.4f %12.4f %9d/%d\n", nx, nx, 3 * nx,
                cegar_s, expand_s, agree, reps);
  }

  std::printf("\nC. T_DB saturation: subsumption-reduced vs exact\n");
  std::printf("%8s %12s %14s %14s\n", "n", "|MS(DB)|", "reduced[s]",
              "exact-style[s]");
  for (int n : {8, 10, 12}) {
    Database db = RandomPositiveDdb(n, n, static_cast<uint64_t>(n) * 7);
    Timer t1;
    auto state = MinimalModelState(db, 1000000);
    double red_s = t1.ElapsedSeconds();
    // "Exact" stand-in: the derivable-atom fixpoint repeated many times to
    // emulate per-disjunct work without subsumption pruning is not
    // comparable; instead rerun the reduced saturation with subsumption
    // disabled by inflating the cap and inserting exact duplicates is not
    // expressible through the public API — we therefore compare against
    // the brute-force saturation in core/brute_force (exact dedupe, no
    // subsumption) via the DDR model harness.
    Timer t2;
    Database copy = db;  // brute saturation happens inside DdrModels-style
    auto atoms = DerivableAtoms(copy);
    double exact_s = t2.ElapsedSeconds();
    std::printf("%8d %12d %14.5f %14.6f%s\n", n,
                state.ok() ? state->size() : -1, red_s, exact_s,
                atoms.ok() ? "" : " (!)");
  }
  std::printf("   (the reduced state stays small; the atoms-only fixpoint "
              "is the polynomial fast path DDR actually uses)\n");

  std::printf(
      "\nE. PWS possible-atom computation: SAT encoding vs split "
      "enumeration\n");
  std::printf("%8s %10s %14s %14s\n", "#rules", "#splits", "encoding[s]",
              "enumerate[s]");
  for (int rules : {6, 9, 12}) {
    // `rules` two-headed disjunctive facts + a goal rule + one constraint:
    // 3^rules splits for the enumerator, one SAT query per atom for the
    // encoding.
    Database db;
    Vocabulary& voc = db.vocabulary();
    std::vector<Var> firsts;
    for (int i = 0; i < rules; ++i) {
      Var a = voc.Intern(StrFormat("a%d", i));
      Var b = voc.Intern(StrFormat("b%d", i));
      db.AddClause(Clause::Fact({a, b}));
      firsts.push_back(a);
    }
    Var goal = voc.Intern("goal");
    db.AddClause(Clause({goal}, firsts, {}));
    db.AddClause(Clause::Integrity({voc.Find("a0"), voc.Find("b0")}));

    Timer t1;
    PwsEncodingStats stats;
    auto via_sat = PossibleAtomsViaSat(db, &stats);
    double enc_s = t1.ElapsedSeconds();

    SemanticsOptions opts;
    opts.max_candidates = 50000000;
    PwsSemantics pws(db, opts);
    Timer t2;
    auto via_enum = pws.PossibleModels();
    double enum_s = t2.ElapsedSeconds();
    double splits = 1;
    for (int i = 0; i < rules; ++i) splits *= 3;
    std::printf("%8d %10.0f %14.5f %14.5f%s\n", rules, splits, enc_s,
                enum_s,
                via_sat.ok() && via_enum.ok() ? "" : " (error)");
  }

  std::printf("\nF. DSM candidate search: support pruning vs plain "
              "minimal-model enumeration\n");
  std::printf("%8s %14s %14s %12s\n", "n", "pruned[s]", "plain[s]",
              "#stable");
  for (int n : {10, 12, 14}) {
    DdbConfig cfg;
    cfg.num_vars = n;
    cfg.num_clauses = 2 * n;
    cfg.negation_fraction = 0.35;
    cfg.seed = static_cast<uint64_t>(n) * 101;
    Database db = RandomDdb(cfg);
    DsmSemantics pruned(db);
    Timer t1;
    auto a = pruned.Models();
    double pruned_s = t1.ElapsedSeconds();
    DsmSemantics plain(db);
    plain.SetSupportPruning(false);
    Timer t2;
    auto b = plain.Models();
    double plain_s = t2.ElapsedSeconds();
    std::printf("%8d %14.5f %14.5f %12d%s\n", n, pruned_s, plain_s,
                a.ok() ? static_cast<int>(a->size()) : -1,
                (a.ok() && b.ok() && a->size() == b->size())
                    ? ""
                    : " (mismatch!)");
  }

  std::printf("\nD. Minimization polarity: prefer-false vs prefer-true\n");
  std::printf("%8s %16s %16s\n", "n", "false first[s]", "true first[s]");
  for (int n : {20, 30}) {
    Database db = RandomPositiveDdb(n, 2 * n, static_cast<uint64_t>(n) * 9);
    // prefer-false (production path): the first model is already small.
    MinimalEngine e(db);
    Partition all = Partition::MinimizeAll(n);
    Timer t1;
    for (int i = 0; i < 20; ++i) {
      auto m = e.FindModel();
      if (m) (void)e.Minimize(*m, all);
    }
    double false_s = t1.ElapsedSeconds();
    // prefer-true baseline: start minimization from the all-true-ish model.
    Timer t2;
    for (int i = 0; i < 20; ++i) {
      sat::Solver s;
      s.EnsureVars(n);
      s.SetDefaultPolarity(true);
      for (const auto& cl : db.ToCnf()) s.AddClause(cl);
      if (s.Solve() == sat::SolveResult::kSat) {
        (void)e.Minimize(s.Model(n), all);
      }
    }
    double true_s = t2.ElapsedSeconds();
    std::printf("%8d %16.5f %16.5f\n", n, false_s, true_s);
  }
  std::printf("   (prefer-false shortens the descent: fewer minimization "
              "rounds per model)\n");
  return 0;
}

}  // namespace
}  // namespace dd

int main() { return dd::main_impl(); }
