// Batched query evaluation A/B (docs/BATCHING.md), four sections:
//
//   1. literals — the same literal workload runs once through
//      Reasoner::AnswerBatch (canonicalize + dedupe + answer cache +
//      slice-grouped model banks, groups in parallel) and once through
//      the sequential one-query-at-a-time entry points, at batch sizes
//      {1, 16, 256, 4096} across all eleven semantics;
//   2. formulas — a compound-formula workload (conjunctions,
//      disjunctions, negations) A/B'd the same way, so the
//      conjunct-splitting pipeline stage faces measurement too (the
//      literal-only leg never split anything);
//   3. brave — the same formula shapes through AnswerBatchCredulous vs a
//      sequential InfersCredulously replay;
//   4. bank reuse — repeated NON-identical batches on one reasoner with
//      the cross-batch model-bank store on (warm) vs off (cold, every
//      batch rebuilds its group banks), answer cache disabled in both
//      legs so the store is the only lever. GCWA/EGCWA at batch size
//      256; the audit requires warm to beat cold by >= 2x from the
//      second round on, with byte-identical answers.
//
// The printed tables report wall-clock for both legs and the amortized
// speedup; the built-in audit asserts, for every row, that (a) the batch
// answers are identical to the sequential answers wherever both are
// definite and (b) the answer cache holds no kUnknown entry — a violation
// exits nonzero, so the harness doubles as an end-to-end soundness check.
//
// Flags: --seed=N --threads=N --timeout-ms=N (see bench_util.h; the
// timeout bounds each leg per row — the batch leg via the whole-batch
// budget, the sequential leg via an elapsed-time watchdog — and marks cut
// rows "timeout": true). Results land in BENCH_batch.json (schema 2) for
// scripts/run_experiments.sh.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "batch/query_batch.h"
#include "core/reasoner.h"
#include "gen/generators.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dd {
namespace {

using bench::BenchArgs;
using bench::BenchJsonWriter;
using bench::BenchRecord;

/// Instance shape per semantics: positive deductive databases keep all
/// eleven applicable; the Σ₂ᵖ-flavoured and enumeration-heavy kinds get
/// smaller instances so the sequential baseline finishes at 4096.
struct KindCfg {
  SemanticsKind kind;
  int vars;
  int clauses;
};

const KindCfg kKinds[] = {
    {SemanticsKind::kCwa, 14, 22},  {SemanticsKind::kGcwa, 20, 48},
    {SemanticsKind::kEgcwa, 20, 48}, {SemanticsKind::kCcwa, 14, 22},
    {SemanticsKind::kEcwa, 12, 20}, {SemanticsKind::kDdr, 18, 28},
    {SemanticsKind::kPws, 18, 28},  {SemanticsKind::kPerf, 10, 16},
    {SemanticsKind::kIcwa, 10, 16}, {SemanticsKind::kDsm, 12, 20},
    {SemanticsKind::kPdsm, 10, 16},
};

const int kBatchSizes[] = {1, 16, 256, 4096};

/// A random literal workload: n queries drawn uniformly over both
/// polarities of the database's atoms. Large n repeats queries heavily —
/// exactly the regime batching amortizes.
std::vector<batch::BatchQuery> LiteralWorkload(int n, int vars, Rng* rng) {
  std::vector<batch::BatchQuery> qs;
  qs.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int v = static_cast<int>(rng->Below(vars));
    qs.push_back({rng->Chance(0.5) ? StrFormat("p%d", v)
                                   : StrFormat("not p%d", v),
                  true});
  }
  return qs;
}

/// A compound-formula workload: conjunctions, disjunctions and negated
/// atoms over the database's vocabulary. Conjunctions exercise the
/// skeptical pipeline's conjunct splitting; disjunctions exercise the
/// brave pipeline's disjunct splitting; repeats (and commuted repeats,
/// which canonicalize equal) exercise dedupe.
std::vector<batch::BatchQuery> FormulaWorkload(int n, int vars, Rng* rng) {
  auto lit = [&]() {
    const int v = static_cast<int>(rng->Below(vars));
    return rng->Chance(0.5) ? StrFormat("p%d", v) : StrFormat("~p%d", v);
  };
  std::vector<batch::BatchQuery> qs;
  qs.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double roll = rng->NextDouble();
    std::string text;
    if (roll < 0.4) {
      text = lit() + " & " + lit();
    } else if (roll < 0.7) {
      text = lit() + " | " + lit();
    } else {
      text = lit();
    }
    qs.push_back({std::move(text), false});
  }
  return qs;
}

int g_audit_failures = 0;

void Audit(bool ok, const char* what, const char* kind, int n) {
  if (!ok) {
    ++g_audit_failures;
    std::fprintf(stderr, "AUDIT FAILURE [%s n=%d]: %s\n", kind, n, what);
  }
}

}  // namespace

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  BenchJsonWriter out("batch");
  std::printf(
      "Batched vs sequential query evaluation (seed=%llu, threads=%d)\n"
      "%-6s %6s | %10s %10s %8s | %6s %6s %6s\n",
      static_cast<unsigned long long>(args.seed), args.threads, "sem", "n",
      "batch ms", "seq ms", "speedup", "uniq", "groups", "hits");

  for (const KindCfg& cfg : kKinds) {
    const char* kind_name = SemanticsKindName(cfg.kind);
    Database db = RandomPositiveDdb(
        cfg.vars, cfg.clauses, DeriveSeed(args.seed, cfg.vars * 131 + 7));
    for (int n : kBatchSizes) {
      Timer gen_timer;
      Rng rng(DeriveSeed(args.seed, static_cast<uint64_t>(n) * 211 +
                                        static_cast<uint64_t>(cfg.kind)));
      std::vector<batch::BatchQuery> qs = LiteralWorkload(n, cfg.vars, &rng);
      const double gen_ms = gen_timer.ElapsedSeconds() * 1e3;

      // Batch leg: one AnswerBatch call on a fresh reasoner.
      Reasoner rb(db);
      batch::BatchOptions bo;
      bo.num_threads = args.threads;
      bo.deadline_ms = args.timeout_ms;
      Timer batch_timer;
      Result<batch::BatchAnswer> batch = rb.AnswerBatch(cfg.kind, qs, bo);
      const double batch_ms = batch_timer.ElapsedSeconds() * 1e3;
      if (!batch.ok()) {
        Audit(false, batch.status().ToString().c_str(), kind_name, n);
        continue;
      }
      bool timeout = batch->stats.unknowns > 0;

      // Sequential leg: the one-query-at-a-time entry points on an equally
      // fresh reasoner (same engine caches and sessions as any CLI user).
      Reasoner rs(db);
      std::vector<Trilean> seq(qs.size(), Trilean::kUnknown);
      bool seq_complete = true;
      Timer seq_timer;
      for (size_t i = 0; i < qs.size(); ++i) {
        if (args.timeout_ms > 0 &&
            seq_timer.ElapsedSeconds() * 1e3 > args.timeout_ms) {
          seq_complete = false;
          timeout = true;
          break;
        }
        Result<bool> r = rs.InfersLiteral(cfg.kind, qs[i].text);
        if (!r.ok()) {
          Audit(false, r.status().ToString().c_str(), kind_name, n);
          seq_complete = false;
          break;
        }
        seq[i] = TrileanFromBool(*r);
      }
      const double seq_ms = seq_timer.ElapsedSeconds() * 1e3;

      // Audit (a): batch answers equal sequential answers wherever both
      // legs produced a definite verdict.
      if (seq_complete) {
        for (size_t i = 0; i < qs.size(); ++i) {
          if (batch->answers[i] == Trilean::kUnknown) continue;
          Audit(batch->answers[i] == seq[i],
                "batch/sequential answer mismatch", kind_name, n);
          if (batch->answers[i] != seq[i]) break;
        }
      }
      // Audit (b): "Unknown is never cached".
      if (rb.answer_cache() != nullptr) {
        rb.answer_cache()->ForEach([&](const std::string& key, Trilean t) {
          Audit(t != Trilean::kUnknown, "kUnknown found in answer cache",
                kind_name, n);
        });
      }

      const double speedup = batch_ms > 0 ? seq_ms / batch_ms : 0.0;
      std::printf("%-6s %6d | %10.2f %10.2f %7.2fx | %6lld %6lld %6lld%s\n",
                  kind_name, n, batch_ms, seq_ms, speedup,
                  static_cast<long long>(batch->stats.unique_queries),
                  static_cast<long long>(batch->stats.groups),
                  static_cast<long long>(batch->stats.cache_hits),
                  timeout ? "  (timeout)" : "");

      BenchRecord rec;
      rec.name = StrFormat("%s/literals", kind_name);
      rec.n = n;
      rec.wall_ms = batch_ms;
      rec.oracle_calls = rb.TotalStats().sat_calls;
      rec.cache_hits = batch->stats.cache_hits;
      rec.timeout = timeout;
      rec.AddPhase("generate", gen_ms)
          .AddPhase("batch", batch_ms)
          .AddPhase("sequential", seq_ms);
      obs::MetricsRegistry reg;
      rb.PublishMetrics(&reg);
      rec.metrics = reg.Snapshot();
      out.Add(std::move(rec));
    }
  }

  // --- Formula + brave workloads -------------------------------------------
  // The literal section never splits a connective; these legs put the
  // conjunct-splitting (skeptical) and disjunct-splitting (brave) pipeline
  // stages under measurement, auditing both against sequential replays.
  const int kFormulaSizes[] = {16, 256};
  std::printf(
      "\nFormula workloads (skeptical vs brave, batch vs sequential)\n"
      "%-6s %-6s %6s | %10s %10s %8s | %6s %6s\n",
      "sem", "mode", "n", "batch ms", "seq ms", "speedup", "uniq", "split");
  for (const KindCfg& cfg : kKinds) {
    const char* kind_name = SemanticsKindName(cfg.kind);
    Database db = RandomPositiveDdb(
        cfg.vars, cfg.clauses, DeriveSeed(args.seed, cfg.vars * 131 + 7));
    for (int n : kFormulaSizes) {
      for (int brave = 0; brave <= 1; ++brave) {
        Rng rng(DeriveSeed(args.seed, static_cast<uint64_t>(n) * 977 +
                                          static_cast<uint64_t>(cfg.kind) * 2 +
                                          static_cast<uint64_t>(brave)));
        std::vector<batch::BatchQuery> qs =
            FormulaWorkload(n, cfg.vars, &rng);

        Reasoner rb(db);
        batch::BatchOptions bo;
        bo.num_threads = args.threads;
        bo.deadline_ms = args.timeout_ms;
        Timer batch_timer;
        Result<batch::BatchAnswer> batch =
            brave ? rb.AnswerBatchCredulous(cfg.kind, qs, bo)
                  : rb.AnswerBatch(cfg.kind, qs, bo);
        const double batch_ms = batch_timer.ElapsedSeconds() * 1e3;
        if (!batch.ok()) {
          Audit(false, batch.status().ToString().c_str(), kind_name, n);
          continue;
        }
        bool timeout = batch->stats.unknowns > 0;

        Reasoner rs(db);
        std::vector<Trilean> seq(qs.size(), Trilean::kUnknown);
        bool seq_complete = true;
        Timer seq_timer;
        for (size_t i = 0; i < qs.size(); ++i) {
          if (args.timeout_ms > 0 &&
              seq_timer.ElapsedSeconds() * 1e3 > args.timeout_ms) {
            seq_complete = false;
            timeout = true;
            break;
          }
          if (brave) {
            Result<Trilean> r =
                rs.InfersCredulously(cfg.kind, qs[i].text, QueryOptions());
            if (!r.ok()) {
              Audit(false, r.status().ToString().c_str(), kind_name, n);
              seq_complete = false;
              break;
            }
            seq[i] = *r;
          } else {
            Result<bool> r = rs.InfersFormula(cfg.kind, qs[i].text);
            if (!r.ok()) {
              Audit(false, r.status().ToString().c_str(), kind_name, n);
              seq_complete = false;
              break;
            }
            seq[i] = TrileanFromBool(*r);
          }
        }
        const double seq_ms = seq_timer.ElapsedSeconds() * 1e3;

        if (seq_complete) {
          for (size_t i = 0; i < qs.size(); ++i) {
            if (batch->answers[i] == Trilean::kUnknown) continue;
            Audit(batch->answers[i] == seq[i],
                  brave ? "brave batch/sequential answer mismatch"
                        : "formula batch/sequential answer mismatch",
                  kind_name, n);
            if (batch->answers[i] != seq[i]) break;
          }
        }
        if (rb.answer_cache() != nullptr) {
          rb.answer_cache()->ForEach([&](const std::string& key, Trilean t) {
            Audit(t != Trilean::kUnknown, "kUnknown found in answer cache",
                  kind_name, n);
          });
        }

        const double speedup = batch_ms > 0 ? seq_ms / batch_ms : 0.0;
        const int64_t splits = brave ? batch->stats.disjunct_splits
                                     : batch->stats.conjunct_splits;
        std::printf("%-6s %-6s %6d | %10.2f %10.2f %7.2fx | %6lld %6lld%s\n",
                    kind_name, brave ? "brave" : "skept", n, batch_ms, seq_ms,
                    speedup,
                    static_cast<long long>(batch->stats.unique_queries),
                    static_cast<long long>(splits),
                    timeout ? "  (timeout)" : "");

        BenchRecord rec;
        rec.name = StrFormat("%s/%s", kind_name,
                             brave ? "brave_formulas" : "formulas");
        rec.n = n;
        rec.wall_ms = batch_ms;
        rec.oracle_calls = rb.TotalStats().sat_calls;
        rec.cache_hits = batch->stats.cache_hits;
        rec.timeout = timeout;
        rec.AddPhase("batch", batch_ms).AddPhase("sequential", seq_ms);
        out.Add(std::move(rec));
      }
    }
  }

  // --- Cross-batch bank reuse ----------------------------------------------
  // Repeated NON-identical batches on one reasoner: the warm leg keeps the
  // model-bank store, the cold leg disables it and rebuilds every group
  // bank per batch. The answer cache is off in BOTH legs, so the store is
  // the only cross-batch lever. From the second round on, warm must beat
  // cold by >= 2x (the acceptance bar) with identical answers.
  // Dedicated instance shape: harder than the A/B sections' so that bank
  // construction (what the store amortizes) dominates the per-batch
  // parse/canonicalize costs both legs share.
  const KindCfg kReuseKinds[] = {{SemanticsKind::kGcwa, 26, 60},
                                 {SemanticsKind::kEgcwa, 26, 34}};
  constexpr int kReuseN = 256;
  constexpr int kRounds = 4;
  std::printf(
      "\nCross-batch bank reuse (warm store vs cold rebuild, %d rounds of "
      "%d, cache off)\n"
      "%-6s | %10s %10s %8s | %6s %6s\n",
      kRounds, kReuseN, "sem", "warm ms", "cold ms", "speedup", "hits",
      "ins");
  for (const KindCfg& cfg : kReuseKinds) {
    const SemanticsKind kind = cfg.kind;
    const char* kind_name = SemanticsKindName(kind);
    Database db = RandomPositiveDdb(
        cfg.vars, cfg.clauses, DeriveSeed(args.seed, cfg.vars * 131 + 7));

    Reasoner warm(db);
    Reasoner cold(db);
    batch::BatchOptions wo;
    wo.num_threads = args.threads;
    wo.use_answer_cache = false;
    batch::BatchOptions co = wo;
    co.use_bank_store = false;

    double warm_ms = 0.0;
    double cold_ms = 0.0;
    int64_t store_hits = 0;
    int64_t store_insertions = 0;
    bool rounds_ok = true;
    for (int round = 0; round < kRounds; ++round) {
      Rng rng(DeriveSeed(args.seed, 4099 + static_cast<uint64_t>(kind) * 31 +
                                        static_cast<uint64_t>(round)));
      std::vector<batch::BatchQuery> qs =
          LiteralWorkload(kReuseN, cfg.vars, &rng);

      Timer wt;
      Result<batch::BatchAnswer> wr = warm.AnswerBatch(kind, qs, wo);
      const double w_ms = wt.ElapsedSeconds() * 1e3;
      Timer ct;
      Result<batch::BatchAnswer> cr = cold.AnswerBatch(kind, qs, co);
      const double c_ms = ct.ElapsedSeconds() * 1e3;
      if (!wr.ok() || !cr.ok()) {
        Audit(false, "bank-reuse leg failed", kind_name, kReuseN);
        rounds_ok = false;
        break;
      }
      for (size_t i = 0; i < qs.size(); ++i) {
        Audit(wr->answers[i] == cr->answers[i],
              "warm/cold answer mismatch", kind_name, kReuseN);
        if (wr->answers[i] != cr->answers[i]) break;
      }
      // Round 0 builds the banks in both legs; the reuse economics start
      // at round 1.
      if (round > 0) {
        warm_ms += w_ms;
        cold_ms += c_ms;
        store_hits += wr->stats.bank_store_hits;
      } else {
        store_insertions = wr->stats.bank_store_insertions;
      }
    }
    if (!rounds_ok) continue;

    Audit(store_hits > 0, "warm leg never hit the bank store", kind_name,
          kReuseN);
    if (warm.bank_store() != nullptr) {
      warm.bank_store()->ForEach(
          [&](const std::string&, const batch::ModelBank& bank) {
            Audit(bank.complete, "incomplete bank found in store", kind_name,
                  kReuseN);
          });
    }
    const double speedup = warm_ms > 0 ? cold_ms / warm_ms : 0.0;
    Audit(speedup >= 2.0, "bank reuse speedup below 2x", kind_name, kReuseN);
    std::printf("%-6s | %10.2f %10.2f %7.2fx | %6lld %6lld\n", kind_name,
                warm_ms, cold_ms, speedup,
                static_cast<long long>(store_hits),
                static_cast<long long>(store_insertions));

    BenchRecord rec;
    rec.name = StrFormat("%s/bank_reuse", kind_name);
    rec.n = kReuseN;
    rec.wall_ms = warm_ms;
    rec.oracle_calls = warm.TotalStats().sat_calls;
    rec.cache_hits = store_hits;
    rec.timeout = false;
    rec.AddPhase("warm", warm_ms).AddPhase("cold", cold_ms);
    out.Add(std::move(rec));
  }

  if (!out.Write()) {
    std::fprintf(stderr, "cannot write BENCH_batch.json\n");
    return 1;
  }
  if (g_audit_failures > 0) {
    std::fprintf(stderr, "%d audit failure(s)\n", g_audit_failures);
    return 1;
  }
  std::printf("audit: batch == sequential, no kUnknown cached\n");
  return 0;
}

}  // namespace dd

int main(int argc, char** argv) { return dd::Main(argc, argv); }
