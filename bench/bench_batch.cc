// Batched query evaluation A/B (docs/BATCHING.md): the same literal
// workload against one database runs once through Reasoner::AnswerBatch
// (canonicalize + dedupe + answer cache + slice-grouped model banks,
// groups in parallel) and once through the sequential one-query-at-a-time
// entry points, at batch sizes {1, 16, 256, 4096} across all eleven
// semantics.
//
// The printed table reports wall-clock for both legs and the amortized
// speedup; the built-in audit asserts, for every row, that (a) the batch
// answers are identical to the sequential answers wherever both are
// definite and (b) the answer cache holds no kUnknown entry — a violation
// exits nonzero, so the harness doubles as an end-to-end soundness check.
//
// Flags: --seed=N --threads=N --timeout-ms=N (see bench_util.h; the
// timeout bounds each leg per row — the batch leg via the whole-batch
// budget, the sequential leg via an elapsed-time watchdog — and marks cut
// rows "timeout": true). Results land in BENCH_batch.json (schema 2) for
// scripts/run_experiments.sh.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "batch/query_batch.h"
#include "core/reasoner.h"
#include "gen/generators.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dd {
namespace {

using bench::BenchArgs;
using bench::BenchJsonWriter;
using bench::BenchRecord;

/// Instance shape per semantics: positive deductive databases keep all
/// eleven applicable; the Σ₂ᵖ-flavoured and enumeration-heavy kinds get
/// smaller instances so the sequential baseline finishes at 4096.
struct KindCfg {
  SemanticsKind kind;
  int vars;
  int clauses;
};

const KindCfg kKinds[] = {
    {SemanticsKind::kCwa, 14, 22},  {SemanticsKind::kGcwa, 20, 48},
    {SemanticsKind::kEgcwa, 20, 48}, {SemanticsKind::kCcwa, 14, 22},
    {SemanticsKind::kEcwa, 12, 20}, {SemanticsKind::kDdr, 18, 28},
    {SemanticsKind::kPws, 18, 28},  {SemanticsKind::kPerf, 10, 16},
    {SemanticsKind::kIcwa, 10, 16}, {SemanticsKind::kDsm, 12, 20},
    {SemanticsKind::kPdsm, 10, 16},
};

const int kBatchSizes[] = {1, 16, 256, 4096};

/// A random literal workload: n queries drawn uniformly over both
/// polarities of the database's atoms. Large n repeats queries heavily —
/// exactly the regime batching amortizes.
std::vector<batch::BatchQuery> LiteralWorkload(int n, int vars, Rng* rng) {
  std::vector<batch::BatchQuery> qs;
  qs.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int v = static_cast<int>(rng->Below(vars));
    qs.push_back({rng->Chance(0.5) ? StrFormat("p%d", v)
                                   : StrFormat("not p%d", v),
                  true});
  }
  return qs;
}

int g_audit_failures = 0;

void Audit(bool ok, const char* what, const char* kind, int n) {
  if (!ok) {
    ++g_audit_failures;
    std::fprintf(stderr, "AUDIT FAILURE [%s n=%d]: %s\n", kind, n, what);
  }
}

}  // namespace

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  BenchJsonWriter out("batch");
  std::printf(
      "Batched vs sequential query evaluation (seed=%llu, threads=%d)\n"
      "%-6s %6s | %10s %10s %8s | %6s %6s %6s\n",
      static_cast<unsigned long long>(args.seed), args.threads, "sem", "n",
      "batch ms", "seq ms", "speedup", "uniq", "groups", "hits");

  for (const KindCfg& cfg : kKinds) {
    const char* kind_name = SemanticsKindName(cfg.kind);
    Database db = RandomPositiveDdb(
        cfg.vars, cfg.clauses, DeriveSeed(args.seed, cfg.vars * 131 + 7));
    for (int n : kBatchSizes) {
      Timer gen_timer;
      Rng rng(DeriveSeed(args.seed, static_cast<uint64_t>(n) * 211 +
                                        static_cast<uint64_t>(cfg.kind)));
      std::vector<batch::BatchQuery> qs = LiteralWorkload(n, cfg.vars, &rng);
      const double gen_ms = gen_timer.ElapsedSeconds() * 1e3;

      // Batch leg: one AnswerBatch call on a fresh reasoner.
      Reasoner rb(db);
      batch::BatchOptions bo;
      bo.num_threads = args.threads;
      bo.deadline_ms = args.timeout_ms;
      Timer batch_timer;
      Result<batch::BatchAnswer> batch = rb.AnswerBatch(cfg.kind, qs, bo);
      const double batch_ms = batch_timer.ElapsedSeconds() * 1e3;
      if (!batch.ok()) {
        Audit(false, batch.status().ToString().c_str(), kind_name, n);
        continue;
      }
      bool timeout = batch->stats.unknowns > 0;

      // Sequential leg: the one-query-at-a-time entry points on an equally
      // fresh reasoner (same engine caches and sessions as any CLI user).
      Reasoner rs(db);
      std::vector<Trilean> seq(qs.size(), Trilean::kUnknown);
      bool seq_complete = true;
      Timer seq_timer;
      for (size_t i = 0; i < qs.size(); ++i) {
        if (args.timeout_ms > 0 &&
            seq_timer.ElapsedSeconds() * 1e3 > args.timeout_ms) {
          seq_complete = false;
          timeout = true;
          break;
        }
        Result<bool> r = rs.InfersLiteral(cfg.kind, qs[i].text);
        if (!r.ok()) {
          Audit(false, r.status().ToString().c_str(), kind_name, n);
          seq_complete = false;
          break;
        }
        seq[i] = TrileanFromBool(*r);
      }
      const double seq_ms = seq_timer.ElapsedSeconds() * 1e3;

      // Audit (a): batch answers equal sequential answers wherever both
      // legs produced a definite verdict.
      if (seq_complete) {
        for (size_t i = 0; i < qs.size(); ++i) {
          if (batch->answers[i] == Trilean::kUnknown) continue;
          Audit(batch->answers[i] == seq[i],
                "batch/sequential answer mismatch", kind_name, n);
          if (batch->answers[i] != seq[i]) break;
        }
      }
      // Audit (b): "Unknown is never cached".
      if (rb.answer_cache() != nullptr) {
        rb.answer_cache()->ForEach([&](const std::string& key, Trilean t) {
          Audit(t != Trilean::kUnknown, "kUnknown found in answer cache",
                kind_name, n);
        });
      }

      const double speedup = batch_ms > 0 ? seq_ms / batch_ms : 0.0;
      std::printf("%-6s %6d | %10.2f %10.2f %7.2fx | %6lld %6lld %6lld%s\n",
                  kind_name, n, batch_ms, seq_ms, speedup,
                  static_cast<long long>(batch->stats.unique_queries),
                  static_cast<long long>(batch->stats.groups),
                  static_cast<long long>(batch->stats.cache_hits),
                  timeout ? "  (timeout)" : "");

      BenchRecord rec;
      rec.name = StrFormat("%s/literals", kind_name);
      rec.n = n;
      rec.wall_ms = batch_ms;
      rec.oracle_calls = rb.TotalStats().sat_calls;
      rec.cache_hits = batch->stats.cache_hits;
      rec.timeout = timeout;
      rec.AddPhase("generate", gen_ms)
          .AddPhase("batch", batch_ms)
          .AddPhase("sequential", seq_ms);
      obs::MetricsRegistry reg;
      rb.PublishMetrics(&reg);
      rec.metrics = reg.Snapshot();
      out.Add(std::move(rec));
    }
  }

  if (!out.Write()) {
    std::fprintf(stderr, "cannot write BENCH_batch.json\n");
    return 1;
  }
  if (g_audit_failures > 0) {
    std::fprintf(stderr, "%d audit failure(s)\n", g_audit_failures);
    return 1;
  }
  std::printf("audit: batch == sequential, no kUnknown cached\n");
  return 0;
}

}  // namespace dd

int main(int argc, char** argv) { return dd::Main(argc, argv); }
