// Microbenchmarks for the analyzer-driven dispatch layer: the same query
// answered with dispatch enabled (analyzer routes it to a polynomial
// engine) and disabled (the generic oracle-backed machinery runs).
//
// Headline: EGCWA/GCWA literal inference on Horn inputs collapses from a
// CEGAR loop over SAT calls to one least-model evaluation. DDR/PWS
// negative literals on positive disjunctive inputs ride the T_DB fixpoint
// either way, but dispatch also skips engine construction (cold start).
#include <benchmark/benchmark.h>

#include <string>

#include "analysis/program_properties.h"
#include "core/reasoner.h"
#include "gen/generators.h"

namespace dd {
namespace {

/// Random definite-Horn database: a chain-heavy positive program with
/// single-atom heads (RandomDdb with max_head=1, no integrity/negation).
Database RandomHornDdb(int num_vars, int num_clauses, uint64_t seed) {
  DdbConfig cfg;
  cfg.num_vars = num_vars;
  cfg.num_clauses = num_clauses;
  cfg.max_head = 1;
  cfg.max_body = 3;
  cfg.seed = seed;
  return RandomDdb(cfg);
}

void RunLiteralQueries(Reasoner* r, SemanticsKind kind, const Database& db,
                       bool negative) {
  for (Var v = 0; v < db.num_vars(); ++v) {
    std::string q = negative ? "not " + db.vocabulary().Name(v)
                             : db.vocabulary().Name(v);
    auto res = r->InfersLiteral(kind, q);
    benchmark::DoNotOptimize(res.ok());
  }
}

// --- EGCWA / GCWA on Horn inputs: least model vs minimal-model oracle ----

void BM_EgcwaHornLiterals(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool dispatch = state.range(1) != 0;
  Database db = RandomHornDdb(n, 2 * n, 11);
  for (auto _ : state) {
    Reasoner r(db);  // fresh: includes analysis + engine construction
    r.set_analysis_dispatch(dispatch);
    RunLiteralQueries(&r, SemanticsKind::kEgcwa, db, /*negative=*/false);
    RunLiteralQueries(&r, SemanticsKind::kEgcwa, db, /*negative=*/true);
  }
  state.SetLabel(dispatch ? "dispatch" : "generic");
}
BENCHMARK(BM_EgcwaHornLiterals)
    ->Args({30, 0})->Args({30, 1})
    ->Args({60, 0})->Args({60, 1})
    ->Args({120, 0})->Args({120, 1});

void BM_GcwaHornFormulas(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool dispatch = state.range(1) != 0;
  Database db = RandomHornDdb(n, 2 * n, 13);
  std::string f = db.vocabulary().Name(0) + " -> " + db.vocabulary().Name(1);
  for (auto _ : state) {
    Reasoner r(db);
    r.set_analysis_dispatch(dispatch);
    auto res = r.InfersFormula(SemanticsKind::kGcwa, f);
    benchmark::DoNotOptimize(res.ok());
  }
  state.SetLabel(dispatch ? "dispatch" : "generic");
}
BENCHMARK(BM_GcwaHornFormulas)
    ->Args({60, 0})->Args({60, 1})
    ->Args({120, 0})->Args({120, 1});

// --- DDR / PWS negative literals on positive disjunctive inputs ----------
// Both paths are polynomial (Table 1's P entries). Steady state measures
// the per-query cost once caches are warm: dispatch answers from the
// FastPathEngine's T_DB fixpoint, which DDR and PWS *share*, while the
// generic engines each hold their own cached copy. Cold start includes
// the analyzer run (dispatch) vs per-engine construction (generic); the
// analyzer's SCC/stratification work makes dispatch pay more up front —
// that fixed cost is what BM_Analyze isolates below.

void BM_DdrPwsNegLiteralsSteadyState(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool dispatch = state.range(1) != 0;
  Database db = RandomPositiveDdb(n, 2 * n, 17);
  Reasoner r(db);
  r.set_analysis_dispatch(dispatch);
  // Warm every cache (fixpoints, analyzer) outside the timed region.
  RunLiteralQueries(&r, SemanticsKind::kDdr, db, /*negative=*/true);
  RunLiteralQueries(&r, SemanticsKind::kPws, db, /*negative=*/true);
  for (auto _ : state) {
    RunLiteralQueries(&r, SemanticsKind::kDdr, db, /*negative=*/true);
    RunLiteralQueries(&r, SemanticsKind::kPws, db, /*negative=*/true);
  }
  state.SetLabel(dispatch ? "dispatch" : "generic");
}
BENCHMARK(BM_DdrPwsNegLiteralsSteadyState)
    ->Args({50, 0})->Args({50, 1})
    ->Args({100, 0})->Args({100, 1});

void BM_DdrPwsNegLiteralsColdStart(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool dispatch = state.range(1) != 0;
  Database db = RandomPositiveDdb(n, 2 * n, 19);
  for (auto _ : state) {
    Reasoner r(db);
    r.set_analysis_dispatch(dispatch);
    RunLiteralQueries(&r, SemanticsKind::kDdr, db, /*negative=*/true);
    RunLiteralQueries(&r, SemanticsKind::kPws, db, /*negative=*/true);
  }
  state.SetLabel(dispatch ? "dispatch" : "generic");
}
BENCHMARK(BM_DdrPwsNegLiteralsColdStart)
    ->Args({50, 0})->Args({50, 1})
    ->Args({100, 0})->Args({100, 1});

// --- HasModel across every semantics on a positive input ------------------
// Dispatch reads Table 1's O(1) entries; generic runs per-semantics checks.

void BM_HasModelAllSemantics(benchmark::State& state) {
  const bool dispatch = state.range(0) != 0;
  Database db = RandomPositiveDdb(40, 80, 23);
  const SemanticsKind kinds[] = {
      SemanticsKind::kCwa,  SemanticsKind::kGcwa, SemanticsKind::kEgcwa,
      SemanticsKind::kCcwa, SemanticsKind::kEcwa, SemanticsKind::kDdr,
      SemanticsKind::kPws,  SemanticsKind::kPerf, SemanticsKind::kIcwa,
      SemanticsKind::kDsm,
  };
  for (auto _ : state) {
    Reasoner r(db);
    r.set_analysis_dispatch(dispatch);
    for (SemanticsKind k : kinds) {
      auto res = r.HasModel(k);
      benchmark::DoNotOptimize(res.ok());
    }
  }
  state.SetLabel(dispatch ? "dispatch" : "generic");
}
BENCHMARK(BM_HasModelAllSemantics)->Arg(0)->Arg(1);

// --- HCF modular family: slice + unfounded-set vs the coNP oracle ---------
// The acceptance bar for the structural paths (docs/ANALYSIS.md): on this
// positive, disjunctive, head-cycle-free family, dispatch routes literal
// queries through the relevance slice and answers minimality with the
// polynomial founded-set check; generic runs the full SAT-backed
// minimal-model machinery over the whole database. The audit (run once,
// outside the timed region, on the dispatch variant) re-asks every query
// both ways and re-checks every emitted certificate: an answer mismatch
// or a certificate rejection fails the benchmark rather than skewing it.

void BM_HcfModularGcwaLiterals(benchmark::State& state) {
  const int modules = static_cast<int>(state.range(0));
  const bool dispatch = state.range(1) != 0;
  Database db = HcfModularDdb(modules, 6, 4, 31);
  if (dispatch) {
    Reasoner fast(db);
    fast.EnableCertification(true);
    Reasoner slow(db);
    slow.set_analysis_dispatch(false);
    for (Var v = 0; v < db.num_vars(); ++v) {
      for (bool neg : {false, true}) {
        std::string q = neg ? "not " + db.vocabulary().Name(v)
                            : db.vocabulary().Name(v);
        auto a = fast.InfersLiteral(SemanticsKind::kGcwa, q);
        auto b = slow.InfersLiteral(SemanticsKind::kGcwa, q);
        if (!a.ok() || !b.ok() || *a != *b) {
          state.SkipWithError("dispatch answer differs from generic");
          return;
        }
      }
    }
    if (fast.certification_stats().rejected != 0) {
      state.SkipWithError("certificate rejected by the independent checker");
      return;
    }
  }
  for (auto _ : state) {
    Reasoner r(db);
    r.set_analysis_dispatch(dispatch);
    RunLiteralQueries(&r, SemanticsKind::kGcwa, db, /*negative=*/false);
    RunLiteralQueries(&r, SemanticsKind::kGcwa, db, /*negative=*/true);
  }
  state.SetLabel(dispatch ? "dispatch" : "generic");
}
BENCHMARK(BM_HcfModularGcwaLiterals)
    ->Args({2, 0})->Args({2, 1})
    ->Args({4, 0})->Args({4, 1})
    ->Args({6, 0})->Args({6, 1})
    ->Unit(benchmark::kMillisecond);

// --- The analyzer itself: the fixed cost dispatch pays once ---------------

void BM_Analyze(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db = RandomPositiveDdb(n, 3 * n, 29);
  for (auto _ : state) {
    analysis::ProgramProperties p = analysis::Analyze(db);
    benchmark::DoNotOptimize(p.scc.num_sccs);
  }
}
BENCHMARK(BM_Analyze)->Arg(50)->Arg(200)->Arg(800);

}  // namespace
}  // namespace dd
