// Separation 2 (Chan / Table 1 vs Table 2): DDR and PWS literal inference
// jumps from P to coNP-complete the moment integrity clauses appear.
//
// Implementation-observable: without integrity clauses both semantics
// answer ¬x queries from the polynomial fixpoint (ZERO SAT calls, zero
// splits); with integrity clauses DDR consults the SAT oracle and PWS
// enumerates head splits. The harness sweeps the integrity-clause fraction
// and prints the oracle work appearing out of nowhere at fraction > 0 —
// the crossover of the two table rows.
#include <cstdio>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "semantics/ddr.h"
#include "semantics/pws.h"
#include "util/timer.h"

namespace dd {
namespace {

int main_impl() {
  std::printf(
      "DDR / PWS literal inference: integrity-clause fraction sweep\n");
  std::printf("%10s %6s | %12s %10s | %12s %12s\n", "ic-frac", "n", "DDR[s]",
              "SATcalls", "PWS[s]", "splits-path");
  for (double frac : {0.0, 0.05, 0.15, 0.30}) {
    for (int n : {10, 14}) {
      DdbConfig cfg;
      cfg.num_vars = n;
      cfg.num_clauses = n;  // modest so PWS split enumeration stays feasible
      cfg.max_head = 2;
      cfg.fact_fraction = 0.5;
      cfg.integrity_fraction = frac;
      double ddr_s = 0, pws_s = 0;
      int64_t ddr_sat = 0;
      bool pws_enumerated = false;
      const int reps = 5;
      Rng seeds(static_cast<uint64_t>(n) * 131 +
                static_cast<uint64_t>(frac * 100));
      for (int i = 0; i < reps; ++i) {
        cfg.seed = seeds.Next();
        Database db = RandomDdb(cfg);
        {
          DdrSemantics ddr(db);
          Timer t;
          for (Var v = 0; v < n; ++v) (void)ddr.InfersLiteral(Lit::Neg(v));
          ddr_s += t.ElapsedSeconds();
          ddr_sat += ddr.stats().sat_calls;
        }
        {
          PwsSemantics pws(db);
          Timer t;
          for (Var v = 0; v < n; ++v) (void)pws.InfersLiteral(Lit::Neg(v));
          pws_s += t.ElapsedSeconds();
          pws_enumerated |= db.HasIntegrityClauses();
        }
      }
      std::printf("%10.2f %6d | %12.5f %10lld | %12.5f %12s\n", frac, n,
                  ddr_s, static_cast<long long>(ddr_sat), pws_s,
                  pws_enumerated ? "enumerates" : "poly");
    }
  }
  std::printf(
      "\nExpected shape: the 0.00 rows run with zero SAT calls and the "
      "polynomial PWS path; every row with fraction > 0 pays oracle work "
      "(Table 1 -> Table 2 crossover).\n");
  return 0;
}

}  // namespace
}  // namespace dd

int main() { return dd::main_impl(); }
