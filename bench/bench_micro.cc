// google-benchmark microbenchmarks for the substrate layers: the SAT core,
// minimal-model primitives, fixpoints, stratification and reducts. These
// are the per-oracle-call costs the table harnesses multiply up.
#include <benchmark/benchmark.h>

#include "fixpoint/ddr_fixpoint.h"
#include "gen/generators.h"
#include "ground/grounder.h"
#include "minimal/minimal_models.h"
#include "qbf/qbf_solver.h"
#include "sat/solver.h"
#include "semantics/wfs.h"
#include "strat/priority.h"
#include "strat/stratifier.h"
#include "util/string_util.h"

namespace dd {
namespace {

void BM_SatSolveRandom3Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(42);
  for (auto _ : state) {
    state.PauseTiming();
    sat::Solver s;
    s.EnsureVars(n);
    for (int i = 0; i < static_cast<int>(4.0 * n); ++i) {
      std::vector<Lit> c;
      for (int j = 0; j < 3; ++j) {
        c.push_back(Lit::Make(static_cast<Var>(rng.Below(n)),
                              rng.Chance(0.5)));
      }
      s.AddClause(c);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.Solve());
  }
}
BENCHMARK(BM_SatSolveRandom3Sat)->Arg(50)->Arg(100)->Arg(200);

void BM_MinimizeModel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db = RandomPositiveDdb(n, 2 * n, 7);
  MinimalEngine e(db);
  Partition all = Partition::MinimizeAll(n);
  auto m = e.FindModel();
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.Minimize(*m, all));
  }
}
BENCHMARK(BM_MinimizeModel)->Arg(20)->Arg(40)->Arg(80);

void BM_IsMinimalModel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db = RandomPositiveDdb(n, 2 * n, 8);
  MinimalEngine e(db);
  Partition all = Partition::MinimizeAll(n);
  Interpretation mm = e.Minimize(*e.FindModel(), all);
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.IsMinimal(mm, all));
  }
}
BENCHMARK(BM_IsMinimalModel)->Arg(20)->Arg(40)->Arg(80);

void BM_EnumerateMinimalModels(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db = RandomPositiveDdb(n, 2 * n, 9);
  for (auto _ : state) {
    MinimalEngine e(db);
    Partition all = Partition::MinimizeAll(n);
    int count = e.EnumerateMinimalProjections(
        all, 256, [](const Interpretation&) { return true; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EnumerateMinimalModels)->Arg(12)->Arg(16);

void BM_DefiniteLeastModel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db = RandomPositiveDdb(n, 3 * n, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DefiniteLeastModel(db));
  }
}
BENCHMARK(BM_DefiniteLeastModel)->Arg(100)->Arg(1000);

void BM_Stratify(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db = RandomStratifiedDdb(n, 3 * n, 4, 0.5, 11);
  for (auto _ : state) {
    auto s = Stratify(db);
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_Stratify)->Arg(100)->Arg(1000);

void BM_PriorityRelation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db = RandomStratifiedDdb(n, 3 * n, 4, 0.5, 12);
  for (auto _ : state) {
    PriorityRelation p(db);
    benchmark::DoNotOptimize(p.HasStrictCycle());
  }
}
BENCHMARK(BM_PriorityRelation)->Arg(50)->Arg(100);

void BM_GlReduct(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DdbConfig cfg;
  cfg.num_vars = n;
  cfg.num_clauses = 3 * n;
  cfg.negation_fraction = 0.4;
  cfg.seed = 13;
  Database db = RandomDdb(cfg);
  Interpretation m(n);
  for (Var v = 0; v < n; v += 2) m.Insert(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.GlReduct(m));
  }
}
BENCHMARK(BM_GlReduct)->Arg(100)->Arg(1000);

void BM_QbfCegar(benchmark::State& state) {
  const int b = static_cast<int>(state.range(0));
  QbfForallExistsCnf q = RandomQbf(b, b, 3 * b, 3, 14);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveForallExists(q));
  }
}
BENCHMARK(BM_QbfCegar)->Arg(6)->Arg(10)->Arg(14);

void BM_Grounding(benchmark::State& state) {
  // Transitive closure over a chain of `n` constants: Theta(n^2) ground
  // path atoms, Theta(n^3) candidate instantiations for the join rule.
  const int n = static_cast<int>(state.range(0));
  std::string prog;
  for (int i = 0; i + 1 < n; ++i) {
    prog += StrFormat("edge(c%d, c%d).\n", i, i + 1);
  }
  prog += "path(X, Y) :- edge(X, Y).\n";
  prog += "path(X, Z) :- path(X, Y), edge(Y, Z).\n";
  for (auto _ : state) {
    auto db = ground::GroundProgramText(prog);
    benchmark::DoNotOptimize(db);
  }
}
BENCHMARK(BM_Grounding)->Arg(10)->Arg(20)->Arg(40);

void BM_WellFoundedModel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  DdbConfig cfg;
  cfg.num_vars = n;
  cfg.num_clauses = 3 * n;
  cfg.max_head = 1;
  cfg.negation_fraction = 0.4;
  cfg.seed = 21;
  Database db = RandomDdb(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WellFoundedModel(db));
  }
}
BENCHMARK(BM_WellFoundedModel)->Arg(100)->Arg(400);

void BM_MinimalModelState(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db = RandomPositiveDdb(n, n, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinimalModelState(db, 100000));
  }
}
BENCHMARK(BM_MinimalModelState)->Arg(8)->Arg(12);

}  // namespace
}  // namespace dd
