// The "exists model" column of both tables, isolated: the three regimes
// the paper separates are directly observable in the oracle counters.
//
//   O(1)        : positive DBs, any CWA-family semantics; ICWA given S.
//                 -> zero SAT calls.
//   NP-complete : CWA-family existence with integrity clauses = SAT.
//                 -> exactly one SAT query per instance.
//   Sigma2p     : PERF/DSM existence on DNDBs -> a genuine
//                 generate-and-check loop whose work grows with n.
#include <cstdio>

#include "gen/generators.h"
#include "semantics/dsm.h"
#include "semantics/egcwa.h"
#include "semantics/gcwa.h"
#include "semantics/icwa.h"
#include "semantics/perf.h"
#include "util/timer.h"

namespace dd {
namespace {

int main_impl() {
  const int reps = 10;

  std::printf("O(1) regime: positive DDBs\n");
  std::printf("%10s %8s %12s %12s\n", "semantics", "n", "time[s]",
              "SAT calls");
  for (int n : {20, 40}) {
    int64_t gcwa_sat = 0, egcwa_sat = 0;
    double gcwa_s = 0, egcwa_s = 0;
    Rng seeds(static_cast<uint64_t>(n));
    for (int i = 0; i < reps; ++i) {
      Database db = RandomPositiveDdb(n, 2 * n, seeds.Next());
      {
        GcwaSemantics s(db);
        Timer t;
        (void)s.HasModel();
        gcwa_s += t.ElapsedSeconds();
        gcwa_sat += s.stats().sat_calls;
      }
      {
        EgcwaSemantics s(db);
        Timer t;
        (void)s.HasModel();
        egcwa_s += t.ElapsedSeconds();
        egcwa_sat += s.stats().sat_calls;
      }
    }
    std::printf("%10s %8d %12.5f %12lld\n", "GCWA", n, gcwa_s,
                static_cast<long long>(gcwa_sat));
    std::printf("%10s %8d %12.5f %12lld\n", "EGCWA", n, egcwa_s,
                static_cast<long long>(egcwa_sat));
  }

  std::printf("\nNP regime: integrity clauses (existence == SAT)\n");
  std::printf("%10s %8s %12s %12s %8s\n", "semantics", "n", "time[s]",
              "SAT calls", "sat%");
  for (int n : {20, 40, 80}) {
    int64_t sat_calls = 0;
    int satisfiable = 0;
    double secs = 0;
    Rng seeds(static_cast<uint64_t>(n) * 11);
    for (int i = 0; i < reps; ++i) {
      DdbConfig cfg;
      cfg.num_vars = n;
      cfg.num_clauses = (3 * n) / 2;
      cfg.integrity_fraction = 0.2;
      cfg.max_body = 2;
      cfg.seed = seeds.Next();
      Database db = RandomDdb(cfg);
      EgcwaSemantics s(db);
      Timer t;
      auto r = s.HasModel();
      secs += t.ElapsedSeconds();
      sat_calls += s.stats().sat_calls;
      satisfiable += (r.ok() && *r) ? 1 : 0;
    }
    std::printf("%10s %8d %12.5f %12lld %7d%%\n", "EGCWA", n, secs,
                static_cast<long long>(sat_calls), 10 * satisfiable);
  }

  std::printf("\nO(1) regime for stratified DBs: ICWA existence\n");
  std::printf("%10s %8s %12s %12s\n", "semantics", "n", "time[s]",
              "SAT calls");
  for (int n : {20, 40}) {
    int64_t sat_calls = 0;
    double secs = 0;
    Rng seeds(static_cast<uint64_t>(n) * 17);
    for (int i = 0; i < reps; ++i) {
      Database db = RandomStratifiedDdb(n, 2 * n, 3, 0.5, seeds.Next());
      IcwaSemantics s(db);
      Timer t;
      (void)s.HasModel();
      secs += t.ElapsedSeconds();
      sat_calls += s.stats().sat_calls;
    }
    std::printf("%10s %8d %12.5f %12lld\n", "ICWA", n, secs,
                static_cast<long long>(sat_calls));
  }

  std::printf("\nSigma2p regime: DSM / PERF existence on DNDBs\n");
  std::printf("%10s %8s %12s %12s %8s\n", "semantics", "n", "time[s]",
              "SAT calls", "has%");
  for (int n : {8, 10, 12}) {
    for (int which = 0; which < 2; ++which) {
      int64_t sat_calls = 0;
      int has = 0;
      double secs = 0;
      Rng seeds(static_cast<uint64_t>(n) * 23 + static_cast<uint64_t>(which));
      for (int i = 0; i < reps; ++i) {
        DdbConfig cfg;
        cfg.num_vars = n;
        cfg.num_clauses = 2 * n;
        cfg.negation_fraction = 0.35;
        cfg.seed = seeds.Next();
        Database db = RandomDdb(cfg);
        Timer t;
        if (which == 0) {
          DsmSemantics s(db);
          auto r = s.HasModel();
          secs += t.ElapsedSeconds();
          sat_calls += s.stats().sat_calls;
          has += (r.ok() && *r) ? 1 : 0;
        } else {
          PerfSemantics s(db);
          auto r = s.HasModel();
          secs += t.ElapsedSeconds();
          sat_calls += s.stats().sat_calls;
          has += (r.ok() && *r) ? 1 : 0;
        }
      }
      std::printf("%10s %8d %12.5f %12lld %7d%%\n",
                  which == 0 ? "DSM" : "PERF", n, secs,
                  static_cast<long long>(sat_calls), 10 * has);
    }
  }
  std::printf(
      "\nExpected shape: zeros in the O(1) sections, exactly %d SAT calls "
      "per NP row, growing generate-and-check work in the Sigma2p rows.\n",
      reps);
  return 0;
}

}  // namespace
}  // namespace dd

int main() { return dd::main_impl(); }
