// Section 3.1 algorithm: GCWA/CCWA formula inference with O(log n) calls
// to a Σ₂ᵖ oracle — plus the oracle-session A/B experiment.
//
// The first harness runs the binary-search counting algorithm and prints
// the counted oracle calls next to ceil(log2(|P|+1)) + 1 — the two columns
// should track each other as |P| doubles, which is precisely the
// P^Sigma2p[O(log n)] upper bound of the paper (and of [Eiter & Gottlob,
// TCS], whose method Section 3.1 cites).
//
// The A/B harness at the bottom measures what oracle sessions
// (src/oracle/) buy: the same GCWA/EGCWA workload runs once with the
// persistent incremental session (default) and once with a fresh solver
// per oracle call (--no-sessions semantics), and the table reports the
// wall-clock ratio next to the *semantic* oracle-call counts, which must
// be identical in both modes — the sessions change how fast the oracle
// answers, never how often the algorithm asks.
//
// Flags: --seed=N --threads=N --no-sessions (see bench_util.h). Results
// land in BENCH_oracle_calls.json for scripts/run_experiments.sh.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "semantics/ccwa.h"
#include "semantics/egcwa.h"
#include "semantics/gcwa.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dd {
namespace {

using bench::BenchArgs;
using bench::BenchJsonWriter;

/// One leg of the A/B comparison.
struct Leg {
  double ms = 0;            ///< wall-clock of the measured block
  int64_t oracle_calls = 0; ///< counting-algorithm Σ₂ᵖ calls (structural)
  int64_t sat_calls = 0;    ///< solver invocations actually performed
  int64_t cache_hits = 0;   ///< answers served from session memo
  MinimalStats stats;             ///< full oracle counters of the leg
  oracle::SessionStats sess;      ///< full session-reuse counters
};

/// The A/B workload: the repeated-query pattern sessions are built for.
/// Everything below asks one fixed database many questions — the GCWA
/// counting algorithm (every binary-search step re-enumerates minimal
/// projections), the full negation set (one Σ₂ᵖ-style query per atom),
/// repeated EGCWA model enumeration, and the per-atom negative-clause
/// augmentation.
Leg RunFamily(const Database& db, bool use_sessions, int threads,
              std::shared_ptr<Budget> watchdog = nullptr) {
  SemanticsOptions opts;
  opts.use_sessions = use_sessions;
  opts.num_threads = threads;
  opts.budget = std::move(watchdog);
  Leg leg;
  Timer t;
  {
    GcwaSemantics gcwa(db, opts);
    const Var queries = std::min(4, db.num_vars());
    for (Var a = 0; a < queries; ++a) {
      auto r = gcwa.InfersFormulaViaCounting(FormulaNode::MakeAtom(a));
      if (r.ok()) leg.oracle_calls += r->oracle_calls;
    }
    auto negs = gcwa.NegatedAtoms();
    (void)negs;
    leg.sat_calls += gcwa.stats().sat_calls;
    leg.cache_hits += gcwa.session_stats().cache_hits;
    leg.stats.Add(gcwa.stats());
    leg.sess.Add(gcwa.session_stats());
  }
  {
    EgcwaSemantics egcwa(db, opts);
    for (int rep = 0; rep < 3; ++rep) {
      auto ms = egcwa.Models();
      (void)ms;
    }
    auto clauses = egcwa.EntailedNegativeClauses(2);
    (void)clauses;
    for (Var v = 0; v < db.num_vars(); ++v) {
      auto r = egcwa.InfersFormula(FormulaNode::MakeLit(Lit::Neg(v)));
      (void)r;
    }
    leg.sat_calls += egcwa.stats().sat_calls;
    leg.cache_hits += egcwa.session_stats().cache_hits;
    leg.stats.Add(egcwa.stats());
    leg.sess.Add(egcwa.session_stats());
  }
  leg.ms = t.ElapsedSeconds() * 1e3;
  return leg;
}

int main_impl(int argc, char** argv) {
  const BenchArgs args = BenchArgs::Parse(argc, argv);
  BenchJsonWriter json("oracle_calls");

  std::printf("GCWA formula inference via the counting algorithm%s\n",
              args.use_sessions ? "" : " [--no-sessions]");
  std::printf("%8s %14s %18s %12s %10s\n", "|P|=n", "oracle calls",
              "ceil(lg(n+1))+1", "free atoms", "time[s]");
  SemanticsOptions opts;
  opts.use_sessions = args.use_sessions;
  opts.num_threads = args.threads;
  for (int n : {4, 8, 16, 32, 64}) {
    int64_t calls = 0;
    int free_atoms = 0;
    double secs = 0;
    double gen_secs = 0;
    bool timed_out = false;
    MinimalStats row_stats;
    oracle::SessionStats row_sess;
    const int reps = 3;
    for (int i = 0; i < reps; ++i) {
      Timer gen_t;
      Database db = RandomPositiveDdb(
          n, 2 * n, DeriveSeed(args.seed * 7, static_cast<uint64_t>(n) + i));
      gen_secs += gen_t.ElapsedSeconds();
      // Per-instance watchdog (--timeout-ms): cooperative cutoff instead
      // of hanging the sweep; the row records "timeout": true.
      opts.budget = bench::MakeWatchdogBudget(args);
      GcwaSemantics gcwa(db, opts);
      Timer t;
      auto r = gcwa.InfersFormulaViaCounting(FormulaNode::MakeAtom(0));
      secs += t.ElapsedSeconds();
      row_stats.Add(gcwa.stats());
      row_sess.Add(gcwa.session_stats());
      if (r.ok()) {
        calls += r->oracle_calls;
        free_atoms += r->free_count;
      }
      if (bench::TimedOut(opts.budget)) {
        timed_out = true;
        break;
      }
    }
    opts.budget = nullptr;
    int bound = static_cast<int>(std::ceil(std::log2(n + 1))) + 1;
    std::printf("%8d %14.1f %18d %12.1f %10.4f%s\n", n,
                static_cast<double>(calls) / reps, bound,
                static_cast<double>(free_atoms) / reps, secs,
                timed_out ? "  TIMEOUT" : "");
    bench::BenchRecord row{StrFormat("gcwa_counting%s",
                                     args.use_sessions ? "" : "_no_sessions"),
                           n, secs * 1e3 / reps, calls / reps, 0, timed_out};
    row.AddPhase("generate", gen_secs * 1e3).AddPhase("query", secs * 1e3);
    row.metrics = obs::SnapshotOf(row_stats, nullptr, &row_sess);
    json.Add(std::move(row));
  }

  std::printf("\nCCWA variant (P = first half, Q = next quarter, Z = rest)\n");
  std::printf("%8s %14s %18s %10s\n", "n", "oracle calls",
              "ceil(lg(|P|+1))+1", "time[s]");
  for (int n : {8, 16, 32, 64}) {
    int64_t calls = 0;
    double secs = 0;
    double gen_secs = 0;
    bool timed_out = false;
    MinimalStats row_stats;
    oracle::SessionStats row_sess;
    const int reps = 3;
    for (int i = 0; i < reps; ++i) {
      Timer gen_t;
      Database db = RandomPositiveDdb(
          n, 2 * n, DeriveSeed(args.seed * 13, static_cast<uint64_t>(n) + i));
      gen_secs += gen_t.ElapsedSeconds();
      Partition p;
      p.p = Interpretation(n);
      p.q = Interpretation(n);
      p.z = Interpretation(n);
      for (Var v = 0; v < n; ++v) {
        if (v < n / 2) {
          p.p.Insert(v);
        } else if (v < 3 * n / 4) {
          p.q.Insert(v);
        } else {
          p.z.Insert(v);
        }
      }
      opts.budget = bench::MakeWatchdogBudget(args);
      CcwaSemantics ccwa(db, p, opts);
      Timer t;
      auto r = ccwa.InfersFormulaViaCounting(FormulaNode::MakeAtom(0));
      secs += t.ElapsedSeconds();
      row_stats.Add(ccwa.stats());
      row_sess.Add(ccwa.session_stats());
      if (r.ok()) calls += r->oracle_calls;
      if (bench::TimedOut(opts.budget)) {
        timed_out = true;
        break;
      }
    }
    opts.budget = nullptr;
    int bound = static_cast<int>(std::ceil(std::log2(n / 2 + 1))) + 1;
    std::printf("%8d %14.1f %18d %10.4f%s\n", n,
                static_cast<double>(calls) / reps, bound, secs,
                timed_out ? "  TIMEOUT" : "");
    bench::BenchRecord row{StrFormat("ccwa_counting%s",
                                     args.use_sessions ? "" : "_no_sessions"),
                           n, secs * 1e3 / reps, calls / reps, 0, timed_out};
    row.AddPhase("generate", gen_secs * 1e3).AddPhase("query", secs * 1e3);
    row.metrics = obs::SnapshotOf(row_stats, nullptr, &row_sess);
    json.Add(std::move(row));
  }
  std::printf(
      "\nExpected shape: the oracle-call column grows by about +1 per "
      "doubling of n — the O(log n) bound.\n");

  std::printf("\nOracle-session A/B (GCWA counting + negation set, EGCWA "
              "enumeration x3 + negative clauses)\n");
  std::printf("%8s %12s %12s %10s %12s %12s %12s %8s\n", "n", "fresh[ms]",
              "session[ms]", "speedup", "oracle =?", "sat fresh",
              "sat sess", "hits");
  for (int n : {8, 12, 16, 20, 24}) {
    Database db = RandomPositiveDdb(
        n, 2 * n, DeriveSeed(args.seed * 31, static_cast<uint64_t>(n)));
    auto fresh_watchdog = bench::MakeWatchdogBudget(args);
    auto sess_watchdog = bench::MakeWatchdogBudget(args);
    Leg fresh = RunFamily(db, /*use_sessions=*/false, args.threads,
                          fresh_watchdog);
    Leg sess = RunFamily(db, /*use_sessions=*/true, args.threads,
                         sess_watchdog);
    const bool fresh_to = bench::TimedOut(fresh_watchdog);
    const bool sess_to = bench::TimedOut(sess_watchdog);
    const bool same_oracle = fresh.oracle_calls == sess.oracle_calls;
    std::printf("%8d %12.2f %12.2f %9.2fx %12s %12lld %12lld %8lld\n", n,
                fresh.ms, sess.ms, fresh.ms / (sess.ms > 0 ? sess.ms : 1e-9),
                same_oracle ? "yes" : "NO!",
                static_cast<long long>(fresh.sat_calls),
                static_cast<long long>(sess.sat_calls),
                static_cast<long long>(sess.cache_hits));
    bench::BenchRecord fresh_row{"ab_fresh", n, fresh.ms, fresh.oracle_calls,
                                 fresh.cache_hits, fresh_to};
    fresh_row.AddPhase("workload", fresh.ms);
    fresh_row.metrics = obs::SnapshotOf(fresh.stats, nullptr, &fresh.sess);
    json.Add(std::move(fresh_row));
    bench::BenchRecord sess_row{"ab_session", n, sess.ms, sess.oracle_calls,
                                sess.cache_hits, sess_to};
    sess_row.AddPhase("workload", sess.ms);
    sess_row.metrics = obs::SnapshotOf(sess.stats, nullptr, &sess.sess);
    json.Add(std::move(sess_row));
  }
  std::printf(
      "\nExpected shape: identical oracle-call counts in both columns — the "
      "session only removes rebuild/replay work (sat calls drop, hits "
      "climb), never a semantic oracle invocation.\n");
  json.Write();
  return 0;
}

}  // namespace
}  // namespace dd

int main(int argc, char** argv) { return dd::main_impl(argc, argv); }
