// Section 3.1 algorithm: GCWA/CCWA formula inference with O(log n) calls
// to a Σ₂ᵖ oracle.
//
// The harness runs the binary-search counting algorithm and prints the
// counted oracle calls next to ceil(log2(|P|+1)) + 1 — the two columns
// should track each other as |P| doubles, which is precisely the
// P^Sigma2p[O(log n)] upper bound of the paper (and of [Eiter & Gottlob,
// TCS], whose method Section 3.1 cites).
#include <cmath>
#include <cstdio>

#include "gen/generators.h"
#include "semantics/ccwa.h"
#include "semantics/gcwa.h"
#include "util/timer.h"

namespace dd {
namespace {

int main_impl() {
  std::printf("GCWA formula inference via the counting algorithm\n");
  std::printf("%8s %14s %18s %12s %10s\n", "|P|=n", "oracle calls",
              "ceil(lg(n+1))+1", "free atoms", "time[s]");
  for (int n : {4, 8, 16, 32, 64}) {
    int64_t calls = 0;
    int free_atoms = 0;
    double secs = 0;
    const int reps = 3;
    Rng seeds(static_cast<uint64_t>(n) * 7);
    for (int i = 0; i < reps; ++i) {
      Database db = RandomPositiveDdb(n, 2 * n, seeds.Next());
      GcwaSemantics gcwa(db);
      Timer t;
      auto r = gcwa.InfersFormulaViaCounting(FormulaNode::MakeAtom(0));
      secs += t.ElapsedSeconds();
      if (r.ok()) {
        calls += r->oracle_calls;
        free_atoms += r->free_count;
      }
    }
    int bound = static_cast<int>(std::ceil(std::log2(n + 1))) + 1;
    std::printf("%8d %14.1f %18d %12.1f %10.4f\n", n,
                static_cast<double>(calls) / reps, bound,
                static_cast<double>(free_atoms) / reps, secs);
  }

  std::printf("\nCCWA variant (P = first half, Q = next quarter, Z = rest)\n");
  std::printf("%8s %14s %18s %10s\n", "n", "oracle calls",
              "ceil(lg(|P|+1))+1", "time[s]");
  for (int n : {8, 16, 32, 64}) {
    int64_t calls = 0;
    double secs = 0;
    const int reps = 3;
    Rng seeds(static_cast<uint64_t>(n) * 13);
    for (int i = 0; i < reps; ++i) {
      Database db = RandomPositiveDdb(n, 2 * n, seeds.Next());
      Partition p;
      p.p = Interpretation(n);
      p.q = Interpretation(n);
      p.z = Interpretation(n);
      for (Var v = 0; v < n; ++v) {
        if (v < n / 2) {
          p.p.Insert(v);
        } else if (v < 3 * n / 4) {
          p.q.Insert(v);
        } else {
          p.z.Insert(v);
        }
      }
      CcwaSemantics ccwa(db, p);
      Timer t;
      auto r = ccwa.InfersFormulaViaCounting(FormulaNode::MakeAtom(0));
      secs += t.ElapsedSeconds();
      if (r.ok()) calls += r->oracle_calls;
    }
    int bound = static_cast<int>(std::ceil(std::log2(n / 2 + 1))) + 1;
    std::printf("%8d %14.1f %18d %10.4f\n", n,
                static_cast<double>(calls) / reps, bound, secs);
  }
  std::printf(
      "\nExpected shape: the oracle-call column grows by about +1 per "
      "doubling of n — the O(log n) bound.\n");
  return 0;
}

}  // namespace
}  // namespace dd

int main() { return dd::main_impl(); }
