// Executes the paper's hardness reductions at scale: for randomized 2-QBF /
// CNF instances, builds the gadget databases, answers the database-side
// question with the production engines, and cross-checks against the QBF /
// SAT solvers. The agreement column must read 100%; the timing columns show
// the database-side question inheriting the quantifier structure's cost.
#include <cstdio>

#include "gen/generators.h"
#include "minimal/minimal_models.h"
#include "minimal/uminsat.h"
#include "qbf/qbf_solver.h"
#include "qbf/reductions.h"
#include "sat/solver.h"
#include "semantics/dsm.h"
#include "semantics/gcwa.h"
#include "util/timer.h"

namespace dd {
namespace {

int main_impl() {
  std::printf(
      "Theorem 3.1: forall-exists 2-QBF -> GCWA literal inference "
      "(positive DDB)\n");
  std::printf("%14s %8s %10s %12s %12s\n", "QBF(nx,ny,m)", "agree",
              "valid%", "qbf[s]", "gcwa[s]");
  for (int block : {3, 5, 7}) {
    int agree = 0, valid = 0;
    double qbf_s = 0, gcwa_s = 0;
    const int reps = 10;
    Rng seeds(static_cast<uint64_t>(block) * 31);
    for (int i = 0; i < reps; ++i) {
      QbfForallExistsCnf q =
          RandomQbf(block, block, 2 * block, 3, seeds.Next());
      Timer t1;
      auto truth = SolveForallExists(q);
      qbf_s += t1.ElapsedSeconds();
      ReducedInstance inst = ReducePi2ToGcwaLiteral(q);
      GcwaSemantics gcwa(inst.db);
      Timer t2;
      auto inferred = gcwa.InfersLiteral(Lit::Neg(inst.w));
      gcwa_s += t2.ElapsedSeconds();
      if (truth.ok() && inferred.ok()) {
        agree += (*truth == *inferred) ? 1 : 0;
        valid += *truth ? 1 : 0;
      }
    }
    std::printf("  (%2d,%2d,%3d) %7d%% %9d%% %12.4f %12.4f\n", block, block,
                2 * block, 100 * agree / reps, 100 * valid / reps, qbf_s,
                gcwa_s);
  }

  std::printf(
      "\nSection 5.2: exists-forall 2-QBF -> DSM model existence (DNDB)\n");
  std::printf("%14s %8s %10s %12s %12s\n", "QBF(nx,ny,m)", "agree",
              "exists%", "qbf[s]", "dsm[s]");
  for (int block : {3, 4, 5}) {
    int agree = 0, exists = 0;
    double qbf_s = 0, dsm_s = 0;
    const int reps = 10;
    Rng seeds(static_cast<uint64_t>(block) * 67);
    for (int i = 0; i < reps; ++i) {
      QbfForallExistsCnf base =
          RandomQbf(block, block, 2 * block, 3, seeds.Next());
      QbfExistsForallDnf q = NegateToExistsForall(base);
      Timer t1;
      auto truth = SolveExistsForall(q);
      qbf_s += t1.ElapsedSeconds();
      ReducedInstance inst = ReduceSigma2ToDsmExistence(q);
      DsmSemantics dsm(inst.db);
      Timer t2;
      auto has = dsm.HasModel();
      dsm_s += t2.ElapsedSeconds();
      if (truth.ok() && has.ok()) {
        agree += (*truth == *has) ? 1 : 0;
        exists += *truth ? 1 : 0;
      }
    }
    std::printf("  (%2d,%2d,%3d) %7d%% %9d%% %12.4f %12.4f\n", block, block,
                2 * block, 100 * agree / reps, 100 * exists / reps, qbf_s,
                dsm_s);
  }

  std::printf(
      "\nProposition 5.4: UNSAT -> unique minimal model (positive DDB)\n");
  std::printf("%14s %8s %10s %12s %12s\n", "CNF(n,m)", "agree", "unsat%",
              "sat[s]", "uminsat[s]");
  for (int n : {6, 10, 14}) {
    int agree = 0, unsat = 0;
    double sat_s = 0, umin_s = 0;
    const int reps = 10;
    Rng seeds(static_cast<uint64_t>(n) * 97);
    for (int i = 0; i < reps; ++i) {
      sat::Cnf cnf = RandomCnf(n, (3 * n) / 2, 2, seeds.Next());
      Timer t1;
      sat::Solver s;
      s.EnsureVars(cnf.num_vars);
      for (const auto& cl : cnf.clauses) s.AddClause(cl);
      bool is_unsat = s.Solve() == sat::SolveResult::kUnsat;
      sat_s += t1.ElapsedSeconds();
      ReducedInstance inst = ReduceUnsatToUniqueMinimalModel(cnf);
      MinimalEngine e(inst.db);
      Timer t2;
      auto r = UniqueMinimalModel(&e);
      umin_s += t2.ElapsedSeconds();
      agree += (r.has_model && r.unique == is_unsat) ? 1 : 0;
      unsat += is_unsat ? 1 : 0;
    }
    std::printf("  (%4d,%4d) %7d%% %9d%% %12.4f %12.4f\n", n, (3 * n) / 2,
                100 * agree / reps, 100 * unsat / reps, sat_s, umin_s);
  }
  std::printf("\nAll agreement columns must read 100%%.\n");
  return 0;
}

}  // namespace
}  // namespace dd

int main() { return dd::main_impl(); }
