// Per-cell scaling curves for representative Table 1/2 cells: the same
// decision procedures as bench_table1/2 swept over database size, with the
// growth exponent estimated from the curve. The tractable cells stay
// near-linear; the oracle-driven cells grow with the instance's combinat-
// orial structure (number of minimal projections, CEGAR refinements).
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "qbf/reductions.h"
#include "semantics/ddr.h"
#include "semantics/dsm.h"
#include "semantics/egcwa.h"
#include "semantics/gcwa.h"
#include "tests/test_util.h"
#include "util/timer.h"

namespace dd {
namespace {

struct Curve {
  const char* name;
  std::vector<int> sizes;
  // Returns SAT calls; records seconds via Timer outside.
  std::function<int64_t(int n, uint64_t seed, Rng* rng)> run;
};

int main_impl() {
  SemanticsOptions opts;
  opts.max_candidates = 5000000;

  std::vector<Curve> curves = {
      {"DDR literal (in P)",
       {50, 100, 200, 400},
       [&](int n, uint64_t seed, Rng*) {
         Database db = RandomPositiveDdb(n, 2 * n, seed);
         DdrSemantics s(db, opts);
         for (Var v = 0; v < 10; ++v) (void)s.InfersLiteral(Lit::Neg(v));
         return s.stats().sat_calls;
       }},
      {"GCWA literal (Pi2p, Theorem 3.1 family; n = quantifier block)",
       {3, 5, 7, 9, 11},
       [&](int n, uint64_t seed, Rng*) {
         QbfForallExistsCnf q = RandomQbf(n, n, 2 * n, 3, seed);
         ReducedInstance inst = ReducePi2ToGcwaLiteral(q);
         GcwaSemantics s(inst.db, opts);
         (void)s.InfersLiteral(Lit::Neg(inst.w));
         return s.stats().sat_calls;
       }},
      {"EGCWA formula (Pi2p, disjunction-rich positive DDBs)",
       {8, 12, 16, 20, 24},
       [&](int n, uint64_t seed, Rng* rng) {
         DdbConfig cfg;
         cfg.num_vars = n;
         cfg.num_clauses = n;
         cfg.max_head = 3;
         cfg.fact_fraction = 0.7;
         cfg.seed = seed;
         Database db = RandomDdb(cfg);
         EgcwaSemantics s(db, opts);
         (void)s.InfersFormula(testing::RandomFormula(rng, n, 3));
         return s.stats().sat_calls;
       }},
      {"DSM existence (Sigma2p)",
       {8, 12, 16, 20},
       [&](int n, uint64_t seed, Rng*) {
         DdbConfig cfg;
         cfg.num_vars = n;
         cfg.num_clauses = 2 * n;
         cfg.negation_fraction = 0.35;
         cfg.seed = seed;
         Database db = RandomDdb(cfg);
         DsmSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
  };

  for (const Curve& c : curves) {
    std::printf("%s\n", c.name);
    std::printf("%8s %12s %12s\n", "n", "time[s]", "SAT calls");
    std::vector<std::pair<int, double>> pts;
    Rng rng(0x5CA11);
    for (int n : c.sizes) {
      double secs = 0;
      int64_t sat = 0;
      const int reps = 5;
      Rng seeds(static_cast<uint64_t>(n) * 19);
      for (int i = 0; i < reps; ++i) {
        Timer t;
        sat += c.run(n, seeds.Next(), &rng);
        secs += t.ElapsedSeconds();
      }
      pts.push_back({n, secs});
      std::printf("%8d %12.5f %12lld\n", n, secs,
                  static_cast<long long>(sat));
    }
    std::printf("growth: %s\n\n", bench::GrowthNote(pts).c_str());
  }
  return 0;
}

}  // namespace
}  // namespace dd

int main() { return dd::main_impl(); }
