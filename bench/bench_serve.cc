// Serving-layer A/B (docs/SERVING.md): the same literal workload against
// one database runs three times through serve::QueryServer:
//
//   cold    fresh server, empty answer cache — every request pays the
//           full rung-0 evaluation;
//   warm    a new server warm-started from the snapshot the cold server
//           saved (serve/snapshot.h) — requests should be answer-cache
//           hits that skip the retry ladder entirely;
//   ladder  fresh server with an injected oracle fault on each request's
//           first solve (sat/fault.h), forcing one rung escalation per
//           request — the measured gap over the cold leg is the retry
//           ladder's overhead.
//
// The built-in audit asserts, for every row, that (a) warm and ladder
// verdicts equal the cold verdicts wherever both are definite (the
// degradation ladder may add kUnknown, never flip an answer), (b) the
// warm leg actually loaded the snapshot, and (c) no request ended in a
// hard error. A violation exits nonzero, so the harness doubles as an
// end-to-end soundness check of the persistence path.
//
// Flags: --seed=N --threads=N --timeout-ms=N (see bench_util.h; the
// timeout bounds each leg per row and marks cut rows "timeout": true).
// Results land in BENCH_serve.json (schema 2) for
// scripts/run_experiments.sh.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "batch/query_batch.h"
#include "gen/generators.h"
#include "sat/fault.h"
#include "serve/server.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dd {
namespace {

using bench::BenchArgs;
using bench::BenchJsonWriter;
using bench::BenchRecord;

/// Instance shape per semantics, mirroring bench_batch: the
/// enumeration-heavy kinds get smaller instances so the per-request
/// (unbatched) serving legs finish quickly.
struct KindCfg {
  SemanticsKind kind;
  int vars;
  int clauses;
};

const KindCfg kKinds[] = {
    {SemanticsKind::kCwa, 14, 22},  {SemanticsKind::kGcwa, 18, 40},
    {SemanticsKind::kEgcwa, 18, 40}, {SemanticsKind::kCcwa, 14, 22},
    {SemanticsKind::kEcwa, 12, 20}, {SemanticsKind::kDdr, 16, 26},
    {SemanticsKind::kPws, 16, 26},  {SemanticsKind::kPerf, 10, 16},
    {SemanticsKind::kIcwa, 10, 16}, {SemanticsKind::kDsm, 12, 20},
    {SemanticsKind::kPdsm, 10, 16},
};

const int kWorkloadSizes[] = {16, 128};

/// A random literal workload over both polarities; large n repeats
/// queries heavily — the regime the answer cache amortizes.
std::vector<batch::BatchQuery> LiteralWorkload(int n, int vars, Rng* rng) {
  std::vector<batch::BatchQuery> qs;
  qs.reserve(n);
  for (int i = 0; i < n; ++i) {
    const int v = static_cast<int>(rng->Below(vars));
    qs.push_back({rng->Chance(0.5) ? StrFormat("p%d", v)
                                   : StrFormat("not p%d", v),
                  true});
  }
  return qs;
}

int g_audit_failures = 0;

void Audit(bool ok, const char* what, const char* kind, int n) {
  if (!ok) {
    ++g_audit_failures;
    std::fprintf(stderr, "AUDIT FAILURE [%s n=%d]: %s\n", kind, n, what);
  }
}

/// Runs one leg: submits the whole workload through `server`, recording
/// verdicts and wall-clock. Cut off cooperatively by --timeout-ms.
struct LegResult {
  std::vector<Trilean> verdicts;
  double wall_ms = 0.0;
  bool timeout = false;
  bool hard_error = false;
};

LegResult RunLeg(serve::QueryServer* server, SemanticsKind kind,
                 const std::vector<batch::BatchQuery>& qs, int64_t timeout_ms,
                 bool fault_each_request) {
  LegResult leg;
  leg.verdicts.assign(qs.size(), Trilean::kUnknown);
  Timer timer;
  for (size_t i = 0; i < qs.size(); ++i) {
    if (timeout_ms > 0 && timer.ElapsedSeconds() * 1e3 > timeout_ms) {
      leg.timeout = true;
      break;
    }
    serve::QueryServer::Answer a;
    if (fault_each_request) {
      // Each request's first oracle call reports kUnknown: rung 0 comes
      // back empty-handed and the ladder must escalate.
      sat::FaultPlan plan;
      plan.unknown_at = 1;
      sat::ScopedFaultPlan scoped(plan);
      a = server->Submit(kind, qs[i]);
    } else {
      a = server->Submit(kind, qs[i]);
    }
    if (!a.status.ok() && a.status.code() != StatusCode::kUnavailable) {
      leg.hard_error = true;
      break;
    }
    leg.verdicts[i] = a.verdict;
  }
  leg.wall_ms = timer.ElapsedSeconds() * 1e3;
  return leg;
}

/// Definite verdicts must agree; kUnknown on either side is acceptable
/// degradation (docs/ROBUSTNESS.md).
bool DefiniteAgreement(const std::vector<Trilean>& a,
                       const std::vector<Trilean>& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] == Trilean::kUnknown || b[i] == Trilean::kUnknown) continue;
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  BenchJsonWriter out("serve");
  const std::string snapshot_path = "BENCH_serve.cache.tmp";
  std::printf(
      "Serving layer: cold vs snapshot-warm vs retry-ladder (seed=%llu, "
      "threads=%d)\n"
      "%-6s %6s | %10s %10s %10s | %6s %6s\n",
      static_cast<unsigned long long>(args.seed), args.threads, "sem", "n",
      "cold ms", "warm ms", "ladder ms", "hits", "rungs");

  for (const KindCfg& cfg : kKinds) {
    const char* kind_name = SemanticsKindName(cfg.kind);
    Database db = RandomPositiveDdb(
        cfg.vars, cfg.clauses, DeriveSeed(args.seed, cfg.vars * 131 + 7));
    for (int n : kWorkloadSizes) {
      Rng rng(DeriveSeed(args.seed, static_cast<uint64_t>(n) * 211 +
                                        static_cast<uint64_t>(cfg.kind)));
      std::vector<batch::BatchQuery> qs = LiteralWorkload(n, cfg.vars, &rng);

      serve::ServeOptions opts;
      opts.cache_path = snapshot_path;
      opts.num_threads = args.threads;

      // Cold leg: empty cache (stale snapshots from the previous row are
      // invalidated by construction order — remove to keep loads counted
      // per row).
      std::remove(snapshot_path.c_str());
      serve::QueryServer cold(db, opts);
      LegResult cold_leg =
          RunLeg(&cold, cfg.kind, qs, args.timeout_ms, false);
      Audit(!cold_leg.hard_error, "cold leg hard error", kind_name, n);
      Status saved = cold.SaveCache();
      Audit(saved.ok(), saved.ToString().c_str(), kind_name, n);

      // Warm leg: a new server restores the snapshot; repeats should be
      // pure cache hits.
      serve::QueryServer warm(db, opts);
      Audit(warm.stats().cache_loads == 1, "warm leg did not load snapshot",
            kind_name, n);
      LegResult warm_leg =
          RunLeg(&warm, cfg.kind, qs, args.timeout_ms, false);
      Audit(!warm_leg.hard_error, "warm leg hard error", kind_name, n);
      Audit(DefiniteAgreement(cold_leg.verdicts, warm_leg.verdicts),
            "warm/cold verdict mismatch", kind_name, n);

      // Ladder leg: no snapshot, every request's first solve faulted.
      serve::ServeOptions ladder_opts = opts;
      ladder_opts.cache_path.clear();
      serve::QueryServer ladder(db, ladder_opts);
      LegResult ladder_leg =
          RunLeg(&ladder, cfg.kind, qs, args.timeout_ms, true);
      Audit(!ladder_leg.hard_error, "ladder leg hard error", kind_name, n);
      Audit(DefiniteAgreement(cold_leg.verdicts, ladder_leg.verdicts),
            "ladder/cold verdict mismatch", kind_name, n);

      const serve::ServeStats warm_stats = warm.stats();
      const serve::ServeStats ladder_stats = ladder.stats();
      const bool timeout =
          cold_leg.timeout || warm_leg.timeout || ladder_leg.timeout;
      std::printf("%-6s %6d | %10.2f %10.2f %10.2f | %6lld %6lld%s\n",
                  kind_name, n, cold_leg.wall_ms, warm_leg.wall_ms,
                  ladder_leg.wall_ms,
                  static_cast<long long>(warm_stats.cache_hits),
                  static_cast<long long>(ladder_stats.rungs),
                  timeout ? "  (timeout)" : "");

      BenchRecord rec;
      rec.name = StrFormat("%s/serve", kind_name);
      rec.n = n;
      rec.wall_ms = cold_leg.wall_ms;
      rec.cache_hits = warm_stats.cache_hits;
      rec.timeout = timeout;
      rec.AddPhase("cold", cold_leg.wall_ms)
          .AddPhase("warm", warm_leg.wall_ms)
          .AddPhase("ladder", ladder_leg.wall_ms);
      obs::MetricsRegistry reg;
      serve::Publish(ladder_stats, &reg);
      rec.metrics = reg.Snapshot();
      out.Add(std::move(rec));
    }
  }
  std::remove(snapshot_path.c_str());

  if (!out.Write()) {
    std::fprintf(stderr, "cannot write BENCH_serve.json\n");
    return 1;
  }
  if (g_audit_failures > 0) {
    std::fprintf(stderr, "%d audit failure(s)\n", g_audit_failures);
    return 1;
  }
  std::printf(
      "audit: warm == cold == ladder on definite answers, snapshots "
      "restored\n");
  return 0;
}

}  // namespace dd

int main(int argc, char** argv) { return dd::Main(argc, argv); }
