// Reproduces Table 1 of the paper (complexity of the three decision
// problems for *positive* propositional DDBs) as a measured table: for each
// (semantics, task) cell we run the algorithm-faithful decision procedure
// on a random positive-DDB family and report wall time and NP-oracle (SAT)
// call counts next to the complexity class the paper proves.
//
// What to look for (the paper's "shape"):
//   * DDR and PWS literal inference run with ZERO SAT calls — the only
//     tractable entries, exactly as starred in Table 1.
//   * Model existence is O(1) for every semantics on positive DBs: zero
//     SAT calls across the board.
//   * All other cells drive the SAT/Σ₂ᵖ oracle machinery; their hardness
//     is witnessed separately by bench_reductions (2-QBF embeddings).
#include <cstdio>
#include <functional>
#include <memory>

#include "bench/bench_util.h"
#include "core/oracle_stats.h"
#include "gen/generators.h"
#include "minimal/pqz.h"
#include "semantics/ccwa.h"
#include "semantics/ddr.h"
#include "semantics/dsm.h"
#include "semantics/ecwa_circ.h"
#include "semantics/egcwa.h"
#include "semantics/gcwa.h"
#include "semantics/icwa.h"
#include "semantics/pdsm.h"
#include "semantics/perf.h"
#include "semantics/pws.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dd {
namespace {

struct Cell {
  const char* semantics;
  const char* task;
  const char* paper_class;
  int num_vars;
  // Returns SAT calls spent answering on the given database.
  std::function<int64_t(const Database&, Rng*)> run;
};

Partition HalfPartition(int n) {
  Partition p;
  p.p = Interpretation(n);
  p.q = Interpretation(n);
  p.z = Interpretation(n);
  for (Var v = 0; v < n; ++v) {
    if (v < n / 2) {
      p.p.Insert(v);
    } else if (v < 3 * n / 4) {
      p.q.Insert(v);
    } else {
      p.z.Insert(v);
    }
  }
  return p;
}

Formula Query(const Database& db, Rng* rng) {
  return testing::RandomFormula(rng, db.num_vars(), 3);
}

int main_impl(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchJsonWriter json("table1");
  const int kInstances = 5;
  SemanticsOptions opts;
  opts.max_candidates = 2000000;
  opts.use_sessions = args.use_sessions;
  opts.num_threads = args.threads;

  std::vector<Cell> cells = {
      {"GCWA", "literal ~p", "Pi2p-complete", 14,
       [&](const Database& db, Rng*) {
         GcwaSemantics s(db, opts);
         (void)s.InfersLiteral(Lit::Neg(0));
         return s.stats().sat_calls;
       }},
      {"GCWA", "formula", "Pi2p-hard, in P^Sigma2p[O(log n)]", 14,
       [&](const Database& db, Rng* rng) {
         GcwaSemantics s(db, opts);
         (void)s.InfersFormula(Query(db, rng));
         return s.stats().sat_calls;
       }},
      {"GCWA", "exists model", "O(1)", 14,
       [&](const Database& db, Rng*) {
         GcwaSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"DDR", "literal ~p", "in P (*Chan)", 14,
       [&](const Database& db, Rng*) {
         DdrSemantics s(db, opts);
         (void)s.InfersLiteral(Lit::Neg(0));
         return s.stats().sat_calls;
       }},
      {"DDR", "formula", "coNP-complete", 14,
       [&](const Database& db, Rng* rng) {
         DdrSemantics s(db, opts);
         (void)s.InfersFormula(Query(db, rng));
         return s.stats().sat_calls;
       }},
      {"DDR", "exists model", "O(1)", 14,
       [&](const Database& db, Rng*) {
         DdrSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"PWS", "literal ~p", "in P (*Chan)", 14,
       [&](const Database& db, Rng*) {
         PwsSemantics s(db, opts);
         (void)s.InfersLiteral(Lit::Neg(0));
         return s.stats().sat_calls;
       }},
      {"PWS", "formula", "coNP-complete", 14,
       [&](const Database& db, Rng* rng) {
         PwsSemantics s(db, opts);
         (void)s.InfersFormula(Query(db, rng));
         return s.stats().sat_calls;
       }},
      {"PWS", "exists model", "O(1)", 14,
       [&](const Database& db, Rng*) {
         PwsSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"EGCWA", "literal ~p", "Pi2p-complete", 14,
       [&](const Database& db, Rng*) {
         EgcwaSemantics s(db, opts);
         (void)s.InfersLiteral(Lit::Neg(0));
         return s.stats().sat_calls;
       }},
      {"EGCWA", "formula", "Pi2p-complete", 14,
       [&](const Database& db, Rng* rng) {
         EgcwaSemantics s(db, opts);
         (void)s.InfersFormula(Query(db, rng));
         return s.stats().sat_calls;
       }},
      {"EGCWA", "exists model", "O(1)", 14,
       [&](const Database& db, Rng*) {
         EgcwaSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"CCWA", "literal ~p (p in P)", "Pi2p-hard, in P^Sigma2p[O(log n)]", 14,
       [&](const Database& db, Rng*) {
         CcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.InfersLiteral(Lit::Neg(0));
         return s.stats().sat_calls;
       }},
      {"CCWA", "formula", "Pi2p-hard, in P^Sigma2p[O(log n)]", 14,
       [&](const Database& db, Rng* rng) {
         CcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.InfersFormula(Query(db, rng));
         return s.stats().sat_calls;
       }},
      {"CCWA", "exists model", "O(1)", 14,
       [&](const Database& db, Rng*) {
         CcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"ECWA", "literal ~p", "Pi2p-complete", 14,
       [&](const Database& db, Rng*) {
         EcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.InfersFormula(FormulaNode::MakeLit(Lit::Neg(0)));
         return s.stats().sat_calls;
       }},
      {"ECWA", "formula", "Pi2p-complete", 14,
       [&](const Database& db, Rng* rng) {
         EcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.InfersFormula(Query(db, rng));
         return s.stats().sat_calls;
       }},
      {"ECWA", "exists model", "O(1)", 14,
       [&](const Database& db, Rng*) {
         EcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"ICWA", "literal ~p", "Pi2p-complete", 12,
       [&](const Database& db, Rng*) {
         IcwaSemantics s(db, opts);
         (void)s.InfersFormula(FormulaNode::MakeLit(Lit::Neg(0)));
         return s.stats().sat_calls;
       }},
      {"ICWA", "formula", "Pi2p-complete", 12,
       [&](const Database& db, Rng* rng) {
         IcwaSemantics s(db, opts);
         (void)s.InfersFormula(Query(db, rng));
         return s.stats().sat_calls;
       }},
      {"ICWA", "exists model", "O(1)", 12,
       [&](const Database& db, Rng*) {
         IcwaSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"PERF", "literal ~p", "Pi2p-complete", 12,
       [&](const Database& db, Rng*) {
         PerfSemantics s(db, opts);
         (void)s.InfersFormula(FormulaNode::MakeLit(Lit::Neg(0)));
         return s.stats().sat_calls;
       }},
      {"PERF", "formula", "Pi2p-complete", 12,
       [&](const Database& db, Rng* rng) {
         PerfSemantics s(db, opts);
         (void)s.InfersFormula(Query(db, rng));
         return s.stats().sat_calls;
       }},
      {"PERF", "exists model", "O(1)", 12,
       [&](const Database& db, Rng*) {
         PerfSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"DSM", "literal ~p", "Pi2p-complete", 12,
       [&](const Database& db, Rng*) {
         DsmSemantics s(db, opts);
         (void)s.InfersFormula(FormulaNode::MakeLit(Lit::Neg(0)));
         return s.stats().sat_calls;
       }},
      {"DSM", "formula", "Pi2p-complete", 12,
       [&](const Database& db, Rng* rng) {
         DsmSemantics s(db, opts);
         (void)s.InfersFormula(Query(db, rng));
         return s.stats().sat_calls;
       }},
      {"DSM", "exists model", "O(1)", 12,
       [&](const Database& db, Rng*) {
         DsmSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"PDSM", "literal ~p", "Pi2p-complete", 7,
       [&](const Database& db, Rng*) {
         PdsmSemantics s(db, opts);
         (void)s.InfersFormula(FormulaNode::MakeLit(Lit::Neg(0)));
         return s.stats().sat_calls;
       }},
      {"PDSM", "formula", "Pi2p-complete", 7,
       [&](const Database& db, Rng* rng) {
         PdsmSemantics s(db, opts);
         (void)s.InfersFormula(Query(db, rng));
         return s.stats().sat_calls;
       }},
      {"PDSM", "exists model", "O(1)", 7,
       [&](const Database& db, Rng*) {
         PdsmSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
  };

  std::vector<MeasuredCell> rows;
  for (const Cell& cell : cells) {
    Rng rng(0x7AB1E001);
    Timer t;
    int64_t sat = 0;
    bool timed_out = false;
    double gen_secs = 0;
    double solve_secs = 0;
    for (int i = 0; i < kInstances; ++i) {
      // Per-instance seeds are derived, not drawn from a stream, so any
      // instance can be regenerated independently (and in parallel).
      Timer gen_t;
      Database db = RandomPositiveDdb(
          cell.num_vars, 2 * cell.num_vars,
          DeriveSeed(args.seed * 1000 + static_cast<uint64_t>(cell.num_vars),
                     static_cast<uint64_t>(i)));
      gen_secs += gen_t.ElapsedSeconds();
      // Per-instance watchdog: the engines poll this budget between oracle
      // calls, so a pathological instance is cut off instead of hanging
      // the whole sweep; the row records the cutoff.
      opts.budget = bench::MakeWatchdogBudget(args);
      Timer solve_t;
      sat += cell.run(db, &rng);
      solve_secs += solve_t.ElapsedSeconds();
      if (bench::TimedOut(opts.budget)) {
        timed_out = true;
        break;
      }
    }
    opts.budget = nullptr;
    MeasuredCell row;
    row.semantics = cell.semantics;
    row.task = cell.task;
    row.paper_class = cell.paper_class;
    row.seconds = t.ElapsedSeconds();
    row.sat_calls = sat;
    row.instances = kInstances;
    row.note = timed_out ? "TIMEOUT (watchdog)"
               : sat == 0 ? "no oracle: tractable/O(1) path"
                          : StrFormat("n=%d", cell.num_vars);
    rows.push_back(row);
    bench::BenchRecord rec{StrFormat("%s/%s", cell.semantics, cell.task),
                           cell.num_vars, row.seconds * 1e3, sat, 0,
                           timed_out};
    // Per-phase attribution + the row's counter snapshot under the
    // canonical dd.* names (docs/OBSERVABILITY.md).
    rec.AddPhase("generate", gen_secs * 1e3)
        .AddPhase("solve", solve_secs * 1e3);
    MinimalStats cell_stats;
    cell_stats.sat_calls = sat;
    rec.metrics = obs::SnapshotOf(cell_stats);
    json.Add(std::move(rec));
  }
  std::printf("%s\n",
              FormatMeasuredTable(
                  "Table 1 (measured): positive propositional DDBs "
                  "(no integrity clauses, no negation)",
                  rows)
                  .c_str());
  std::printf(
      "Hardness side of each *-complete cell is exercised by "
      "bench_reductions (2-QBF embeddings).\n");
  json.Write();
  return 0;
}

}  // namespace
}  // namespace dd

int main(int argc, char** argv) { return dd::main_impl(argc, argv); }
