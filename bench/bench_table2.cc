// Reproduces Table 2 of the paper: the same three decision problems for
// general propositional DDBs — integrity clauses allowed everywhere, plus
// negation for the semantics defined on DNDBs (PERF, ICWA, DSM, PDSM).
//
// Shape to verify against Table 1:
//   * DDR and PWS literal inference LOSE their zero-oracle path: with
//     integrity clauses both now make SAT calls / split enumerations
//     (Chan: coNP-complete). This is the single most visible movement
//     between the two tables.
//   * Model existence stops being free for the CWA family: EGCWA/GCWA/
//     CCWA/ECWA existence now equals satisfiability (NP-complete) and
//     issues exactly one SAT query per instance.
//   * ICWA model existence stays O(1) — stratification certifies
//     consistency (no integrity clauses in its row, as in the paper).
//   * PERF/DSM/PDSM model existence becomes a genuine search
//     (Σ₂ᵖ-complete): candidate minimal models are generated and checked.
#include <cstdio>
#include <functional>

#include "bench/bench_util.h"
#include "core/oracle_stats.h"
#include "gen/generators.h"
#include "semantics/ccwa.h"
#include "semantics/ddr.h"
#include "semantics/dsm.h"
#include "semantics/ecwa_circ.h"
#include "semantics/egcwa.h"
#include "semantics/gcwa.h"
#include "semantics/icwa.h"
#include "semantics/pdsm.h"
#include "semantics/perf.h"
#include "semantics/pws.h"
#include "tests/test_util.h"
#include "util/rng.h"
#include "util/timer.h"

namespace dd {
namespace {

Database MakeIcDb(int n, uint64_t seed) {
  DdbConfig cfg;
  cfg.num_vars = n;
  cfg.num_clauses = 2 * n;
  cfg.integrity_fraction = 0.15;
  cfg.seed = seed;
  return RandomDdb(cfg);
}

Database MakeNormalDb(int n, uint64_t seed) {
  DdbConfig cfg;
  cfg.num_vars = n;
  cfg.num_clauses = 2 * n;
  cfg.integrity_fraction = 0.1;
  cfg.negation_fraction = 0.3;
  cfg.seed = seed;
  return RandomDdb(cfg);
}

Database MakeStratDb(int n, uint64_t seed) {
  return RandomStratifiedDdb(n, 2 * n, 3, 0.5, seed);
}

// PWS enumerates head splits (exponential in the number of disjunctive
// rules); keep that family small so the coNP jump is visible without the
// harness timing out.
Database MakePwsDb(int n, uint64_t seed) {
  DdbConfig cfg;
  cfg.num_vars = n;
  cfg.num_clauses = n;
  cfg.max_head = 2;
  cfg.fact_fraction = 0.5;
  cfg.integrity_fraction = 0.2;
  cfg.seed = seed;
  return RandomDdb(cfg);
}

struct Cell {
  const char* semantics;
  const char* task;
  const char* paper_class;
  int num_vars;
  std::function<Database(int, uint64_t)> make;
  std::function<int64_t(const Database&, Rng*)> run;
};

Partition HalfPartition(int n) {
  Partition p;
  p.p = Interpretation(n);
  p.q = Interpretation(n);
  p.z = Interpretation(n);
  for (Var v = 0; v < n; ++v) {
    if (v < n / 2) {
      p.p.Insert(v);
    } else if (v < 3 * n / 4) {
      p.q.Insert(v);
    } else {
      p.z.Insert(v);
    }
  }
  return p;
}

int main_impl(int argc, char** argv) {
  const bench::BenchArgs args = bench::BenchArgs::Parse(argc, argv);
  bench::BenchJsonWriter json("table2");
  const int kInstances = 5;
  SemanticsOptions opts;
  opts.max_candidates = 2000000;
  opts.use_sessions = args.use_sessions;
  opts.num_threads = args.threads;

  auto query = [](const Database& db, Rng* rng) {
    return testing::RandomFormula(rng, db.num_vars(), 3);
  };

  std::vector<Cell> cells = {
      {"GCWA", "literal ~p", "Pi2p-complete", 12, MakeIcDb,
       [&](const Database& db, Rng*) {
         GcwaSemantics s(db, opts);
         (void)s.InfersLiteral(Lit::Neg(0));
         return s.stats().sat_calls;
       }},
      {"GCWA", "formula", "Pi2p-hard, in P^Sigma2p[O(log n)]", 12, MakeIcDb,
       [&](const Database& db, Rng* rng) {
         GcwaSemantics s(db, opts);
         (void)s.InfersFormula(query(db, rng));
         return s.stats().sat_calls;
       }},
      {"GCWA", "exists model", "NP-complete (=SAT)", 12, MakeIcDb,
       [&](const Database& db, Rng*) {
         GcwaSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"DDR", "literal ~p", "coNP-complete (*Chan)", 12, MakeIcDb,
       [&](const Database& db, Rng*) {
         DdrSemantics s(db, opts);
         (void)s.InfersLiteral(Lit::Neg(0));
         return s.stats().sat_calls;
       }},
      {"DDR", "formula", "coNP-complete", 12, MakeIcDb,
       [&](const Database& db, Rng* rng) {
         DdrSemantics s(db, opts);
         (void)s.InfersFormula(query(db, rng));
         return s.stats().sat_calls;
       }},
      {"DDR", "exists model", "NP-complete", 12, MakeIcDb,
       [&](const Database& db, Rng*) {
         DdrSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"PWS", "literal ~p", "coNP-complete (*Chan)", 10, MakePwsDb,
       [&](const Database& db, Rng*) {
         PwsSemantics s(db, opts);
         (void)s.InfersLiteral(Lit::Neg(0));
         return s.stats().sat_calls;
       }},
      {"PWS", "formula", "coNP-complete", 10, MakePwsDb,
       [&](const Database& db, Rng* rng) {
         PwsSemantics s(db, opts);
         (void)s.InfersFormula(query(db, rng));
         return s.stats().sat_calls;
       }},
      {"PWS", "exists model", "NP-complete", 10, MakePwsDb,
       [&](const Database& db, Rng*) {
         PwsSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"EGCWA", "literal ~p", "Pi2p-complete", 12, MakeIcDb,
       [&](const Database& db, Rng*) {
         EgcwaSemantics s(db, opts);
         (void)s.InfersLiteral(Lit::Neg(0));
         return s.stats().sat_calls;
       }},
      {"EGCWA", "formula", "Pi2p-complete", 12, MakeIcDb,
       [&](const Database& db, Rng* rng) {
         EgcwaSemantics s(db, opts);
         (void)s.InfersFormula(query(db, rng));
         return s.stats().sat_calls;
       }},
      {"EGCWA", "exists model", "NP-complete", 12, MakeIcDb,
       [&](const Database& db, Rng*) {
         EgcwaSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"CCWA", "literal ~p", "Pi2p-hard, in P^Sigma2p[O(log n)]", 12,
       MakeIcDb,
       [&](const Database& db, Rng*) {
         CcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.InfersLiteral(Lit::Neg(0));
         return s.stats().sat_calls;
       }},
      {"CCWA", "formula", "Pi2p-hard, in P^Sigma2p[O(log n)]", 12, MakeIcDb,
       [&](const Database& db, Rng* rng) {
         CcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.InfersFormula(query(db, rng));
         return s.stats().sat_calls;
       }},
      {"CCWA", "exists model", "NP-complete", 12, MakeIcDb,
       [&](const Database& db, Rng*) {
         CcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"ECWA", "literal ~p", "Pi2p-complete", 12, MakeIcDb,
       [&](const Database& db, Rng*) {
         EcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.InfersFormula(FormulaNode::MakeLit(Lit::Neg(0)));
         return s.stats().sat_calls;
       }},
      {"ECWA", "formula", "Pi2p-complete", 12, MakeIcDb,
       [&](const Database& db, Rng* rng) {
         EcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.InfersFormula(query(db, rng));
         return s.stats().sat_calls;
       }},
      {"ECWA", "exists model", "NP-complete", 12, MakeIcDb,
       [&](const Database& db, Rng*) {
         EcwaSemantics s(db, HalfPartition(db.num_vars()), opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"ICWA", "literal ~p", "Pi2p-complete", 10, MakeStratDb,
       [&](const Database& db, Rng*) {
         IcwaSemantics s(db, opts);
         (void)s.InfersFormula(FormulaNode::MakeLit(Lit::Neg(0)));
         return s.stats().sat_calls;
       }},
      {"ICWA", "formula", "Pi2p-complete", 10, MakeStratDb,
       [&](const Database& db, Rng* rng) {
         IcwaSemantics s(db, opts);
         (void)s.InfersFormula(query(db, rng));
         return s.stats().sat_calls;
       }},
      {"ICWA", "exists model", "O(1) (given S)", 10, MakeStratDb,
       [&](const Database& db, Rng*) {
         IcwaSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"PERF", "literal ~p", "Pi2p-complete", 10, MakeStratDb,
       [&](const Database& db, Rng*) {
         PerfSemantics s(db, opts);
         (void)s.InfersFormula(FormulaNode::MakeLit(Lit::Neg(0)));
         return s.stats().sat_calls;
       }},
      {"PERF", "formula", "Pi2p-complete", 10, MakeStratDb,
       [&](const Database& db, Rng* rng) {
         PerfSemantics s(db, opts);
         (void)s.InfersFormula(query(db, rng));
         return s.stats().sat_calls;
       }},
      {"PERF", "exists model", "Sigma2p-complete", 10,
       [](int n, uint64_t seed) {
         // Possibly unstratifiable DNDBs: existence is a real search.
         DdbConfig cfg;
         cfg.num_vars = n;
         cfg.num_clauses = 2 * n;
         cfg.negation_fraction = 0.35;
         cfg.seed = seed;
         return RandomDdb(cfg);
       },
       [&](const Database& db, Rng*) {
         PerfSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"DSM", "literal ~p", "Pi2p-complete", 10, MakeNormalDb,
       [&](const Database& db, Rng*) {
         DsmSemantics s(db, opts);
         (void)s.InfersFormula(FormulaNode::MakeLit(Lit::Neg(0)));
         return s.stats().sat_calls;
       }},
      {"DSM", "formula", "Pi2p-complete", 10, MakeNormalDb,
       [&](const Database& db, Rng* rng) {
         DsmSemantics s(db, opts);
         (void)s.InfersFormula(query(db, rng));
         return s.stats().sat_calls;
       }},
      {"DSM", "exists model", "Sigma2p-complete", 10, MakeNormalDb,
       [&](const Database& db, Rng*) {
         DsmSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
      {"PDSM", "literal ~p", "Pi2p-complete", 6, MakeNormalDb,
       [&](const Database& db, Rng*) {
         PdsmSemantics s(db, opts);
         (void)s.InfersFormula(FormulaNode::MakeLit(Lit::Neg(0)));
         return s.stats().sat_calls;
       }},
      {"PDSM", "formula", "Pi2p-complete", 6, MakeNormalDb,
       [&](const Database& db, Rng* rng) {
         PdsmSemantics s(db, opts);
         (void)s.InfersFormula(query(db, rng));
         return s.stats().sat_calls;
       }},
      {"PDSM", "exists model", "Sigma2p-complete", 6, MakeNormalDb,
       [&](const Database& db, Rng*) {
         PdsmSemantics s(db, opts);
         (void)s.HasModel();
         return s.stats().sat_calls;
       }},
  };

  std::vector<MeasuredCell> rows;
  for (const Cell& cell : cells) {
    Rng rng(0x7AB1E002);
    Timer t;
    int64_t sat = 0;
    bool timed_out = false;
    double gen_secs = 0;
    double solve_secs = 0;
    for (int i = 0; i < kInstances; ++i) {
      // Derived (order-independent) per-instance seeds; see util/rng.h.
      Timer gen_t;
      Database db = cell.make(
          cell.num_vars,
          DeriveSeed(args.seed * 2000 + static_cast<uint64_t>(cell.num_vars),
                     static_cast<uint64_t>(i)));
      gen_secs += gen_t.ElapsedSeconds();
      // Per-instance watchdog (--timeout-ms): cut pathological instances
      // off cooperatively instead of hanging the sweep.
      opts.budget = bench::MakeWatchdogBudget(args);
      Timer solve_t;
      sat += cell.run(db, &rng);
      solve_secs += solve_t.ElapsedSeconds();
      if (bench::TimedOut(opts.budget)) {
        timed_out = true;
        break;
      }
    }
    opts.budget = nullptr;
    MeasuredCell row;
    row.semantics = cell.semantics;
    row.task = cell.task;
    row.paper_class = cell.paper_class;
    row.seconds = t.ElapsedSeconds();
    row.sat_calls = sat;
    row.instances = kInstances;
    row.note = timed_out ? "TIMEOUT (watchdog)"
               : sat == 0 ? "no oracle: O(1)/poly path"
                          : StrFormat("n=%d", cell.num_vars);
    rows.push_back(row);
    bench::BenchRecord rec{StrFormat("%s/%s", cell.semantics, cell.task),
                           cell.num_vars, row.seconds * 1e3, sat, 0,
                           timed_out};
    // Per-phase attribution + the row's counter snapshot under the
    // canonical dd.* names (docs/OBSERVABILITY.md).
    rec.AddPhase("generate", gen_secs * 1e3)
        .AddPhase("solve", solve_secs * 1e3);
    MinimalStats cell_stats;
    cell_stats.sat_calls = sat;
    rec.metrics = obs::SnapshotOf(cell_stats);
    json.Add(std::move(rec));
  }
  std::printf("%s\n",
              FormatMeasuredTable(
                  "Table 2 (measured): propositional DDBs with integrity "
                  "clauses (negation for PERF/ICWA/DSM/PDSM rows)",
                  rows)
                  .c_str());
  std::printf(
      "Movements vs Table 1 to check: DDR/PWS literal cells now spend "
      "oracle work; CWA-family existence issues SAT calls; ICWA existence "
      "stays free.\n");
  json.Write();
  return 0;
}

}  // namespace
}  // namespace dd

int main(int argc, char** argv) { return dd::main_impl(argc, argv); }
