// Template-answering A/B (docs/TEMPLATES.md): one first-order template,
// three evaluation strategies over the same grounded database:
//
//   batched   tmpl::AnswerTemplate — every instantiation compiled into ONE
//             AnswerBatch call, so the whole set shares a single database
//             fingerprint, group model bank and answer cache;
//   session   tmpl naive mode — the sequential single-query entry points
//             on one shared Reasoner (engine-level state like the GCWA
//             augmentation set is still amortized across queries, banks
//             and the answer cache are not);
//   isolated  true per-instantiation evaluation — a fresh Reasoner per
//             substitution, the cost N independent one-query runs (one
//             ddquery invocation per ground query) would pay.
//
// The instance family is a two-color propagation ring: m ring nodes with
// two color-SWAPPING edges (the swap rules merge the r- and g-SCCs, so
// the program is NOT head-cycle-free and per-query fast paths cannot
// shortcut the minimal-model work), plus a j-node ring seeded with a
// forced fact (its nodes are skeptically colored — the non-trivial yes
// answers). Bottom-up grounding yields 2m + j candidate substitutions for
// color(X,C) and exactly TWO intended models under GCWA and EGCWA — the
// regime where one shared model bank amortizes everything.
//
// The built-in audit asserts, per row: (a) all three legs return the
// identical yes-substitution set with no unknowns, (b) batched beats
// isolated by >= 5x at >= 64 instantiations (the acceptance bar for the
// grounder-to-batch pipeline), (c) the batched leg actually built a
// complete bank. A violation exits nonzero.
//
// Flags: --seed=N (accepted for driver uniformity; the family is
// deterministic) --threads=N --timeout-ms=N (cooperative per-leg cutoff;
// cut rows are written with "timeout": true and skip the speedup audit).
// Results land in BENCH_template.json (schema 2) for
// scripts/run_experiments.sh.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/reasoner.h"
#include "ground/grounder.h"
#include "ground/parser.h"
#include "tmpl/answer.h"
#include "tmpl/enumerate.h"
#include "tmpl/template.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dd {
namespace {

using bench::BenchArgs;
using bench::BenchJsonWriter;
using bench::BenchRecord;

/// Ring sizes per row: 2m + j candidate substitutions.
struct SizeCfg {
  int m;  ///< swap-ring nodes (choice propagates, 2 intended models)
  int j;  ///< forced-ring nodes (skeptical yes answers)
};

const SizeCfg kSizes[] = {{28, 8}, {64, 16}, {116, 24}};

const SemanticsKind kKinds[] = {SemanticsKind::kGcwa, SemanticsKind::kEgcwa};

/// The two-ring program (header comment): a swap ring whose color choice
/// is genuinely disjunctive and a forced ring pinned to r.
std::string TwoRingProgram(int m, int j) {
  std::string p = "color(x1,r) | color(x1,g).\n";
  for (int i = 1; i < m; ++i) {
    p += StrFormat(i == m / 2 ? "sedge(x%d,x%d).\n" : "edge(x%d,x%d).\n", i,
                   i + 1);
  }
  p += StrFormat("sedge(x%d,x1).\n", m);
  p += "color(y1,r).\n";
  for (int i = 1; i < j; ++i) p += StrFormat("edge(y%d,y%d).\n", i, i + 1);
  p += StrFormat("edge(y%d,y1).\n", j);
  p += "color(Y,C) :- edge(X,Y), color(X,C).\n";
  p += "color(Y,r) :- sedge(X,Y), color(X,g).\n";
  p += "color(Y,g) :- sedge(X,Y), color(X,r).\n";
  p += ":- color(X,r), color(X,g).\n";
  return p;
}

int g_audit_failures = 0;

void Audit(bool ok, const char* what, const char* kind, const char* mode,
           int n) {
  if (!ok) {
    ++g_audit_failures;
    std::fprintf(stderr, "AUDIT FAILURE [%s %s n=%d]: %s\n", kind, mode, n,
                 what);
  }
}

using BindingSet = std::set<std::vector<std::string>>;

BindingSet ToSet(const std::vector<std::vector<std::string>>& rows) {
  return BindingSet(rows.begin(), rows.end());
}

}  // namespace

int Main(int argc, char** argv) {
  BenchArgs args = BenchArgs::Parse(argc, argv);
  BenchJsonWriter out("template");
  std::printf(
      "Template answering: batched (shared bank) vs session vs isolated "
      "(threads=%d)\n"
      "%-6s %-5s %5s | %9s %9s %9s %9s | %7s %7s\n",
      args.threads, "sem", "mode", "cand", "ground ms", "batch ms", "sess ms",
      "iso ms", "iso x", "sess x");

  for (const SizeCfg& size : kSizes) {
    // Ground once per size; the phase is charged to every row of the size
    // (all legs consume the same propositional database).
    Timer ground_timer;
    Result<ground::FoProgram> fo =
        ground::ParseProgram(TwoRingProgram(size.m, size.j));
    if (!fo.ok()) {
      std::fprintf(stderr, "parse: %s\n", fo.status().ToString().c_str());
      return 1;
    }
    Result<Database> db = ground::GroundBottomUp(*fo);
    if (!db.ok()) {
      std::fprintf(stderr, "ground: %s\n", db.status().ToString().c_str());
      return 1;
    }
    const double ground_ms = ground_timer.ElapsedSeconds() * 1e3;

    Result<tmpl::Template> t = tmpl::ParseTemplate("color(X,C)");
    if (!t.ok()) {
      std::fprintf(stderr, "template: %s\n", t.status().ToString().c_str());
      return 1;
    }

    for (SemanticsKind kind : kKinds) {
      const char* kind_name = SemanticsKindName(kind);
      for (batch::BatchMode mode :
           {batch::BatchMode::kSkeptical, batch::BatchMode::kBrave}) {
        const char* mode_name =
            mode == batch::BatchMode::kBrave ? "brave" : "skep";
        bool timeout = false;

        // Batched leg: one AnswerTemplate call.
        tmpl::TemplateOptions topts;
        topts.batch.num_threads = args.threads;
        if (args.timeout_ms > 0) topts.batch.deadline_ms = args.timeout_ms;
        Timer batch_timer;
        Reasoner batched_r(*db);
        Result<tmpl::TemplateAnswer> batched =
            tmpl::AnswerTemplate(&batched_r, kind, *t, mode, topts);
        const double batch_ms = batch_timer.ElapsedSeconds() * 1e3;
        if (!batched.ok()) {
          Audit(false, batched.status().ToString().c_str(), kind_name,
                mode_name, 0);
          continue;
        }
        const int cand = static_cast<int>(batched->candidates);
        timeout = timeout || !batched->unknown.empty();

        // Session leg: tmpl naive mode (sequential entry points, one
        // shared Reasoner).
        tmpl::TemplateOptions nopts = topts;
        nopts.naive = true;
        Timer session_timer;
        Reasoner session_r(*db);
        Result<tmpl::TemplateAnswer> session =
            tmpl::AnswerTemplate(&session_r, kind, *t, mode, nopts);
        const double session_ms = session_timer.ElapsedSeconds() * 1e3;
        if (!session.ok()) {
          Audit(false, session.status().ToString().c_str(), kind_name,
                mode_name, cand);
          continue;
        }
        timeout = timeout || !session->unknown.empty();

        // Isolated leg: a fresh Reasoner per substitution — zero shared
        // state, the true per-instantiation baseline.
        Reasoner probe(*db);
        tmpl::DomainIndex idx = tmpl::DomainIndex::Build(probe.db());
        Result<std::vector<std::vector<std::string>>> bindings =
            tmpl::EnumerateBindings(*t, idx, {});
        if (!bindings.ok()) {
          Audit(false, bindings.status().ToString().c_str(), kind_name,
                mode_name, cand);
          continue;
        }
        BindingSet isolated_yes;
        bool isolated_error = false;
        Timer isolated_timer;
        for (const std::vector<std::string>& b : *bindings) {
          if (args.timeout_ms > 0 &&
              isolated_timer.ElapsedSeconds() * 1e3 > args.timeout_ms) {
            timeout = true;
            break;
          }
          Reasoner iso(*db);
          batch::BatchQuery q = tmpl::InstantiateQuery(*t, b, mode);
          Result<bool> v =
              mode == batch::BatchMode::kBrave
                  ? [&]() -> Result<bool> {
                      Result<Trilean> c = iso.InfersCredulously(kind, q.text);
                      if (!c.ok()) return c.status();
                      return *c == Trilean::kYes;
                    }()
              : q.is_literal ? iso.InfersLiteral(kind, q.text)
                             : iso.InfersFormula(kind, q.text);
          if (!v.ok()) {
            Audit(false, v.status().ToString().c_str(), kind_name, mode_name,
                  cand);
            isolated_error = true;
            break;
          }
          if (*v) isolated_yes.insert(b);
        }
        const double isolated_ms = isolated_timer.ElapsedSeconds() * 1e3;
        if (isolated_error) continue;

        // Audits: identical answer-substitution sets across all three
        // legs, a complete shared bank, and the 5x acceptance bar.
        if (!timeout) {
          Audit(ToSet(batched->yes) == ToSet(session->yes),
                "batched/session yes-set mismatch", kind_name, mode_name,
                cand);
          Audit(ToSet(batched->yes) == isolated_yes,
                "batched/isolated yes-set mismatch", kind_name, mode_name,
                cand);
          Audit(batched->batch_stats.bank_models > 0,
                "batched leg did not build a model bank", kind_name,
                mode_name, cand);
          if (cand >= 64) {
            Audit(isolated_ms >= 5.0 * batch_ms,
                  "batched speedup over isolated below 5x", kind_name,
                  mode_name, cand);
          }
        }

        const double iso_x = batch_ms > 0 ? isolated_ms / batch_ms : 0.0;
        const double sess_x = batch_ms > 0 ? session_ms / batch_ms : 0.0;
        std::printf(
            "%-6s %-5s %5d | %9.2f %9.2f %9.2f %9.2f | %6.1fx %6.1fx%s\n",
            kind_name, mode_name, cand, ground_ms, batch_ms, session_ms,
            isolated_ms, iso_x, sess_x, timeout ? "  (timeout)" : "");

        BenchRecord rec;
        rec.name = StrFormat("%s/template/%s", kind_name, mode_name);
        rec.n = cand;
        rec.wall_ms = batch_ms;
        rec.cache_hits = batched->batch_stats.cache_hits;
        rec.timeout = timeout;
        rec.AddPhase("ground", ground_ms)
            .AddPhase("batched", batch_ms)
            .AddPhase("session", session_ms)
            .AddPhase("isolated", isolated_ms);
        obs::MetricsRegistry reg;
        tmpl::Publish(batched->stats, &reg);
        rec.metrics = reg.Snapshot();
        out.Add(std::move(rec));
      }
    }
  }

  if (!out.Write()) {
    std::fprintf(stderr, "cannot write BENCH_template.json\n");
    return 1;
  }
  if (g_audit_failures > 0) {
    std::fprintf(stderr, "%d audit failure(s)\n", g_audit_failures);
    return 1;
  }
  std::printf(
      "audit: batched == session == isolated answer sets, shared bank "
      "built, >=5x over isolated at >=64 instantiations\n");
  return 0;
}

}  // namespace dd

int main(int argc, char** argv) { return dd::Main(argc, argv); }
