// Separation 1 (Table 1, starred entries): DDR/PWS literal inference is the
// ONLY tractable cell among the ten semantics on positive DDBs.
//
// The harness scales the polynomial path to hundreds of variables (times
// stay in the microsecond-to-millisecond range, growth ~n) while the
// Π₂ᵖ-complete GCWA literal inference is driven over the Theorem 3.1
// QBF-embedding family, where the counterexample-guided engine's work grows
// steeply with the quantifier block sizes. The gap between the two halves
// of this output IS the paper's tractability frontier.
#include <cstdio>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "qbf/reductions.h"
#include "semantics/ddr.h"
#include "semantics/gcwa.h"
#include "semantics/pws.h"
#include "util/timer.h"

namespace dd {
namespace {

int main_impl() {
  std::printf(
      "== Polynomial side: DDR / PWS literal inference on positive DDBs "
      "==\n");
  std::printf("%8s %12s %12s %14s\n", "n", "DDR[s]", "PWS[s]", "SAT calls");
  std::vector<std::pair<int, double>> ddr_curve;
  for (int n : {50, 100, 200, 400, 800}) {
    double ddr_s = 0, pws_s = 0;
    int64_t sat = 0;
    const int reps = 5;
    Rng seeds(static_cast<uint64_t>(n));
    for (int i = 0; i < reps; ++i) {
      Database db = RandomPositiveDdb(n, 3 * n, seeds.Next());
      {
        DdrSemantics ddr(db);
        Timer t;
        for (Var v = 0; v < 20; ++v) (void)ddr.InfersLiteral(Lit::Neg(v));
        ddr_s += t.ElapsedSeconds();
        sat += ddr.stats().sat_calls;
      }
      {
        PwsSemantics pws(db);
        Timer t;
        for (Var v = 0; v < 20; ++v) (void)pws.InfersLiteral(Lit::Neg(v));
        pws_s += t.ElapsedSeconds();
        sat += pws.stats().sat_calls;
      }
    }
    ddr_curve.push_back({n, ddr_s});
    std::printf("%8d %12.5f %12.5f %14lld\n", n, ddr_s, pws_s,
                static_cast<long long>(sat));
  }
  std::printf("growth: %s (20 literal queries x 5 instances per row; "
              "zero SAT calls expected)\n\n",
              bench::GrowthNote(ddr_curve).c_str());

  std::printf(
      "== Intractable side: GCWA literal inference on the Theorem 3.1 "
      "family ==\n");
  std::printf("%16s %12s %14s %14s\n", "QBF (nx,ny,m)", "time[s]",
              "SAT calls", "CEGAR iters");
  for (int block : {3, 5, 7, 9}) {
    double secs = 0;
    int64_t sat = 0, cegar = 0;
    const int reps = 3;
    Rng seeds(static_cast<uint64_t>(block) * 77);
    for (int i = 0; i < reps; ++i) {
      QbfForallExistsCnf q =
          RandomQbf(block, block, 2 * block, 3, seeds.Next());
      ReducedInstance inst = ReducePi2ToGcwaLiteral(q);
      GcwaSemantics gcwa(inst.db);
      Timer t;
      (void)gcwa.InfersLiteral(Lit::Neg(inst.w));
      secs += t.ElapsedSeconds();
      sat += gcwa.stats().sat_calls;
      cegar += gcwa.stats().cegar_iterations;
    }
    std::printf("   (%2d,%2d,%3d)   %12.5f %14lld %14lld\n", block, block,
                2 * block, secs, static_cast<long long>(sat),
                static_cast<long long>(cegar));
  }
  std::printf(
      "(oracle work scales with the universal block: the Pi2p lower bound "
      "at work)\n");
  return 0;
}

}  // namespace
}  // namespace dd

int main() { return dd::main_impl(); }
