// Proposition 5.4 / Lemma 5.5 workload: unique-minimal-model checking
// (UMINSAT) across CNF densities, plus the Lemma 5.5 transfer to normal
// logic programs.
//
// The procedure runs in a constant number of minimization passes + SAT
// calls, so the time curve should track plain SAT solving — consistent
// with the problem living "just above" coNP (not in coD^P unless PH
// collapses, as the paper notes).
#include <cstdio>

#include "bench/bench_util.h"
#include "gen/generators.h"
#include "minimal/uminsat.h"
#include "qbf/reductions.h"
#include "util/timer.h"

namespace dd {
namespace {

int main_impl() {
  std::printf("UMINSAT on random positive-gadget DDBs (Prop. 5.4 family)\n");
  std::printf("%8s %10s %10s %12s %12s\n", "n", "unique%", "nomodel%",
              "time[s]", "SAT calls");
  std::vector<std::pair<int, double>> curve;
  for (int n : {10, 20, 40, 80}) {
    int unique = 0, nomodel = 0;
    double secs = 0;
    int64_t sat = 0;
    const int reps = 10;
    Rng seeds(static_cast<uint64_t>(n) * 3);
    for (int i = 0; i < reps; ++i) {
      // Near the random-2SAT threshold both outcomes occur.
      sat::Cnf cnf = RandomCnf(n, n, 2, seeds.Next());
      ReducedInstance inst = ReduceUnsatToUniqueMinimalModel(cnf);
      MinimalEngine e(inst.db);
      Timer t;
      auto r = UniqueMinimalModel(&e);
      secs += t.ElapsedSeconds();
      sat += e.stats().sat_calls;
      unique += (r.has_model && r.unique) ? 1 : 0;
      nomodel += r.has_model ? 0 : 1;
    }
    curve.push_back({n, secs});
    std::printf("%8d %9d%% %9d%% %12.4f %12lld\n", n, 10 * unique,
                10 * nomodel, secs, static_cast<long long>(sat));
  }
  std::printf("growth: %s\n\n", bench::GrowthNote(curve).c_str());

  std::printf(
      "Lemma 5.5 transfer: the same instances as normal logic programs\n");
  std::printf("%8s %10s %12s\n", "n", "agree%", "time[s]");
  for (int n : {10, 20, 40}) {
    int agree = 0;
    double secs = 0;
    const int reps = 10;
    Rng seeds(static_cast<uint64_t>(n) * 5);
    for (int i = 0; i < reps; ++i) {
      sat::Cnf cnf = RandomCnf(n, 3 * n, 2, seeds.Next());
      ReducedInstance inst = ReduceUnsatToUniqueMinimalModel(cnf);
      MinimalEngine e1(inst.db);
      auto direct = UniqueMinimalModel(&e1);
      auto nlp = PositiveDbToNormalProgram(inst.db);
      if (!nlp.ok()) continue;
      MinimalEngine e2(*nlp);
      Timer t;
      auto via_nlp = UniqueMinimalModel(&e2);
      secs += t.ElapsedSeconds();
      agree += (direct.has_model == via_nlp.has_model &&
                direct.unique == via_nlp.unique)
                   ? 1
                   : 0;
    }
    std::printf("%8d %9d%% %12.4f\n", n, 10 * agree, secs);
  }
  std::printf("\nThe agreement column must read 100%%: the normal-program "
              "rewriting preserves the minimal-model structure exactly.\n");
  return 0;
}

}  // namespace
}  // namespace dd

int main() { return dd::main_impl(); }
