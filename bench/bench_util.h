// Shared helpers for the table-reproduction harnesses.
#ifndef DD_BENCH_BENCH_UTIL_H_
#define DD_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/stats_view.h"
#include "util/budget.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace dd {
namespace bench {

/// Command-line knobs shared by every harness:
///   --seed=N        root seed of the generated instance families
///   --threads=N     worker threads for the parallel helpers
///   --no-sessions   fresh-solver-per-oracle-call baseline (the A/B leg)
///   --timeout-ms=N  per-instance watchdog: a measured block that exceeds
///                   N ms of wall clock is cut off and its row is written
///                   with "timeout": true instead of hanging the sweep
/// Unknown arguments are ignored (harnesses stay composable with wrapper
/// scripts). Both --flag=value and --flag value spellings are accepted.
struct BenchArgs {
  uint64_t seed = 1;
  int threads = 1;
  bool use_sessions = true;
  int64_t timeout_ms = -1;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs a;
    auto value_of = [&](const char* arg, const char* name,
                        int* i) -> const char* {
      size_t len = std::strlen(name);
      if (std::strncmp(arg, name, len) != 0) return nullptr;
      if (arg[len] == '=') return arg + len + 1;
      if (arg[len] == '\0' && *i + 1 < argc) return argv[++*i];
      return nullptr;
    };
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--no-sessions") == 0) {
        a.use_sessions = false;
      } else if (const char* v = value_of(argv[i], "--seed", &i)) {
        a.seed = std::strtoull(v, nullptr, 10);
      } else if (const char* v2 = value_of(argv[i], "--threads", &i)) {
        a.threads = static_cast<int>(std::strtol(v2, nullptr, 10));
      } else if (const char* v3 = value_of(argv[i], "--timeout-ms", &i)) {
        a.timeout_ms = std::strtoll(v3, nullptr, 10);
      }
    }
    return a;
  }
};

/// Per-instance watchdog budget (null when --timeout-ms is unset).
/// Install it on SemanticsOptions::budget before the measured block; after
/// the block, TimedOut() says whether the instance was cut off. Engines
/// poll the budget between oracle calls, so the cutoff is cooperative —
/// the sweep continues with the next instance instead of hanging.
inline std::shared_ptr<Budget> MakeWatchdogBudget(const BenchArgs& args) {
  if (args.timeout_ms < 0) return nullptr;
  Budget::Limits lim;
  lim.deadline_ms = args.timeout_ms;
  return Budget::Make(lim);
}

inline bool TimedOut(const std::shared_ptr<Budget>& b) {
  return b != nullptr && b->Exhausted();
}

/// One machine-readable measurement row.
struct BenchRecord {
  std::string name;         ///< family / configuration label
  int n = 0;                ///< instance size parameter
  double wall_ms = 0.0;     ///< wall-clock for the measured block
  int64_t oracle_calls = 0; ///< semantic oracle calls (mode-invariant)
  int64_t cache_hits = 0;   ///< oracle answers served from session memo
  bool timeout = false;     ///< the --timeout-ms watchdog cut this row off

  /// Per-phase wall-clock attribution (name, ms), insertion-ordered — e.g.
  /// {"generate", 0.4}, {"query", 11.2}. Emitted as the row's "phases"
  /// object when nonempty.
  std::vector<std::pair<std::string, double>> phases;

  /// Full counter snapshot for the row under the canonical dd.* names
  /// (build with obs::SnapshotOf or MetricsRegistry::Snapshot). Emitted as
  /// the row's "metrics" object via obs::WriteJson when nonempty.
  obs::MetricsSnapshot metrics;

  BenchRecord& AddPhase(std::string phase, double ms) {
    phases.emplace_back(std::move(phase), ms);
    return *this;
  }
};

/// Accumulates BenchRecords and writes them as BENCH_<name>.json in the
/// working directory (scripts/run_experiments.sh collects these). The file
/// is written by Write() or, failing that, by the destructor; the format is
/// a single JSON object {"bench": ..., "records": [...]}.
class BenchJsonWriter {
 public:
  explicit BenchJsonWriter(std::string bench) : bench_(std::move(bench)) {}
  BenchJsonWriter(const BenchJsonWriter&) = delete;
  BenchJsonWriter& operator=(const BenchJsonWriter&) = delete;
  ~BenchJsonWriter() { Write(); }

  void Add(BenchRecord r) { records_.push_back(std::move(r)); }
  void Add(const std::string& name, int n, double wall_ms,
           int64_t oracle_calls, int64_t cache_hits, bool timeout = false) {
    records_.push_back({name, n, wall_ms, oracle_calls, cache_hits, timeout});
  }

  /// Writes BENCH_<bench>.json; idempotent. Returns false on I/O failure.
  /// Rows always carry the flat legacy fields; rows with phase timings
  /// gain a "phases" object and rows with a counter snapshot gain a
  /// "metrics" object rendered through obs::WriteJson (the same
  /// serializer ddquery --metrics uses, so one schema serves both).
  bool Write() {
    if (written_) return true;
    std::string path = StrFormat("BENCH_%s.json", bench_.c_str());
    std::ofstream f(path);
    if (!f) return false;
    f << "{\n  \"bench\": \"" << obs::JsonEscape(bench_)
      << "\",\n  \"schema\": 2,\n  \"records\": [\n";
    for (size_t i = 0; i < records_.size(); ++i) {
      const BenchRecord& r = records_[i];
      f << StrFormat(
          "    {\"name\": \"%s\", \"n\": %d, \"wall_ms\": %.3f, "
          "\"oracle_calls\": %lld, \"cache_hits\": %lld, \"timeout\": %s",
          obs::JsonEscape(r.name).c_str(), r.n, r.wall_ms,
          static_cast<long long>(r.oracle_calls),
          static_cast<long long>(r.cache_hits),
          r.timeout ? "true" : "false");
      if (!r.phases.empty()) {
        f << ", \"phases\": {";
        for (size_t p = 0; p < r.phases.size(); ++p) {
          f << StrFormat("\"%s\": %.3f%s",
                         obs::JsonEscape(r.phases[p].first).c_str(),
                         r.phases[p].second,
                         p + 1 < r.phases.size() ? ", " : "");
        }
        f << "}";
      }
      if (!r.metrics.counters.empty() || !r.metrics.histograms.empty()) {
        f << ", \"metrics\": ";
        obs::WriteJson(f, r.metrics);
      }
      f << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    f << "  ]\n}\n";
    written_ = static_cast<bool>(f);
    return written_;
  }

 private:
  std::string bench_;
  std::vector<BenchRecord> records_;
  bool written_ = false;
};

/// Measures a per-size series and reports the growth pattern. `points`
/// holds (size, seconds) pairs; the estimate fits t ~ c * n^k on the last
/// points and reports k (a small k on a wide range reads "polynomial").
inline std::string GrowthNote(const std::vector<std::pair<int, double>>& pts) {
  if (pts.size() < 2) return "n/a";
  // Log-log slope between first and last point with nonzero time.
  double n0 = 0, t0 = 0, n1 = 0, t1 = 0;
  for (const auto& [n, t] : pts) {
    if (t > 1e-9) {
      if (t0 == 0) {
        n0 = n;
        t0 = t;
      }
      n1 = n;
      t1 = t;
    }
  }
  if (t0 == 0 || n0 == n1) return "flat";
  double k = std::log(t1 / t0) / std::log(n1 / n0);
  return StrFormat("t~n^%.1f", k);
}

}  // namespace bench
}  // namespace dd

#endif  // DD_BENCH_BENCH_UTIL_H_
