// Shared helpers for the table-reproduction harnesses.
#ifndef DD_BENCH_BENCH_UTIL_H_
#define DD_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "util/string_util.h"
#include "util/timer.h"

namespace dd {
namespace bench {

/// Measures a per-size series and reports the growth pattern. `points`
/// holds (size, seconds) pairs; the estimate fits t ~ c * n^k on the last
/// points and reports k (a small k on a wide range reads "polynomial").
inline std::string GrowthNote(const std::vector<std::pair<int, double>>& pts) {
  if (pts.size() < 2) return "n/a";
  // Log-log slope between first and last point with nonzero time.
  double n0 = 0, t0 = 0, n1 = 0, t1 = 0;
  for (const auto& [n, t] : pts) {
    if (t > 1e-9) {
      if (t0 == 0) {
        n0 = n;
        t0 = t;
      }
      n1 = n;
      t1 = t;
    }
  }
  if (t0 == 0 || n0 == n1) return "flat";
  double k = std::log(t1 / t0) / std::log(n1 / n0);
  return StrFormat("t~n^%.1f", k);
}

}  // namespace bench
}  // namespace dd

#endif  // DD_BENCH_BENCH_UTIL_H_
