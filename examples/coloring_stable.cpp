// Graph 3-coloring with disjunctive stable models (DSM).
//
// Each node chooses a color through a disjunctive fact; integrity clauses
// forbid monochromatic edges. On this (deductive + integrity) encoding the
// stable models are precisely the proper colorings — the combinatorial
// workload the DSM rows of Table 2 are exercised on.
#include <cstdio>

#include "gen/generators.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "semantics/dsm.h"
#include "semantics/pdsm.h"

int main() {
  dd::Database db = dd::GraphColoringDdb(/*num_nodes=*/6,
                                         /*edge_probability=*/0.5,
                                         /*num_colors=*/3, /*seed=*/7);
  std::printf("== Encoding ==\n%s\n", db.ToString().c_str());

  dd::SemanticsOptions opts;
  opts.max_models = 16;
  dd::DsmSemantics dsm(db, opts);

  auto has = dsm.HasModel();
  if (!has.ok()) {
    std::fprintf(stderr, "%s\n", has.status().ToString().c_str());
    return 1;
  }
  std::printf("3-colorable: %s\n\n", *has ? "yes" : "no");

  auto models = dsm.Models(8);
  if (models.ok()) {
    std::printf("== First %zu colorings (stable models) ==\n",
                models->size());
    for (const auto& m : *models) {
      std::printf("  %s\n", m.ToString(db.vocabulary()).c_str());
    }
  }

  // Skeptical query: is node 0 forced to avoid some color in every
  // coloring? (Rarely, unless the graph is rigid.)
  auto f = dd::ParseFormula("~c0_n0", &db.vocabulary());
  if (f.ok()) {
    auto r = dsm.InfersFormula(*f);
    std::printf("\nnode 0 never gets color 0 (skeptically): %s\n",
                r.ok() && *r ? "yes" : "no");
  }

  // The same database under the 3-valued PDSM: on negation-free programs
  // the total partial stable models coincide with DSM.
  dd::Database small = dd::GraphColoringDdb(4, 0.5, 3, 3);
  dd::PdsmSemantics pdsm(small);
  auto partial = pdsm.PartialModels(8);
  if (partial.ok()) {
    std::printf("\n== PDSM view of a smaller instance (%zu models) ==\n",
                partial->size());
    for (const auto& p : *partial) {
      std::printf("  %s\n", p.ToString(small.vocabulary()).c_str());
    }
  }
  return 0;
}
