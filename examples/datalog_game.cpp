// First-order front-end: the classic win/lose game, written with
// variables, grounded, and solved under the stable and well-founded
// semantics.
//
//   win(X) :- move(X, Y), not win(Y).
//
// On an acyclic move graph the grounded program is stratified and every
// semantics agrees; adding a cycle creates draws, which the well-founded
// model reports as "undefined" and the stable models split over.
#include <cstdio>

#include "core/reasoner.h"
#include "ground/grounder.h"
#include "logic/printer.h"
#include "semantics/wfs.h"

namespace {

void Report(const char* title, const char* program) {
  std::printf("== %s ==\n%s\n", title, program);
  auto db = dd::ground::GroundProgramText(program);
  if (!db.ok()) {
    std::printf("grounding failed: %s\n\n", db.status().ToString().c_str());
    return;
  }
  std::printf("grounded: %s\n", dd::DatabaseSummary(*db).c_str());

  // Stable models.
  dd::Reasoner r(*db);
  auto stable = r.Models(dd::SemanticsKind::kDsm, 8);
  if (stable.ok()) {
    std::printf("stable models:\n%s",
                dd::ModelsToString(*stable, r.db().vocabulary()).c_str());
  }

  // Well-founded view (the grounded game program is normal).
  auto wfm = dd::WellFoundedModel(*db);
  if (wfm.ok()) {
    std::printf("well-founded verdicts:\n");
    for (dd::Var v = 0; v < db->num_vars(); ++v) {
      const std::string& name = db->vocabulary().Name(v);
      if (name.rfind("win(", 0) != 0) continue;
      const char* verdict = "drawn (undefined)";
      if (wfm->Value(v) == dd::TruthValue::kTrue) verdict = "won";
      if (wfm->Value(v) == dd::TruthValue::kFalse) verdict = "lost";
      std::printf("  %-10s %s\n", name.c_str(), verdict);
    }
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Report("Acyclic game (stratified after grounding)",
         "move(a, b). move(b, c). move(c, d).\n"
         "win(X) :- move(X, Y), not win(Y).\n");

  Report("Game with a cycle (draws appear)",
         "move(a, b). move(b, a).\n"
         "win(X) :- move(X, Y), not win(Y).\n");
  return 0;
}
