// ddlint: static analysis and lint driver for disjunctive database
// programs.
//
//   ddlint [options] <file.ddb>...
//
// For every file, prints the analyzer's ProgramProperties (the syntactic
// class that fixes the complexity regime, per the paper's Tables 1/2),
// the structured lint diagnostics, and the dispatch table showing which
// engine each semantics' queries are routed to on this input.
//
// Options:
//   --no-subsumption     skip the O(m^2) subsumption pass
//   --no-integrity-note  silence the per-integrity-clause notes
//   --properties-only    print only the properties block
//   --diagnostics-only   print only the diagnostics
//   --sarif=FILE         additionally write every diagnostic as a SARIF
//                        2.1.0 log (one run, one result per diagnostic,
//                        with clickable file/line locations)
//   --timeout-ms=N       wall-clock deadline for the whole run
//   --conflict-budget=N  accepted for CLI uniformity with ddquery (lint
//                        runs no SAT oracle, so it never consumes it)
//
// Exit status: 0 clean, 1 if any warning/error diagnostic was emitted or
// any input failed to read/parse, 2 if the run exhausted its budget —
// the check keys off Budget::Exhausted(), so it covers the deadline
// (kDeadlineExceeded) and external cancellation (kCancelled) alike; see
// docs/ROBUSTNESS.md for the budget protocol.
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/dispatch.h"
#include "analysis/linter.h"
#include "analysis/program_properties.h"
#include "logic/parser.h"
#include "obs/metrics.h"
#include "util/budget.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

const dd::SemanticsKind kAllKinds[] = {
    dd::SemanticsKind::kCwa,  dd::SemanticsKind::kGcwa,
    dd::SemanticsKind::kEgcwa, dd::SemanticsKind::kCcwa,
    dd::SemanticsKind::kEcwa, dd::SemanticsKind::kDdr,
    dd::SemanticsKind::kPws,  dd::SemanticsKind::kPerf,
    dd::SemanticsKind::kIcwa, dd::SemanticsKind::kDsm,
    dd::SemanticsKind::kPdsm,
};

void PrintDispatchTable(const dd::analysis::ProgramProperties& props) {
  std::printf("dispatch (pos-literal / neg-literal / formula / exists):\n");
  for (dd::SemanticsKind kind : kAllKinds) {
    // Representative literals: polarity is what the table branches on
    // (the certain-fact path additionally needs the specific atom).
    dd::Lit pos = props.num_vars > 0 ? dd::Lit::Pos(0) : dd::Lit();
    dd::Lit neg = props.num_vars > 0 ? dd::Lit::Neg(0) : dd::Lit();
    using dd::analysis::QueryKind;
    using dd::analysis::SelectPath;
    std::printf("  %-6s %-18s %-18s %-18s %s\n", dd::SemanticsKindName(kind),
                EnginePathName(SelectPath(props, kind, QueryKind::kLiteral,
                                          pos)),
                EnginePathName(SelectPath(props, kind, QueryKind::kLiteral,
                                          neg)),
                EnginePathName(SelectPath(props, kind, QueryKind::kFormula)),
                EnginePathName(SelectPath(props, kind,
                                          QueryKind::kHasModel)));
  }
}

}  // namespace

namespace {

/// Parses a non-negative int64 from "--name=value"; returns false and
/// prints a message on a malformed value.
bool ParseFlagValue(const std::string& arg, const std::string& prefix,
                    int64_t* out) {
  std::string value = arg.substr(prefix.size());
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0' || v < 0) {
    std::fprintf(stderr, "ddlint: bad value in '%s'\n", arg.c_str());
    return false;
  }
  *out = v;
  return true;
}

/// Accumulates diagnostics across files and renders one SARIF 2.1.0 log:
/// a single run, one `result` per diagnostic, with the file/line location
/// attached so SARIF viewers make it clickable.
class SarifLog {
 public:
  void Add(const std::string& file, const dd::analysis::LintDiagnostic& d) {
    using dd::analysis::LintSeverity;
    const char* level = d.severity == LintSeverity::kError     ? "error"
                        : d.severity == LintSeverity::kWarning ? "warning"
                                                               : "note";
    if (!results_.empty()) results_ += ", ";
    results_ += "{\"ruleId\": \"";
    results_ += dd::analysis::LintRuleName(d.rule);
    results_ += "\", \"level\": \"";
    results_ += level;
    results_ += "\", \"message\": {\"text\": \"";
    results_ += dd::obs::JsonEscape(d.message);
    results_ += "\"}, \"locations\": [{\"physicalLocation\": "
                "{\"artifactLocation\": {\"uri\": \"";
    results_ += dd::obs::JsonEscape(file);
    results_ += "\"}";
    if (d.line > 0) {
      results_ += ", \"region\": {\"startLine\": ";
      results_ += std::to_string(d.line);
      results_ += "}";
    }
    results_ += "}}]}";
  }

  /// Writes the log; returns false (with a message) on I/O failure.
  bool Write(const std::string& path) const {
    std::string out =
        "{\"version\": \"2.1.0\", \"$schema\": "
        "\"https://json.schemastore.org/sarif-2.1.0.json\", "
        "\"runs\": [{\"tool\": {\"driver\": {\"name\": \"ddlint\", "
        "\"informationUri\": \"docs/ANALYSIS.md\", \"rules\": [";
    static const dd::analysis::LintRule kRules[] = {
        dd::analysis::LintRule::kTautology,
        dd::analysis::LintRule::kContradictoryBody,
        dd::analysis::LintRule::kDuplicateClause,
        dd::analysis::LintRule::kSubsumedClause,
        dd::analysis::LintRule::kUnderivableAtom,
        dd::analysis::LintRule::kOnlyNegativeAtom,
        dd::analysis::LintRule::kConstraintLikeHead,
        dd::analysis::LintRule::kIntegrityClause,
        dd::analysis::LintRule::kHeadCycle,
        dd::analysis::LintRule::kRelevanceDead,
    };
    bool first = true;
    for (dd::analysis::LintRule r : kRules) {
      if (!first) out += ", ";
      first = false;
      out += "{\"id\": \"";
      out += dd::analysis::LintRuleName(r);
      out += "\"}";
    }
    out += "]}}, \"results\": [" + results_ + "]}]}\n";
    std::ofstream f(path);
    if (!f || !(f << out)) {
      std::fprintf(stderr, "ddlint: cannot write SARIF log to %s\n",
                   path.c_str());
      return false;
    }
    return true;
  }

 private:
  std::string results_;
};

}  // namespace

int main(int argc, char** argv) {
  dd::analysis::LintOptions lint_opts;
  bool properties_only = false;
  bool diagnostics_only = false;
  std::string sarif_path;
  int64_t timeout_ms = -1;
  int64_t conflict_budget = -1;  // accepted for uniformity; lint is SAT-free
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--no-subsumption") {
      lint_opts.check_subsumption = false;
    } else if (arg == "--no-integrity-note") {
      lint_opts.note_integrity_clauses = false;
    } else if (arg == "--properties-only") {
      properties_only = true;
    } else if (arg == "--diagnostics-only") {
      diagnostics_only = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(std::string("--sarif=").size());
      if (sarif_path.empty()) {
        std::fprintf(stderr, "ddlint: --sarif needs a file name\n");
        return 1;
      }
    } else if (arg.rfind("--timeout-ms=", 0) == 0) {
      if (!ParseFlagValue(arg, "--timeout-ms=", &timeout_ms)) return 1;
    } else if (arg.rfind("--conflict-budget=", 0) == 0) {
      if (!ParseFlagValue(arg, "--conflict-budget=", &conflict_budget)) {
        return 1;
      }
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: ddlint [--no-subsumption] [--no-integrity-note] "
                  "[--properties-only] [--diagnostics-only] [--sarif=FILE] "
                  "[--timeout-ms=N] [--conflict-budget=N] <file.ddb>...\n");
      return 0;
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) {
    std::fprintf(stderr, "ddlint: no input files (try --help)\n");
    return 1;
  }

  // One run-wide deadline: lint passes are polynomial, so a coarse
  // between-files / between-passes poll suffices (no oracle to interrupt).
  std::shared_ptr<dd::Budget> budget;
  if (timeout_ms >= 0) {
    dd::Budget::Limits lim;
    lim.deadline_ms = timeout_ms;
    lim.conflict_budget = conflict_budget;
    budget = dd::Budget::Make(lim);
  }

  int worst = 0;
  SarifLog sarif;
  // Budget exits still flush the partial SARIF log: an exit-2 run has seen
  // only a prefix of the inputs, but every recorded diagnostic is real.
  auto out_of_budget = [&]() {
    std::fprintf(stderr, "ddlint: out of budget (%s); stopping\n",
                 budget->ToStatus().ToString().c_str());
    if (!sarif_path.empty()) sarif.Write(sarif_path);
    return 2;
  };
  for (const std::string& path : files) {
    if (budget != nullptr && budget->Exhausted()) return out_of_budget();
    std::string text;
    if (!ReadFile(path, &text)) {
      std::fprintf(stderr, "ddlint: cannot read %s\n", path.c_str());
      if (worst < 1) worst = 1;
      continue;
    }
    auto prog = dd::ParseProgram(text);
    if (!prog.ok()) {
      std::fprintf(stderr, "%s: %s\n", path.c_str(),
                   prog.status().ToString().c_str());
      if (worst < 1) worst = 1;
      continue;
    }
    std::printf("== %s ==\n", path.c_str());
    dd::analysis::ProgramProperties props = dd::analysis::Analyze(prog->db);
    if (!diagnostics_only) {
      std::printf("%s", props.ToString(prog->db.vocabulary()).c_str());
      if (!properties_only) PrintDispatchTable(props);
    }
    if (!properties_only) {
      if (budget != nullptr && budget->Exhausted()) return out_of_budget();
      std::vector<dd::analysis::LintDiagnostic> diags =
          dd::analysis::Lint(*prog, lint_opts);
      if (diags.empty()) {
        std::printf("diagnostics: none\n");
      } else {
        std::printf("diagnostics:\n%s",
                    dd::analysis::FormatDiagnostics(diags).c_str());
        for (const auto& d : diags) {
          sarif.Add(path, d);
          if (d.severity != dd::analysis::LintSeverity::kNote && worst < 1) {
            worst = 1;
          }
        }
      }
    }
    std::printf("\n");
  }
  if (!sarif_path.empty() && !sarif.Write(sarif_path) && worst < 1) {
    worst = 1;
  }
  return worst;
}
