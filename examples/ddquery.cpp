// ddquery: an interactive / scriptable query shell over the library.
//
//   ddquery <program.ddb>          load a database and read commands from
//                                  stdin (or pipe a script in)
//   ddquery --batch=FILE <prog>    batched mode: FILE holds one query per
//                                  line ("lit <SEM> <literal>" or
//                                  "infer <SEM> <formula>"; blank lines and
//                                  # comments are skipped); answers print
//                                  in input order, one per line, identical
//                                  for every --threads value
//   ddquery                        start with an empty database
//
// Commands:
//   load <file>                    replace the database from a file
//   loadg <file>                   load a first-order program and ground it
//   add <clause.>                  append one clause (same syntax as files)
//   show                           print the database
//   strata                         print the stratification (if any)
//   models <SEM> [cap]             list the intended models under SEM
//   infer <SEM> <formula>          skeptical formula inference
//   brave <SEM> <formula>          credulous inference (some model)
//   why <SEM> <formula>            verdict + counter-model when it fails
//   lit <SEM> <literal>            skeptical literal inference
//   exists <SEM>                   model existence
//   partition p=a,b q=c rest=z     set the CCWA/ECWA partition
//   stats                          cumulative oracle counters
//   help | quit
//
// SEM is one of: gcwa egcwa ccwa ecwa ddr pws perf icwa dsm pdsm
//
// Budget options (apply to every query command; in --batch mode they bound
// the whole batch as one shared budget):
//   --timeout-ms=N        per-query wall-clock deadline
//   --conflict-budget=N   per-query total CDCL conflict budget
//
// Batch options (docs/BATCHING.md):
//   --batch=FILE          evaluate FILE's queries via Reasoner::AnswerBatch
//                         (dedupe, answer cache, slice-grouped model banks)
//   --threads=N           worker threads for parallel group evaluation
//
// Observability options (see docs/OBSERVABILITY.md):
//   --trace-json=FILE     write the session's span tree as JSON on exit
//   --metrics             print the metrics-registry snapshot as JSON on
//                         exit (counters under the canonical dd.* names)
//   --certify             certificate-checked mode (docs/ANALYSIS.md):
//                         every HCF fast-path minimality verdict and every
//                         slice/module routing emits a machine-checkable
//                         witness, re-verified by the independent certifier;
//                         the tally prints on exit and any rejection (an
//                         engine/certifier disagreement, i.e. a bug) fails
//                         the run
//
// Exit status: 0 on success, 1 on a load/parse failure of the initial
// program or a --batch file (or an unwritable --trace-json file, or a
// rejected --certify certificate), 2 if any query ran out of budget —
// deadline, conflicts, oracle calls OR external cancellation (kCancelled);
// both answer "unknown"/truncated — see docs/ROBUSTNESS.md.
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/oracle_stats.h"
#include "core/reasoner.h"
#include "ground/grounder.h"
#include "logic/printer.h"
#include "obs/metrics.h"
#include "obs/stats_view.h"
#include "obs/trace.h"
#include "strat/stratifier.h"
#include "util/string_util.h"

namespace {

std::optional<dd::SemanticsKind> KindFromName(const std::string& s) {
  static const std::pair<const char*, dd::SemanticsKind> kMap[] = {
      {"gcwa", dd::SemanticsKind::kGcwa},
      {"egcwa", dd::SemanticsKind::kEgcwa},
      {"ccwa", dd::SemanticsKind::kCcwa},
      {"ecwa", dd::SemanticsKind::kEcwa},
      {"circ", dd::SemanticsKind::kEcwa},
      {"ddr", dd::SemanticsKind::kDdr},
      {"wgcwa", dd::SemanticsKind::kDdr},
      {"pws", dd::SemanticsKind::kPws},
      {"pms", dd::SemanticsKind::kPws},
      {"perf", dd::SemanticsKind::kPerf},
      {"icwa", dd::SemanticsKind::kIcwa},
      {"dsm", dd::SemanticsKind::kDsm},
      {"pdsm", dd::SemanticsKind::kPdsm},
  };
  for (const auto& [name, kind] : kMap) {
    if (s == name) return kind;
  }
  return std::nullopt;
}

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void PrintHelp() {
  std::printf(
      "commands: load <file> | add <clause.> | show | strata |\n"
      "          models <sem> [cap] | infer <sem> <formula> |\n"
      "          lit <sem> <literal> | exists <sem> |\n"
      "          partition p=a,b q=c rest=z | stats | help | quit\n"
      "semantics: gcwa egcwa ccwa ecwa ddr pws perf icwa dsm pdsm\n"
      "flags: --timeout-ms=N --conflict-budget=N (budgeted queries; exit 2\n"
      "       if any query runs out of budget)\n"
      "       --batch=FILE --threads=N (batched evaluation; one\n"
      "       'lit <sem> <literal>' or 'infer <sem> <formula>' per line)\n"
      "       --trace-json=FILE --metrics (observability exports)\n"
      "       --certify (verify every fast-path answer's certificate;\n"
      "       rejections fail the run)\n");
}

/// Parses "--name=123" / "--name 123" style int64 flags; advances *i when
/// the value is a separate argv entry. Returns false (with a message) on a
/// malformed value.
bool ParseInt64Flag(int argc, char** argv, int* i, const std::string& name,
                    int64_t* out, bool* matched) {
  std::string arg = argv[*i];
  std::string prefix = name + "=";
  std::string value;
  if (arg == name) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "ddquery: %s needs a value\n", name.c_str());
      return false;
    }
    value = argv[++*i];
  } else if (arg.rfind(prefix, 0) == 0) {
    value = arg.substr(prefix.size());
  } else {
    *matched = false;
    return true;
  }
  *matched = true;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0' || v < 0) {
    std::fprintf(stderr, "ddquery: bad value for %s: '%s'\n", name.c_str(),
                 value.c_str());
    return false;
  }
  *out = v;
  return true;
}

// Parses "p=a,b" style partition arguments.
bool ParsePartitionArgs(const std::string& rest_of_line, dd::Reasoner* r) {
  std::vector<std::string> p, q, z;
  char rest = 'z';
  std::istringstream in(rest_of_line);
  std::string tok;
  while (in >> tok) {
    auto eq = tok.find('=');
    if (eq == std::string::npos) {
      std::printf("bad partition token '%s'\n", tok.c_str());
      return false;
    }
    std::string key = tok.substr(0, eq);
    std::string val = tok.substr(eq + 1);
    if (key == "rest") {
      if (val.size() != 1) {
        std::printf("rest must be one of p/q/z\n");
        return false;
      }
      rest = val[0];
      continue;
    }
    std::vector<std::string>* side = key == "p"   ? &p
                                     : key == "q" ? &q
                                     : key == "z" ? &z
                                                  : nullptr;
    if (side == nullptr) {
      std::printf("unknown partition part '%s'\n", key.c_str());
      return false;
    }
    for (const auto& name : dd::Split(val, ',')) {
      if (!name.empty()) side->push_back(name);
    }
  }
  dd::Status s = r->SetPartition(p, q, z, rest);
  if (!s.ok()) {
    std::printf("%s\n", s.ToString().c_str());
    return false;
  }
  std::printf("partition set\n");
  return true;
}

/// Runs --batch mode: parses `path` ("lit <sem> <literal>" / "infer <sem>
/// <formula>" per line; blanks and # comments skipped), calls
/// Reasoner::AnswerBatch once per semantics, and prints one answer per
/// query in input-line order — the same strings the interactive shell
/// prints, so `ddquery --batch=F prog` and `ddquery prog < F` agree line
/// for line. Returns false on a read/parse failure (exit 1); any kUnknown
/// answer sets *worst_exit to 2.
bool RunBatch(dd::Reasoner* reasoner, const std::string& path,
              const dd::QueryOptions& query_opts, int threads,
              int* worst_exit) {
  auto text = ReadFile(path);
  if (!text) {
    std::fprintf(stderr, "ddquery: cannot read %s\n", path.c_str());
    return false;
  }
  struct Group {
    dd::SemanticsKind kind;
    std::vector<int> slots;  ///< output positions, input order
    std::vector<dd::batch::BatchQuery> queries;
  };
  std::vector<Group> groups;  // first-appearance order per semantics
  std::map<dd::SemanticsKind, int> group_of;
  int num_queries = 0;
  std::istringstream in(*text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string cmd;
    if (!(ls >> cmd) || cmd[0] == '#') continue;
    std::string sem_name;
    std::string rest;
    ls >> sem_name;
    std::getline(ls, rest);
    auto kind = KindFromName(sem_name);
    const bool is_lit = cmd == "lit";
    if ((!is_lit && cmd != "infer") || !kind ||
        rest.find_first_not_of(" \t") == std::string::npos) {
      std::fprintf(stderr, "ddquery: bad batch line %d: '%s'\n", lineno,
                   line.c_str());
      return false;
    }
    auto [it, inserted] =
        group_of.emplace(*kind, static_cast<int>(groups.size()));
    if (inserted) groups.push_back(Group{*kind, {}, {}});
    Group& g = groups[it->second];
    g.slots.push_back(num_queries++);
    g.queries.push_back(dd::batch::BatchQuery{rest, is_lit});
  }

  dd::batch::BatchOptions bo;
  bo.num_threads = threads;
  bo.deadline_ms = query_opts.deadline_ms;
  bo.conflict_budget = query_opts.conflict_budget;
  bo.oracle_call_budget = query_opts.oracle_call_budget;
  bo.cancel = query_opts.cancel;
  std::vector<dd::Trilean> answers(num_queries, dd::Trilean::kUnknown);
  for (const Group& g : groups) {
    auto r = reasoner->AnswerBatch(g.kind, g.queries, bo);
    if (!r.ok()) {
      std::fprintf(stderr, "ddquery: %s\n", r.status().ToString().c_str());
      return false;
    }
    for (size_t k = 0; k < g.slots.size(); ++k) {
      answers[g.slots[k]] = r->answers[k];
    }
  }
  for (dd::Trilean a : answers) {
    if (a == dd::Trilean::kUnknown) {
      std::printf("unknown (out of budget)\n");
      *worst_exit = 2;
    } else {
      std::printf("%s\n", a == dd::Trilean::kYes ? "yes" : "no");
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  dd::QueryOptions query_opts;
  std::string trace_path;
  std::string batch_path;
  int64_t num_threads = 1;
  bool print_metrics = false;
  bool certify = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    bool matched = false;
    if (!ParseInt64Flag(argc, argv, &i, "--timeout-ms",
                        &query_opts.deadline_ms, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseInt64Flag(argc, argv, &i, "--conflict-budget",
                        &query_opts.conflict_budget, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseInt64Flag(argc, argv, &i, "--threads", &num_threads, &matched)) {
      return 1;
    }
    if (matched) continue;
    std::string arg = argv[i];
    if (arg.rfind("--batch=", 0) == 0) {
      batch_path = arg.substr(std::string("--batch=").size());
      if (batch_path.empty()) {
        std::fprintf(stderr, "ddquery: --batch needs a file name\n");
        return 1;
      }
      continue;
    }
    if (arg == "--batch") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ddquery: --batch needs a file name\n");
        return 1;
      }
      batch_path = argv[++i];
      continue;
    }
    if (arg == "--metrics") {
      print_metrics = true;
      continue;
    }
    if (arg == "--certify") {
      certify = true;
      continue;
    }
    if (arg.rfind("--trace-json=", 0) == 0) {
      trace_path = arg.substr(std::string("--trace-json=").size());
      if (trace_path.empty()) {
        std::fprintf(stderr, "ddquery: --trace-json needs a file name\n");
        return 1;
      }
      continue;
    }
    if (arg == "--trace-json") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ddquery: --trace-json needs a file name\n");
        return 1;
      }
      trace_path = argv[++i];
      continue;
    }
    positional.push_back(argv[i]);
  }

  // One span tree for the whole session: every query command records one
  // "reasoner"-layer span (with engine-layer spans nested below).
  dd::obs::TraceContext trace;
  dd::obs::TraceContext* trace_ptr = trace_path.empty() ? nullptr : &trace;

  // Parse the program file exactly once, BEFORE constructing the reasoner,
  // so a single instance is configured (trace, certification) one time —
  // no throwaway empty reasoner, no double setup.
  dd::Database initial_db;
  if (!positional.empty()) {
    auto text = ReadFile(positional[0]);
    if (!text) {
      std::fprintf(stderr, "cannot read %s\n", positional[0].c_str());
      return 1;
    }
    auto db = dd::ParseDatabase(*text);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    initial_db = std::move(db).value();
  }
  dd::Reasoner reasoner{std::move(initial_db)};
  reasoner.set_trace(trace_ptr);
  reasoner.EnableCertification(certify);
  if (!positional.empty() && batch_path.empty()) {
    std::printf("loaded %s (%s)\n", positional[0].c_str(),
                dd::DatabaseSummary(reasoner.db()).c_str());
  }

  // Set to 2 when any budgeted query exhausts its budget; distinct from the
  // load/parse failure exit (1) above.
  int worst_exit = 0;
  if (!batch_path.empty() &&
      !RunBatch(&reasoner, batch_path, query_opts,
                static_cast<int>(num_threads), &worst_exit)) {
    return 1;
  }
  std::string line;
  const bool interactive = batch_path.empty() && isatty(fileno(stdin)) != 0;
  // Batch mode replaces the shell; the observability epilogue below still
  // runs, so --metrics / --trace-json compose with --batch.
  while (batch_path.empty()) {
    if (interactive) {
      std::printf("ddq> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd[0] == '#') continue;  // comment lines, as in --batch files
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
      continue;
    }
    if (cmd == "show") {
      std::printf("%s", reasoner.db().ToString().c_str());
      continue;
    }
    if (cmd == "stats") {
      // The combined rendering: oracle counters | dispatch downgrades |
      // session reuse, reconstructed from a registry snapshot.
      const dd::oracle::SessionStats sess = reasoner.TotalSessionStats();
      std::printf("%s\n", dd::FormatStats(reasoner.TotalStats(),
                                          reasoner.dispatch_stats(), sess)
                              .c_str());
      if (reasoner.certification_enabled()) {
        std::printf("%s\n", reasoner.certification_stats().ToString().c_str());
      }
      continue;
    }
    if (cmd == "load" || cmd == "loadg") {
      std::string path;
      in >> path;
      auto text = ReadFile(path);
      if (!text) {
        std::printf("cannot read %s\n", path.c_str());
        continue;
      }
      if (cmd == "loadg") {
        auto db = dd::ground::GroundProgramText(*text);
        if (!db.ok()) {
          std::printf("%s\n", db.status().ToString().c_str());
          continue;
        }
        reasoner = dd::Reasoner(std::move(db).value());
      } else {
        auto r = dd::Reasoner::FromProgram(*text);
        if (!r.ok()) {
          std::printf("%s\n", r.status().ToString().c_str());
          continue;
        }
        reasoner = std::move(r).value();
      }
      reasoner.set_trace(trace_ptr);
      reasoner.EnableCertification(certify);
      std::printf("loaded (%s)\n",
                  dd::DatabaseSummary(reasoner.db()).c_str());
      continue;
    }
    if (cmd == "add") {
      std::string clause;
      std::getline(in, clause);
      // Re-parse the whole program plus the new clause (keeps ids stable
      // enough for interactive use and reuses one parser).
      auto r = dd::Reasoner::FromProgram(reasoner.db().ToString() + clause);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        continue;
      }
      reasoner = std::move(r).value();
      reasoner.set_trace(trace_ptr);
      reasoner.EnableCertification(certify);
      std::printf("ok (%s)\n", dd::DatabaseSummary(reasoner.db()).c_str());
      continue;
    }
    if (cmd == "strata") {
      auto s = dd::Stratify(reasoner.db());
      if (!s.ok()) {
        std::printf("%s\n", s.status().ToString().c_str());
      } else {
        std::printf("%s", s->ToString(reasoner.db().vocabulary()).c_str());
      }
      continue;
    }
    if (cmd == "partition") {
      std::string rest;
      std::getline(in, rest);
      ParsePartitionArgs(rest, &reasoner);
      continue;
    }

    // Remaining commands start with a semantics name.
    std::string sem_name;
    if (cmd == "models" || cmd == "infer" || cmd == "lit" ||
        cmd == "exists" || cmd == "brave" || cmd == "why") {
      if (!(in >> sem_name)) {
        std::printf("missing semantics name\n");
        continue;
      }
      auto kind = KindFromName(sem_name);
      if (!kind) {
        std::printf("unknown semantics '%s'\n", sem_name.c_str());
        continue;
      }
      if (cmd == "models") {
        int64_t cap = 32;
        in >> cap;
        if (!query_opts.unlimited()) {
          auto ans = reasoner.Models(*kind, cap, query_opts);
          if (!ans.ok()) {
            std::printf("%s\n", ans.status().ToString().c_str());
            continue;
          }
          std::printf("%s(%zu models%s)\n",
                      dd::ModelsToString(ans->models,
                                         reasoner.db().vocabulary())
                          .c_str(),
                      ans->models.size(),
                      ans->truncated ? ", truncated: out of budget" : "");
          if (ans->truncated) worst_exit = 2;
          continue;
        }
        auto models = reasoner.Models(*kind, cap);
        if (!models.ok()) {
          std::printf("%s\n", models.status().ToString().c_str());
          continue;
        }
        std::printf("%s(%zu models)\n",
                    dd::ModelsToString(*models,
                                       reasoner.db().vocabulary())
                        .c_str(),
                    models->size());
      } else if (cmd == "exists") {
        if (!query_opts.unlimited()) {
          auto r = reasoner.HasModel(*kind, query_opts);
          if (!r.ok()) {
            std::printf("%s\n", r.status().ToString().c_str());
          } else if (*r == dd::Trilean::kUnknown) {
            std::printf("unknown (out of budget)\n");
            worst_exit = 2;
          } else {
            std::printf("%s\n", *r == dd::Trilean::kYes ? "yes" : "no");
          }
          continue;
        }
        auto r = reasoner.HasModel(*kind);
        std::printf("%s\n", r.ok() ? (*r ? "yes" : "no")
                                   : r.status().ToString().c_str());
      } else if (cmd == "brave" || cmd == "why") {
        // Routed through the Reasoner wrappers so the budget flags and the
        // trace apply to credulous/certificate queries too.
        std::string rest;
        std::getline(in, rest);
        if (cmd == "brave") {
          auto r = reasoner.InfersCredulously(*kind, rest, query_opts);
          if (!r.ok()) {
            std::printf("%s\n", r.status().ToString().c_str());
          } else if (*r == dd::Trilean::kUnknown) {
            std::printf("unknown (out of budget)\n");
            worst_exit = 2;
          } else {
            std::printf("%s\n", *r == dd::Trilean::kYes ? "yes" : "no");
          }
        } else {
          auto ce = reasoner.FindCounterexample(*kind, rest, query_opts);
          if (!ce.ok()) {
            std::printf("%s\n", ce.status().ToString().c_str());
            // Budget exhaustion (deadline/conflicts/oracle calls or
            // external kCancelled) keeps the budget exit code.
            if (ce.status().IsBudgetExhaustion()) worst_exit = 2;
          } else if (!ce->has_value()) {
            std::printf("inferred: true in every %s model\n",
                        sem_name.c_str());
          } else {
            std::printf(
                "not inferred: counter-model %s\n",
                (*ce)->ToString(reasoner.db().vocabulary()).c_str());
          }
        }
      } else {
        std::string rest;
        std::getline(in, rest);
        if (!query_opts.unlimited()) {
          auto r = cmd == "infer"
                       ? reasoner.InfersFormula(*kind, rest, query_opts)
                       : reasoner.InfersLiteral(*kind, rest, query_opts);
          if (!r.ok()) {
            std::printf("%s\n", r.status().ToString().c_str());
          } else if (*r == dd::Trilean::kUnknown) {
            std::printf("unknown (out of budget)\n");
            worst_exit = 2;
          } else {
            std::printf("%s\n", *r == dd::Trilean::kYes ? "yes" : "no");
          }
          continue;
        }
        auto r = cmd == "infer" ? reasoner.InfersFormula(*kind, rest)
                                : reasoner.InfersLiteral(*kind, rest);
        std::printf("%s\n", r.ok() ? (*r ? "yes" : "no")
                                   : r.status().ToString().c_str());
      }
      continue;
    }
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
  }

  if (trace_ptr != nullptr) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "ddquery: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace.WriteJson(out);
    out << "\n";
  }
  if (print_metrics) {
    // Publish once at exit (registry counters are monotonic) and emit the
    // snapshot under the canonical dd.* names.
    dd::obs::MetricsRegistry& reg = dd::obs::MetricsRegistry::Global();
    reasoner.PublishMetrics(&reg);
    dd::obs::WriteJson(std::cout, reg.Snapshot());
    std::cout << "\n";
  }
  if (certify) {
    const dd::analysis::CertificationStats& cs =
        reasoner.certification_stats();
    std::printf("%s\n", cs.ToString().c_str());
    if (cs.rejected > 0) {
      for (const std::string& why : reasoner.certification_failures()) {
        std::fprintf(stderr, "ddquery: %s\n", why.c_str());
      }
      if (worst_exit == 0) worst_exit = 1;
    }
  }
  return worst_exit;
}
