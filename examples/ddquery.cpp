// ddquery: an interactive / scriptable query shell over the library.
//
//   ddquery <program.ddb>          load a database and read commands from
//                                  stdin (or pipe a script in). First-order
//                                  programs (any rule with a variable) are
//                                  auto-detected and grounded on load
//                                  (ground/grounder.h); --first-order
//                                  forces the grounding path
//   ddquery --batch=FILE <prog>    batched mode: FILE holds one query per
//                                  line ("lit <SEM> <literal>",
//                                  "infer <SEM> <formula>",
//                                  "brave <SEM> <formula>",
//                                  "answers <SEM> <template>" or
//                                  "banswers <SEM> <template>"; blank lines
//                                  and # comments are skipped); answers
//                                  print in input order (template lines as
//                                  multi-line answer blocks), identical
//                                  for every --threads value
//   ddquery --serve <prog>         serving mode (docs/SERVING.md): a
//                                  line protocol on stdin/stdout over a
//                                  long-lived QueryServer — answer cache,
//                                  budget-escalation retry ladder,
//                                  admission control, hot reload
//   ddquery                        start with an empty database
//
// Commands:
//   load <file>                    replace the database from a file (first-
//                                  order programs ground automatically)
//   loadg <file>                   load a first-order program and ground it
//                                  (forced, even for variable-free text)
//   add <clause.>                  append one clause (same syntax as files)
//   show                           print the database
//   strata                         print the stratification (if any)
//   models <SEM> [cap]             list the intended models under SEM
//   infer <SEM> <formula>          skeptical formula inference
//   brave <SEM> <formula>          credulous inference (some model)
//   why <SEM> <formula>            verdict + counter-model when it fails
//   lit <SEM> <literal>            skeptical literal inference
//   answers <SEM> <template>       skeptical template answers: the variable
//                                  substitutions making the template true
//                                  in every intended model (docs/TEMPLATES.md)
//   banswers <SEM> <template>      brave template answers (some model)
//   exists <SEM>                   model existence
//   partition p=a,b q=c rest=z     set the CCWA/ECWA partition
//   stats                          cumulative oracle counters
//   help | quit
//
// Serve-mode protocol (one request line -> one response line):
//   QUERY <SEM> <lit|infer> <q>    -> ANSWER yes|no|unknown rungs=N cached=B
//                                     | UNAVAILABLE <why> | ERR <why>
//   BRAVE <SEM> <formula>          -> same responses, credulous inference
//   ANSWERS <SEM> <skeptical|brave> <template>
//                                  -> ANSWERS yes=N unknown=M candidates=K
//                                     rungs=R [vacuous=1] [X=n1,C=r ...]
//                                     | UNAVAILABLE <why> | ERR <why>
//   RELOAD <file>                  -> RELOADED fp=<hex> <summary>
//   SAVE                           -> SAVED <path> entries=N
//   STATS                          -> STATS <dd.serve.* JSON>
//   QUIT                           -> BYE
// EOF (even mid-line) is a clean shutdown; SIGPIPE is ignored, a closed
// peer ends the loop instead of killing the process.
//
// SEM is one of: cwa gcwa egcwa ccwa ecwa ddr pws perf icwa dsm pdsm
// (plus the paper's aliases circ = ecwa, wgcwa = ddr, pms = pws).
//
// Budget options (apply to every query command; in --batch mode they bound
// the whole batch as one shared budget; in --serve mode they set the retry
// ladder's per-request ceilings):
//   --timeout-ms=N        per-query wall-clock deadline
//   --conflict-budget=N   per-query total CDCL conflict budget
//   --retry-rungs=N       serve mode: ladder attempts per request (def. 3)
//
// Batch options (docs/BATCHING.md):
//   --batch=FILE          evaluate FILE's queries via Reasoner::AnswerBatch
//                         (dedupe, answer cache, slice-grouped model banks)
//   --threads=N           worker threads for parallel group evaluation
//
// First-order / template options (docs/TEMPLATES.md):
//   --first-order         force the grounding path for the program file
//                         (auto-detection only grounds when a rule has a
//                         variable, so variable-free FO text keeps the
//                         propositional parser's clause multiset)
//   --ground-max-clauses=N  grounding clause cap (exit 1 beyond; default
//                         1000000)
//   --ground-relevance    atom-level relevance filter during grounding
//                         (GroundOptions::relevance_filter; sound for the
//                         GCWA/EGCWA fixpoint family, auto-disabled under
//                         negation)
//   --naive-templates     A/B baseline: answer template lines through the
//                         sequential entry points instead of one batch
//                         (same answers, no shared model banks)
//
// Persistence (docs/SERVING.md):
//   --cache-file=PATH     crash-safe answer-cache snapshot: warm-start from
//                         PATH (stale/corrupt files degrade to a cold
//                         start) and save atomically on exit / SAVE.
//                         Composes with --batch, --serve and the shell.
//
// Observability options (see docs/OBSERVABILITY.md):
//   --trace-json=FILE     write the session's span tree as JSON on exit
//   --metrics             print the metrics-registry snapshot as JSON on
//                         exit (counters under the canonical dd.* names)
//   --certify             certificate-checked mode (docs/ANALYSIS.md):
//                         every HCF fast-path minimality verdict and every
//                         slice/module routing emits a machine-checkable
//                         witness, re-verified by the independent certifier;
//                         the tally prints on exit and any rejection (an
//                         engine/certifier disagreement, i.e. a bug) fails
//                         the run
//
// Exit status (audited; docs/ROBUSTNESS.md §CLI): 0 on success, 1 on a
// load/parse/grounding failure of the initial program (including a blown
// --ground-max-clauses cap) or a --batch file (or an unwritable
// --trace-json / --cache-file, or a rejected --certify certificate), 2 if
// any query degraded — out of budget (deadline, conflicts, oracle calls,
// external kCancelled), a template substitution left kUnknown, or in serve
// mode answered kUnknown after the full ladder or shed with kUnavailable.
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "batch/queries_file.h"
#include "core/oracle_stats.h"
#include "core/reasoner.h"
#include "ground/grounder.h"
#include "ground/parser.h"
#include "logic/printer.h"
#include "obs/metrics.h"
#include "obs/stats_view.h"
#include "obs/trace.h"
#include "serve/server.h"
#include "strat/stratifier.h"
#include "tmpl/answer.h"
#include "util/string_util.h"

namespace {

std::optional<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Loads program text, auto-detecting the language: when the text parses
/// as a first-order program AND some rule carries a variable (or
/// `force_fo` — the --first-order flag / loadg command), it grounds via
/// ground::Ground under `gopts`; otherwise the propositional parser reads
/// it directly. The variable test matters: variable-free FO text is also
/// valid propositional text, and the propositional parser preserves the
/// clause multiset (duplicates and all) where the grounder dedupes — so
/// only programs that NEED grounding take the grounding path.
dd::Result<dd::Database> LoadProgram(const std::string& text, bool force_fo,
                                     const dd::ground::GroundOptions& gopts) {
  auto fo = dd::ground::ParseProgram(text);
  bool is_fo = force_fo;
  if (!is_fo && fo.ok()) {
    for (const auto& r : fo->rules) {
      if (!r.Variables().empty()) {
        is_fo = true;
        break;
      }
    }
  }
  if (!is_fo) return dd::ParseDatabase(text);
  if (!fo.ok()) return fo.status();
  return dd::ground::Ground(*fo, gopts);
}

void PrintHelp() {
  std::printf(
      "commands: load <file> | loadg <file> | add <clause.> | show |\n"
      "          strata | models <sem> [cap] | infer <sem> <formula> |\n"
      "          lit <sem> <literal> | answers <sem> <template> |\n"
      "          banswers <sem> <template> | exists <sem> |\n"
      "          partition p=a,b q=c rest=z | stats | help | quit\n"
      "semantics: cwa gcwa egcwa ccwa ecwa ddr pws perf icwa dsm pdsm\n"
      "flags: --timeout-ms=N --conflict-budget=N (budgeted queries; exit 2\n"
      "       if any query runs out of budget)\n"
      "       --batch=FILE --threads=N (batched evaluation; one\n"
      "       'lit <sem> <literal>', 'infer <sem> <formula>',\n"
      "       'brave <sem> <formula>', 'answers <sem> <template>' or\n"
      "       'banswers <sem> <template>' per line)\n"
      "       --first-order --ground-max-clauses=N --ground-relevance\n"
      "       --naive-templates (grounding + templates; docs/TEMPLATES.md)\n"
      "       --serve --retry-rungs=N (line-protocol serving mode:\n"
      "       QUERY/ANSWERS/RELOAD/SAVE/STATS/QUIT -- docs/SERVING.md)\n"
      "       --cache-file=PATH (crash-safe answer-cache snapshot)\n"
      "       --trace-json=FILE --metrics (observability exports)\n"
      "       --certify (verify every fast-path answer's certificate;\n"
      "       rejections fail the run)\n");
}

/// Parses "--name=123" / "--name 123" style int64 flags; advances *i when
/// the value is a separate argv entry. Returns false (with a message) on a
/// malformed value.
bool ParseInt64Flag(int argc, char** argv, int* i, const std::string& name,
                    int64_t* out, bool* matched) {
  std::string arg = argv[*i];
  std::string prefix = name + "=";
  std::string value;
  if (arg == name) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "ddquery: %s needs a value\n", name.c_str());
      return false;
    }
    value = argv[++*i];
  } else if (arg.rfind(prefix, 0) == 0) {
    value = arg.substr(prefix.size());
  } else {
    *matched = false;
    return true;
  }
  *matched = true;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || *end != '\0' || v < 0) {
    std::fprintf(stderr, "ddquery: bad value for %s: '%s'\n", name.c_str(),
                 value.c_str());
    return false;
  }
  *out = v;
  return true;
}

/// Parses "--name=PATH" / "--name PATH" style string flags.
bool ParseStringFlag(int argc, char** argv, int* i, const std::string& name,
                     std::string* out, bool* matched) {
  std::string arg = argv[*i];
  std::string prefix = name + "=";
  if (arg == name) {
    if (*i + 1 >= argc) {
      std::fprintf(stderr, "ddquery: %s needs a value\n", name.c_str());
      return false;
    }
    *out = argv[++*i];
    *matched = true;
  } else if (arg.rfind(prefix, 0) == 0) {
    *out = arg.substr(prefix.size());
    *matched = true;
  } else {
    *matched = false;
    return true;
  }
  if (out->empty()) {
    std::fprintf(stderr, "ddquery: %s needs a value\n", name.c_str());
    return false;
  }
  return true;
}

// Parses "p=a,b" style partition arguments.
bool ParsePartitionArgs(const std::string& rest_of_line, dd::Reasoner* r) {
  std::vector<std::string> p, q, z;
  char rest = 'z';
  std::istringstream in(rest_of_line);
  std::string tok;
  while (in >> tok) {
    auto eq = tok.find('=');
    if (eq == std::string::npos) {
      std::printf("bad partition token '%s'\n", tok.c_str());
      return false;
    }
    std::string key = tok.substr(0, eq);
    std::string val = tok.substr(eq + 1);
    if (key == "rest") {
      if (val.size() != 1) {
        std::printf("rest must be one of p/q/z\n");
        return false;
      }
      rest = val[0];
      continue;
    }
    std::vector<std::string>* side = key == "p"   ? &p
                                     : key == "q" ? &q
                                     : key == "z" ? &z
                                                  : nullptr;
    if (side == nullptr) {
      std::printf("unknown partition part '%s'\n", key.c_str());
      return false;
    }
    for (const auto& name : dd::Split(val, ',')) {
      if (!name.empty()) side->push_back(name);
    }
  }
  dd::Status s = r->SetPartition(p, q, z, rest);
  if (!s.ok()) {
    std::printf("%s\n", s.ToString().c_str());
    return false;
  }
  std::printf("partition set\n");
  return true;
}

/// Runs --batch mode through the hardened .queries parser
/// (batch/queries_file.h): one Reasoner::AnswerBatch (or, for `brave`
/// lines, AnswerBatchCredulous) call per (semantics, mode) group, plus one
/// tmpl::AnswerTemplateText call per `answers`/`banswers` line (each
/// template fans out into a batch of its own). Output prints in
/// input-line order — one line per plain query, a FormatAnswer block per
/// template — using the same strings the interactive shell prints, so
/// `ddquery --batch=F prog` and `ddquery prog < F` agree line for line.
/// `cache`, when non-null, is the persistent --cache-file cache (null
/// keeps the reasoner-owned one); template stats accumulate into
/// `tmpl_stats` for the --metrics epilogue. Returns false on a read/parse
/// failure (exit 1); any kUnknown answer sets *worst_exit to 2.
bool RunBatch(dd::Reasoner* reasoner, const std::string& path,
              const dd::QueryOptions& query_opts, int threads,
              bool naive_templates, dd::batch::AnswerCache* cache,
              dd::tmpl::TemplateStats* tmpl_stats, int* worst_exit) {
  auto text = ReadFile(path);
  if (!text) {
    std::fprintf(stderr, "ddquery: cannot read %s\n", path.c_str());
    return false;
  }
  auto parsed = dd::batch::ParseQueriesFile(*text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "ddquery: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return false;
  }

  dd::batch::BatchOptions bo;
  bo.num_threads = threads;
  bo.cache = cache;
  bo.deadline_ms = query_opts.deadline_ms;
  bo.conflict_budget = query_opts.conflict_budget;
  bo.oracle_call_budget = query_opts.oracle_call_budget;
  bo.cancel = query_opts.cancel;
  std::vector<std::string> outputs(parsed->queries.size());
  for (const auto& g : parsed->groups) {
    auto r = g.brave ? reasoner->AnswerBatchCredulous(g.kind, g.queries, bo)
                     : reasoner->AnswerBatch(g.kind, g.queries, bo);
    if (!r.ok()) {
      std::fprintf(stderr, "ddquery: %s\n", r.status().ToString().c_str());
      return false;
    }
    for (size_t k = 0; k < g.slots.size(); ++k) {
      dd::Trilean a = r->answers[k];
      if (a == dd::Trilean::kUnknown) {
        outputs[g.slots[k]] = "unknown (out of budget)\n";
        *worst_exit = 2;
      } else {
        outputs[g.slots[k]] = a == dd::Trilean::kYes ? "yes\n" : "no\n";
      }
    }
  }
  for (size_t i = 0; i < parsed->queries.size(); ++i) {
    const dd::batch::ParsedQuery& q = parsed->queries[i];
    if (!q.is_template) continue;
    dd::tmpl::TemplateOptions topts;
    topts.naive = naive_templates;
    topts.batch = bo;
    auto a = dd::tmpl::AnswerTemplateText(
        reasoner, q.kind, q.query.text,
        q.brave ? dd::batch::BatchMode::kBrave
                : dd::batch::BatchMode::kSkeptical,
        topts);
    if (!a.ok()) {
      std::fprintf(stderr, "ddquery: %s line %d: %s\n", path.c_str(), q.line,
                   a.status().ToString().c_str());
      return false;
    }
    tmpl_stats->Add(a->stats);
    if (!a->unknown.empty()) *worst_exit = 2;
    outputs[i] = dd::tmpl::FormatAnswer(*a);
  }
  for (const std::string& out : outputs) {
    std::printf("%s", out.c_str());
  }
  return true;
}

/// Runs --serve mode: the QUERY/RELOAD/SAVE/STATS/QUIT line protocol on
/// stdin/stdout over a serve::QueryServer. I/O robustness contract
/// (docs/SERVING.md): SIGPIPE is ignored and a failed write (peer closed
/// the pipe) ends the loop; EOF — even mid-line — is a clean shutdown.
/// Returns the audited exit code: 1 only for an unwritable --trace-json
/// file, else QueryServer::ExitCode() (0 clean, 2 degraded).
int RunServe(dd::Database db, const dd::serve::ServeOptions& sopts,
             const std::string& trace_path, bool print_metrics) {
  std::signal(SIGPIPE, SIG_IGN);
  dd::serve::QueryServer server(std::move(db), sopts);
  bool io_ok =
      std::printf("READY fp=%016llx %s\n",
                  static_cast<unsigned long long>(server.fingerprint()),
                  server.DbSummary().c_str()) >= 0 &&
      std::fflush(stdout) == 0;
  std::string line;
  bool quit = false;
  while (io_ok && !quit && std::getline(std::cin, line)) {
    std::string resp = server.HandleLine(line, &quit);
    if (resp.empty()) continue;
    io_ok = std::printf("%s\n", resp.c_str()) >= 0 &&
            std::fflush(stdout) == 0;
  }
  server.Shutdown();
  if (!sopts.cache_path.empty()) {
    // Best-effort warm exit; an explicit SAVE already reported its Status.
    dd::Status s = server.SaveCache();
    if (!s.ok()) {
      std::fprintf(stderr, "ddquery: cache save failed: %s\n",
                   s.ToString().c_str());
    }
  }
  if (sopts.trace != nullptr) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "ddquery: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    sopts.trace->WriteJson(out);
    out << "\n";
  }
  if (print_metrics) {
    dd::obs::MetricsRegistry& reg = dd::obs::MetricsRegistry::Global();
    dd::serve::Publish(server.stats(), &reg);
    dd::obs::WriteJson(std::cout, reg.Snapshot());
    std::cout << "\n";
  }
  return server.ExitCode();
}

}  // namespace

int main(int argc, char** argv) {
  dd::QueryOptions query_opts;
  std::string trace_path;
  std::string batch_path;
  std::string cache_path;
  int64_t num_threads = 1;
  int64_t retry_rungs = 3;
  bool print_metrics = false;
  bool certify = false;
  bool serve = false;
  bool first_order = false;
  bool naive_templates = false;
  dd::ground::GroundOptions ground_opts;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    bool matched = false;
    if (!ParseInt64Flag(argc, argv, &i, "--timeout-ms",
                        &query_opts.deadline_ms, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseInt64Flag(argc, argv, &i, "--conflict-budget",
                        &query_opts.conflict_budget, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseInt64Flag(argc, argv, &i, "--threads", &num_threads, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseInt64Flag(argc, argv, &i, "--retry-rungs", &retry_rungs,
                        &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseInt64Flag(argc, argv, &i, "--ground-max-clauses",
                        &ground_opts.max_clauses, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseStringFlag(argc, argv, &i, "--batch", &batch_path, &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseStringFlag(argc, argv, &i, "--cache-file", &cache_path,
                         &matched)) {
      return 1;
    }
    if (matched) continue;
    if (!ParseStringFlag(argc, argv, &i, "--trace-json", &trace_path,
                         &matched)) {
      return 1;
    }
    if (matched) continue;
    std::string arg = argv[i];
    if (arg == "--metrics") {
      print_metrics = true;
      continue;
    }
    if (arg == "--certify") {
      certify = true;
      continue;
    }
    if (arg == "--serve") {
      serve = true;
      continue;
    }
    if (arg == "--first-order") {
      first_order = true;
      continue;
    }
    if (arg == "--ground-relevance") {
      ground_opts.relevance_filter = true;
      continue;
    }
    if (arg == "--naive-templates") {
      naive_templates = true;
      continue;
    }
    positional.push_back(argv[i]);
  }

  // One span tree for the whole session: every query command records one
  // "reasoner"-layer span (in serve mode, a "serve"-layer request span
  // with the reasoner spans nested below).
  dd::obs::TraceContext trace;
  dd::obs::TraceContext* trace_ptr = trace_path.empty() ? nullptr : &trace;

  // Parse the program file exactly once, BEFORE constructing the reasoner,
  // so a single instance is configured (trace, certification) one time —
  // no throwaway empty reasoner, no double setup.
  dd::Database initial_db;
  if (!positional.empty()) {
    auto text = ReadFile(positional[0]);
    if (!text) {
      std::fprintf(stderr, "cannot read %s\n", positional[0].c_str());
      return 1;
    }
    auto db = LoadProgram(*text, first_order, ground_opts);
    if (!db.ok()) {
      std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
      return 1;
    }
    initial_db = std::move(db).value();
  }

  if (serve) {
    dd::serve::ServeOptions sopts;
    sopts.cache_path = cache_path;
    sopts.num_threads = static_cast<int>(num_threads);
    sopts.trace = trace_ptr;
    sopts.retry.max_rungs = static_cast<int>(retry_rungs);
    // The one-shot budget flags become the ladder's per-request ceilings
    // (rung 0 stays small; escalation is clamped at the ceiling).
    if (query_opts.conflict_budget >= 0) {
      sopts.retry.conflict_ceiling = query_opts.conflict_budget;
    }
    if (query_opts.deadline_ms >= 0) {
      sopts.retry.initial_deadline_ms = query_opts.deadline_ms;
      sopts.retry.deadline_ceiling_ms = query_opts.deadline_ms;
    }
    return RunServe(std::move(initial_db), sopts, trace_path, print_metrics);
  }

  dd::Reasoner reasoner{std::move(initial_db)};
  reasoner.set_trace(trace_ptr);
  reasoner.EnableCertification(certify);
  if (!positional.empty() && batch_path.empty()) {
    std::printf("loaded %s (%s)\n", positional[0].c_str(),
                dd::DatabaseSummary(reasoner.db()).c_str());
  }

  // --cache-file outside serve mode: one external cache shared by --batch
  // and the shell's lit/infer commands, warm-started here and snapshotted
  // at exit. Stale and corrupt files degrade to a cold start (the latter
  // with a notice), per the snapshot contract.
  std::unique_ptr<dd::batch::AnswerCache> answer_cache;
  if (!cache_path.empty()) {
    answer_cache = std::make_unique<dd::batch::AnswerCache>();
    dd::serve::SnapshotLoad outcome = dd::serve::SnapshotLoad::kMissing;
    dd::serve::LoadAnswerCache(cache_path, reasoner.fingerprint(),
                               answer_cache.get(), &outcome);
    if (outcome == dd::serve::SnapshotLoad::kCorrupt) {
      std::fprintf(stderr,
                   "ddquery: cache file %s failed integrity checks; "
                   "starting cold\n",
                   cache_path.c_str());
    }
  }

  // Set to 2 when any budgeted query exhausts its budget; distinct from the
  // load/parse failure exit (1) above.
  int worst_exit = 0;
  dd::tmpl::TemplateStats tmpl_stats;
  if (!batch_path.empty() &&
      !RunBatch(&reasoner, batch_path, query_opts,
                static_cast<int>(num_threads), naive_templates,
                answer_cache.get(), &tmpl_stats, &worst_exit)) {
    return 1;
  }
  std::string line;
  const bool interactive = batch_path.empty() && isatty(fileno(stdin)) != 0;
  // Batch mode replaces the shell; the observability epilogue below still
  // runs, so --metrics / --trace-json compose with --batch.
  while (batch_path.empty()) {
    if (interactive) {
      std::printf("ddq> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    std::istringstream in(line);
    std::string cmd;
    if (!(in >> cmd)) continue;
    if (cmd[0] == '#') continue;  // comment lines, as in --batch files
    if (cmd == "quit" || cmd == "exit") break;
    if (cmd == "help") {
      PrintHelp();
      continue;
    }
    if (cmd == "show") {
      std::printf("%s", reasoner.db().ToString().c_str());
      continue;
    }
    if (cmd == "stats") {
      // The combined rendering: oracle counters | dispatch downgrades |
      // session reuse, reconstructed from a registry snapshot.
      const dd::oracle::SessionStats sess = reasoner.TotalSessionStats();
      std::printf("%s\n", dd::FormatStats(reasoner.TotalStats(),
                                          reasoner.dispatch_stats(), sess)
                              .c_str());
      if (reasoner.certification_enabled()) {
        std::printf("%s\n", reasoner.certification_stats().ToString().c_str());
      }
      continue;
    }
    if (cmd == "load" || cmd == "loadg") {
      std::string path;
      in >> path;
      auto text = ReadFile(path);
      if (!text) {
        std::printf("cannot read %s\n", path.c_str());
        continue;
      }
      // "load" auto-detects first-order text (any rule with a variable)
      // exactly like the program-file argument; "loadg" forces grounding.
      auto db = LoadProgram(*text, first_order || cmd == "loadg",
                            ground_opts);
      if (!db.ok()) {
        std::printf("%s\n", db.status().ToString().c_str());
        continue;
      }
      reasoner = dd::Reasoner(std::move(db).value());
      reasoner.set_trace(trace_ptr);
      reasoner.EnableCertification(certify);
      std::printf("loaded (%s)\n",
                  dd::DatabaseSummary(reasoner.db()).c_str());
      continue;
    }
    if (cmd == "add") {
      std::string clause;
      std::getline(in, clause);
      // Re-parse the whole program plus the new clause (keeps ids stable
      // enough for interactive use and reuses one parser).
      auto r = dd::Reasoner::FromProgram(reasoner.db().ToString() + clause);
      if (!r.ok()) {
        std::printf("%s\n", r.status().ToString().c_str());
        continue;
      }
      reasoner = std::move(r).value();
      reasoner.set_trace(trace_ptr);
      reasoner.EnableCertification(certify);
      std::printf("ok (%s)\n", dd::DatabaseSummary(reasoner.db()).c_str());
      continue;
    }
    if (cmd == "strata") {
      auto s = dd::Stratify(reasoner.db());
      if (!s.ok()) {
        std::printf("%s\n", s.status().ToString().c_str());
      } else {
        std::printf("%s", s->ToString(reasoner.db().vocabulary()).c_str());
      }
      continue;
    }
    if (cmd == "partition") {
      std::string rest;
      std::getline(in, rest);
      ParsePartitionArgs(rest, &reasoner);
      continue;
    }

    if (cmd == "answers" || cmd == "banswers") {
      std::string sem_name;
      if (!(in >> sem_name)) {
        std::printf("missing semantics name\n");
        continue;
      }
      auto kind = dd::SemanticsKindFromName(sem_name);
      if (!kind) {
        std::printf("unknown semantics '%s'\n", sem_name.c_str());
        continue;
      }
      std::string rest;
      std::getline(in, rest);
      if (dd::Trim(rest).empty()) {
        std::printf("missing template (e.g. answers gcwa p(X))\n");
        continue;
      }
      // The same TemplateOptions the --batch path builds, so replaying a
      // .queries file through the shell prints byte-identical blocks.
      dd::tmpl::TemplateOptions topts;
      topts.naive = naive_templates;
      topts.batch.num_threads = static_cast<int>(num_threads);
      topts.batch.cache = answer_cache.get();
      topts.batch.deadline_ms = query_opts.deadline_ms;
      topts.batch.conflict_budget = query_opts.conflict_budget;
      topts.batch.oracle_call_budget = query_opts.oracle_call_budget;
      topts.batch.cancel = query_opts.cancel;
      auto a = dd::tmpl::AnswerTemplateText(
          &reasoner, *kind, rest,
          cmd == "banswers" ? dd::batch::BatchMode::kBrave
                            : dd::batch::BatchMode::kSkeptical,
          topts);
      if (!a.ok()) {
        std::printf("%s\n", a.status().ToString().c_str());
        if (a.status().IsBudgetExhaustion()) worst_exit = 2;
        continue;
      }
      tmpl_stats.Add(a->stats);
      if (!a->unknown.empty()) worst_exit = 2;
      std::printf("%s", dd::tmpl::FormatAnswer(*a).c_str());
      continue;
    }

    // Remaining commands start with a semantics name.
    std::string sem_name;
    if (cmd == "models" || cmd == "infer" || cmd == "lit" ||
        cmd == "exists" || cmd == "brave" || cmd == "why") {
      if (!(in >> sem_name)) {
        std::printf("missing semantics name\n");
        continue;
      }
      auto kind = dd::SemanticsKindFromName(sem_name);
      if (!kind) {
        std::printf("unknown semantics '%s'\n", sem_name.c_str());
        continue;
      }
      if (cmd == "models") {
        int64_t cap = 32;
        in >> cap;
        if (!query_opts.unlimited()) {
          auto ans = reasoner.Models(*kind, cap, query_opts);
          if (!ans.ok()) {
            std::printf("%s\n", ans.status().ToString().c_str());
            continue;
          }
          std::printf("%s(%zu models%s)\n",
                      dd::ModelsToString(ans->models,
                                         reasoner.db().vocabulary())
                          .c_str(),
                      ans->models.size(),
                      ans->truncated ? ", truncated: out of budget" : "");
          if (ans->truncated) worst_exit = 2;
          continue;
        }
        auto models = reasoner.Models(*kind, cap);
        if (!models.ok()) {
          std::printf("%s\n", models.status().ToString().c_str());
          continue;
        }
        std::printf("%s(%zu models)\n",
                    dd::ModelsToString(*models,
                                       reasoner.db().vocabulary())
                        .c_str(),
                    models->size());
      } else if (cmd == "exists") {
        if (!query_opts.unlimited()) {
          auto r = reasoner.HasModel(*kind, query_opts);
          if (!r.ok()) {
            std::printf("%s\n", r.status().ToString().c_str());
          } else if (*r == dd::Trilean::kUnknown) {
            std::printf("unknown (out of budget)\n");
            worst_exit = 2;
          } else {
            std::printf("%s\n", *r == dd::Trilean::kYes ? "yes" : "no");
          }
          continue;
        }
        auto r = reasoner.HasModel(*kind);
        std::printf("%s\n", r.ok() ? (*r ? "yes" : "no")
                                   : r.status().ToString().c_str());
      } else if (cmd == "brave" || cmd == "why") {
        // Routed through the Reasoner wrappers so the budget flags and the
        // trace apply to credulous/certificate queries too.
        std::string rest;
        std::getline(in, rest);
        if (cmd == "brave") {
          auto r = reasoner.InfersCredulously(*kind, rest, query_opts);
          if (!r.ok()) {
            std::printf("%s\n", r.status().ToString().c_str());
          } else if (*r == dd::Trilean::kUnknown) {
            std::printf("unknown (out of budget)\n");
            worst_exit = 2;
          } else {
            std::printf("%s\n", *r == dd::Trilean::kYes ? "yes" : "no");
          }
        } else {
          auto ce = reasoner.FindCounterexample(*kind, rest, query_opts);
          if (!ce.ok()) {
            std::printf("%s\n", ce.status().ToString().c_str());
            // Budget exhaustion (deadline/conflicts/oracle calls or
            // external kCancelled) keeps the budget exit code.
            if (ce.status().IsBudgetExhaustion()) worst_exit = 2;
          } else if (!ce->has_value()) {
            std::printf("inferred: true in every %s model\n",
                        sem_name.c_str());
          } else {
            std::printf(
                "not inferred: counter-model %s\n",
                (*ce)->ToString(reasoner.db().vocabulary()).c_str());
          }
        }
      } else {
        std::string rest;
        std::getline(in, rest);
        if (answer_cache != nullptr) {
          // --cache-file: route through AnswerBatch so the persistent
          // cache applies (a one-query batch answers identically to the
          // plain path — docs/BATCHING.md).
          dd::batch::BatchOptions bo;
          bo.cache = answer_cache.get();
          bo.deadline_ms = query_opts.deadline_ms;
          bo.conflict_budget = query_opts.conflict_budget;
          bo.oracle_call_budget = query_opts.oracle_call_budget;
          bo.cancel = query_opts.cancel;
          auto r = reasoner.AnswerBatch(
              *kind, {dd::batch::BatchQuery{rest, cmd == "lit"}}, bo);
          if (!r.ok()) {
            std::printf("%s\n", r.status().ToString().c_str());
          } else if (r->answers[0] == dd::Trilean::kUnknown) {
            std::printf("unknown (out of budget)\n");
            worst_exit = 2;
          } else {
            std::printf("%s\n",
                        r->answers[0] == dd::Trilean::kYes ? "yes" : "no");
          }
          continue;
        }
        if (!query_opts.unlimited()) {
          auto r = cmd == "infer"
                       ? reasoner.InfersFormula(*kind, rest, query_opts)
                       : reasoner.InfersLiteral(*kind, rest, query_opts);
          if (!r.ok()) {
            std::printf("%s\n", r.status().ToString().c_str());
          } else if (*r == dd::Trilean::kUnknown) {
            std::printf("unknown (out of budget)\n");
            worst_exit = 2;
          } else {
            std::printf("%s\n", *r == dd::Trilean::kYes ? "yes" : "no");
          }
          continue;
        }
        auto r = cmd == "infer" ? reasoner.InfersFormula(*kind, rest)
                                : reasoner.InfersLiteral(*kind, rest);
        std::printf("%s\n", r.ok() ? (*r ? "yes" : "no")
                                   : r.status().ToString().c_str());
      }
      continue;
    }
    std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
  }

  if (answer_cache != nullptr) {
    dd::Status s = dd::serve::SaveAnswerCache(
        *answer_cache, reasoner.fingerprint(), cache_path);
    if (!s.ok()) {
      std::fprintf(stderr, "ddquery: cannot write %s: %s\n",
                   cache_path.c_str(), s.ToString().c_str());
      if (worst_exit == 0) worst_exit = 1;
    }
  }
  if (trace_ptr != nullptr) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "ddquery: cannot write %s\n", trace_path.c_str());
      return 1;
    }
    trace.WriteJson(out);
    out << "\n";
  }
  if (print_metrics) {
    // Publish once at exit (registry counters are monotonic) and emit the
    // snapshot under the canonical dd.* names.
    dd::obs::MetricsRegistry& reg = dd::obs::MetricsRegistry::Global();
    reasoner.PublishMetrics(&reg);
    dd::tmpl::Publish(tmpl_stats, &reg);
    dd::obs::WriteJson(std::cout, reg.Snapshot());
    std::cout << "\n";
  }
  if (certify) {
    const dd::analysis::CertificationStats& cs =
        reasoner.certification_stats();
    std::printf("%s\n", cs.ToString().c_str());
    if (cs.rejected > 0) {
      for (const std::string& why : reasoner.certification_failures()) {
        std::fprintf(stderr, "ddquery: %s\n", why.c_str());
      }
      if (worst_exit == 0) worst_exit = 1;
    }
  }
  return worst_exit;
}
