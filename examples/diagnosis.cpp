// Model-based diagnosis with minimal-model semantics.
//
// The classical Reiter-style setting: components are ok unless assumed
// abnormal (ab_i); observations contradict the fault-free behaviour;
// *minimal diagnoses* are exactly the minimal models projected to the ab
// atoms. EGCWA/ECWA deliver them directly:
//
//   * EGCWA enumerates all minimal diagnoses,
//   * GCWA tells which components are provably innocent (¬ab_i inferred),
//   * ECWA with P = {ab atoms}, Z = {value atoms} is the textbook
//     circumscriptive diagnosis: only abnormality is minimized while the
//     signal values float.
#include <cstdio>
#include <set>
#include <string>

#include "core/oracle_stats.h"
#include "gen/generators.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "minimal/minimal_models.h"
#include "semantics/ecwa_circ.h"
#include "semantics/egcwa.h"
#include "semantics/gcwa.h"

int main() {
  // Two independent buffer chains, each observed to be broken.
  dd::Database db = dd::DiagnosisDdb(/*num_gates=*/6, /*num_faulty=*/2,
                                     /*seed=*/1);
  std::printf("== Circuit description ==\n%s\n", db.ToString().c_str());

  // Partition: minimize the ab atoms, let everything else float.
  std::vector<dd::Var> ab_atoms, float_atoms;
  for (dd::Var v = 0; v < db.num_vars(); ++v) {
    const std::string& name = db.vocabulary().Name(v);
    if (name.rfind("ab", 0) == 0) {
      ab_atoms.push_back(v);
    } else {
      float_atoms.push_back(v);
    }
  }
  auto pqz = dd::Partition::Make(db.num_vars(), ab_atoms, {}, float_atoms);
  if (!pqz.ok()) {
    std::fprintf(stderr, "%s\n", pqz.status().ToString().c_str());
    return 1;
  }

  std::printf("== Minimal diagnoses (ECWA, ab minimized, values float) ==\n");
  dd::EcwaSemantics ecwa(db, *pqz);
  auto models = ecwa.Models(64);
  if (!models.ok()) {
    std::fprintf(stderr, "%s\n", models.status().ToString().c_str());
    return 1;
  }
  std::set<std::string> diagnoses;
  for (const auto& m : *models) {
    std::string d = "{";
    for (dd::Var v : ab_atoms) {
      if (m.Contains(v)) {
        if (d.size() > 1) d += ", ";
        d += db.vocabulary().Name(v);
      }
    }
    diagnoses.insert(d + "}");
  }
  for (const auto& d : diagnoses) std::printf("  %s\n", d.c_str());

  std::printf("\n== Which components are provably innocent? (GCWA) ==\n");
  dd::GcwaSemantics gcwa(db);
  for (dd::Var v : ab_atoms) {
    auto r = gcwa.InfersLiteral(dd::Lit::Neg(v));
    if (!r.ok()) continue;
    std::printf("  not %-5s : %s\n", db.vocabulary().Name(v).c_str(),
                *r ? "innocent (in no minimal diagnosis)"
                   : "suspect (in some minimal diagnosis)");
  }

  std::printf("\n== Skeptical conclusions over all diagnoses (EGCWA) ==\n");
  dd::EgcwaSemantics egcwa(db);
  dd::Vocabulary* voc = &db.vocabulary();
  auto q = dd::ParseFormula("ab0 | ab1 | ab2", voc);
  if (q.ok()) {
    auto r = egcwa.InfersFormula(*q);
    std::printf("  some gate of chain 0 is faulty: %s\n",
                r.ok() && *r ? "yes" : "no");
  }
  std::printf("\noracle work: %s\n",
              dd::FormatStats(egcwa.stats(), egcwa.session_stats()).c_str());
  return 0;
}
