// A guided tour of the paper, section by section: every inline claim of
// Eiter & Gottlob (PODS-93) reproduced as executable output.
//
//   $ ./paper_walkthrough
//
// Sections: 2 (model notation), 3.1 (CWA failure, GCWA, the counting
// algorithm), 3.2 (DDR vs PWS, Example 3.1), 3.3 (EGCWA/ECWA), 4
// (stratification, ICWA), 5.1 (PERF), 5.2 (DSM/PDSM and the w :- not w
// gadget), Prop. 5.4 (UMINSAT).
#include <cstdio>

#include "core/reasoner.h"
#include "logic/printer.h"
#include "minimal/uminsat.h"
#include "qbf/qbf_solver.h"
#include "qbf/reductions.h"
#include "semantics/counting_inference.h"
#include "semantics/gcwa.h"
#include "strat/stratifier.h"

namespace {

void Header(const char* s) { std::printf("\n===== %s =====\n", s); }

const char* YesNo(const dd::Result<bool>& r) {
  if (!r.ok()) return "error";
  return *r ? "yes" : "no";
}

}  // namespace

int main() {
  Header("Section 2: models of DB = {a | b, c :- a}");
  {
    auto r = dd::Reasoner::FromProgram("a | b. c :- a.");
    auto mm = r->Models(dd::SemanticsKind::kEgcwa);
    std::printf("minimal models MM(DB):\n%s",
                dd::ModelsToString(*mm, r->db().vocabulary()).c_str());
  }

  Header("Section 3.1: Reiter's CWA is inconsistent on disjunctions");
  {
    auto r = dd::Reasoner::FromProgram("a | b.");
    std::printf("CWA(DB) has a model:  %s\n",
                YesNo(r->HasModel(dd::SemanticsKind::kCwa)));
    std::printf("GCWA(DB) has a model: %s   (Minker's repair)\n",
                YesNo(r->HasModel(dd::SemanticsKind::kGcwa)));
  }

  Header("Section 3.1: the counting algorithm (O(log n) Sigma2p calls)");
  {
    dd::Database db = *dd::ParseDatabase("a | b. c :- a. d | e :- b.");
    dd::GcwaSemantics gcwa(db);
    auto f = dd::ParseFormula("~c | ~d", &db.vocabulary());
    auto res = gcwa.InfersFormulaViaCounting(*f);
    std::printf("GCWA |= ~c | ~d : %s   [free atoms=%d, oracle calls=%lld "
                "for |V|=%d]\n",
                res.ok() && res->inferred ? "yes" : "no",
                res.ok() ? res->free_count : -1,
                res.ok() ? static_cast<long long>(res->oracle_calls) : -1,
                db.num_vars());
  }

  Header("Section 3.2 / Example 3.1: DDR ignores integrity clauses");
  {
    auto r = dd::Reasoner::FromProgram("a | b. :- a, b. c :- a, b.");
    std::printf("DDR |= ~c : %s   (the paper: DDR(DB) |/= ~c)\n",
                YesNo(r->InfersLiteral(dd::SemanticsKind::kDdr, "not c")));
    std::printf("PWS |= ~c : %s   (Chan's repair respects :- a,b)\n",
                YesNo(r->InfersLiteral(dd::SemanticsKind::kPws, "not c")));
  }

  Header("Section 3.2: WGCWA weaker than GCWA on {a., a | b.}");
  {
    auto r = dd::Reasoner::FromProgram("a. a | b.");
    std::printf("GCWA |= ~b : %s\n",
                YesNo(r->InfersLiteral(dd::SemanticsKind::kGcwa, "not b")));
    std::printf("DDR  |= ~b : %s\n",
                YesNo(r->InfersLiteral(dd::SemanticsKind::kDdr, "not b")));
  }

  Header("Section 3.3: EGCWA strengthens GCWA on formulas");
  {
    auto r = dd::Reasoner::FromProgram("a | b.");
    std::printf("GCWA  |= ~a | ~b : %s\n",
                YesNo(r->InfersFormula(dd::SemanticsKind::kGcwa, "~a | ~b")));
    std::printf("EGCWA |= ~a | ~b : %s   (EGCWA(DB) = MM(DB))\n",
                YesNo(r->InfersFormula(dd::SemanticsKind::kEgcwa,
                                       "~a | ~b")));
  }

  Header("Section 4: stratification and ICWA");
  {
    dd::Database db = *dd::ParseDatabase("a | b. c :- not a.");
    auto strat = dd::Stratify(db);
    std::printf("stratification:\n%s",
                strat->ToString(db.vocabulary()).c_str());
    dd::Reasoner r(db);
    auto models = r.Models(dd::SemanticsKind::kIcwa);
    std::printf("ICWA models:\n%s",
                dd::ModelsToString(*models, r.db().vocabulary()).c_str());
  }

  Header("Section 5.1: perfect models prefer higher-priority minimality");
  {
    auto r = dd::Reasoner::FromProgram("b :- not a.");
    auto perf = r->Models(dd::SemanticsKind::kPerf);
    auto mm = r->Models(dd::SemanticsKind::kEgcwa);
    std::printf("minimal models:\n%s",
                dd::ModelsToString(*mm, r->db().vocabulary()).c_str());
    std::printf("perfect models (only the intended one):\n%s",
                dd::ModelsToString(*perf, r->db().vocabulary()).c_str());
  }

  Header("Section 5.2: stable models and the w :- not w constraint");
  {
    auto r1 = dd::Reasoner::FromProgram("a :- not a.");
    std::printf("DSM({a :- not a}) has a model: %s\n",
                YesNo(r1->HasModel(dd::SemanticsKind::kDsm)));
    std::printf("PDSM of the same program has one: %s "
                "(the all-undefined partial model)\n",
                YesNo(r1->HasModel(dd::SemanticsKind::kPdsm)));
    auto r2 = dd::Reasoner::FromProgram("a | w. w :- not w.");
    auto models = r2->Models(dd::SemanticsKind::kDsm);
    std::printf("DSM({a | w, w :- not w}):\n%s",
                dd::ModelsToString(*models, r2->db().vocabulary()).c_str());
  }

  Header("Section 5.2 gadget executed: exists-forall QBF -> DSM existence");
  {
    // Phi = exists x forall y (x & y) | (~x & ~y)? As DNF terms over
    // blocks: valid iff some x works for all y — here invalid.
    dd::QbfExistsForallDnf q;
    q.num_vars = 2;
    q.existential = {0};
    q.universal = {1};
    q.terms = {{dd::Lit::Pos(0), dd::Lit::Pos(1)},
               {dd::Lit::Neg(0), dd::Lit::Neg(1)}};
    auto truth = dd::SolveExistsForall(q);
    dd::ReducedInstance inst = dd::ReduceSigma2ToDsmExistence(q);
    dd::Reasoner r(inst.db);
    std::printf("QBF valid: %s;  gadget DB has a stable model: %s\n",
                truth.ok() && *truth ? "yes" : "no",
                YesNo(r.HasModel(dd::SemanticsKind::kDsm)));
  }

  Header("Proposition 5.4: UNSAT <=> unique minimal model");
  {
    // (x) & (~x) is UNSAT; the gadget DB then has {w} as its unique
    // minimal model.
    dd::sat::Cnf cnf;
    cnf.num_vars = 1;
    cnf.clauses = {{dd::Lit::Pos(0)}, {dd::Lit::Neg(0)}};
    dd::ReducedInstance inst = dd::ReduceUnsatToUniqueMinimalModel(cnf);
    dd::MinimalEngine e(inst.db);
    auto u = dd::UniqueMinimalModel(&e);
    std::printf("gadget has unique minimal model: %s (witness %s)\n",
                u.unique ? "yes" : "no",
                u.witness ? u.witness->ToString(inst.db.vocabulary()).c_str()
                          : "-");
  }

  std::printf("\nAll claims above match the paper's statements.\n");
  return 0;
}
