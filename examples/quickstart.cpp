// Quickstart: load a disjunctive database and query it under several
// semantics through the Reasoner facade.
//
//   $ ./quickstart
//
// The program walks through the paper's running distinctions: GCWA vs
// EGCWA on formulas, DDR vs PWS on integrity clauses (Example 3.1), and
// stable models under negation.
#include <cstdio>

#include "core/reasoner.h"
#include "logic/printer.h"

using dd::Reasoner;
using dd::SemanticsKind;

namespace {

void Query(Reasoner* r, SemanticsKind kind, const char* what,
           const char* text, bool literal) {
  auto res = literal ? r->InfersLiteral(kind, text)
                     : r->InfersFormula(kind, text);
  if (!res.ok()) {
    std::printf("  %-6s |= %-14s ?  error: %s\n", dd::SemanticsKindName(kind),
                what, res.status().ToString().c_str());
    return;
  }
  std::printf("  %-6s |= %-14s ?  %s\n", dd::SemanticsKindName(kind), what,
              *res ? "yes" : "no");
}

}  // namespace

int main() {
  std::printf("== A disjunctive database ==\n");
  const char* program =
      "wing | rotor.\n"          // every aircraft has wings or rotors
      "plane :- wing.\n"
      "heli  :- rotor.\n";
  std::printf("%s\n", program);

  auto r = Reasoner::FromProgram(program);
  if (!r.ok()) {
    std::fprintf(stderr, "parse error: %s\n", r.status().ToString().c_str());
    return 1;
  }

  std::printf("-- closed-world literal inference --\n");
  Query(&*r, SemanticsKind::kGcwa, "not plane", "not plane", true);
  Query(&*r, SemanticsKind::kGcwa, "not ufo", "not ufo", true);
  Query(&*r, SemanticsKind::kDdr, "not plane", "not plane", true);

  std::printf("\n-- formula inference: GCWA vs EGCWA --\n");
  // EGCWA reasons over minimal models only, so it also infers the
  // "exclusive" reading of the disjunction.
  Query(&*r, SemanticsKind::kGcwa, "~wing | ~rotor", "~wing | ~rotor", false);
  Query(&*r, SemanticsKind::kEgcwa, "~wing | ~rotor", "~wing | ~rotor",
        false);

  std::printf("\n-- the minimal models themselves --\n");
  auto models = r->Models(SemanticsKind::kEgcwa);
  if (models.ok()) {
    std::printf("%s",
                dd::ModelsToString(*models, r->db().vocabulary()).c_str());
  }

  std::printf("\n== Example 3.1 of the paper ==\n");
  const char* ex31 =
      "a | b.\n"
      ":- a, b.\n"
      "c :- a, b.\n";
  std::printf("%s\n", ex31);
  auto r31 = Reasoner::FromProgram(ex31);
  std::printf("-- DDR ignores the integrity clause, PWS respects it --\n");
  Query(&*r31, SemanticsKind::kDdr, "not c", "not c", true);
  Query(&*r31, SemanticsKind::kPws, "not c", "not c", true);

  std::printf("\n== Negation: stable models ==\n");
  const char* nm =
      "sunny | rainy.\n"
      "picnic :- sunny, not storm.\n";
  std::printf("%s\n", nm);
  auto rn = Reasoner::FromProgram(nm);
  auto stable = rn->Models(SemanticsKind::kDsm);
  if (stable.ok()) {
    std::printf("stable models:\n%s",
                dd::ModelsToString(*stable, rn->db().vocabulary()).c_str());
  }
  Query(&*rn, SemanticsKind::kDsm, "sunny -> picnic", "sunny -> picnic",
        false);
  return 0;
}
