// A stratified knowledge base with default rules, queried under the
// stratified semantics the paper analyzes in Section 4: ICWA and PERF.
//
// The policy: accounts are either personal or corporate (disjunctive
// fact); access is granted by default unless the account is flagged;
// an audit fires for corporate accounts that were denied.
//
// Stratification separates the layers: the choice lives in stratum 1,
// the defaults (through "not") in higher strata. Both ICWA and PERF pick
// out exactly the intended models, unlike plain minimal models which
// also admit unsupported flaggings.
#include <cstdio>

#include "logic/parser.h"
#include "logic/printer.h"
#include "semantics/egcwa.h"
#include "semantics/icwa.h"
#include "semantics/perf.h"
#include "strat/stratifier.h"

int main() {
  const char* program =
      "personal | corporate.\n"
      "flagged :- corporate, not cleared.\n"
      "access :- not flagged.\n"
      "audit :- corporate, not access.\n";
  std::printf("== Policy ==\n%s\n", program);

  auto parsed = dd::ParseDatabase(program);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
    return 1;
  }
  dd::Database db = std::move(parsed).value();

  auto strat = dd::Stratify(db);
  if (!strat.ok()) {
    std::fprintf(stderr, "%s\n", strat.status().ToString().c_str());
    return 1;
  }
  std::printf("== Stratification (%d strata) ==\n%s\n", strat->num_strata,
              strat->ToString(db.vocabulary()).c_str());

  std::printf("== Perfect models ==\n");
  dd::PerfSemantics perf(db);
  auto pm = perf.Models();
  if (pm.ok()) {
    std::printf("%s", dd::ModelsToString(*pm, db.vocabulary()).c_str());
  }

  std::printf("\n== ICWA models ==\n");
  dd::IcwaSemantics icwa(db, *strat);
  auto im = icwa.Models();
  if (im.ok()) {
    std::printf("%s", dd::ModelsToString(*im, db.vocabulary()).c_str());
  }

  std::printf("\n== Minimal models (for contrast) ==\n");
  dd::EgcwaSemantics egcwa(db);
  auto mm = egcwa.Models();
  if (mm.ok()) {
    std::printf("%s", dd::ModelsToString(*mm, db.vocabulary()).c_str());
  }

  std::printf("\n== Queries ==\n");
  auto ask = [&](const char* text) {
    auto f = dd::ParseFormula(text, &db.vocabulary());
    if (!f.ok()) return;
    auto pr = perf.InfersFormula(*f);
    auto ir = icwa.InfersFormula(*f);
    std::printf("  %-28s PERF: %-3s  ICWA: %-3s\n", text,
                pr.ok() && *pr ? "yes" : "no",
                ir.ok() && *ir ? "yes" : "no");
  };
  ask("personal -> access");
  ask("corporate -> flagged");
  ask("audit -> corporate");
  ask("access | audit");
  return 0;
}
