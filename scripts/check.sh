#!/usr/bin/env bash
# Full pre-merge check matrix:
#
#   1. Release build with -Werror, ctest
#   2. AddressSanitizer build, ctest
#   3. UndefinedBehaviorSanitizer build, ctest
#   4. ThreadSanitizer build, running the concurrency surface only
#      (thread-pool/parallel-enumeration/oracle-session tests) — TSan
#      triples runtimes, and the rest of the suite is single-threaded
#   5. clang-tidy over src/ (skipped with a notice when not installed)
#   6. clang-format --dry-run -Werror over src/ (same skip rule)
#   7. ddlint over examples/programs/*.ddb, diffed against the committed
#      golden diagnostics (examples/programs/lint_golden.txt) so rule
#      regressions show as a diff, with the SARIF export validated
#      through `python3 -m json.tool`; exit 2 = out of budget and fails
#      the check (1 just means diagnostics, which the bait programs
#      produce on purpose)
#   8. observability export smoke: ddquery --trace-json/--metrics on a
#      real example program, both outputs validated through
#      `python3 -m json.tool` (docs/OBSERVABILITY.md schema contract),
#      plus a `ddquery --certify` sweep over every example program —
#      certificate rejections flip the exit code and fail the leg
#      (docs/ANALYSIS.md section 5)
#   9. batched-query A/B: every examples/programs/*.queries file runs
#      once through `ddquery --batch` (4 workers) and once line-by-line
#      through the interactive loop; the answer streams must be
#      identical (docs/BATCHING.md determinism contract). First-order
#      programs (.fodb) join via the grounder auto-detect.
#  9b. template A/B: the first-order coloring3 workload replayed under
#      --naive-templates (sequential per-instantiation evaluation) must
#      emit byte-identical answer blocks to the batched default
#      (docs/TEMPLATES.md equivalence contract)
#  10. crash-recovery: a --batch run covering all eleven semantics with
#      --cache-file is killed (kill -9 via _exit) at each
#      DD_SNAPSHOT_CRASH_AT point mid-save; the restarted run must load
#      clean (or cold-start from the torn temp file) and answer
#      identically to a cache-less cold run (docs/SERVING.md §snapshots)
#  11. fault-injection + deadline soak: the DD_FAULT_UNKNOWN_AT /
#      DD_FAULT_EXHAUST_AFTER matrix over the injection-tolerant
#      FaultSoak suite of budget_test, under the ASan build (docs/
#      ROBUSTNESS.md: every semantics must answer reference-or-Unknown,
#      never crash, never flip)
#
# Usage: scripts/check.sh [--fast]   (--fast: Release leg only)
set -u
cd "$(dirname "$0")/.."

FAST=0
for arg in "$@"; do
  case "$arg" in
    --fast) FAST=1 ;;
    *) echo "usage: scripts/check.sh [--fast]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 4)"
FAILED=0

run_leg() { # name build_dir cmake_args...   (CTEST_FILTER: optional -R regex)
  local name="$1" dir="$2"; shift 2
  local filter="${CTEST_FILTER:-}"
  echo "===== $name ====="
  if ! cmake -B "$dir" -S . "$@" >"$dir.configure.log" 2>&1; then
    echo "$name: configure FAILED (see $dir.configure.log)"; FAILED=1; return
  fi
  if ! cmake --build "$dir" -j "$JOBS" >"$dir.build.log" 2>&1; then
    echo "$name: build FAILED (see $dir.build.log)"; FAILED=1; return
  fi
  if ! ctest --test-dir "$dir" -j "$JOBS" --output-on-failure \
       ${filter:+-R "$filter"} >"$dir.ctest.log" 2>&1; then
    echo "$name: ctest FAILED (see $dir.ctest.log)"; FAILED=1; return
  fi
  tail -n 2 "$dir.ctest.log"
  echo "$name: OK"
}

run_leg "release (-Werror)" build-check-release \
        -DCMAKE_BUILD_TYPE=Release -DDD_WERROR=ON -DDD_BUILD_BENCHMARKS=OFF

if [ "$FAST" -eq 0 ]; then
  run_leg "asan" build-check-asan \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDD_SANITIZE=address \
          -DDD_BUILD_BENCHMARKS=OFF
  run_leg "ubsan" build-check-ubsan \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDD_SANITIZE=undefined \
          -DDD_BUILD_BENCHMARKS=OFF
  # The concurrency surface: the thread-pool contract tests, the parallel
  # enumeration layers behind them, and the oracle-session suite (sessions
  # are what parallel chunks must NOT share).
  # batch_test joins the filter because AnswerBatch evaluates slice groups
  # on the shared pool (group engines must never share oracle sessions);
  # bank_store_test adds the cross-batch bank store feeding those groups.
  # serve_test joins because the serving layer's gate/session-swap paths
  # are exercised from multiple threads (RequestGate waiters, hot reload).
  # tmpl_test joins because template answering fans every substitution out
  # over the batch pool (threads {1,4} sweeps in the equivalence matrix).
  CTEST_FILTER='thread_pool_test|oracle_session_test|fixpoint_test|egcwa_ecwa_test|ddr_pws_test|batch_test|bank_store_test|serve_test|tmpl_test' \
  run_leg "tsan (concurrency tests)" build-check-tsan \
          -DCMAKE_BUILD_TYPE=RelWithDebInfo -DDD_SANITIZE=thread \
          -DDD_BUILD_BENCHMARKS=OFF
fi

echo "===== clang-tidy ====="
if command -v clang-tidy >/dev/null 2>&1; then
  if ! cmake --build build-check-release --target lint; then
    echo "clang-tidy: FAILED"; FAILED=1
  else
    echo "clang-tidy: OK"
  fi
else
  echo "clang-tidy: not installed; skipping"
fi

echo "===== clang-format ====="
if command -v clang-format >/dev/null 2>&1; then
  if ! find src tests examples bench -name '*.cc' -o -name '*.h' -o -name '*.cpp' \
       | xargs clang-format --dry-run -Werror; then
    echo "clang-format: FAILED"; FAILED=1
  else
    echo "clang-format: OK"
  fi
else
  echo "clang-format: not installed; skipping"
fi

echo "===== ddlint over examples/programs (golden + SARIF) ====="
LINT_BIN=build-check-release/examples/ddlint
if [ -x "$LINT_BIN" ]; then
  LINT_TMP="$(mktemp -d)"
  "$LINT_BIN" --diagnostics-only --sarif="$LINT_TMP/lint.sarif" \
    examples/programs/*.ddb >"$LINT_TMP/lint.out" 2>&1
  rc=$?
  if [ "$rc" -ge 2 ]; then
    echo "ddlint: out of budget / unexpected failure (exit $rc)"; FAILED=1
  elif ! diff -u examples/programs/lint_golden.txt "$LINT_TMP/lint.out"; then
    echo "ddlint: diagnostics drifted from the committed golden file"
    echo "  (regenerate: ddlint --diagnostics-only examples/programs/*.ddb > examples/programs/lint_golden.txt)"
    FAILED=1
  elif command -v python3 >/dev/null 2>&1 && \
       ! python3 -m json.tool "$LINT_TMP/lint.sarif" >/dev/null 2>&1; then
    echo "ddlint: SARIF export does not parse as JSON"; FAILED=1
  else
    echo "ddlint: OK (diagnostics match golden, SARIF validates; exit $rc)"
  fi
  rm -rf "$LINT_TMP"
else
  echo "ddlint: binary not built; skipping"
fi

echo "===== observability export (trace-json / metrics) ====="
QUERY_BIN=build-check-release/examples/ddquery
if [ -x "$QUERY_BIN" ] && command -v python3 >/dev/null 2>&1; then
  OBS_TMP="$(mktemp -d)"
  printf 'infer gcwa a | b\nexists egcwa\nstats\nquit\n' | \
    "$QUERY_BIN" --trace-json="$OBS_TMP/trace.json" \
    examples/programs/example31.ddb >/dev/null 2>&1
  rc=$?
  if [ "$rc" -ne 0 ]; then
    echo "obs: ddquery --trace-json exited $rc"; FAILED=1
  elif ! python3 -m json.tool "$OBS_TMP/trace.json" >/dev/null 2>&1; then
    echo "obs: trace JSON does not parse"; FAILED=1
  elif ! printf 'infer gcwa a | b\nquit\n' | \
        "$QUERY_BIN" --metrics examples/programs/example31.ddb 2>/dev/null \
        | sed -n '/^{"counters"/p' | python3 -m json.tool >/dev/null 2>&1; then
    echo "obs: --metrics JSON does not parse"; FAILED=1
  else
    echo "obs: OK (trace + metrics JSON validate)"
  fi
  rm -rf "$OBS_TMP"
else
  echo "obs: ddquery or python3 unavailable; skipping"
fi

echo "===== ddquery --certify over examples/programs ====="
if [ -x "$QUERY_BIN" ]; then
  CERT_TMP="$(mktemp -d)"
  CERT_FAILED=0
  for prog in examples/programs/*.ddb; do
    case "$(basename "$prog")" in
      positive.ddb)
        q='lit gcwa goal\nlit gcwa not detour\ninfer egcwa detour | shortcut\nlit dsm hub\n' ;;
      example31.ddb)
        q='lit gcwa a\nlit pws not c\nlit ddr not c\n' ;;
      head_cycle.ddb)
        q='lit gcwa d\nlit dsm not e\n' ;;
      horn.ddb)
        q='lit gcwa reach_c\nlit ccwa not blocked\n' ;;
      lint_bait.ddb)
        q='infer gcwa e | f\nlit egcwa not g\n' ;;
      stratified.ddb)
        q='lit perf awake\nlit icwa not broken\n' ;;
      *)  # new example programs still get a model-existence sweep
        q='exists gcwa\nexists dsm\n' ;;
    esac
    if ! printf "${q}stats\nquit\n" | "$QUERY_BIN" --certify "$prog" \
         >"$CERT_TMP/out.txt" 2>&1; then
      echo "certify: $prog FAILED (certificate rejected or query error)"
      cat "$CERT_TMP/out.txt"
      CERT_FAILED=1
    fi
    cat "$CERT_TMP/out.txt" >>"$CERT_TMP/all.txt"
  done
  # The sweep must actually exercise the certificate layer: at least one
  # program (positive.ddb's slice/module cones) emits witnesses.
  if ! grep -Eq 'certificates: emitted=[1-9]' "$CERT_TMP/all.txt"; then
    echo "certify: sweep emitted no certificates (fast paths disabled?)"
    CERT_FAILED=1
  fi
  if [ "$CERT_FAILED" -ne 0 ]; then
    FAILED=1
  else
    echo "certify: OK (all certificates accepted across $(ls examples/programs/*.ddb | wc -l) programs)"
  fi
  rm -rf "$CERT_TMP"
else
  echo "certify: ddquery not built; skipping"
fi

echo "===== ddquery --batch A/B over examples/programs ====="
if [ -x "$QUERY_BIN" ]; then
  BATCH_TMP="$(mktemp -d)"
  BATCH_FAILED=0
  BATCH_COUNT=0
  for q in examples/programs/*.queries; do
    [ -f "$q" ] || continue
    # Propositional programs are .ddb; first-order (grounder-ingested)
    # programs are .fodb — ddquery auto-detects the syntax either way.
    prog="${q%.queries}.ddb"
    [ -f "$prog" ] || prog="${q%.queries}.fodb"
    if [ ! -f "$prog" ]; then
      echo "batch: $q has no matching .ddb/.fodb"; BATCH_FAILED=1; continue
    fi
    BATCH_COUNT=$((BATCH_COUNT + 1))
    # Batch leg: one --batch run (4 workers; answers must not depend on
    # thread count). A nonzero exit is a failure — the committed .queries
    # files contain no out-of-budget or malformed lines.
    if ! "$QUERY_BIN" --batch="$q" --threads=4 "$prog" \
         >"$BATCH_TMP/batch.out" 2>"$BATCH_TMP/batch.err"; then
      echo "batch: $prog --batch exited nonzero"
      cat "$BATCH_TMP/batch.err"; BATCH_FAILED=1; continue
    fi
    # Sequential leg: the same file replayed line-by-line through the
    # interactive loop (same grammar; 'loaded ...' banner stripped).
    if ! "$QUERY_BIN" "$prog" <"$q" >"$BATCH_TMP/seq.raw" 2>/dev/null; then
      echo "batch: interactive replay of $q failed"; BATCH_FAILED=1; continue
    fi
    grep -v '^loaded ' "$BATCH_TMP/seq.raw" >"$BATCH_TMP/seq.out"
    if ! diff -u "$BATCH_TMP/seq.out" "$BATCH_TMP/batch.out"; then
      echo "batch: $prog batch/interactive answers differ"; BATCH_FAILED=1
    fi
  done
  if [ "$BATCH_COUNT" -eq 0 ]; then
    echo "batch: no .queries files found"; FAILED=1
  elif [ "$BATCH_FAILED" -ne 0 ]; then
    FAILED=1
  else
    echo "batch: OK (batch == interactive on $BATCH_COUNT programs)"
  fi
  rm -rf "$BATCH_TMP"
else
  echo "batch: ddquery not built; skipping"
fi

echo "===== template A/B (batched vs --naive-templates) ====="
if [ -x "$QUERY_BIN" ]; then
  TPL_TMP="$(mktemp -d)"
  TPL_FAILED=0
  TPL_PROG=examples/programs/coloring3.fodb
  TPL_Q=examples/programs/coloring3.queries
  # Batched default: every template's instantiations share one AnswerBatch
  # call (bank + cache). Naive flag: the sequential single-query entry
  # points. The answer blocks must be byte-identical — including the
  # candidate counts, so grounding must match too.
  if ! "$QUERY_BIN" --batch="$TPL_Q" --threads=4 "$TPL_PROG" \
       >"$TPL_TMP/batched.out" 2>"$TPL_TMP/batched.err"; then
    echo "template: batched run exited nonzero"
    cat "$TPL_TMP/batched.err"; TPL_FAILED=1
  elif ! "$QUERY_BIN" --batch="$TPL_Q" --naive-templates "$TPL_PROG" \
       >"$TPL_TMP/naive.out" 2>"$TPL_TMP/naive.err"; then
    echo "template: --naive-templates run exited nonzero"
    cat "$TPL_TMP/naive.err"; TPL_FAILED=1
  elif ! diff -u "$TPL_TMP/batched.out" "$TPL_TMP/naive.out"; then
    echo "template: batched/naive answers differ"; TPL_FAILED=1
  fi
  # Relevance-filtered grounding must keep every yes answer (candidate
  # counts legitimately shrink, so compare the answer lines only).
  if [ "$TPL_FAILED" -eq 0 ]; then
    if ! "$QUERY_BIN" --batch="$TPL_Q" --ground-relevance "$TPL_PROG" \
         >"$TPL_TMP/relevance.out" 2>&1; then
      echo "template: --ground-relevance run exited nonzero"; TPL_FAILED=1
    else
      grep -E '^(answer:|yes|no)' "$TPL_TMP/batched.out" >"$TPL_TMP/full.ans"
      grep -E '^(answer:|yes|no)' "$TPL_TMP/relevance.out" >"$TPL_TMP/rel.ans"
      if ! diff -u "$TPL_TMP/full.ans" "$TPL_TMP/rel.ans"; then
        echo "template: --ground-relevance changed the answers"; TPL_FAILED=1
      fi
    fi
  fi
  if [ "$TPL_FAILED" -ne 0 ]; then
    FAILED=1
  else
    echo "template: OK (batched == naive, relevance grounding answer-stable)"
  fi
  rm -rf "$TPL_TMP"
else
  echo "template: ddquery not built; skipping"
fi

echo "===== crash-recovery (snapshot save under kill -9) ====="
if [ -x "$QUERY_BIN" ]; then
  CR_TMP="$(mktemp -d)"
  CR_FAILED=0
  # An integrity-constraint-free program (PERF rejects ICs) with one
  # query per semantics, so recovery is proven on all eleven.
  printf 'a | b.\nc :- a.\nc :- b.\nd.\n' >"$CR_TMP/prog.ddb"
  cat >"$CR_TMP/all.queries" <<'EOF'
lit cwa d
lit gcwa c
lit egcwa d
lit ccwa not a
lit ecwa not a
lit ddr not a
lit pws not a
lit perf c
lit icwa not a
lit dsm d
lit pdsm not a
EOF
  # Reference: a cache-less cold run.
  if ! "$QUERY_BIN" --batch="$CR_TMP/all.queries" "$CR_TMP/prog.ddb" \
       >"$CR_TMP/cold.out" 2>&1; then
    echo "crash-recovery: reference cold run failed"; CR_FAILED=1
  fi
  for point in partial before-rename after-rename; do
    [ "$CR_FAILED" -ne 0 ] && break
    rm -f "$CR_TMP/cache.snap" "$CR_TMP/cache.snap.tmp"
    # Leg A: the run is killed mid-save (snapshot.cc calls _exit(137) at
    # the injected point; "partial" additionally tears the temp file).
    env DD_SNAPSHOT_CRASH_AT="$point" \
      "$QUERY_BIN" --batch="$CR_TMP/all.queries" \
      --cache-file="$CR_TMP/cache.snap" "$CR_TMP/prog.ddb" >/dev/null 2>&1
    rc=$?
    if [ "$rc" -ne 137 ]; then
      echo "crash-recovery: $point run exited $rc, expected 137"
      CR_FAILED=1; continue
    fi
    # Leg B: restart against whatever the crash left behind (torn temp
    # file, complete-but-unrenamed temp file, or a valid snapshot). The
    # answers must be byte-identical to the cold reference.
    if ! "$QUERY_BIN" --batch="$CR_TMP/all.queries" \
         --cache-file="$CR_TMP/cache.snap" "$CR_TMP/prog.ddb" \
         >"$CR_TMP/warm.out" 2>"$CR_TMP/warm.err"; then
      echo "crash-recovery: restart after $point crash exited nonzero"
      cat "$CR_TMP/warm.err"; CR_FAILED=1; continue
    fi
    if ! diff -u "$CR_TMP/cold.out" "$CR_TMP/warm.out"; then
      echo "crash-recovery: answers after $point crash differ from cold run"
      CR_FAILED=1
    fi
  done
  if [ "$CR_FAILED" -ne 0 ]; then
    FAILED=1
  else
    echo "crash-recovery: OK (partial, before-rename, after-rename; 11 semantics)"
  fi
  rm -rf "$CR_TMP"
else
  echo "crash-recovery: ddquery not built; skipping"
fi

echo "===== fault-injection + deadline soak (ASan) ====="
SOAK_BIN=build-check-asan/tests/budget_test
if [ "$FAST" -eq 0 ] && [ -x "$SOAK_BIN" ]; then
  # Inject kUnknown / budget exhaustion at a matrix of oracle-call
  # positions; the FaultSoak suite accepts reference-answer-or-Unknown
  # and fails on any crash or flipped yes/no.
  for n in 1 2 3 5 8 13; do
    for knob in DD_FAULT_UNKNOWN_AT DD_FAULT_EXHAUST_AFTER; do
      if ! env "$knob=$n" "$SOAK_BIN" --gtest_filter='FaultSoak.*' \
           --gtest_brief=1 >/dev/null 2>&1; then
        echo "soak: FAILED under $knob=$n"; FAILED=1
      fi
    done
  done
  if [ "$FAILED" -eq 0 ]; then echo "soak: OK (12 injection points)"; fi
elif [ "$FAST" -eq 1 ]; then
  echo "soak: skipped (--fast)"
else
  echo "soak: budget_test not built under ASan; skipping"
fi

echo
if [ "$FAILED" -ne 0 ]; then
  echo "check.sh: FAILURES present"; exit 1
fi
echo "check.sh: all legs passed"
