#!/usr/bin/env bash
# Builds everything and regenerates the full experiment record:
#   test_output.txt   - the complete test-suite run
#   bench_output.txt  - every table/figure harness + microbenchmarks
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "########## $(basename "$b") ##########" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done
echo "wrote test_output.txt and bench_output.txt"
