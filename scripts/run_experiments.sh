#!/usr/bin/env bash
# Builds everything and regenerates the full experiment record:
#   test_output.txt   - the complete test-suite run
#   bench_output.txt  - every table/figure harness + microbenchmarks
#   results/          - the machine-readable BENCH_*.json files the
#                       harnesses emit (bench/bench_util.h writer)
#
# Harness flags are forwarded: run_experiments.sh --seed=7 --threads=4
# passes the root seed / worker count to every harness; --no-sessions
# regenerates the fresh-solver A/B baseline; --timeout-ms=N arms the
# per-instance watchdog (rows cut off by it carry "timeout": true in the
# BENCH_*.json output instead of hanging the sweep — docs/ROBUSTNESS.md).
set -u
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p results
rm -f results/BENCH_*.json

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "########## $(basename "$b") ##########" | tee -a bench_output.txt
  (cd results && "../$b" "$@" 2>&1) | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done
echo "wrote test_output.txt, bench_output.txt and $(ls results/BENCH_*.json 2>/dev/null | wc -l) BENCH_*.json files in results/"
