#!/usr/bin/env bash
# Builds everything and regenerates the full experiment record:
#   test_output.txt   - the complete test-suite run
#   bench_output.txt  - every table/figure harness + microbenchmarks
#   results/          - the machine-readable BENCH_*.json files the
#                       harnesses emit (bench/bench_util.h writer)
#
# Harness flags are forwarded: run_experiments.sh --seed=7 --threads=4
# passes the root seed / worker count to every harness; --no-sessions
# regenerates the fresh-solver A/B baseline; --timeout-ms=N arms the
# per-instance watchdog (rows cut off by it carry "timeout": true in the
# BENCH_*.json output instead of hanging the sweep — docs/ROBUSTNESS.md).
#
# --small runs the quick preset instead: skips the test suite and runs
# only the oracle-call harness (the one whose rows carry full counter
# snapshots, docs/OBSERVABILITY.md), the batch amortization harness
# (whose audit doubles as an end-to-end soundness check,
# docs/BATCHING.md), the serving-layer harness (warm vs cold vs
# retry-ladder latency, docs/SERVING.md) and the template harness
# (batched vs per-instantiation answering, docs/TEMPLATES.md) under a
# 10 s watchdog. The resulting results/BENCH_oracle_calls.json,
# results/BENCH_batch.json, results/BENCH_serve.json and
# results/BENCH_template.json are small enough to commit as the
# checked-in reference exports.
set -u
cd "$(dirname "$0")/.."

SMALL=0
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --small) SMALL=1 ;;
    *) ARGS+=("$arg") ;;
  esac
done
set -- ${ARGS+"${ARGS[@]}"}

cmake -B build -G Ninja
cmake --build build

if [ "$SMALL" -eq 1 ]; then
  mkdir -p results
  rm -f results/BENCH_oracle_calls.json results/BENCH_batch.json \
        results/BENCH_serve.json results/BENCH_template.json
  echo "########## bench_oracle_calls (--small preset) ##########"
  (cd results && ../build/bench/bench_oracle_calls --timeout-ms=10000 "$@")
  echo "########## bench_batch (--small preset) ##########"
  (cd results && ../build/bench/bench_batch --timeout-ms=10000 "$@")
  echo "########## bench_serve (--small preset) ##########"
  (cd results && ../build/bench/bench_serve --timeout-ms=10000 "$@")
  echo "########## bench_template (--small preset) ##########"
  (cd results && ../build/bench/bench_template --timeout-ms=10000 "$@")
  echo "wrote results/BENCH_oracle_calls.json, results/BENCH_batch.json, results/BENCH_serve.json and results/BENCH_template.json"
  exit 0
fi

ctest --test-dir build 2>&1 | tee test_output.txt

mkdir -p results
rm -f results/BENCH_*.json

: > bench_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "########## $(basename "$b") ##########" | tee -a bench_output.txt
  (cd results && "../$b" "$@" 2>&1) | tee -a bench_output.txt
  echo | tee -a bench_output.txt
done
echo "wrote test_output.txt, bench_output.txt and $(ls results/BENCH_*.json 2>/dev/null | wc -l) BENCH_*.json files in results/"
