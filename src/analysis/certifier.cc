#include "analysis/certifier.h"

#include <algorithm>

#include "util/string_util.h"

namespace dd {
namespace analysis {

namespace {

Status Fail(CertificateKind k, const std::string& why) {
  return Status::InvalidArgument(
      StrFormat("certificate rejected (%s): %s", CertificateKindName(k),
                why.c_str()));
}

// kHcfMinimalModel: replay the founded order. A valid order proves subset-
// minimality of `model` among classical models of db (see certifier.h).
Status VerifyMinimalModel(const Certificate& c) {
  const CertificateKind k = c.kind;
  if (c.model.num_vars() != c.db.num_vars()) {
    return Fail(k, "model arity differs from database");
  }
  if (!c.db.Satisfies(c.model)) return Fail(k, "claimed model is no model");
  if (c.founded_order.size() != c.support_clauses.size()) {
    return Fail(k, "order and support-clause lists differ in length");
  }
  if (static_cast<int>(c.founded_order.size()) != c.model.TrueCount()) {
    return Fail(k, "founded order does not cover the model");
  }
  Interpretation derived(c.db.num_vars());
  for (size_t i = 0; i < c.founded_order.size(); ++i) {
    const Var a = c.founded_order[i];
    if (a < 0 || a >= c.db.num_vars()) return Fail(k, "atom out of range");
    if (!c.model.Contains(a)) return Fail(k, "founded atom not in model");
    if (derived.Contains(a)) return Fail(k, "atom founded twice");
    const int ci = c.support_clauses[i];
    if (ci < 0 || ci >= c.db.num_clauses()) {
      return Fail(k, "support clause index out of range");
    }
    const Clause& cl = c.db.clause(ci);
    // The support condition: a is the ONLY head atom true in M, every
    // positive body atom was founded strictly earlier, and the negative
    // body is false in M. Any model M' ⊊ M must then re-derive a.
    bool a_in_heads = false;
    for (Var h : cl.heads()) {
      if (h == a) {
        a_in_heads = true;
      } else if (c.model.Contains(h)) {
        return Fail(k, "support clause has a second true head atom");
      }
    }
    if (!a_in_heads) return Fail(k, "support clause does not head the atom");
    for (Var b : cl.pos_body()) {
      if (!derived.Contains(b)) {
        return Fail(k, "positive body atom not founded earlier");
      }
    }
    for (Var nb : cl.neg_body()) {
      if (c.model.Contains(nb)) {
        return Fail(k, "negative body atom true in the model");
      }
    }
    derived.Insert(a);
  }
  return Status::OK();
}

Status VerifyNonMinimalWitness(const Certificate& c) {
  const CertificateKind k = c.kind;
  if (c.model.num_vars() != c.db.num_vars() ||
      c.smaller.num_vars() != c.db.num_vars()) {
    return Fail(k, "interpretation arity differs from database");
  }
  if (!c.db.Satisfies(c.model)) return Fail(k, "claimed model is no model");
  if (!c.smaller.StrictSubsetOf(c.model)) {
    return Fail(k, "witness is not a strict subset of the model");
  }
  if (!c.db.Satisfies(c.smaller)) return Fail(k, "witness is no model");
  return Status::OK();
}

Status VerifySliceRelevance(const Certificate& c) {
  const CertificateKind k = c.kind;
  if (c.relevant.num_vars() != c.db.num_vars()) {
    return Fail(k, "relevant-set arity differs from database");
  }
  for (Var r : c.roots) {
    if (r < 0 || r >= c.db.num_vars()) return Fail(k, "root out of range");
    if (!c.relevant.Contains(r)) return Fail(k, "root outside the cone");
  }
  std::vector<bool> in_slice(static_cast<size_t>(c.db.num_clauses()), false);
  for (int ci : c.slice_clauses) {
    if (ci < 0 || ci >= c.db.num_clauses()) {
      return Fail(k, "slice clause index out of range");
    }
    if (in_slice[static_cast<size_t>(ci)]) {
      return Fail(k, "duplicate slice clause index");
    }
    in_slice[static_cast<size_t>(ci)] = true;
  }
  for (int ci = 0; ci < c.db.num_clauses(); ++ci) {
    const Clause& cl = c.db.clause(ci);
    // The soundness theorem is stated for positive databases only.
    if (!cl.neg_body().empty()) return Fail(k, "database has negation");
    if (cl.is_integrity()) return Fail(k, "database has integrity clauses");
    bool head_in_cone = false;
    for (Var h : cl.heads()) {
      if (c.relevant.Contains(h)) head_in_cone = true;
    }
    if (head_in_cone != in_slice[static_cast<size_t>(ci)]) {
      return Fail(k, head_in_cone
                         ? "clause heading into the cone missing from slice"
                         : "slice clause has no head in the cone");
    }
    if (!head_in_cone) continue;
    // Head-closure: the cone absorbs every atom of a clause it touches.
    for (Var h : cl.heads()) {
      if (!c.relevant.Contains(h)) return Fail(k, "cone not head-closed");
    }
    for (Var b : cl.pos_body()) {
      if (!c.relevant.Contains(b)) return Fail(k, "cone not body-closed");
    }
  }
  return Status::OK();
}

}  // namespace

const char* CertificateKindName(CertificateKind k) {
  switch (k) {
    case CertificateKind::kHcfMinimalModel:
      return "hcf-minimal-model";
    case CertificateKind::kNonMinimalWitness:
      return "non-minimal-witness";
    case CertificateKind::kSliceRelevance:
      return "slice-relevance";
  }
  return "?";
}

Status VerifyCertificate(const Certificate& c) {
  switch (c.kind) {
    case CertificateKind::kHcfMinimalModel:
      return VerifyMinimalModel(c);
    case CertificateKind::kNonMinimalWitness:
      return VerifyNonMinimalWitness(c);
    case CertificateKind::kSliceRelevance:
      return VerifySliceRelevance(c);
  }
  return Status::Internal("unknown certificate kind");
}

std::string CertificationStats::ToString() const {
  return StrFormat("certificates: emitted=%lld, accepted=%lld, rejected=%lld",
                   static_cast<long long>(emitted),
                   static_cast<long long>(accepted),
                   static_cast<long long>(rejected));
}

}  // namespace analysis
}  // namespace dd
