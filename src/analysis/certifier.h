// Independent certificate checking for downgraded answers.
//
// Every structural fast path (the HCF polynomial minimality check, the
// relevance slicer) can emit a machine-checkable witness for the claim it
// shortcut. This module re-verifies those witnesses from first principles:
// it depends only on logic/ (model checks, clause traversal) and never on
// the engines it audits, so an engine bug cannot also hide the evidence.
//
// The three certificate kinds and what acceptance proves:
//
//   kHcfMinimalModel   M is a model and `founded_order` enumerates exactly
//                      its true atoms, each justified by a clause whose
//                      only true head atom is the derived atom and whose
//                      positive body lies strictly earlier in the order
//                      (negative body false in M). Such an order proves M
//                      is subset-minimal among classical models — for ANY
//                      clause set, head-cycle-free or not; HCF is only what
//                      makes the engine-side check complete.
//
//   kNonMinimalWitness `smaller` is a model of the database and a strict
//                      subset of M, refuting M's minimality outright.
//
//   kSliceRelevance    the database is positive, `relevant` contains the
//                      query roots, and `slice_clauses` is exactly the set
//                      of clauses with a head in `relevant`, each fully
//                      contained in `relevant` (head-closed cone). This is
//                      the premise of the slicing soundness theorem
//                      (docs/ANALYSIS.md): minimal models restricted to the
//                      cone coincide with the slice's minimal models.
#ifndef DD_ANALYSIS_CERTIFIER_H_
#define DD_ANALYSIS_CERTIFIER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "logic/database.h"
#include "logic/interpretation.h"
#include "logic/types.h"
#include "util/status.h"

namespace dd {
namespace analysis {

/// What a certificate claims (see file comment).
enum class CertificateKind {
  kHcfMinimalModel,
  kNonMinimalWitness,
  kSliceRelevance,
};

const char* CertificateKindName(CertificateKind k);

/// A self-contained witness. Each certificate carries its own copy of the
/// database the claim is about: the emitting engines routinely run on
/// derived databases (GL reducts, stratum slices, positivizations), so
/// verifying against "the" query database would check the wrong object.
struct Certificate {
  CertificateKind kind = CertificateKind::kHcfMinimalModel;
  Database db;

  // kHcfMinimalModel / kNonMinimalWitness: the model whose (non-)minimality
  // is claimed.
  Interpretation model;

  // kHcfMinimalModel: derivation order of model's true atoms and, parallel
  // to it, the supporting clause index for each derived atom.
  std::vector<Var> founded_order;
  std::vector<int> support_clauses;

  // kNonMinimalWitness: a model strictly below `model`.
  Interpretation smaller;

  // kSliceRelevance: query atoms, their cone of influence, and the clause
  // indices of the slice.
  std::vector<Var> roots;
  Interpretation relevant;
  std::vector<int> slice_clauses;
};

/// Re-derives the certificate's claim from the database alone.
/// OK = accepted; any failure names the first broken obligation.
Status VerifyCertificate(const Certificate& c);

/// Acceptance accounting for --certify runs (flat-zero `rejected` is part
/// of the bench_dispatch acceptance bar).
struct CertificationStats {
  int64_t emitted = 0;
  int64_t accepted = 0;
  int64_t rejected = 0;

  void Add(const CertificationStats& o) {
    emitted += o.emitted;
    accepted += o.accepted;
    rejected += o.rejected;
  }
  /// "certificates: emitted=…, accepted=…, rejected=…".
  std::string ToString() const;
};

}  // namespace analysis
}  // namespace dd

#endif  // DD_ANALYSIS_CERTIFIER_H_
