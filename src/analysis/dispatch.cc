#include "analysis/dispatch.h"

#include "fixpoint/ddr_fixpoint.h"
#include "util/string_util.h"

namespace dd {
namespace analysis {

namespace {

/// Do the semantics' own preconditions hold, i.e. would the generic engine
/// answer (rather than FailedPrecondition)? Fast paths must never mask an
/// error the generic path would raise.
bool GenericWouldAnswer(const ProgramProperties& p, SemanticsKind sem) {
  switch (sem) {
    case SemanticsKind::kDdr:
    case SemanticsKind::kPws:
      return p.is_deductive;
    case SemanticsKind::kPerf:
      return !p.has_integrity;
    case SemanticsKind::kIcwa:
      return p.is_stratified;
    default:
      return true;
  }
}

/// Semantics whose intended models are classical models of the database
/// (so an analyzer-proven fact is true in all of them, and vacuously
/// inferred when the intended-model set is empty). PDSM's three-valued
/// models are excluded.
bool IntendedModelsAreClassical(SemanticsKind sem) {
  switch (sem) {
    case SemanticsKind::kCwa:
    case SemanticsKind::kGcwa:
    case SemanticsKind::kEgcwa:
    case SemanticsKind::kCcwa:
    case SemanticsKind::kEcwa:
    case SemanticsKind::kDdr:
    case SemanticsKind::kPws:
    case SemanticsKind::kPerf:
    case SemanticsKind::kIcwa:
    case SemanticsKind::kDsm:
      return true;
    case SemanticsKind::kPdsm:
      return false;
  }
  return false;
}

/// Semantics that collapse to the single least model on Horn databases
/// (docs/ANALYSIS.md gives the per-semantics argument): the intended-model
/// set is {LM} when LM satisfies the integrity clauses and ∅ otherwise.
bool HornCollapses(SemanticsKind sem) {
  switch (sem) {
    case SemanticsKind::kCwa:   // DB |= x iff x ∈ LM, so CWA(DB) = {LM}
    case SemanticsKind::kGcwa:  // MM = {LM}
    case SemanticsKind::kEgcwa: // MM = {LM}
    case SemanticsKind::kCcwa:  // = GCWA under the default partition
    case SemanticsKind::kEcwa:  // = EGCWA under the default partition
    case SemanticsKind::kDdr:   // DB ∪ {¬x : x ∉ T↑ω} has {LM} or ∅
    case SemanticsKind::kPws:   // single split: PM ⊆ {LM}
    case SemanticsKind::kPerf:  // = MM on positive DBs (Horn ∧ ¬integrity)
    case SemanticsKind::kIcwa:  // single stratum, = EGCWA
    case SemanticsKind::kDsm:   // GL reduct is identity; stable = MM
      return true;
    case SemanticsKind::kPdsm:
      return false;
  }
  return false;
}

/// HasModel answered O(1) on positive DBs (the Table 1 column): minimal
/// models exist iff the DB is satisfiable, and positive DBs always are.
/// CWA is deliberately absent — CWA(DB) can be inconsistent on positive
/// disjunctive DBs (the paper's introductory example "a | b.").
bool PositiveAlwaysHasModel(SemanticsKind sem) {
  switch (sem) {
    case SemanticsKind::kGcwa:
    case SemanticsKind::kEgcwa:
    case SemanticsKind::kCcwa:
    case SemanticsKind::kEcwa:
    case SemanticsKind::kDdr:
    case SemanticsKind::kPws:
    case SemanticsKind::kPerf:
    case SemanticsKind::kIcwa:
    case SemanticsKind::kDsm:
      return true;
    case SemanticsKind::kCwa:
    case SemanticsKind::kPdsm:
      return false;
  }
  return false;
}

}  // namespace

const char* EnginePathName(EnginePath p) {
  switch (p) {
    case EnginePath::kGeneric:
      return "generic";
    case EnginePath::kFixpointLiteral:
      return "fixpoint-literal";
    case EnginePath::kHornLeastModel:
      return "horn-least-model";
    case EnginePath::kCertainFact:
      return "certain-fact";
    case EnginePath::kConstAnswer:
      return "const-answer";
    case EnginePath::kSliceLiteral:
      return "slice-literal";
    case EnginePath::kModuleFormula:
      return "module-formula";
    case EnginePath::kHcfUnfounded:
      return "hcf-unfounded";
  }
  return "?";
}

void DispatchStats::Record(EnginePath p) {
  switch (p) {
    case EnginePath::kGeneric:
      ++generic;
      break;
    case EnginePath::kFixpointLiteral:
      ++fixpoint_literal;
      break;
    case EnginePath::kHornLeastModel:
      ++horn_least_model;
      break;
    case EnginePath::kCertainFact:
      ++certain_fact;
      break;
    case EnginePath::kConstAnswer:
      ++const_answer;
      break;
    case EnginePath::kSliceLiteral:
      ++slice_literal;
      break;
    case EnginePath::kModuleFormula:
      ++module_formula;
      break;
    case EnginePath::kHcfUnfounded:
      ++hcf_unfounded;
      break;
  }
}

void DispatchStats::Add(const DispatchStats& o) {
  generic += o.generic;
  fixpoint_literal += o.fixpoint_literal;
  horn_least_model += o.horn_least_model;
  certain_fact += o.certain_fact;
  const_answer += o.const_answer;
  slice_literal += o.slice_literal;
  module_formula += o.module_formula;
  hcf_unfounded += o.hcf_unfounded;
}

std::string DispatchStats::ToString() const {
  std::string out = StrFormat(
      "dispatch: generic=%lld, fixpoint=%lld, horn=%lld, certain=%lld, "
      "const=%lld",
      static_cast<long long>(generic),
      static_cast<long long>(fixpoint_literal),
      static_cast<long long>(horn_least_model),
      static_cast<long long>(certain_fact),
      static_cast<long long>(const_answer));
  if (slice_literal != 0 || module_formula != 0 || hcf_unfounded != 0) {
    out += StrFormat(", slice=%lld, module=%lld, hcf=%lld",
                     static_cast<long long>(slice_literal),
                     static_cast<long long>(module_formula),
                     static_cast<long long>(hcf_unfounded));
  }
  return out;
}

bool SliceIsSound(const ProgramProperties& props, SemanticsKind sem,
                  bool custom_partition) {
  if (!props.is_positive) return false;
  if (custom_partition &&
      (sem == SemanticsKind::kCcwa || sem == SemanticsKind::kEcwa)) {
    return false;
  }
  switch (sem) {
    case SemanticsKind::kGcwa:
    case SemanticsKind::kEgcwa:
    case SemanticsKind::kCcwa:  // = GCWA under the default partition
    case SemanticsKind::kEcwa:  // = EGCWA under the default partition
    case SemanticsKind::kDdr:   // fixpoint restricts to the cone
    case SemanticsKind::kPws:   // possible models restrict to the cone
    case SemanticsKind::kPerf:  // = MM on positive DBs
    case SemanticsKind::kIcwa:  // = EGCWA on positive DBs
    case SemanticsKind::kDsm:   // reduct is identity; stable = MM
      return true;
    case SemanticsKind::kCwa:   // inconsistency is a global property
    case SemanticsKind::kPdsm:  // three-valued models
      return false;
  }
  return false;
}

bool HcfFastPathApplies(const ProgramProperties& props, SemanticsKind sem,
                        bool custom_partition) {
  // Horn rows have strictly cheaper paths; without disjunction the HCF
  // check degenerates and the generic machinery is already fine.
  if (!props.is_deductive || !props.is_head_cycle_free ||
      !props.has_disjunction) {
    return false;
  }
  if (custom_partition &&
      (sem == SemanticsKind::kCcwa || sem == SemanticsKind::kEcwa)) {
    return false;
  }
  switch (sem) {
    case SemanticsKind::kGcwa:
    case SemanticsKind::kEgcwa:
    case SemanticsKind::kCcwa:
    case SemanticsKind::kEcwa:
    case SemanticsKind::kPerf:
    case SemanticsKind::kIcwa:
    case SemanticsKind::kDsm:
      return true;
    case SemanticsKind::kCwa:   // provability-based, no minimality oracle
    case SemanticsKind::kDdr:   // fixpoint-based
    case SemanticsKind::kPws:   // possible-model split, no minimality oracle
    case SemanticsKind::kPdsm:  // three-valued; bit-level engines
      return false;
  }
  return false;
}

EnginePath SelectPath(const ProgramProperties& props, SemanticsKind sem,
                      QueryKind query, Lit lit, bool custom_partition,
                      const QueryShape* shape) {
  // A caller-supplied CCWA/ECWA partition changes the minimization
  // preorder; the fast-path arguments assume minimize-everything.
  if (custom_partition &&
      (sem == SemanticsKind::kCcwa || sem == SemanticsKind::kEcwa)) {
    return EnginePath::kGeneric;
  }
  // Never shadow a FailedPrecondition the generic engine would raise.
  if (!GenericWouldAnswer(props, sem)) return EnginePath::kGeneric;

  const bool horn_ok = props.is_horn && HornCollapses(sem);
  const bool slice_ok = SliceIsSound(props, sem, custom_partition);
  const bool hcf_ok = HcfFastPathApplies(props, sem, custom_partition);
  switch (query) {
    case QueryKind::kLiteral:
      if (horn_ok) return EnginePath::kHornLeastModel;
      if (lit.valid() && lit.negative() && props.is_positive &&
          (sem == SemanticsKind::kDdr || sem == SemanticsKind::kPws)) {
        return EnginePath::kFixpointLiteral;
      }
      if (lit.valid() && lit.positive() &&
          props.certain_atoms.Contains(lit.var()) &&
          IntendedModelsAreClassical(sem)) {
        return EnginePath::kCertainFact;
      }
      // Structural paths: prefer the (strictly smaller) cone slice; fall
      // back to the polynomial minimality oracle on the full database.
      if (slice_ok && shape != nullptr && shape->proper_slice) {
        return EnginePath::kSliceLiteral;
      }
      if (hcf_ok) return EnginePath::kHcfUnfounded;
      return EnginePath::kGeneric;
    case QueryKind::kFormula:
      if (horn_ok) return EnginePath::kHornLeastModel;
      if (slice_ok && shape != nullptr && shape->proper_module) {
        return EnginePath::kModuleFormula;
      }
      if (hcf_ok) return EnginePath::kHcfUnfounded;
      return EnginePath::kGeneric;
    case QueryKind::kHasModel:
      if (props.is_positive && PositiveAlwaysHasModel(sem)) {
        return EnginePath::kConstAnswer;
      }
      if (horn_ok) return EnginePath::kHornLeastModel;
      return EnginePath::kGeneric;
  }
  return EnginePath::kGeneric;
}

FastPathEngine::FastPathEngine(Database db) : db_(std::move(db)) {}

void FastPathEngine::EnsureLeastModel() {
  if (least_model_.has_value()) return;
  Interpretation lm = DefiniteLeastModel(db_);
  horn_consistent_ = true;
  for (const Clause& c : db_.clauses()) {
    if (c.is_integrity() && !c.SatisfiedBy(lm)) {
      horn_consistent_ = false;
      break;
    }
  }
  least_model_ = std::move(lm);
}

void FastPathEngine::EnsureFixpoint() {
  if (fixpoint_atoms_.has_value()) return;
  // On the positive DBs this path is gated to, DerivableAtoms never fails.
  Result<Interpretation> fix = DerivableAtoms(db_);
  DD_CHECK(fix.ok());
  fixpoint_atoms_ = std::move(fix).value();
}

Result<bool> FastPathEngine::InfersLiteral(EnginePath path, Lit l) {
  switch (path) {
    case EnginePath::kCertainFact:
      return true;
    case EnginePath::kFixpointLiteral:
      EnsureFixpoint();
      // DDR/PWS |= ¬x on positive DBs iff x is outside T_DB↑ω (Chan).
      return !fixpoint_atoms_->Contains(l.var());
    case EnginePath::kHornLeastModel:
      EnsureLeastModel();
      // Intended models = {LM} when consistent, ∅ (vacuous truth) else.
      if (!horn_consistent_) return true;
      return least_model_->Satisfies(l);
    default:
      return Status::Internal("literal query routed to unsupported path");
  }
}

Result<bool> FastPathEngine::InfersFormula(EnginePath path,
                                           const Formula& f) {
  if (path != EnginePath::kHornLeastModel) {
    return Status::Internal("formula query routed to unsupported path");
  }
  EnsureLeastModel();
  if (!horn_consistent_) return true;
  return f->Eval(*least_model_);
}

Result<bool> FastPathEngine::HasModel(EnginePath path) {
  switch (path) {
    case EnginePath::kConstAnswer:
      return true;  // Table 1's O(1) model-existence column
    case EnginePath::kHornLeastModel:
      EnsureLeastModel();
      return horn_consistent_;
    default:
      return Status::Internal("existence query routed to unsupported path");
  }
}

}  // namespace analysis
}  // namespace dd
