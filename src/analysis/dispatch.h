// Property-driven engine dispatch: the analyzer's payoff.
//
// SelectPath is a pure dispatch table from (ProgramProperties, semantics,
// query) to the cheapest engine that provably returns the same answer as
// the generic machinery; FastPathEngine executes the non-generic paths
// using cached polynomial-time artifacts (the definite least model, the
// T_DB↑ω fixpoint atoms). The table's soundness argument per entry lives
// in docs/ANALYSIS.md, keyed to the paper's Tables 1 and 2.
//
// Every routing decision is recorded in DispatchStats; the Reasoner
// reports them next to the SAT-oracle counters so a downgrade is always
// observable.
#ifndef DD_ANALYSIS_DISPATCH_H_
#define DD_ANALYSIS_DISPATCH_H_

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/program_properties.h"
#include "logic/formula.h"
#include "semantics/semantics.h"

namespace dd {
namespace analysis {

/// Which engine serves a query.
enum class EnginePath {
  kGeneric,          ///< the semantics' full (oracle-backed) machinery
  kFixpointLiteral,  ///< DDR/PWS ¬x on positive DBs: T_DB↑ω membership (P)
  kHornLeastModel,   ///< Horn DBs: evaluate on the definite least model (P)
  kCertainFact,      ///< literal proven by the analyzer's unit closure (P)
  kConstAnswer,      ///< read off the properties (e.g. HasModel, Table 1)
  kSliceLiteral,     ///< literal answered on its cone-of-influence slice
  kModuleFormula,    ///< formula answered on the union of its modules
  kHcfUnfounded,     ///< generic engine with the polynomial HCF minimality
                     ///< check in place of the coNP oracle (minimal/hcf.h)
};

const char* EnginePathName(EnginePath p);

/// Counters recording every analyzer-driven downgrade (and the generic
/// fallthroughs). Aggregated by the Reasoner next to MinimalStats.
struct DispatchStats {
  int64_t generic = 0;
  int64_t fixpoint_literal = 0;
  int64_t horn_least_model = 0;
  int64_t certain_fact = 0;
  int64_t const_answer = 0;
  int64_t slice_literal = 0;
  int64_t module_formula = 0;
  int64_t hcf_unfounded = 0;

  void Record(EnginePath p);
  void Add(const DispatchStats& o);
  /// Queries answered without the (full-database) generic engine.
  int64_t Downgrades() const {
    return fixpoint_literal + horn_least_model + certain_fact + const_answer +
           slice_literal + module_formula + hcf_unfounded;
  }
  /// "dispatch: generic=…, fixpoint=…, horn=…, certain=…, const=…"; the
  /// slice/module/hcf columns append only when nonzero, keeping historical
  /// output stable for programs that never hit the structural paths.
  std::string ToString() const;
};

/// The query classes the dispatch table distinguishes.
enum class QueryKind { kLiteral, kFormula, kHasModel };

/// Query-specific structure the Reasoner computed with analysis/slicer.h:
/// whether the query's cone of influence (resp. module union) is a proper
/// sub-database. SelectPath treats a null shape like an improper one —
/// callers without a slicer lose only the structural paths.
struct QueryShape {
  bool proper_slice = false;
  bool proper_module = false;
};

/// Per-semantics soundness gate of the slice/module paths: the query may
/// be answered on a head-closed sub-database exactly when the database is
/// positive and the semantics' inference is determined componentwise
/// (docs/ANALYSIS.md "Slicing, modules, certificates"). CWA is excluded —
/// its inconsistency can be caused by clauses outside any cone — and so
/// are PDSM's three-valued models and custom CCWA/ECWA partitions.
bool SliceIsSound(const ProgramProperties& props, SemanticsKind sem,
                  bool custom_partition);

/// Gate of EnginePath::kHcfUnfounded: the semantics' oracle usage reduces
/// to minimize-all minimality checks that minimal/hcf.h answers in
/// polynomial time — deductive + head-cycle-free databases, minimality-
/// based semantics, and actual disjunction (Horn has cheaper rows).
bool HcfFastPathApplies(const ProgramProperties& props, SemanticsKind sem,
                        bool custom_partition);

/// Pure dispatch decision. `lit` matters only for QueryKind::kLiteral.
/// `custom_partition` must be true when a caller-supplied <P;Q;Z>
/// partition is active for CCWA/ECWA (fast paths assume the default
/// minimize-everything partition and step aside otherwise). `shape`
/// (optional) enables the query-directed structural paths.
///
/// Guarantee: any non-generic path returns exactly the answer the generic
/// engine would return, including vacuous-truth on semantics-inconsistent
/// databases; queries the generic engine would reject (FailedPrecondition)
/// are always routed generic so the error surfaces unchanged.
EnginePath SelectPath(const ProgramProperties& props, SemanticsKind sem,
                      QueryKind query, Lit lit = Lit(),
                      bool custom_partition = false,
                      const QueryShape* shape = nullptr);

/// Executes the cheap paths chosen by SelectPath. Holds (lazily built,
/// cached) polynomial-time artifacts for one database. Like the semantics
/// engines, it keeps its own copy of the database, so it stays valid when
/// the owning facade moves.
class FastPathEngine {
 public:
  explicit FastPathEngine(Database db);

  /// Answers a literal query routed to `path` (not kGeneric).
  Result<bool> InfersLiteral(EnginePath path, Lit l);
  /// Answers a formula query routed to `path` (kHornLeastModel only).
  Result<bool> InfersFormula(EnginePath path, const Formula& f);
  /// Answers a model-existence query routed to `path`.
  Result<bool> HasModel(EnginePath path);

 private:
  /// Least model of the definite fragment plus DB-consistency (Horn path).
  void EnsureLeastModel();
  /// T_DB↑ω atoms (positive-DB fixpoint path). On positive DBs this
  /// coincides with PWS's possible-atom union, so DDR and PWS share it.
  void EnsureFixpoint();

  Database db_;
  std::optional<Interpretation> least_model_;
  bool horn_consistent_ = false;
  std::optional<Interpretation> fixpoint_atoms_;
};

}  // namespace analysis
}  // namespace dd

#endif  // DD_ANALYSIS_DISPATCH_H_
