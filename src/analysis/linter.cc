#include "analysis/linter.h"

#include <algorithm>
#include <set>

#include "analysis/slicer.h"
#include "strat/dependency_graph.h"
#include "util/string_util.h"

namespace dd {
namespace analysis {

namespace {

std::vector<Var> SortedUnique(const std::vector<Var>& v) {
  std::vector<Var> out = v;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

/// The three clause parts, set-normalized, for duplicate/subsumption
/// checks (classical subsumption is insensitive to order and repetition).
struct NormClause {
  std::vector<Var> heads, pos, neg;

  bool operator==(const NormClause& o) const {
    return heads == o.heads && pos == o.pos && neg == o.neg;
  }
  /// True iff this clause's classical clause is a subset of `o`'s, i.e.
  /// this subsumes o.
  bool Subsumes(const NormClause& o) const {
    return std::includes(o.heads.begin(), o.heads.end(), heads.begin(),
                         heads.end()) &&
           std::includes(o.pos.begin(), o.pos.end(), pos.begin(),
                         pos.end()) &&
           std::includes(o.neg.begin(), o.neg.end(), neg.begin(), neg.end());
  }
};

bool Intersect(const std::vector<Var>& a, const std::vector<Var>& b,
               Var* witness) {
  for (Var x : a) {
    if (std::find(b.begin(), b.end(), x) != b.end()) {
      *witness = x;
      return true;
    }
  }
  return false;
}

}  // namespace

const char* LintSeverityName(LintSeverity s) {
  switch (s) {
    case LintSeverity::kError:
      return "error";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kNote:
      return "note";
  }
  return "?";
}

const char* LintRuleName(LintRule r) {
  switch (r) {
    case LintRule::kTautology:
      return "tautology";
    case LintRule::kContradictoryBody:
      return "contradictory-body";
    case LintRule::kDuplicateClause:
      return "duplicate-clause";
    case LintRule::kSubsumedClause:
      return "subsumed-clause";
    case LintRule::kUnderivableAtom:
      return "underivable-atom";
    case LintRule::kOnlyNegativeAtom:
      return "only-negative-atom";
    case LintRule::kConstraintLikeHead:
      return "constraint-like-head";
    case LintRule::kIntegrityClause:
      return "integrity-clause";
    case LintRule::kHeadCycle:
      return "head-cycle";
    case LintRule::kRelevanceDead:
      return "relevance-dead";
  }
  return "?";
}

std::string LintDiagnostic::ToString() const {
  std::string loc;
  if (line > 0) {
    loc = StrFormat("line %d: ", line);
  } else if (clause_index >= 0) {
    loc = StrFormat("clause %d: ", clause_index);
  }
  return StrFormat("%s%s: [%s] %s", loc.c_str(),
                   LintSeverityName(severity), LintRuleName(rule),
                   message.c_str());
}

std::string FormatDiagnostics(const std::vector<LintDiagnostic>& diags) {
  std::string out;
  for (const LintDiagnostic& d : diags) {
    out += d.ToString();
    out += '\n';
  }
  return out;
}

std::vector<LintDiagnostic> Lint(const Database& db,
                                 const std::vector<int>* clause_lines,
                                 const LintOptions& opts) {
  const Vocabulary& voc = db.vocabulary();
  const int n = db.num_vars();
  const int m = db.num_clauses();
  std::vector<LintDiagnostic> out;

  auto line_of = [&](int ci) {
    return (clause_lines != nullptr &&
            ci < static_cast<int>(clause_lines->size()))
               ? (*clause_lines)[static_cast<size_t>(ci)]
               : 0;
  };
  auto add = [&](LintRule rule, LintSeverity sev, int ci, Var atom,
                 std::string msg) {
    LintDiagnostic d;
    d.rule = rule;
    d.severity = sev;
    d.clause_index = ci;
    d.line = ci >= 0 ? line_of(ci) : 0;
    d.atom = atom;
    d.message = std::move(msg);
    out.push_back(std::move(d));
  };

  // Occurrence counts per atom, over the whole program.
  std::vector<int> head_occ(static_cast<size_t>(n), 0);
  std::vector<int> pos_occ(static_cast<size_t>(n), 0);
  std::vector<int> neg_occ(static_cast<size_t>(n), 0);
  for (const Clause& c : db.clauses()) {
    for (Var a : c.heads()) ++head_occ[static_cast<size_t>(a)];
    for (Var b : c.pos_body()) ++pos_occ[static_cast<size_t>(b)];
    for (Var b : c.neg_body()) ++neg_occ[static_cast<size_t>(b)];
  }

  // ---- clause-local rules -------------------------------------------------
  std::vector<NormClause> norm(static_cast<size_t>(m));
  for (int ci = 0; ci < m; ++ci) {
    const Clause& c = db.clause(ci);
    NormClause& nc = norm[static_cast<size_t>(ci)];
    nc.heads = SortedUnique(c.heads());
    nc.pos = SortedUnique(c.pos_body());
    nc.neg = SortedUnique(c.neg_body());

    // (Clause canonicalizes its atom lists at construction, so "a | a"
    // never survives to this layer; no duplicate-head rule needed.)
    Var w = kInvalidVar;
    if (Intersect(nc.heads, nc.pos, &w)) {
      add(LintRule::kTautology, LintSeverity::kWarning, ci, w,
          StrFormat("clause is a tautology: '%s' occurs in both head and "
                    "positive body",
                    voc.Name(w).c_str()));
    }
    if (Intersect(nc.pos, nc.neg, &w)) {
      add(LintRule::kContradictoryBody, LintSeverity::kWarning, ci, w,
          StrFormat("body requires both '%s' and 'not %s'; the clause can "
                    "never fire",
                    voc.Name(w).c_str(), voc.Name(w).c_str()));
    }
    if (c.is_integrity() && opts.note_integrity_clauses) {
      add(LintRule::kIntegrityClause, LintSeverity::kNote, ci, kInvalidVar,
          "integrity clause: moves literal inference into the Table 2 "
          "regime and is ignored by the DDR fixpoint");
    }
    // Constraint-like head: every head atom occurs nowhere else in the
    // program — the clause only prunes models, so the author probably
    // meant an integrity clause.
    if (!c.heads().empty() && !c.pos_body().empty()) {
      bool constraint_like = true;
      for (Var a : nc.heads) {
        if (head_occ[static_cast<size_t>(a)] >
                static_cast<int>(std::count(c.heads().begin(),
                                            c.heads().end(), a)) ||
            pos_occ[static_cast<size_t>(a)] > 0 ||
            neg_occ[static_cast<size_t>(a)] > 0) {
          constraint_like = false;
          break;
        }
      }
      if (constraint_like) {
        add(LintRule::kConstraintLikeHead, LintSeverity::kNote, ci,
            nc.heads[0],
            "head atoms occur nowhere else; if the clause is meant as a "
            "constraint, write ':- body.'");
      }
    }
  }

  // ---- duplicate / subsumed clauses --------------------------------------
  if (opts.check_subsumption) {
    std::set<int> reported;
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < m; ++j) {
        if (i == j || reported.count(j) != 0) continue;
        const NormClause& a = norm[static_cast<size_t>(i)];
        const NormClause& b = norm[static_cast<size_t>(j)];
        if (a == b) {
          if (i < j) {
            reported.insert(j);
            add(LintRule::kDuplicateClause, LintSeverity::kWarning, j,
                kInvalidVar,
                StrFormat("exact duplicate of clause %d%s", i,
                          line_of(i) > 0
                              ? StrFormat(" (line %d)", line_of(i)).c_str()
                              : ""));
          }
        } else if (a.Subsumes(b)) {
          reported.insert(j);
          add(LintRule::kSubsumedClause, LintSeverity::kNote, j, kInvalidVar,
              StrFormat("classically subsumed by clause %d%s (kept: "
                        "dropping it may change split-based semantics)",
                        i,
                        line_of(i) > 0
                            ? StrFormat(" (line %d)", line_of(i)).c_str()
                            : ""));
        }
      }
    }
  }

  // ---- graph-aware rules --------------------------------------------------
  // Head cycles: a clause with two distinct head atoms in one nontrivial SCC
  // of the positive body->head graph is exactly what breaks
  // head-cycle-freeness (strat/IsHeadCycleFree). Report the concrete pair
  // plus a positive cycle through both atoms as the witness.
  {
    const DependencyGraph positive(db, DepGraphOptions{false, false});
    const std::vector<int> scc = positive.SccIds();
    std::vector<int> comp_size(scc.size(), 0);
    for (int id : scc) ++comp_size[static_cast<size_t>(id)];
    // Shortest positive path from -> to. Any path to a node of the same SCC
    // stays inside the SCC (the condensation is acyclic), so plain BFS
    // yields an in-SCC witness.
    auto path = [&](Var from, Var to) {
      std::vector<Var> parent(static_cast<size_t>(n), kInvalidVar);
      std::vector<Var> queue = {from};
      parent[static_cast<size_t>(from)] = from;
      for (size_t qi = 0; qi < queue.size(); ++qi) {
        const Var u = queue[qi];
        if (u == to && qi > 0) break;
        for (const DepEdge& e : positive.OutEdges(u)) {
          if (parent[static_cast<size_t>(e.to)] != kInvalidVar) continue;
          parent[static_cast<size_t>(e.to)] = u;
          queue.push_back(e.to);
        }
      }
      std::vector<Var> rev;
      for (Var v = to; v != from; v = parent[static_cast<size_t>(v)]) {
        rev.push_back(v);
      }
      std::reverse(rev.begin(), rev.end());
      return rev;  // from excluded, to included
    };
    for (int ci = 0; ci < m; ++ci) {
      const std::vector<Var>& heads = norm[static_cast<size_t>(ci)].heads;
      if (heads.size() < 2) continue;
      bool reported_clause = false;
      for (size_t i = 0; i < heads.size() && !reported_clause; ++i) {
        for (size_t j = i + 1; j < heads.size() && !reported_clause; ++j) {
          const Var a = heads[i], b = heads[j];
          if (scc[static_cast<size_t>(a)] != scc[static_cast<size_t>(b)] ||
              comp_size[static_cast<size_t>(scc[static_cast<size_t>(a)])] <
                  2) {
            continue;
          }
          std::string cycle = voc.Name(a);
          for (Var v : path(a, b)) cycle += " -> " + voc.Name(v);
          for (Var v : path(b, a)) cycle += " -> " + voc.Name(v);
          add(LintRule::kHeadCycle, LintSeverity::kNote, ci, a,
              StrFormat("head atoms '%s' and '%s' lie on a positive cycle "
                        "(%s); the program is not head-cycle-free, so "
                        "minimality checks stay on the coNP oracle path",
                        voc.Name(a).c_str(), voc.Name(b).c_str(),
                        cycle.c_str()));
          reported_clause = true;
        }
      }
    }
  }

  // Relevance cone of every head atom: atoms outside it are mentioned only
  // by integrity clauses, so no literal query's slice ever includes them.
  Interpretation head_cone(n);
  {
    std::vector<Var> head_atoms;
    for (Var v = 0; v < n; ++v) {
      if (head_occ[static_cast<size_t>(v)] > 0) head_atoms.push_back(v);
    }
    head_cone = Slicer(db).Cone(head_atoms).relevant;
  }

  // ---- atom-level rules ---------------------------------------------------
  for (Var v = 0; v < n; ++v) {
    const bool in_head = head_occ[static_cast<size_t>(v)] > 0;
    const bool in_pos = pos_occ[static_cast<size_t>(v)] > 0;
    const bool in_neg = neg_occ[static_cast<size_t>(v)] > 0;
    if (in_head || (!in_pos && !in_neg)) continue;
    if (in_neg && !in_pos) {
      add(LintRule::kOnlyNegativeAtom, LintSeverity::kNote, -1, v,
          StrFormat("atom '%s' occurs only under 'not'; it is never "
                    "derivable, so the negation always succeeds",
                    voc.Name(v).c_str()));
    } else if (!head_cone.Contains(v)) {
      add(LintRule::kRelevanceDead, LintSeverity::kNote, -1, v,
          StrFormat("atom '%s' is outside the relevance cone of every head "
                    "(only integrity clauses mention it); no query slice "
                    "includes it",
                    voc.Name(v).c_str()));
    } else {
      add(LintRule::kUnderivableAtom, LintSeverity::kWarning, -1, v,
          StrFormat("atom '%s' occurs in no clause head; it is false in "
                    "every minimal, possible and stable model",
                    voc.Name(v).c_str()));
    }
  }

  return out;
}

}  // namespace analysis
}  // namespace dd
