// Structured lint diagnostics over a database program.
//
// The linter reports clause- and atom-level issues that are either
// outright mistakes (tautological clauses, bodies containing "b, not b")
// or smells that change which complexity regime the program lands in
// (integrity clauses — Table 2 prices; constraint-like heads; atoms that
// can never be derived). Diagnostics carry severities and, when the
// program came through logic/parser's ParseProgram, 1-based source lines.
//
// The linter only *reports*; it never rewrites the database. (Dropping a
// subsumed clause is classically sound but can change possible-model and
// split-based semantics, so rewriting is left to the user.)
#ifndef DD_ANALYSIS_LINTER_H_
#define DD_ANALYSIS_LINTER_H_

#include <string>
#include <vector>

#include "logic/database.h"
#include "logic/parser.h"

namespace dd {
namespace analysis {

enum class LintSeverity {
  kError,    ///< the clause set is degenerate (e.g. empty-clause ancestry)
  kWarning,  ///< almost certainly not what the author meant
  kNote,     ///< stylistic or complexity-relevant observation
};

const char* LintSeverityName(LintSeverity s);

enum class LintRule {
  kTautology,          ///< head atom repeated in the positive body
  kContradictoryBody,  ///< "b" and "not b" in one body: never fires
  kDuplicateClause,    ///< exact duplicate of an earlier clause
  kSubsumedClause,     ///< another clause subsumes this one
  kUnderivableAtom,    ///< atom occurs in no head: false in all minimal models
  kOnlyNegativeAtom,   ///< atom used only under "not"
  kConstraintLikeHead, ///< head atom used nowhere else: ":- body."?
  kIntegrityClause,    ///< Table 2 regime / ignored by the DDR fixpoint
  kHeadCycle,          ///< two co-head atoms on a positive cycle: not HCF,
                       ///< the polynomial minimality path stays disabled
  kRelevanceDead,      ///< atom outside every head's relevance cone: no
                       ///< query slice ever includes it
};

const char* LintRuleName(LintRule r);

/// One diagnostic. Clause-level diagnostics carry `clause_index` (and
/// `line` when positions are known); atom-level ones carry `atom`.
struct LintDiagnostic {
  LintRule rule;
  LintSeverity severity;
  int clause_index = -1;   ///< index into db.clauses(), or -1
  int line = 0;            ///< 1-based source line, or 0 when unknown
  Var atom = kInvalidVar;  ///< subject atom for atom-level rules
  std::string message;

  /// "line 3: warning: [tautology] ..." (or "clause 2: ..." without
  /// positions; atom-level diagnostics omit the location).
  std::string ToString() const;
};

struct LintOptions {
  /// Report kIntegrityClause notes (noisy on Table 2 workloads).
  bool note_integrity_clauses = true;
  /// O(m^2) subsumption pass; disable for huge programs.
  bool check_subsumption = true;
};

/// Lints `db`. `clause_lines` (parallel to db.clauses(), as produced by
/// ParseProgram) is optional; pass nullptr when positions are unknown.
std::vector<LintDiagnostic> Lint(const Database& db,
                                 const std::vector<int>* clause_lines,
                                 const LintOptions& opts = {});

/// Convenience overload for programs built in memory.
inline std::vector<LintDiagnostic> Lint(const Database& db,
                                        const LintOptions& opts = {}) {
  return Lint(db, nullptr, opts);
}

/// Lints parsed text, with source positions attached.
inline std::vector<LintDiagnostic> Lint(const ParsedProgram& prog,
                                        const LintOptions& opts = {}) {
  return Lint(prog.db, &prog.clause_lines, opts);
}

/// Renders every diagnostic, one per line.
std::string FormatDiagnostics(const std::vector<LintDiagnostic>& diags);

}  // namespace analysis
}  // namespace dd

#endif  // DD_ANALYSIS_LINTER_H_
