#include "analysis/program_properties.h"

#include <algorithm>
#include <vector>

#include "strat/dependency_graph.h"
#include "strat/stratifier.h"
#include "util/string_util.h"

namespace dd {
namespace analysis {

namespace {

// Closure of the single-headed positive rules: if every positive body atom
// of a clause "a :- b1,...,bk." is certain and the clause has exactly one
// head atom and no negative body, then a is certain (true in every
// classical model). Queue-based unit fixpoint, linear in the program size.
Interpretation CertainAtoms(const Database& db) {
  const int n = db.num_vars();
  Interpretation certain(n);
  struct Pending {
    Var head;
    int unsatisfied;
  };
  std::vector<Pending> pending;
  std::vector<std::vector<int>> watch(static_cast<size_t>(n));
  std::vector<Var> queue;
  auto derive = [&](Var v) {
    if (!certain.Contains(v)) {
      certain.Insert(v);
      queue.push_back(v);
    }
  };
  for (const Clause& c : db.clauses()) {
    if (c.heads().size() != 1 || !c.neg_body().empty()) continue;
    if (c.pos_body().empty()) {
      derive(c.heads()[0]);
      continue;
    }
    int idx = static_cast<int>(pending.size());
    pending.push_back({c.heads()[0], static_cast<int>(c.pos_body().size())});
    for (Var b : c.pos_body()) watch[static_cast<size_t>(b)].push_back(idx);
  }
  while (!queue.empty()) {
    Var v = queue.back();
    queue.pop_back();
    for (int ri : watch[static_cast<size_t>(v)]) {
      if (--pending[static_cast<size_t>(ri)].unsatisfied == 0) {
        derive(pending[static_cast<size_t>(ri)].head);
      }
    }
  }
  return certain;
}

}  // namespace

ProgramProperties Analyze(const Database& db) {
  ProgramProperties p;
  const int n = db.num_vars();
  p.num_vars = n;
  p.num_clauses = db.num_clauses();
  p.certain_atoms = Interpretation(n);
  p.underivable_atoms = Interpretation(n);

  // ---- one pass over the clauses: counts and class flags ----------------
  Interpretation in_some_head(n);
  std::vector<bool> pos_self_loop(static_cast<size_t>(n), false);
  for (const Clause& c : db.clauses()) {
    const int head = static_cast<int>(c.heads().size());
    const int body =
        static_cast<int>(c.pos_body().size() + c.neg_body().size());
    p.max_head_width = std::max(p.max_head_width, head);
    p.max_body_width = std::max(p.max_body_width, body);
    if (c.is_fact()) ++p.num_facts;
    if (c.is_integrity()) ++p.num_integrity;
    if (head >= 2) ++p.num_disjunctive;
    if (!c.neg_body().empty()) ++p.num_negative_body;
    if (head <= 1 && c.neg_body().empty()) ++p.num_horn;
    for (Var a : c.heads()) {
      in_some_head.Insert(a);
      for (Var b : c.pos_body()) {
        if (a == b) pos_self_loop[static_cast<size_t>(a)] = true;
      }
    }
  }
  p.has_negation = p.num_negative_body > 0;
  p.has_integrity = p.num_integrity > 0;
  p.has_disjunction = p.num_disjunctive > 0;
  p.is_deductive = !p.has_negation;
  p.is_positive = p.is_deductive && !p.has_integrity;
  p.is_disjunction_free = !p.has_disjunction;
  p.is_horn = p.is_disjunction_free && p.is_deductive;
  p.is_definite = p.is_horn && !p.has_integrity;

  // ---- dependency graphs -------------------------------------------------
  // Full graph (head links + strict negation edges): SCC statistics and the
  // stratification precondition.
  DependencyGraph full(db);
  std::vector<int> comp = full.SccIds();
  int num_comp = 0;
  for (int c : comp) num_comp = std::max(num_comp, c + 1);
  std::vector<int> comp_size(static_cast<size_t>(num_comp), 0);
  std::vector<bool> comp_self(static_cast<size_t>(num_comp), false);
  std::vector<bool> comp_neg(static_cast<size_t>(num_comp), false);
  for (Var v = 0; v < n; ++v) {
    ++comp_size[static_cast<size_t>(comp[static_cast<size_t>(v)])];
    for (const DepEdge& e : full.OutEdges(v)) {
      if (comp[static_cast<size_t>(v)] != comp[static_cast<size_t>(e.to)]) {
        continue;
      }
      if (e.to == v) comp_self[static_cast<size_t>(comp[static_cast<size_t>(v)])] = true;
      if (e.strict) comp_neg[static_cast<size_t>(comp[static_cast<size_t>(v)])] = true;
    }
  }
  p.scc.num_sccs = num_comp;
  for (int c = 0; c < num_comp; ++c) {
    p.scc.largest_scc =
        std::max(p.scc.largest_scc, comp_size[static_cast<size_t>(c)]);
    if (comp_size[static_cast<size_t>(c)] > 1 ||
        comp_self[static_cast<size_t>(c)]) {
      ++p.scc.num_nontrivial_sccs;
    }
    if (comp_neg[static_cast<size_t>(c)]) ++p.scc.sccs_with_negation;
  }

  // Positive graph without head links: tightness and head-cycle-freeness
  // are defined over body->head positive edges only.
  DependencyGraph positive(db, DepGraphOptions{/*link_heads=*/false,
                                               /*include_negation=*/false});
  std::vector<int> pcomp = positive.SccIds();
  std::vector<int> pcomp_size(static_cast<size_t>(n), 0);
  for (Var v = 0; v < n; ++v) {
    ++pcomp_size[static_cast<size_t>(pcomp[static_cast<size_t>(v)])];
  }
  p.is_tight = true;
  for (Var v = 0; v < n; ++v) {
    if (pcomp_size[static_cast<size_t>(pcomp[static_cast<size_t>(v)])] > 1 ||
        pos_self_loop[static_cast<size_t>(v)]) {
      p.is_tight = false;
      break;
    }
  }
  p.is_head_cycle_free = IsHeadCycleFree(db, pcomp);

  // ---- stratification -----------------------------------------------------
  if (Result<Stratification> s = Stratify(db); s.ok()) {
    p.is_stratified = true;
    p.num_strata = s->num_strata;
  }

  // ---- analyzer-proven facts ----------------------------------------------
  p.certain_atoms = CertainAtoms(db);
  for (Var v = 0; v < n; ++v) {
    if (!in_some_head.Contains(v)) p.underivable_atoms.Insert(v);
  }
  return p;
}

std::string ProgramProperties::ToString(const Vocabulary& voc) const {
  std::string out;
  out += StrFormat(
      "vars=%d clauses=%d facts=%d integrity=%d disjunctive=%d "
      "neg-body=%d horn=%d max-head=%d max-body=%d\n",
      num_vars, num_clauses, num_facts, num_integrity, num_disjunctive,
      num_negative_body, num_horn, max_head_width, max_body_width);
  auto flag = [](bool b) { return b ? "yes" : "no"; };
  out += StrFormat(
      "class: positive=%s deductive=%s disjunction-free=%s horn=%s "
      "definite=%s\n",
      flag(is_positive), flag(is_deductive), flag(is_disjunction_free),
      flag(is_horn), flag(is_definite));
  out += StrFormat(
      "structure: stratified=%s (strata=%d) tight=%s head-cycle-free=%s\n",
      flag(is_stratified), num_strata, flag(is_tight),
      flag(is_head_cycle_free));
  out += StrFormat(
      "sccs: total=%d nontrivial=%d largest=%d with-negation=%d\n",
      scc.num_sccs, scc.num_nontrivial_sccs, scc.largest_scc,
      scc.sccs_with_negation);
  // Append-style: gcc-12 -O3 -Wrestrict false positive (PR105651).
  out += "certain atoms: ";
  out += certain_atoms.ToString(voc);
  out += "\nunderivable atoms: ";
  out += underivable_atoms.ToString(voc);
  out += "\n";
  return out;
}

}  // namespace analysis
}  // namespace dd
