// Static program analysis: the syntactic properties that decide, per the
// paper's Tables 1 and 2, how expensive reasoning over a database must be.
//
// The paper's whole point is that *syntactic class determines cost*:
// positive DDBs put DDR/PWS literal inference in P (Table 1), integrity
// clauses push the same queries to coNP/Π₂ᵖ (Table 2), and stratification
// gates PERF/ICWA entirely. Truszczyński's trichotomy sharpens this:
// head-cycle-free and disjunction-free fragments admit strictly cheaper
// algorithms. ProgramProperties is computed once, in polynomial time,
// before any reasoning; the dispatch layer (analysis/dispatch.h) consumes
// it to route queries to the cheapest sound engine.
#ifndef DD_ANALYSIS_PROGRAM_PROPERTIES_H_
#define DD_ANALYSIS_PROGRAM_PROPERTIES_H_

#include <string>

#include "logic/database.h"
#include "logic/interpretation.h"

namespace dd {
namespace analysis {

/// Condensation statistics of the (full, stratification-style) atom
/// dependency graph — the per-SCC shape later sharding/caching PRs key on.
struct SccStats {
  int num_sccs = 0;             ///< components of the full dependency graph
  int num_nontrivial_sccs = 0;  ///< size > 1, or a single self-looping atom
  int largest_scc = 0;          ///< atoms in the largest component
  int sccs_with_negation = 0;   ///< components pierced by a strict edge
};

/// The analyzer's verdict on one database. All fields are derived in
/// polynomial time from the clause list; nothing here calls a SAT solver.
struct ProgramProperties {
  // --- sizes -------------------------------------------------------------
  int num_vars = 0;
  int num_clauses = 0;
  int num_facts = 0;         ///< nonempty head, empty body
  int num_integrity = 0;     ///< empty head (":- body.")
  int num_disjunctive = 0;   ///< clauses with >= 2 head atoms
  int num_negative_body = 0; ///< clauses with at least one "not"
  int num_horn = 0;          ///< Horn-fragment size: <=1 head, no negation
  int max_head_width = 0;
  int max_body_width = 0;    ///< positive + negative body literals

  // --- class flags (paper Section 2 / Tables 1-2) ------------------------
  bool has_negation = false;    ///< some clause has a negated body atom
  bool has_integrity = false;   ///< some clause has an empty head
  bool has_disjunction = false; ///< some clause has >= 2 head atoms
  bool is_positive = false;     ///< Table 1 regime: no negation, no integrity
  bool is_deductive = false;    ///< DDDB / C+: no negation
  bool is_disjunction_free = false;  ///< every head has <= 1 atom
  bool is_horn = false;         ///< disjunction-free and negation-free
  bool is_definite = false;     ///< Horn and integrity-free (least model!)

  // --- structural flags (dependency-graph based) -------------------------
  /// Stratifiable: no cycle through negation (DSDB; gates PERF's
  /// strata-iteration algorithm and ICWA's very definition).
  bool is_stratified = false;
  int num_strata = 0;  ///< strata of the computed stratification (0 if none)
  /// Tight (Fages): the positive body->head dependency graph is acyclic,
  /// so stable models coincide with the models of Clark's completion.
  bool is_tight = false;
  /// Head-cycle-free (Ben-Eliyahu & Dechter): no clause has two head atoms
  /// on a common cycle of the positive dependency graph. HCF disjunctive
  /// programs reduce to non-disjunctive ones (Truszczyński's middle tier).
  bool is_head_cycle_free = false;
  SccStats scc;

  // --- analyzer-proven facts --------------------------------------------
  /// Atoms provably true in EVERY classical model of the database: the
  /// closure of the single-headed positive rules. Sound for any semantics
  /// whose intended models are classical models of DB (all the two-valued
  /// ones here); HasModel/InfersLiteral short-circuit on these.
  Interpretation certain_atoms;
  /// Atoms occurring in no clause head: never derivable, hence false in
  /// every minimal/possible/stable model. (They may still be true in
  /// arbitrary classical models, so only minimal-model-style dispatch may
  /// use them; the linter reports them.)
  Interpretation underivable_atoms;

  /// Multi-line human-readable report (ddlint's "properties" block).
  std::string ToString(const Vocabulary& voc) const;
};

/// Runs the analyzer. Polynomial: one pass over the clauses, two SCC
/// decompositions, one stratification attempt and one unit-closure.
ProgramProperties Analyze(const Database& db);

}  // namespace analysis
}  // namespace dd

#endif  // DD_ANALYSIS_PROGRAM_PROPERTIES_H_
