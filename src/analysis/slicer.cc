#include "analysis/slicer.h"

#include <algorithm>
#include <functional>
#include <numeric>

namespace dd {
namespace analysis {

namespace {

// Union-find with path halving (no ranks; the find loops are short).
int Find(std::vector<int>& parent, int x) {
  while (parent[static_cast<size_t>(x)] != x) {
    parent[static_cast<size_t>(x)] =
        parent[static_cast<size_t>(parent[static_cast<size_t>(x)])];
    x = parent[static_cast<size_t>(x)];
  }
  return x;
}

void Unite(std::vector<int>& parent, int a, int b) {
  a = Find(parent, a);
  b = Find(parent, b);
  if (a != b) parent[static_cast<size_t>(b)] = a;
}

void ForEachAtom(const Clause& c, const std::function<void(Var)>& f) {
  for (Var h : c.heads()) f(h);
  for (Var b : c.pos_body()) f(b);
  for (Var nb : c.neg_body()) f(nb);
}

}  // namespace

Slicer::Slicer(Database db) : db_(std::move(db)) {
  const size_t n = static_cast<size_t>(db_.num_vars());
  head_clauses_.resize(n);
  touch_clauses_.resize(n);
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  for (int ci = 0; ci < db_.num_clauses(); ++ci) {
    const Clause& c = db_.clause(ci);
    for (Var h : c.heads()) head_clauses_[static_cast<size_t>(h)].push_back(ci);
    Var first = -1;
    ForEachAtom(c, [&](Var v) {
      touch_clauses_[static_cast<size_t>(v)].push_back(ci);
      if (first == -1) {
        first = v;
      } else {
        Unite(parent, first, v);
      }
    });
  }
  // Duplicate touch entries (an atom in two positions of one clause) are
  // harmless for the closures below but would double-visit; dedup once.
  for (auto& tc : touch_clauses_) {
    tc.erase(std::unique(tc.begin(), tc.end()), tc.end());
  }
  for (auto& hc : head_clauses_) {
    hc.erase(std::unique(hc.begin(), hc.end()), hc.end());
  }
  // Dense module labels in root order.
  module_id_.assign(n, -1);
  for (size_t v = 0; v < n; ++v) {
    const int root = Find(parent, static_cast<int>(v));
    if (module_id_[static_cast<size_t>(root)] == -1) {
      module_id_[static_cast<size_t>(root)] = num_modules_++;
    }
    module_id_[v] = module_id_[static_cast<size_t>(root)];
  }
}

SliceResult Slicer::Cone(const std::vector<Var>& roots) const {
  SliceResult out;
  out.relevant = Interpretation(db_.num_vars());
  std::vector<Var> queue;
  auto add = [&](Var v) {
    if (!out.relevant.Contains(v)) {
      out.relevant.Insert(v);
      queue.push_back(v);
    }
  };
  for (Var r : roots) add(r);
  std::vector<bool> in_slice(static_cast<size_t>(db_.num_clauses()), false);
  while (!queue.empty()) {
    const Var v = queue.back();
    queue.pop_back();
    for (int ci : head_clauses_[static_cast<size_t>(v)]) {
      if (in_slice[static_cast<size_t>(ci)]) continue;
      in_slice[static_cast<size_t>(ci)] = true;
      out.clause_indices.push_back(ci);
      ForEachAtom(db_.clause(ci), add);
    }
  }
  std::sort(out.clause_indices.begin(), out.clause_indices.end());
  out.proper =
      static_cast<int>(out.clause_indices.size()) < db_.num_clauses();
  return out;
}

SliceResult Slicer::ModuleUnion(const std::vector<Var>& roots) const {
  SliceResult out;
  out.relevant = Interpretation(db_.num_vars());
  std::vector<bool> wanted(static_cast<size_t>(num_modules_), false);
  for (Var r : roots) wanted[static_cast<size_t>(module_id_[static_cast<size_t>(r)])] = true;
  for (Var v = 0; v < db_.num_vars(); ++v) {
    if (wanted[static_cast<size_t>(module_id_[static_cast<size_t>(v)])]) {
      out.relevant.Insert(v);
    }
  }
  // All atoms of a clause share one module, so membership of any atom
  // decides the whole clause.
  for (int ci = 0; ci < db_.num_clauses(); ++ci) {
    const Clause& c = db_.clause(ci);
    Var probe = -1;
    if (!c.heads().empty()) {
      probe = c.heads()[0];
    } else if (!c.pos_body().empty()) {
      probe = c.pos_body()[0];
    } else if (!c.neg_body().empty()) {
      probe = c.neg_body()[0];
    }
    if (probe != -1 && out.relevant.Contains(probe)) {
      out.clause_indices.push_back(ci);
    }
  }
  out.proper =
      static_cast<int>(out.clause_indices.size()) < db_.num_clauses();
  return out;
}

}  // namespace analysis
}  // namespace dd
