// Query-directed relevance slicing and module decomposition.
//
// Two structural restrictions of a database, both purely syntactic:
//
//   * the *cone of influence* of a query atom set: the least atom set R
//     containing the roots and closed under "a clause with a head in R
//     contributes all its atoms" — every derivation of a root lives inside
//     the cone's clauses (the slice);
//
//   * the *modules*: connected components of the clause hypergraph (two
//     atoms are connected when some clause mentions both). Modules are
//     unions of SCCs of strat/DependencyGraph and, on positive databases,
//     minimal models factor as independent products over them.
//
// Both yield head-closed sub-databases, which is the premise of the
// slicing soundness theorem (docs/ANALYSIS.md): for positive databases,
// {M ∩ R : M ∈ MM(DB)} = MM(slice)↾R, and the DDR/PWS fixpoint and
// possible-model constructions restrict the same way. The per-semantics
// gate (which semantics may be answered on the slice) is SliceIsSound in
// analysis/dispatch.h; this module is policy-free.
#ifndef DD_ANALYSIS_SLICER_H_
#define DD_ANALYSIS_SLICER_H_

#include <vector>

#include "logic/database.h"
#include "logic/interpretation.h"
#include "logic/types.h"

namespace dd {
namespace analysis {

/// A head-closed restriction of the database.
struct SliceResult {
  Interpretation relevant;         ///< the atom cone R
  std::vector<int> clause_indices; ///< exactly the clauses with a head in R,
                                   ///< ascending
  bool proper = false;             ///< strictly fewer clauses than the DB
};

/// Precomputed incidence structure for one database. Keeps its own copy of
/// the database (like FastPathEngine), so it stays valid when the owning
/// facade moves; the Reasoner drops it whenever the vocabulary grows.
class Slicer {
 public:
  explicit Slicer(Database db);

  const Database& db() const { return db_; }

  /// Cone of influence of `roots` (directed, head-downward closure).
  SliceResult Cone(const std::vector<Var>& roots) const;

  /// Union of the modules containing `roots` (undirected closure); always
  /// a superset of Cone(roots).
  SliceResult ModuleUnion(const std::vector<Var>& roots) const;

  /// Dense module id per atom; atoms mentioned in no clause are singleton
  /// modules.
  const std::vector<int>& module_ids() const { return module_id_; }
  int num_modules() const { return num_modules_; }

  /// Materializes the sliced sub-database (same vocabulary and variable
  /// space; atoms outside the cone simply never occur).
  Database MakeSubDatabase(const SliceResult& slice) const {
    return db_.SelectClauses(slice.clause_indices);
  }

 private:
  Database db_;
  /// atom -> indices of clauses having it among their heads.
  std::vector<std::vector<int>> head_clauses_;
  /// atom -> indices of clauses mentioning it anywhere.
  std::vector<std::vector<int>> touch_clauses_;
  std::vector<int> module_id_;
  int num_modules_ = 0;
};

}  // namespace analysis
}  // namespace dd

#endif  // DD_ANALYSIS_SLICER_H_
