#include "batch/answer_cache.h"

#include "util/string_util.h"

namespace dd {
namespace batch {

std::string AnswerCache::MakeKey(uint64_t fingerprint, SemanticsKind kind,
                                 const std::string& canonical_query,
                                 bool brave) {
  return StrFormat("%016llx|%s%s|",
                   static_cast<unsigned long long>(fingerprint),
                   SemanticsKindName(kind), brave ? "~brave" : "") +
         canonical_query;
}

bool AnswerCache::IsBraveKey(const std::string& key) {
  // The mode tag lives in the kind segment (between the first and second
  // '|'); the query segment after it may contain arbitrary bytes and is
  // never inspected.
  const size_t first = key.find('|');
  if (first == std::string::npos) return false;
  const size_t second = key.find('|', first + 1);
  if (second == std::string::npos) return false;
  return key.find('~', first + 1) < second;
}

void AnswerCache::SetEpoch(uint64_t fingerprint) {
  if (epoch_set_ && epoch_ == fingerprint) return;
  if (epoch_set_ && !entries_.empty()) ++stats_.invalidations;
  lru_.clear();
  entries_.clear();
  epoch_ = fingerprint;
  epoch_set_ = true;
}

std::optional<Trilean> AnswerCache::Lookup(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void AnswerCache::Insert(const std::string& key, Trilean answer) {
  if (answer == Trilean::kUnknown) {
    // "Unknown is never cached": exhaustion is a property of the budget,
    // not of the query.
    ++stats_.unknown_rejected;
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->second = answer;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, answer);
  entries_.emplace(key, lru_.begin());
  ++stats_.insertions;
  while (capacity_ > 0 && static_cast<int64_t>(entries_.size()) > capacity_) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void AnswerCache::Clear() {
  lru_.clear();
  entries_.clear();
}

void AnswerCache::ForEach(
    const std::function<void(const std::string&, Trilean)>& fn) const {
  for (const auto& [key, answer] : lru_) fn(key, answer);
}

}  // namespace batch
}  // namespace dd
