// Fingerprinted LRU cache of definite batch answers.
//
// Key contract (docs/BATCHING.md): an entry is addressed by
//
//   (database fingerprint, semantics, canonical query key)
//
// rendered as one string via MakeKey. The fingerprint (util/fingerprint.h)
// is a stable hash of the canonicalized clause multiset, so two loads of
// the same program — in any clause order — share entries, and any clause
// change flips the fingerprint. SetEpoch enforces invalidation: the cache
// remembers the fingerprint it was last used with and drops everything
// when a different one shows up.
//
// "Unknown is never cached": Insert refuses Trilean::kUnknown (counted in
// stats().unknown_rejected). A kUnknown answer means the budget ran out —
// it says nothing about the query, and caching it would freeze a transient
// resource condition into a persistent wrong "answer". Definite answers
// computed under a budget are safe to cache: the anytime contract
// guarantees they equal the unbudgeted answer (docs/ROBUSTNESS.md).
//
// Not thread-safe: the Reasoner performs all lookups/inserts on the batch
// caller's thread, outside the parallel group evaluation.
#ifndef DD_BATCH_ANSWER_CACHE_H_
#define DD_BATCH_ANSWER_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "semantics/semantics.h"
#include "util/budget.h"

namespace dd {
namespace batch {

class AnswerCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;        ///< LRU entries dropped at capacity
    int64_t invalidations = 0;    ///< full clears on fingerprint change
    int64_t unknown_rejected = 0; ///< Insert(kUnknown) attempts refused
  };

  /// `capacity` <= 0 means unbounded (tests only; servers should bound).
  explicit AnswerCache(int64_t capacity = 4096) : capacity_(capacity) {}

  /// The canonical composite key. `brave` tags credulous-mode entries in
  /// the kind segment ("KIND~brave"), so brave and skeptical answers for
  /// the same canonical query never collide while skeptical keys stay
  /// byte-identical to the pre-brave format (existing snapshots load
  /// unchanged).
  static std::string MakeKey(uint64_t fingerprint, SemanticsKind kind,
                             const std::string& canonical_query,
                             bool brave = false);

  /// True for keys minted by MakeKey(..., brave=true). Snapshot
  /// persistence filters these out: snapshots stay skeptical-only
  /// (docs/SERVING.md).
  static bool IsBraveKey(const std::string& key);

  /// Pins the cache to a database fingerprint; entries computed against a
  /// different fingerprint are dropped wholesale (invalidation contract).
  void SetEpoch(uint64_t fingerprint);

  /// Definite cached answer for `key`, if present (refreshes LRU order).
  std::optional<Trilean> Lookup(const std::string& key);

  /// Caches a definite answer; kUnknown is refused, never stored.
  void Insert(const std::string& key, Trilean answer);

  void Clear();

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  int64_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

  /// The fingerprint the cache is currently pinned to (via SetEpoch).
  /// Snapshot persistence (src/serve/snapshot.h) stamps this into the
  /// saved file so stale snapshots self-invalidate on load.
  bool epoch_set() const { return epoch_set_; }
  uint64_t epoch() const { return epoch_; }

  /// Debug/audit iteration over live entries (the bench harness uses this
  /// to assert no kUnknown was ever stored). Order unspecified.
  void ForEach(
      const std::function<void(const std::string&, Trilean)>& fn) const;

 private:
  using LruList = std::list<std::pair<std::string, Trilean>>;

  int64_t capacity_;
  bool epoch_set_ = false;
  uint64_t epoch_ = 0;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> entries_;
  Stats stats_;
};

}  // namespace batch
}  // namespace dd

#endif  // DD_BATCH_ANSWER_CACHE_H_
