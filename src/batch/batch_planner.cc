#include "batch/batch_planner.h"

#include <map>
#include <utility>

namespace dd {
namespace batch {

std::vector<PlannedGroup> PlanGroups(
    const analysis::Slicer* slicer, const analysis::ProgramProperties& props,
    SemanticsKind kind, bool custom_partition,
    const std::vector<CanonicalQuery>& queries,
    const std::vector<int>& pending) {
  std::vector<PlannedGroup> groups;
  if (pending.empty()) return groups;

  if (slicer == nullptr ||
      !analysis::SliceIsSound(props, kind, custom_partition)) {
    PlannedGroup g;
    g.query_indices = pending;
    g.whole_db = true;
    groups.push_back(std::move(g));
    return groups;
  }

  // Key each query by its module-union clause footprint; equal footprints
  // share one engine. std::map keeps lookup deterministic, but emission
  // order is first appearance over `pending`, tracked explicitly.
  std::map<std::vector<int>, int> group_of;  // footprint -> groups index
  for (int qi : pending) {
    analysis::SliceResult slice = slicer->ModuleUnion(queries[qi].roots);
    const bool whole = !slice.proper;
    // All whole-database queries share one footprint regardless of which
    // improper union produced them.
    std::vector<int> footprint =
        whole ? std::vector<int>{-1} : slice.clause_indices;
    auto [it, inserted] =
        group_of.emplace(std::move(footprint), static_cast<int>(groups.size()));
    if (inserted) {
      PlannedGroup g;
      g.whole_db = whole;
      if (!whole) g.slice = std::move(slice);
      groups.push_back(std::move(g));
    }
    groups[it->second].query_indices.push_back(qi);
  }
  return groups;
}

}  // namespace batch
}  // namespace dd
