// Grouping a batch's canonical queries into evaluation units.
//
// Queries touching the same relevance modules share one engine (and one
// model bank): the planner keys each query on the module union of its
// atoms (analysis/slicer.h) and merges queries with identical clause
// footprints. Slicing soundness is the single-query gate reused verbatim —
// SliceIsSound(props, kind, custom_partition) — so semantics where module
// restriction could change answers (CWA, PDSM, custom CCWA/ECWA
// partitions) collapse into one whole-database group.
//
// Determinism: groups are emitted in first-appearance order of their
// footprint over the query list, and query_indices ascend within each
// group; the plan is a pure function of (database, semantics, queries),
// independent of thread count.
#ifndef DD_BATCH_BATCH_PLANNER_H_
#define DD_BATCH_BATCH_PLANNER_H_

#include <vector>

#include "analysis/dispatch.h"
#include "analysis/program_properties.h"
#include "analysis/slicer.h"
#include "batch/query_batch.h"
#include "semantics/semantics.h"

namespace dd {
namespace batch {

/// One planned group: member queries (indices into the caller's canonical
/// query vector) plus the database restriction they run on.
struct PlannedGroup {
  std::vector<int> query_indices;
  analysis::SliceResult slice;  ///< meaningful when !whole_db
  bool whole_db = false;        ///< evaluate on the full database
};

/// Partitions `pending` (indices into `queries`) into evaluation groups.
/// With a null slicer or an unsound slice gate everything lands in one
/// whole-database group; an improper module union (the query reaches the
/// whole program) likewise maps to whole_db so the engine skips the
/// sub-database copy.
std::vector<PlannedGroup> PlanGroups(
    const analysis::Slicer* slicer, const analysis::ProgramProperties& props,
    SemanticsKind kind, bool custom_partition,
    const std::vector<CanonicalQuery>& queries,
    const std::vector<int>& pending);

}  // namespace batch
}  // namespace dd

#endif  // DD_BATCH_BATCH_PLANNER_H_
