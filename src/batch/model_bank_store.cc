#include "batch/model_bank_store.h"

#include "util/string_util.h"

namespace dd {
namespace batch {

std::string ModelBankStore::MakeKey(uint64_t module_fingerprint,
                                    SemanticsKind kind, int64_t cap) {
  return StrFormat("%016llx|%s|%lld",
                   static_cast<unsigned long long>(module_fingerprint),
                   SemanticsKindName(kind), static_cast<long long>(cap));
}

void ModelBankStore::SetEpoch(uint64_t fingerprint) {
  if (epoch_set_ && epoch_ == fingerprint) return;
  if (epoch_set_ && !entries_.empty()) ++stats_.invalidations;
  lru_.clear();
  entries_.clear();
  epoch_ = fingerprint;
  epoch_set_ = true;
}

std::shared_ptr<const ModelBank> ModelBankStore::Lookup(const std::string& key,
                                                        int min_num_vars) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  const std::shared_ptr<const ModelBank>& bank = it->second->second;
  if (bank->num_vars < min_num_vars) {
    // Built before the vocabulary grew: it cannot evaluate a formula
    // mentioning a newer atom. The entry stays — it remains valid for
    // queries over the atoms it does cover.
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second);
  return bank;
}

void ModelBankStore::Insert(const std::string& key,
                            std::shared_ptr<const ModelBank> bank) {
  if (bank == nullptr || bank->models == nullptr || !bank->complete) {
    // A truncated bank may be missing models; trusting it could flip
    // answers, so it is never stored under any circumstances.
    ++stats_.truncated_rejected;
    return;
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second->second = std::move(bank);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(bank));
  entries_.emplace(key, lru_.begin());
  ++stats_.insertions;
  while (capacity_ > 0 && static_cast<int64_t>(entries_.size()) > capacity_) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

void ModelBankStore::Clear() {
  lru_.clear();
  entries_.clear();
}

void ModelBankStore::ForEach(
    const std::function<void(const std::string&, const ModelBank&)>& fn)
    const {
  for (const auto& [key, bank] : lru_) fn(key, *bank);
}

}  // namespace batch
}  // namespace dd
