// Bounded, epoch-aware store of complete model banks, shared across
// batches.
//
// A batch group's model bank — one enumeration of the group's
// intended-model set — is the expensive shared structure of
// docs/BATCHING.md stage 5. Before this store, every AnswerBatch call
// rebuilt each group's bank from scratch, so repeated *non-identical*
// batches (same modules, disjoint queries) re-paid the paper's NP/Σ₂ᵖ
// enumeration price per call even though the answer cache deduplicated
// repeated *queries*. The store closes that gap: a bank built by one
// batch is keyed on
//
//   (module fingerprint, semantics kind, effective enumeration cap)
//
// and reused by any later group with the same key — across batches,
// across skeptical and brave modes (the bank is the model set; the modes
// differ only in the for-all vs exists pass over it), and across ladder
// rungs of the serving layer (a retried request never rebuilds a bank an
// earlier rung already completed).
//
// Safety contract:
//   * Only COMPLETE banks are ever stored. A bank truncated by a model
//     cap or budget exhaustion answers nothing; Insert refuses banks not
//     marked complete (stats().truncated_rejected), and the batch layer
//     only marks a bank complete when the enumeration provably returned
//     the whole set (it asks for cap+1 models and got at most cap).
//   * SetEpoch pins the store to the database fingerprint, exactly like
//     batch::AnswerCache: any fingerprint change drops every bank
//     wholesale before a single lookup. Module fingerprints of a mutated
//     database can never serve stale models.
//   * A lookup demands a minimum interpretation width: a bank built
//     before the vocabulary grew cannot evaluate a query mentioning a
//     newer atom, so such lookups miss (the bank stays usable for
//     queries over the old atoms).
//   * Custom CCWA/ECWA partitions change the intended-model set without
//     changing the database fingerprint; the batch layer disables the
//     store entirely for partitioned reasoners.
//
// Memory: banks are handed around as shared_ptr handles — the in-flight
// evaluation, the store, and (for EGCWA) the oracle layer's exhausted
// ProjectionStore stream all reference ONE materialization
// (Semantics::SharedModels); eviction or epoch invalidation drops the
// store's reference without copying or invalidating readers. LRU-bounded
// like AnswerCache; evictions only ever cost re-enumeration.
//
// Not thread-safe: the Reasoner performs all lookups/inserts on the
// batch caller's thread — lookups before the parallel group evaluation,
// inserts after it joins.
#ifndef DD_BATCH_MODEL_BANK_STORE_H_
#define DD_BATCH_MODEL_BANK_STORE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "logic/interpretation.h"
#include "semantics/semantics.h"

namespace dd {
namespace batch {

/// One group's enumerated intended-model set, shared by handle.
struct ModelBank {
  /// The models (never null; possibly empty — a semantics-inconsistent
  /// module has a complete empty bank). May alias engine-internal storage
  /// (an exhausted projection stream), which stays immutable once shared.
  std::shared_ptr<const std::vector<Interpretation>> models;
  /// Interpretation width: a formula may be evaluated against this bank
  /// iff every atom it mentions has Var < num_vars. INT_MAX for an empty
  /// bank (no Eval ever touches a bit).
  int num_vars = 0;
  /// True when `models` provably holds the WHOLE intended-model set.
  /// Banks without this flag answer nothing and are never stored.
  bool complete = false;
};

class ModelBankStore {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;  ///< absent keys + width-mismatch rejections
    int64_t insertions = 0;
    int64_t evictions = 0;          ///< LRU banks dropped at capacity
    int64_t invalidations = 0;      ///< full clears on fingerprint change
    int64_t truncated_rejected = 0; ///< Insert of an incomplete bank refused
  };

  /// `capacity` <= 0 means unbounded (tests only; servers should bound).
  /// Banks are heavyweight (whole model sets), so the default is far
  /// smaller than AnswerCache's.
  explicit ModelBankStore(int64_t capacity = 32) : capacity_(capacity) {}

  /// The canonical composite key. `cap` is the effective bank cap the
  /// enumeration ran under (EffectiveBankCap): two batches share a bank
  /// only when they would have built the same one.
  static std::string MakeKey(uint64_t module_fingerprint, SemanticsKind kind,
                             int64_t cap);

  /// Pins the store to a database fingerprint; banks built against a
  /// different fingerprint are dropped wholesale (invalidation contract).
  void SetEpoch(uint64_t fingerprint);

  /// The stored bank for `key`, if present AND wide enough to evaluate
  /// formulas over vars [0, min_num_vars). Refreshes LRU order on hit;
  /// a width mismatch counts as a miss.
  std::shared_ptr<const ModelBank> Lookup(const std::string& key,
                                          int min_num_vars);

  /// Stores a complete bank; banks not marked complete are refused and
  /// counted (truncated banks must never be stored). Re-inserting an
  /// existing key refreshes its LRU slot.
  void Insert(const std::string& key, std::shared_ptr<const ModelBank> bank);

  void Clear();

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  int64_t capacity() const { return capacity_; }
  const Stats& stats() const { return stats_; }

  bool epoch_set() const { return epoch_set_; }
  uint64_t epoch() const { return epoch_; }

  /// Debug/audit iteration over live banks (tests assert every stored
  /// bank is complete). Order unspecified.
  void ForEach(const std::function<void(const std::string&,
                                        const ModelBank&)>& fn) const;

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const ModelBank>>>;

  int64_t capacity_;
  bool epoch_set_ = false;
  uint64_t epoch_ = 0;
  LruList lru_;  ///< front = most recently used
  std::unordered_map<std::string, LruList::iterator> entries_;
  Stats stats_;
};

}  // namespace batch
}  // namespace dd

#endif  // DD_BATCH_MODEL_BANK_STORE_H_
