#include "batch/queries_file.h"

#include <map>
#include <utility>

#include "util/string_util.h"

namespace dd {
namespace batch {

namespace {

/// Splits off the first whitespace-delimited token of `s` (which may
/// contain NUL or arbitrary bytes — only ' ' and '\t' delimit).
std::string_view NextToken(std::string_view* s) {
  size_t start = s->find_first_not_of(" \t");
  if (start == std::string_view::npos) {
    *s = std::string_view();
    return std::string_view();
  }
  size_t end = s->find_first_of(" \t", start);
  std::string_view tok = s->substr(start, end - start);
  *s = end == std::string_view::npos ? std::string_view() : s->substr(end);
  return tok;
}

Status BadLine(int lineno, const std::string& why) {
  return Status::InvalidArgument(StrFormat("queries line %d: %s", lineno,
                                           why.c_str()));
}

}  // namespace

Result<QueriesFile> ParseQueriesFile(std::string_view text) {
  if (text.size() > kMaxQueriesFile) {
    return Status::InvalidArgument("queries file too large");
  }
  QueriesFile out;
  std::map<std::pair<SemanticsKind, bool>, int> group_of;
  int lineno = 0;
  // Manual line walk (not getline on a stream): it preserves NUL bytes,
  // costs one pass, and naturally handles a missing final newline.
  size_t pos = 0;
  while (pos <= text.size()) {
    if (pos == text.size() && lineno > 0 && text.back() == '\n') break;
    size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++lineno;
    if (line.size() > kMaxQueryLine) return BadLine(lineno, "line too long");
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

    std::string_view rest = line;
    std::string_view cmd = NextToken(&rest);
    if (cmd.empty() || cmd[0] == '#') continue;
    const bool is_lit = cmd == "lit";
    const bool is_template = cmd == "answers" || cmd == "banswers";
    const bool is_brave = cmd == "brave" || cmd == "banswers";
    if (!is_lit && !is_brave && !is_template && cmd != "infer") {
      return BadLine(lineno,
                     "expected 'lit', 'infer', 'brave', 'answers' or "
                     "'banswers', got '" +
                         std::string(cmd) + "'");
    }
    std::string_view sem_name = NextToken(&rest);
    auto kind = SemanticsKindFromName(sem_name);
    if (!kind) {
      return BadLine(lineno,
                     "unknown semantics '" + std::string(sem_name) + "'");
    }
    std::string_view query = Trim(rest);
    if (query.empty()) return BadLine(lineno, "empty query");

    const int slot = static_cast<int>(out.queries.size());
    out.queries.push_back(
        ParsedQuery{*kind, is_brave, is_template,
                    BatchQuery{std::string(query), is_lit}, lineno});
    // Template lines are answered per line (tmpl::AnswerTemplate issues its
    // own batch over the instantiations), so they join no group.
    if (is_template) continue;
    auto [it, inserted] = group_of.emplace(
        std::make_pair(*kind, is_brave), static_cast<int>(out.groups.size()));
    if (inserted) {
      out.groups.push_back(QueriesFile::Group{*kind, is_brave, {}, {}});
    }
    QueriesFile::Group& g = out.groups[it->second];
    g.slots.push_back(slot);
    g.queries.push_back(out.queries.back().query);
  }
  return out;
}

}  // namespace batch
}  // namespace dd
