// Hardened parser for .queries files (the ddquery --batch input format
// and the serve-mode QUERY payload's file sibling).
//
// Format, one query per line:
//
//   lit      <SEM> <literal>     # skeptical literal inference
//   infer    <SEM> <formula>     # skeptical formula inference
//   brave    <SEM> <formula>     # brave (credulous) formula inference
//   answers  <SEM> <template>    # skeptical template answers (tmpl/)
//   banswers <SEM> <template>    # brave template answers
//   # comment                    — skipped, as are blank lines
//
// SEM is any name SemanticsKindFromName accepts (all 11 semantics plus
// the paper's aliases circ/wgcwa/pms). Template lines hold a first-order
// conjunctive template like "color(X, red), not bad(X)" (docs/TEMPLATES.md);
// they are answered one template per line (each template IS a batch), so
// they join no (semantics, mode) group.
//
// Hardening contract (the .queries twin of sat/dimacs.cc's DIMACS
// hardening, docs/ROBUSTNESS.md): hostile bytes yield a line-numbered
// InvalidArgument Status, never a crash, hang, or silent misparse —
//   * lines longer than kMaxQueryLine are rejected (no unbounded token
//     growth from a file of a gigabyte on one line);
//   * CRLF line endings are accepted (the trailing '\r' is stripped);
//   * an unterminated final line (no trailing '\n') parses normally;
//   * non-UTF8 / NUL / control bytes never crash the parser: they are
//     plain bytes — a query containing them simply fails downstream
//     formula parsing with a Status;
//   * files larger than kMaxQueriesFile are rejected up front.
#ifndef DD_BATCH_QUERIES_FILE_H_
#define DD_BATCH_QUERIES_FILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "batch/query_batch.h"
#include "semantics/semantics.h"
#include "util/status.h"

namespace dd {
namespace batch {

/// Longest accepted .queries line, in bytes (excluding the newline).
constexpr size_t kMaxQueryLine = 1 << 20;
/// Largest accepted .queries file, in bytes.
constexpr size_t kMaxQueriesFile = size_t{1} << 30;

/// One parsed query line, tagged with its input position.
struct ParsedQuery {
  SemanticsKind kind = SemanticsKind::kGcwa;
  bool brave = false;  ///< credulous mode ("brave"/"banswers" commands)
  /// Template line ("answers"/"banswers"): `query.text` holds the raw
  /// template for tmpl::AnswerTemplateText, and the line joins no group —
  /// a template already fans out into one batch of its own.
  bool is_template = false;
  BatchQuery query;
  int line = 0;  ///< 1-based source line, for error attribution
};

/// The whole file, plus the queries regrouped per (semantics, mode) in
/// first-appearance order — the shape the Reasoner's batch entry points
/// consume (one AnswerBatch/AnswerBatchCredulous call per group), with
/// `slots` mapping each group member back to its input position so
/// answers print in input-line order.
struct QueriesFile {
  std::vector<ParsedQuery> queries;  ///< input order
  struct Group {
    SemanticsKind kind = SemanticsKind::kGcwa;
    bool brave = false;  ///< routes to AnswerBatchCredulous
    std::vector<int> slots;  ///< input positions, input order
    std::vector<BatchQuery> queries;
  };
  std::vector<Group> groups;
};

/// Parses .queries text. Any malformed line — unknown command, unknown
/// semantics, empty query, overlong line — fails the whole parse with a
/// line-numbered InvalidArgument (batch answers are positional; skipping
/// bad lines silently would shift every answer after them).
Result<QueriesFile> ParseQueriesFile(std::string_view text);

}  // namespace batch
}  // namespace dd

#endif  // DD_BATCH_QUERIES_FILE_H_
