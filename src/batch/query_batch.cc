#include "batch/query_batch.h"

#include <algorithm>
#include <utility>

#include "logic/formula_transform.h"
#include "semantics/ccwa.h"
#include "semantics/ecwa_circ.h"

namespace dd {
namespace batch {

void BatchStats::Add(const BatchStats& o) {
  queries += o.queries;
  unique_queries += o.unique_queries;
  dedup_hits += o.dedup_hits;
  conjunct_splits += o.conjunct_splits;
  groups += o.groups;
  bank_groups += o.bank_groups;
  fallback_groups += o.fallback_groups;
  bank_models += o.bank_models;
  unknowns += o.unknowns;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  cache_insertions += o.cache_insertions;
  cache_evictions += o.cache_evictions;
  cache_invalidations += o.cache_invalidations;
}

void Publish(const BatchStats& s, obs::MetricsRegistry* reg) {
  reg->Add("dd.batch.queries", s.queries);
  reg->Add("dd.batch.unique_queries", s.unique_queries);
  reg->Add("dd.batch.dedup_hits", s.dedup_hits);
  reg->Add("dd.batch.conjunct_splits", s.conjunct_splits);
  reg->Add("dd.batch.groups", s.groups);
  reg->Add("dd.batch.bank_groups", s.bank_groups);
  reg->Add("dd.batch.fallback_groups", s.fallback_groups);
  reg->Add("dd.batch.bank_models", s.bank_models);
  reg->Add("dd.batch.unknowns", s.unknowns);
  reg->Add("dd.cache.hits", s.cache_hits);
  reg->Add("dd.cache.misses", s.cache_misses);
  reg->Add("dd.cache.insertions", s.cache_insertions);
  reg->Add("dd.cache.evictions", s.cache_evictions);
  reg->Add("dd.cache.invalidations", s.cache_invalidations);
}

std::string CanonicalKey(const Formula& f, const Vocabulary& voc) {
  switch (f->kind()) {
    case FormulaKind::kConst:
      return f->const_value() ? "1" : "0";
    case FormulaKind::kAtom:
      return "a(" + voc.Name(f->atom()) + ")";
    case FormulaKind::kNot:
      return "!(" + CanonicalKey(f->children()[0], voc) + ")";
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kIff: {
      // Commutative connectives: child keys in sorted order, so "a & b"
      // and "b & a" share one canonical query.
      std::vector<std::string> keys;
      keys.reserve(f->children().size());
      for (const Formula& c : f->children()) {
        keys.push_back(CanonicalKey(c, voc));
      }
      std::sort(keys.begin(), keys.end());
      std::string out = f->kind() == FormulaKind::kAnd  ? "&("
                        : f->kind() == FormulaKind::kOr ? "|("
                                                        : "<->(";
      for (size_t i = 0; i < keys.size(); ++i) {
        out += keys[i];
        if (i + 1 < keys.size()) out += ",";
      }
      return out + ")";
    }
    case FormulaKind::kImplies:
      return "->(" + CanonicalKey(f->children()[0], voc) + "," +
             CanonicalKey(f->children()[1], voc) + ")";
  }
  return "?";
}

namespace {

/// The literal a simplified formula denotes, if it is one.
std::optional<Lit> AsLiteral(const Formula& f) {
  if (f->kind() == FormulaKind::kAtom) return Lit::Pos(f->atom());
  if (f->kind() == FormulaKind::kNot &&
      f->children()[0]->kind() == FormulaKind::kAtom) {
    return Lit::Neg(f->children()[0]->atom());
  }
  return std::nullopt;
}

}  // namespace

CanonicalQuery Canonicalize(const Formula& f, const Vocabulary& voc) {
  CanonicalQuery q;
  q.f = Simplify(f);
  q.key = CanonicalKey(q.f, voc);
  Interpretation atoms(voc.size());
  q.f->CollectAtoms(&atoms);
  q.roots = atoms.TrueAtoms();
  q.lit = AsLiteral(q.f);
  return q;
}

std::vector<Formula> SplitConjuncts(const Formula& f) {
  Formula s = Simplify(f);
  if (s->kind() == FormulaKind::kAnd) {
    return s->children();  // Simplify already flattened nested ∧
  }
  return {s};
}

bool BankIsSound(SemanticsKind kind) {
  // Every 2-valued semantics is characterized by its intended-model set
  // (core/brute_force.h); PDSM answers 3-valued over partial stable
  // models, which the bank's total models cannot reproduce.
  return kind != SemanticsKind::kPdsm;
}

GroupResult EvaluateGroup(const GroupRequest& req) {
  GroupResult out;
  out.answers.assign(req.queries.size(), Trilean::kUnknown);

  std::unique_ptr<Semantics> engine;
  if (req.partition != nullptr && req.kind == SemanticsKind::kCcwa) {
    engine = std::make_unique<CcwaSemantics>(*req.db, *req.partition,
                                             req.opts);
  } else if (req.partition != nullptr && req.kind == SemanticsKind::kEcwa) {
    engine = std::make_unique<EcwaSemantics>(*req.db, *req.partition,
                                             req.opts);
  } else {
    engine = MakeSemantics(req.kind, *req.db, req.opts);
  }
  if (req.budget != nullptr) engine->SetBudget(req.budget);

  // Shared model bank: enumerate the group's intended models once and
  // answer every member query against them. Only trusted when the whole
  // set fit strictly under the cap (a full bank may be truncated) — and
  // only under semantics whose inference is exactly "true in all models".
  bool bank_done = false;
  if (BankIsSound(req.kind) && req.model_bank_cap > 0) {
    const int64_t cap = req.opts.max_models > 0
                            ? std::min(req.model_bank_cap, req.opts.max_models)
                            : req.model_bank_cap;
    Result<std::vector<Interpretation>> models = engine->Models(cap);
    if (models.ok() && static_cast<int64_t>(models->size()) < cap) {
      for (size_t i = 0; i < req.queries.size(); ++i) {
        const Formula& f = req.queries[i]->f;
        bool all = true;
        for (const Interpretation& m : *models) {
          if (!f->Eval(m)) {
            all = false;
            break;
          }
        }
        // An empty bank answers yes vacuously — matching the engines'
        // skeptical convention for model-free databases.
        out.answers[i] = TrileanFromBool(all);
      }
      out.used_bank = true;
      out.bank_models = static_cast<int64_t>(models->size());
      bank_done = true;
    }
    // Budget exhaustion during banking latches the engine interrupt; the
    // fallback below then fails fast per query with sound kUnknowns.
  }

  if (!bank_done) {
    for (size_t i = 0; i < req.queries.size(); ++i) {
      const CanonicalQuery* q = req.queries[i];
      Result<bool> r = q->lit.has_value() ? engine->InfersLiteral(*q->lit)
                                          : engine->InfersFormula(q->f);
      if (r.ok()) {
        out.answers[i] = TrileanFromBool(*r);
      } else if (r.status().IsBudgetExhaustion()) {
        out.answers[i] = Trilean::kUnknown;
      } else {
        if (out.error.ok()) out.error = r.status();
        out.answers[i] = Trilean::kUnknown;
      }
    }
  }

  out.stats = engine->stats();
  out.session_stats = engine->session_stats();
  return out;
}

}  // namespace batch
}  // namespace dd
