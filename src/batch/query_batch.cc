#include "batch/query_batch.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "logic/formula_transform.h"
#include "semantics/ccwa.h"
#include "semantics/ecwa_circ.h"

namespace dd {
namespace batch {

void BatchStats::Add(const BatchStats& o) {
  queries += o.queries;
  unique_queries += o.unique_queries;
  dedup_hits += o.dedup_hits;
  conjunct_splits += o.conjunct_splits;
  disjunct_splits += o.disjunct_splits;
  groups += o.groups;
  bank_groups += o.bank_groups;
  fallback_groups += o.fallback_groups;
  bank_models += o.bank_models;
  unknowns += o.unknowns;
  cache_hits += o.cache_hits;
  cache_misses += o.cache_misses;
  cache_insertions += o.cache_insertions;
  cache_evictions += o.cache_evictions;
  cache_invalidations += o.cache_invalidations;
  bank_store_hits += o.bank_store_hits;
  bank_store_misses += o.bank_store_misses;
  bank_store_insertions += o.bank_store_insertions;
  bank_store_evictions += o.bank_store_evictions;
  bank_store_invalidations += o.bank_store_invalidations;
  bank_store_truncated_rejected += o.bank_store_truncated_rejected;
}

void Publish(const BatchStats& s, obs::MetricsRegistry* reg) {
  reg->Add("dd.batch.queries", s.queries);
  reg->Add("dd.batch.unique_queries", s.unique_queries);
  reg->Add("dd.batch.dedup_hits", s.dedup_hits);
  reg->Add("dd.batch.conjunct_splits", s.conjunct_splits);
  reg->Add("dd.batch.disjunct_splits", s.disjunct_splits);
  reg->Add("dd.batch.groups", s.groups);
  reg->Add("dd.batch.bank_groups", s.bank_groups);
  reg->Add("dd.batch.fallback_groups", s.fallback_groups);
  reg->Add("dd.batch.bank_models", s.bank_models);
  reg->Add("dd.batch.unknowns", s.unknowns);
  reg->Add("dd.cache.hits", s.cache_hits);
  reg->Add("dd.cache.misses", s.cache_misses);
  reg->Add("dd.cache.insertions", s.cache_insertions);
  reg->Add("dd.cache.evictions", s.cache_evictions);
  reg->Add("dd.cache.invalidations", s.cache_invalidations);
  reg->Add("dd.bank.hits", s.bank_store_hits);
  reg->Add("dd.bank.misses", s.bank_store_misses);
  reg->Add("dd.bank.insertions", s.bank_store_insertions);
  reg->Add("dd.bank.evictions", s.bank_store_evictions);
  reg->Add("dd.bank.invalidations", s.bank_store_invalidations);
  reg->Add("dd.bank.truncated_rejected", s.bank_store_truncated_rejected);
}

std::string CanonicalKey(const Formula& f, const Vocabulary& voc) {
  switch (f->kind()) {
    case FormulaKind::kConst:
      return f->const_value() ? "1" : "0";
    case FormulaKind::kAtom:
      return "a(" + voc.Name(f->atom()) + ")";
    case FormulaKind::kNot:
      return "!(" + CanonicalKey(f->children()[0], voc) + ")";
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kIff: {
      // Commutative connectives: child keys in sorted order, so "a & b"
      // and "b & a" share one canonical query.
      std::vector<std::string> keys;
      keys.reserve(f->children().size());
      for (const Formula& c : f->children()) {
        keys.push_back(CanonicalKey(c, voc));
      }
      std::sort(keys.begin(), keys.end());
      std::string out = f->kind() == FormulaKind::kAnd  ? "&("
                        : f->kind() == FormulaKind::kOr ? "|("
                                                        : "<->(";
      for (size_t i = 0; i < keys.size(); ++i) {
        out += keys[i];
        if (i + 1 < keys.size()) out += ",";
      }
      return out + ")";
    }
    case FormulaKind::kImplies:
      return "->(" + CanonicalKey(f->children()[0], voc) + "," +
             CanonicalKey(f->children()[1], voc) + ")";
  }
  return "?";
}

namespace {

/// The literal a simplified formula denotes, if it is one.
std::optional<Lit> AsLiteral(const Formula& f) {
  if (f->kind() == FormulaKind::kAtom) return Lit::Pos(f->atom());
  if (f->kind() == FormulaKind::kNot &&
      f->children()[0]->kind() == FormulaKind::kAtom) {
    return Lit::Neg(f->children()[0]->atom());
  }
  return std::nullopt;
}

}  // namespace

CanonicalQuery Canonicalize(const Formula& f, const Vocabulary& voc) {
  CanonicalQuery q;
  q.f = Simplify(f);
  q.key = CanonicalKey(q.f, voc);
  Interpretation atoms(voc.size());
  q.f->CollectAtoms(&atoms);
  q.roots = atoms.TrueAtoms();
  q.lit = AsLiteral(q.f);
  return q;
}

std::vector<Formula> SplitConjuncts(const Formula& f) {
  Formula s = Simplify(f);
  if (s->kind() == FormulaKind::kAnd) {
    return s->children();  // Simplify already flattened nested ∧
  }
  return {s};
}

std::vector<Formula> SplitDisjuncts(const Formula& f) {
  Formula s = Simplify(f);
  if (s->kind() == FormulaKind::kOr) {
    return s->children();  // Simplify already flattened nested ∨
  }
  return {s};
}

bool BankIsSound(SemanticsKind kind) {
  // Every 2-valued semantics is characterized by its intended-model set
  // (core/brute_force.h); PDSM answers 3-valued over partial stable
  // models, which the bank's total models cannot reproduce.
  return kind != SemanticsKind::kPdsm;
}

bool BraveBankIsSound(SemanticsKind kind) {
  // Same characterization, existential direction: credulous inference is
  // "f true in some intended model" for every 2-valued semantics. PDSM's
  // credulous check runs 3-valued over partial stable models
  // (FindCounterexample of ¬f under Eval3), which the total projections
  // in a bank cannot reproduce — same gate, same reason.
  return kind != SemanticsKind::kPdsm;
}

namespace {

/// Answers every member query from a complete bank: a for-all pass
/// (skeptical) or an exists pass (brave) of polynomial formula
/// evaluations. On an EMPTY bank (a semantics-inconsistent module) the
/// for-all pass answers yes vacuously and the exists pass answers no —
/// matching the engines' conventions for model-free databases.
void AnswerFromBank(const GroupRequest& req, const ModelBank& bank,
                    GroupResult* out) {
  const bool brave = req.mode == BatchMode::kBrave;
  for (size_t i = 0; i < req.queries.size(); ++i) {
    const Formula& f = req.queries[i]->f;
    const Interpretation* found = nullptr;
    for (const Interpretation& m : *bank.models) {
      // The decisive model: satisfying for brave, violating for skeptical.
      if (f->Eval(m) == brave) {
        found = &m;
        break;
      }
    }
    out->answers[i] = TrileanFromBool(brave ? found != nullptr
                                            : found == nullptr);
    if (req.collect_witnesses && found != nullptr) {
      out->witnesses[i] = *found;
    }
  }
}

}  // namespace

GroupResult EvaluateGroup(const GroupRequest& req) {
  GroupResult out;
  out.answers.assign(req.queries.size(), Trilean::kUnknown);
  if (req.collect_witnesses) {
    out.witnesses.assign(req.queries.size(), std::nullopt);
  }
  const bool brave = req.mode == BatchMode::kBrave;
  const bool bank_sound =
      brave ? BraveBankIsSound(req.kind) : BankIsSound(req.kind);

  // A stored complete bank answers the whole group with zero oracle work
  // (and zero budget spend): the expensive enumeration already happened
  // in an earlier batch or ladder rung.
  if (bank_sound && req.bank != nullptr && req.bank->complete) {
    AnswerFromBank(req, *req.bank, &out);
    out.used_bank = true;
    out.bank_from_store = true;
    return out;
  }

  std::unique_ptr<Semantics> engine;
  if (req.partition != nullptr && req.kind == SemanticsKind::kCcwa) {
    engine = std::make_unique<CcwaSemantics>(*req.db, *req.partition,
                                             req.opts);
  } else if (req.partition != nullptr && req.kind == SemanticsKind::kEcwa) {
    engine = std::make_unique<EcwaSemantics>(*req.db, *req.partition,
                                             req.opts);
  } else {
    engine = MakeSemantics(req.kind, *req.db, req.opts);
  }
  if (req.budget != nullptr) engine->SetBudget(req.budget);

  // Shared model bank: enumerate the group's intended models once and
  // answer every member query against them. Asking for cap+1 models and
  // trusting only when at most cap came back PROVES completeness — an
  // enumeration engine may silently stop at its cap (PERF, ICWA) or
  // error past it (CWA family, EGCWA), and either way a result of
  // exactly cap models under a cap-sized request could be truncated,
  // while under a (cap+1)-sized request it cannot be.
  bool bank_done = false;
  if (bank_sound && req.model_bank_cap > 0) {
    const int64_t cap = EffectiveBankCap(req.model_bank_cap, req.opts);
    Result<std::shared_ptr<const std::vector<Interpretation>>> models =
        engine->SharedModels(cap + 1);
    if (models.ok() && static_cast<int64_t>((*models)->size()) <= cap) {
      auto bank = std::make_shared<ModelBank>();
      bank->models = std::move(*models);
      bank->num_vars = bank->models->empty()
                           ? std::numeric_limits<int>::max()
                           : bank->models->front().num_vars();
      bank->complete = true;
      AnswerFromBank(req, *bank, &out);
      out.used_bank = true;
      out.bank_models = static_cast<int64_t>(bank->models->size());
      if (req.export_bank) out.built_bank = std::move(bank);
      bank_done = true;
    }
    // Budget exhaustion during banking latches the engine interrupt; the
    // fallback below then fails fast per query with sound kUnknowns. A
    // model-count overflow (more intended models than the cap) does not
    // latch anything — the fallback answers normally. Neither outcome
    // ever exports a bank.
  }

  if (!bank_done) {
    for (size_t i = 0; i < req.queries.size(); ++i) {
      const CanonicalQuery* q = req.queries[i];
      if (brave) {
        // The engine's own credulous check, witness included: a model
        // violating ¬f is exactly a model satisfying f. Routing through
        // FindCounterexample keeps fallback answers equal to the
        // sequential InfersCredulously entry point by construction
        // (including PDSM's 3-valued reading).
        Result<std::optional<Interpretation>> r =
            engine->FindCounterexample(FormulaNode::MakeNot(q->f));
        if (r.ok()) {
          out.answers[i] = TrileanFromBool(r->has_value());
          if (req.collect_witnesses && r->has_value()) {
            out.witnesses[i] = std::move(**r);
          }
        } else if (r.status().IsBudgetExhaustion()) {
          out.answers[i] = Trilean::kUnknown;
        } else {
          if (out.error.ok()) out.error = r.status();
          out.answers[i] = Trilean::kUnknown;
        }
        continue;
      }
      if (req.collect_witnesses) {
        // Witness-bearing skeptical path: nullopt ⇔ inferred.
        Result<std::optional<Interpretation>> r =
            engine->FindCounterexample(q->f);
        if (r.ok()) {
          out.answers[i] = TrileanFromBool(!r->has_value());
          if (r->has_value()) out.witnesses[i] = std::move(**r);
        } else if (r.status().IsBudgetExhaustion()) {
          out.answers[i] = Trilean::kUnknown;
        } else {
          if (out.error.ok()) out.error = r.status();
          out.answers[i] = Trilean::kUnknown;
        }
        continue;
      }
      Result<bool> r = q->lit.has_value() ? engine->InfersLiteral(*q->lit)
                                          : engine->InfersFormula(q->f);
      if (r.ok()) {
        out.answers[i] = TrileanFromBool(*r);
      } else if (r.status().IsBudgetExhaustion()) {
        out.answers[i] = Trilean::kUnknown;
      } else {
        if (out.error.ok()) out.error = r.status();
        out.answers[i] = Trilean::kUnknown;
      }
    }
  }

  out.stats = engine->stats();
  out.session_stats = engine->session_stats();
  return out;
}

}  // namespace batch
}  // namespace dd
