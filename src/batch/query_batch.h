// Batched query evaluation: cross-query work sharing over one database.
//
// The paper prices every skeptical query at an NP/Σ₂ᵖ oracle call; the
// practical lever for serving many queries against the same disjunctive
// database is amortization. A batch is processed as a pipeline
// (core/Reasoner::AnswerBatch orchestrates it):
//
//   1. canonicalize — every literal/formula query is simplified to a
//      normal form with an order-independent canonical key; top-level
//      conjunctions split into their conjuncts (skeptical inference
//      distributes over ∧ under every implemented semantics, including
//      PDSM's 3-valued reading), which lets batch members subsume each
//      other's parts;
//   2. dedupe — queries with equal canonical keys are answered once;
//   3. cache — definite answers keyed on (database fingerprint, semantics,
//      canonical key) are served from batch/answer_cache.h;
//   4. group — survivors are grouped by relevance module
//      (batch/batch_planner.h, reusing analysis/slicer under the same
//      per-semantics soundness gates as single-query dispatch);
//   5. evaluate — each group runs once on its own engine: a shared
//      minimal-model bank answers every member query when the group's
//      intended-model set fits under the bank cap, else the group falls
//      back to per-query engine calls (still sharing the engine's session,
//      memo and projection streams). Complete banks are reused across
//      batches via batch/model_bank_store.h. Groups run in parallel under
//      one shared Budget; exhaustion yields sound kUnknown answers, which
//      are NEVER cached.
//
// The pipeline runs in one of two modes (BatchMode):
//   * kSkeptical — "f true in EVERY intended model". Top-level ∧ splits;
//     a group bank answers by a for-all pass.
//   * kBrave — "f true in SOME intended model" (InfersCredulously).
//     Brave inference distributes over ∨, not ∧, so top-level ∨ splits
//     and answers recompose by Kleene disjunction; a group bank answers
//     by an exists pass over the SAME models a skeptical batch would
//     bank. Per-query fallback goes through the engine's own
//     FindCounterexample(¬f), so fallback answers equal the sequential
//     InfersCredulously entry point by construction.
//
// Soundness gates (docs/BATCHING.md):
//   * model bank: requires InfersFormula(f) == "f true in every Models()
//     entry" (skeptical) resp. InfersCredulously(f) == "f true in some
//     Models() entry" (brave), which holds for every 2-valued semantics
//     (core/brute_force.h pins the characterizations) but NOT for PDSM's
//     3-valued evaluation — BankIsSound / BraveBankIsSound gate it off
//     there;
//   * bank completeness: the enumeration asks for cap+1 models and the
//     bank is trusted only when at most cap came back — which proves the
//     set is complete even when it has exactly cap models (trusting a
//     possibly-truncated bank could flip answers);
//   * grouping: module slicing applies only where SliceIsSound allows
//     (off for CWA/PDSM and custom CCWA/ECWA partitions — those run as
//     one whole-database group). SliceIsSound certifies a bijection
//     between the slice's and the whole database's intended models over
//     the module's atoms, which preserves both the for-all and the
//     exists pass, so the same gate covers both modes.
#ifndef DD_BATCH_QUERY_BATCH_H_
#define DD_BATCH_QUERY_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "batch/answer_cache.h"
#include "batch/model_bank_store.h"
#include "logic/database.h"
#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "minimal/pqz.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "semantics/semantics.h"
#include "util/budget.h"
#include "util/status.h"

namespace dd {
namespace batch {

/// One query of a batch, by text. Literal queries ("a", "not a") take the
/// cheaper InfersLiteral fallback path; formula queries parse the full
/// formula language.
struct BatchQuery {
  std::string text;
  bool is_literal = false;
};

/// Which direction a batch answers (see the header comment): skeptical
/// "true in every intended model" or brave/credulous "true in some".
enum class BatchMode {
  kSkeptical,
  kBrave,
};

/// Per-batch knobs. The budget fields mirror core/QueryOptions but cover
/// the WHOLE batch: one shared Budget is installed across every group.
struct BatchOptions {
  /// Worker threads for parallel group evaluation; answers are identical
  /// for every value (index-slot merging). <= 0 uses
  /// ThreadPool::DefaultThreads().
  int num_threads = 1;

  /// Cap on models enumerated into a group's shared model bank; a group
  /// whose intended-model set does not fit falls back to per-query
  /// evaluation. <= 0 disables banks entirely.
  int64_t model_bank_cap = 4096;

  /// Use the reasoner-owned answer cache (created on first use with
  /// `cache_capacity` entries). `cache` overrides with an external
  /// instance, e.g. one shared across reasoners by a server.
  bool use_answer_cache = true;
  int64_t cache_capacity = 4096;
  AnswerCache* cache = nullptr;  ///< not owned; may be null

  /// Use the reasoner-owned model-bank store (created on first use with
  /// `bank_store_capacity` banks), so complete group banks are reused by
  /// later non-identical batches. `bank_store` overrides with an external
  /// instance. Automatically disabled for reasoners with a custom
  /// CCWA/ECWA partition (the store key cannot see partitions) and when
  /// model_bank_cap <= 0.
  bool use_bank_store = true;
  int64_t bank_store_capacity = 32;
  ModelBankStore* bank_store = nullptr;  ///< not owned; may be null

  /// Collect per-query witness models: for a brave kYes the intended
  /// model satisfying the query; for a skeptical kNo the counterexample
  /// violating it. Disables answer-cache reads for the batch (hits carry
  /// no witness), so every answer is computed with its certificate.
  bool collect_witnesses = false;

  /// Whole-batch budget (see util/budget.h); -1 / null = unlimited.
  int64_t deadline_ms = -1;
  int64_t conflict_budget = -1;
  int64_t oracle_call_budget = -1;
  std::shared_ptr<CancelToken> cancel;

  /// Optional per-batch trace override (defaults to the reasoner trace).
  obs::TraceContext* trace = nullptr;
};

/// Accounting for one batch (and, via Add, for a reasoner's lifetime).
/// Published under dd.batch.* / dd.cache.* (docs/OBSERVABILITY.md).
struct BatchStats {
  int64_t queries = 0;          ///< input queries
  int64_t unique_queries = 0;   ///< canonical queries after split + dedupe
  int64_t dedup_hits = 0;       ///< duplicate canonical queries folded
  int64_t conjunct_splits = 0;  ///< inputs split at a top-level conjunction
  int64_t disjunct_splits = 0;  ///< brave inputs split at a top-level ∨
  int64_t groups = 0;           ///< planned evaluation groups
  int64_t bank_groups = 0;      ///< groups answered by a shared model bank
  int64_t fallback_groups = 0;  ///< groups answered per query
  int64_t bank_models = 0;      ///< models enumerated into banks (built
                                ///< this batch; store hits add nothing)
  int64_t unknowns = 0;         ///< kUnknown answers returned (exhaustion)
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_insertions = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;
  /// Model-bank store deltas (dd.bank.*): cross-batch bank reuse.
  int64_t bank_store_hits = 0;
  int64_t bank_store_misses = 0;
  int64_t bank_store_insertions = 0;
  int64_t bank_store_evictions = 0;
  int64_t bank_store_invalidations = 0;
  int64_t bank_store_truncated_rejected = 0;

  void Add(const BatchStats& o);
};

/// Folds the counters into `reg` under the canonical dd.batch.* /
/// dd.cache.* names. Monotonic registry: publish once (or deltas).
void Publish(const BatchStats& s, obs::MetricsRegistry* reg);

/// Answers for one batch, in input order (answers[i] belongs to
/// queries[i] regardless of dedup/grouping/thread count).
struct BatchAnswer {
  std::vector<Trilean> answers;
  /// With BatchOptions::collect_witnesses: witnesses[i] is the certifying
  /// intended model for answers[i] — a model satisfying the query for a
  /// brave kYes, a counterexample violating it for a skeptical kNo —
  /// and nullopt for the verdicts that have no certificate (skeptical
  /// kYes, brave kNo, kUnknown). Empty when witnesses are not collected.
  std::vector<std::optional<Interpretation>> witnesses;
  BatchStats stats;
};

/// A canonicalized query: the simplified formula, its order-independent
/// key (atom names, sorted ∧/∨ children), its atom roots, and — when the
/// normal form is a bare literal — that literal for the cheaper fallback.
struct CanonicalQuery {
  Formula f;
  std::string key;
  std::vector<Var> roots;
  std::optional<Lit> lit;
};

/// The canonical key of `f` (assumed simplified): a serialization that is
/// invariant under child order of ∧/∨/↔ and under vocabulary interning
/// order (atoms render as names).
std::string CanonicalKey(const Formula& f, const Vocabulary& voc);

/// Simplifies and keys one query formula.
CanonicalQuery Canonicalize(const Formula& f, const Vocabulary& voc);

/// The top-level conjuncts of Simplify(f) (the formula itself when it is
/// not a conjunction). Skeptical inference distributes over ∧: DB |~ G∧H
/// iff DB |~ G and DB |~ H, because both sides quantify over the same
/// intended-model set (for PDSM, min-valuation over partial stable models
/// distributes the same way).
std::vector<Formula> SplitConjuncts(const Formula& f);

/// The top-level disjuncts of Simplify(f) (the formula itself when it is
/// not a disjunction). Brave inference distributes over ∨: DB |~brave G∨H
/// iff DB |~brave G or DB |~brave H — a model satisfies the disjunction
/// iff it satisfies a disjunct, and ∃ commutes with ∨ (for PDSM the
/// 3-valued reading distributes the same way: ¬(G∨H) is not-true in a
/// partial model iff ¬G or ¬H is).
std::vector<Formula> SplitDisjuncts(const Formula& f);

/// True when the shared model bank answers queries exactly like the
/// engine: every 2-valued semantics infers f iff f holds in all Models().
/// PDSM evaluates queries 3-valued over partial stable models, which
/// Models() (their total projections) cannot reproduce.
bool BankIsSound(SemanticsKind kind);

/// The brave twin: every 2-valued semantics infers f credulously iff f
/// holds in SOME Models() entry. False for PDSM for the same 3-valued
/// reason — its credulous check runs over partial stable models.
bool BraveBankIsSound(SemanticsKind kind);

/// The enumeration cap a group bank actually runs under: the batch's
/// model_bank_cap clamped by the engine options' max_models. One
/// definition shared by EvaluateGroup and the bank-store key, so a store
/// hit is exactly the bank the group would have rebuilt.
inline int64_t EffectiveBankCap(int64_t model_bank_cap,
                                const SemanticsOptions& opts) {
  return opts.max_models > 0 ? std::min(model_bank_cap, opts.max_models)
                             : model_bank_cap;
}

/// One evaluation group: a database restriction plus the member queries.
struct GroupRequest {
  const Database* db = nullptr;  ///< whole db or a module sub-database
  SemanticsKind kind = SemanticsKind::kGcwa;
  BatchMode mode = BatchMode::kSkeptical;
  SemanticsOptions opts;              ///< engine tuning (trace-free)
  const Partition* partition = nullptr;  ///< custom CCWA/ECWA partition
  std::vector<const CanonicalQuery*> queries;
  std::shared_ptr<Budget> budget;  ///< shared whole-batch budget
  int64_t model_bank_cap = 4096;
  /// A stored complete bank for this group (batch/model_bank_store.h):
  /// when set (and the mode's bank gate allows), the group is answered
  /// entirely from it — no engine, no oracle work, no budget spend.
  std::shared_ptr<const ModelBank> bank;
  /// Hand a freshly built complete bank back in GroupResult::built_bank
  /// so the caller can store it (set on store misses).
  bool export_bank = false;
  bool collect_witnesses = false;
};

/// One group's outcome. `answers` parallels GroupRequest::queries;
/// exhaustion shows up as kUnknown entries, hard failures (e.g. a
/// semantics precondition) land in `error` with kUnknown placeholders.
struct GroupResult {
  std::vector<Trilean> answers;
  Status error;  ///< first non-budget failure, OK otherwise
  MinimalStats stats;
  oracle::SessionStats session_stats;
  bool used_bank = false;
  bool bank_from_store = false;  ///< answered from GroupRequest::bank
  int64_t bank_models = 0;       ///< models enumerated (0 on store hits)
  /// The complete bank built this evaluation, for the caller's store
  /// (only with GroupRequest::export_bank, only when provably complete —
  /// a truncated enumeration never produces one).
  std::shared_ptr<const ModelBank> built_bank;
  /// Parallel to `answers` with GroupRequest::collect_witnesses (see
  /// BatchAnswer::witnesses).
  std::vector<std::optional<Interpretation>> witnesses;
};

/// Evaluates one group on a fresh engine (bank first, per-query fallback).
/// Self-contained and thread-safe across distinct groups: the only shared
/// state is the thread-safe Budget.
GroupResult EvaluateGroup(const GroupRequest& req);

}  // namespace batch
}  // namespace dd

#endif  // DD_BATCH_QUERY_BATCH_H_
