// Batched query evaluation: cross-query work sharing over one database.
//
// The paper prices every skeptical query at an NP/Σ₂ᵖ oracle call; the
// practical lever for serving many queries against the same disjunctive
// database is amortization. A batch is processed as a pipeline
// (core/Reasoner::AnswerBatch orchestrates it):
//
//   1. canonicalize — every literal/formula query is simplified to a
//      normal form with an order-independent canonical key; top-level
//      conjunctions split into their conjuncts (skeptical inference
//      distributes over ∧ under every implemented semantics, including
//      PDSM's 3-valued reading), which lets batch members subsume each
//      other's parts;
//   2. dedupe — queries with equal canonical keys are answered once;
//   3. cache — definite answers keyed on (database fingerprint, semantics,
//      canonical key) are served from batch/answer_cache.h;
//   4. group — survivors are grouped by relevance module
//      (batch/batch_planner.h, reusing analysis/slicer under the same
//      per-semantics soundness gates as single-query dispatch);
//   5. evaluate — each group runs once on its own engine: a shared
//      minimal-model bank answers every member query when the group's
//      intended-model set fits under the bank cap, else the group falls
//      back to per-query engine calls (still sharing the engine's session,
//      memo and projection streams). Groups run in parallel under one
//      shared Budget; exhaustion yields sound kUnknown answers, which are
//      NEVER cached.
//
// Soundness gates (docs/BATCHING.md):
//   * model bank: requires InfersFormula(f) == "f true in every Models()
//     entry", which holds for every 2-valued semantics (core/brute_force.h
//     pins the characterizations) but NOT for PDSM's 3-valued evaluation —
//     BankIsSound gates it off there;
//   * bank completeness: the bank is only trusted when Models() returned
//     strictly fewer models than its cap (a full bank may be truncated);
//   * grouping: module slicing applies only where SliceIsSound allows
//     (off for CWA/PDSM and custom CCWA/ECWA partitions — those run as
//     one whole-database group).
#ifndef DD_BATCH_QUERY_BATCH_H_
#define DD_BATCH_QUERY_BATCH_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "batch/answer_cache.h"
#include "logic/database.h"
#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "minimal/pqz.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "semantics/semantics.h"
#include "util/budget.h"
#include "util/status.h"

namespace dd {
namespace batch {

/// One query of a batch, by text. Literal queries ("a", "not a") take the
/// cheaper InfersLiteral fallback path; formula queries parse the full
/// formula language.
struct BatchQuery {
  std::string text;
  bool is_literal = false;
};

/// Per-batch knobs. The budget fields mirror core/QueryOptions but cover
/// the WHOLE batch: one shared Budget is installed across every group.
struct BatchOptions {
  /// Worker threads for parallel group evaluation; answers are identical
  /// for every value (index-slot merging). <= 0 uses
  /// ThreadPool::DefaultThreads().
  int num_threads = 1;

  /// Cap on models enumerated into a group's shared model bank; a group
  /// whose intended-model set does not fit falls back to per-query
  /// evaluation. <= 0 disables banks entirely.
  int64_t model_bank_cap = 4096;

  /// Use the reasoner-owned answer cache (created on first use with
  /// `cache_capacity` entries). `cache` overrides with an external
  /// instance, e.g. one shared across reasoners by a server.
  bool use_answer_cache = true;
  int64_t cache_capacity = 4096;
  AnswerCache* cache = nullptr;  ///< not owned; may be null

  /// Whole-batch budget (see util/budget.h); -1 / null = unlimited.
  int64_t deadline_ms = -1;
  int64_t conflict_budget = -1;
  int64_t oracle_call_budget = -1;
  std::shared_ptr<CancelToken> cancel;

  /// Optional per-batch trace override (defaults to the reasoner trace).
  obs::TraceContext* trace = nullptr;
};

/// Accounting for one batch (and, via Add, for a reasoner's lifetime).
/// Published under dd.batch.* / dd.cache.* (docs/OBSERVABILITY.md).
struct BatchStats {
  int64_t queries = 0;          ///< input queries
  int64_t unique_queries = 0;   ///< canonical queries after split + dedupe
  int64_t dedup_hits = 0;       ///< duplicate canonical queries folded
  int64_t conjunct_splits = 0;  ///< inputs split at a top-level conjunction
  int64_t groups = 0;           ///< planned evaluation groups
  int64_t bank_groups = 0;      ///< groups answered by a shared model bank
  int64_t fallback_groups = 0;  ///< groups answered per query
  int64_t bank_models = 0;      ///< models enumerated into banks
  int64_t unknowns = 0;         ///< kUnknown answers returned (exhaustion)
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_insertions = 0;
  int64_t cache_evictions = 0;
  int64_t cache_invalidations = 0;

  void Add(const BatchStats& o);
};

/// Folds the counters into `reg` under the canonical dd.batch.* /
/// dd.cache.* names. Monotonic registry: publish once (or deltas).
void Publish(const BatchStats& s, obs::MetricsRegistry* reg);

/// Answers for one batch, in input order (answers[i] belongs to
/// queries[i] regardless of dedup/grouping/thread count).
struct BatchAnswer {
  std::vector<Trilean> answers;
  BatchStats stats;
};

/// A canonicalized query: the simplified formula, its order-independent
/// key (atom names, sorted ∧/∨ children), its atom roots, and — when the
/// normal form is a bare literal — that literal for the cheaper fallback.
struct CanonicalQuery {
  Formula f;
  std::string key;
  std::vector<Var> roots;
  std::optional<Lit> lit;
};

/// The canonical key of `f` (assumed simplified): a serialization that is
/// invariant under child order of ∧/∨/↔ and under vocabulary interning
/// order (atoms render as names).
std::string CanonicalKey(const Formula& f, const Vocabulary& voc);

/// Simplifies and keys one query formula.
CanonicalQuery Canonicalize(const Formula& f, const Vocabulary& voc);

/// The top-level conjuncts of Simplify(f) (the formula itself when it is
/// not a conjunction). Skeptical inference distributes over ∧: DB |~ G∧H
/// iff DB |~ G and DB |~ H, because both sides quantify over the same
/// intended-model set (for PDSM, min-valuation over partial stable models
/// distributes the same way).
std::vector<Formula> SplitConjuncts(const Formula& f);

/// True when the shared model bank answers queries exactly like the
/// engine: every 2-valued semantics infers f iff f holds in all Models().
/// PDSM evaluates queries 3-valued over partial stable models, which
/// Models() (their total projections) cannot reproduce.
bool BankIsSound(SemanticsKind kind);

/// One evaluation group: a database restriction plus the member queries.
struct GroupRequest {
  const Database* db = nullptr;  ///< whole db or a module sub-database
  SemanticsKind kind = SemanticsKind::kGcwa;
  SemanticsOptions opts;              ///< engine tuning (trace-free)
  const Partition* partition = nullptr;  ///< custom CCWA/ECWA partition
  std::vector<const CanonicalQuery*> queries;
  std::shared_ptr<Budget> budget;  ///< shared whole-batch budget
  int64_t model_bank_cap = 4096;
};

/// One group's outcome. `answers` parallels GroupRequest::queries;
/// exhaustion shows up as kUnknown entries, hard failures (e.g. a
/// semantics precondition) land in `error` with kUnknown placeholders.
struct GroupResult {
  std::vector<Trilean> answers;
  Status error;  ///< first non-budget failure, OK otherwise
  MinimalStats stats;
  oracle::SessionStats session_stats;
  bool used_bank = false;
  int64_t bank_models = 0;
};

/// Evaluates one group on a fresh engine (bank first, per-query fallback).
/// Self-contained and thread-safe across distinct groups: the only shared
/// state is the thread-safe Budget.
GroupResult EvaluateGroup(const GroupRequest& req);

}  // namespace batch
}  // namespace dd

#endif  // DD_BATCH_QUERY_BATCH_H_
