#include "core/brute_force.h"

#include <algorithm>
#include <functional>
#include <set>

#include "strat/priority.h"
#include "strat/stratifier.h"
#include "util/macros.h"

namespace dd {
namespace brute {

namespace {

// Runs `fn` over every interpretation of [0, n) as a bitmask.
template <typename Fn>
void ForEachInterpretation(int n, Fn fn) {
  DD_CHECK(n <= kMaxVars);
  const uint64_t count = uint64_t{1} << n;
  for (uint64_t bits = 0; bits < count; ++bits) {
    Interpretation i(n);
    for (int v = 0; v < n; ++v) {
      if ((bits >> v) & 1) i.Insert(static_cast<Var>(v));
    }
    fn(i);
  }
}

}  // namespace

std::vector<Interpretation> AllModels(const Database& db) {
  std::vector<Interpretation> out;
  ForEachInterpretation(db.num_vars(), [&](const Interpretation& i) {
    if (db.Satisfies(i)) out.push_back(i);
  });
  return out;
}

std::vector<Interpretation> MinimalModels(const Database& db) {
  std::vector<Interpretation> models = AllModels(db);
  std::vector<Interpretation> out;
  for (const auto& m : models) {
    bool minimal = true;
    for (const auto& n : models) {
      if (n.StrictSubsetOf(m)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(m);
  }
  return out;
}

std::vector<Interpretation> PqzMinimalModels(const Database& db,
                                             const Partition& pqz) {
  std::vector<Interpretation> models = AllModels(db);
  std::vector<Interpretation> out;
  for (const auto& m : models) {
    bool minimal = true;
    for (const auto& n : models) {
      // n <_{P;Z} m : equal on Q, strictly below on P.
      if (n.EqualOn(m, pqz.q) && n.SubsetOfOn(m, pqz.p) &&
          !m.SubsetOfOn(n, pqz.p)) {
        minimal = false;
        break;
      }
    }
    if (minimal) out.push_back(m);
  }
  return out;
}

std::vector<Interpretation> GcwaModels(const Database& db) {
  return CcwaModels(db, Partition::MinimizeAll(db.num_vars()));
}

std::vector<Interpretation> CcwaModels(const Database& db,
                                       const Partition& pqz) {
  std::vector<Interpretation> mins = PqzMinimalModels(db, pqz);
  Interpretation free(db.num_vars());
  for (const auto& m : mins) {
    for (Var v : m.TrueAtoms()) free.Insert(v);
  }
  std::vector<Interpretation> out;
  for (const auto& m : AllModels(db)) {
    bool ok = true;
    for (Var v = 0; v < db.num_vars(); ++v) {
      if (pqz.p.Contains(v) && !free.Contains(v) && m.Contains(v)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(m);
  }
  return out;
}

std::vector<Interpretation> DdrModels(const Database& db) {
  DD_CHECK(!db.HasNegation());
  // T_DB↑ω by saturation over *all* derivable disjuncts (exact dedupe, no
  // subsumption), straight from the definition.
  std::set<std::vector<Var>> disjuncts;
  auto insert = [&](Interpretation d) {
    disjuncts.insert(d.TrueAtoms());
  };
  for (const Clause& c : db.clauses()) {
    if (c.is_integrity() || !c.pos_body().empty()) continue;
    insert(Interpretation::FromAtoms(db.num_vars(), c.heads()));
  }
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::vector<Var>> snapshot(disjuncts.begin(),
                                           disjuncts.end());
    for (const Clause& c : db.clauses()) {
      if (c.is_integrity() || c.pos_body().empty()) continue;
      // All ways of covering each body atom by a derivable disjunct.
      std::vector<size_t> pick(c.pos_body().size(), 0);
      std::vector<std::vector<const std::vector<Var>*>> covers(
          c.pos_body().size());
      bool feasible = true;
      for (size_t j = 0; j < c.pos_body().size(); ++j) {
        for (const auto& d : snapshot) {
          if (std::find(d.begin(), d.end(), c.pos_body()[j]) != d.end()) {
            covers[j].push_back(&d);
          }
        }
        if (covers[j].empty()) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      // Odometer over the covers.
      for (;;) {
        Interpretation cand =
            Interpretation::FromAtoms(db.num_vars(), c.heads());
        for (size_t j = 0; j < covers.size(); ++j) {
          for (Var v : *covers[j][pick[j]]) {
            if (v != c.pos_body()[j]) cand.Insert(v);
          }
        }
        auto atoms = cand.TrueAtoms();
        if (disjuncts.insert(atoms).second) changed = true;
        size_t j = 0;
        for (; j < pick.size(); ++j) {
          if (++pick[j] < covers[j].size()) break;
          pick[j] = 0;
        }
        if (j == pick.size()) break;
      }
    }
  }
  Interpretation occurs(db.num_vars());
  for (const auto& d : disjuncts) {
    for (Var v : d) occurs.Insert(v);
  }
  std::vector<Interpretation> out;
  for (const auto& m : AllModels(db)) {
    bool ok = true;
    for (Var v : m.TrueAtoms()) {
      if (!occurs.Contains(v)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(m);
  }
  return out;
}

std::vector<Interpretation> PossibleModels(const Database& db) {
  DD_CHECK(!db.HasNegation());
  std::vector<const Clause*> rules, constraints;
  for (const Clause& c : db.clauses()) {
    (c.is_integrity() ? constraints : rules).push_back(&c);
  }
  std::set<Interpretation> found;
  // Recursive split choice.
  std::vector<std::vector<Var>> chosen(rules.size());
  std::function<void(size_t)> rec = [&](size_t i) {
    if (i == rules.size()) {
      // Least model by naive iteration.
      Interpretation lm(db.num_vars());
      bool grew = true;
      while (grew) {
        grew = false;
        for (size_t r = 0; r < rules.size(); ++r) {
          bool body_true = true;
          for (Var b : rules[r]->pos_body()) {
            if (!lm.Contains(b)) {
              body_true = false;
              break;
            }
          }
          if (!body_true) continue;
          for (Var h : chosen[r]) {
            if (!lm.Contains(h)) {
              lm.Insert(h);
              grew = true;
            }
          }
        }
      }
      for (const Clause* ic : constraints) {
        if (!ic->SatisfiedBy(lm)) return;
      }
      found.insert(lm);
      return;
    }
    const auto& heads = rules[i]->heads();
    DD_CHECK(heads.size() <= 20);
    for (uint32_t mask = 1; mask < (1u << heads.size()); ++mask) {
      chosen[i].clear();
      for (size_t h = 0; h < heads.size(); ++h) {
        if (mask & (1u << h)) chosen[i].push_back(heads[h]);
      }
      rec(i + 1);
    }
  };
  rec(0);
  return std::vector<Interpretation>(found.begin(), found.end());
}

std::vector<Interpretation> PwsModels(const Database& db) {
  std::vector<Interpretation> pms = PossibleModels(db);
  Interpretation occurs(db.num_vars());
  for (const auto& m : pms) {
    for (Var v : m.TrueAtoms()) occurs.Insert(v);
  }
  std::vector<Interpretation> out;
  for (const auto& m : AllModels(db)) {
    bool ok = true;
    for (Var v : m.TrueAtoms()) {
      if (!occurs.Contains(v)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(m);
  }
  return out;
}

bool Preferable(const Database& db, const Interpretation& n,
                const Interpretation& m) {
  if (n == m) return false;
  PriorityRelation prio(db);
  for (Var x = 0; x < db.num_vars(); ++x) {
    if (!n.Contains(x) || m.Contains(x)) continue;  // x ∈ n∖m only
    bool dominated = false;
    for (Var y = 0; y < db.num_vars(); ++y) {
      if (m.Contains(y) && !n.Contains(y) && prio.Less(x, y)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) return false;
  }
  return true;
}

std::vector<Interpretation> PerfectModels(const Database& db) {
  std::vector<Interpretation> models = AllModels(db);
  PriorityRelation prio(db);
  std::vector<Interpretation> out;
  for (const auto& m : models) {
    bool perfect = true;
    for (const auto& n : models) {
      if (n == m) continue;
      bool pref = true;
      for (Var x = 0; x < db.num_vars() && pref; ++x) {
        if (!n.Contains(x) || m.Contains(x)) continue;
        bool dominated = false;
        for (Var y : prio.StrictlyAbove(x).TrueAtoms()) {
          if (m.Contains(y) && !n.Contains(y)) {
            dominated = true;
            break;
          }
        }
        if (!dominated) pref = false;
      }
      if (pref) {
        perfect = false;
        break;
      }
    }
    if (perfect) out.push_back(m);
  }
  return out;
}

std::vector<Interpretation> IcwaModels(const Database& db) {
  auto strat = Stratify(db);
  DD_CHECK(strat.ok());
  Database pos = db.Positivize();
  std::vector<Interpretation> out;
  std::vector<Interpretation> models = AllModels(pos);
  for (const auto& m : models) {
    bool ok = true;
    for (int i = 0; i < strat->num_strata && ok; ++i) {
      Partition p;
      p.p = Interpretation(db.num_vars());
      p.q = Interpretation(db.num_vars());
      p.z = Interpretation(db.num_vars());
      for (Var v = 0; v < db.num_vars(); ++v) {
        int lv = strat->atom_level[static_cast<size_t>(v)];
        if (lv == i) {
          p.p.Insert(v);
        } else if (lv < i) {
          p.q.Insert(v);
        } else {
          p.z.Insert(v);
        }
      }
      for (const auto& n : models) {
        if (n.EqualOn(m, p.q) && n.SubsetOfOn(m, p.p) &&
            !m.SubsetOfOn(n, p.p)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) out.push_back(m);
  }
  return out;
}

std::vector<Interpretation> StableModels(const Database& db) {
  std::vector<Interpretation> out;
  ForEachInterpretation(db.num_vars(), [&](const Interpretation& m) {
    if (!db.Satisfies(m)) return;
    Database reduct = db.GlReduct(m);
    // m minimal model of the reduct?
    if (!reduct.Satisfies(m)) return;
    bool minimal = true;
    ForEachInterpretation(db.num_vars(), [&](const Interpretation& n) {
      if (minimal && n.StrictSubsetOf(m) && reduct.Satisfies(n)) {
        minimal = false;
      }
    });
    if (minimal) out.push_back(m);
  });
  return out;
}

namespace {

// Runs `fn` over every 3-valued interpretation.
template <typename Fn>
void ForEachPartial(int n, Fn fn) {
  DD_CHECK(n <= kMaxVars3);
  uint64_t count = 1;
  for (int i = 0; i < n; ++i) count *= 3;
  for (uint64_t code = 0; code < count; ++code) {
    PartialInterpretation i(n);
    uint64_t c = code;
    for (int v = 0; v < n; ++v) {
      i.SetValue(static_cast<Var>(v), static_cast<TruthValue>(c % 3));
      c /= 3;
    }
    fn(i);
  }
}

// 3-valued satisfaction of the reduct DB^I by J (negative literals take
// their constant value from I).
bool SatisfiesReduct3(const Database& db, const PartialInterpretation& i,
                      const PartialInterpretation& j) {
  for (const Clause& c : db.clauses()) {
    TruthValue body = TruthValue::kTrue;
    for (Var b : c.pos_body()) body = std::min(body, j.Value(b));
    for (Var neg : c.neg_body()) body = std::min(body, Negate(i.Value(neg)));
    TruthValue head = TruthValue::kFalse;
    for (Var h : c.heads()) head = std::max(head, j.Value(h));
    if (!(body <= head)) return false;
  }
  return true;
}

}  // namespace

std::vector<PartialInterpretation> PartialStableModels(const Database& db) {
  std::vector<PartialInterpretation> out;
  ForEachPartial(db.num_vars(), [&](const PartialInterpretation& i) {
    if (!SatisfiesReduct3(db, i, i)) return;
    bool minimal = true;
    ForEachPartial(db.num_vars(), [&](const PartialInterpretation& j) {
      if (minimal && j.TruthLt(i) && SatisfiesReduct3(db, i, j)) {
        minimal = false;
      }
    });
    if (minimal) out.push_back(i);
  });
  return out;
}

bool Infers(const std::vector<Interpretation>& models, const Formula& f) {
  for (const auto& m : models) {
    if (!f->Eval(m)) return false;
  }
  return true;
}

}  // namespace brute
}  // namespace dd
