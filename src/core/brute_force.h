// Definitional reference implementations of every semantics by exhaustive
// enumeration (2^n interpretations, 3^n for PDSM).
//
// This module is the ground truth of the test suite: each oracle-based
// implementation is property-tested against it on thousands of randomized
// small databases. It deliberately shares no code with the production
// engines — satisfaction loops, subset checks, reducts and preference
// orders are all re-derived straight from the definitions in the paper.
#ifndef DD_CORE_BRUTE_FORCE_H_
#define DD_CORE_BRUTE_FORCE_H_

#include <vector>

#include "logic/database.h"
#include "logic/formula.h"
#include "logic/interpretation.h"
#include "logic/partial_interpretation.h"
#include "minimal/pqz.h"

namespace dd {
namespace brute {

/// Hard variable-count limit for the 2^n loops (checked with DD_CHECK:
/// exceeding it is a programming error in a test, not a runtime condition).
inline constexpr int kMaxVars = 24;
/// Limit for the 3^n loops.
inline constexpr int kMaxVars3 = 13;

/// All classical models.
std::vector<Interpretation> AllModels(const Database& db);

/// All subset-minimal models.
std::vector<Interpretation> MinimalModels(const Database& db);

/// All <P;Z>-minimal models (the preorder compares P-parts under equal
/// Q-parts).
std::vector<Interpretation> PqzMinimalModels(const Database& db,
                                             const Partition& pqz);

/// GCWA model set: models satisfying ¬x for every atom false in all
/// minimal models.
std::vector<Interpretation> GcwaModels(const Database& db);

/// CCWA model set for a partition.
std::vector<Interpretation> CcwaModels(const Database& db,
                                       const Partition& pqz);

/// DDR model set: T_DB↑ω computed by brute saturation of derivable
/// disjuncts (no subsumption shortcuts); ¬x added for absent atoms.
/// Requires a deductive database.
std::vector<Interpretation> DdrModels(const Database& db);

/// All possible models (split enumeration straight from the definition).
/// Requires a deductive database.
std::vector<Interpretation> PossibleModels(const Database& db);

/// PWS model set: models of DB plus ¬x for atoms in no possible model.
std::vector<Interpretation> PwsModels(const Database& db);

/// Is `n` preferable to `m` under the priority relation (checked literally:
/// every x ∈ n∖m dominated by some y ∈ m∖n with x < y)?
bool Preferable(const Database& db, const Interpretation& n,
                const Interpretation& m);

/// All perfect models (models with no preferable model).
std::vector<Interpretation> PerfectModels(const Database& db);

/// All ICWA models for the database's canonical stratification.
std::vector<Interpretation> IcwaModels(const Database& db);

/// All disjunctive stable models (GL-reduct recomputed per candidate).
std::vector<Interpretation> StableModels(const Database& db);

/// All partial stable models (3^n enumeration, pairwise truth-minimality).
std::vector<PartialInterpretation> PartialStableModels(const Database& db);

/// Skeptical inference over a model list.
bool Infers(const std::vector<Interpretation>& models, const Formula& f);

}  // namespace brute
}  // namespace dd

#endif  // DD_CORE_BRUTE_FORCE_H_
