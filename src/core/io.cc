#include "core/io.h"

#include <fstream>
#include <sstream>

#include "logic/parser.h"
#include "logic/printer.h"

namespace dd {

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::Internal("read error on '" + path + "'");
  return buf.str();
}

Result<Database> LoadDatabaseFile(const std::string& path) {
  DD_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
  return ParseDatabase(text);
}

Status SaveDatabaseFile(const Database& db, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  out << "% " << DatabaseSummary(db) << "\n";
  out << db.ToString();
  if (!out.good()) return Status::Internal("write error on '" + path + "'");
  return Status::OK();
}

}  // namespace dd
