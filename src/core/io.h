// File I/O for databases and first-order programs.
#ifndef DD_CORE_IO_H_
#define DD_CORE_IO_H_

#include <string>

#include "logic/database.h"
#include "util/status.h"

namespace dd {

/// Reads a whole file into a string.
Result<std::string> ReadFileToString(const std::string& path);

/// Parses a propositional database from a file.
Result<Database> LoadDatabaseFile(const std::string& path);

/// Writes the database in the library's program syntax; the result parses
/// back to an equivalent database.
Status SaveDatabaseFile(const Database& db, const std::string& path);

}  // namespace dd

#endif  // DD_CORE_IO_H_
