#include "core/oracle_stats.h"

#include "obs/stats_view.h"
#include "util/string_util.h"

namespace dd {

namespace {

/// " | session: …" suffix shared by the two session-carrying overloads.
/// All-zero counters (fresh-solver mode) render as "session: off".
std::string SessionSuffix(const oracle::SessionStats& sess) {
  if (sess.base_loads == 0 && sess.solves == 0 && sess.cache_hits == 0 &&
      sess.projections_replayed == 0) {
    return " | session: off";
  }
  std::string out =
      StrFormat(" | session: loads=%lld, solves=%lld, ctx=%lld/%lld, "
                "cache=%lld/%lld, replayed=%lld",
                static_cast<long long>(sess.base_loads),
                static_cast<long long>(sess.solves),
                static_cast<long long>(sess.contexts_opened),
                static_cast<long long>(sess.contexts_retired),
                static_cast<long long>(sess.cache_hits),
                static_cast<long long>(sess.cache_misses),
                static_cast<long long>(sess.projections_replayed));
  // Appended only when the bounded memos actually evicted, so renderings of
  // cap-free runs stay byte-identical.
  if (sess.cache_evictions != 0) {
    out += StrFormat(", evicted=%lld",
                     static_cast<long long>(sess.cache_evictions));
  }
  return out;
}

}  // namespace

std::string FormatStats(const MinimalStats& s) {
  std::string out = StrFormat(
      "SAT calls=%lld, minimizations=%lld, CEGAR=%lld, models=%lld",
      static_cast<long long>(s.sat_calls),
      static_cast<long long>(s.minimizations),
      static_cast<long long>(s.cegar_iterations),
      static_cast<long long>(s.models_enumerated));
  // Appended only when the polynomial HCF path actually ran, so the
  // long-standing renderings of oracle-only runs stay byte-identical.
  if (s.hcf_checks != 0) {
    out += StrFormat(", hcf checks=%lld", static_cast<long long>(s.hcf_checks));
  }
  return out;
}

std::string FormatStats(const MinimalStats& s,
                        const analysis::DispatchStats& d) {
  return FormatStats(s) + " | " + d.ToString();
}

std::string FormatStats(const MinimalStats& s,
                        const oracle::SessionStats& sess) {
  return FormatStats(s) + SessionSuffix(sess);
}

std::string FormatStats(const MinimalStats& s,
                        const analysis::DispatchStats& d,
                        const oracle::SessionStats& sess) {
  // Round-trip through the registry: publish the structs, snapshot, and
  // render the reconstructed views. The detour is deliberate — it makes
  // this renderer (and its tests) a standing proof that the registry
  // preserves every legacy counter.
  obs::MetricsSnapshot snap = obs::SnapshotOf(s, &d, &sess);
  const MinimalStats sv = obs::MinimalStatsView(snap);
  const analysis::DispatchStats dv = obs::DispatchStatsView(snap);
  const oracle::SessionStats ssv = obs::SessionStatsView(snap);
  return FormatStats(sv) + " | " + dv.ToString() + SessionSuffix(ssv);
}

std::string FormatMeasuredTable(const std::string& title,
                                const std::vector<MeasuredCell>& cells) {
  std::string out;
  out += title + "\n";
  out += StrFormat("%-10s %-22s %-34s %12s %12s %8s  %s\n", "Semantics",
                   "Task", "Paper class", "time[s]", "SAT calls", "inst",
                   "measured");
  out += std::string(118, '-') + "\n";
  for (const auto& c : cells) {
    out += StrFormat("%-10s %-22s %-34s %12.4f %12lld %8lld  %s\n",
                     c.semantics.c_str(), c.task.c_str(),
                     c.paper_class.c_str(), c.seconds,
                     static_cast<long long>(c.sat_calls),
                     static_cast<long long>(c.instances), c.note.c_str());
  }
  return out;
}

}  // namespace dd
