// Formatting helpers for the oracle-call accounting the bench harnesses
// print: the observable correlate of the paper's complexity placements.
#ifndef DD_CORE_ORACLE_STATS_H_
#define DD_CORE_ORACLE_STATS_H_

#include <string>
#include <vector>

#include "analysis/dispatch.h"
#include "minimal/minimal_models.h"
#include "oracle/sat_session.h"

namespace dd {

/// One measured cell of a reproduced table.
struct MeasuredCell {
  std::string semantics;
  std::string task;
  std::string paper_class;   ///< the complexity class Table 1/2 reports
  double seconds = 0.0;      ///< wall time on the harness workload
  int64_t sat_calls = 0;     ///< NP-oracle invocations
  int64_t instances = 0;     ///< number of instances aggregated
  std::string note;          ///< e.g. "poly fit exp=1.9" or "growth x34"
};

/// Renders "SAT calls=…, minimizations=…, CEGAR=…, models=…".
std::string FormatStats(const MinimalStats& s);

/// Renders the oracle counters together with the analyzer-dispatch
/// downgrade counters ("… | dispatch: generic=…, …") so every engine
/// downgrade is observable next to the oracle work it avoided.
std::string FormatStats(const MinimalStats& s,
                        const analysis::DispatchStats& d);

/// Renders the oracle counters next to the session-reuse counters
/// ("… | session: loads=…, solves=…, ctx=…/…, cache=…/…, replayed=…"),
/// so the semantic oracle work and the fraction served from reuse are
/// observable side by side. All-zero session counters (fresh-solver
/// mode) render as "session: off".
std::string FormatStats(const MinimalStats& s,
                        const oracle::SessionStats& sess);

/// The combined rendering: oracle counters, analyzer-dispatch downgrades,
/// AND session reuse in one line ("… | dispatch: … | session: …"), so
/// session-mode bench output can show engine downgrades next to session
/// reuse. Implemented as a view over an obs::MetricsRegistry snapshot
/// (src/obs/stats_view.h): the structs are published into a registry and
/// re-read through the *View functions before rendering, which pins the
/// struct<->registry round trip.
std::string FormatStats(const MinimalStats& s,
                        const analysis::DispatchStats& d,
                        const oracle::SessionStats& sess);

/// Renders a fixed-width table with a header, one row per cell.
std::string FormatMeasuredTable(const std::string& title,
                                const std::vector<MeasuredCell>& cells);

}  // namespace dd

#endif  // DD_CORE_ORACLE_STATS_H_
