#include "core/reasoner.h"

#include <unordered_map>

#include "batch/batch_planner.h"
#include "obs/stats_view.h"
#include "semantics/ccwa.h"
#include "semantics/ecwa_circ.h"
#include "util/fingerprint.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dd {

namespace {

/// One "reasoner"-layer span per entry point. The exactness contract
/// pinned by tests/obs_test.cc — summing `oracle_calls` over these spans
/// reproduces the legacy TotalStats totals — holds by construction: every
/// counter below is a TotalStats/TotalSessionStats/DispatchStats delta
/// across the query.
class QuerySpan {
 public:
  QuerySpan(obs::TraceContext* t, Reasoner* r, const char* op,
            SemanticsKind kind)
      : t_(t), r_(r) {
    if (t_ == nullptr) return;
    id_ = t_->OpenSpan(op, "reasoner");
    t_->SetAttr(id_, "semantics", SemanticsKindName(kind));
    stats_before_ = r_->TotalStats();
    sess_before_ = r_->TotalSessionStats();
    dispatch_before_ = r_->dispatch_stats();
  }

  /// Budget-consumption attribution: the budget is created fresh for one
  /// query, so its consumed() totals ARE this query's deltas.
  void AttachBudget(std::shared_ptr<Budget> b) { budget_ = std::move(b); }

  /// Extra per-span counters (the batch entry point annotates its span
  /// with pipeline totals: queries, groups, cache hits, ...).
  void AddCounter(const char* name, int64_t v) {
    if (t_ != nullptr) t_->AddCounter(id_, name, v);
  }

  ~QuerySpan() {
    if (t_ == nullptr) return;
    const MinimalStats s = r_->TotalStats();
    t_->AddCounter(id_, "oracle_calls", s.sat_calls - stats_before_.sat_calls);
    t_->AddCounter(id_, "minimizations",
                   s.minimizations - stats_before_.minimizations);
    t_->AddCounter(id_, "cegar_iterations",
                   s.cegar_iterations - stats_before_.cegar_iterations);
    t_->AddCounter(id_, "models_enumerated",
                   s.models_enumerated - stats_before_.models_enumerated);
    const oracle::SessionStats ss = r_->TotalSessionStats();
    t_->AddCounter(id_, "cache_hits", ss.cache_hits - sess_before_.cache_hits);
    t_->AddCounter(id_, "cache_misses",
                   ss.cache_misses - sess_before_.cache_misses);
    const analysis::DispatchStats& d = r_->dispatch_stats();
    t_->AddCounter(id_, "dispatch_generic",
                   d.generic - dispatch_before_.generic);
    t_->AddCounter(id_, "dispatch_downgrades",
                   d.Downgrades() - dispatch_before_.Downgrades());
    // The structural-path counters append only when the query used one, so
    // span trees of programs that never slice stay byte-identical.
    const int64_t slice = d.slice_literal - dispatch_before_.slice_literal;
    const int64_t module = d.module_formula - dispatch_before_.module_formula;
    const int64_t hcf = d.hcf_unfounded - dispatch_before_.hcf_unfounded;
    if (slice != 0) t_->AddCounter(id_, "dispatch_slice", slice);
    if (module != 0) t_->AddCounter(id_, "dispatch_module", module);
    if (hcf != 0) t_->AddCounter(id_, "dispatch_hcf", hcf);
    if (budget_ != nullptr) {
      t_->AddCounter(id_, "conflicts_consumed", budget_->conflicts_consumed());
      t_->AddCounter(id_, "oracle_calls_consumed",
                     budget_->oracle_calls_consumed());
      const Status st = budget_->ToStatus();
      if (!st.ok()) t_->SetAttr(id_, "exhausted", st.ToString());
    }
    t_->CloseSpan(id_);
  }

  QuerySpan(const QuerySpan&) = delete;
  QuerySpan& operator=(const QuerySpan&) = delete;

 private:
  obs::TraceContext* t_;
  Reasoner* r_;
  int id_ = -1;
  MinimalStats stats_before_;
  oracle::SessionStats sess_before_;
  analysis::DispatchStats dispatch_before_;
  std::shared_ptr<Budget> budget_;
};

}  // namespace

Reasoner::Reasoner(Database db, SemanticsOptions opts)
    : db_(std::move(db)), opts_(opts) {}

Result<Reasoner> Reasoner::FromProgram(std::string_view text,
                                       SemanticsOptions opts) {
  DD_ASSIGN_OR_RETURN(Database db, ParseDatabase(text));
  return Reasoner(std::move(db), opts);
}

Semantics* Reasoner::Get(SemanticsKind kind) {
  auto it = engines_.find(kind);
  if (it == engines_.end()) {
    std::unique_ptr<Semantics> engine;
    if (partition_.has_value() && kind == SemanticsKind::kCcwa) {
      engine = std::make_unique<CcwaSemantics>(db_, *partition_, opts_);
    } else if (partition_.has_value() && kind == SemanticsKind::kEcwa) {
      engine = std::make_unique<EcwaSemantics>(db_, *partition_, opts_);
    } else {
      engine = MakeSemantics(kind, db_, opts_);
    }
    engine->SetTrace(trace_);
    it = engines_.emplace(kind, std::move(engine)).first;
  }
  return it->second.get();
}

Semantics* Reasoner::GetHcf(SemanticsKind kind) {
  auto it = hcf_engines_.find(kind);
  if (it == hcf_engines_.end()) {
    SemanticsOptions o = opts_;
    o.hcf_minimality = true;
    o.hcf_certificates = certify_ ? hcf_cert_sink_.get() : nullptr;
    // kHcfUnfounded is never selected under a custom CCWA/ECWA partition,
    // so the parameterless factory covers every kind that reaches here.
    std::unique_ptr<Semantics> engine = MakeSemantics(kind, db_, o);
    engine->SetTrace(trace_);
    it = hcf_engines_.emplace(kind, std::move(engine)).first;
  }
  return it->second.get();
}

Semantics* Reasoner::GetSliced(SemanticsKind kind,
                               const analysis::SliceResult& s) {
  auto key = std::make_pair(kind, s.clause_indices);
  auto it = slice_engines_.find(key);
  if (it == slice_engines_.end()) {
    SemanticsOptions o = opts_;
    // Compose the speedups: a sub-database of a head-cycle-free database
    // is head-cycle-free (its positive graph is a subgraph), and the
    // engine re-verifies applicability on the slice itself anyway.
    o.hcf_minimality = true;
    o.hcf_certificates = certify_ ? hcf_cert_sink_.get() : nullptr;
    Database sub = slicer()->MakeSubDatabase(s);
    std::unique_ptr<Semantics> engine = MakeSemantics(kind, sub, o);
    engine->SetTrace(trace_);
    it = slice_engines_.emplace(std::move(key), std::move(engine)).first;
  }
  return it->second.get();
}

void Reasoner::set_trace(obs::TraceContext* trace) {
  trace_ = trace;
  for (auto& [kind, engine] : engines_) engine->SetTrace(trace);
  for (auto& [kind, engine] : hcf_engines_) engine->SetTrace(trace);
  for (auto& [key, engine] : slice_engines_) engine->SetTrace(trace);
}

Status Reasoner::SetPartition(const std::vector<std::string>& p_atoms,
                              const std::vector<std::string>& q_atoms,
                              const std::vector<std::string>& z_atoms,
                              char rest) {
  const int n = db_.num_vars();
  Partition part;
  part.p = Interpretation(n);
  part.q = Interpretation(n);
  part.z = Interpretation(n);
  Interpretation assigned(n);
  auto place = [&](const std::vector<std::string>& names,
                   Interpretation* side) -> Status {
    for (const auto& name : names) {
      Var v = db_.vocabulary().Find(name);
      if (v == kInvalidVar) {
        return Status::NotFound("unknown atom '" + name + "'");
      }
      if (assigned.Contains(v)) {
        return Status::InvalidArgument(
            "atom '" + name + "' placed in two parts");
      }
      assigned.Insert(v);
      side->Insert(v);
    }
    return Status::OK();
  };
  DD_RETURN_IF_ERROR(place(p_atoms, &part.p));
  DD_RETURN_IF_ERROR(place(q_atoms, &part.q));
  DD_RETURN_IF_ERROR(place(z_atoms, &part.z));
  for (Var v = 0; v < n; ++v) {
    if (assigned.Contains(v)) continue;
    switch (rest) {
      case 'p':
        part.p.Insert(v);
        break;
      case 'q':
        part.q.Insert(v);
        break;
      case 'z':
        part.z.Insert(v);
        break;
      default:
        return Status::InvalidArgument(
            StrFormat("rest part must be 'p', 'q' or 'z', got '%c'", rest));
    }
  }
  DD_RETURN_IF_ERROR(part.Validate());
  partition_ = std::move(part);
  partition_rest_ = rest;
  engines_.erase(SemanticsKind::kCcwa);
  engines_.erase(SemanticsKind::kEcwa);
  return Status::OK();
}

void Reasoner::InvalidateCaches() {
  engines_.clear();
  hcf_engines_.clear();
  slice_engines_.clear();
  props_.reset();
  fast_.reset();
  slicer_.reset();
  // Parsing a query can intern fresh atoms; a custom <P;Q;Z> partition
  // snapshot must keep covering the whole vocabulary or the CCWA/ECWA
  // rebuild trips its size invariant. New atoms join the `rest` part the
  // caller picked at SetPartition time.
  if (partition_.has_value() && partition_->num_vars() != db_.num_vars()) {
    const int n = db_.num_vars();
    auto grow = [n](const Interpretation& old) {
      Interpretation out(n);
      for (Var v : old.TrueAtoms()) out.Insert(v);
      return out;
    };
    Partition part;
    part.p = grow(partition_->p);
    part.q = grow(partition_->q);
    part.z = grow(partition_->z);
    for (Var v = partition_->num_vars(); v < n; ++v) {
      switch (partition_rest_) {
        case 'p':
          part.p.Insert(v);
          break;
        case 'q':
          part.q.Insert(v);
          break;
        default:
          part.z.Insert(v);
          break;
      }
    }
    partition_ = std::move(part);
  }
}

analysis::Slicer* Reasoner::slicer() {
  if (slicer_ == nullptr) {
    slicer_ = std::make_unique<analysis::Slicer>(db_);
  }
  return slicer_.get();
}

void Reasoner::EnableCertification(bool on) {
  if (certify_ == on) return;
  certify_ = on;
  // Engines capture the sink pointer at construction; rebuild them so it
  // attaches (or detaches) everywhere.
  InvalidateCaches();
}

void Reasoner::CheckCertificate(const analysis::Certificate& cert) {
  ++cert_stats_.emitted;
  Status s = analysis::VerifyCertificate(cert);
  if (s.ok()) {
    ++cert_stats_.accepted;
  } else {
    ++cert_stats_.rejected;
    if (cert_failures_.size() < 16) cert_failures_.push_back(s.ToString());
  }
}

void Reasoner::DrainHcfCertificates() {
  if (hcf_cert_sink_->empty()) return;
  for (const analysis::Certificate& c : *hcf_cert_sink_) CheckCertificate(c);
  hcf_cert_sink_->clear();
}

const analysis::ProgramProperties& Reasoner::properties() {
  if (!props_.has_value()) props_ = analysis::Analyze(db_);
  return *props_;
}

analysis::FastPathEngine* Reasoner::fast_engine() {
  if (fast_ == nullptr) {
    fast_ = std::make_unique<analysis::FastPathEngine>(db_);
  }
  return fast_.get();
}

Reasoner::Routed Reasoner::RouteLiteral(SemanticsKind kind, Lit l) {
  Routed rt;
  if (!opts_.analysis_dispatch) {
    rt.engine = Get(kind);
    return rt;
  }
  const analysis::ProgramProperties& props = properties();
  analysis::QueryShape shape;
  std::optional<analysis::SliceResult> slice;
  if (analysis::SliceIsSound(props, kind, partition_.has_value())) {
    slice = slicer()->Cone({l.var()});
    shape.proper_slice = slice->proper;
  }
  rt.path = analysis::SelectPath(props, kind, analysis::QueryKind::kLiteral, l,
                                 partition_.has_value(), &shape);
  dispatch_stats_.Record(rt.path);
  switch (rt.path) {
    case analysis::EnginePath::kSliceLiteral:
      if (certify_) {
        analysis::Certificate cert;
        cert.kind = analysis::CertificateKind::kSliceRelevance;
        cert.db = db_;
        cert.roots = {l.var()};
        cert.relevant = slice->relevant;
        cert.slice_clauses = slice->clause_indices;
        CheckCertificate(cert);
      }
      rt.engine = GetSliced(kind, *slice);
      return rt;
    case analysis::EnginePath::kHcfUnfounded:
      rt.engine = GetHcf(kind);
      return rt;
    case analysis::EnginePath::kGeneric:
      rt.engine = Get(kind);
      return rt;
    default:
      // Polynomial fast path; FastPathEngine serves it, engine stays null.
      return rt;
  }
}

Reasoner::Routed Reasoner::RouteFormula(SemanticsKind kind, const Formula& f) {
  Routed rt;
  if (!opts_.analysis_dispatch) {
    rt.engine = Get(kind);
    return rt;
  }
  const analysis::ProgramProperties& props = properties();
  analysis::QueryShape shape;
  std::optional<analysis::SliceResult> mod;
  std::vector<Var> roots;
  if (analysis::SliceIsSound(props, kind, partition_.has_value())) {
    Interpretation atoms(db_.num_vars());
    f->CollectAtoms(&atoms);
    roots = atoms.TrueAtoms();
    // A formula may range over several cones (e.g. "a | b" with unrelated
    // a, b); the union of their *modules* is the smallest head-closed
    // restriction that provably preserves the joint model set.
    mod = slicer()->ModuleUnion(roots);
    shape.proper_module = mod->proper;
  }
  rt.path =
      analysis::SelectPath(props, kind, analysis::QueryKind::kFormula, Lit(),
                           partition_.has_value(), &shape);
  dispatch_stats_.Record(rt.path);
  switch (rt.path) {
    case analysis::EnginePath::kModuleFormula:
      if (certify_) {
        analysis::Certificate cert;
        cert.kind = analysis::CertificateKind::kSliceRelevance;
        cert.db = db_;
        cert.roots = roots;
        cert.relevant = mod->relevant;
        cert.slice_clauses = mod->clause_indices;
        CheckCertificate(cert);
      }
      rt.engine = GetSliced(kind, *mod);
      return rt;
    case analysis::EnginePath::kHcfUnfounded:
      rt.engine = GetHcf(kind);
      return rt;
    case analysis::EnginePath::kGeneric:
      rt.engine = Get(kind);
      return rt;
    default:
      return rt;
  }
}

Reasoner::Routed Reasoner::RouteHasModel(SemanticsKind kind) {
  Routed rt;
  if (!opts_.analysis_dispatch) {
    rt.engine = Get(kind);
    return rt;
  }
  rt.path = analysis::SelectPath(properties(), kind,
                                 analysis::QueryKind::kHasModel, Lit(),
                                 partition_.has_value());
  dispatch_stats_.Record(rt.path);
  if (rt.path == analysis::EnginePath::kGeneric) rt.engine = Get(kind);
  return rt;
}

Result<bool> Reasoner::InfersLiteral(SemanticsKind kind,
                                     std::string_view literal) {
  int before = db_.num_vars();
  DD_ASSIGN_OR_RETURN(Lit l, ParseLiteral(literal, &db_.vocabulary()));
  if (db_.num_vars() != before) {
    // The literal mentioned a fresh atom; rebuild engines (and the static
    // analysis) so their variable ranges include it.
    InvalidateCaches();
  }
  QuerySpan span(trace_, this, "InfersLiteral", kind);
  Routed rt = RouteLiteral(kind, l);
  if (rt.engine == nullptr) return fast_engine()->InfersLiteral(rt.path, l);
  Result<bool> r = rt.engine->InfersLiteral(l);
  DrainHcfCertificates();
  return r;
}

Result<Formula> Reasoner::ParseQueryFormula(std::string_view formula) {
  int before = db_.num_vars();
  DD_ASSIGN_OR_RETURN(Formula f, ParseFormula(formula, &db_.vocabulary()));
  if (db_.num_vars() != before) InvalidateCaches();
  return f;
}

Result<bool> Reasoner::InfersFormula(SemanticsKind kind,
                                     std::string_view formula) {
  DD_ASSIGN_OR_RETURN(Formula f, ParseQueryFormula(formula));
  QuerySpan span(trace_, this, "InfersFormula", kind);
  Routed rt = RouteFormula(kind, f);
  if (rt.engine == nullptr) return fast_engine()->InfersFormula(rt.path, f);
  Result<bool> r = rt.engine->InfersFormula(f);
  DrainHcfCertificates();
  return r;
}

Result<bool> Reasoner::HasModel(SemanticsKind kind) {
  QuerySpan span(trace_, this, "HasModel", kind);
  Routed rt = RouteHasModel(kind);
  if (rt.engine == nullptr) return fast_engine()->HasModel(rt.path);
  Result<bool> r = rt.engine->HasModel();
  DrainHcfCertificates();
  return r;
}

Result<std::vector<Interpretation>> Reasoner::Models(SemanticsKind kind,
                                                     int64_t cap) {
  QuerySpan span(trace_, this, "Models", kind);
  return Get(kind)->Models(cap);
}

namespace {

/// Builds the per-query shared budget (null when `q` has no limits).
std::shared_ptr<Budget> MakeQueryBudget(const QueryOptions& q) {
  if (q.unlimited()) return nullptr;
  Budget::Limits lim;
  lim.deadline_ms = q.deadline_ms;
  lim.conflict_budget = q.conflict_budget;
  lim.oracle_call_budget = q.oracle_call_budget;
  return Budget::Make(lim, q.cancel);
}

/// RAII installer for a per-query trace (QueryOptions::trace): installed
/// on the engine for exactly one call, then the reasoner-level trace (the
/// fallback, possibly null) is restored.
class ScopedTrace {
 public:
  ScopedTrace(Semantics* s, obs::TraceContext* per_query,
              obs::TraceContext* fallback)
      : s_(s), restore_(fallback) {
    if (per_query != nullptr && per_query != fallback) {
      installed_ = true;
      s_->SetTrace(per_query);
    }
  }
  ~ScopedTrace() {
    if (installed_) s_->SetTrace(restore_);
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  Semantics* s_;
  obs::TraceContext* restore_;
  bool installed_ = false;
};

/// RAII installer: the budget lives on the engine exactly for one query;
/// removal clears latched interrupts so the engine answers unbudgeted
/// queries normally afterwards.
class ScopedBudget {
 public:
  ScopedBudget(Semantics* s, std::shared_ptr<Budget> b) : s_(s) {
    if (b != nullptr) {
      installed_ = true;
      s_->SetBudget(std::move(b));
    }
  }
  ~ScopedBudget() {
    if (installed_) s_->SetBudget(nullptr);
  }
  ScopedBudget(const ScopedBudget&) = delete;
  ScopedBudget& operator=(const ScopedBudget&) = delete;

 private:
  Semantics* s_;
  bool installed_ = false;
};

/// Budget exhaustion degrades to kUnknown; every other Status propagates.
Result<Trilean> ToTrilean(const Result<bool>& r) {
  if (r.ok()) return TrileanFromBool(*r);
  if (r.status().IsBudgetExhaustion()) return Trilean::kUnknown;
  return r.status();
}

}  // namespace

Result<Trilean> Reasoner::InfersLiteral(SemanticsKind kind,
                                        std::string_view literal,
                                        const QueryOptions& q) {
  // Parse first: interning a fresh atom invalidates the engine cache, and
  // the budget must be installed on the engine that runs the query.
  int before = db_.num_vars();
  DD_ASSIGN_OR_RETURN(Lit l, ParseLiteral(literal, &db_.vocabulary()));
  if (db_.num_vars() != before) InvalidateCaches();
  QuerySpan span(q.trace != nullptr ? q.trace : trace_, this, "InfersLiteral",
                 kind);
  Routed rt = RouteLiteral(kind, l);
  if (rt.engine == nullptr) {
    // Polynomial fast path: completes without oracle calls, so the
    // budget is irrelevant and the exact answer stands.
    return ToTrilean(fast_engine()->InfersLiteral(rt.path, l));
  }
  ScopedTrace traced(rt.engine, q.trace, trace_);
  std::shared_ptr<Budget> b = MakeQueryBudget(q);
  span.AttachBudget(b);
  ScopedBudget scope(rt.engine, std::move(b));
  Result<bool> r = rt.engine->InfersLiteral(l);
  DrainHcfCertificates();
  return ToTrilean(r);
}

Result<Trilean> Reasoner::InfersFormula(SemanticsKind kind,
                                        std::string_view formula,
                                        const QueryOptions& q) {
  DD_ASSIGN_OR_RETURN(Formula f, ParseQueryFormula(formula));
  QuerySpan span(q.trace != nullptr ? q.trace : trace_, this, "InfersFormula",
                 kind);
  Routed rt = RouteFormula(kind, f);
  if (rt.engine == nullptr) {
    return ToTrilean(fast_engine()->InfersFormula(rt.path, f));
  }
  ScopedTrace traced(rt.engine, q.trace, trace_);
  std::shared_ptr<Budget> b = MakeQueryBudget(q);
  span.AttachBudget(b);
  ScopedBudget scope(rt.engine, std::move(b));
  Result<bool> r = rt.engine->InfersFormula(f);
  DrainHcfCertificates();
  return ToTrilean(r);
}

Result<Trilean> Reasoner::HasModel(SemanticsKind kind, const QueryOptions& q) {
  QuerySpan span(q.trace != nullptr ? q.trace : trace_, this, "HasModel",
                 kind);
  Routed rt = RouteHasModel(kind);
  if (rt.engine == nullptr) {
    return ToTrilean(fast_engine()->HasModel(rt.path));
  }
  ScopedTrace traced(rt.engine, q.trace, trace_);
  std::shared_ptr<Budget> b = MakeQueryBudget(q);
  span.AttachBudget(b);
  ScopedBudget scope(rt.engine, std::move(b));
  Result<bool> r = rt.engine->HasModel();
  DrainHcfCertificates();
  return ToTrilean(r);
}

Result<ModelsAnswer> Reasoner::Models(SemanticsKind kind, int64_t cap,
                                      const QueryOptions& q) {
  QuerySpan span(q.trace != nullptr ? q.trace : trace_, this, "Models", kind);
  Semantics* s = Get(kind);
  ScopedTrace traced(s, q.trace, trace_);
  std::shared_ptr<Budget> b = MakeQueryBudget(q);
  span.AttachBudget(b);
  ScopedBudget scope(s, std::move(b));
  Result<std::vector<Interpretation>> r = s->Models(cap);
  ModelsAnswer out;
  if (r.ok()) {
    out.models = std::move(*r);
    return out;
  }
  if (r.status().IsBudgetExhaustion()) {
    // Anytime payload: each model the engine had already collected IS an
    // intended model; only the enumeration was cut short.
    out.models = s->TakePartialModels();
    out.truncated = true;
    out.reason = r.status();
    return out;
  }
  return r.status();
}

Result<Trilean> Reasoner::InfersCredulously(SemanticsKind kind,
                                            std::string_view formula,
                                            const QueryOptions& q) {
  DD_ASSIGN_OR_RETURN(Formula f, ParseQueryFormula(formula));
  QuerySpan span(q.trace != nullptr ? q.trace : trace_, this,
                 "InfersCredulously", kind);
  Semantics* s = Get(kind);
  ScopedTrace traced(s, q.trace, trace_);
  std::shared_ptr<Budget> b = MakeQueryBudget(q);
  span.AttachBudget(b);
  ScopedBudget scope(s, std::move(b));
  return ToTrilean(s->InfersCredulously(f));
}

Result<std::optional<Interpretation>> Reasoner::FindCounterexample(
    SemanticsKind kind, std::string_view formula, const QueryOptions& q) {
  DD_ASSIGN_OR_RETURN(Formula f, ParseQueryFormula(formula));
  QuerySpan span(q.trace != nullptr ? q.trace : trace_, this,
                 "FindCounterexample", kind);
  Semantics* s = Get(kind);
  ScopedTrace traced(s, q.trace, trace_);
  std::shared_ptr<Budget> b = MakeQueryBudget(q);
  span.AttachBudget(b);
  ScopedBudget scope(s, std::move(b));
  return s->FindCounterexample(f);
}

uint64_t Reasoner::fingerprint() {
  // Clauses are immutable for the reasoner's lifetime and query-interned
  // atoms never appear in clauses, so the fingerprint is computed once and
  // survives InvalidateCaches().
  if (!fingerprint_.has_value()) {
    fingerprint_ = DatabaseFingerprint(db_);
  }
  return *fingerprint_;
}

Result<batch::BatchAnswer> Reasoner::AnswerBatch(
    SemanticsKind kind, const std::vector<batch::BatchQuery>& queries,
    const batch::BatchOptions& bopts) {
  return AnswerBatchImpl(kind, queries, bopts, batch::BatchMode::kSkeptical);
}

Result<batch::BatchAnswer> Reasoner::AnswerBatchCredulous(
    SemanticsKind kind, const std::vector<batch::BatchQuery>& queries,
    const batch::BatchOptions& bopts) {
  return AnswerBatchImpl(kind, queries, bopts, batch::BatchMode::kBrave);
}

Result<batch::BatchAnswer> Reasoner::AnswerBatchImpl(
    SemanticsKind kind, const std::vector<batch::BatchQuery>& queries,
    const batch::BatchOptions& bopts, batch::BatchMode mode) {
  const bool brave = mode == batch::BatchMode::kBrave;
  // Parse everything up front (one vocabulary pass; fresh atoms invalidate
  // engine caches exactly once, before any engine is built).
  const int vars_before = db_.num_vars();
  std::vector<Formula> parsed;
  parsed.reserve(queries.size());
  for (const batch::BatchQuery& q : queries) {
    if (q.is_literal) {
      DD_ASSIGN_OR_RETURN(Lit l, ParseLiteral(q.text, &db_.vocabulary()));
      parsed.push_back(FormulaNode::MakeLit(l));
    } else {
      DD_ASSIGN_OR_RETURN(Formula f, ParseFormula(q.text, &db_.vocabulary()));
      parsed.push_back(std::move(f));
    }
  }
  if (db_.num_vars() != vars_before) InvalidateCaches();

  QuerySpan span(bopts.trace != nullptr ? bopts.trace : trace_, this,
                 brave ? "AnswerBatchCredulous" : "AnswerBatch", kind);
  batch::BatchStats bs;
  bs.queries = static_cast<int64_t>(queries.size());

  // Canonicalize, split and dedupe into the unique query list. Skeptical
  // inference distributes over ∧, brave over ∨ (see SplitConjuncts /
  // SplitDisjuncts), so each mode splits its own connective; the split
  // parts recompose below by the matching Kleene connective.
  std::vector<batch::CanonicalQuery> uniq;
  std::vector<std::vector<int>> parts_of(queries.size());
  std::unordered_map<std::string, int> index_of;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<Formula> parts = brave ? batch::SplitDisjuncts(parsed[i])
                                       : batch::SplitConjuncts(parsed[i]);
    if (parts.size() > 1) {
      if (brave) {
        ++bs.disjunct_splits;
      } else {
        ++bs.conjunct_splits;
      }
    }
    for (const Formula& part : parts) {
      batch::CanonicalQuery cq =
          batch::Canonicalize(part, db_.vocabulary());
      auto [it, inserted] =
          index_of.emplace(cq.key, static_cast<int>(uniq.size()));
      if (inserted) {
        uniq.push_back(std::move(cq));
      } else {
        ++bs.dedup_hits;
      }
      parts_of[i].push_back(it->second);
    }
  }
  bs.unique_queries = static_cast<int64_t>(uniq.size());

  // The answer cache (external override > reasoner-owned > disabled),
  // epoch-pinned to this database's fingerprint.
  batch::AnswerCache* cache = bopts.cache;
  if (cache == nullptr && bopts.use_answer_cache) {
    if (answer_cache_ == nullptr) {
      answer_cache_ = std::make_unique<batch::AnswerCache>(
          bopts.cache_capacity);
    }
    cache = answer_cache_.get();
  }
  // The cross-batch model-bank store (external override > reasoner-owned
  // > disabled). Disabled for a custom CCWA/ECWA partition — the store
  // key cannot see partitions — when banks are off entirely, and where
  // the mode's soundness gate forbids bank answers (PDSM).
  batch::ModelBankStore* store = bopts.bank_store;
  if (store == nullptr && bopts.use_bank_store) {
    if (bank_store_ == nullptr) {
      bank_store_ = std::make_unique<batch::ModelBankStore>(
          bopts.bank_store_capacity);
    }
    store = bank_store_.get();
  }
  if (partition_.has_value() || bopts.model_bank_cap <= 0 ||
      !(brave ? batch::BraveBankIsSound(kind) : batch::BankIsSound(kind))) {
    store = nullptr;
  }

  uint64_t fp = 0;
  batch::AnswerCache::Stats cache_before;
  batch::ModelBankStore::Stats store_before;
  if (cache != nullptr || store != nullptr) fp = fingerprint();
  if (cache != nullptr) {
    cache_before = cache->stats();  // before SetEpoch: invalidations count
    cache->SetEpoch(fp);
  }
  if (store != nullptr) {
    store_before = store->stats();
    store->SetEpoch(fp);
  }

  std::vector<Trilean> uniq_answers(uniq.size(), Trilean::kUnknown);
  std::vector<std::optional<Interpretation>> uniq_witnesses(
      bopts.collect_witnesses ? uniq.size() : 0);
  std::vector<char> answered(uniq.size(), 0);
  std::vector<std::string> cache_keys(uniq.size());
  std::vector<int> pending;
  for (size_t u = 0; u < uniq.size(); ++u) {
    // Constants that hold regardless of the model set need no engine:
    // skeptical ⊤ (true in every model, vacuously so without models) and
    // brave ⊥ (no model satisfies it, with or without models). The duals
    // do NOT short-circuit — skeptical ⊥ is vacuously inferred and brave
    // ⊤ refuted exactly when the database is semantics-inconsistent,
    // which only the engine can decide.
    if (uniq[u].f->kind() == FormulaKind::kConst &&
        uniq[u].f->const_value() != brave) {
      uniq_answers[u] = brave ? Trilean::kNo : Trilean::kYes;
      answered[u] = 1;
      continue;
    }
    if (cache != nullptr) {
      cache_keys[u] = batch::AnswerCache::MakeKey(fp, kind, uniq[u].key,
                                                  brave);
      // Witness collection bypasses cache reads: a hit carries no
      // certifying model. (Definite answers still get inserted below.)
      if (!bopts.collect_witnesses) {
        if (std::optional<Trilean> hit = cache->Lookup(cache_keys[u])) {
          uniq_answers[u] = *hit;
          answered[u] = 1;
          continue;
        }
      }
    }
    pending.push_back(static_cast<int>(u));
  }

  // Group survivors by relevance module and evaluate, groups in parallel
  // under one whole-batch budget.
  std::vector<batch::PlannedGroup> plan = batch::PlanGroups(
      opts_.analysis_dispatch ? slicer() : nullptr, properties(), kind,
      partition_.has_value(), uniq, pending);
  bs.groups = static_cast<int64_t>(plan.size());

  std::shared_ptr<Budget> budget;
  if (bopts.deadline_ms >= 0 || bopts.conflict_budget >= 0 ||
      bopts.oracle_call_budget >= 0 || bopts.cancel != nullptr) {
    Budget::Limits lim;
    lim.deadline_ms = bopts.deadline_ms;
    lim.conflict_budget = bopts.conflict_budget;
    lim.oracle_call_budget = bopts.oracle_call_budget;
    budget = Budget::Make(lim, bopts.cancel);
    span.AttachBudget(budget);
  }

  std::vector<Database> group_dbs;
  group_dbs.reserve(plan.size());
  std::vector<batch::GroupRequest> requests(plan.size());
  std::vector<std::string> store_keys(plan.size());
  for (size_t g = 0; g < plan.size(); ++g) {
    batch::GroupRequest& req = requests[g];
    if (plan[g].whole_db) {
      req.db = &db_;
    } else {
      group_dbs.push_back(slicer()->MakeSubDatabase(plan[g].slice));
      req.db = &group_dbs.back();
    }
    req.kind = kind;
    req.opts = opts_;
    // Group engines are single-threaded (the batch parallelizes across
    // groups), untraced (their counters fold into the reasoner totals
    // below), and certificate-free (per-group temporaries cannot feed the
    // reasoner's sink safely from worker threads).
    req.opts.num_threads = 1;
    req.opts.hcf_certificates = nullptr;
    // Sub-databases of an HCF database stay HCF; the engine re-verifies
    // applicability itself (same composition as GetSliced).
    if (!plan[g].whole_db) req.opts.hcf_minimality = true;
    req.partition = partition_.has_value() ? &*partition_ : nullptr;
    req.queries.reserve(plan[g].query_indices.size());
    for (int u : plan[g].query_indices) req.queries.push_back(&uniq[u]);
    req.budget = budget;
    req.model_bank_cap = bopts.model_bank_cap;
    req.mode = mode;
    req.collect_witnesses = bopts.collect_witnesses;
    // Cross-batch bank reuse: probe the store for this group's module
    // bank (lookups and inserts run on the caller's thread — the store
    // is not thread-safe). The key is the module's OWN fingerprint, so a
    // module shared by two differently-shaped batches hits the same
    // bank; the width floor guards Interpretation::Contains against
    // queries whose atoms were interned after the bank was built.
    if (store != nullptr) {
      const uint64_t module_fp =
          plan[g].whole_db ? fp : DatabaseFingerprint(*req.db);
      store_keys[g] = batch::ModelBankStore::MakeKey(
          module_fp, kind, batch::EffectiveBankCap(bopts.model_bank_cap,
                                                   req.opts));
      int min_vars = 0;
      for (const batch::CanonicalQuery* q : req.queries) {
        for (Var v : q->roots) {
          min_vars = std::max(min_vars, static_cast<int>(v) + 1);
        }
      }
      req.bank = store->Lookup(store_keys[g], min_vars);
      req.export_bank = req.bank == nullptr;
    }
  }

  const int threads = bopts.num_threads <= 0 ? ThreadPool::DefaultThreads()
                                             : bopts.num_threads;
  std::vector<batch::GroupResult> results(plan.size());
  const CancelToken* cancel =
      budget != nullptr ? budget->cancel_token().get() : nullptr;
  ParallelFor(static_cast<int64_t>(plan.size()), threads, cancel,
              [&](int64_t g) { results[g] = batch::EvaluateGroup(requests[g]); });

  // Merge in plan order (deterministic in the thread count). Group-engine
  // oracle work folds into the reasoner-owned accumulators BEFORE the
  // batch span closes, preserving the span-sum == TotalStats contract.
  Status first_error;
  for (size_t g = 0; g < plan.size(); ++g) {
    const batch::GroupResult& res = results[g];
    batch_engine_stats_.Add(res.stats);
    batch_engine_session_stats_.Add(res.session_stats);
    if (!res.error.ok() && first_error.ok()) first_error = res.error;
    const bool evaluated =
        res.answers.size() == plan[g].query_indices.size();
    if (evaluated && res.used_bank) {
      ++bs.bank_groups;
      bs.bank_models += res.bank_models;
    } else if (evaluated) {
      ++bs.fallback_groups;
    }
    // A complete bank built on a store miss feeds the store for later
    // batches; EvaluateGroup never exports truncated banks, and Insert
    // itself refuses them (defense in depth, counted).
    if (store != nullptr && res.built_bank != nullptr) {
      store->Insert(store_keys[g], res.built_bank);
    }
    for (size_t k = 0; k < plan[g].query_indices.size(); ++k) {
      const int u = plan[g].query_indices[k];
      // A group skipped by budget cancellation leaves its slots kUnknown.
      uniq_answers[u] = evaluated ? res.answers[k] : Trilean::kUnknown;
      answered[u] = 1;
      if (bopts.collect_witnesses && evaluated &&
          k < res.witnesses.size()) {
        uniq_witnesses[u] = res.witnesses[k];
      }
    }
  }
  if (!first_error.ok()) return first_error;

  // Cache only answers computed this batch (hits are already stored);
  // Insert itself refuses kUnknown.
  if (cache != nullptr) {
    for (int u : pending) cache->Insert(cache_keys[u], uniq_answers[u]);
  }

  // Compose per-input answers by the mode's Kleene connective: AND over
  // conjuncts (skeptical distributes over ∧), OR over disjuncts (brave
  // distributes over ∨). The decisive value dominates kUnknown in both.
  // The first decisive part's witness certifies the composition: a
  // counterexample to one conjunct violates the conjunction, a model of
  // one disjunct satisfies the disjunction.
  const Trilean decisive = brave ? Trilean::kYes : Trilean::kNo;
  batch::BatchAnswer out;
  out.answers.reserve(queries.size());
  if (bopts.collect_witnesses) out.witnesses.resize(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Trilean acc = brave ? Trilean::kNo : Trilean::kYes;
    for (int u : parts_of[i]) {
      if (uniq_answers[u] == decisive) {
        acc = decisive;
        if (bopts.collect_witnesses) out.witnesses[i] = uniq_witnesses[u];
        break;
      }
      if (uniq_answers[u] == Trilean::kUnknown) acc = Trilean::kUnknown;
    }
    if (acc == Trilean::kUnknown) ++bs.unknowns;
    out.answers.push_back(acc);
  }

  if (cache != nullptr) {
    const batch::AnswerCache::Stats& ca = cache->stats();
    bs.cache_hits = ca.hits - cache_before.hits;
    bs.cache_misses = ca.misses - cache_before.misses;
    bs.cache_insertions = ca.insertions - cache_before.insertions;
    bs.cache_evictions = ca.evictions - cache_before.evictions;
    bs.cache_invalidations = ca.invalidations - cache_before.invalidations;
  }
  if (store != nullptr) {
    const batch::ModelBankStore::Stats& sa = store->stats();
    bs.bank_store_hits = sa.hits - store_before.hits;
    bs.bank_store_misses = sa.misses - store_before.misses;
    bs.bank_store_insertions = sa.insertions - store_before.insertions;
    bs.bank_store_evictions = sa.evictions - store_before.evictions;
    bs.bank_store_invalidations =
        sa.invalidations - store_before.invalidations;
    bs.bank_store_truncated_rejected =
        sa.truncated_rejected - store_before.truncated_rejected;
  }

  span.AddCounter("batch_queries", bs.queries);
  span.AddCounter("batch_unique", bs.unique_queries);
  span.AddCounter("batch_groups", bs.groups);
  span.AddCounter("batch_bank_groups", bs.bank_groups);
  span.AddCounter("batch_bank_store_hits", bs.bank_store_hits);
  span.AddCounter("batch_cache_hits", bs.cache_hits);
  span.AddCounter("batch_unknowns", bs.unknowns);

  batch_total_.Add(bs);
  out.stats = bs;
  return out;
}

MinimalStats Reasoner::TotalStats() const {
  MinimalStats out;
  for (const auto& [kind, engine] : engines_) {
    out.Add(engine->stats());
  }
  for (const auto& [kind, engine] : hcf_engines_) {
    out.Add(engine->stats());
  }
  for (const auto& [key, engine] : slice_engines_) {
    out.Add(engine->stats());
  }
  out.Add(batch_engine_stats_);
  return out;
}

oracle::SessionStats Reasoner::TotalSessionStats() const {
  oracle::SessionStats out;
  for (const auto& [kind, engine] : engines_) {
    out.Add(engine->session_stats());
  }
  for (const auto& [kind, engine] : hcf_engines_) {
    out.Add(engine->session_stats());
  }
  for (const auto& [key, engine] : slice_engines_) {
    out.Add(engine->session_stats());
  }
  out.Add(batch_engine_session_stats_);
  return out;
}

void Reasoner::PublishMetrics(obs::MetricsRegistry* reg) const {
  obs::Publish(TotalStats(), reg);
  obs::Publish(dispatch_stats_, reg);
  obs::Publish(TotalSessionStats(), reg);
  batch::Publish(batch_total_, reg);
}

}  // namespace dd
