// Reasoner: the library's top-level facade.
//
// Wraps a database and lazily instantiates semantics engines; queries take
// textual literals/formulas and are parsed against the database vocabulary.
//
//   Reasoner r(std::move(db));
//   r.InfersLiteral(SemanticsKind::kGcwa, "not c");
//   r.InfersFormula(SemanticsKind::kEgcwa, "a | ~b");
//   r.HasModel(SemanticsKind::kDsm);
#ifndef DD_CORE_REASONER_H_
#define DD_CORE_REASONER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/certifier.h"
#include "analysis/dispatch.h"
#include "analysis/program_properties.h"
#include "analysis/slicer.h"
#include "batch/query_batch.h"
#include "logic/database.h"
#include "logic/parser.h"
#include "minimal/pqz.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "semantics/semantics.h"
#include "util/budget.h"

namespace dd {

/// Per-query resource limits for the budgeted (anytime) entry points.
/// Unset fields (-1 / null) are unlimited; a default-constructed
/// QueryOptions imposes no limits at all. The budget protocol guarantees
/// "Unknown is allowed, wrong is not" (docs/ROBUSTNESS.md): a limited query
/// either returns the same answer the unlimited query would, or
/// Trilean::kUnknown — never a flipped yes/no.
struct QueryOptions {
  /// Wall-clock deadline for the whole query, in milliseconds.
  int64_t deadline_ms = -1;
  /// Total CDCL conflicts across every oracle call of the query.
  int64_t conflict_budget = -1;
  /// Total NP-oracle (SAT solver) invocations.
  int64_t oracle_call_budget = -1;
  /// Optional external kill switch: cancelling it aborts the query from
  /// another thread (reported as kCancelled, which — like the deadline and
  /// resource codes — satisfies Status::IsBudgetExhaustion()).
  std::shared_ptr<CancelToken> cancel;

  /// Optional per-query trace (not owned): the query's span tree lands
  /// here, alongside the Budget built from the limits above. Overrides any
  /// reasoner-level trace installed via Reasoner::set_trace for the
  /// duration of the call. See obs/trace.h and docs/OBSERVABILITY.md.
  obs::TraceContext* trace = nullptr;

  /// True when no budget axis is limited (the trace does not affect budget
  /// construction).
  bool unlimited() const {
    return deadline_ms < 0 && conflict_budget < 0 && oracle_call_budget < 0 &&
           cancel == nullptr;
  }
};

/// Result of a budgeted Models() query: on budget exhaustion `models` holds
/// the anytime prefix (every entry IS an intended model), `truncated` is
/// true and `reason` carries the exhaustion Status.
struct ModelsAnswer {
  std::vector<Interpretation> models;
  bool truncated = false;
  Status reason;  ///< OK unless truncated
};

class Reasoner {
 public:
  explicit Reasoner(Database db, SemanticsOptions opts = {});

  /// Parses program text into a reasoner.
  static Result<Reasoner> FromProgram(std::string_view text,
                                      SemanticsOptions opts = {});

  const Database& db() const { return db_; }

  /// Skeptical literal inference, e.g. InfersLiteral(kGcwa, "not c").
  Result<bool> InfersLiteral(SemanticsKind kind, std::string_view literal);

  /// Skeptical formula inference, e.g. InfersFormula(kEgcwa, "a -> b").
  Result<bool> InfersFormula(SemanticsKind kind, std::string_view formula);

  /// Parses a query formula against the database vocabulary (fresh atoms
  /// are interned; engines are rebuilt when the vocabulary grows). Use
  /// with Get(kind)->InfersCredulously / FindCounterexample.
  Result<Formula> ParseQueryFormula(std::string_view formula);

  Result<bool> HasModel(SemanticsKind kind);

  Result<std::vector<Interpretation>> Models(SemanticsKind kind,
                                             int64_t cap = -1);

  /// Budgeted (anytime) variants. A fresh Budget built from `q` is
  /// installed on the engine for the duration of the call and removed
  /// afterwards (clearing any latched interrupt, so the engine stays usable
  /// for later unbudgeted queries). Budget exhaustion maps to
  /// Trilean::kUnknown; all other failures surface as Status. Answers other
  /// than kUnknown are identical to the unbudgeted entry points.
  Result<Trilean> InfersLiteral(SemanticsKind kind, std::string_view literal,
                                const QueryOptions& q);
  Result<Trilean> InfersFormula(SemanticsKind kind, std::string_view formula,
                                const QueryOptions& q);
  Result<Trilean> HasModel(SemanticsKind kind, const QueryOptions& q);

  /// Budgeted model enumeration with an anytime payload: on exhaustion the
  /// models collected so far are returned with truncated=true instead of
  /// being thrown away. Exceeding `cap` (or options().max_models) also
  /// reports truncation.
  Result<ModelsAnswer> Models(SemanticsKind kind, int64_t cap,
                              const QueryOptions& q);

  /// Brave (credulous) inference: is `formula` true in *some* intended
  /// model? Parsed against the vocabulary, run under the optional budget
  /// and trace like the skeptical entry points (budget exhaustion =>
  /// kUnknown).
  Result<Trilean> InfersCredulously(SemanticsKind kind,
                                    std::string_view formula,
                                    const QueryOptions& q = {});

  /// Certificate search: an intended model violating `formula`, or nullopt
  /// when it is inferred. Budget exhaustion surfaces as the exhaustion
  /// Status (there is no three-valued certificate).
  Result<std::optional<Interpretation>> FindCounterexample(
      SemanticsKind kind, std::string_view formula,
      const QueryOptions& q = {});

  /// Batched skeptical inference (docs/BATCHING.md): canonicalizes,
  /// dedupes and conjunct-splits `queries`, serves repeats from the
  /// fingerprinted answer cache, groups the rest by relevance module and
  /// evaluates each group once — sharing a minimal-model bank per group —
  /// with groups running in parallel under one whole-batch budget.
  /// answers[i] always corresponds to queries[i]; budget exhaustion shows
  /// up as kUnknown entries (never cached), parse errors and engine
  /// preconditions as Status. Answers are identical to the sequential
  /// entry points and independent of opts.num_threads.
  Result<batch::BatchAnswer> AnswerBatch(SemanticsKind kind,
                                         const std::vector<batch::BatchQuery>& queries,
                                         const batch::BatchOptions& opts = {});

  /// Batched brave (credulous) inference: the existential dual of
  /// AnswerBatch over the SAME shared model banks and bank store. Queries
  /// are disjunct-split (∃ distributes over ∨, including under PDSM's
  /// 3-valued reading) and recomposed by Kleene OR; cache entries carry a
  /// mode tag so brave and skeptical answers never collide. Answers are
  /// identical to sequential InfersCredulously and independent of
  /// opts.num_threads. With opts.collect_witnesses, answers[i] == kYes
  /// carries a satisfying intended model in witnesses[i] (skeptical
  /// batches would carry a counterexample on kNo instead).
  Result<batch::BatchAnswer> AnswerBatchCredulous(
      SemanticsKind kind, const std::vector<batch::BatchQuery>& queries,
      const batch::BatchOptions& opts = {});

  /// Stable 64-bit fingerprint of the database's clause multiset
  /// (util/fingerprint.h): invariant under clause order and vocabulary
  /// interning order, flipped by any clause change. Computed once —
  /// clauses are immutable for a reasoner's lifetime, and vocabulary
  /// growth from query parsing does not contribute.
  uint64_t fingerprint();

  /// The reasoner-owned answer cache (null until the first cached batch).
  batch::AnswerCache* answer_cache() { return answer_cache_.get(); }

  /// The reasoner-owned cross-batch model-bank store (null until the
  /// first batch that uses one). Banks built by one AnswerBatch call are
  /// reused by later, non-identical batches hitting the same relevance
  /// module (docs/BATCHING.md).
  batch::ModelBankStore* bank_store() { return bank_store_.get(); }

  /// Cumulative batch accounting across every AnswerBatch call.
  const batch::BatchStats& batch_stats() const { return batch_total_; }

  /// The lazily created engine for `kind` (never null).
  Semantics* Get(SemanticsKind kind);

  /// Configures the <P;Q;Z> partition used by CCWA and ECWA, given atom
  /// names. Unlisted atoms fall into the part named by `rest` ('p', 'q' or
  /// 'z'). Resets the cached CCWA/ECWA engines.
  Status SetPartition(const std::vector<std::string>& p_atoms,
                      const std::vector<std::string>& q_atoms,
                      const std::vector<std::string>& z_atoms,
                      char rest = 'z');

  /// The custom CCWA/ECWA partition, or null when the default
  /// minimize-everything preorder applies (callers like tmpl/answer.h
  /// gate relevance pruning on this).
  const Partition* partition() const {
    return partition_.has_value() ? &*partition_ : nullptr;
  }

  /// Aggregated oracle counters over all engines used so far.
  MinimalStats TotalStats() const;

  /// Aggregated session-reuse counters over all engines used so far (all
  /// zero in fresh-solver mode).
  oracle::SessionStats TotalSessionStats() const;

  /// Attaches (nullptr detaches) a trace to this reasoner and every engine
  /// it has created or will create: each entry point then records one
  /// "reasoner"-layer span carrying the query's oracle-call, cache-hit,
  /// dispatch-downgrade and budget-consumption attribution, with the
  /// engine layers' spans nested below. QueryOptions::trace overrides this
  /// per query.
  void set_trace(obs::TraceContext* trace);
  obs::TraceContext* trace() const { return trace_; }

  /// Publishes the reasoner's cumulative counters (oracle totals, dispatch
  /// downgrades, session reuse) into `reg` under the canonical dd.* names
  /// (obs/stats_view.h). Counters in the registry are monotonic: publish
  /// once per reasoner (e.g. at CLI exit), not per query.
  void PublishMetrics(obs::MetricsRegistry* reg) const;

  /// The static analysis of the current database (computed lazily, cached;
  /// recomputed when a query grows the vocabulary).
  const analysis::ProgramProperties& properties();

  /// Counters for every analyzer-driven engine downgrade (and generic
  /// fallthroughs) performed by this reasoner.
  const analysis::DispatchStats& dispatch_stats() const {
    return dispatch_stats_;
  }

  /// Toggles analyzer-driven dispatch (on by default; see
  /// SemanticsOptions::analysis_dispatch). Off forces every query through
  /// the generic engines.
  void set_analysis_dispatch(bool on) { opts_.analysis_dispatch = on; }

  /// Toggles certificate-checked mode (ddquery --certify): while on, every
  /// polynomial HCF minimality verdict and every slice/module routing
  /// emits a machine-checkable witness that is immediately re-verified by
  /// analysis/certifier.h — independently of the engines that produced it.
  /// Accounting lands in certification_stats(); a nonzero `rejected` means
  /// an engine and the certifier disagree (a bug, never a user error).
  /// Resets cached engines so certificate sinks attach everywhere.
  void EnableCertification(bool on);
  bool certification_enabled() const { return certify_; }
  const analysis::CertificationStats& certification_stats() const {
    return cert_stats_;
  }
  /// Rejection messages (capped; empty when every certificate verified).
  const std::vector<std::string>& certification_failures() const {
    return cert_failures_;
  }

 private:
  /// A routed query: which path, and (for engine-executed paths) which
  /// Semantics instance runs it — null when FastPathEngine serves it.
  struct Routed {
    analysis::EnginePath path = analysis::EnginePath::kGeneric;
    Semantics* engine = nullptr;
  };

  /// Drops cached engines and analysis after the vocabulary grew.
  void InvalidateCaches();
  /// The fast-path engine for the current database (never null).
  analysis::FastPathEngine* fast_engine();
  /// The incidence/module index of the current database (never null).
  analysis::Slicer* slicer();
  /// The `kind` engine with the polynomial HCF minimality path enabled
  /// (EnginePath::kHcfUnfounded); cached separately from Get(kind) so the
  /// generic baseline's oracle accounting is untouched.
  Semantics* GetHcf(SemanticsKind kind);
  /// The `kind` engine over the sliced sub-database, cached by the slice's
  /// clause-index set.
  Semantics* GetSliced(SemanticsKind kind, const analysis::SliceResult& s);

  /// Routing front half shared by the literal/formula entry points:
  /// computes the query shape, records dispatch stats, emits the slice
  /// certificate in certify mode, and picks the executing engine.
  Routed RouteLiteral(SemanticsKind kind, Lit l);
  Routed RouteFormula(SemanticsKind kind, const Formula& f);
  Routed RouteHasModel(SemanticsKind kind);

  /// The one batched-inference pipeline, parameterized by mode (universal
  /// vs existential pass over the shared banks); AnswerBatch and
  /// AnswerBatchCredulous are thin wrappers.
  Result<batch::BatchAnswer> AnswerBatchImpl(
      SemanticsKind kind, const std::vector<batch::BatchQuery>& queries,
      const batch::BatchOptions& opts, batch::BatchMode mode);

  /// Certify-mode bookkeeping: verifies and discards `cert`.
  void CheckCertificate(const analysis::Certificate& cert);
  /// Verifies every certificate the HCF engines queued since last drain.
  void DrainHcfCertificates();

  Database db_;
  SemanticsOptions opts_;
  obs::TraceContext* trace_ = nullptr;
  std::map<SemanticsKind, std::unique_ptr<Semantics>> engines_;
  std::map<SemanticsKind, std::unique_ptr<Semantics>> hcf_engines_;
  std::map<std::pair<SemanticsKind, std::vector<int>>,
           std::unique_ptr<Semantics>>
      slice_engines_;
  std::optional<Partition> partition_;
  /// Where atoms interned AFTER SetPartition land when the partition is
  /// regrown to a larger vocabulary (see InvalidateCaches).
  char partition_rest_ = 'z';
  std::optional<analysis::ProgramProperties> props_;
  std::unique_ptr<analysis::FastPathEngine> fast_;
  std::unique_ptr<analysis::Slicer> slicer_;
  analysis::DispatchStats dispatch_stats_;

  std::optional<uint64_t> fingerprint_;
  std::unique_ptr<batch::AnswerCache> answer_cache_;
  std::unique_ptr<batch::ModelBankStore> bank_store_;
  /// Oracle work done by batch group engines (they are per-group
  /// temporaries, so their counters are folded in here before each batch's
  /// QuerySpan closes — preserving the obs exactness contract) and the
  /// batch pipeline's own counters.
  MinimalStats batch_engine_stats_;
  oracle::SessionStats batch_engine_session_stats_;
  batch::BatchStats batch_total_;

  bool certify_ = false;
  analysis::CertificationStats cert_stats_;
  std::vector<std::string> cert_failures_;
  /// Heap-allocated so its address survives Reasoner moves (engines capture
  /// the pointer at construction time).
  std::unique_ptr<std::vector<analysis::Certificate>> hcf_cert_sink_ =
      std::make_unique<std::vector<analysis::Certificate>>();
};

}  // namespace dd

#endif  // DD_CORE_REASONER_H_
