#include "fixpoint/ddr_fixpoint.h"

#include <algorithm>
#include <vector>

#include "util/macros.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dd {

namespace {

Status RequireDeductive(const Database& db, const char* op) {
  if (db.HasNegation()) {
    return Status::FailedPrecondition(
        StrFormat("%s is defined for deductive databases (C+); "
                  "the database contains negation",
                  op));
  }
  return Status::OK();
}

}  // namespace

Interpretation DefiniteLeastModel(const Database& db) {
  // Split every head: the least model of the all-heads split program.
  // Rules are (head_atom, body); fire when all body atoms derived.
  struct Rule {
    Var head;
    int unsatisfied;
  };
  std::vector<Rule> rules;
  std::vector<std::vector<int>> watch(static_cast<size_t>(db.num_vars()));
  std::vector<Var> queue;
  Interpretation derived(db.num_vars());

  auto derive = [&](Var v) {
    if (!derived.Contains(v)) {
      derived.Insert(v);
      queue.push_back(v);
    }
  };

  for (const Clause& c : db.clauses()) {
    if (c.is_integrity()) continue;
    DD_CHECK(c.neg_body().empty());
    for (Var h : c.heads()) {
      if (c.pos_body().empty()) {
        derive(h);
        continue;
      }
      int idx = static_cast<int>(rules.size());
      rules.push_back({h, static_cast<int>(c.pos_body().size())});
      for (Var b : c.pos_body()) {
        watch[static_cast<size_t>(b)].push_back(idx);
      }
    }
  }

  while (!queue.empty()) {
    Var v = queue.back();
    queue.pop_back();
    for (int ri : watch[static_cast<size_t>(v)]) {
      Rule& r = rules[static_cast<size_t>(ri)];
      if (--r.unsatisfied == 0) derive(r.head);
    }
  }
  return derived;
}

Result<Interpretation> DerivableAtoms(const Database& db) {
  DD_RETURN_IF_ERROR(RequireDeductive(db, "DerivableAtoms"));
  return DefiniteLeastModel(db);
}

namespace {

// Enumerates, for the body atoms body[j..], all ways of covering each b by a
// disjunct of `state` containing b; accumulates the union of the chosen
// disjuncts minus the covered atoms into `carry` and inserts the resulting
// candidate disjunct when the body is exhausted.
bool ExpandBody(const Database& db, const std::vector<Var>& body, size_t j,
                const std::vector<Interpretation>& snapshot,
                const Interpretation& heads, Interpretation carry,
                DisjunctSet* state, bool* changed, int64_t max_disjuncts) {
  if (j == body.size()) {
    Interpretation candidate = heads;
    for (Var v : carry.TrueAtoms()) candidate.Insert(v);
    if (state->Insert(candidate)) *changed = true;
    return state->size() <= max_disjuncts;
  }
  Var b = body[j];
  for (const Interpretation& d : snapshot) {
    if (!d.Contains(b)) continue;
    Interpretation next = carry;
    for (Var v : d.TrueAtoms()) {
      if (v != b) next.Insert(v);
    }
    if (!ExpandBody(db, body, j + 1, snapshot, heads, std::move(next), state,
                    changed, max_disjuncts)) {
      return false;
    }
  }
  return true;
}

// Pure variant for the parallel path: collects this clause's candidate
// disjuncts into `out` in exactly the order the sequential expansion would
// insert them, resolving only against the round snapshot. Returns false
// once `out` grows past `cap` (the caller then falls back to the direct
// sequential expansion for this clause, preserving exact semantics while
// bounding memory).
bool CollectBody(const std::vector<Var>& body, size_t j,
                 const std::vector<Interpretation>& snapshot,
                 const Interpretation& heads, Interpretation carry,
                 std::vector<Interpretation>* out, int64_t cap) {
  if (j == body.size()) {
    Interpretation candidate = heads;
    for (Var v : carry.TrueAtoms()) candidate.Insert(v);
    out->push_back(std::move(candidate));
    return static_cast<int64_t>(out->size()) <= cap;
  }
  Var b = body[j];
  for (const Interpretation& d : snapshot) {
    if (!d.Contains(b)) continue;
    Interpretation next = carry;
    for (Var v : d.TrueAtoms()) {
      if (v != b) next.Insert(v);
    }
    if (!CollectBody(body, j + 1, snapshot, heads, std::move(next), out,
                     cap)) {
      return false;
    }
  }
  return true;
}

}  // namespace

Result<DisjunctSet> MinimalModelState(const Database& db,
                                      int64_t max_disjuncts, int threads) {
  DD_RETURN_IF_ERROR(RequireDeductive(db, "MinimalModelState"));
  DisjunctSet state(db.num_vars());

  // Base: disjunctive facts.
  for (const Clause& c : db.clauses()) {
    if (c.is_integrity() || !c.pos_body().empty()) continue;
    state.Insert(
        Interpretation::FromAtoms(db.num_vars(), c.heads()));
  }

  // The rule clauses this loop expands, in database order.
  std::vector<const Clause*> rules;
  for (const Clause& c : db.clauses()) {
    if (c.is_integrity() || c.pos_body().empty()) continue;
    rules.push_back(&c);
  }

  // Saturate T_DB with subsumption reduction.
  bool changed = true;
  while (changed) {
    changed = false;
    // Snapshot: this round only resolves against disjuncts from the
    // previous round (naive evaluation; rounds repeat until stable).
    std::vector<Interpretation> snapshot = state.items();
    if (threads > 1 && rules.size() > 1) {
      // Parallel round: candidate generation per clause is pure against
      // the snapshot; the merge below replays the sequential insertion
      // sequence in clause order, so the result is thread-count-invariant.
      struct Expansion {
        std::vector<Interpretation> candidates;
        bool overflow = false;
      };
      const int64_t local_cap = std::max<int64_t>(1024, 8 * max_disjuncts);
      std::vector<Expansion> expansions(rules.size());
      ParallelFor(static_cast<int64_t>(rules.size()), threads,
                  [&](int64_t i) {
                    const Clause& c = *rules[static_cast<size_t>(i)];
                    Expansion& e = expansions[static_cast<size_t>(i)];
                    Interpretation heads = Interpretation::FromAtoms(
                        db.num_vars(), c.heads());
                    e.overflow = !CollectBody(
                        c.pos_body(), 0, snapshot, heads,
                        Interpretation(db.num_vars()), &e.candidates,
                        local_cap);
                  });
      for (size_t i = 0; i < rules.size(); ++i) {
        const Clause& c = *rules[i];
        if (expansions[i].overflow) {
          // Too many candidates to materialize: expand this clause
          // directly into the state, exactly like the sequential path.
          Interpretation heads =
              Interpretation::FromAtoms(db.num_vars(), c.heads());
          if (!ExpandBody(db, c.pos_body(), 0, snapshot, heads,
                          Interpretation(db.num_vars()), &state, &changed,
                          max_disjuncts)) {
            return Status::ResourceExhausted(
                StrFormat("model state exceeded %lld disjuncts",
                          static_cast<long long>(max_disjuncts)));
          }
          continue;
        }
        for (const Interpretation& cand : expansions[i].candidates) {
          if (state.Insert(cand)) changed = true;
          if (state.size() > max_disjuncts) {
            return Status::ResourceExhausted(
                StrFormat("model state exceeded %lld disjuncts",
                          static_cast<long long>(max_disjuncts)));
          }
        }
      }
    } else {
      for (const Clause* cp : rules) {
        const Clause& c = *cp;
        Interpretation heads =
            Interpretation::FromAtoms(db.num_vars(), c.heads());
        if (!ExpandBody(db, c.pos_body(), 0, snapshot, heads,
                        Interpretation(db.num_vars()), &state, &changed,
                        max_disjuncts)) {
          return Status::ResourceExhausted(
              StrFormat("model state exceeded %lld disjuncts",
                        static_cast<long long>(max_disjuncts)));
        }
      }
    }
  }
  return state;
}

}  // namespace dd
