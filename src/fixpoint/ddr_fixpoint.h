// The T_DB fixpoint machinery behind the DDR / WGCWA semantics (Section 3.2
// of the paper) and the minimal model state used for cross-checking GCWA.
//
// Both computations are defined for disjunctive *deductive* databases
// (DB ⊆ C+, no negation). Integrity clauses are ignored by T_DB — this is
// exactly the behaviour Example 3.1 of the paper exhibits (DDR(DB) ⊭ ¬c
// although the integrity clause rules a∧b out).
#ifndef DD_FIXPOINT_DDR_FIXPOINT_H_
#define DD_FIXPOINT_DDR_FIXPOINT_H_

#include <cstdint>

#include "fixpoint/disjunct_set.h"
#include "logic/database.h"
#include "logic/interpretation.h"
#include "util/status.h"

namespace dd {

/// The atoms occurring in T_DB↑ω, i.e. in at least one derivable disjunct.
///
/// Computed in polynomial time as the least model of the definite program
/// that splits every disjunctive head ("ai :- body" for each head atom ai):
/// an atom appears in some derivable disjunct iff it is derivable when all
/// head choices are available, which is precisely this least model.
/// DDR adds ¬x exactly for the atoms x outside this set.
///
/// Requires db.IsDeductive(); integrity clauses contribute nothing.
Result<Interpretation> DerivableAtoms(const Database& db);

/// Least model of a definite (non-disjunctive, negation-free) program via
/// unit propagation on the rules; integrity clauses are ignored.
/// Exposed separately because PWS's split programs reuse it.
Interpretation DefiniteLeastModel(const Database& db);

/// The minimal model state MS(DB): the ⊆-minimal disjuncts derivable by
/// saturating T_DB (with subsumption reduction at every step).
///
/// For positive databases, atoms absent from MS(DB) are exactly the atoms
/// false in every minimal model, which gives an independent (fixpoint-based)
/// implementation of GCWA's negation set to cross-check the SAT-based one.
///
/// The state can be exponentially large; `max_disjuncts` bounds it
/// (ResourceExhausted on overflow). Requires db.IsDeductive().
///
/// `threads` parallelizes each saturation round over the rule clauses:
/// candidate disjuncts are generated against the round's snapshot (a pure
/// computation) on up to `threads` workers, then merged in clause order,
/// replaying exactly the sequential insertion sequence — the resulting
/// state, the changed-flag progression and the overflow point are
/// bit-identical for every thread count.
Result<DisjunctSet> MinimalModelState(const Database& db,
                                      int64_t max_disjuncts = 100000,
                                      int threads = 1);

}  // namespace dd

#endif  // DD_FIXPOINT_DDR_FIXPOINT_H_
