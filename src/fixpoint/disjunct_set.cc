#include "fixpoint/disjunct_set.h"

#include <algorithm>

#include "logic/vocabulary.h"
#include "util/macros.h"

namespace dd {

bool DisjunctSet::Insert(const Interpretation& disjunct) {
  DD_CHECK(disjunct.num_vars() == num_vars_);
  for (const auto& d : items_) {
    if (d.SubsetOf(disjunct)) return false;  // already entailed
  }
  // Evict entries the new disjunct strictly subsumes.
  items_.erase(std::remove_if(items_.begin(), items_.end(),
                              [&](const Interpretation& d) {
                                return disjunct.SubsetOf(d);
                              }),
               items_.end());
  items_.push_back(disjunct);
  return true;
}

bool DisjunctSet::Subsumes(const Interpretation& disjunct) const {
  for (const auto& d : items_) {
    if (d.SubsetOf(disjunct)) return true;
  }
  return false;
}

Interpretation DisjunctSet::Atoms() const {
  Interpretation out(num_vars_);
  for (const auto& d : items_) {
    for (Var v : d.TrueAtoms()) out.Insert(v);
  }
  return out;
}

std::string DisjunctSet::ToString(const Vocabulary& voc) const {
  std::vector<std::string> lines;
  lines.reserve(items_.size());
  for (const auto& d : items_) {
    std::string line;
    bool first = true;
    for (Var v : d.TrueAtoms()) {
      if (!first) line += " | ";
      first = false;
      line += voc.Name(v);
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (auto& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

}  // namespace dd
