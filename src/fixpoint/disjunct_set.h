// Sets of positive disjuncts with subsumption reduction.
//
// A "disjunct" is a nonempty disjunction of atoms, represented as the set of
// its atoms. A DisjunctSet maintains a ⊆-antichain: inserting a disjunct
// drops it if some stored disjunct subsumes it (is a subset), and evicts
// stored disjuncts it subsumes. This realizes the *minimal model state*
// MS(DB) of Minker/Rajasekar when saturated under the T_DB operator.
#ifndef DD_FIXPOINT_DISJUNCT_SET_H_
#define DD_FIXPOINT_DISJUNCT_SET_H_

#include <string>
#include <vector>

#include "logic/interpretation.h"
#include "logic/types.h"

namespace dd {

class Vocabulary;

/// An antichain of positive disjuncts over a fixed variable range.
class DisjunctSet {
 public:
  explicit DisjunctSet(int num_vars) : num_vars_(num_vars) {}

  int num_vars() const { return num_vars_; }
  int size() const { return static_cast<int>(items_.size()); }
  const std::vector<Interpretation>& items() const { return items_; }

  /// Inserts with two-way subsumption. Returns true iff the set changed.
  bool Insert(const Interpretation& disjunct);

  /// True iff some stored disjunct is a subset of `disjunct` (i.e. the
  /// argument is entailed by the set).
  bool Subsumes(const Interpretation& disjunct) const;

  /// Union of the atoms of all stored disjuncts.
  Interpretation Atoms() const;

  /// Every stored disjunct rendered as "a | b", one per line, sorted.
  std::string ToString(const Vocabulary& voc) const;

 private:
  int num_vars_;
  std::vector<Interpretation> items_;
};

}  // namespace dd

#endif  // DD_FIXPOINT_DISJUNCT_SET_H_
