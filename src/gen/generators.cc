#include "gen/generators.h"

#include <algorithm>

#include "util/macros.h"
#include "util/string_util.h"

namespace dd {

namespace {

// Interns "p0".."p{n-1}" and returns their ids (== 0..n-1).
void InternAtoms(Database* db, int n, const char* prefix = "p") {
  for (int i = 0; i < n; ++i) {
    db->vocabulary().Intern(StrFormat("%s%d", prefix, i));
  }
}

}  // namespace

Database RandomDdb(const DdbConfig& cfg) {
  Rng rng(cfg.seed);
  return RandomDdb(cfg, &rng);
}

Database RandomDdb(const DdbConfig& cfg, Rng* rng_in) {
  DD_CHECK(cfg.num_vars >= 2);
  Rng& rng = *rng_in;
  Database db;
  InternAtoms(&db, cfg.num_vars);

  for (int c = 0; c < cfg.num_clauses; ++c) {
    bool integrity = rng.Chance(cfg.integrity_fraction);
    std::vector<Var> heads;
    if (!integrity) {
      int head_size = static_cast<int>(rng.Range(1, cfg.max_head));
      head_size = std::min(head_size, cfg.num_vars);
      for (int v : rng.SampleDistinct(cfg.num_vars, head_size)) {
        heads.push_back(static_cast<Var>(v));
      }
    }
    std::vector<Var> pos_body, neg_body;
    bool fact = !integrity && rng.Chance(cfg.fact_fraction);
    if (!fact) {
      int body_size = static_cast<int>(
          rng.Range(integrity ? 1 : 0, cfg.max_body));
      for (int v : rng.SampleDistinct(cfg.num_vars, body_size)) {
        // Avoid self-supporting heads in the body.
        if (std::find(heads.begin(), heads.end(), static_cast<Var>(v)) !=
            heads.end()) {
          continue;
        }
        if (rng.Chance(cfg.negation_fraction)) {
          neg_body.push_back(static_cast<Var>(v));
        } else {
          pos_body.push_back(static_cast<Var>(v));
        }
      }
      if (integrity && pos_body.empty() && neg_body.empty()) {
        pos_body.push_back(static_cast<Var>(rng.Below(cfg.num_vars)));
      }
    }
    db.AddClause(Clause(std::move(heads), std::move(pos_body),
                        std::move(neg_body)));
  }
  return db;
}

Database RandomPositiveDdb(int num_vars, int num_clauses, uint64_t seed) {
  DdbConfig cfg;
  cfg.num_vars = num_vars;
  cfg.num_clauses = num_clauses;
  cfg.seed = seed;
  return RandomDdb(cfg);
}

Database RandomPositiveDdb(int num_vars, int num_clauses, Rng* rng) {
  DdbConfig cfg;
  cfg.num_vars = num_vars;
  cfg.num_clauses = num_clauses;
  return RandomDdb(cfg, rng);
}

Database RandomStratifiedDdb(int num_vars, int num_clauses, int num_strata,
                             double negation_fraction, uint64_t seed) {
  Rng rng(seed);
  return RandomStratifiedDdb(num_vars, num_clauses, num_strata,
                             negation_fraction, &rng);
}

Database RandomStratifiedDdb(int num_vars, int num_clauses, int num_strata,
                             double negation_fraction, Rng* rng_in) {
  DD_CHECK(num_strata >= 1 && num_vars >= num_strata);
  Rng& rng = *rng_in;
  Database db;
  InternAtoms(&db, num_vars);
  // Atom v sits on level v * num_strata / num_vars: contiguous blocks.
  auto level_of = [&](Var v) {
    return static_cast<int>(static_cast<int64_t>(v) * num_strata / num_vars);
  };
  std::vector<std::vector<Var>> by_level(static_cast<size_t>(num_strata));
  std::vector<std::vector<Var>> up_to_level(static_cast<size_t>(num_strata));
  for (Var v = 0; v < num_vars; ++v) {
    by_level[static_cast<size_t>(level_of(v))].push_back(v);
  }
  for (int l = 0; l < num_strata; ++l) {
    if (l > 0) up_to_level[static_cast<size_t>(l)] =
        up_to_level[static_cast<size_t>(l - 1)];
    for (Var v : by_level[static_cast<size_t>(l)]) {
      up_to_level[static_cast<size_t>(l)].push_back(v);
    }
  }

  for (int c = 0; c < num_clauses; ++c) {
    int level = static_cast<int>(rng.Below(static_cast<uint64_t>(num_strata)));
    const auto& pool = by_level[static_cast<size_t>(level)];
    if (pool.empty()) continue;
    int head_size = static_cast<int>(
        rng.Range(1, std::min<int64_t>(2, static_cast<int64_t>(pool.size()))));
    std::vector<Var> heads;
    for (int idx :
         rng.SampleDistinct(static_cast<int>(pool.size()), head_size)) {
      heads.push_back(pool[static_cast<size_t>(idx)]);
    }
    std::vector<Var> pos_body, neg_body;
    int body_size = static_cast<int>(rng.Range(0, 2));
    for (int b = 0; b < body_size; ++b) {
      bool negate = level > 0 && rng.Chance(negation_fraction);
      if (negate) {
        // Strictly lower level.
        const auto& lower = up_to_level[static_cast<size_t>(level - 1)];
        Var v = lower[static_cast<size_t>(rng.Below(lower.size()))];
        neg_body.push_back(v);
      } else {
        const auto& le = up_to_level[static_cast<size_t>(level)];
        Var v = le[static_cast<size_t>(rng.Below(le.size()))];
        if (std::find(heads.begin(), heads.end(), v) == heads.end()) {
          pos_body.push_back(v);
        }
      }
    }
    db.AddClause(Clause(std::move(heads), std::move(pos_body),
                        std::move(neg_body)));
  }
  return db;
}

QbfForallExistsCnf RandomQbf(int nx, int ny, int num_clauses, int width,
                             uint64_t seed) {
  Rng rng(seed);
  return RandomQbf(nx, ny, num_clauses, width, &rng);
}

QbfForallExistsCnf RandomQbf(int nx, int ny, int num_clauses, int width,
                             Rng* rng_in) {
  DD_CHECK(nx >= 1 && ny >= 1 && width >= 2);
  Rng& rng = *rng_in;
  QbfForallExistsCnf q;
  q.num_vars = nx + ny;
  for (int i = 0; i < nx; ++i) q.universal.push_back(static_cast<Var>(i));
  for (int i = 0; i < ny; ++i) {
    q.existential.push_back(static_cast<Var>(nx + i));
  }
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    // Force a mix: one universal, one existential, rest free.
    clause.push_back(Lit::Make(static_cast<Var>(rng.Below(nx)),
                               rng.Chance(0.5)));
    clause.push_back(Lit::Make(static_cast<Var>(nx + rng.Below(ny)),
                               rng.Chance(0.5)));
    for (int w = 2; w < width; ++w) {
      clause.push_back(Lit::Make(static_cast<Var>(rng.Below(nx + ny)),
                                 rng.Chance(0.5)));
    }
    q.clauses.push_back(std::move(clause));
  }
  return q;
}

sat::Cnf RandomCnf(int num_vars, int num_clauses, int width, uint64_t seed) {
  Rng rng(seed);
  return RandomCnf(num_vars, num_clauses, width, &rng);
}

sat::Cnf RandomCnf(int num_vars, int num_clauses, int width, Rng* rng_in) {
  DD_CHECK(num_vars >= 1 && width >= 1);
  Rng& rng = *rng_in;
  sat::Cnf cnf;
  cnf.num_vars = num_vars;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> clause;
    for (int w = 0; w < width; ++w) {
      clause.push_back(Lit::Make(static_cast<Var>(rng.Below(num_vars)),
                                 rng.Chance(0.5)));
    }
    cnf.clauses.push_back(std::move(clause));
  }
  return cnf;
}

Database GraphColoringDdb(int num_nodes, double edge_probability,
                          int num_colors, uint64_t seed) {
  Rng rng(seed);
  return GraphColoringDdb(num_nodes, edge_probability, num_colors, &rng);
}

Database GraphColoringDdb(int num_nodes, double edge_probability,
                          int num_colors, Rng* rng_in) {
  DD_CHECK(num_nodes >= 1 && num_colors >= 2);
  Rng& rng = *rng_in;
  Database db;
  auto color_atom = [&](int node, int color) {
    return db.vocabulary().Intern(StrFormat("c%d_n%d", color, node));
  };
  for (int v = 0; v < num_nodes; ++v) {
    std::vector<Var> heads;
    for (int k = 0; k < num_colors; ++k) heads.push_back(color_atom(v, k));
    db.AddClause(Clause::Fact(std::move(heads)));
  }
  for (int u = 0; u < num_nodes; ++u) {
    for (int v = u + 1; v < num_nodes; ++v) {
      if (!rng.Chance(edge_probability)) continue;
      for (int k = 0; k < num_colors; ++k) {
        db.AddClause(Clause::Integrity({color_atom(u, k), color_atom(v, k)}));
      }
    }
  }
  return db;
}

Database DiagnosisDdb(int num_gates, int num_faulty, uint64_t seed) {
  Rng rng(seed);
  return DiagnosisDdb(num_gates, num_faulty, &rng);
}

Database DiagnosisDdb(int num_gates, int num_faulty, Rng* rng_in) {
  DD_CHECK(num_gates >= 1 && num_faulty >= 1 && num_faulty <= num_gates);
  Rng& rng = *rng_in;
  (void)rng;
  Database db;
  // `num_faulty` independent buffer chains; each chain's output is observed
  // low although its input is high, so each needs at least one abnormal
  // gate; the minimal diagnoses pick one gate per chain.
  int per_chain = (num_gates + num_faulty - 1) / num_faulty;
  int gate = 0;
  for (int chain = 0; chain < num_faulty; ++chain) {
    Var prev = db.vocabulary().Intern(StrFormat("in%d", chain));
    db.AddClause(Clause::Fact({prev}));
    int len = std::min(per_chain, num_gates - gate);
    if (len <= 0) len = 1;
    for (int g = 0; g < len; ++g, ++gate) {
      Var val = db.vocabulary().Intern(StrFormat("val%d", gate));
      Var ab = db.vocabulary().Intern(StrFormat("ab%d", gate));
      // A healthy gate propagates its input: val | ab :- prev.
      db.AddClause(Clause({val, ab}, {prev}, {}));
      prev = val;
    }
    // Observation: the chain output is low.
    db.AddClause(Clause::Integrity({prev}));
  }
  return db;
}

Database HcfModularDdb(int num_modules, int vars_per_module,
                       int clauses_per_module, uint64_t seed) {
  Rng rng(seed);
  return HcfModularDdb(num_modules, vars_per_module, clauses_per_module,
                       &rng);
}

Database HcfModularDdb(int num_modules, int vars_per_module,
                       int clauses_per_module, Rng* rng_in) {
  DD_CHECK(num_modules >= 1 && vars_per_module >= 4);
  Rng& rng = *rng_in;
  Database db;
  for (int m = 0; m < num_modules; ++m) {
    std::vector<Var> atom(static_cast<size_t>(vars_per_module));
    for (int j = 0; j < vars_per_module; ++j) {
      atom[static_cast<size_t>(j)] =
          db.vocabulary().Intern(StrFormat("m%d_p%d", m, j));
    }
    const int top = vars_per_module - 1;  // the 2-cycle: {top-1, top}
    // Disjunctive seed fact.
    db.AddClause(Clause::Fact({atom[0], atom[1]}));
    // Random 2-head clauses, heads strictly above their bodies in the
    // per-module order (acyclic among multi-head clauses => no SCC ever
    // holds two co-heads).
    for (int c = 0; c < clauses_per_module; ++c) {
      int h2 = static_cast<int>(rng.Range(2, top - 1));
      int h1 = static_cast<int>(rng.Range(1, h2 - 1));
      std::vector<Var> body = {atom[static_cast<size_t>(rng.Below(
          static_cast<uint64_t>(h1)))]};
      db.AddClause(Clause({atom[static_cast<size_t>(h1)],
                           atom[static_cast<size_t>(h2)]},
                          std::move(body), {}));
    }
    // A nontrivial positive SCC of single-head rules, fed from the module
    // base: head-cycle-free programs may be cyclic, just not through two
    // heads of one clause.
    db.AddClause(Clause({atom[static_cast<size_t>(top - 1)]}, {atom[0]}, {}));
    db.AddClause(Clause({atom[static_cast<size_t>(top)]},
                        {atom[static_cast<size_t>(top - 1)]}, {}));
    db.AddClause(Clause({atom[static_cast<size_t>(top - 1)]},
                        {atom[static_cast<size_t>(top)]}, {}));
  }
  return db;
}

}  // namespace dd
