// Workload generators for the test suite and the bench harnesses.
//
// The paper studies propositional databases abstractly; these generators
// provide the concrete instance families the reproduced tables are measured
// on: random positive DDBs, integrity-clause mixes, stratified DNDBs,
// random 2-QBFs for the hardness reductions, and two structured families
// (graph coloring, circuit diagnosis) used by the examples.
#ifndef DD_GEN_GENERATORS_H_
#define DD_GEN_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "logic/database.h"
#include "qbf/qbf.h"
#include "sat/dimacs.h"
#include "util/rng.h"

namespace dd {

/// Shape of a random disjunctive database.
struct DdbConfig {
  int num_vars = 12;
  int num_clauses = 30;
  int max_head = 3;      ///< head atoms per clause, uniform in [1, max_head]
  int max_body = 3;      ///< positive body atoms, uniform in [0, max_body]
  double fact_fraction = 0.3;       ///< clauses forced to have empty bodies
  double integrity_fraction = 0.0;  ///< clauses with empty heads
  double negation_fraction = 0.0;   ///< body literals made negative
  uint64_t seed = 1;
};

/// Random DDB with the given shape. Atom names are "p0", "p1", ....
Database RandomDdb(const DdbConfig& cfg);

/// Random *positive* DDB (Table 1 regime): no integrity, no negation.
Database RandomPositiveDdb(int num_vars, int num_clauses, uint64_t seed);

/// Random stratified DNDB: atoms are spread over `num_strata` levels;
/// clause heads live on one level, positive bodies on <= that level and
/// negative bodies strictly below, so the result is always stratifiable.
Database RandomStratifiedDdb(int num_vars, int num_clauses, int num_strata,
                             double negation_fraction, uint64_t seed);

/// Random ∀X∃Y CNF 2-QBF with `nx`+`ny` variables and `num_clauses`
/// clauses of the given width; every clause mixes both blocks.
QbfForallExistsCnf RandomQbf(int nx, int ny, int num_clauses, int width,
                             uint64_t seed);

/// Random CNF (for UMINSAT / EGCWA-existence experiments).
sat::Cnf RandomCnf(int num_vars, int num_clauses, int width, uint64_t seed);

/// 3-coloring of a random graph as a DNDB: one disjunctive choice fact per
/// node, one integrity clause per edge and color. Stable/minimal models
/// correspond to proper colorings.
Database GraphColoringDdb(int num_nodes, double edge_probability,
                          int num_colors, uint64_t seed);

/// Model-based diagnosis instance: a chain of `num_gates` buffers, each
/// either ok or abnormal (ok_i | ab_i), correct gates propagate their
/// input, and the observation contradicts the fault-free behaviour of
/// `num_faulty` gates. Minimal models localize minimal diagnoses.
Database DiagnosisDdb(int num_gates, int num_faulty, uint64_t seed);

/// Head-cycle-free disjunctive family for the slicing/module/HCF fast
/// paths: `num_modules` disconnected modules of `vars_per_module` atoms
/// each (named "m<i>_p<j>"). Per module, a disjunctive fact plus
/// `clauses_per_module` random positive 2-head clauses whose heads sit
/// strictly above their bodies in the per-module atom order (so the
/// multi-head part of the positive graph is acyclic), plus one 2-cycle of
/// single-head rules over the module's top two atoms (a nontrivial SCC
/// that never contains two co-heads). The result is positive, deductive,
/// disjunctive and head-cycle-free by construction, and its clause
/// hypergraph has exactly `num_modules` connected components.
/// `vars_per_module` must be >= 4.
Database HcfModularDdb(int num_modules, int vars_per_module,
                       int clauses_per_module, uint64_t seed);

// ---------------------------------------------------------------------------
// Explicit-stream variants. Each generator above owns a local Rng seeded
// from its `seed` argument; these overloads instead draw from a caller-owned
// stream, which makes the randomness flow explicit (no hidden state, and
// provably no shared mutable globals to race on). Parallel bench families
// combine them with DeriveSeed(base, i) from util/rng.h: worker t builds
// instance i from Rng(DeriveSeed(seed, i)) without having to generate
// instances 0..i-1 first, so the family is identical for every thread
// count, schedule and visit order. `cfg.seed` / `seed` parameters are
// ignored by these overloads.
// ---------------------------------------------------------------------------

Database RandomDdb(const DdbConfig& cfg, Rng* rng);
Database RandomPositiveDdb(int num_vars, int num_clauses, Rng* rng);
Database RandomStratifiedDdb(int num_vars, int num_clauses, int num_strata,
                             double negation_fraction, Rng* rng);
QbfForallExistsCnf RandomQbf(int nx, int ny, int num_clauses, int width,
                             Rng* rng);
sat::Cnf RandomCnf(int num_vars, int num_clauses, int width, Rng* rng);
Database GraphColoringDdb(int num_nodes, double edge_probability,
                          int num_colors, Rng* rng);
Database DiagnosisDdb(int num_gates, int num_faulty, Rng* rng);
Database HcfModularDdb(int num_modules, int vars_per_module,
                       int clauses_per_module, Rng* rng);

}  // namespace dd

#endif  // DD_GEN_GENERATORS_H_
