#include "ground/ast.h"

#include <algorithm>
#include <set>

namespace dd {
namespace ground {

bool PredAtom::IsGround() const {
  for (const Term& t : args) {
    if (t.is_variable) return false;
  }
  return true;
}

std::string PredAtom::ToString() const {
  if (args.empty()) return predicate;
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i) out += ",";
    out += args[i].name;
  }
  out += ")";
  return out;
}

std::vector<std::string> FoRule::Variables() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  auto collect = [&](const std::vector<PredAtom>& atoms) {
    for (const PredAtom& a : atoms) {
      for (const Term& t : a.args) {
        if (t.is_variable && seen.insert(t.name).second) {
          out.push_back(t.name);
        }
      }
    }
  };
  collect(heads);
  collect(pos_body);
  collect(neg_body);
  return out;
}

bool FoRule::IsSafe() const {
  std::set<std::string> positive;
  for (const PredAtom& a : pos_body) {
    for (const Term& t : a.args) {
      if (t.is_variable) positive.insert(t.name);
    }
  }
  for (const std::string& v : Variables()) {
    if (positive.find(v) == positive.end()) return false;
  }
  return true;
}

std::string FoRule::ToString() const {
  std::string out;
  for (size_t i = 0; i < heads.size(); ++i) {
    if (i) out += " | ";
    out += heads[i].ToString();
  }
  if (!pos_body.empty() || !neg_body.empty()) {
    out += heads.empty() ? ":- " : " :- ";
    bool first = true;
    for (const PredAtom& a : pos_body) {
      if (!first) out += ", ";
      first = false;
      out += a.ToString();
    }
    for (const PredAtom& a : neg_body) {
      if (!first) out += ", ";
      first = false;
      out += "not ";  // append-style: gcc-12 -Wrestrict false positive
      out += a.ToString();
    }
  }
  out += ".";
  return out;
}

std::vector<std::string> FoProgram::Constants() const {
  std::set<std::string> consts;
  auto collect = [&](const std::vector<PredAtom>& atoms) {
    for (const PredAtom& a : atoms) {
      for (const Term& t : a.args) {
        if (!t.is_variable) consts.insert(t.name);
      }
    }
  };
  for (const FoRule& r : rules) {
    collect(r.heads);
    collect(r.pos_body);
    collect(r.neg_body);
  }
  return std::vector<std::string>(consts.begin(), consts.end());
}

std::string FoProgram::ToString() const {
  std::string out;
  for (const FoRule& r : rules) {
    out += r.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace ground
}  // namespace dd
