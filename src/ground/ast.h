// First-order (Datalog-style) rule language and its AST.
//
// The paper analyzes *propositional* (grounded) disjunctive databases and
// remarks that general databases are grounded first. This module provides
// that front-end: rules with predicates, constants and variables, e.g.
//
//   color(N, red) | color(N, green) | color(N, blue) :- node(N).
//   :- edge(X, Y), color(X, C), color(Y, C).
//
// Variables are identifiers starting with an uppercase letter; everything
// else is a constant. The grounder (ground/grounder.h) instantiates the
// rules over the Herbrand universe into a propositional Database.
#ifndef DD_GROUND_AST_H_
#define DD_GROUND_AST_H_

#include <string>
#include <vector>

namespace dd {
namespace ground {

/// A term: a variable (uppercase initial) or a constant.
struct Term {
  bool is_variable = false;
  std::string name;

  bool operator==(const Term& o) const {
    return is_variable == o.is_variable && name == o.name;
  }
};

/// A predicate atom p(t1, ..., tk); k = 0 encodes a propositional atom.
struct PredAtom {
  std::string predicate;
  std::vector<Term> args;

  int arity() const { return static_cast<int>(args.size()); }
  bool IsGround() const;
  /// Renders "p(a,B)" (no spaces); ground atoms name propositional vars.
  std::string ToString() const;
};

/// One first-order rule  h1 | ... :- b1, ..., not c1, ...
struct FoRule {
  std::vector<PredAtom> heads;
  std::vector<PredAtom> pos_body;
  std::vector<PredAtom> neg_body;

  /// Names of all variables occurring in the rule (deduplicated, in order
  /// of first occurrence).
  std::vector<std::string> Variables() const;
  /// Datalog safety: every variable occurs in the positive body.
  bool IsSafe() const;
  std::string ToString() const;
};

/// A first-order program.
struct FoProgram {
  std::vector<FoRule> rules;

  /// All constants mentioned anywhere (the Herbrand universe), sorted.
  std::vector<std::string> Constants() const;
  std::string ToString() const;
};

}  // namespace ground
}  // namespace dd

#endif  // DD_GROUND_AST_H_
