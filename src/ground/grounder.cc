#include "ground/grounder.h"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "ground/parser.h"
#include "util/string_util.h"

namespace dd {
namespace ground {

namespace {

bool HasNegation(const FoProgram& prog) {
  for (const FoRule& r : prog.rules) {
    if (!r.neg_body.empty()) return true;
  }
  return false;
}

// Substitutes the current variable assignment into an atom and interns the
// resulting ground atom name.
Var InternGround(const PredAtom& atom,
                 const std::unordered_map<std::string, std::string>& subst,
                 Vocabulary* voc) {
  if (atom.args.empty()) return voc->Intern(atom.predicate);
  std::string name = atom.predicate + "(";
  for (size_t i = 0; i < atom.args.size(); ++i) {
    if (i) name += ",";
    const Term& t = atom.args[i];
    name += t.is_variable ? subst.at(t.name) : t.name;
  }
  name += ")";
  return voc->Intern(name);
}

// Ground-tuple store shared by the bottom-up grounder and the atom-level
// relevance filter: per predicate, the set of derived argument tuples.
class TupleStore {
 public:
  // Returns true if the tuple was new.
  bool Insert(const std::string& pred, std::vector<std::string> args) {
    auto& entry = by_pred_[pred];
    std::string key = Join(args, "\x1f");
    if (!entry.seen.insert(key).second) return false;
    entry.tuples.push_back(std::move(args));
    return true;
  }

  bool Contains(const std::string& pred,
                const std::vector<std::string>& args) const {
    auto it = by_pred_.find(pred);
    if (it == by_pred_.end()) return false;
    return it->second.seen.count(Join(args, "\x1f")) > 0;
  }

  const std::vector<std::vector<std::string>>* Tuples(
      const std::string& pred) const {
    auto it = by_pred_.find(pred);
    return it == by_pred_.end() ? nullptr : &it->second.tuples;
  }

 private:
  struct Entry {
    std::set<std::string> seen;
    std::vector<std::vector<std::string>> tuples;
  };
  std::map<std::string, Entry> by_pred_;
};

// Backtracking join of the positive body against the store. Calls `emit`
// with a complete substitution for every match.
void JoinBody(const std::vector<PredAtom>& body, size_t idx,
              const TupleStore& store,
              std::unordered_map<std::string, std::string>* subst,
              const std::function<void()>& emit) {
  if (idx == body.size()) {
    emit();
    return;
  }
  const PredAtom& atom = body[idx];
  const auto* tuples = store.Tuples(atom.predicate);
  if (tuples == nullptr) return;
  for (const auto& tuple : *tuples) {
    if (static_cast<int>(tuple.size()) != atom.arity()) continue;
    // Try to unify the atom's terms with the tuple.
    std::vector<std::string> bound_here;
    bool ok = true;
    for (size_t i = 0; i < tuple.size(); ++i) {
      const Term& t = atom.args[i];
      if (!t.is_variable) {
        if (t.name != tuple[i]) {
          ok = false;
          break;
        }
        continue;
      }
      auto it = subst->find(t.name);
      if (it != subst->end()) {
        if (it->second != tuple[i]) {
          ok = false;
          break;
        }
      } else {
        (*subst)[t.name] = tuple[i];
        bound_here.push_back(t.name);
      }
    }
    if (ok) JoinBody(body, idx + 1, store, subst, emit);
    for (const auto& v : bound_here) subst->erase(v);
  }
}

// The ground args of `a` under `subst`; head variables left unbound by an
// unsafe rule's body join are expanded over the universe by the caller.
std::vector<std::string> GroundArgs(
    const PredAtom& a,
    const std::unordered_map<std::string, std::string>& subst) {
  std::vector<std::string> out;
  out.reserve(a.args.size());
  for (const Term& t : a.args) {
    out.push_back(t.is_variable ? subst.at(t.name) : t.name);
  }
  return out;
}

// Atom-level derivability closure: the fixpoint of "a ground head atom is
// derivable when some rule instance's positive body lies inside the
// closure". This is exactly the tuple set GroundBottomUp joins against,
// which is what makes Ground(relevance_filter) emit the same clause set
// (hence the same util/fingerprint key) as GroundBottomUp on safe
// deductive programs. Head variables outside the positive body (unsafe
// rules, allowed with require_safety=false) expand over the universe.
TupleStore DerivableAtoms(const FoProgram& prog,
                          const std::vector<std::string>& universe) {
  TupleStore store;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::pair<std::string, std::vector<std::string>>> pending;
    for (const FoRule& r : prog.rules) {
      std::unordered_map<std::string, std::string> subst;
      JoinBody(r.pos_body, 0, store, &subst, [&]() {
        for (const PredAtom& h : r.heads) {
          std::vector<std::string> free;
          for (const Term& t : h.args) {
            if (t.is_variable && subst.find(t.name) == subst.end()) {
              free.push_back(t.name);
            }
          }
          if (free.empty()) {
            pending.emplace_back(h.predicate, GroundArgs(h, subst));
            continue;
          }
          if (universe.empty()) continue;
          // Unsafe head: every instantiation of the free variables.
          std::vector<size_t> pick(free.size(), 0);
          for (;;) {
            for (size_t i = 0; i < free.size(); ++i) {
              subst[free[i]] = universe[pick[i]];
            }
            pending.emplace_back(h.predicate, GroundArgs(h, subst));
            size_t i = 0;
            for (; i < pick.size(); ++i) {
              if (++pick[i] < universe.size()) break;
              pick[i] = 0;
            }
            if (i == pick.size()) break;
          }
          for (const std::string& v : free) subst.erase(v);
        }
      });
    }
    for (auto& [pred, args] : pending) {
      if (store.Insert(pred, std::move(args))) changed = true;
    }
  }
  return store;
}

}  // namespace

Result<Database> Ground(const FoProgram& program, const GroundOptions& opts) {
  // Safety.
  if (opts.require_safety) {
    for (const FoRule& r : program.rules) {
      if (!r.IsSafe()) {
        return Status::FailedPrecondition(
            "unsafe rule (variable outside the positive body): " +
            r.ToString());
      }
    }
  }
  std::vector<std::string> universe = program.Constants();
  const bool use_relevance =
      opts.relevance_filter && !HasNegation(program);
  TupleStore derivable;
  if (use_relevance) derivable = DerivableAtoms(program, universe);

  Database db;
  std::set<std::vector<int32_t>> seen;  // clause dedupe keys
  int64_t emitted = 0;

  for (const FoRule& r : program.rules) {
    std::vector<std::string> vars = r.Variables();
    if (!vars.empty() && universe.empty()) {
      // No constants anywhere: rules with variables have no instances.
      continue;
    }
    // Odometer over universe^|vars|.
    std::vector<size_t> pick(vars.size(), 0);
    std::unordered_map<std::string, std::string> subst;
    auto advance = [&]() {
      size_t i = 0;
      for (; i < pick.size(); ++i) {
        if (++pick[i] < universe.size()) return true;
        pick[i] = 0;
      }
      return false;
    };
    for (;;) {
      subst.clear();
      for (size_t i = 0; i < vars.size(); ++i) {
        subst[vars[i]] = universe[pick[i]];
      }
      // Atom-level relevance: skip the instance unless every positive
      // body atom lies in the derivable closure — the same membership
      // test the bottom-up grounder's join performs, so the two grounders
      // emit identical clause sets (and fingerprints) on safe deductive
      // programs.
      bool relevant = true;
      if (use_relevance) {
        for (const PredAtom& b : r.pos_body) {
          if (!derivable.Contains(b.predicate, GroundArgs(b, subst))) {
            relevant = false;
            break;
          }
        }
      }
      if (!relevant) {
        if (!advance()) break;
        continue;
      }
      std::vector<Var> heads, pos, neg;
      for (const PredAtom& a : r.heads) {
        heads.push_back(InternGround(a, subst, &db.vocabulary()));
      }
      for (const PredAtom& a : r.pos_body) {
        pos.push_back(InternGround(a, subst, &db.vocabulary()));
      }
      for (const PredAtom& a : r.neg_body) {
        neg.push_back(InternGround(a, subst, &db.vocabulary()));
      }
      Clause clause(std::move(heads), std::move(pos), std::move(neg));
      std::vector<int32_t> key;
      for (Var v : clause.heads()) key.push_back(v);
      key.push_back(-1);
      for (Var v : clause.pos_body()) key.push_back(v);
      key.push_back(-2);
      for (Var v : clause.neg_body()) key.push_back(v);
      if (seen.insert(key).second) {
        db.AddClause(std::move(clause));
        if (++emitted > opts.max_clauses) {
          return Status::ResourceExhausted(
              StrFormat("grounding exceeded %lld clauses",
                        static_cast<long long>(opts.max_clauses)));
        }
      }
      if (!advance()) break;
    }
  }
  return db;
}

Result<Database> GroundProgramText(std::string_view text,
                                   const GroundOptions& opts) {
  DD_ASSIGN_OR_RETURN(FoProgram prog, ParseProgram(text));
  return Ground(prog, opts);
}

Result<Database> GroundBottomUp(const FoProgram& program,
                                const GroundOptions& opts) {
  for (const FoRule& r : program.rules) {
    if (!r.neg_body.empty()) {
      return Status::FailedPrecondition(
          "GroundBottomUp handles deductive programs only (no negation): " +
          r.ToString());
    }
    if (!r.IsSafe()) {
      return Status::FailedPrecondition(
          "unsafe rule (variable outside the positive body): " +
          r.ToString());
    }
  }

  Database db;
  TupleStore store;
  std::set<std::vector<int32_t>> seen_clauses;
  int64_t emitted = 0;
  Status overflow = Status::OK();

  bool changed = true;
  while (changed && overflow.ok()) {
    changed = false;
    // Newly derived head tuples are buffered and installed after the pass:
    // inserting during the join would invalidate the tuple vectors the
    // backtracking iteration walks.
    std::vector<std::pair<std::string, std::vector<std::string>>> pending;
    for (const FoRule& r : program.rules) {
      if (!overflow.ok()) break;
      std::unordered_map<std::string, std::string> subst;
      JoinBody(r.pos_body, 0, store, &subst, [&]() {
        if (!overflow.ok()) return;
        // Build and dedupe the instance.
        std::vector<Var> heads, pos;
        for (const PredAtom& a : r.heads) {
          heads.push_back(InternGround(a, subst, &db.vocabulary()));
        }
        for (const PredAtom& a : r.pos_body) {
          pos.push_back(InternGround(a, subst, &db.vocabulary()));
        }
        Clause clause(std::move(heads), std::move(pos), {});
        std::vector<int32_t> key;
        for (Var v : clause.heads()) key.push_back(v);
        key.push_back(-1);
        for (Var v : clause.pos_body()) key.push_back(v);
        if (seen_clauses.insert(key).second) {
          db.AddClause(std::move(clause));
          if (++emitted > opts.max_clauses) {
            overflow = Status::ResourceExhausted(
                StrFormat("grounding exceeded %lld clauses",
                          static_cast<long long>(opts.max_clauses)));
            return;
          }
        }
        // Every head atom becomes derivable (installed after the pass).
        for (const PredAtom& a : r.heads) {
          pending.emplace_back(a.predicate, GroundArgs(a, subst));
        }
      });
    }
    for (auto& [pred, args] : pending) {
      if (store.Insert(pred, std::move(args))) changed = true;
    }
  }
  DD_RETURN_IF_ERROR(overflow);
  return db;
}

}  // namespace ground
}  // namespace dd
