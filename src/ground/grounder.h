// Grounding: instantiating a first-order program over its Herbrand
// universe into a propositional Database, the form the paper (and the rest
// of this library) works with.
#ifndef DD_GROUND_GROUNDER_H_
#define DD_GROUND_GROUNDER_H_

#include <cstdint>

#include "ground/ast.h"
#include "logic/database.h"
#include "util/status.h"

namespace dd {
namespace ground {

/// Grounding limits and policies.
struct GroundOptions {
  /// Upper bound on emitted ground clauses (ResourceExhausted beyond).
  int64_t max_clauses = 1000000;
  /// Reject rules whose variables do not all occur in the positive body
  /// (Datalog safety). When false, unsafe rules are instantiated over the
  /// full universe.
  bool require_safety = true;
  /// Drop ground rules whose positive body mentions a ground atom outside
  /// the head-derivable closure (an atom-level relevance filter that
  /// typically shrinks the grounding by orders of magnitude). The filter
  /// performs the same closure-membership test GroundBottomUp joins
  /// against, so Ground(relevance_filter) and GroundBottomUp emit the
  /// SAME clause set — hence the same util/fingerprint key — on safe
  /// deductive programs: either grounder's output hits the other's shared
  /// answer-cache and model-bank entries instead of missing.
  ///
  /// SOUNDNESS SCOPE: the filter preserves every semantics whose intended
  /// models live inside the head-derivable closure — GCWA, EGCWA, full
  /// ECWA (P = V), DDR, PWS, DSM, PERF on deductive programs. It can
  /// change answers for ECWA/CCWA with floating (Z) atoms, whose minimal
  /// models may carry junk outside the closure that dropped clauses would
  /// have constrained, and it is automatically disabled for programs with
  /// negation. Off by default; enable for the CWA/fixpoint family.
  bool relevance_filter = false;
};

/// Grounds `program` into a propositional Database. Ground atoms are named
/// "p(c1,c2)"; propositional atoms keep their bare name.
Result<Database> Ground(const FoProgram& program,
                        const GroundOptions& opts = {});

/// Convenience: parse + ground in one step.
Result<Database> GroundProgramText(std::string_view text,
                                   const GroundOptions& opts = {});

/// Bottom-up grounding for *deductive* programs (no negation; safety
/// required): instantiates rules by joining their positive bodies against
/// the set of derivable ground atoms instead of enumerating the full
/// universe^variables space. Emits exactly the instances whose positive
/// body lies inside the head-derivable closure, so it carries the same
/// soundness scope as the relevance filter (see above) — it is the right
/// grounder for the GCWA/EGCWA/DDR/PWS/DSM family and typically orders of
/// magnitude smaller and faster than Ground() on Datalog-style programs.
Result<Database> GroundBottomUp(const FoProgram& program,
                                const GroundOptions& opts = {});

}  // namespace ground
}  // namespace dd

#endif  // DD_GROUND_GROUNDER_H_
