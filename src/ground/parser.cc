#include "ground/parser.h"

#include <cctype>

#include "util/string_util.h"

namespace dd {
namespace ground {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<FoProgram> Run() {
    FoProgram prog;
    SkipSpace();
    while (pos_ < text_.size()) {
      DD_ASSIGN_OR_RETURN(FoRule rule, ParseRule());
      prog.rules.push_back(std::move(rule));
      SkipSpace();
    }
    return prog;
  }

 private:
  void SkipSpace() {
    for (;;) {
      while (pos_ < text_.size() &&
             std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        if (text_[pos_] == '\n') ++line_;
        ++pos_;
      }
      if (pos_ < text_.size() &&
          (text_[pos_] == '%' ||
           (text_[pos_] == '/' && pos_ + 1 < text_.size() &&
            text_[pos_ + 1] == '/'))) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      break;
    }
  }

  bool Eat(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool EatArrow() {
    SkipSpace();
    if (pos_ + 1 < text_.size() &&
        ((text_[pos_] == ':' && text_[pos_ + 1] == '-') ||
         (text_[pos_] == '<' && text_[pos_ + 1] == '-'))) {
      pos_ += 2;
      return true;
    }
    return false;
  }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("line %d: %s", line_, msg.c_str()));
  }

  Result<std::string> ParseIdent() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '\'')) {
      ++pos_;
    }
    if (start == pos_) return Err("identifier expected");
    return std::string(text_.substr(start, pos_ - start));
  }

  Result<PredAtom> ParseAtom() {
    DD_ASSIGN_OR_RETURN(std::string name, ParseIdent());
    if (name == "not") return Err("'not' is not a valid atom name");
    PredAtom atom;
    atom.predicate = std::move(name);
    if (Eat('(')) {
      for (;;) {
        DD_ASSIGN_OR_RETURN(std::string t, ParseIdent());
        Term term;
        term.name = std::move(t);
        term.is_variable =
            std::isupper(static_cast<unsigned char>(term.name[0])) ||
            term.name[0] == '_';
        atom.args.push_back(std::move(term));
        if (Eat(',')) continue;
        if (Eat(')')) break;
        return Err("',' or ')' expected in argument list");
      }
    }
    return atom;
  }

  // Returns true if the next token is the keyword "not" (consumed).
  bool EatNot() {
    SkipSpace();
    if (text_.substr(pos_).rfind("not", 0) == 0) {
      size_t after = pos_ + 3;
      if (after >= text_.size() ||
          (!std::isalnum(static_cast<unsigned char>(text_[after])) &&
           text_[after] != '_')) {
        pos_ = after;
        return true;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == '~' || text_[pos_] == '-')) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<FoRule> ParseRule() {
    FoRule rule;
    SkipSpace();
    // Head (absent for integrity rules starting with ':-').
    if (!(pos_ + 1 < text_.size() && text_[pos_] == ':' &&
          text_[pos_ + 1] == '-')) {
      for (;;) {
        DD_ASSIGN_OR_RETURN(PredAtom a, ParseAtom());
        rule.heads.push_back(std::move(a));
        if (Eat('|') || Eat(';')) continue;
        break;
      }
    }
    if (EatArrow()) {
      for (;;) {
        bool neg = EatNot();
        DD_ASSIGN_OR_RETURN(PredAtom a, ParseAtom());
        (neg ? rule.neg_body : rule.pos_body).push_back(std::move(a));
        if (Eat(',')) continue;
        break;
      }
    }
    if (!Eat('.')) return Err("'.' expected");
    if (rule.heads.empty() && rule.pos_body.empty() &&
        rule.neg_body.empty()) {
      return Err("empty rule");
    }
    return rule;
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<FoProgram> ParseProgram(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace ground
}  // namespace dd
