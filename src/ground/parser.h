// Parser for the first-order rule language (ground/ast.h).
//
// Syntax is the propositional program syntax extended with predicate
// arguments:
//
//   path(X, Y) | blocked(X, Y) :- edge(X, Y).
//   path(X, Z) :- path(X, Y), path(Y, Z).
//   :- blocked(a, b), not repaired.
//
// Identifiers starting with an uppercase letter (or '_') are variables;
// all other identifiers and integer literals are constants. '%' and '//'
// start comments.
#ifndef DD_GROUND_PARSER_H_
#define DD_GROUND_PARSER_H_

#include <string_view>

#include "ground/ast.h"
#include "util/status.h"

namespace dd {
namespace ground {

/// Parses a first-order program.
Result<FoProgram> ParseProgram(std::string_view text);

}  // namespace ground
}  // namespace dd

#endif  // DD_GROUND_PARSER_H_
