#include "logic/clause.h"

#include <algorithm>

#include "logic/vocabulary.h"
#include "util/macros.h"

namespace dd {

namespace {
// Canonicalize: sort and dedupe so structural equality is semantic equality
// for atom lists.
void Canonicalize(std::vector<Var>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}
}  // namespace

Clause::Clause(std::vector<Var> heads, std::vector<Var> pos_body,
               std::vector<Var> neg_body)
    : heads_(std::move(heads)),
      pos_body_(std::move(pos_body)),
      neg_body_(std::move(neg_body)) {
  Canonicalize(&heads_);
  Canonicalize(&pos_body_);
  Canonicalize(&neg_body_);
}

bool Clause::SatisfiedBy(const Interpretation& i) const {
  for (Var b : pos_body_)
    if (!i.Contains(b)) return true;  // body false
  for (Var c : neg_body_)
    if (i.Contains(c)) return true;  // body false
  for (Var h : heads_)
    if (i.Contains(h)) return true;  // head true
  return false;
}

bool Clause::SatisfiedBy3(const PartialInterpretation& i) const {
  TruthValue body = TruthValue::kTrue;
  for (Var b : pos_body_) body = std::min(body, i.Value(b));
  for (Var c : neg_body_) body = std::min(body, Negate(i.Value(c)));
  TruthValue head = TruthValue::kFalse;
  for (Var h : heads_) head = std::max(head, i.Value(h));
  return body <= head;
}

std::vector<Lit> Clause::ToClassicalClause() const {
  std::vector<Lit> out;
  out.reserve(heads_.size() + pos_body_.size() + neg_body_.size());
  for (Var h : heads_) out.push_back(Lit::Pos(h));
  for (Var b : pos_body_) out.push_back(Lit::Neg(b));
  for (Var c : neg_body_) out.push_back(Lit::Pos(c));
  return out;
}

Var Clause::MaxVar() const {
  Var m = kInvalidVar;
  for (Var v : heads_) m = std::max(m, v);
  for (Var v : pos_body_) m = std::max(m, v);
  for (Var v : neg_body_) m = std::max(m, v);
  return m;
}

std::string Clause::ToString(const Vocabulary& voc) const {
  std::string out;
  for (size_t i = 0; i < heads_.size(); ++i) {
    if (i) out += " | ";
    out += voc.Name(heads_[i]);
  }
  if (!pos_body_.empty() || !neg_body_.empty()) {
    out += heads_.empty() ? ":- " : " :- ";
    bool first = true;
    for (Var b : pos_body_) {
      if (!first) out += ", ";
      first = false;
      out += voc.Name(b);
    }
    for (Var c : neg_body_) {
      if (!first) out += ", ";
      first = false;
      out += "not ";
      out += voc.Name(c);
    }
  }
  out += ".";
  return out;
}

}  // namespace dd
