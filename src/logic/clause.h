// Database clauses: a1 | ... | an :- b1, ..., bk, not c1, ..., not cm.
//
// Following the paper's clause language C: heads are disjunctions of atoms,
// bodies are conjunctions of atoms and (for DNDBs) negated atoms. Special
// cases, using the paper's terminology:
//   * integrity clause:  empty head  (":- body", classically body -> false)
//   * fact:              empty body with nonempty head ("a | b.")
//   * positive clause:   no negated body atoms (the class C+)
#ifndef DD_LOGIC_CLAUSE_H_
#define DD_LOGIC_CLAUSE_H_

#include <string>
#include <vector>

#include "logic/interpretation.h"
#include "logic/partial_interpretation.h"
#include "logic/types.h"

namespace dd {

class Vocabulary;

/// One database clause  head1 | ... | headN :- pos1, ..., not neg1, ...
class Clause {
 public:
  Clause() = default;
  Clause(std::vector<Var> heads, std::vector<Var> pos_body,
         std::vector<Var> neg_body);

  /// A disjunctive fact `a1 | ... | an.`
  static Clause Fact(std::vector<Var> heads) {
    return Clause(std::move(heads), {}, {});
  }
  /// An integrity clause `:- body.`
  static Clause Integrity(std::vector<Var> pos_body,
                          std::vector<Var> neg_body = {}) {
    return Clause({}, std::move(pos_body), std::move(neg_body));
  }

  const std::vector<Var>& heads() const { return heads_; }
  const std::vector<Var>& pos_body() const { return pos_body_; }
  const std::vector<Var>& neg_body() const { return neg_body_; }

  bool is_integrity() const { return heads_.empty(); }
  bool is_fact() const {
    return !heads_.empty() && pos_body_.empty() && neg_body_.empty();
  }
  /// Member of C+ (no "not" in the body).
  bool is_positive() const { return neg_body_.empty(); }
  /// Non-disjunctive (at most one head atom).
  bool is_normal_rule() const { return heads_.size() <= 1; }

  /// Two-valued satisfaction: body true implies some head true.
  bool SatisfiedBy(const Interpretation& i) const;

  /// Three-valued satisfaction: value(head) >= value(body), where head value
  /// is the max over head atoms (0 if none) and body value the min over body
  /// literals (1 if none). This is Przymusinski's 3-valued clause semantics.
  bool SatisfiedBy3(const PartialInterpretation& i) const;

  /// The classical clause: heads ∪ {¬b : b ∈ pos_body} ∪ {c : c ∈ neg_body}.
  std::vector<Lit> ToClassicalClause() const;

  /// Largest variable mentioned, or kInvalidVar if the clause is empty.
  Var MaxVar() const;

  /// Renders e.g. "a | b :- c, not d." using `voc`.
  std::string ToString(const Vocabulary& voc) const;

  bool operator==(const Clause& o) const {
    return heads_ == o.heads_ && pos_body_ == o.pos_body_ &&
           neg_body_ == o.neg_body_;
  }

 private:
  std::vector<Var> heads_;
  std::vector<Var> pos_body_;
  std::vector<Var> neg_body_;
};

}  // namespace dd

#endif  // DD_LOGIC_CLAUSE_H_
