#include "logic/database.h"

#include <algorithm>

#include "util/macros.h"

namespace dd {

void Database::AddClause(Clause c) {
  DD_CHECK(c.MaxVar() < num_vars());
  clauses_.push_back(std::move(c));
}

void Database::AddRule(const std::vector<std::string>& heads,
                       const std::vector<std::string>& pos_body,
                       const std::vector<std::string>& neg_body) {
  std::vector<Var> h, pb, nb;
  h.reserve(heads.size());
  for (const auto& s : heads) h.push_back(voc_.Intern(s));
  for (const auto& s : pos_body) pb.push_back(voc_.Intern(s));
  for (const auto& s : neg_body) nb.push_back(voc_.Intern(s));
  clauses_.emplace_back(std::move(h), std::move(pb), std::move(nb));
}

bool Database::HasNegation() const {
  return std::any_of(clauses_.begin(), clauses_.end(),
                     [](const Clause& c) { return !c.is_positive(); });
}

bool Database::HasIntegrityClauses() const {
  return std::any_of(clauses_.begin(), clauses_.end(),
                     [](const Clause& c) { return c.is_integrity(); });
}

bool Database::Satisfies(const Interpretation& i) const {
  DD_DCHECK(i.num_vars() >= num_vars());
  for (const Clause& c : clauses_) {
    if (!c.SatisfiedBy(i)) return false;
  }
  return true;
}

bool Database::Satisfies3(const PartialInterpretation& i) const {
  for (const Clause& c : clauses_) {
    if (!c.SatisfiedBy3(i)) return false;
  }
  return true;
}

std::vector<std::vector<Lit>> Database::ToCnf() const {
  std::vector<std::vector<Lit>> cnf;
  cnf.reserve(clauses_.size());
  for (const Clause& c : clauses_) cnf.push_back(c.ToClassicalClause());
  return cnf;
}

Database Database::GlReduct(const Interpretation& i) const {
  Database out(voc_);
  for (const Clause& c : clauses_) {
    bool blocked = false;
    for (Var neg : c.neg_body()) {
      if (i.Contains(neg)) {
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    out.AddClause(Clause(c.heads(), c.pos_body(), {}));
  }
  return out;
}

Database Database::Positivize() const {
  Database out(voc_);
  for (const Clause& c : clauses_) {
    std::vector<Var> heads = c.heads();
    heads.insert(heads.end(), c.neg_body().begin(), c.neg_body().end());
    out.AddClause(Clause(std::move(heads), c.pos_body(), {}));
  }
  return out;
}

Database Database::SelectClauses(const std::vector<int>& clause_indices) const {
  Database out(voc_);
  for (int idx : clause_indices) {
    DD_CHECK(idx >= 0 && idx < num_clauses());
    out.AddClause(clauses_[static_cast<size_t>(idx)]);
  }
  return out;
}

Interpretation Database::MentionedAtoms() const {
  Interpretation out(num_vars());
  for (const Clause& c : clauses_) {
    for (Var v : c.heads()) out.Insert(v);
    for (Var v : c.pos_body()) out.Insert(v);
    for (Var v : c.neg_body()) out.Insert(v);
  }
  return out;
}

std::string Database::ToString() const {
  std::string out;
  for (const Clause& c : clauses_) {
    out += c.ToString(voc_);
    out += "\n";
  }
  return out;
}

}  // namespace dd
