// Database: a finite set of clauses over a vocabulary, with the syntactic
// classification the paper's two tables are organized around.
#ifndef DD_LOGIC_DATABASE_H_
#define DD_LOGIC_DATABASE_H_

#include <string>
#include <vector>

#include "logic/clause.h"
#include "logic/interpretation.h"
#include "logic/types.h"
#include "logic/vocabulary.h"

namespace dd {

/// Syntactic class of a database, after [Fernandez & Minker 92] as used in
/// the paper (Section 2): every DB is a DNDB; it is a DDDB if no "not"
/// occurs; Table 1 additionally excludes integrity clauses ("positive").
enum class DatabaseClass {
  kPositive,    ///< no negation, no integrity clauses (Table 1 regime)
  kDeductive,   ///< DDDB: no negation (subset of C+), integrity allowed
  kStratified,  ///< DSDB: negation stratified (computed by strat/)
  kNormal,      ///< DNDB: arbitrary clauses
};

/// A propositional disjunctive database: vocabulary + clause list.
///
/// This is the central value type of the library; all semantics operate on
/// (const) Databases. Copies are deep and cheap enough at the scales the
/// experiments use.
class Database {
 public:
  Database() = default;
  explicit Database(Vocabulary voc) : voc_(std::move(voc)) {}

  Vocabulary& vocabulary() { return voc_; }
  const Vocabulary& vocabulary() const { return voc_; }

  /// Number of propositional variables |V|.
  int num_vars() const { return voc_.size(); }
  int num_clauses() const { return static_cast<int>(clauses_.size()); }
  const std::vector<Clause>& clauses() const { return clauses_; }
  const Clause& clause(int i) const { return clauses_[static_cast<size_t>(i)]; }

  /// Appends a clause; all its variables must already be interned.
  void AddClause(Clause c);

  /// Convenience: interns names and appends the clause.
  void AddRule(const std::vector<std::string>& heads,
               const std::vector<std::string>& pos_body = {},
               const std::vector<std::string>& neg_body = {});

  bool HasNegation() const;
  bool HasIntegrityClauses() const;
  /// Table 1 regime: no integrity clauses and no negation.
  bool IsPositive() const { return !HasNegation() && !HasIntegrityClauses(); }
  /// DDDB: contained in C+ (no negation).
  bool IsDeductive() const { return !HasNegation(); }

  /// Classical satisfaction: I satisfies every clause.
  bool Satisfies(const Interpretation& i) const;
  /// Three-valued satisfaction of every clause.
  bool Satisfies3(const PartialInterpretation& i) const;

  /// The classical CNF of the database (one classical clause per DB clause).
  std::vector<std::vector<Lit>> ToCnf() const;

  /// Gelfond-Lifschitz reduct DB^I: drop every clause with a negated body
  /// atom that is true in I; delete the negative body from the rest.
  /// The result is a DDDB over the same vocabulary.
  Database GlReduct(const Interpretation& i) const;

  /// The positivized database used by ICWA (paper Section 4): every body
  /// literal "not c" is moved to the head as atom c, yielding a DB in C+.
  Database Positivize() const;

  /// Subdatabase containing only the clauses at positions [0, k) of the
  /// given clause index list (strata decompositions use this).
  Database SelectClauses(const std::vector<int>& clause_indices) const;

  /// All atoms occurring anywhere in some clause (facts about unused
  /// vocabulary atoms matter to CWA-style semantics: unmentioned atoms are
  /// trivially false in all minimal models).
  Interpretation MentionedAtoms() const;

  /// Multi-line textual form, one clause per line.
  std::string ToString() const;

 private:
  Vocabulary voc_;
  std::vector<Clause> clauses_;
};

}  // namespace dd

#endif  // DD_LOGIC_DATABASE_H_
