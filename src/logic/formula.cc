#include "logic/formula.h"

#include <algorithm>

#include "logic/vocabulary.h"
#include "util/macros.h"

namespace dd {

Formula FormulaNode::MakeConst(bool value) {
  return Formula(new FormulaNode(FormulaKind::kConst, value, kInvalidVar, {}));
}

Formula FormulaNode::MakeAtom(Var v) {
  DD_CHECK(v >= 0);
  return Formula(new FormulaNode(FormulaKind::kAtom, false, v, {}));
}

Formula FormulaNode::MakeNot(Formula f) {
  DD_CHECK(f != nullptr);
  return Formula(
      new FormulaNode(FormulaKind::kNot, false, kInvalidVar, {std::move(f)}));
}

Formula FormulaNode::MakeAnd(std::vector<Formula> fs) {
  if (fs.empty()) return MakeConst(true);
  if (fs.size() == 1) return fs[0];
  return Formula(
      new FormulaNode(FormulaKind::kAnd, false, kInvalidVar, std::move(fs)));
}

Formula FormulaNode::MakeAnd(Formula a, Formula b) {
  return MakeAnd(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula FormulaNode::MakeOr(std::vector<Formula> fs) {
  if (fs.empty()) return MakeConst(false);
  if (fs.size() == 1) return fs[0];
  return Formula(
      new FormulaNode(FormulaKind::kOr, false, kInvalidVar, std::move(fs)));
}

Formula FormulaNode::MakeOr(Formula a, Formula b) {
  return MakeOr(std::vector<Formula>{std::move(a), std::move(b)});
}

Formula FormulaNode::MakeImplies(Formula lhs, Formula rhs) {
  return Formula(new FormulaNode(FormulaKind::kImplies, false, kInvalidVar,
                                 {std::move(lhs), std::move(rhs)}));
}

Formula FormulaNode::MakeIff(Formula lhs, Formula rhs) {
  return Formula(new FormulaNode(FormulaKind::kIff, false, kInvalidVar,
                                 {std::move(lhs), std::move(rhs)}));
}

Formula FormulaNode::MakeLit(Lit l) {
  Formula a = MakeAtom(l.var());
  return l.positive() ? a : MakeNot(a);
}

bool FormulaNode::Eval(const Interpretation& i) const {
  switch (kind_) {
    case FormulaKind::kConst:
      return const_value_;
    case FormulaKind::kAtom:
      return i.Contains(atom_);
    case FormulaKind::kNot:
      return !children_[0]->Eval(i);
    case FormulaKind::kAnd:
      for (const auto& c : children_)
        if (!c->Eval(i)) return false;
      return true;
    case FormulaKind::kOr:
      for (const auto& c : children_)
        if (c->Eval(i)) return true;
      return false;
    case FormulaKind::kImplies:
      return !children_[0]->Eval(i) || children_[1]->Eval(i);
    case FormulaKind::kIff:
      return children_[0]->Eval(i) == children_[1]->Eval(i);
  }
  DD_CHECK(false);
  return false;
}

TruthValue FormulaNode::Eval3(const PartialInterpretation& i) const {
  switch (kind_) {
    case FormulaKind::kConst:
      return const_value_ ? TruthValue::kTrue : TruthValue::kFalse;
    case FormulaKind::kAtom:
      return i.Value(atom_);
    case FormulaKind::kNot:
      return Negate(children_[0]->Eval3(i));
    case FormulaKind::kAnd: {
      TruthValue t = TruthValue::kTrue;
      for (const auto& c : children_) t = std::min(t, c->Eval3(i));
      return t;
    }
    case FormulaKind::kOr: {
      TruthValue t = TruthValue::kFalse;
      for (const auto& c : children_) t = std::max(t, c->Eval3(i));
      return t;
    }
    case FormulaKind::kImplies:
      return std::max(Negate(children_[0]->Eval3(i)), children_[1]->Eval3(i));
    case FormulaKind::kIff: {
      // (a -> b) and (b -> a) under strong Kleene.
      TruthValue a = children_[0]->Eval3(i);
      TruthValue b = children_[1]->Eval3(i);
      return std::min(std::max(Negate(a), b), std::max(Negate(b), a));
    }
  }
  DD_CHECK(false);
  return TruthValue::kUndef;
}

void FormulaNode::CollectAtoms(Interpretation* out) const {
  if (kind_ == FormulaKind::kAtom) {
    out->Insert(atom_);
    return;
  }
  for (const auto& c : children_) c->CollectAtoms(out);
}

Var FormulaNode::MaxVar() const {
  Var m = (kind_ == FormulaKind::kAtom) ? atom_ : kInvalidVar;
  for (const auto& c : children_) m = std::max(m, c->MaxVar());
  return m;
}

std::string FormulaNode::ToString(const Vocabulary& voc) const {
  switch (kind_) {
    case FormulaKind::kConst:
      return const_value_ ? "true" : "false";
    case FormulaKind::kAtom:
      return voc.Name(atom_);
    // Note: the cases below build with std::string out + append rather
    // than `"(" + std::string&& + ...` chains, which trip a gcc-12 -O3
    // -Wrestrict false positive (GCC PR105651) under -Werror.
    case FormulaKind::kNot: {
      std::string out = "~";
      out += children_[0]->ToString(voc);
      return out;
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::string sep = kind_ == FormulaKind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i) out += sep;
        out += children_[i]->ToString(voc);
      }
      out += ")";
      return out;
    }
    case FormulaKind::kImplies:
    case FormulaKind::kIff: {
      std::string out = "(";
      out += children_[0]->ToString(voc);
      out += kind_ == FormulaKind::kImplies ? " -> " : " <-> ";
      out += children_[1]->ToString(voc);
      out += ")";
      return out;
    }
  }
  DD_CHECK(false);
  return "";
}

namespace {

// Recursive Tseitin transform. Leafs return plain literals; internal nodes
// get a definition variable constrained in both directions.
Lit Encode(const FormulaNode& f, Var* next_var,
           std::vector<std::vector<Lit>>* clauses) {
  switch (f.kind()) {
    case FormulaKind::kConst: {
      // Represent constants with a fresh variable pinned by a unit clause.
      Var v = (*next_var)++;
      Lit l = Lit::Pos(v);
      clauses->push_back({f.const_value() ? l : ~l});
      return l;
    }
    case FormulaKind::kAtom:
      return Lit::Pos(f.atom());
    case FormulaKind::kNot:
      return ~Encode(*f.children()[0], next_var, clauses);
    case FormulaKind::kAnd: {
      std::vector<Lit> parts;
      parts.reserve(f.children().size());
      for (const auto& c : f.children())
        parts.push_back(Encode(*c, next_var, clauses));
      Lit d = Lit::Pos((*next_var)++);
      // d -> part_i  and  (all parts) -> d.
      std::vector<Lit> back{d};
      for (Lit p : parts) {
        clauses->push_back({~d, p});
        back.push_back(~p);
      }
      clauses->push_back(std::move(back));
      return d;
    }
    case FormulaKind::kOr: {
      std::vector<Lit> parts;
      parts.reserve(f.children().size());
      for (const auto& c : f.children())
        parts.push_back(Encode(*c, next_var, clauses));
      Lit d = Lit::Pos((*next_var)++);
      // part_i -> d  and  d -> (some part).
      std::vector<Lit> fwd{~d};
      for (Lit p : parts) {
        clauses->push_back({~p, d});
        fwd.push_back(p);
      }
      clauses->push_back(std::move(fwd));
      return d;
    }
    case FormulaKind::kImplies: {
      Lit a = Encode(*f.children()[0], next_var, clauses);
      Lit b = Encode(*f.children()[1], next_var, clauses);
      Lit d = Lit::Pos((*next_var)++);
      clauses->push_back({~d, ~a, b});  // d -> (a -> b)
      clauses->push_back({a, d});       // ~a -> d
      clauses->push_back({~b, d});      // b -> d
      return d;
    }
    case FormulaKind::kIff: {
      Lit a = Encode(*f.children()[0], next_var, clauses);
      Lit b = Encode(*f.children()[1], next_var, clauses);
      Lit d = Lit::Pos((*next_var)++);
      clauses->push_back({~d, ~a, b});
      clauses->push_back({~d, a, ~b});
      clauses->push_back({d, a, b});
      clauses->push_back({d, ~a, ~b});
      return d;
    }
  }
  DD_CHECK(false);
  return Lit();
}

}  // namespace

Lit TseitinEncode(const Formula& f, Var* next_var,
                  std::vector<std::vector<Lit>>* clauses) {
  DD_CHECK(f != nullptr && next_var != nullptr && clauses != nullptr);
  DD_CHECK(*next_var > f->MaxVar());
  return Encode(*f, next_var, clauses);
}

}  // namespace dd
