// Propositional formulas for the "inference of a formula" task.
//
// Immutable shared AST. Supports two-valued and Kleene three-valued
// evaluation, plus a Tseitin CNF encoding used by SAT-based inference
// ("is there a model of DB' satisfying ~F?").
#ifndef DD_LOGIC_FORMULA_H_
#define DD_LOGIC_FORMULA_H_

#include <memory>
#include <string>
#include <vector>

#include "logic/interpretation.h"
#include "logic/partial_interpretation.h"
#include "logic/types.h"

namespace dd {

class Vocabulary;

/// Connectives of the formula language.
enum class FormulaKind { kConst, kAtom, kNot, kAnd, kOr, kImplies, kIff };

class FormulaNode;
/// Formulas are immutable and shared; copying a Formula is O(1).
using Formula = std::shared_ptr<const FormulaNode>;

/// A node of the formula AST.
class FormulaNode {
 public:
  /// Constant true/false.
  static Formula MakeConst(bool value);
  /// A propositional atom.
  static Formula MakeAtom(Var v);
  static Formula MakeNot(Formula f);
  /// N-ary conjunction; empty = true.
  static Formula MakeAnd(std::vector<Formula> fs);
  static Formula MakeAnd(Formula a, Formula b);
  /// N-ary disjunction; empty = false.
  static Formula MakeOr(std::vector<Formula> fs);
  static Formula MakeOr(Formula a, Formula b);
  static Formula MakeImplies(Formula lhs, Formula rhs);
  static Formula MakeIff(Formula lhs, Formula rhs);
  /// The literal `l` as a formula.
  static Formula MakeLit(Lit l);

  FormulaKind kind() const { return kind_; }
  bool const_value() const { return const_value_; }
  Var atom() const { return atom_; }
  const std::vector<Formula>& children() const { return children_; }

  /// Two-valued evaluation.
  bool Eval(const Interpretation& i) const;

  /// Kleene three-valued evaluation (strong Kleene connectives; "implies"
  /// and "iff" via their classical definitions).
  TruthValue Eval3(const PartialInterpretation& i) const;

  /// Adds every atom occurring in the formula to `out` (sized num_vars).
  void CollectAtoms(Interpretation* out) const;

  /// Largest atom mentioned, kInvalidVar if none.
  Var MaxVar() const;

  std::string ToString(const Vocabulary& voc) const;

 private:
  FormulaNode(FormulaKind kind, bool cval, Var atom,
              std::vector<Formula> children)
      : kind_(kind),
        const_value_(cval),
        atom_(atom),
        children_(std::move(children)) {}

  FormulaKind kind_;
  bool const_value_ = false;
  Var atom_ = kInvalidVar;
  std::vector<Formula> children_;
};

/// Tseitin-encodes `f` into CNF clauses over fresh variables starting at
/// `*next_var` (incremented as used). Returns a literal `l` such that the
/// emitted clauses entail l <-> f; callers assert `l` (or its negation) to
/// constrain a SAT query by the formula.
Lit TseitinEncode(const Formula& f, Var* next_var,
                  std::vector<std::vector<Lit>>* clauses);

}  // namespace dd

#endif  // DD_LOGIC_FORMULA_H_
