#include "logic/formula_transform.h"

#include <algorithm>
#include <vector>

#include "util/macros.h"

namespace dd {

namespace {

using FN = FormulaNode;

bool IsConst(const Formula& f, bool value) {
  return f->kind() == FormulaKind::kConst && f->const_value() == value;
}

// Collects juncts of nested same-kind nodes (flattening).
void Flatten(const Formula& f, FormulaKind kind, std::vector<Formula>* out) {
  if (f->kind() == kind) {
    for (const Formula& c : f->children()) Flatten(c, kind, out);
  } else {
    out->push_back(f);
  }
}

// Deduplicates structurally equal juncts (quadratic; formulas are small).
void Dedup(std::vector<Formula>* parts) {
  std::vector<Formula> out;
  for (const Formula& p : *parts) {
    bool dup = false;
    for (const Formula& q : out) {
      if (StructurallyEqual(p, q)) {
        dup = true;
        break;
      }
    }
    if (!dup) out.push_back(p);
  }
  *parts = std::move(out);
}

}  // namespace

bool StructurallyEqual(const Formula& a, const Formula& b) {
  if (a.get() == b.get()) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case FormulaKind::kConst:
      return a->const_value() == b->const_value();
    case FormulaKind::kAtom:
      return a->atom() == b->atom();
    default:
      break;
  }
  if (a->children().size() != b->children().size()) return false;
  for (size_t i = 0; i < a->children().size(); ++i) {
    if (!StructurallyEqual(a->children()[i], b->children()[i])) return false;
  }
  return true;
}

int NodeCount(const Formula& f) {
  int n = 1;
  for (const Formula& c : f->children()) n += NodeCount(c);
  return n;
}

Formula Simplify(const Formula& f) {
  switch (f->kind()) {
    case FormulaKind::kConst:
    case FormulaKind::kAtom:
      return f;
    case FormulaKind::kNot: {
      Formula c = Simplify(f->children()[0]);
      if (c->kind() == FormulaKind::kConst) {
        return FN::MakeConst(!c->const_value());
      }
      if (c->kind() == FormulaKind::kNot) return c->children()[0];
      return FN::MakeNot(c);
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const bool is_and = f->kind() == FormulaKind::kAnd;
      std::vector<Formula> raw;
      for (const Formula& c : f->children()) {
        Flatten(Simplify(c), f->kind(), &raw);
      }
      std::vector<Formula> parts;
      for (const Formula& p : raw) {
        if (IsConst(p, !is_and)) return FN::MakeConst(!is_and);  // absorber
        if (IsConst(p, is_and)) continue;                        // neutral
        parts.push_back(p);
      }
      Dedup(&parts);
      if (parts.empty()) return FN::MakeConst(is_and);
      if (parts.size() == 1) return parts[0];
      return is_and ? FN::MakeAnd(std::move(parts))
                    : FN::MakeOr(std::move(parts));
    }
    case FormulaKind::kImplies: {
      Formula a = Simplify(f->children()[0]);
      Formula b = Simplify(f->children()[1]);
      if (IsConst(a, false) || IsConst(b, true)) return FN::MakeConst(true);
      if (IsConst(a, true)) return b;
      if (IsConst(b, false)) return Simplify(FN::MakeNot(a));
      return FN::MakeImplies(a, b);
    }
    case FormulaKind::kIff: {
      Formula a = Simplify(f->children()[0]);
      Formula b = Simplify(f->children()[1]);
      if (IsConst(a, true)) return b;
      if (IsConst(b, true)) return a;
      if (IsConst(a, false)) return Simplify(FN::MakeNot(b));
      if (IsConst(b, false)) return Simplify(FN::MakeNot(a));
      return FN::MakeIff(a, b);
    }
  }
  DD_CHECK(false);
  return f;
}

namespace {

Formula Nnf(const Formula& f, bool negated) {
  switch (f->kind()) {
    case FormulaKind::kConst:
      return FN::MakeConst(negated ? !f->const_value() : f->const_value());
    case FormulaKind::kAtom:
      return negated ? FN::MakeNot(f) : f;
    case FormulaKind::kNot:
      return Nnf(f->children()[0], !negated);
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      const bool make_and = (f->kind() == FormulaKind::kAnd) != negated;
      std::vector<Formula> parts;
      parts.reserve(f->children().size());
      for (const Formula& c : f->children()) {
        parts.push_back(Nnf(c, negated));
      }
      return make_and ? FN::MakeAnd(std::move(parts))
                      : FN::MakeOr(std::move(parts));
    }
    case FormulaKind::kImplies: {
      // a -> b == ~a | b ; negated: a & ~b.
      Formula na = Nnf(f->children()[0], !negated);
      Formula b = Nnf(f->children()[1], negated);
      return negated ? FN::MakeAnd(na, b) : FN::MakeOr(na, b);
    }
    case FormulaKind::kIff: {
      // a <-> b == (~a | b) & (~b | a); negated: (a & ~b) | (b & ~a).
      const Formula& a = f->children()[0];
      const Formula& b = f->children()[1];
      if (!negated) {
        return FN::MakeAnd(FN::MakeOr(Nnf(a, true), Nnf(b, false)),
                           FN::MakeOr(Nnf(b, true), Nnf(a, false)));
      }
      return FN::MakeOr(FN::MakeAnd(Nnf(a, false), Nnf(b, true)),
                        FN::MakeAnd(Nnf(b, false), Nnf(a, true)));
    }
  }
  DD_CHECK(false);
  return f;
}

}  // namespace

Formula ToNnf(const Formula& f) { return Nnf(f, false); }

}  // namespace dd
