// Formula transformations: constant folding / flattening and negation
// normal form. Used to keep Tseitin encodings small and query output
// readable; all transformations are logically equivalent (property-tested
// against evaluation on all assignments).
#ifndef DD_LOGIC_FORMULA_TRANSFORM_H_
#define DD_LOGIC_FORMULA_TRANSFORM_H_

#include "logic/formula.h"

namespace dd {

/// Bottom-up simplification:
///  * constant folding (true/false absorb or vanish in &,|,->,<->,~)
///  * double-negation elimination
///  * flattening of nested conjunctions/disjunctions
///  * deduplication of syntactically identical juncts.
/// The result is equivalent under two-valued semantics. (Kleene semantics
/// are NOT always preserved: e.g. x & ~x simplifies away only where it is
/// two-valued-sound, so no such rewrite is performed here at all — only
/// rewrites sound in both semantics are applied.)
Formula Simplify(const Formula& f);

/// Negation normal form: negation pushed to atoms, '->' and '<->'
/// expanded. Equivalent in both two-valued and strong-Kleene semantics.
Formula ToNnf(const Formula& f);

/// Structural equality of formula trees.
bool StructurallyEqual(const Formula& a, const Formula& b);

/// Number of AST nodes (for size accounting in tests/benches).
int NodeCount(const Formula& f);

}  // namespace dd

#endif  // DD_LOGIC_FORMULA_TRANSFORM_H_
