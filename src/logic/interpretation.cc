#include "logic/interpretation.h"

#include <bit>

#include "logic/vocabulary.h"
#include "util/macros.h"

namespace dd {

Interpretation::Interpretation(int num_vars)
    : num_vars_(num_vars),
      words_(static_cast<size_t>((num_vars + 63) / 64), 0) {
  DD_CHECK(num_vars >= 0);
}

Interpretation Interpretation::FromAtoms(int num_vars,
                                         const std::vector<Var>& true_atoms) {
  Interpretation out(num_vars);
  for (Var v : true_atoms) out.Insert(v);
  return out;
}

void Interpretation::Set(Var v, bool value) {
  DD_DCHECK(v >= 0 && v < num_vars_);
  uint64_t& w = words_[static_cast<size_t>(v) >> 6];
  uint64_t bit = 1ULL << (v & 63);
  if (value) {
    w |= bit;
  } else {
    w &= ~bit;
  }
}

int Interpretation::TrueCount() const {
  int count = 0;
  for (uint64_t w : words_) count += std::popcount(w);
  return count;
}

std::vector<Var> Interpretation::TrueAtoms() const {
  std::vector<Var> out;
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w) {
      int b = std::countr_zero(w);
      out.push_back(static_cast<Var>(wi * 64 + static_cast<size_t>(b)));
      w &= w - 1;
    }
  }
  return out;
}

bool Interpretation::SubsetOf(const Interpretation& other) const {
  DD_DCHECK(num_vars_ == other.num_vars_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool Interpretation::SubsetOfOn(const Interpretation& other,
                                const Interpretation& mask) const {
  DD_DCHECK(num_vars_ == other.num_vars_ && num_vars_ == mask.num_vars_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & mask.words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool Interpretation::EqualOn(const Interpretation& other,
                             const Interpretation& mask) const {
  DD_DCHECK(num_vars_ == other.num_vars_ && num_vars_ == mask.num_vars_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((words_[i] ^ other.words_[i]) & mask.words_[i]) return false;
  }
  return true;
}

bool Interpretation::operator<(const Interpretation& o) const {
  if (num_vars_ != o.num_vars_) return num_vars_ < o.num_vars_;
  return words_ < o.words_;
}

std::string Interpretation::ToString(const Vocabulary& voc) const {
  std::string out = "{";
  bool first = true;
  for (Var v : TrueAtoms()) {
    if (!first) out += ", ";
    first = false;
    out += voc.Name(v);
  }
  out += "}";
  return out;
}

size_t Interpretation::Hash() const {
  // FNV-1a over the words plus the size.
  size_t h = 1469598103934665603ULL;
  auto mix = [&h](uint64_t x) {
    h ^= x;
    h *= 1099511628211ULL;
  };
  mix(static_cast<uint64_t>(num_vars_));
  for (uint64_t w : words_) mix(w);
  return h;
}

}  // namespace dd
