// Two-valued interpretations as dynamic bitsets over variables.
//
// An Interpretation I is identified with the set of atoms it makes true;
// the paper writes models as atom sets (e.g. M = {a, c}).
#ifndef DD_LOGIC_INTERPRETATION_H_
#define DD_LOGIC_INTERPRETATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "logic/types.h"

namespace dd {

class Vocabulary;

/// A total two-valued interpretation over variables [0, num_vars).
///
/// Identified with the set of true atoms. Supports the subset/strict-subset
/// comparisons that minimal-model reasoning is built on.
class Interpretation {
 public:
  Interpretation() : num_vars_(0) {}
  explicit Interpretation(int num_vars);

  /// Builds an interpretation over `num_vars` with exactly `true_atoms` true.
  static Interpretation FromAtoms(int num_vars,
                                  const std::vector<Var>& true_atoms);

  int num_vars() const { return num_vars_; }

  bool Contains(Var v) const {
    return (words_[static_cast<size_t>(v) >> 6] >> (v & 63)) & 1;
  }
  void Set(Var v, bool value);
  void Insert(Var v) { Set(v, true); }
  void Erase(Var v) { Set(v, false); }

  /// True under this interpretation?
  bool Satisfies(Lit l) const {
    return Contains(l.var()) == l.positive();
  }

  /// Number of true atoms.
  int TrueCount() const;

  /// All true atoms, ascending.
  std::vector<Var> TrueAtoms() const;

  /// Set-inclusion: every true atom of *this is true in `other`.
  bool SubsetOf(const Interpretation& other) const;
  bool StrictSubsetOf(const Interpretation& other) const {
    return SubsetOf(other) && *this != other;
  }

  /// Subset comparison restricted to atoms in `mask` (used by the
  /// <=_{P;Z} preorder of CCWA/ECWA, where only P-atoms are minimized).
  bool SubsetOfOn(const Interpretation& other,
                  const Interpretation& mask) const;
  bool EqualOn(const Interpretation& other, const Interpretation& mask) const;

  bool operator==(const Interpretation& o) const {
    return num_vars_ == o.num_vars_ && words_ == o.words_;
  }
  bool operator!=(const Interpretation& o) const { return !(*this == o); }

  /// Strict weak order for use in std::set / sorting (lexicographic on
  /// words); not the subset order.
  bool operator<(const Interpretation& o) const;

  /// Renders "{a, c}" using `voc` names.
  std::string ToString(const Vocabulary& voc) const;

  /// Stable hash of the bit content.
  size_t Hash() const;

 private:
  int num_vars_;
  std::vector<uint64_t> words_;
};

}  // namespace dd

template <>
struct std::hash<dd::Interpretation> {
  size_t operator()(const dd::Interpretation& i) const noexcept {
    return i.Hash();
  }
};

#endif  // DD_LOGIC_INTERPRETATION_H_
