#include "logic/parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace dd {

namespace {

// ---------------------------------------------------------------------------
// Tokenizer shared by the program and formula grammars.
// ---------------------------------------------------------------------------

enum class Tok {
  kAtom,     // identifier
  kPipe,     // | or ;
  kComma,    // ,
  kIf,       // :-
  kDot,      // .
  kNot,      // 'not' keyword or ~ or -
  kLParen,   // (
  kRParen,   // )
  kAnd,      // &
  kImplies,  // ->
  kIff,      // <->
  kTrue,     // 'true'
  kFalse,    // 'false'
  kEnd,
};

struct Token {
  Tok kind;
  std::string text;
  int line;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      if (c == '%' || (c == '/' && Peek(1) == '/')) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '_' || text_[pos_] == '\''))
          ++pos_;
        // Ground atoms produced by the grounder carry their argument list
        // in the name: an immediately following '(' (no whitespace) is
        // absorbed through the matching ')'.
        if (pos_ < text_.size() && text_[pos_] == '(') {
          size_t scan = pos_ + 1;
          bool closed = false;
          while (scan < text_.size()) {
            char a = text_[scan];
            if (a == ')') {
              closed = true;
              ++scan;
              break;
            }
            if (std::isalnum(static_cast<unsigned char>(a)) || a == '_' ||
                a == '\'' || a == ',' || a == ' ') {
              ++scan;
              continue;
            }
            break;  // not an argument list; leave '(' for the grammar
          }
          if (closed) pos_ = scan;
        }
        std::string word(text_.substr(start, pos_ - start));
        // Normalize: strip spaces inside the argument list so that
        // "p(a, b)" and "p(a,b)" intern identically.
        if (word.find('(') != std::string::npos) {
          std::string norm;
          for (char ch : word) {
            if (ch != ' ') norm += ch;
          }
          word = std::move(norm);
        }
        if (word == "not") {
          out.push_back({Tok::kNot, word, line_});
        } else if (word == "true") {
          out.push_back({Tok::kTrue, word, line_});
        } else if (word == "false") {
          out.push_back({Tok::kFalse, word, line_});
        } else if (word == "v" || word == "or") {
          out.push_back({Tok::kPipe, word, line_});
        } else {
          out.push_back({Tok::kAtom, word, line_});
        }
        continue;
      }
      switch (c) {
        case '|':
        case ';':
          out.push_back({Tok::kPipe, std::string(1, c), line_});
          ++pos_;
          break;
        case ',':
          out.push_back({Tok::kComma, ",", line_});
          ++pos_;
          break;
        case '.':
          out.push_back({Tok::kDot, ".", line_});
          ++pos_;
          break;
        case '~':
          out.push_back({Tok::kNot, "~", line_});
          ++pos_;
          break;
        case '&':
          out.push_back({Tok::kAnd, "&", line_});
          ++pos_;
          break;
        case '(':
          out.push_back({Tok::kLParen, "(", line_});
          ++pos_;
          break;
        case ')':
          out.push_back({Tok::kRParen, ")", line_});
          ++pos_;
          break;
        case ':':
          if (Peek(1) == '-') {
            out.push_back({Tok::kIf, ":-", line_});
            pos_ += 2;
          } else {
            return Err("':' not followed by '-'");
          }
          break;
        case '<':
          if (Peek(1) == '-' && Peek(2) == '>') {
            out.push_back({Tok::kIff, "<->", line_});
            pos_ += 3;
          } else if (Peek(1) == '-') {
            // Treat "a <- b" as "a :- b" for convenience.
            out.push_back({Tok::kIf, "<-", line_});
            pos_ += 2;
          } else {
            return Err("unexpected '<'");
          }
          break;
        case '-':
          if (Peek(1) == '>') {
            out.push_back({Tok::kImplies, "->", line_});
            pos_ += 2;
          } else {
            out.push_back({Tok::kNot, "-", line_});
            ++pos_;
          }
          break;
        default:
          return Err(StrFormat("unexpected character '%c'", c));
      }
    }
    out.push_back({Tok::kEnd, "", line_});
    return out;
  }

 private:
  char Peek(size_t ahead) const {
    return pos_ + ahead < text_.size() ? text_[pos_ + ahead] : '\0';
  }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("line %d: %s", line_, msg.c_str()));
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
};

// ---------------------------------------------------------------------------
// Program parser.
// ---------------------------------------------------------------------------

class ProgramParser {
 public:
  explicit ProgramParser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<ParsedProgram> Run() {
    ParsedProgram out;
    while (Cur().kind != Tok::kEnd) {
      out.clause_lines.push_back(Cur().line);
      DD_RETURN_IF_ERROR(ParseClause(&out.db));
    }
    return out;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  void Advance() { ++pos_; }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("line %d: %s (at '%s')", Cur().line, msg.c_str(),
                  Cur().text.c_str()));
  }

  Status ParseClause(Database* db) {
    std::vector<Var> heads, pos_body, neg_body;
    // Head: possibly empty (integrity clause starts with ':-').
    if (Cur().kind == Tok::kAtom) {
      heads.push_back(db->vocabulary().Intern(Cur().text));
      Advance();
      while (Cur().kind == Tok::kPipe) {
        Advance();
        if (Cur().kind != Tok::kAtom) return Err("atom expected after '|'");
        heads.push_back(db->vocabulary().Intern(Cur().text));
        Advance();
      }
    }
    if (Cur().kind == Tok::kIf) {
      Advance();
      for (;;) {
        bool neg = false;
        if (Cur().kind == Tok::kNot) {
          neg = true;
          Advance();
        }
        if (Cur().kind != Tok::kAtom) return Err("atom expected in body");
        Var v = db->vocabulary().Intern(Cur().text);
        (neg ? neg_body : pos_body).push_back(v);
        Advance();
        if (Cur().kind == Tok::kComma) {
          Advance();
          continue;
        }
        break;
      }
    } else if (heads.empty()) {
      return Err("clause with no head must have a body");
    }
    if (Cur().kind != Tok::kDot) return Err("'.' expected");
    Advance();
    if (heads.empty() && pos_body.empty() && neg_body.empty()) {
      return Err("empty clause");
    }
    db->AddClause(Clause(std::move(heads), std::move(pos_body),
                         std::move(neg_body)));
    return Status::OK();
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Formula parser (recursive descent, standard precedence).
// ---------------------------------------------------------------------------

class FormulaParser {
 public:
  FormulaParser(std::vector<Token> toks, Vocabulary* voc)
      : toks_(std::move(toks)), voc_(voc) {}

  Result<Formula> Run() {
    DD_ASSIGN_OR_RETURN(Formula f, ParseIff());
    if (Cur().kind != Tok::kEnd) return Err("trailing input after formula");
    return f;
  }

 private:
  const Token& Cur() const { return toks_[pos_]; }
  void Advance() { ++pos_; }
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument(
        StrFormat("line %d: %s (at '%s')", Cur().line, msg.c_str(),
                  Cur().text.c_str()));
  }

  Result<Formula> ParseIff() {
    DD_ASSIGN_OR_RETURN(Formula lhs, ParseImplies());
    while (Cur().kind == Tok::kIff) {
      Advance();
      DD_ASSIGN_OR_RETURN(Formula rhs, ParseImplies());
      lhs = FormulaNode::MakeIff(lhs, rhs);
    }
    return lhs;
  }

  Result<Formula> ParseImplies() {
    DD_ASSIGN_OR_RETURN(Formula lhs, ParseOr());
    if (Cur().kind == Tok::kImplies) {
      Advance();
      DD_ASSIGN_OR_RETURN(Formula rhs, ParseImplies());  // right-assoc
      return FormulaNode::MakeImplies(lhs, rhs);
    }
    return lhs;
  }

  Result<Formula> ParseOr() {
    DD_ASSIGN_OR_RETURN(Formula f, ParseAnd());
    std::vector<Formula> parts{f};
    while (Cur().kind == Tok::kPipe) {
      Advance();
      DD_ASSIGN_OR_RETURN(Formula g, ParseAnd());
      parts.push_back(g);
    }
    return FormulaNode::MakeOr(std::move(parts));
  }

  Result<Formula> ParseAnd() {
    DD_ASSIGN_OR_RETURN(Formula f, ParseUnary());
    std::vector<Formula> parts{f};
    // Both '&' and ',' act as conjunction in formulas.
    while (Cur().kind == Tok::kAnd || Cur().kind == Tok::kComma) {
      Advance();
      DD_ASSIGN_OR_RETURN(Formula g, ParseUnary());
      parts.push_back(g);
    }
    return FormulaNode::MakeAnd(std::move(parts));
  }

  Result<Formula> ParseUnary() {
    if (Cur().kind == Tok::kNot) {
      Advance();
      DD_ASSIGN_OR_RETURN(Formula f, ParseUnary());
      return FormulaNode::MakeNot(f);
    }
    return ParsePrimary();
  }

  Result<Formula> ParsePrimary() {
    switch (Cur().kind) {
      case Tok::kTrue:
        Advance();
        return FormulaNode::MakeConst(true);
      case Tok::kFalse:
        Advance();
        return FormulaNode::MakeConst(false);
      case Tok::kAtom: {
        Formula f = FormulaNode::MakeAtom(voc_->Intern(Cur().text));
        Advance();
        return f;
      }
      case Tok::kLParen: {
        Advance();
        DD_ASSIGN_OR_RETURN(Formula f, ParseIff());
        if (Cur().kind != Tok::kRParen) return Err("')' expected");
        Advance();
        return f;
      }
      default:
        return Err("atom, constant, '~' or '(' expected");
    }
  }

  std::vector<Token> toks_;
  Vocabulary* voc_;
  size_t pos_ = 0;
};

}  // namespace

Result<Database> ParseDatabase(std::string_view text) {
  DD_ASSIGN_OR_RETURN(ParsedProgram prog, ParseProgram(text));
  return std::move(prog.db);
}

Result<ParsedProgram> ParseProgram(std::string_view text) {
  DD_ASSIGN_OR_RETURN(std::vector<Token> toks, Lexer(text).Run());
  return ProgramParser(std::move(toks)).Run();
}

Result<Formula> ParseFormula(std::string_view text, Vocabulary* voc) {
  DD_ASSIGN_OR_RETURN(std::vector<Token> toks, Lexer(text).Run());
  return FormulaParser(std::move(toks), voc).Run();
}

Result<Lit> ParseLiteral(std::string_view text, Vocabulary* voc) {
  DD_ASSIGN_OR_RETURN(std::vector<Token> toks, Lexer(text).Run());
  size_t i = 0;
  bool neg = false;
  if (toks[i].kind == Tok::kNot) {
    neg = true;
    ++i;
  }
  if (toks[i].kind != Tok::kAtom) {
    return Status::InvalidArgument("literal must be an optionally negated atom");
  }
  Var v = voc->Intern(toks[i].text);
  ++i;
  if (toks[i].kind != Tok::kEnd) {
    return Status::InvalidArgument("trailing input after literal");
  }
  return Lit::Make(v, !neg);
}

}  // namespace dd
