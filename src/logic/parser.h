// Text formats for databases and query formulas.
//
// Database program syntax (one clause per statement, '%' comments):
//
//   a | b.                 % disjunctive fact
//   c :- a, not d.         % rule with positive and negated body atoms
//   :- a, b.               % integrity clause (empty head)
//
// Head atoms are separated by '|' (';' also accepted). Body literals are
// separated by ','; negation is written 'not x' or '~x'.
//
// Formula syntax (for the formula-inference task), loosest to tightest:
//
//   f := f '<->' f | f '->' f | f '|' f | f '&' f | '~' f
//      | atom | 'true' | 'false' | '(' f ')'
#ifndef DD_LOGIC_PARSER_H_
#define DD_LOGIC_PARSER_H_

#include <string_view>
#include <vector>

#include "logic/database.h"
#include "logic/formula.h"
#include "util/status.h"

namespace dd {

/// A parsed program together with source positions, for tooling that
/// reports diagnostics (analysis/linter.h, the ddlint CLI).
struct ParsedProgram {
  Database db;
  /// 1-based source line on which each clause starts; parallel to
  /// db.clauses().
  std::vector<int> clause_lines;
};

/// Parses a whole database program.
Result<Database> ParseDatabase(std::string_view text);

/// Parses a whole database program, keeping per-clause source lines.
Result<ParsedProgram> ParseProgram(std::string_view text);

/// Parses a single formula; atoms are interned into `*voc` (new atoms are
/// permitted and are simply unconstrained by the database).
Result<Formula> ParseFormula(std::string_view text, Vocabulary* voc);

/// Parses a literal like "x" or "not x" / "~x" / "-x" against `*voc`.
Result<Lit> ParseLiteral(std::string_view text, Vocabulary* voc);

}  // namespace dd

#endif  // DD_LOGIC_PARSER_H_
