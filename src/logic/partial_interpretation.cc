#include "logic/partial_interpretation.h"

#include "logic/vocabulary.h"
#include "util/macros.h"

namespace dd {

TruthValue Negate(TruthValue v) {
  switch (v) {
    case TruthValue::kFalse:
      return TruthValue::kTrue;
    case TruthValue::kUndef:
      return TruthValue::kUndef;
    case TruthValue::kTrue:
      return TruthValue::kFalse;
  }
  return TruthValue::kUndef;
}

PartialInterpretation::PartialInterpretation(int num_vars)
    : num_vars_(num_vars),
      vals_(static_cast<size_t>(num_vars), TruthValue::kUndef) {
  DD_CHECK(num_vars >= 0);
}

PartialInterpretation PartialInterpretation::FromTotal(
    const Interpretation& i) {
  PartialInterpretation out(i.num_vars());
  for (Var v = 0; v < i.num_vars(); ++v) {
    out.SetValue(v, i.Contains(v) ? TruthValue::kTrue : TruthValue::kFalse);
  }
  return out;
}

TruthValue PartialInterpretation::Value(Var v) const {
  DD_DCHECK(v >= 0 && v < num_vars_);
  return vals_[static_cast<size_t>(v)];
}

void PartialInterpretation::SetValue(Var v, TruthValue t) {
  DD_DCHECK(v >= 0 && v < num_vars_);
  vals_[static_cast<size_t>(v)] = t;
}

bool PartialInterpretation::IsTotal() const {
  for (TruthValue t : vals_)
    if (t == TruthValue::kUndef) return false;
  return true;
}

Interpretation PartialInterpretation::TrueSet() const {
  Interpretation out(num_vars_);
  for (Var v = 0; v < num_vars_; ++v)
    if (Value(v) == TruthValue::kTrue) out.Insert(v);
  return out;
}

Interpretation PartialInterpretation::NotFalseSet() const {
  Interpretation out(num_vars_);
  for (Var v = 0; v < num_vars_; ++v)
    if (Value(v) != TruthValue::kFalse) out.Insert(v);
  return out;
}

bool PartialInterpretation::TruthLeq(
    const PartialInterpretation& other) const {
  DD_DCHECK(num_vars_ == other.num_vars_);
  for (size_t i = 0; i < vals_.size(); ++i) {
    if (!(vals_[i] <= other.vals_[i])) return false;
  }
  return true;
}

std::string PartialInterpretation::ToString(const Vocabulary& voc) const {
  std::string out = "{";
  for (Var v = 0; v < num_vars_; ++v) {
    if (v) out += ", ";
    out += voc.Name(v);
    out += "=";
    switch (Value(v)) {
      case TruthValue::kFalse:
        out += "0";
        break;
      case TruthValue::kUndef:
        out += "1/2";
        break;
      case TruthValue::kTrue:
        out += "1";
        break;
    }
  }
  out += "}";
  return out;
}

}  // namespace dd
