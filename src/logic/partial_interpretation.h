// Three-valued (partial) interpretations for the PDSM semantics.
//
// Following Przymusinski, truth values are 1 (true), 0 (false) and 1/2
// (undefined); we represent them as TruthValue with the natural order
// 0 < 1/2 < 1 used both for clause evaluation (Kleene) and for the
// truth-minimality that defines partial stable models.
#ifndef DD_LOGIC_PARTIAL_INTERPRETATION_H_
#define DD_LOGIC_PARTIAL_INTERPRETATION_H_

#include <string>
#include <vector>

#include "logic/interpretation.h"
#include "logic/types.h"

namespace dd {

class Vocabulary;

/// Three-valued truth values, ordered kFalse < kUndef < kTrue.
enum class TruthValue : uint8_t { kFalse = 0, kUndef = 1, kTrue = 2 };

/// Complement: 1 - v (true<->false, undef fixed).
TruthValue Negate(TruthValue v);

inline bool operator<(TruthValue a, TruthValue b) {
  return static_cast<uint8_t>(a) < static_cast<uint8_t>(b);
}
inline bool operator<=(TruthValue a, TruthValue b) {
  return static_cast<uint8_t>(a) <= static_cast<uint8_t>(b);
}

/// A total three-valued assignment to variables [0, num_vars).
class PartialInterpretation {
 public:
  PartialInterpretation() : num_vars_(0) {}
  /// All atoms start undefined.
  explicit PartialInterpretation(int num_vars);

  /// Lifts a two-valued interpretation (no undefined atoms).
  static PartialInterpretation FromTotal(const Interpretation& i);

  int num_vars() const { return num_vars_; }

  TruthValue Value(Var v) const;
  void SetValue(Var v, TruthValue t);

  /// Value of a literal (negation flips true/false, fixes undef).
  TruthValue ValueOf(Lit l) const {
    TruthValue t = Value(l.var());
    return l.positive() ? t : Negate(t);
  }

  bool IsTotal() const;

  /// Projects to the set of true atoms (used when comparing against
  /// two-valued semantics; only meaningful when IsTotal()).
  Interpretation TrueSet() const;
  /// The set of atoms that are not false (true or undefined).
  Interpretation NotFalseSet() const;

  /// Truth ordering I <= J: pointwise Value_I(v) <= Value_J(v).
  /// Partial stable models are <=-minimal models of the reduct.
  bool TruthLeq(const PartialInterpretation& other) const;
  bool TruthLt(const PartialInterpretation& other) const {
    return TruthLeq(other) && *this != other;
  }

  bool operator==(const PartialInterpretation& o) const {
    return num_vars_ == o.num_vars_ && vals_ == o.vals_;
  }
  bool operator!=(const PartialInterpretation& o) const {
    return !(*this == o);
  }
  bool operator<(const PartialInterpretation& o) const {
    if (num_vars_ != o.num_vars_) return num_vars_ < o.num_vars_;
    return vals_ < o.vals_;
  }

  /// Renders e.g. "{a=1, b=0, c=1/2}".
  std::string ToString(const Vocabulary& voc) const;

 private:
  int num_vars_;
  std::vector<TruthValue> vals_;
};

}  // namespace dd

#endif  // DD_LOGIC_PARTIAL_INTERPRETATION_H_
