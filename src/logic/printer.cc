#include "logic/printer.h"

#include <algorithm>

#include "util/string_util.h"

namespace dd {

std::string ModelsToString(const std::vector<Interpretation>& models,
                           const Vocabulary& voc) {
  std::vector<std::string> lines;
  lines.reserve(models.size());
  for (const auto& m : models) lines.push_back(m.ToString(voc));
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& l : lines) {
    out += l;
    out += "\n";
  }
  return out;
}

std::string DatabaseSummary(const Database& db) {
  return StrFormat("p ddb %d %d%s%s", db.num_vars(), db.num_clauses(),
                   db.HasNegation() ? " neg" : "",
                   db.HasIntegrityClauses() ? " ic" : "");
}

}  // namespace dd
