// Rendering helpers beyond the ToString members: model sets, tables.
#ifndef DD_LOGIC_PRINTER_H_
#define DD_LOGIC_PRINTER_H_

#include <string>
#include <vector>

#include "logic/database.h"
#include "logic/interpretation.h"

namespace dd {

/// Renders a set of models, one per line, sorted for determinism.
std::string ModelsToString(const std::vector<Interpretation>& models,
                           const Vocabulary& voc);

/// Renders a DIMACS-like summary line "p ddb <vars> <clauses>".
std::string DatabaseSummary(const Database& db);

}  // namespace dd

#endif  // DD_LOGIC_PRINTER_H_
