// Fundamental types: propositional variables and literals.
//
// Variables are dense 0-based integers managed by a Vocabulary. Literals use
// the MiniSat-style encoding lit = 2*var + (negated ? 1 : 0), which the SAT
// core indexes arrays with directly.
#ifndef DD_LOGIC_TYPES_H_
#define DD_LOGIC_TYPES_H_

#include <cstdint>
#include <functional>

namespace dd {

/// A propositional variable, a dense index in [0, Vocabulary::size()).
using Var = int32_t;

constexpr Var kInvalidVar = -1;

/// A literal: a variable together with a polarity.
///
/// Encoded as 2*var + (negated ? 1 : 0) so that literals index arrays
/// directly and negation is a single XOR.
class Lit {
 public:
  Lit() : code_(-2) {}
  /// Builds the literal `v` (positive=true) or `~v` (positive=false).
  static Lit Make(Var v, bool positive) {
    Lit l;
    l.code_ = 2 * v + (positive ? 0 : 1);
    return l;
  }
  static Lit Pos(Var v) { return Make(v, true); }
  static Lit Neg(Var v) { return Make(v, false); }
  static Lit FromCode(int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  Var var() const { return code_ >> 1; }
  bool positive() const { return (code_ & 1) == 0; }
  bool negative() const { return (code_ & 1) == 1; }
  int32_t code() const { return code_; }
  bool valid() const { return code_ >= 0; }

  /// The complementary literal.
  Lit operator~() const { return FromCode(code_ ^ 1); }

  bool operator==(const Lit& o) const { return code_ == o.code_; }
  bool operator!=(const Lit& o) const { return code_ != o.code_; }
  bool operator<(const Lit& o) const { return code_ < o.code_; }

 private:
  int32_t code_;
};

}  // namespace dd

template <>
struct std::hash<dd::Lit> {
  size_t operator()(const dd::Lit& l) const noexcept {
    return std::hash<int32_t>()(l.code());
  }
};

#endif  // DD_LOGIC_TYPES_H_
