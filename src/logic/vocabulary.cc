#include "logic/vocabulary.h"

#include "util/macros.h"
#include "util/string_util.h"

namespace dd {

Var Vocabulary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  Var v = static_cast<Var>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), v);
  return v;
}

Var Vocabulary::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  return it == index_.end() ? kInvalidVar : it->second;
}

const std::string& Vocabulary::Name(Var v) const {
  DD_CHECK(Contains(v));
  return names_[static_cast<size_t>(v)];
}

Var Vocabulary::MakeFresh(int n, std::string_view prefix) {
  DD_CHECK(n >= 0);
  Var first = size();
  for (int i = 0; i < n; ++i) {
    std::string name = std::string(prefix) + std::to_string(i);
    // Avoid collisions with user atoms by appending primes if necessary.
    while (Find(name) != kInvalidVar) name += "'";
    Intern(name);
  }
  return first;
}

}  // namespace dd
