// Vocabulary: the bidirectional map between atom names and dense Var ids.
#ifndef DD_LOGIC_VOCABULARY_H_
#define DD_LOGIC_VOCABULARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "logic/types.h"

namespace dd {

/// Owns the set of propositional variables of a database.
///
/// Variables are created on first mention (Intern) and numbered densely from
/// zero, so interpretations can be bitsets indexed by Var.
class Vocabulary {
 public:
  Vocabulary() = default;

  /// Returns the Var for `name`, creating it if unseen.
  Var Intern(std::string_view name);

  /// Returns the Var for `name` or kInvalidVar if it was never interned.
  Var Find(std::string_view name) const;

  /// Name of `v`; v must be a valid variable of this vocabulary.
  const std::string& Name(Var v) const;

  /// Number of variables.
  int size() const { return static_cast<int>(names_.size()); }

  bool Contains(Var v) const { return v >= 0 && v < size(); }

  /// Creates `n` fresh anonymous variables named `prefix0..prefix{n-1}`
  /// (used by generators and Tseitin encodings); returns the first Var.
  Var MakeFresh(int n, std::string_view prefix);

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Var> index_;
};

}  // namespace dd

#endif  // DD_LOGIC_VOCABULARY_H_
