#include "minimal/hcf.h"

#include <algorithm>

#include "strat/dependency_graph.h"
#include "util/macros.h"

namespace dd {
namespace hcf {

FoundedResult CheckFounded(const Database& db, const Interpretation& m) {
  const int n = db.num_vars();
  FoundedResult r;
  r.unfounded = Interpretation(n);

  // A clause can found its (unique) true head only if every positive body
  // atom is true (F ⊆ M, so a false body atom can never become founded)
  // and its negative body is false in M.
  struct Candidate {
    Var head;
    int clause;
    int waiting;  // positive body atoms not yet founded
  };
  std::vector<Candidate> cands;
  std::vector<std::vector<int>> watch(static_cast<size_t>(n));
  Interpretation founded(n);
  std::vector<Var> queue;

  auto derive = [&](Var a, int clause) {
    if (founded.Contains(a)) return;
    founded.Insert(a);
    r.order.push_back(a);
    r.support_clauses.push_back(clause);
    queue.push_back(a);
  };

  for (int ci = 0; ci < db.num_clauses(); ++ci) {
    const Clause& c = db.clause(ci);
    Var true_head = -1;
    bool usable = true;
    for (Var h : c.heads()) {
      if (!m.Contains(h)) continue;
      if (true_head != -1 && h != true_head) {
        usable = false;
        break;
      }
      true_head = h;
    }
    if (!usable || true_head == -1) continue;
    for (Var nb : c.neg_body()) {
      if (m.Contains(nb)) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;
    int waiting = 0;
    for (Var b : c.pos_body()) {
      if (!m.Contains(b)) {
        usable = false;
        break;
      }
      ++waiting;
    }
    if (!usable) continue;
    if (waiting == 0) {
      derive(true_head, ci);
      continue;
    }
    const int idx = static_cast<int>(cands.size());
    cands.push_back({true_head, ci, waiting});
    for (Var b : c.pos_body()) watch[static_cast<size_t>(b)].push_back(idx);
  }

  while (!queue.empty()) {
    const Var v = queue.back();
    queue.pop_back();
    for (int idx : watch[static_cast<size_t>(v)]) {
      Candidate& cand = cands[static_cast<size_t>(idx)];
      if (--cand.waiting == 0) derive(cand.head, cand.clause);
    }
  }

  r.founded = true;
  for (Var v : m.TrueAtoms()) {
    if (!founded.Contains(v)) {
      r.founded = false;
      r.unfounded.Insert(v);
    }
  }
  return r;
}

bool HcfApplicable(const Database& db) {
  return db.IsDeductive() && IsHeadCycleFree(db);
}

Interpretation ShrinkOnce(const Database& /*db*/, const Interpretation& m,
                          const Interpretation& unfounded,
                          const std::vector<int>& pos_scc_ids) {
  // Tarjan ids are reverse-topological (comp(u) > comp(v) whenever comp(u)
  // strictly reaches comp(v)), so the unfounded SCC with the LARGEST id
  // receives no positive edge from any other unfounded atom: removing it
  // cannot strip the last founded-later support of a remaining atom. With
  // head-cycle-freeness the removed SCC also carries at most one true head
  // per clause, so every clause stays satisfied — see docs/ANALYSIS.md for
  // the full argument.
  int source_comp = -1;
  for (Var v : unfounded.TrueAtoms()) {
    source_comp = std::max(source_comp, pos_scc_ids[static_cast<size_t>(v)]);
  }
  DD_CHECK(source_comp >= 0);
  Interpretation out = m;
  for (Var v : unfounded.TrueAtoms()) {
    if (pos_scc_ids[static_cast<size_t>(v)] == source_comp) out.Erase(v);
  }
  return out;
}

Interpretation MinimizePoly(const Database& db, const Interpretation& m) {
  DependencyGraph positive(db, DepGraphOptions{/*link_heads=*/false,
                                               /*include_negation=*/false});
  const std::vector<int> pcomp = positive.SccIds();
  Interpretation cur = m;
  for (;;) {
    FoundedResult f = CheckFounded(db, cur);
    if (f.founded) return cur;
    cur = ShrinkOnce(db, cur, f.unfounded, pcomp);
  }
}

analysis::Certificate MakeMinimalCertificate(const Database& db,
                                             const Interpretation& m,
                                             const FoundedResult& f) {
  analysis::Certificate c;
  c.kind = analysis::CertificateKind::kHcfMinimalModel;
  c.db = db;
  c.model = m;
  c.founded_order = f.order;
  c.support_clauses = f.support_clauses;
  return c;
}

analysis::Certificate MakeNonMinimalCertificate(const Database& db,
                                               const Interpretation& m,
                                               const Interpretation& smaller) {
  analysis::Certificate c;
  c.kind = analysis::CertificateKind::kNonMinimalWitness;
  c.db = db;
  c.model = m;
  c.smaller = smaller;
  return c;
}

}  // namespace hcf
}  // namespace dd
