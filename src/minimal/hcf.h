// Polynomial minimality checking for head-cycle-free deductive databases.
//
// Ben-Eliyahu & Dechter's reduction: over a deductive (negation-free) DB
// whose positive body->head graph puts no two co-head atoms in one cycle,
// a model M is subset-minimal iff every atom of M is *founded* — derivable
// through a chain of clauses each contributing exactly one new true head.
// The founded set is a linear-time fixpoint, so the coNP minimality oracle
// of MinimalEngine collapses to polynomial time on this class (the
// EnginePath::kHcfUnfounded dispatch row; docs/ANALYSIS.md).
//
// Direction 1 (founded => minimal) holds for arbitrary clause sets and is
// what the emitted kHcfMinimalModel certificates replay. Direction 2
// (minimal => founded) is where head-cycle-freeness earns its keep: an
// unfounded part U of a model can then be peeled by removing the
// source-most SCC of U, which stays a model (ShrinkOnce) — giving both a
// polynomial Minimize and a strict-subset kNonMinimalWitness certificate.
#ifndef DD_MINIMAL_HCF_H_
#define DD_MINIMAL_HCF_H_

#include <vector>

#include "analysis/certifier.h"
#include "logic/database.h"
#include "logic/interpretation.h"
#include "logic/types.h"

namespace dd {
namespace hcf {

/// Outcome of the founded-fixpoint computation for one model.
struct FoundedResult {
  bool founded = false;             ///< F == M: every true atom founded
  std::vector<Var> order;           ///< derivation order of F
  std::vector<int> support_clauses; ///< clause justifying each order entry
  Interpretation unfounded;         ///< M \ F (empty iff founded)
};

/// Greatest founded subset of model `m`: starting from F = ∅, repeatedly
/// add a ∈ M\F having a clause c with heads(c) ∩ M = {a}, pos_body(c) ⊆ F
/// and neg_body(c) ∩ M = ∅. Watched-counter fixpoint, linear in the
/// program size. `m` need not be a model (callers check separately).
FoundedResult CheckFounded(const Database& db, const Interpretation& m);

/// Is the founded check decisive for `db`? True iff db is deductive and
/// head-cycle-free — then founded <=> subset-minimal for every model.
bool HcfApplicable(const Database& db);

/// Given a model `m` of an HCF-applicable db and its nonempty unfounded
/// part, removes the source-most unfounded SCC of the positive dependency
/// graph and returns the result — provably still a model, strictly below
/// `m`. `pos_scc_ids` are the SccIds() of the positive no-head-link graph.
Interpretation ShrinkOnce(const Database& db, const Interpretation& m,
                          const Interpretation& unfounded,
                          const std::vector<int>& pos_scc_ids);

/// Full polynomial minimization: iterates CheckFounded/ShrinkOnce down to
/// a founded (hence minimal) model below `m`. Zero oracle calls.
/// Precondition: HcfApplicable(db) and m is a model.
Interpretation MinimizePoly(const Database& db, const Interpretation& m);

/// Packages a founded model as a minimality certificate.
analysis::Certificate MakeMinimalCertificate(const Database& db,
                                             const Interpretation& m,
                                             const FoundedResult& f);

/// Packages a strictly smaller model as a non-minimality certificate.
analysis::Certificate MakeNonMinimalCertificate(const Database& db,
                                                const Interpretation& m,
                                                const Interpretation& smaller);

}  // namespace hcf
}  // namespace dd

#endif  // DD_MINIMAL_HCF_H_
