#include "minimal/minimal_models.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "minimal/hcf.h"
#include "oracle/sat_session.h"
#include "sat/solver.h"
#include "strat/dependency_graph.h"
#include "util/macros.h"
#include "util/thread_pool.h"

namespace dd {

namespace {

using sat::SolveResult;
using sat::Solver;

// Loads the database CNF into a fresh solver and attaches the (possibly
// null) query budget, so fresh-mode oracle calls honor deadlines too.
void LoadDb(const Database& db, Solver* s,
            const std::shared_ptr<Budget>& budget = nullptr) {
  s->SetBudget(budget);
  s->EnsureVars(db.num_vars());
  // Prefer-false polarity makes the first model found already small, which
  // shortens minimization loops.
  s->SetDefaultPolarity(false);
  for (const auto& cl : db.ToCnf()) s->AddClause(cl.data(), cl.size());
}

// The clause excluding the "region" of a minimal projection: models M''
// with M''∩P ⊇ p* and M''∩Q = q*. Empty iff the region is the whole model
// space, in which case the caller must stop instead of asserting it.
std::vector<Lit> RegionBlockClause(const Interpretation& proj,
                                   const Partition& pqz) {
  std::vector<Lit> block;
  for (Var v : proj.TrueAtoms()) {
    if (pqz.p.Contains(v)) block.push_back(Lit::Neg(v));
  }
  for (Var v = 0; v < pqz.num_vars(); ++v) {
    if (!pqz.q.Contains(v)) continue;
    block.push_back(proj.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
  }
  return block;
}

// Adds the region block to a fresh solver. Returns false if the region is
// the whole model space (empty clause).
bool AddRegionBlock(const Interpretation& proj, const Partition& pqz,
                    Solver* s) {
  std::vector<Lit> block = RegionBlockClause(proj, pqz);
  if (block.empty()) return false;
  s->AddClause(std::move(block));
  return true;
}

// Fixes the (P,Q)-projection of `m` as unit assumptions (Z left free).
std::vector<Lit> ProjectionAssumptions(const Interpretation& m,
                                       const Partition& pqz) {
  std::vector<Lit> out;
  for (Var v = 0; v < pqz.num_vars(); ++v) {
    if (pqz.p.Contains(v) || pqz.q.Contains(v)) {
      out.push_back(Lit::Make(v, m.Contains(v)));
    }
  }
  return out;
}

}  // namespace

MinimalEngine::MinimalEngine(const Database& db, const MinimalOptions& opts)
    : db_(db), opts_(opts) {
  cache_.SetCapacity(opts_.oracle_cache_cap);
  proj_store_.SetCapacity(opts_.projection_stream_cap);
}

oracle::SatSession* MinimalEngine::session() {
  if (!opts_.use_sessions) return nullptr;
  if (!session_) {
    session_ = std::make_unique<oracle::SatSession>(db_);
    session_->SetBudget(opts_.budget);
  }
  return session_.get();
}

void MinimalEngine::SetBudget(std::shared_ptr<Budget> budget) {
  opts_.budget = std::move(budget);
  if (session_) session_->SetBudget(opts_.budget);
  ClearInterrupt();
}

void MinimalEngine::MarkInterrupted() {
  if (interrupted_) return;
  interrupted_ = true;
  Status s = opts_.budget ? opts_.budget->ToStatus() : Status::OK();
  interrupt_status_ =
      s.ok() ? Status::ResourceExhausted(
                   "NP oracle returned unknown (conflict budget or fault)")
             : s;
}

oracle::SessionStats MinimalEngine::session_stats() const {
  oracle::SessionStats out;
  if (session_) out = session_->stats();
  out.cache_hits += cache_.hits() + memo_hits_;
  out.cache_misses += cache_.misses();
  out.cache_evictions += cache_.evictions() + proj_store_.evictions();
  return out;
}

// ---------------------------------------------------------------------------
// OpScope: one "minimal"-layer span per outermost public operation.
// ---------------------------------------------------------------------------

MinimalEngine::OpScope::OpScope(MinimalEngine* e, const char* name) : e_(e) {
  if (e_->opts_.trace == nullptr) return;
  counted_ = true;
  if (e_->op_depth_++ > 0) return;  // nested op: fold into the outer span
  active_ = true;
  span_ = e_->opts_.trace->OpenSpan(name, "minimal");
  before_ = e_->stats_;
  sess_before_ = e_->session_stats();
}

MinimalEngine::OpScope::~OpScope() {
  if (!counted_) return;
  --e_->op_depth_;
  if (!active_) return;
  obs::TraceContext* t = e_->opts_.trace;
  const MinimalStats& s = e_->stats_;
  t->AddCounter(span_, "oracle_calls", s.sat_calls - before_.sat_calls);
  t->AddCounter(span_, "minimizations",
                s.minimizations - before_.minimizations);
  t->AddCounter(span_, "cegar_iterations",
                s.cegar_iterations - before_.cegar_iterations);
  t->AddCounter(span_, "models_enumerated",
                s.models_enumerated - before_.models_enumerated);
  if (e_->interrupted_) t->SetAttr(span_, "interrupted", "true");
  // Session activity attributable to this operation, as an "oracle"-layer
  // child span (parent inference: span_ is still open here). Only emitted
  // when something actually happened, so fresh-mode traces stay lean.
  const oracle::SessionStats after = e_->session_stats();
  const int64_t solves = after.solves - sess_before_.solves;
  const int64_t opened = after.contexts_opened - sess_before_.contexts_opened;
  const int64_t hits = after.cache_hits - sess_before_.cache_hits;
  const int64_t misses = after.cache_misses - sess_before_.cache_misses;
  const int64_t replayed =
      after.projections_replayed - sess_before_.projections_replayed;
  if (solves != 0 || opened != 0 || hits != 0 || misses != 0 ||
      replayed != 0) {
    int child = t->OpenSpan("oracle.session", "oracle");
    t->AddCounter(child, "solves", solves);
    t->AddCounter(child, "contexts_opened", opened);
    t->AddCounter(child, "cache_hits", hits);
    t->AddCounter(child, "cache_misses", misses);
    t->AddCounter(child, "projections_replayed", replayed);
    t->CloseSpan(child);
  }
  t->CloseSpan(span_);
}

// ---------------------------------------------------------------------------
// Public dispatchers.
// ---------------------------------------------------------------------------

bool MinimalEngine::HasModel() {
  if (interrupted_) return false;
  OpScope op(this, "minimal.has_model");
  if (!opts_.use_sessions) return HasModelFresh();
  if (has_model_.has_value()) {
    ++memo_hits_;
    return *has_model_;
  }
  oracle::SatSession* s = session();
  SolveResult r = s->Solve();
  ++stats_.sat_calls;
  if (r == SolveResult::kUnknown) {
    // No memoization from an interrupted call: the next (re-budgeted)
    // HasModel must actually solve.
    MarkInterrupted();
    return false;
  }
  has_model_ = (r == SolveResult::kSat);
  if (*has_model_) found_model_ = s->Model(db_.num_vars());
  return *has_model_;
}

std::optional<Interpretation> MinimalEngine::FindModel() {
  if (interrupted_) return std::nullopt;
  OpScope op(this, "minimal.find_model");
  if (!opts_.use_sessions) return FindModelFresh();
  if (!HasModel()) return std::nullopt;
  if (interrupted_) return std::nullopt;
  return found_model_;
}

bool MinimalEngine::HcfEligible(const Partition& pqz) {
  if (!opts_.hcf_minimality) return false;
  // The founded <=> minimal equivalence is stated for subset-minimality
  // over ALL atoms; a custom <P;Q;Z> partition steps aside to the oracle.
  if (pqz.q.TrueCount() != 0 || pqz.z.TrueCount() != 0) return false;
  if (!hcf_applicable_) hcf_applicable_ = hcf::HcfApplicable(db_);
  return *hcf_applicable_;
}

const std::vector<int>& MinimalEngine::PosSccIds() {
  if (!pos_scc_) {
    DependencyGraph positive(db_, DepGraphOptions{/*link_heads=*/false,
                                                  /*include_negation=*/false});
    pos_scc_ = positive.SccIds();
  }
  return *pos_scc_;
}

std::optional<bool> MinimalEngine::TryHcfIsMinimal(const Interpretation& m,
                                                   const Partition& pqz) {
  if (!HcfEligible(pqz)) return std::nullopt;
  if (!IsModel(m)) return false;
  ++stats_.hcf_checks;
  hcf::FoundedResult f = hcf::CheckFounded(db_, m);
  if (opts_.hcf_certificates) {
    if (f.founded) {
      opts_.hcf_certificates->push_back(
          hcf::MakeMinimalCertificate(db_, m, f));
    } else {
      opts_.hcf_certificates->push_back(hcf::MakeNonMinimalCertificate(
          db_, m, hcf::ShrinkOnce(db_, m, f.unfounded, PosSccIds())));
    }
  }
  return f.founded;
}

std::optional<Interpretation> MinimalEngine::TryHcfMinimize(
    const Interpretation& m, const Partition& pqz) {
  if (!HcfEligible(pqz)) return std::nullopt;
  DD_CHECK(IsModel(m));
  ++stats_.minimizations;
  Interpretation cur = m;
  hcf::FoundedResult f;
  for (;;) {
    ++stats_.hcf_checks;
    f = hcf::CheckFounded(db_, cur);
    if (f.founded) break;
    cur = hcf::ShrinkOnce(db_, cur, f.unfounded, PosSccIds());
  }
  if (opts_.hcf_certificates) {
    opts_.hcf_certificates->push_back(
        hcf::MakeMinimalCertificate(db_, cur, f));
  }
  return cur;
}

bool MinimalEngine::IsMinimal(const Interpretation& m, const Partition& pqz) {
  if (interrupted_) return false;
  OpScope op(this, "minimal.is_minimal");
  if (std::optional<bool> h = TryHcfIsMinimal(m, pqz)) return *h;
  if (!opts_.use_sessions) return IsMinimalFresh(m, pqz);
  if (!IsModel(m)) return false;
  const Interpretation masked = oracle::MinimalityCache::MaskPQ(m, pqz);
  if (std::optional<bool> v = cache_.LookupVerdict(pqz, masked)) return *v;
  // Search a model strictly below m in the <P;Z> preorder, as one
  // activation-guarded context on the persistent session: Q-values and
  // absent P-atoms ride as assumptions, the "strictly smaller" clause is
  // the only guarded clause.
  oracle::SatSession* s = session();
  oracle::SatSession::Context ctx(s);
  std::vector<Lit> pins;
  std::vector<Lit> smaller;
  for (Var v = 0; v < db_.num_vars(); ++v) {
    if (pqz.q.Contains(v)) {
      pins.push_back(Lit::Make(v, m.Contains(v)));
    } else if (pqz.p.Contains(v)) {
      if (m.Contains(v)) {
        smaller.push_back(Lit::Neg(v));
      } else {
        pins.push_back(Lit::Neg(v));
      }
    }
  }
  bool minimal;
  if (smaller.empty()) {
    // m's P-part is empty: nothing below it.
    minimal = true;
  } else {
    ctx.AddClause(std::move(smaller));
    SolveResult r = ctx.Solve(pins);
    ++stats_.sat_calls;
    if (r == SolveResult::kUnknown) {
      // Interrupted: the verdict is unknowable — and must NOT be cached.
      MarkInterrupted();
      return false;
    }
    minimal = (r == SolveResult::kUnsat);
  }
  cache_.StoreVerdict(pqz, masked, minimal);
  return minimal;
}

Interpretation MinimalEngine::Minimize(const Interpretation& m,
                                       const Partition& pqz) {
  if (interrupted_) return m;
  OpScope op(this, "minimal.minimize");
  if (std::optional<Interpretation> h = TryHcfMinimize(m, pqz)) return *h;
  if (!opts_.use_sessions) return MinimizeFresh(m, pqz);
  DD_CHECK(IsModel(m));
  ++stats_.minimizations;
  const Interpretation masked = oracle::MinimalityCache::MaskPQ(m, pqz);
  if (std::optional<Interpretation> c = cache_.LookupMinimized(pqz, masked)) {
    // The cached certificate was minimized under exactly these P/Q pins, so
    // it is a <P;Z>-minimal model below every Z-completion of the key.
    return *c;
  }
  oracle::SatSession* s = session();
  oracle::SatSession::Context ctx(s);
  // Incremental descent: Q-values and absent P-atoms are assumption pins
  // (extended as atoms leave the candidate); each round's "strictly
  // smaller" clause is guarded and enabled through a fresh selector.
  std::vector<Lit> pins;
  for (Var v = 0; v < db_.num_vars(); ++v) {
    if (pqz.q.Contains(v)) pins.push_back(Lit::Make(v, m.Contains(v)));
    if (pqz.p.Contains(v) && !m.Contains(v)) pins.push_back(Lit::Neg(v));
  }
  Interpretation cur = m;
  std::vector<Lit> assumptions;
  for (;;) {
    std::vector<Var> true_p;
    for (Var v : cur.TrueAtoms()) {
      if (pqz.p.Contains(v)) true_p.push_back(v);
    }
    if (true_p.empty()) break;  // nothing left to remove
    Var sel = s->AllocVar();
    std::vector<Lit> clause{Lit::Neg(sel)};
    for (Var v : true_p) clause.push_back(Lit::Neg(v));
    ctx.AddClause(std::move(clause));
    assumptions = pins;
    assumptions.push_back(Lit::Pos(sel));
    SolveResult r = ctx.Solve(assumptions);
    ++stats_.sat_calls;
    if (r == SolveResult::kUnknown) {
      // Interrupted mid-descent: cur may NOT be minimal. Return it as a
      // placeholder but skip every cache store below — caching it as
      // minimal would poison later (un-budgeted) queries.
      MarkInterrupted();
      return cur;
    }
    if (r != SolveResult::kSat) break;  // cur is minimal
    Interpretation found = s->Model(db_.num_vars());
    // Pin the freshly removed P-atoms false for all later rounds.
    for (Var v : true_p) {
      if (!found.Contains(v)) pins.push_back(Lit::Neg(v));
    }
    cur = found;
  }
  cache_.StoreMinimized(pqz, masked, cur);
  // Minimization doubles as a minimality check: cur is minimal, and m was
  // minimal iff the descent never moved off m's projection.
  const Interpretation cur_masked = oracle::MinimalityCache::MaskPQ(cur, pqz);
  cache_.StoreVerdict(pqz, cur_masked, true);
  if (!(cur_masked == masked)) cache_.StoreVerdict(pqz, masked, false);
  return cur;
}

std::vector<bool> MinimalEngine::AreMinimal(
    const std::vector<Interpretation>& candidates, const Partition& pqz,
    int threads) {
  const int64_t n = static_cast<int64_t>(candidates.size());
  std::vector<bool> out(candidates.size());
  if (n == 0 || interrupted_) return out;
  OpScope op(this, "minimal.are_minimal");
  // The chunk layout is a function of n alone — never of the worker count —
  // so the per-chunk engines (and therefore the merged statistics) are
  // identical for every `threads` value.
  const int64_t chunks = std::min<int64_t>(n, 16);
  std::vector<uint8_t> verdicts(candidates.size(), 0);
  std::vector<MinimalStats> chunk_stats(static_cast<size_t>(chunks));
  std::vector<Status> chunk_interrupts(static_cast<size_t>(chunks));
  // Cooperative cancellation: chunk engines share the query budget, so the
  // first chunk to exhaust it cancels the token and sibling slots stop
  // claiming work.
  const CancelToken* cancel =
      opts_.budget ? opts_.budget->cancel_token().get() : nullptr;
  // Chunk engines run untraced: their counters are folded into this
  // engine's stats (and thus into this operation's span) in chunk order,
  // which keeps the span tree bit-identical across thread counts.
  MinimalOptions chunk_opts = opts_;
  chunk_opts.trace = nullptr;
  // The certificate sink is a plain vector: chunk engines run detached so
  // parallel verdicts never race on it.
  chunk_opts.hcf_certificates = nullptr;
  ParallelFor(chunks, threads, cancel, [&](int64_t c) {
    const int64_t lo = c * n / chunks;
    const int64_t hi = (c + 1) * n / chunks;
    MinimalEngine local(db_, chunk_opts);
    for (int64_t i = lo; i < hi; ++i) {
      verdicts[static_cast<size_t>(i)] =
          local.IsMinimal(candidates[static_cast<size_t>(i)], pqz) ? 1 : 0;
      if (local.interrupted()) break;
    }
    if (local.interrupted()) {
      chunk_interrupts[static_cast<size_t>(c)] = local.interrupt_status();
    }
    chunk_stats[static_cast<size_t>(c)] = local.stats();
  });
  for (const MinimalStats& cs : chunk_stats) stats_.Add(cs);
  // Fold chunk interrupts in chunk order (first one wins); a cancelled run
  // also leaves unclaimed chunks, which is fine — the whole verdict vector
  // is meaningless once interrupted() is set.
  for (const Status& ci : chunk_interrupts) {
    if (!ci.ok()) {
      if (!interrupted_) {
        interrupted_ = true;
        interrupt_status_ = ci;
      }
      break;
    }
  }
  if (!interrupted_ && cancel != nullptr && cancel->cancelled()) {
    MarkInterrupted();
  }
  for (size_t i = 0; i < candidates.size(); ++i) out[i] = verdicts[i] != 0;
  return out;
}

int MinimalEngine::EnumerateMinimalProjections(
    const Partition& pqz, int64_t cap,
    const std::function<bool(const Interpretation&)>& cb) {
  if (interrupted_) return 0;
  OpScope op(this, "minimal.enumerate_projections");
  if (!opts_.use_sessions) {
    return EnumerateMinimalProjectionsFresh(pqz, cap, cb);
  }
  oracle::SatSession* s = session();
  oracle::ProjectionStream* stream = proj_store_.GetStream(pqz);
  int emitted = 0;
  // Replay the memoized prefix: zero SAT calls.
  for (const Interpretation& proj : *stream->projections) {
    if (cap >= 0 && emitted >= cap) return emitted;
    ++emitted;
    ++stats_.models_enumerated;
    ++s->stats().projections_replayed;
    if (!cb(proj)) return emitted;
  }
  if (stream->exhausted) return emitted;
  // Resume discovery on the stream's persistent context, whose guarded
  // region blocks are exactly the projections replayed above.
  if (!stream->ctx) {
    stream->ctx = std::make_unique<oracle::SatSession::Context>(s);
  }
  for (;;) {
    if (cap >= 0 && emitted >= cap) break;
    SolveResult r = stream->ctx->Solve();
    ++stats_.sat_calls;
    if (r == SolveResult::kUnknown) {
      // Interrupted, NOT exhausted: leave the stream resumable — a retry
      // with a fresh budget replays the memoized prefix (zero SAT calls)
      // and continues discovery exactly where this run stopped.
      MarkInterrupted();
      break;
    }
    if (r != SolveResult::kSat) {
      stream->exhausted = true;
      break;
    }
    Interpretation m = s->Model(db_.num_vars());
    Interpretation mm = Minimize(m, pqz);
    if (interrupted_) {
      // Minimization was cut short: mm may not be a minimal projection.
      // Do not record it in the stream or block its region.
      break;
    }
    // Record the projection and its block BEFORE consulting the consumer,
    // so the stream stays consistent even on early exit.
    stream->projections->push_back(mm);
    ++s->stats().projections_discovered;
    std::vector<Lit> block = RegionBlockClause(mm, pqz);
    if (block.empty()) {
      stream->exhausted = true;  // region = everything
    } else {
      stream->ctx->AddClause(std::move(block));
    }
    ++emitted;
    ++stats_.models_enumerated;
    if (!cb(mm)) break;
    if (stream->exhausted) break;
  }
  return emitted;
}

std::shared_ptr<const std::vector<Interpretation>>
MinimalEngine::SharedExhaustedProjections(const Partition& pqz) {
  if (!opts_.use_sessions) return nullptr;
  oracle::ProjectionStream* stream = proj_store_.FindStream(pqz);
  if (stream == nullptr || !stream->exhausted) return nullptr;
  return stream->projections;
}

int MinimalEngine::EnumerateAllMinimalModels(
    const Partition& pqz, int64_t cap,
    const std::function<bool(const Interpretation&)>& cb) {
  if (interrupted_) return 0;
  OpScope op(this, "minimal.enumerate_all_models");
  if (!opts_.use_sessions) return EnumerateAllMinimalModelsFresh(pqz, cap, cb);
  // Outer loop over (memoized) minimal projections; inner loop over
  // Z-completions in a per-projection guarded context.
  oracle::SatSession* s = session();
  int emitted = 0;
  bool stop = false;
  EnumerateMinimalProjections(
      pqz, /*cap=*/-1, [&](const Interpretation& proj) {
        oracle::SatSession::Context ctx(s);
        const std::vector<Lit> fixed = ProjectionAssumptions(proj, pqz);
        for (;;) {
          if (cap >= 0 && emitted >= cap) {
            stop = true;
            break;
          }
          SolveResult r = ctx.Solve(fixed);
          ++stats_.sat_calls;
          if (r == SolveResult::kUnknown) {
            MarkInterrupted();
            stop = true;
            break;
          }
          if (r != SolveResult::kSat) break;
          Interpretation m = s->Model(db_.num_vars());
          ++emitted;
          ++stats_.models_enumerated;
          if (!cb(m)) {
            stop = true;
            break;
          }
          // Exclude exactly this Z-completion.
          std::vector<Lit> diff;
          for (Var v = 0; v < db_.num_vars(); ++v) {
            if (pqz.z.Contains(v)) {
              diff.push_back(m.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
            }
          }
          if (diff.empty()) break;  // no Z atoms: one completion only
          ctx.AddClause(std::move(diff));
        }
        return !stop;
      });
  return emitted;
}

bool MinimalEngine::MinimalEntails(const Formula& f, const Partition& pqz,
                                   Interpretation* counterexample) {
  if (interrupted_) return true;
  OpScope op(this, "minimal.entails");
  if (!opts_.use_sessions) return MinimalEntailsFresh(f, pqz, counterexample);
  // Counterexample search: a <P;Z>-minimal model of DB violating F. The
  // Tseitin encoding, the ¬F unit and the region blocks all live in one
  // guarded context and vanish together when the query ends.
  oracle::SatSession* s = session();
  oracle::SatSession::Context ctx(s);
  Var next = s->next_var();
  std::vector<std::vector<Lit>> fcnf;
  Lit fl = TseitinEncode(f, &next, &fcnf);
  s->ReserveVars(next);
  for (auto& cl : fcnf) ctx.AddClause(std::move(cl));
  ctx.AddUnit(~fl);  // assert ~F

  for (;;) {
    ++stats_.cegar_iterations;
    SolveResult r = ctx.Solve();
    ++stats_.sat_calls;
    if (r == SolveResult::kUnknown) {
      MarkInterrupted();
      return true;  // placeholder; caller must check interrupted()
    }
    if (r != SolveResult::kSat) return true;  // no candidate remains
    Interpretation m = s->Model(db_.num_vars());
    bool minimal = IsMinimal(m, pqz);
    if (interrupted_) return true;
    if (minimal) {
      if (counterexample != nullptr) *counterexample = m;
      return false;  // m is a minimal model with ~F
    }
    Interpretation mm = Minimize(m, pqz);
    if (interrupted_) return true;
    // Does any model sharing mm's minimal projection violate F? Such a
    // model is itself minimal (minimality depends only on the projection).
    // The probe reuses this very context: fixing the (P,Q)-projection to
    // mm's values satisfies every asserted region block outright (mm was
    // minimized from a candidate that avoided them), so the blocks cannot
    // constrain the probe and the answer matches a block-free solver.
    SolveResult pr = ctx.Solve(ProjectionAssumptions(mm, pqz));
    ++stats_.sat_calls;
    if (pr == SolveResult::kUnknown) {
      // Without the probe's verdict we may not exclude this region: doing
      // so could hide a real counterexample and turn "Unknown" into a
      // wrong "entailed".
      MarkInterrupted();
      return true;
    }
    if (pr == SolveResult::kSat) {
      if (counterexample != nullptr) *counterexample = s->Model(db_.num_vars());
      return false;
    }
    // No minimal counterexample in this region: exclude the region.
    std::vector<Lit> block = RegionBlockClause(mm, pqz);
    if (block.empty()) return true;
    ctx.AddClause(std::move(block));
  }
}

bool MinimalEngine::ExistsMinimalModelWith(Lit lit, const Partition& pqz,
                                           Interpretation* witness) {
  if (interrupted_) return false;
  OpScope op(this, "minimal.exists_minimal_with");
  if (!opts_.use_sessions) return ExistsMinimalModelWithFresh(lit, pqz, witness);
  oracle::SatSession* s = session();
  oracle::SatSession::Context ctx(s);
  ctx.AddUnit(lit);
  for (;;) {
    ++stats_.cegar_iterations;
    SolveResult r = ctx.Solve();
    ++stats_.sat_calls;
    if (r == SolveResult::kUnknown) {
      MarkInterrupted();
      return false;  // placeholder; caller must check interrupted()
    }
    if (r != SolveResult::kSat) return false;
    Interpretation m = s->Model(db_.num_vars());
    bool minimal = IsMinimal(m, pqz);
    if (interrupted_) return false;
    if (minimal) {
      if (witness != nullptr) *witness = m;
      return true;
    }
    Interpretation mm = Minimize(m, pqz);
    if (interrupted_) return false;
    // Some model with mm's projection satisfying lit would be minimal; the
    // probe reuses this context (region blocks are vacuous under the
    // projection pins, see MinimalEntails).
    SolveResult pr = ctx.Solve(ProjectionAssumptions(mm, pqz));
    ++stats_.sat_calls;
    if (pr == SolveResult::kUnknown) {
      // Excluding the region without the probe's verdict could hide a real
      // witness and turn "Unknown" into a wrong "no".
      MarkInterrupted();
      return false;
    }
    if (pr == SolveResult::kSat) {
      if (witness != nullptr) *witness = s->Model(db_.num_vars());
      return true;
    }
    std::vector<Lit> block = RegionBlockClause(mm, pqz);
    if (block.empty()) return false;
    ctx.AddClause(std::move(block));
  }
}

Interpretation MinimalEngine::FreeAtoms(const Partition& pqz) {
  OpScope op(this, "minimal.free_atoms");
  const int n = db_.num_vars();
  Interpretation free(n);
  Interpretation determined(n);
  // Atoms never mentioned in a head cannot be true in a minimal model when
  // they are minimized; quick syntactic pre-pass.
  Interpretation in_heads(n);
  for (const Clause& c : db_.clauses()) {
    for (Var v : c.heads()) in_heads.Insert(v);
  }
  for (Var v = 0; v < n; ++v) {
    if (!pqz.p.Contains(v)) {
      determined.Insert(v);  // only P-atoms are classified
      continue;
    }
    if (!in_heads.Contains(v) && db_.IsDeductive()) {
      // In a DDDB, minimized atoms can only be supported through heads.
      determined.Insert(v);
    }
  }
  // Fast path (opts_.free_atoms_enum_cap): free P-atoms are exactly the
  // union of the minimal projections' P-parts, so when the (memoized)
  // stream is small one complete enumeration classifies every atom at
  // once — this is the fixed setup cost of GCWA/CCWA and of batch model
  // banks over them. A capped enumeration still settles the atoms it saw
  // before falling back to the per-atom witness loop.
  if (opts_.free_atoms_enum_cap > 0 && !interrupted_) {
    const int64_t cap = opts_.free_atoms_enum_cap;
    Interpretation seen(n);
    int got = EnumerateMinimalProjections(
        pqz, cap, [&](const Interpretation& m) {
          for (Var v : m.TrueAtoms()) {
            if (pqz.p.Contains(v)) seen.Insert(v);
          }
          return true;
        });
    if (interrupted_) return free;  // partial; caller checks interrupted()
    for (Var v : seen.TrueAtoms()) {
      free.Insert(v);
      determined.Insert(v);
    }
    // Fewer than cap projections means the enumeration was complete:
    // every undetermined P-atom is in no minimal model, hence negated.
    if (got < cap) return free;
  }
  for (Var v = 0; v < n; ++v) {
    if (determined.Contains(v)) continue;
    if (interrupted_) return free;  // partial; caller checks interrupted()
    Interpretation witness;
    bool is_free = ExistsMinimalModelWith(Lit::Pos(v), pqz, &witness);
    if (interrupted_) return free;
    determined.Insert(v);
    if (is_free) {
      // The witness settles all of its true P-atoms at once.
      for (Var w : witness.TrueAtoms()) {
        if (pqz.p.Contains(w)) {
          free.Insert(w);
          determined.Insert(w);
        }
      }
      free.Insert(v);
    }
  }
  return free;
}

// ---------------------------------------------------------------------------
// Query: one mode-transparent oracle call "DB plus a few extras".
// ---------------------------------------------------------------------------

MinimalEngine::Query::Query(MinimalEngine* engine) : engine_(engine) {
  if (engine_->opts_.use_sessions) {
    ctx_ = std::make_unique<oracle::SatSession::Context>(engine_->session());
  } else {
    fresh_ = std::make_unique<sat::Solver>();
    LoadDb(engine_->db_, fresh_.get(), engine_->opts_.budget);
  }
}

void MinimalEngine::Query::AddClause(std::vector<Lit> lits) {
  if (ctx_) {
    ctx_->AddClause(std::move(lits));
  } else {
    fresh_->AddClause(std::move(lits));
  }
}

void MinimalEngine::Query::AddUnit(Lit l) {
  if (ctx_) {
    // Units ride as assumptions: no clause garbage, and FailedAssumptions
    // keeps working for callers that inspect it.
    units_.push_back(l);
  } else {
    fresh_->AddUnit(l);
  }
}

Var MinimalEngine::Query::NextVar() const {
  if (ctx_) return engine_->session_->next_var();
  Var solver_next = static_cast<Var>(fresh_->num_vars());
  Var db_next = static_cast<Var>(engine_->db_.num_vars());
  return std::max(solver_next, db_next);
}

void MinimalEngine::Query::ReserveVars(Var next) {
  if (ctx_) {
    engine_->session_->ReserveVars(next);
  } else {
    fresh_->EnsureVars(next);
  }
}

sat::SolveResult MinimalEngine::Query::Solve(
    const std::vector<Lit>& extra_assumptions) {
  ++engine_->stats_.sat_calls;
  sat::SolveResult r;
  if (ctx_) {
    assumptions_ = units_;
    assumptions_.insert(assumptions_.end(), extra_assumptions.begin(),
                        extra_assumptions.end());
    r = ctx_->Solve(assumptions_);
  } else {
    r = fresh_->Solve(extra_assumptions);
  }
  // Auto-latch: semantics call sites test `== kSat` / `== kUnsat` and then
  // consult engine()->interrupted(); this keeps a kUnknown from ever being
  // silently folded into either branch.
  if (r == sat::SolveResult::kUnknown) engine_->MarkInterrupted();
  return r;
}

Interpretation MinimalEngine::Query::Model(int n) const {
  if (ctx_) return engine_->session_->Model(n);
  return fresh_->Model(n);
}

// ---------------------------------------------------------------------------
// Fresh-solver (pre-session) implementations: the --no-sessions baseline,
// preserved verbatim from the original engine.
// ---------------------------------------------------------------------------

bool MinimalEngine::HasModelFresh() {
  Solver s;
  LoadDb(db_, &s, opts_.budget);
  SolveResult r = s.Solve();
  stats_.sat_calls += s.stats().solve_calls;
  if (r == SolveResult::kUnknown) {
    MarkInterrupted();
    return false;
  }
  return r == SolveResult::kSat;
}

std::optional<Interpretation> MinimalEngine::FindModelFresh() {
  Solver s;
  LoadDb(db_, &s, opts_.budget);
  SolveResult r = s.Solve();
  stats_.sat_calls += s.stats().solve_calls;
  if (r == SolveResult::kUnknown) {
    MarkInterrupted();
    return std::nullopt;
  }
  if (r != SolveResult::kSat) return std::nullopt;
  return s.Model(db_.num_vars());
}

bool MinimalEngine::IsMinimalFresh(const Interpretation& m,
                                   const Partition& pqz) {
  if (!IsModel(m)) return false;
  // Search a model strictly below m in the <P;Z> preorder: Q fixed to m's
  // values, every P-atom false in m stays false, some P-atom true in m
  // becomes false.
  Solver s;
  LoadDb(db_, &s, opts_.budget);
  std::vector<Lit> smaller;
  for (Var v = 0; v < db_.num_vars(); ++v) {
    if (pqz.q.Contains(v)) {
      s.AddUnit(Lit::Make(v, m.Contains(v)));
    } else if (pqz.p.Contains(v)) {
      if (m.Contains(v)) {
        smaller.push_back(Lit::Neg(v));
      } else {
        s.AddUnit(Lit::Neg(v));
      }
    }
  }
  if (smaller.empty()) {
    // m's P-part is empty: nothing below it.
    return true;
  }
  s.AddClause(std::move(smaller));
  SolveResult r = s.Solve();
  stats_.sat_calls += s.stats().solve_calls;
  if (r == SolveResult::kUnknown) {
    MarkInterrupted();
    return false;
  }
  return r == SolveResult::kUnsat;
}

Interpretation MinimalEngine::MinimizeFresh(const Interpretation& m,
                                            const Partition& pqz) {
  DD_CHECK(IsModel(m));
  ++stats_.minimizations;
  Interpretation cur = m;
  // Incremental descent: as P-atoms leave the candidate they are pinned
  // false with permanent units; the "strictly smaller" clause is refreshed
  // through a fresh selector each round.
  Solver s;
  LoadDb(db_, &s, opts_.budget);
  for (Var v = 0; v < db_.num_vars(); ++v) {
    if (pqz.q.Contains(v)) s.AddUnit(Lit::Make(v, m.Contains(v)));
    if (pqz.p.Contains(v) && !m.Contains(v)) s.AddUnit(Lit::Neg(v));
  }
  Var next_selector = static_cast<Var>(db_.num_vars());
  for (;;) {
    std::vector<Var> true_p;
    for (Var v : cur.TrueAtoms()) {
      if (pqz.p.Contains(v)) true_p.push_back(v);
    }
    if (true_p.empty()) break;  // nothing left to remove
    Var sel = next_selector++;
    s.EnsureVars(sel + 1);
    std::vector<Lit> clause{Lit::Neg(sel)};
    for (Var v : true_p) clause.push_back(Lit::Neg(v));
    s.AddClause(std::move(clause));
    SolveResult r = s.Solve({Lit::Pos(sel)});
    if (r == SolveResult::kUnknown) {
      // Interrupted mid-descent: cur may not be minimal.
      stats_.sat_calls += s.stats().solve_calls;
      MarkInterrupted();
      return cur;
    }
    if (r != SolveResult::kSat) break;  // cur is minimal
    Interpretation found = s.Model(db_.num_vars());
    // Pin the freshly removed P-atoms false for all later rounds.
    for (Var v : true_p) {
      if (!found.Contains(v)) s.AddUnit(Lit::Neg(v));
    }
    cur = found;
  }
  stats_.sat_calls += s.stats().solve_calls;
  return cur;
}

int MinimalEngine::EnumerateMinimalProjectionsFresh(
    const Partition& pqz, int64_t cap,
    const std::function<bool(const Interpretation&)>& cb) {
  Solver s;
  LoadDb(db_, &s, opts_.budget);
  int emitted = 0;
  for (;;) {
    if (cap >= 0 && emitted >= cap) break;
    SolveResult r = s.Solve();
    if (r == SolveResult::kUnknown) {
      MarkInterrupted();
      break;  // emitted-so-far is a sound (truncated) prefix
    }
    if (r != SolveResult::kSat) break;
    Interpretation m = s.Model(db_.num_vars());
    Interpretation mm = Minimize(m, pqz);
    if (interrupted_) break;  // mm may not be a minimal projection
    ++emitted;
    ++stats_.models_enumerated;
    if (!cb(mm)) break;
    if (!AddRegionBlock(mm, pqz, &s)) break;  // region = everything
  }
  stats_.sat_calls += s.stats().solve_calls;
  return emitted;
}

int MinimalEngine::EnumerateAllMinimalModelsFresh(
    const Partition& pqz, int64_t cap,
    const std::function<bool(const Interpretation&)>& cb) {
  // Outer loop over minimal projections; inner loop over Z-completions.
  int emitted = 0;
  bool stop = false;
  EnumerateMinimalProjections(
      pqz, /*cap=*/-1, [&](const Interpretation& proj) {
        Solver s;
        LoadDb(db_, &s, opts_.budget);
        std::vector<Lit> fixed = ProjectionAssumptions(proj, pqz);
        for (Lit l : fixed) s.AddUnit(l);
        for (;;) {
          if (cap >= 0 && emitted >= cap) {
            stop = true;
            break;
          }
          SolveResult r = s.Solve();
          if (r == SolveResult::kUnknown) {
            MarkInterrupted();
            stop = true;
            break;
          }
          if (r != SolveResult::kSat) break;
          Interpretation m = s.Model(db_.num_vars());
          ++emitted;
          ++stats_.models_enumerated;
          if (!cb(m)) {
            stop = true;
            break;
          }
          // Exclude exactly this Z-completion.
          std::vector<Lit> diff;
          for (Var v = 0; v < db_.num_vars(); ++v) {
            if (pqz.z.Contains(v)) {
              diff.push_back(m.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
            }
          }
          if (diff.empty()) break;  // no Z atoms: one completion only
          s.AddClause(std::move(diff));
        }
        stats_.sat_calls += s.stats().solve_calls;
        return !stop;
      });
  return emitted;
}

bool MinimalEngine::MinimalEntailsFresh(const Formula& f, const Partition& pqz,
                                        Interpretation* counterexample) {
  // Counterexample search: a <P;Z>-minimal model of DB violating F.
  Solver s;
  LoadDb(db_, &s, opts_.budget);
  Var next = static_cast<Var>(db_.num_vars());
  std::vector<std::vector<Lit>> fcnf;
  Lit fl = TseitinEncode(f, &next, &fcnf);
  s.EnsureVars(next);
  for (auto& cl : fcnf) s.AddClause(std::move(cl));
  s.AddUnit(~fl);  // assert ~F

  for (;;) {
    ++stats_.cegar_iterations;
    SolveResult r = s.Solve();
    if (r == SolveResult::kUnknown) {
      stats_.sat_calls += s.stats().solve_calls;
      MarkInterrupted();
      return true;  // placeholder; caller must check interrupted()
    }
    if (r != SolveResult::kSat) {
      stats_.sat_calls += s.stats().solve_calls;
      return true;  // no counterexample candidate remains
    }
    Interpretation m = s.Model(db_.num_vars());
    bool minimal = IsMinimal(m, pqz);
    if (interrupted_) {
      stats_.sat_calls += s.stats().solve_calls;
      return true;
    }
    if (minimal) {
      stats_.sat_calls += s.stats().solve_calls;
      if (counterexample != nullptr) *counterexample = m;
      return false;  // m is a minimal model with ~F
    }
    Interpretation mm = Minimize(m, pqz);
    if (interrupted_) {
      stats_.sat_calls += s.stats().solve_calls;
      return true;
    }
    // Does any model sharing mm's minimal projection violate F? Such a
    // model is itself minimal (minimality depends only on the projection).
    {
      Solver probe;
      LoadDb(db_, &probe, opts_.budget);
      Var pn = static_cast<Var>(db_.num_vars());
      std::vector<std::vector<Lit>> pcnf;
      Lit pl = TseitinEncode(f, &pn, &pcnf);
      probe.EnsureVars(pn);
      for (auto& cl : pcnf) probe.AddClause(std::move(cl));
      probe.AddUnit(~pl);
      SolveResult pr = probe.Solve(ProjectionAssumptions(mm, pqz));
      stats_.sat_calls += probe.stats().solve_calls;
      if (pr == SolveResult::kUnknown) {
        // Excluding the region without the probe's verdict could hide a
        // real counterexample (wrong "entailed").
        stats_.sat_calls += s.stats().solve_calls;
        MarkInterrupted();
        return true;
      }
      if (pr == SolveResult::kSat) {
        stats_.sat_calls += s.stats().solve_calls;
        if (counterexample != nullptr) {
          *counterexample = probe.Model(db_.num_vars());
        }
        return false;
      }
    }
    // No minimal counterexample in this region: exclude the region.
    if (!AddRegionBlock(mm, pqz, &s)) {
      stats_.sat_calls += s.stats().solve_calls;
      return true;
    }
  }
}

bool MinimalEngine::ExistsMinimalModelWithFresh(Lit lit, const Partition& pqz,
                                                Interpretation* witness) {
  Solver s;
  LoadDb(db_, &s, opts_.budget);
  s.AddUnit(lit);
  for (;;) {
    ++stats_.cegar_iterations;
    SolveResult r = s.Solve();
    if (r == SolveResult::kUnknown) {
      stats_.sat_calls += s.stats().solve_calls;
      MarkInterrupted();
      return false;  // placeholder; caller must check interrupted()
    }
    if (r != SolveResult::kSat) {
      stats_.sat_calls += s.stats().solve_calls;
      return false;
    }
    Interpretation m = s.Model(db_.num_vars());
    bool minimal = IsMinimal(m, pqz);
    if (interrupted_) {
      stats_.sat_calls += s.stats().solve_calls;
      return false;
    }
    if (minimal) {
      stats_.sat_calls += s.stats().solve_calls;
      if (witness != nullptr) *witness = m;
      return true;
    }
    Interpretation mm = Minimize(m, pqz);
    if (interrupted_) {
      stats_.sat_calls += s.stats().solve_calls;
      return false;
    }
    // Some model with mm's projection satisfying lit would be minimal.
    {
      Solver probe;
      LoadDb(db_, &probe, opts_.budget);
      probe.AddUnit(lit);
      SolveResult pr = probe.Solve(ProjectionAssumptions(mm, pqz));
      stats_.sat_calls += probe.stats().solve_calls;
      if (pr == SolveResult::kUnknown) {
        stats_.sat_calls += s.stats().solve_calls;
        MarkInterrupted();
        return false;
      }
      if (pr == SolveResult::kSat) {
        stats_.sat_calls += s.stats().solve_calls;
        if (witness != nullptr) *witness = probe.Model(db_.num_vars());
        return true;
      }
    }
    if (!AddRegionBlock(mm, pqz, &s)) {
      stats_.sat_calls += s.stats().solve_calls;
      return false;
    }
  }
}

}  // namespace dd
