#include "minimal/minimal_models.h"

#include <algorithm>

#include "sat/solver.h"
#include "util/macros.h"

namespace dd {

namespace {

using sat::SolveResult;
using sat::Solver;

// Loads the database CNF into a fresh solver.
void LoadDb(const Database& db, Solver* s) {
  s->EnsureVars(db.num_vars());
  // Prefer-false polarity makes the first model found already small, which
  // shortens minimization loops.
  s->SetDefaultPolarity(false);
  for (const auto& cl : db.ToCnf()) s->AddClause(cl);
}

// Adds the clause excluding the "region" of a minimal projection: models M''
// with M''∩P ⊇ p* and M''∩Q = q* . Returns false if the region is the whole
// model space (empty clause), in which case the caller must stop instead.
bool AddRegionBlock(const Interpretation& proj, const Partition& pqz,
                    Solver* s) {
  std::vector<Lit> block;
  for (Var v : proj.TrueAtoms()) {
    if (pqz.p.Contains(v)) block.push_back(Lit::Neg(v));
  }
  for (Var v = 0; v < pqz.num_vars(); ++v) {
    if (!pqz.q.Contains(v)) continue;
    block.push_back(proj.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
  }
  if (block.empty()) return false;
  s->AddClause(std::move(block));
  return true;
}

// Fixes the (P,Q)-projection of `m` as unit assumptions (Z left free).
std::vector<Lit> ProjectionAssumptions(const Interpretation& m,
                                       const Partition& pqz) {
  std::vector<Lit> out;
  for (Var v = 0; v < pqz.num_vars(); ++v) {
    if (pqz.p.Contains(v) || pqz.q.Contains(v)) {
      out.push_back(Lit::Make(v, m.Contains(v)));
    }
  }
  return out;
}

}  // namespace

MinimalEngine::MinimalEngine(const Database& db) : db_(db) {}

bool MinimalEngine::HasModel() {
  Solver s;
  LoadDb(db_, &s);
  SolveResult r = s.Solve();
  stats_.sat_calls += s.stats().solve_calls;
  DD_CHECK(r != SolveResult::kUnknown);
  return r == SolveResult::kSat;
}

std::optional<Interpretation> MinimalEngine::FindModel() {
  Solver s;
  LoadDb(db_, &s);
  SolveResult r = s.Solve();
  stats_.sat_calls += s.stats().solve_calls;
  if (r != SolveResult::kSat) return std::nullopt;
  return s.Model(db_.num_vars());
}

bool MinimalEngine::IsMinimal(const Interpretation& m, const Partition& pqz) {
  if (!IsModel(m)) return false;
  // Search a model strictly below m in the <P;Z> preorder: Q fixed to m's
  // values, every P-atom false in m stays false, some P-atom true in m
  // becomes false.
  Solver s;
  LoadDb(db_, &s);
  std::vector<Lit> smaller;
  for (Var v = 0; v < db_.num_vars(); ++v) {
    if (pqz.q.Contains(v)) {
      s.AddUnit(Lit::Make(v, m.Contains(v)));
    } else if (pqz.p.Contains(v)) {
      if (m.Contains(v)) {
        smaller.push_back(Lit::Neg(v));
      } else {
        s.AddUnit(Lit::Neg(v));
      }
    }
  }
  if (smaller.empty()) {
    // m's P-part is empty: nothing below it.
    return true;
  }
  s.AddClause(std::move(smaller));
  SolveResult r = s.Solve();
  stats_.sat_calls += s.stats().solve_calls;
  DD_CHECK(r != SolveResult::kUnknown);
  return r == SolveResult::kUnsat;
}

Interpretation MinimalEngine::Minimize(const Interpretation& m,
                                       const Partition& pqz) {
  DD_CHECK(IsModel(m));
  ++stats_.minimizations;
  Interpretation cur = m;
  // Incremental descent: as P-atoms leave the candidate they are pinned
  // false with permanent units; the "strictly smaller" clause is refreshed
  // through a fresh selector each round.
  Solver s;
  LoadDb(db_, &s);
  for (Var v = 0; v < db_.num_vars(); ++v) {
    if (pqz.q.Contains(v)) s.AddUnit(Lit::Make(v, m.Contains(v)));
    if (pqz.p.Contains(v) && !m.Contains(v)) s.AddUnit(Lit::Neg(v));
  }
  Var next_selector = static_cast<Var>(db_.num_vars());
  for (;;) {
    std::vector<Var> true_p;
    for (Var v : cur.TrueAtoms()) {
      if (pqz.p.Contains(v)) true_p.push_back(v);
    }
    if (true_p.empty()) break;  // nothing left to remove
    Var sel = next_selector++;
    s.EnsureVars(sel + 1);
    std::vector<Lit> clause{Lit::Neg(sel)};
    for (Var v : true_p) clause.push_back(Lit::Neg(v));
    s.AddClause(std::move(clause));
    SolveResult r = s.Solve({Lit::Pos(sel)});
    if (r != SolveResult::kSat) break;  // cur is minimal
    Interpretation found = s.Model(db_.num_vars());
    // Pin the freshly removed P-atoms false for all later rounds.
    for (Var v : true_p) {
      if (!found.Contains(v)) s.AddUnit(Lit::Neg(v));
    }
    cur = found;
  }
  stats_.sat_calls += s.stats().solve_calls;
  return cur;
}

int MinimalEngine::EnumerateMinimalProjections(
    const Partition& pqz, int64_t cap,
    const std::function<bool(const Interpretation&)>& cb) {
  Solver s;
  LoadDb(db_, &s);
  int emitted = 0;
  for (;;) {
    if (cap >= 0 && emitted >= cap) break;
    SolveResult r = s.Solve();
    if (r != SolveResult::kSat) break;
    Interpretation m = s.Model(db_.num_vars());
    Interpretation mm = Minimize(m, pqz);
    ++emitted;
    ++stats_.models_enumerated;
    if (!cb(mm)) break;
    if (!AddRegionBlock(mm, pqz, &s)) break;  // region = everything
  }
  stats_.sat_calls += s.stats().solve_calls;
  return emitted;
}

int MinimalEngine::EnumerateAllMinimalModels(
    const Partition& pqz, int64_t cap,
    const std::function<bool(const Interpretation&)>& cb) {
  // Outer loop over minimal projections; inner loop over Z-completions.
  int emitted = 0;
  bool stop = false;
  EnumerateMinimalProjections(
      pqz, /*cap=*/-1, [&](const Interpretation& proj) {
        Solver s;
        LoadDb(db_, &s);
        std::vector<Lit> fixed = ProjectionAssumptions(proj, pqz);
        for (Lit l : fixed) s.AddUnit(l);
        for (;;) {
          if (cap >= 0 && emitted >= cap) {
            stop = true;
            break;
          }
          SolveResult r = s.Solve();
          if (r != SolveResult::kSat) break;
          Interpretation m = s.Model(db_.num_vars());
          ++emitted;
          ++stats_.models_enumerated;
          if (!cb(m)) {
            stop = true;
            break;
          }
          // Exclude exactly this Z-completion.
          std::vector<Lit> diff;
          for (Var v = 0; v < db_.num_vars(); ++v) {
            if (pqz.z.Contains(v)) {
              diff.push_back(m.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
            }
          }
          if (diff.empty()) break;  // no Z atoms: one completion only
          s.AddClause(std::move(diff));
        }
        stats_.sat_calls += s.stats().solve_calls;
        return !stop;
      });
  return emitted;
}

bool MinimalEngine::MinimalEntails(const Formula& f, const Partition& pqz,
                                   Interpretation* counterexample) {
  // Counterexample search: a <P;Z>-minimal model of DB violating F.
  Solver s;
  LoadDb(db_, &s);
  Var next = static_cast<Var>(db_.num_vars());
  std::vector<std::vector<Lit>> fcnf;
  Lit fl = TseitinEncode(f, &next, &fcnf);
  s.EnsureVars(next);
  for (auto& cl : fcnf) s.AddClause(std::move(cl));
  s.AddUnit(~fl);  // assert ~F

  for (;;) {
    ++stats_.cegar_iterations;
    SolveResult r = s.Solve();
    if (r != SolveResult::kSat) {
      stats_.sat_calls += s.stats().solve_calls;
      return true;  // no counterexample candidate remains
    }
    Interpretation m = s.Model(db_.num_vars());
    if (IsMinimal(m, pqz)) {
      stats_.sat_calls += s.stats().solve_calls;
      if (counterexample != nullptr) *counterexample = m;
      return false;  // m is a minimal model with ~F
    }
    Interpretation mm = Minimize(m, pqz);
    // Does any model sharing mm's minimal projection violate F? Such a
    // model is itself minimal (minimality depends only on the projection).
    {
      Solver probe;
      LoadDb(db_, &probe);
      Var pn = static_cast<Var>(db_.num_vars());
      std::vector<std::vector<Lit>> pcnf;
      Lit pl = TseitinEncode(f, &pn, &pcnf);
      probe.EnsureVars(pn);
      for (auto& cl : pcnf) probe.AddClause(std::move(cl));
      probe.AddUnit(~pl);
      SolveResult pr = probe.Solve(ProjectionAssumptions(mm, pqz));
      stats_.sat_calls += probe.stats().solve_calls;
      if (pr == SolveResult::kSat) {
        stats_.sat_calls += s.stats().solve_calls;
        if (counterexample != nullptr) {
          *counterexample = probe.Model(db_.num_vars());
        }
        return false;
      }
    }
    // No minimal counterexample in this region: exclude the region.
    if (!AddRegionBlock(mm, pqz, &s)) {
      stats_.sat_calls += s.stats().solve_calls;
      return true;
    }
  }
}

bool MinimalEngine::ExistsMinimalModelWith(Lit lit, const Partition& pqz,
                                           Interpretation* witness) {
  Solver s;
  LoadDb(db_, &s);
  s.AddUnit(lit);
  for (;;) {
    ++stats_.cegar_iterations;
    SolveResult r = s.Solve();
    if (r != SolveResult::kSat) {
      stats_.sat_calls += s.stats().solve_calls;
      return false;
    }
    Interpretation m = s.Model(db_.num_vars());
    if (IsMinimal(m, pqz)) {
      stats_.sat_calls += s.stats().solve_calls;
      if (witness != nullptr) *witness = m;
      return true;
    }
    Interpretation mm = Minimize(m, pqz);
    // Some model with mm's projection satisfying lit would be minimal.
    {
      Solver probe;
      LoadDb(db_, &probe);
      probe.AddUnit(lit);
      SolveResult pr = probe.Solve(ProjectionAssumptions(mm, pqz));
      stats_.sat_calls += probe.stats().solve_calls;
      if (pr == SolveResult::kSat) {
        stats_.sat_calls += s.stats().solve_calls;
        if (witness != nullptr) *witness = probe.Model(db_.num_vars());
        return true;
      }
    }
    if (!AddRegionBlock(mm, pqz, &s)) {
      stats_.sat_calls += s.stats().solve_calls;
      return false;
    }
  }
}

Interpretation MinimalEngine::FreeAtoms(const Partition& pqz) {
  const int n = db_.num_vars();
  Interpretation free(n);
  Interpretation determined(n);
  // Atoms never mentioned in a head cannot be true in a minimal model when
  // they are minimized; quick syntactic pre-pass.
  Interpretation in_heads(n);
  for (const Clause& c : db_.clauses()) {
    for (Var v : c.heads()) in_heads.Insert(v);
  }
  for (Var v = 0; v < n; ++v) {
    if (!pqz.p.Contains(v)) {
      determined.Insert(v);  // only P-atoms are classified
      continue;
    }
    if (!in_heads.Contains(v) && db_.IsDeductive()) {
      // In a DDDB, minimized atoms can only be supported through heads.
      determined.Insert(v);
    }
  }
  for (Var v = 0; v < n; ++v) {
    if (determined.Contains(v)) continue;
    Interpretation witness;
    bool is_free = ExistsMinimalModelWith(Lit::Pos(v), pqz, &witness);
    determined.Insert(v);
    if (is_free) {
      // The witness settles all of its true P-atoms at once.
      for (Var w : witness.TrueAtoms()) {
        if (pqz.p.Contains(w)) {
          free.Insert(w);
          determined.Insert(w);
        }
      }
      free.Insert(v);
    }
  }
  return free;
}

}  // namespace dd
