// Minimal-model reasoning over a SAT oracle.
//
// This module realizes the oracle structure of the paper's membership
// proofs: a minimality check is one NP-oracle (SAT) call, a model is
// minimized with at most |P| calls, and the Π₂ᵖ inference tasks run a
// counterexample-guided loop whose every step is an oracle call.
//
// All operations work relative to a partition <P;Q;Z> (minimal/pqz.h);
// classical minimal models are the P = V case.
//
// A key structural fact exploited throughout: whether a model M is
// <P;Z>-minimal depends only on its (P,Q)-projection, because the preorder
// ignores Z entirely. Enumeration therefore proceeds over minimal
// *projections*, with Z-completions re-attached on demand.
#ifndef DD_MINIMAL_MINIMAL_MODELS_H_
#define DD_MINIMAL_MINIMAL_MODELS_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "logic/database.h"
#include "logic/formula.h"
#include "logic/interpretation.h"
#include "minimal/pqz.h"
#include "util/status.h"

namespace dd {

/// Counters for the oracle-call accounting the benches report.
struct MinimalStats {
  int64_t sat_calls = 0;        ///< NP-oracle invocations
  int64_t minimizations = 0;    ///< model-minimization loops run
  int64_t cegar_iterations = 0; ///< refinement steps in entailment loops
  int64_t models_enumerated = 0;

  void Add(const MinimalStats& o) {
    sat_calls += o.sat_calls;
    minimizations += o.minimizations;
    cegar_iterations += o.cegar_iterations;
    models_enumerated += o.models_enumerated;
  }
};

/// Minimal-model engine for one database.
///
/// The engine is stateless between calls except for the cumulative
/// statistics; methods are const-correct with respect to the database.
class MinimalEngine {
 public:
  explicit MinimalEngine(const Database& db);

  const Database& db() const { return db_; }
  const MinimalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MinimalStats(); }
  /// Folds another engine's counters into this one (used when a semantics
  /// spawns helper engines, e.g. per-reduct stability checks).
  void AbsorbStats(const MinimalStats& s) { stats_.Add(s); }

  /// Classical satisfiability of the database (one SAT call).
  bool HasModel();

  /// Some classical model, if any.
  std::optional<Interpretation> FindModel();

  /// Is `m` a model of the database?
  bool IsModel(const Interpretation& m) const { return db_.Satisfies(m); }

  /// Is `m` a <P;Z>-minimal model? One SAT call (plus the model check).
  bool IsMinimal(const Interpretation& m, const Partition& pqz);

  /// Shrinks model `m` to a <P;Z>-minimal model below it (P-part only ever
  /// shrinks; the Q-part is preserved; Z floats). At most |P|+1 SAT calls.
  Interpretation Minimize(const Interpretation& m, const Partition& pqz);

  /// Enumerates one representative model per <P;Z>-minimal projection,
  /// invoking `cb`. Stops early if `cb` returns false or after `cap`
  /// models (cap < 0 = unlimited). Returns the number emitted.
  int EnumerateMinimalProjections(
      const Partition& pqz, int64_t cap,
      const std::function<bool(const Interpretation&)>& cb);

  /// Enumerates *all* <P;Z>-minimal models, i.e. every Z-completion of
  /// every minimal projection. Exponential in |Z| in the worst case; used
  /// by cross-checks and small-instance tooling.
  int EnumerateAllMinimalModels(
      const Partition& pqz, int64_t cap,
      const std::function<bool(const Interpretation&)>& cb);

  /// Decides MM(DB;P;Z) |= F: is the formula true in every <P;Z>-minimal
  /// model? (Π₂ᵖ; counterexample-guided.) Vacuously true if DB has no model.
  /// On a negative answer, `counterexample` (if non-null) receives a
  /// <P;Z>-minimal model violating F.
  bool MinimalEntails(const Formula& f, const Partition& pqz,
                      Interpretation* counterexample = nullptr);

  /// Decides whether some <P;Z>-minimal model satisfies `lit`
  /// (the Σ₂ᵖ building block of GCWA/CCWA: "is atom x free?").
  /// On success, `*witness` (if non-null) receives such a minimal model.
  bool ExistsMinimalModelWith(Lit lit, const Partition& pqz,
                              Interpretation* witness = nullptr);

  /// The atoms of P that are true in at least one <P;Z>-minimal model.
  /// GCWA/CCWA add ¬x exactly for the P-atoms outside this set.
  Interpretation FreeAtoms(const Partition& pqz);

 private:
  Database db_;
  MinimalStats stats_;
};

}  // namespace dd

#endif  // DD_MINIMAL_MINIMAL_MODELS_H_
