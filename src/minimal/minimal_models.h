// Minimal-model reasoning over a SAT oracle.
//
// This module realizes the oracle structure of the paper's membership
// proofs: a minimality check is one NP-oracle (SAT) call, a model is
// minimized with at most |P| calls, and the Π₂ᵖ inference tasks run a
// counterexample-guided loop whose every step is an oracle call.
//
// All operations work relative to a partition <P;Q;Z> (minimal/pqz.h);
// classical minimal models are the P = V case.
//
// A key structural fact exploited throughout: whether a model M is
// <P;Z>-minimal depends only on its (P,Q)-projection, because the preorder
// ignores Z entirely. Enumeration therefore proceeds over minimal
// *projections*, with Z-completions re-attached on demand.
//
// Oracle sessions (src/oracle/): by default the engine owns ONE persistent
// incremental solver for its database. Base clauses are loaded once;
// each oracle call runs in an activation-guarded context that is retracted
// afterwards; minimality verdicts/certificates are memoized on (P,Q)
// projections; and minimal-projection enumeration keeps its blocking
// clauses alive between calls so repeated Σ₂ᵖ oracle invocations replay
// instead of recompute. MinimalOptions{use_sessions=false} restores the
// historical fresh-solver-per-call regime (the benches' --no-sessions A/B
// baseline); answers are identical in both modes. See docs/ORACLE.md.
#ifndef DD_MINIMAL_MINIMAL_MODELS_H_
#define DD_MINIMAL_MINIMAL_MODELS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "analysis/certifier.h"
#include "logic/database.h"
#include "logic/formula.h"
#include "logic/interpretation.h"
#include "minimal/pqz.h"
#include "obs/trace.h"
#include "oracle/minimality_cache.h"
#include "oracle/projection_store.h"
#include "oracle/sat_session.h"
#include "sat/solver.h"
#include "util/budget.h"
#include "util/status.h"

namespace dd {

/// Counters for the oracle-call accounting the benches report.
///
/// sat_calls counts solver invocations actually performed: in session mode
/// it DROPS when memoization answers a call, which is exactly the effect
/// the benches measure. The paper-level oracle structure (the Σ₂ᵖ call
/// counts of the counting algorithm, CEGAR iteration structure) is counted
/// by the callers and is identical in both modes.
struct MinimalStats {
  int64_t sat_calls = 0;        ///< NP-oracle invocations
  int64_t minimizations = 0;    ///< model-minimization loops run
  int64_t cegar_iterations = 0; ///< refinement steps in entailment loops
  int64_t models_enumerated = 0;
  int64_t hcf_checks = 0;       ///< polynomial founded-fixpoint checks that
                                ///< replaced a minimality oracle call

  void Add(const MinimalStats& o) {
    sat_calls += o.sat_calls;
    minimizations += o.minimizations;
    cegar_iterations += o.cegar_iterations;
    models_enumerated += o.models_enumerated;
    hcf_checks += o.hcf_checks;
  }
};

/// Engine-level tuning.
struct MinimalOptions {
  /// Route oracle calls through one persistent incremental session
  /// (src/oracle/sat_session.h) instead of a fresh solver per call.
  bool use_sessions = true;

  /// Shared query budget (deadline / conflict / oracle-call limits); null
  /// means unbudgeted. Attached to every solver the engine creates —
  /// session or fresh — and inherited by chunk-local and helper engines
  /// built from these options. See util/budget.h and docs/ROBUSTNESS.md.
  std::shared_ptr<Budget> budget;

  /// Answer minimality checks and minimizations through the polynomial
  /// founded-fixpoint test (minimal/hcf.h) instead of the SAT oracle. The
  /// engine self-verifies applicability per call: the path engages only
  /// when ITS database is deductive and head-cycle-free and the partition
  /// minimizes everything — so the flag is safe to inherit into helper
  /// engines (GL reducts, stratum slices) that run on derived databases.
  /// Off by default: the analyzer-driven Reasoner enables it per database
  /// (EnginePath::kHcfUnfounded), keeping the baselines' oracle-call
  /// accounting untouched.
  bool hcf_minimality = false;

  /// When non-null (and hcf_minimality engaged), every polynomial verdict
  /// appends a machine-checkable witness here: a founded order for
  /// "minimal", a strictly smaller model for "not minimal"
  /// (analysis/certifier.h). Not thread-safe: AreMinimal's chunk engines
  /// run with the sink detached.
  std::vector<analysis::Certificate>* hcf_certificates = nullptr;

  /// Entry cap for the minimality-verdict/certificate memo
  /// (oracle/minimality_cache.h); <= 0 means unbounded. FIFO eviction;
  /// evictions only cost recomputation, never answers. The default is
  /// generous — the cap exists so long-lived batch servers cannot leak.
  int64_t oracle_cache_cap = 1 << 20;

  /// Cap on live memoized projection streams (oracle/projection_store.h);
  /// <= 0 means unbounded. LRU eviction; an evicted partition re-enumerates
  /// deterministically from scratch on next use.
  int64_t projection_stream_cap = 64;

  /// Fast path for FreeAtoms(): a P-atom is free exactly when some minimal
  /// projection contains it, so the engine first replays/extends the
  /// (memoized) projection stream up to this many projections. A complete
  /// enumeration settles every P-atom with no per-atom oracle loop; a
  /// capped one still settles the atoms it saw and the per-atom witness
  /// loop finishes the rest, keeping worst-case behavior. <= 0 disables
  /// the fast path.
  int64_t free_atoms_enum_cap = 64;

  /// Optional query trace (not owned; null = tracing off, zero overhead).
  /// When set, every outermost public engine operation opens one
  /// "minimal"-layer span carrying the counter deltas it caused
  /// (oracle_calls, minimizations, cegar_iterations, models_enumerated)
  /// plus an "oracle"-layer child span with the session/cache activity it
  /// triggered. Chunk-local engines in AreMinimal always run untraced so
  /// the span tree is identical for every thread count. See obs/trace.h
  /// and docs/OBSERVABILITY.md.
  obs::TraceContext* trace = nullptr;
};

/// Minimal-model engine for one database.
///
/// The engine is semantically stateless between calls — session state
/// (learnt clauses, memoized verdicts, enumeration prefixes) only changes
/// performance, never answers. Not thread-safe; parallel helpers
/// (AreMinimal) spawn chunk-local engines and merge deterministically.
class MinimalEngine {
 public:
  explicit MinimalEngine(const Database& db, const MinimalOptions& opts = {});

  const Database& db() const { return db_; }
  const MinimalStats& stats() const { return stats_; }
  void ResetStats() { stats_ = MinimalStats(); }
  /// Folds another engine's counters into this one (used when a semantics
  /// spawns helper engines, e.g. per-reduct stability checks).
  void AbsorbStats(const MinimalStats& s) { stats_.Add(s); }

  bool sessions_enabled() const { return opts_.use_sessions; }

  // --- Budget / interrupt protocol -----------------------------------------
  //
  // When an oracle call reports kUnknown (budget exhaustion or fault
  // injection), the engine latches an *interrupt*: every boolean/model
  // return value produced at or after that point is a conservative
  // placeholder with NO semantic meaning, and callers MUST check
  // interrupted() after any engine call and discard the value, propagating
  // interrupt_status() instead. This keeps "Unknown" from ever silently
  // turning into a wrong yes/no (see docs/ROBUSTNESS.md). While
  // interrupted, further operations return immediately; caches, memoized
  // streams and session state are never updated from interrupted
  // computations, so a later retry (after ClearInterrupt/SetBudget) resumes
  // from sound memoized prefixes only.

  /// Attaches a shared query budget (nullptr detaches) to this engine and
  /// its solvers, and clears any latched interrupt.
  void SetBudget(std::shared_ptr<Budget> budget);
  const std::shared_ptr<Budget>& budget() const { return opts_.budget; }

  /// Attaches (nullptr detaches) a query trace. Must not be called while
  /// an engine operation is in flight.
  void SetTrace(obs::TraceContext* trace) { opts_.trace = trace; }
  obs::TraceContext* trace() const { return opts_.trace; }

  /// True once any oracle call failed to produce an answer.
  bool interrupted() const { return interrupted_; }
  /// The Status to propagate (kDeadlineExceeded / kResourceExhausted).
  /// OK iff !interrupted().
  const Status& interrupt_status() const { return interrupt_status_; }
  /// Re-arms the engine after an interrupt (e.g. for a retry with a fresh
  /// budget). Memoized state is untouched — it was never poisoned.
  void ClearInterrupt() {
    interrupted_ = false;
    interrupt_status_ = Status::OK();
  }

  /// Session-reuse accounting (zeroed in fresh-solver mode).
  oracle::SessionStats session_stats() const;

  /// The engine's session, created on first use (nullptr when sessions are
  /// disabled). Clients with bespoke oracle calls prefer Query below.
  oracle::SatSession* session();

  /// Classical satisfiability of the database (one SAT call; memoized in
  /// session mode).
  bool HasModel();

  /// Some classical model, if any.
  std::optional<Interpretation> FindModel();

  /// Is `m` a model of the database?
  bool IsModel(const Interpretation& m) const { return db_.Satisfies(m); }

  /// Is `m` a <P;Z>-minimal model? One SAT call (plus the model check);
  /// memoized on the (P,Q)-projection in session mode.
  bool IsMinimal(const Interpretation& m, const Partition& pqz);

  /// Shrinks model `m` to a <P;Z>-minimal model below it (P-part only ever
  /// shrinks; the Q-part is preserved; Z floats). At most |P|+1 SAT calls;
  /// memoized on the (P,Q)-projection in session mode.
  Interpretation Minimize(const Interpretation& m, const Partition& pqz);

  /// Per-candidate minimality checks in bulk: verdicts[i] == IsMinimal
  /// (candidates[i], pqz), computed on up to `threads` workers with
  /// chunk-local engines. The verdict vector is bit-identical for every
  /// thread count; chunk statistics are folded into stats() in chunk
  /// order.
  std::vector<bool> AreMinimal(const std::vector<Interpretation>& candidates,
                               const Partition& pqz, int threads = 1);

  /// Enumerates one representative model per <P;Z>-minimal projection,
  /// invoking `cb`. Stops early if `cb` returns false or after `cap`
  /// models (cap < 0 = unlimited). Returns the number emitted. In session
  /// mode the projection stream is memoized: repeated calls replay the
  /// known prefix without SAT calls and resume discovery incrementally.
  int EnumerateMinimalProjections(
      const Partition& pqz, int64_t cap,
      const std::function<bool(const Interpretation&)>& cb);

  /// A shared handle on `pqz`'s memoized projection stream, iff session
  /// mode is on and the stream exists and is EXHAUSTED (so the vector is
  /// frozen — exhausted streams never mutate). Null otherwise. Lets a
  /// semantics whose model set IS a projection stream (EGCWA) export it
  /// to the batch layer's model banks without re-materializing: the
  /// stream, the bank and the bank store then all alias one copy, and
  /// stream eviction merely drops this store's reference.
  std::shared_ptr<const std::vector<Interpretation>>
  SharedExhaustedProjections(const Partition& pqz);

  /// Enumerates *all* <P;Z>-minimal models, i.e. every Z-completion of
  /// every minimal projection. Exponential in |Z| in the worst case; used
  /// by cross-checks and small-instance tooling.
  int EnumerateAllMinimalModels(
      const Partition& pqz, int64_t cap,
      const std::function<bool(const Interpretation&)>& cb);

  /// Decides MM(DB;P;Z) |= F: is the formula true in every <P;Z>-minimal
  /// model? (Π₂ᵖ; counterexample-guided.) Vacuously true if DB has no model.
  /// On a negative answer, `counterexample` (if non-null) receives a
  /// <P;Z>-minimal model violating F.
  bool MinimalEntails(const Formula& f, const Partition& pqz,
                      Interpretation* counterexample = nullptr);

  /// Decides whether some <P;Z>-minimal model satisfies `lit`
  /// (the Σ₂ᵖ building block of GCWA/CCWA: "is atom x free?").
  /// On success, `*witness` (if non-null) receives such a minimal model.
  bool ExistsMinimalModelWith(Lit lit, const Partition& pqz,
                              Interpretation* witness = nullptr);

  /// The atoms of P that are true in at least one <P;Z>-minimal model.
  /// GCWA/CCWA add ¬x exactly for the P-atoms outside this set.
  Interpretation FreeAtoms(const Partition& pqz);

  /// One classical oracle call over DB plus query-scoped clauses/units,
  /// mode-transparent: in session mode it is an activation-guarded context
  /// on the engine's persistent solver; in fresh mode it is a dedicated
  /// solver pre-loaded with the database. Used by the CWA-family semantics
  /// and UMINSAT, whose oracle calls are "DB plus a few extras".
  class Query {
   public:
    explicit Query(MinimalEngine* engine);
    ~Query() = default;
    Query(const Query&) = delete;
    Query& operator=(const Query&) = delete;

    /// Adds a query-scoped clause.
    void AddClause(std::vector<Lit> lits);
    /// Adds a query-scoped unit (session mode: solved as an assumption).
    void AddUnit(Lit l);
    /// First variable above everything allocated so far (Tseitin base).
    Var NextVar() const;
    /// Registers externally allocated variables up to `next`.
    void ReserveVars(Var next);
    /// Solves DB ∪ scoped clauses ∪ scoped units under extra assumptions.
    /// Counts one NP-oracle call in the engine's stats.
    sat::SolveResult Solve(const std::vector<Lit>& extra_assumptions = {});
    Interpretation Model(int n) const;

   private:
    MinimalEngine* engine_;
    std::unique_ptr<oracle::SatSession::Context> ctx_;  // session mode
    std::unique_ptr<sat::Solver> fresh_;                // fresh mode
    std::vector<Lit> units_;       // session mode: assumption units
    std::vector<Lit> assumptions_; // reusable solve buffer
  };

 private:
  friend class Query;

  /// RAII scope for one public engine operation. When a trace is attached
  /// and this is the outermost operation (re-entrant calls — e.g.
  /// EnumerateAllMinimalModels → EnumerateMinimalProjections → Minimize —
  /// fold into the outer scope), it opens a "minimal"-layer span and, at
  /// close, attributes the MinimalStats deltas the operation caused plus
  /// an "oracle"-layer child span with the session activity it triggered.
  class OpScope {
   public:
    OpScope(MinimalEngine* e, const char* name);
    ~OpScope();
    OpScope(const OpScope&) = delete;
    OpScope& operator=(const OpScope&) = delete;

   private:
    MinimalEngine* e_;
    bool counted_ = false;  ///< incremented op_depth_ (trace was attached)
    bool active_ = false;   ///< outermost: owns a span
    int span_ = -1;
    MinimalStats before_;
    oracle::SessionStats sess_before_;
  };

  // Fresh-solver (pre-session) implementations, preserved verbatim for the
  // --no-sessions A/B baseline.
  bool HasModelFresh();
  std::optional<Interpretation> FindModelFresh();
  bool IsMinimalFresh(const Interpretation& m, const Partition& pqz);
  Interpretation MinimizeFresh(const Interpretation& m, const Partition& pqz);
  int EnumerateMinimalProjectionsFresh(
      const Partition& pqz, int64_t cap,
      const std::function<bool(const Interpretation&)>& cb);
  int EnumerateAllMinimalModelsFresh(
      const Partition& pqz, int64_t cap,
      const std::function<bool(const Interpretation&)>& cb);
  bool MinimalEntailsFresh(const Formula& f, const Partition& pqz,
                           Interpretation* counterexample);
  bool ExistsMinimalModelWithFresh(Lit lit, const Partition& pqz,
                                   Interpretation* witness);

  /// Latches the interrupt flag and derives interrupt_status_ from the
  /// budget (or a generic ResourceExhausted for injected faults).
  void MarkInterrupted();

  // --- Polynomial HCF fast path (minimal/hcf.h) ---------------------------
  /// True iff opts_.hcf_minimality is set, pqz minimizes everything, and
  /// this engine's database is deductive + head-cycle-free (memoized).
  bool HcfEligible(const Partition& pqz);
  /// SCC ids of the positive no-head-link dependency graph (memoized).
  const std::vector<int>& PosSccIds();
  /// Polynomial IsMinimal; nullopt = not eligible, fall through to oracle.
  std::optional<bool> TryHcfIsMinimal(const Interpretation& m,
                                      const Partition& pqz);
  /// Polynomial Minimize; nullopt = not eligible.
  std::optional<Interpretation> TryHcfMinimize(const Interpretation& m,
                                               const Partition& pqz);

  Database db_;
  MinimalOptions opts_;
  MinimalStats stats_;
  int op_depth_ = 0;  ///< re-entrancy depth of public ops (OpScope)
  bool interrupted_ = false;
  Status interrupt_status_;

  // Session state (null/empty in fresh mode).
  std::unique_ptr<oracle::SatSession> session_;
  oracle::MinimalityCache cache_;
  oracle::ProjectionStore proj_store_;
  std::optional<bool> has_model_;
  Interpretation found_model_;
  int64_t memo_hits_ = 0;

  // HCF fast-path memos (valid for the lifetime of db_).
  std::optional<bool> hcf_applicable_;
  std::optional<std::vector<int>> pos_scc_;
};

}  // namespace dd

#endif  // DD_MINIMAL_MINIMAL_MODELS_H_
