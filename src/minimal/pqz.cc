#include "minimal/pqz.h"

#include "util/string_util.h"

namespace dd {

Partition Partition::MinimizeAll(int num_vars) {
  Partition out;
  out.p = Interpretation(num_vars);
  out.q = Interpretation(num_vars);
  out.z = Interpretation(num_vars);
  for (Var v = 0; v < num_vars; ++v) out.p.Insert(v);
  return out;
}

Result<Partition> Partition::Make(int num_vars,
                                  const std::vector<Var>& p_atoms,
                                  const std::vector<Var>& q_atoms,
                                  const std::vector<Var>& z_atoms) {
  Partition out;
  out.p = Interpretation::FromAtoms(num_vars, p_atoms);
  out.q = Interpretation::FromAtoms(num_vars, q_atoms);
  out.z = Interpretation::FromAtoms(num_vars, z_atoms);
  DD_RETURN_IF_ERROR(out.Validate());
  return out;
}

Status Partition::Validate() const {
  const int n = num_vars();
  if (q.num_vars() != n || z.num_vars() != n) {
    return Status::InvalidArgument("partition parts have differing sizes");
  }
  for (Var v = 0; v < n; ++v) {
    int count = (p.Contains(v) ? 1 : 0) + (q.Contains(v) ? 1 : 0) +
                (z.Contains(v) ? 1 : 0);
    if (count != 1) {
      return Status::InvalidArgument(
          StrFormat("variable %d is in %d parts, expected exactly 1", v,
                    count));
    }
  }
  return Status::OK();
}

}  // namespace dd
