// The variable partition <P;Q;Z> of CCWA/ECWA/circumscription.
//
// P: minimized atoms, Q: fixed atoms, Z: floating ("varying") atoms.
// The preorder on models is  M <=_{P;Z} N  iff  M∩P ⊆ N∩P and M∩Q = N∩Q;
// MM(DB;P;Z) are the models minimal under it. GCWA/EGCWA correspond to the
// degenerate partition P = V, Q = Z = ∅.
#ifndef DD_MINIMAL_PQZ_H_
#define DD_MINIMAL_PQZ_H_

#include <string>
#include <vector>

#include "logic/interpretation.h"
#include "logic/types.h"
#include "util/status.h"

namespace dd {

/// A partition <P;Q;Z> of the variables [0, num_vars).
struct Partition {
  Interpretation p;  ///< minimized
  Interpretation q;  ///< fixed
  Interpretation z;  ///< floating

  /// P = all variables (the GCWA/EGCWA preorder).
  static Partition MinimizeAll(int num_vars);

  /// Builds a partition from explicit atom lists; every variable must be
  /// assigned to exactly one part.
  static Result<Partition> Make(int num_vars, const std::vector<Var>& p_atoms,
                                const std::vector<Var>& q_atoms,
                                const std::vector<Var>& z_atoms);

  int num_vars() const { return p.num_vars(); }

  /// Verifies P, Q, Z are pairwise disjoint and cover the variables.
  Status Validate() const;
};

}  // namespace dd

#endif  // DD_MINIMAL_PQZ_H_
