#include "minimal/uminsat.h"

#include "sat/solver.h"

namespace dd {

UminsatResult UniqueMinimalModel(MinimalEngine* engine) {
  // One "minimal"-layer span for the whole UMINSAT decision; the engine
  // operations below (FindModel / Minimize / the Query oracle call) nest
  // their own spans underneath it.
  obs::ScopedSpan span(engine->trace(), "uminsat.unique_minimal_model",
                       "minimal");
  UminsatResult out;
  const Database& db = engine->db();
  Partition all = Partition::MinimizeAll(db.num_vars());

  std::optional<Interpretation> model = engine->FindModel();
  if (engine->interrupted()) {
    out.status = engine->interrupt_status();
    return out;
  }
  if (!model.has_value()) return out;
  out.has_model = true;

  Interpretation m = engine->Minimize(*model, all);
  if (engine->interrupted()) {
    out.status = engine->interrupt_status();
    return out;
  }
  out.witness = m;

  // m is the unique minimal model iff every model contains m: a model N
  // with N ⊉ m minimizes to a minimal model ⊆ N, which cannot be m. The
  // not-superset check is one oracle call "DB plus one clause", routed
  // mode-transparently through the engine.
  std::vector<Lit> not_superset;
  for (Var v : m.TrueAtoms()) not_superset.push_back(Lit::Neg(v));
  if (not_superset.empty()) {
    // m = ∅ is contained in every model; trivially unique.
    out.unique = true;
    return out;
  }
  MinimalEngine::Query q(engine);
  q.AddClause(std::move(not_superset));
  sat::SolveResult r = q.Solve();
  if (engine->interrupted()) {
    // kUnknown here must not be folded into the UNSAT ("unique") branch.
    out.status = engine->interrupt_status();
    return out;
  }
  if (r == sat::SolveResult::kSat) {
    Interpretation n = q.Model(db.num_vars());
    out.unique = false;
    out.second = engine->Minimize(n, all);
    if (engine->interrupted()) {
      out.status = engine->interrupt_status();
      return out;
    }
  } else {
    out.unique = true;
  }
  return out;
}

}  // namespace dd
