// UMINSAT: deciding whether a database (or CNF) has a UNIQUE minimal model.
//
// Proposition 5.4 of the paper: UMINSAT is coNP-hard and, unless the
// polynomial hierarchy collapses, not in coD^P. Lemma 5.5 transfers it to
// unique-minimal-model of a normal logic program; the executable reduction
// lives in qbf/reductions.h.
#ifndef DD_MINIMAL_UMINSAT_H_
#define DD_MINIMAL_UMINSAT_H_

#include <optional>

#include "logic/database.h"
#include "minimal/minimal_models.h"
#include "util/status.h"

namespace dd {

/// Outcome of a unique-minimal-model query.
struct UminsatResult {
  bool has_model = false;
  bool unique = false;  ///< meaningful only when has_model
  /// A minimal model (the unique one when unique); present iff has_model.
  std::optional<Interpretation> witness;
  /// A second, distinct minimal model; present iff has_model && !unique.
  std::optional<Interpretation> second;
  /// Non-OK when the query ran out of budget (or the oracle reported
  /// kUnknown): every other field is then a meaningless placeholder and
  /// the answer is Unknown, never a wrong yes/no.
  Status status;
};

/// Decides whether `db` has a unique minimal model. Runs in a constant
/// number of minimization passes plus SAT calls, mirroring the problem's
/// position "between" coNP and D^P discussed in Section 5 of the paper.
/// Oracle accounting accrues to `engine`.
UminsatResult UniqueMinimalModel(MinimalEngine* engine);

}  // namespace dd

#endif  // DD_MINIMAL_UMINSAT_H_
