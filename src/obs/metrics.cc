#include "obs/metrics.h"

#include <cstdio>
#include <sstream>

namespace dd {
namespace obs {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

/// Stable small stripe index per thread: threads are handed consecutive
/// indices on first use, so up to kStripes concurrent writers land on
/// distinct cache lines.
int StripeOfThisThread() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(mine);
}

}  // namespace

void Counter::Add(int64_t n) {
  if (n == 0) return;
  cells_[StripeOfThisThread() % kStripes].v.fetch_add(
      n, std::memory_order_relaxed);
}

int64_t Counter::Value() const {
  int64_t sum = 0;
  for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
  return sum;
}

void Histogram::Record(int64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int idx = 0;
  if (value > 0) {
    // Bucket i covers 2^(i-1) <= v < 2^i; 64 - countl_zero(v) gives
    // floor(log2(v)) + 1.
    uint64_t v = static_cast<uint64_t>(value);
    idx = 64 - __builtin_clzll(v);
    if (idx >= kBuckets) idx = kBuckets - 1;
  }
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    MetricsSnapshot::HistogramData h;
    h.count = hist->Count();
    h.sum = hist->Sum();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      int64_t c = hist->BucketCount(i);
      if (c == 0) continue;
      // Inclusive upper bound of bucket i: 2^i - 1 (bucket 0: 0).
      int64_t ub = i == 0 ? 0 : (int64_t{1} << i) - 1;
      h.buckets.emplace_back(ub, c);
    }
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* g = new MetricsRegistry();  // never destroyed
  return *g;
}

void WriteJson(std::ostream& out, const MetricsSnapshot& snap) {
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ", ";
    first = false;
    out << '"' << JsonEscape(name) << "\": " << value;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ", ";
    first = false;
    out << '"' << JsonEscape(name) << "\": {\"count\": " << h.count
        << ", \"sum\": " << h.sum << ", \"buckets\": [";
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ", ";
      out << '[' << h.buckets[i].first << ", " << h.buckets[i].second << ']';
    }
    out << "]}";
  }
  out << "}}";
}

std::string ToJsonString(const MetricsSnapshot& snap) {
  std::ostringstream out;
  WriteJson(out, snap);
  return out.str();
}

}  // namespace obs
}  // namespace dd
