// Unified query observability, part 1: the metrics registry.
//
// The paper's whole empirical story is *oracle-call accounting* — the
// observable correlate of the Table 1/2 complexity placements. Historically
// those counters lived in four ad-hoc structs (MinimalStats,
// analysis::DispatchStats, oracle::SessionStats, Budget consumption) that
// could only be rendered through pairwise FormatStats string overloads. The
// obs layer makes that accounting first-class and machine-readable:
//
//   * MetricsRegistry — named monotonic counters and power-of-two
//     histograms, thread-safe via striped atomics, snapshot-able;
//   * MetricsSnapshot — an ordered, immutable point-in-time view, the unit
//     of JSON export (WriteJson / ToJsonString) consumed by ddquery
//     --metrics, the bench harnesses' BENCH_*.json rows, and the tests;
//   * the legacy structs remain the hot-path increment mechanism and are
//     published into a registry via src/obs/stats_view.h, which also
//     reconstructs them as thin views over a snapshot.
//
// Counter naming scheme (see docs/OBSERVABILITY.md):
//   dd.<layer>.<counter>, e.g. dd.minimal.sat_calls, dd.session.cache_hits,
//   dd.dispatch.generic, dd.budget.conflicts_consumed.
//
// Thread-safety: Counter::Add is a relaxed fetch_add on one of a small
// number of cache-line-padded stripes chosen per thread, so concurrent
// writers (ParallelFor workers) do not contend on one cache line;
// Value()/Snapshot() sum the stripes. Registration takes a mutex once per
// name; hold the returned Counter*/Histogram* (stable for the registry's
// lifetime) on hot paths.
#ifndef DD_OBS_METRICS_H_
#define DD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace dd {
namespace obs {

/// Escapes `s` for inclusion in a JSON string literal (quotes, backslashes
/// and control characters).
std::string JsonEscape(std::string_view s);

/// A monotonic counter striped over cache-line-padded atomics. Writers pick
/// a stripe by thread; readers sum. Add(n) with n >= 0 only.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t n);
  void Increment() { Add(1); }
  int64_t Value() const;

 private:
  static constexpr int kStripes = 8;
  struct alignas(64) Cell {
    std::atomic<int64_t> v{0};
  };
  Cell cells_[kStripes];
};

/// A histogram with power-of-two buckets: bucket i counts values v with
/// 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0 and v == 1 lands in bucket
/// 1). Tracks count and sum exactly; Record is lock-free.
class Histogram {
 public:
  static constexpr int kBuckets = 40;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(int64_t value);
  int64_t Count() const { return count_.load(std::memory_order_relaxed); }
  int64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> buckets_[kBuckets] = {};
};

/// An ordered point-in-time view of a registry (or a hand-built counter
/// set). std::map keys make iteration — and therefore JSON export —
/// deterministic.
struct MetricsSnapshot {
  struct HistogramData {
    int64_t count = 0;
    int64_t sum = 0;
    /// (inclusive upper bound, count) per nonempty bucket, ascending.
    std::vector<std::pair<int64_t, int64_t>> buckets;
  };

  std::map<std::string, int64_t> counters;
  std::map<std::string, HistogramData> histograms;

  /// The value of `name`, or 0 when absent (absent == never incremented).
  int64_t Value(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
};

/// Registry of named counters and histograms. Get* registers on first use
/// and returns a pointer that stays valid for the registry's lifetime.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  /// Convenience: GetCounter(name)->Add(n).
  void Add(std::string_view name, int64_t n) { GetCounter(name)->Add(n); }

  MetricsSnapshot Snapshot() const;

  /// The process-wide registry (for long-lived callers like ddquery
  /// --metrics; libraries prefer an explicitly passed registry).
  static MetricsRegistry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Serializes a snapshot as one JSON object:
///   {"counters": {"dd.minimal.sat_calls": 12, ...},
///    "histograms": {"dd.query.latency_us":
///        {"count": 3, "sum": 1200, "buckets": [[512, 2], [1024, 1]]}}}
/// Keys are emitted in sorted order (map iteration), so the export is
/// byte-deterministic for a given snapshot.
void WriteJson(std::ostream& out, const MetricsSnapshot& snap);
std::string ToJsonString(const MetricsSnapshot& snap);

}  // namespace obs
}  // namespace dd

#endif  // DD_OBS_METRICS_H_
