#include "obs/stats_view.h"

namespace dd {
namespace obs {

namespace {

const char* ExhaustionName(BudgetExhaustion e) {
  switch (e) {
    case BudgetExhaustion::kNone:
      return "none";
    case BudgetExhaustion::kDeadline:
      return "deadline";
    case BudgetExhaustion::kConflicts:
      return "conflicts";
    case BudgetExhaustion::kOracleCalls:
      return "oracle_calls";
    case BudgetExhaustion::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

}  // namespace

void Publish(const MinimalStats& s, MetricsRegistry* reg) {
  reg->Add(kMinimalSatCalls, s.sat_calls);
  reg->Add(kMinimalMinimizations, s.minimizations);
  reg->Add(kMinimalCegar, s.cegar_iterations);
  reg->Add(kMinimalModels, s.models_enumerated);
  reg->Add(kMinimalHcfChecks, s.hcf_checks);
}

void Publish(const analysis::DispatchStats& d, MetricsRegistry* reg) {
  reg->Add("dd.dispatch.generic", d.generic);
  reg->Add("dd.dispatch.fixpoint_literal", d.fixpoint_literal);
  reg->Add("dd.dispatch.horn_least_model", d.horn_least_model);
  reg->Add("dd.dispatch.certain_fact", d.certain_fact);
  reg->Add("dd.dispatch.const_answer", d.const_answer);
  reg->Add("dd.dispatch.slice", d.slice_literal);
  reg->Add("dd.dispatch.module", d.module_formula);
  reg->Add("dd.dispatch.hcf", d.hcf_unfounded);
}

void Publish(const oracle::SessionStats& s, MetricsRegistry* reg) {
  reg->Add("dd.session.base_loads", s.base_loads);
  reg->Add("dd.session.solves", s.solves);
  reg->Add("dd.session.contexts_opened", s.contexts_opened);
  reg->Add("dd.session.contexts_retired", s.contexts_retired);
  reg->Add("dd.session.guarded_clauses", s.guarded_clauses);
  reg->Add("dd.session.cache_hits", s.cache_hits);
  reg->Add("dd.session.cache_misses", s.cache_misses);
  reg->Add("dd.session.projections_replayed", s.projections_replayed);
  reg->Add("dd.session.projections_discovered", s.projections_discovered);
  // The eviction counter lives under dd.oracle.*: it accounts the oracle
  // layer's bounded memos (minimality cache + projection store), not the
  // session protocol itself.
  reg->Add("dd.oracle.cache_evictions", s.cache_evictions);
}

void Publish(const QbfStats& q, MetricsRegistry* reg) {
  reg->Add("dd.qbf.candidate_calls", q.candidate_calls);
  reg->Add("dd.qbf.verification_calls", q.verification_calls);
  reg->Add("dd.qbf.refinements", q.refinements);
}

void Publish(const Budget& b, MetricsRegistry* reg) {
  reg->Add("dd.budget.conflicts_consumed", b.conflicts_consumed());
  reg->Add("dd.budget.oracle_calls_consumed", b.oracle_calls_consumed());
  BudgetExhaustion why = b.reason();
  if (why != BudgetExhaustion::kNone) {
    reg->Add(std::string("dd.budget.exhausted.") + ExhaustionName(why), 1);
  }
}

MinimalStats MinimalStatsView(const MetricsSnapshot& snap) {
  MinimalStats s;
  s.sat_calls = snap.Value(kMinimalSatCalls);
  s.minimizations = snap.Value(kMinimalMinimizations);
  s.cegar_iterations = snap.Value(kMinimalCegar);
  s.models_enumerated = snap.Value(kMinimalModels);
  s.hcf_checks = snap.Value(kMinimalHcfChecks);
  return s;
}

analysis::DispatchStats DispatchStatsView(const MetricsSnapshot& snap) {
  analysis::DispatchStats d;
  d.generic = snap.Value("dd.dispatch.generic");
  d.fixpoint_literal = snap.Value("dd.dispatch.fixpoint_literal");
  d.horn_least_model = snap.Value("dd.dispatch.horn_least_model");
  d.certain_fact = snap.Value("dd.dispatch.certain_fact");
  d.const_answer = snap.Value("dd.dispatch.const_answer");
  d.slice_literal = snap.Value("dd.dispatch.slice");
  d.module_formula = snap.Value("dd.dispatch.module");
  d.hcf_unfounded = snap.Value("dd.dispatch.hcf");
  return d;
}

oracle::SessionStats SessionStatsView(const MetricsSnapshot& snap) {
  oracle::SessionStats s;
  s.base_loads = snap.Value("dd.session.base_loads");
  s.solves = snap.Value("dd.session.solves");
  s.contexts_opened = snap.Value("dd.session.contexts_opened");
  s.contexts_retired = snap.Value("dd.session.contexts_retired");
  s.guarded_clauses = snap.Value("dd.session.guarded_clauses");
  s.cache_hits = snap.Value("dd.session.cache_hits");
  s.cache_misses = snap.Value("dd.session.cache_misses");
  s.projections_replayed = snap.Value("dd.session.projections_replayed");
  s.projections_discovered = snap.Value("dd.session.projections_discovered");
  s.cache_evictions = snap.Value("dd.oracle.cache_evictions");
  return s;
}

QbfStats QbfStatsView(const MetricsSnapshot& snap) {
  QbfStats q;
  q.candidate_calls = snap.Value("dd.qbf.candidate_calls");
  q.verification_calls = snap.Value("dd.qbf.verification_calls");
  q.refinements = snap.Value("dd.qbf.refinements");
  return q;
}

MetricsSnapshot SnapshotOf(const MinimalStats& s,
                           const analysis::DispatchStats* d,
                           const oracle::SessionStats* sess) {
  MetricsRegistry reg;
  Publish(s, &reg);
  if (d != nullptr) Publish(*d, &reg);
  if (sess != nullptr) Publish(*sess, &reg);
  return reg.Snapshot();
}

}  // namespace obs
}  // namespace dd
