// Unified query observability, part 3: absorbing the legacy stats structs.
//
// The four ad-hoc counter structs that predate src/obs/ — MinimalStats,
// analysis::DispatchStats, oracle::SessionStats and Budget consumption —
// remain the hot-path increment mechanism (a plain int64 bump inside an
// engine beats a registry lookup), but the registry is now the canonical
// aggregation point:
//
//   Publish(stats, &registry)   — folds a struct into the registry under
//                                 the canonical dd.<layer>.<counter> names.
//                                 Counters are monotonic: publish a struct
//                                 once (or publish deltas), never the same
//                                 cumulative value twice.
//   *View(snapshot)             — reconstructs a legacy struct as a thin
//                                 view over a MetricsSnapshot, which is how
//                                 the FormatStats renderers (and their
//                                 existing test pins) keep working on top
//                                 of registry data.
//   SnapshotOf(...)             — one-shot: a snapshot holding exactly the
//                                 given structs (bench rows, FormatStats).
//
// Round-trip contract (pinned by tests/obs_test.cc): for any struct s,
// View(SnapshotOf(s)) == s, field for field.
#ifndef DD_OBS_STATS_VIEW_H_
#define DD_OBS_STATS_VIEW_H_

#include "analysis/dispatch.h"
#include "minimal/minimal_models.h"
#include "obs/metrics.h"
#include "oracle/sat_session.h"
#include "qbf/qbf_solver.h"
#include "util/budget.h"

namespace dd {
namespace obs {

// Canonical counter names (docs/OBSERVABILITY.md documents the scheme).
inline constexpr const char* kMinimalSatCalls = "dd.minimal.sat_calls";
inline constexpr const char* kMinimalMinimizations =
    "dd.minimal.minimizations";
inline constexpr const char* kMinimalCegar = "dd.minimal.cegar_iterations";
inline constexpr const char* kMinimalModels = "dd.minimal.models_enumerated";
inline constexpr const char* kMinimalHcfChecks = "dd.minimal.hcf_checks";

void Publish(const MinimalStats& s, MetricsRegistry* reg);
void Publish(const analysis::DispatchStats& d, MetricsRegistry* reg);
void Publish(const oracle::SessionStats& s, MetricsRegistry* reg);
void Publish(const QbfStats& q, MetricsRegistry* reg);
/// Publishes consumption (dd.budget.conflicts_consumed /
/// oracle_calls_consumed) and, when exhausted, one increment of
/// dd.budget.exhausted.<reason>.
void Publish(const Budget& b, MetricsRegistry* reg);

MinimalStats MinimalStatsView(const MetricsSnapshot& snap);
analysis::DispatchStats DispatchStatsView(const MetricsSnapshot& snap);
oracle::SessionStats SessionStatsView(const MetricsSnapshot& snap);
QbfStats QbfStatsView(const MetricsSnapshot& snap);

/// A snapshot holding exactly the given structs (null pointers are
/// omitted). The combined FormatStats overload and the bench harnesses'
/// per-row counter snapshots are built through this.
MetricsSnapshot SnapshotOf(const MinimalStats& s,
                           const analysis::DispatchStats* d = nullptr,
                           const oracle::SessionStats* sess = nullptr);

}  // namespace obs
}  // namespace dd

#endif  // DD_OBS_STATS_VIEW_H_
