#include "obs/trace.h"

#include <algorithm>
#include <sstream>

#include "obs/metrics.h"

namespace dd {
namespace obs {

namespace {

/// Per-thread stack of (context, span id) for parent inference. A thread
/// may interleave spans of several contexts (nested engines with distinct
/// traces); parents are matched per context.
std::vector<std::pair<const TraceContext*, int>>& OpenSpans() {
  thread_local std::vector<std::pair<const TraceContext*, int>> stack;
  return stack;
}

}  // namespace

TraceContext::TraceContext() : epoch_(std::chrono::steady_clock::now()) {}

TraceContext::~TraceContext() {
  // Drop any leftovers of this context from this thread's open stack
  // (open spans at destruction are a caller bug, but must not leave
  // dangling pointers behind).
  auto& stack = OpenSpans();
  stack.erase(std::remove_if(
                  stack.begin(), stack.end(),
                  [this](const auto& e) { return e.first == this; }),
              stack.end());
}

int TraceContext::OpenSpan(std::string name, std::string layer) {
  auto& stack = OpenSpans();
  int parent = -1;
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->first == this) {
      parent = it->second;
      break;
    }
  }
  int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count();
  int id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = static_cast<int>(spans_.size());
    Span s;
    s.id = id;
    s.parent = parent;
    s.name = std::move(name);
    s.layer = std::move(layer);
    s.start_us = now_us;
    spans_.push_back(std::move(s));
  }
  stack.emplace_back(this, id);
  return id;
}

void TraceContext::CloseSpan(int id) {
  int64_t now_us = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - epoch_)
                       .count();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (id < 0 || id >= static_cast<int>(spans_.size())) return;
    if (spans_[static_cast<size_t>(id)].end_us >= 0) return;  // already closed
    spans_[static_cast<size_t>(id)].end_us = now_us;
  }
  auto& stack = OpenSpans();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->first == this && it->second == id) {
      stack.erase(std::next(it).base());
      break;
    }
  }
}

void TraceContext::AddCounter(int id, std::string_view key, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  Span& s = spans_[static_cast<size_t>(id)];
  for (auto& [k, v] : s.counters) {
    if (k == key) {
      v += delta;
      return;
    }
  }
  s.counters.emplace_back(std::string(key), delta);
}

void TraceContext::SetAttr(int id, std::string_view key, std::string value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || id >= static_cast<int>(spans_.size())) return;
  Span& s = spans_[static_cast<size_t>(id)];
  for (auto& [k, v] : s.attrs) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  s.attrs.emplace_back(std::string(key), std::move(value));
}

std::vector<Span> TraceContext::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t TraceContext::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

int64_t TraceContext::SumCounter(std::string_view key,
                                 std::string_view layer) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t sum = 0;
  for (const Span& s : spans_) {
    if (!layer.empty() && s.layer != layer) continue;
    sum += s.Counter(key);
  }
  return sum;
}

void TraceContext::WriteJson(std::ostream& out) const {
  std::vector<Span> spans = Snapshot();
  out << "{\"trace_schema\": 1, \"spans\": [";
  for (size_t i = 0; i < spans.size(); ++i) {
    const Span& s = spans[i];
    if (i > 0) out << ",";
    out << "\n  {\"id\": " << s.id << ", \"parent\": " << s.parent
        << ", \"name\": \"" << JsonEscape(s.name) << "\", \"layer\": \""
        << JsonEscape(s.layer) << "\", \"start_us\": " << s.start_us
        << ", \"end_us\": " << s.end_us << ", \"counters\": {";
    for (size_t j = 0; j < s.counters.size(); ++j) {
      if (j > 0) out << ", ";
      out << '"' << JsonEscape(s.counters[j].first)
          << "\": " << s.counters[j].second;
    }
    out << "}, \"attrs\": {";
    for (size_t j = 0; j < s.attrs.size(); ++j) {
      if (j > 0) out << ", ";
      out << '"' << JsonEscape(s.attrs[j].first) << "\": \""
          << JsonEscape(s.attrs[j].second) << '"';
    }
    out << "}}";
  }
  out << "\n]}\n";
}

std::string TraceContext::ToJsonString() const {
  std::ostringstream out;
  WriteJson(out);
  return out.str();
}

}  // namespace obs
}  // namespace dd
