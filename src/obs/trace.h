// Unified query observability, part 2: per-query trace spans.
//
// A TraceContext records one span per *layer crossing* of a query:
//
//   Reasoner ("reasoner")  — one `query` span per entry point, carrying the
//     dispatch decision, the oracle-call totals the query consumed (the
//     legacy MinimalStats delta), and budget-consumption attribution;
//   semantics engine ("semantics") — the generic engine invocation;
//   MinimalEngine / uminsat / QBF-CEGAR ("minimal" / "qbf") — one span per
//     top-level oracle-backed operation (MinimalEntails, FreeAtoms,
//     enumeration, the CEGAR loop);
//   SatSession ("oracle") and sat::Solver ("sat") — aggregate reuse and
//     conflict accounting for the operation above them (one accumulating
//     span per operation, NOT one per solver call — a query makes
//     thousands of those).
//
// Spans carry monotonic counter attributions (oracle_calls, conflicts,
// cache_hits, dispatch downgrades, budget consumption) and string
// attributes (semantics, task, dispatch path, status). The exactness
// contract pinned by tests/obs_test.cc: summing `oracle_calls` over
// "reasoner"-layer spans reproduces the legacy MinimalStats totals.
//
// Parenting is inferred from a per-thread stack of open spans, so layers
// need no plumbing beyond opening/closing their own span; spans opened on
// a worker thread with no open parent become roots. All mutation is
// mutex-guarded — spans are per layer crossing, not per solver call, so
// the lock is far off any hot path.
#ifndef DD_OBS_TRACE_H_
#define DD_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dd {
namespace obs {

/// One node of the span tree. POD-ish; returned by TraceContext::Snapshot.
struct Span {
  int id = 0;
  int parent = -1;  ///< span id, or -1 for a root
  std::string name;
  std::string layer;  ///< serve|reasoner|semantics|minimal|qbf|oracle|sat|cli
  int64_t start_us = 0;  ///< microseconds since the context's epoch
  int64_t end_us = -1;   ///< -1 while open
  /// Counter attributions, insertion-ordered (AddCounter accumulates on an
  /// existing key).
  std::vector<std::pair<std::string, int64_t>> counters;
  /// String attributes, insertion-ordered (SetAttr overwrites).
  std::vector<std::pair<std::string, std::string>> attrs;

  int64_t Counter(std::string_view key) const {
    for (const auto& [k, v] : counters) {
      if (k == key) return v;
    }
    return 0;
  }
  const std::string* Attr(std::string_view key) const {
    for (const auto& [k, v] : attrs) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// The span tree of one query (or one CLI/bench session). Create one per
/// top-level unit of work, share the pointer down the layers (it rides on
/// QueryOptions / SemanticsOptions / MinimalOptions next to the Budget),
/// and export with WriteJson once the work is done.
class TraceContext {
 public:
  TraceContext();
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  /// Opens a span whose parent is the innermost span this thread currently
  /// has open in this context (or none). Returns the span id.
  int OpenSpan(std::string name, std::string layer);

  /// Closes `id` (records end time, pops it from this thread's open
  /// stack). Closing an already-closed span is a no-op.
  void CloseSpan(int id);

  /// Adds `delta` to counter `key` of span `id` (creates it at 0 first).
  void AddCounter(int id, std::string_view key, int64_t delta);

  /// Sets attribute `key` of span `id`.
  void SetAttr(int id, std::string_view key, std::string value);

  /// A copy of all spans recorded so far (open spans have end_us == -1).
  std::vector<Span> Snapshot() const;

  size_t span_count() const;

  /// Sums counter `key` over all spans, or over spans of `layer` only.
  int64_t SumCounter(std::string_view key,
                     std::string_view layer = {}) const;

  /// Serializes the span tree:
  ///   {"trace_schema": 1, "spans": [{"id":0,"parent":-1,"name":"query",
  ///     "layer":"reasoner","start_us":0,"end_us":42,
  ///     "counters":{"oracle_calls":5}, "attrs":{"semantics":"GCWA"}}]}
  void WriteJson(std::ostream& out) const;
  std::string ToJsonString() const;

 private:
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII span: no-op when `trace` is null, so call sites stay branch-free.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* trace, std::string name, std::string layer)
      : trace_(trace) {
    if (trace_ != nullptr) {
      id_ = trace_->OpenSpan(std::move(name), std::move(layer));
    }
  }
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->CloseSpan(id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Counter(std::string_view key, int64_t delta) {
    if (trace_ != nullptr) trace_->AddCounter(id_, key, delta);
  }
  void Attr(std::string_view key, std::string value) {
    if (trace_ != nullptr) trace_->SetAttr(id_, key, std::move(value));
  }

  explicit operator bool() const { return trace_ != nullptr; }
  int id() const { return id_; }
  TraceContext* context() const { return trace_; }

 private:
  TraceContext* trace_;
  int id_ = -1;
};

}  // namespace obs
}  // namespace dd

#endif  // DD_OBS_TRACE_H_
