#include "oracle/minimality_cache.h"

namespace dd {
namespace oracle {

namespace {

bool SamePartition(const Partition& a, const Partition& b) {
  return a.p == b.p && a.q == b.q && a.z == b.z;
}

}  // namespace

Interpretation MinimalityCache::MaskPQ(const Interpretation& m,
                                       const Partition& pqz) {
  Interpretation out(pqz.num_vars());
  for (Var v : m.TrueAtoms()) {
    if (v < pqz.num_vars() && (pqz.p.Contains(v) || pqz.q.Contains(v))) {
      out.Insert(v);
    }
  }
  return out;
}

size_t MinimalityCache::ShardIndex(const Partition& pqz) {
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (SamePartition(shards_[i].pqz, pqz)) return i;
  }
  shards_.push_back(Shard{pqz, {}, {}});
  return shards_.size() - 1;
}

void MinimalityCache::EvictToCapacity() {
  while (cap_ > 0 && size_ > cap_ && !fifo_.empty()) {
    const Entry& e = fifo_.front();
    Shard& s = shards_[e.shard];
    size_t erased =
        e.is_verdict ? s.verdicts.erase(e.key) : s.minimized.erase(e.key);
    fifo_.pop_front();
    // Every ledger entry corresponds to a live map entry (maps only shrink
    // here or in Clear, which empties the ledger too).
    if (erased != 0) {
      --size_;
      ++evictions_;
    }
  }
}

std::optional<bool> MinimalityCache::LookupVerdict(
    const Partition& pqz, const Interpretation& masked) {
  Shard& s = shards_[ShardIndex(pqz)];
  auto it = s.verdicts.find(masked);
  if (it == s.verdicts.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void MinimalityCache::StoreVerdict(const Partition& pqz,
                                   const Interpretation& masked,
                                   bool minimal) {
  size_t si = ShardIndex(pqz);
  auto [it, inserted] = shards_[si].verdicts.insert_or_assign(masked, minimal);
  (void)it;
  if (inserted) {
    ++size_;
    fifo_.push_back(Entry{si, true, masked});
    EvictToCapacity();
  }
}

std::optional<Interpretation> MinimalityCache::LookupMinimized(
    const Partition& pqz, const Interpretation& masked) {
  Shard& s = shards_[ShardIndex(pqz)];
  auto it = s.minimized.find(masked);
  if (it == s.minimized.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void MinimalityCache::StoreMinimized(const Partition& pqz,
                                     const Interpretation& masked,
                                     const Interpretation& minimal_model) {
  size_t si = ShardIndex(pqz);
  auto [it, inserted] =
      shards_[si].minimized.insert_or_assign(masked, minimal_model);
  (void)it;
  if (inserted) {
    ++size_;
    fifo_.push_back(Entry{si, false, masked});
    EvictToCapacity();
  }
}

void MinimalityCache::Clear() {
  shards_.clear();
  fifo_.clear();
  size_ = 0;
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
}

}  // namespace oracle
}  // namespace dd
