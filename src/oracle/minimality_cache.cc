#include "oracle/minimality_cache.h"

namespace dd {
namespace oracle {

namespace {

bool SamePartition(const Partition& a, const Partition& b) {
  return a.p == b.p && a.q == b.q && a.z == b.z;
}

}  // namespace

Interpretation MinimalityCache::MaskPQ(const Interpretation& m,
                                       const Partition& pqz) {
  Interpretation out(pqz.num_vars());
  for (Var v : m.TrueAtoms()) {
    if (v < pqz.num_vars() && (pqz.p.Contains(v) || pqz.q.Contains(v))) {
      out.Insert(v);
    }
  }
  return out;
}

MinimalityCache::Shard* MinimalityCache::GetShard(const Partition& pqz) {
  for (Shard& s : shards_) {
    if (SamePartition(s.pqz, pqz)) return &s;
  }
  shards_.push_back(Shard{pqz, {}, {}});
  return &shards_.back();
}

std::optional<bool> MinimalityCache::LookupVerdict(
    const Partition& pqz, const Interpretation& masked) {
  Shard* s = GetShard(pqz);
  auto it = s->verdicts.find(masked);
  if (it == s->verdicts.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void MinimalityCache::StoreVerdict(const Partition& pqz,
                                   const Interpretation& masked,
                                   bool minimal) {
  GetShard(pqz)->verdicts.insert_or_assign(masked, minimal);
}

std::optional<Interpretation> MinimalityCache::LookupMinimized(
    const Partition& pqz, const Interpretation& masked) {
  Shard* s = GetShard(pqz);
  auto it = s->minimized.find(masked);
  if (it == s->minimized.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second;
}

void MinimalityCache::StoreMinimized(const Partition& pqz,
                                     const Interpretation& masked,
                                     const Interpretation& minimal_model) {
  GetShard(pqz)->minimized.insert_or_assign(masked, minimal_model);
}

void MinimalityCache::Clear() {
  shards_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace oracle
}  // namespace dd
