// Memoized minimality verdicts and minimization certificates.
//
// The structural fact this cache exploits (minimal/minimal_models.h):
// whether a model M is <P;Z>-minimal depends ONLY on its (P,Q)-projection,
// because the <P;Z> preorder fixes Q and ignores Z. The cache is therefore
// keyed on masked interpretations M ∩ (P ∪ Q), and one entry answers the
// minimality question for every Z-completion of the projection at once.
//
// Minimize() results are cached under the same key: the minimization
// constraints (Q pinned, absent P-atoms pinned false, strictly-smaller
// clauses) mention only P- and Q-atoms, so the cached result is a genuine
// <P;Z>-minimal model below every M sharing the masked key. See
// docs/ORACLE.md for the full soundness argument.
//
// Entries are grouped into per-partition shards compared by full bitset
// equality — never by hash — so distinct partitions can never alias.
//
// Capacity: SetCapacity bounds the total entry count across all shards
// (long-lived batch servers answer unbounded query streams against one
// database; an unbounded memo is a slow leak). Eviction is FIFO in
// insertion order — dropping an entry only costs a recomputation, never an
// answer — and is counted in evictions() (surfaced as
// dd.oracle.cache_evictions, see docs/ORACLE.md).
#ifndef DD_ORACLE_MINIMALITY_CACHE_H_
#define DD_ORACLE_MINIMALITY_CACHE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "logic/interpretation.h"
#include "minimal/pqz.h"

namespace dd {
namespace oracle {

/// Per-engine memo of minimal-model verdicts and certificates.
class MinimalityCache {
 public:
  /// M ∩ (P ∪ Q): the canonical cache key for `m` under `pqz`.
  static Interpretation MaskPQ(const Interpretation& m, const Partition& pqz);

  /// Cached IsMinimal verdict for the masked projection, if known.
  std::optional<bool> LookupVerdict(const Partition& pqz,
                                    const Interpretation& masked);
  void StoreVerdict(const Partition& pqz, const Interpretation& masked,
                    bool minimal);

  /// Cached Minimize() certificate (a <P;Z>-minimal model) for models with
  /// the masked projection, if known.
  std::optional<Interpretation> LookupMinimized(const Partition& pqz,
                                                const Interpretation& masked);
  void StoreMinimized(const Partition& pqz, const Interpretation& masked,
                      const Interpretation& minimal_model);

  /// Bounds the total entry count across all shards; <= 0 means unbounded.
  /// Shrinking below the current size evicts (FIFO) on the next store.
  void SetCapacity(int64_t cap) { cap_ = cap; }
  int64_t capacity() const { return cap_; }
  int64_t size() const { return size_; }

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }

  void Clear();

 private:
  struct Shard {
    Partition pqz;
    std::unordered_map<Interpretation, bool> verdicts;
    std::unordered_map<Interpretation, Interpretation> minimized;
  };

  /// FIFO ledger entry: which shard, which map, which key.
  struct Entry {
    size_t shard;
    bool is_verdict;
    Interpretation key;
  };

  /// Finds (or creates) the shard for `pqz` by full bitset equality; the
  /// number of distinct partitions per engine is tiny (typically 1).
  size_t ShardIndex(const Partition& pqz);

  /// Drops oldest entries until size_ <= cap_ (no-op when unbounded).
  void EvictToCapacity();

  std::vector<Shard> shards_;
  std::deque<Entry> fifo_;  ///< insertion order over both maps
  int64_t cap_ = 0;
  int64_t size_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace oracle
}  // namespace dd

#endif  // DD_ORACLE_MINIMALITY_CACHE_H_
