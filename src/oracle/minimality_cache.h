// Memoized minimality verdicts and minimization certificates.
//
// The structural fact this cache exploits (minimal/minimal_models.h):
// whether a model M is <P;Z>-minimal depends ONLY on its (P,Q)-projection,
// because the <P;Z> preorder fixes Q and ignores Z. The cache is therefore
// keyed on masked interpretations M ∩ (P ∪ Q), and one entry answers the
// minimality question for every Z-completion of the projection at once.
//
// Minimize() results are cached under the same key: the minimization
// constraints (Q pinned, absent P-atoms pinned false, strictly-smaller
// clauses) mention only P- and Q-atoms, so the cached result is a genuine
// <P;Z>-minimal model below every M sharing the masked key. See
// docs/ORACLE.md for the full soundness argument.
//
// Entries are grouped into per-partition shards compared by full bitset
// equality — never by hash — so distinct partitions can never alias.
#ifndef DD_ORACLE_MINIMALITY_CACHE_H_
#define DD_ORACLE_MINIMALITY_CACHE_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "logic/interpretation.h"
#include "minimal/pqz.h"

namespace dd {
namespace oracle {

/// Per-engine memo of minimal-model verdicts and certificates.
class MinimalityCache {
 public:
  /// M ∩ (P ∪ Q): the canonical cache key for `m` under `pqz`.
  static Interpretation MaskPQ(const Interpretation& m, const Partition& pqz);

  /// Cached IsMinimal verdict for the masked projection, if known.
  std::optional<bool> LookupVerdict(const Partition& pqz,
                                    const Interpretation& masked);
  void StoreVerdict(const Partition& pqz, const Interpretation& masked,
                    bool minimal);

  /// Cached Minimize() certificate (a <P;Z>-minimal model) for models with
  /// the masked projection, if known.
  std::optional<Interpretation> LookupMinimized(const Partition& pqz,
                                                const Interpretation& masked);
  void StoreMinimized(const Partition& pqz, const Interpretation& masked,
                      const Interpretation& minimal_model);

  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

  void Clear();

 private:
  struct Shard {
    Partition pqz;
    std::unordered_map<Interpretation, bool> verdicts;
    std::unordered_map<Interpretation, Interpretation> minimized;
  };

  /// Finds (or creates) the shard for `pqz` by full bitset equality; the
  /// number of distinct partitions per engine is tiny (typically 1).
  Shard* GetShard(const Partition& pqz);

  std::vector<Shard> shards_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace oracle
}  // namespace dd

#endif  // DD_ORACLE_MINIMALITY_CACHE_H_
