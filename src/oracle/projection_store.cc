#include "oracle/projection_store.h"

namespace dd {
namespace oracle {

ProjectionStream* ProjectionStore::GetStream(const Partition& pqz) {
  for (auto& s : streams_) {
    if (s->pqz.p == pqz.p && s->pqz.q == pqz.q && s->pqz.z == pqz.z) {
      return s.get();
    }
  }
  auto stream = std::make_unique<ProjectionStream>();
  stream->pqz = pqz;
  streams_.push_back(std::move(stream));
  return streams_.back().get();
}

}  // namespace oracle
}  // namespace dd
