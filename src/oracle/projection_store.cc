#include "oracle/projection_store.h"

#include <utility>

namespace dd {
namespace oracle {

ProjectionStream* ProjectionStore::FindStream(const Partition& pqz) {
  for (auto& s : streams_) {
    if (s->pqz.p == pqz.p && s->pqz.q == pqz.q && s->pqz.z == pqz.z) {
      return s.get();
    }
  }
  return nullptr;
}

ProjectionStream* ProjectionStore::GetStream(const Partition& pqz) {
  for (auto& s : streams_) {
    if (s->pqz.p == pqz.p && s->pqz.q == pqz.q && s->pqz.z == pqz.z) {
      s->last_used = ++tick_;
      return s.get();
    }
  }
  if (cap_ > 0 && static_cast<int64_t>(streams_.size()) >= cap_) {
    // Evict the least-recently-used stream. Its kept context stays inert in
    // the session; a later request for its partition re-enumerates the
    // identical stream from scratch.
    size_t lru = 0;
    for (size_t i = 1; i < streams_.size(); ++i) {
      if (streams_[i]->last_used < streams_[lru]->last_used) lru = i;
    }
    if (lru != streams_.size() - 1) {
      streams_[lru] = std::move(streams_.back());
    }
    streams_.pop_back();
    ++evictions_;
  }
  auto stream = std::make_unique<ProjectionStream>();
  stream->pqz = pqz;
  stream->last_used = ++tick_;
  streams_.push_back(std::move(stream));
  return streams_.back().get();
}

}  // namespace oracle
}  // namespace dd
