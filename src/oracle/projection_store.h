// Memoized minimal-projection streams: blocking-clause reuse across
// successive enumeration calls.
//
// EnumerateMinimalProjections is the workhorse inside the Σ₂ᵖ oracle of
// the paper's counting algorithm (Section 3.1): the binary search calls it
// O(log n) times over the SAME database and partition, each time from
// scratch in the fresh-solver regime. A ProjectionStream instead records
// the projections in their discovery order together with the session
// context holding their region-blocking clauses; later calls replay the
// memoized prefix with zero SAT calls and, only if the consumer wants
// more, resume the persistent context exactly where the last call stopped.
//
// The stream order is well-defined because enumeration is deterministic:
// the k-th projection is a function of the database, the partition, and
// the k-1 blocks already asserted — independent of which oracle call
// happened to discover it.
//
// Capacity: SetCapacity bounds the number of live streams (each one pins
// its projections plus a kept session context for the life of the store —
// unbounded growth is a leak under long-lived batch servers that sweep
// many partitions). Eviction is LRU by GetStream access. Dropping a stream
// is sound: its kept context stays inert in the session (guarded clauses
// constrain nothing without their activation assumption), and a later
// GetStream simply re-enumerates from scratch — deterministically the same
// stream. Evictions are counted (dd.oracle.cache_evictions).
#ifndef DD_ORACLE_PROJECTION_STORE_H_
#define DD_ORACLE_PROJECTION_STORE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "logic/interpretation.h"
#include "minimal/pqz.h"
#include "oracle/sat_session.h"

namespace dd {
namespace oracle {

/// One partition's memoized enumeration state.
struct ProjectionStream {
  Partition pqz;
  /// Minimal projections in discovery order (each is a full model; its
  /// (P,Q)-projection is the canonical datum). Held behind a shared
  /// handle so an EXHAUSTED stream's storage can be aliased outward
  /// (Semantics::SharedModels → the batch layer's model banks) without a
  /// copy: once exhausted the vector is never mutated again, and eviction
  /// only drops this stream's reference while outstanding handles keep
  /// the models alive. Never null.
  std::shared_ptr<std::vector<Interpretation>> projections =
      std::make_shared<std::vector<Interpretation>>();
  /// True once the region blocks cover the whole model space.
  bool exhausted = false;
  /// Persistent context guarding the region-blocking clauses; kept alive
  /// for the life of the stream so resumption is incremental.
  std::unique_ptr<SatSession::Context> ctx;
  /// Last GetStream access (LRU eviction order).
  int64_t last_used = 0;
};

/// Per-engine registry of streams, one per partition (full bitset
/// equality, never hashed).
class ProjectionStore {
 public:
  /// Finds or creates the stream for `pqz`. The returned pointer is valid
  /// until the next GetStream call (which may evict) or Clear.
  ProjectionStream* GetStream(const Partition& pqz);

  /// Finds the stream for `pqz` without creating one (and without
  /// touching LRU order): nullptr when absent. Read-only probes — e.g.
  /// handing out an exhausted stream's shared projections — must not
  /// trigger eviction of an unrelated live stream.
  ProjectionStream* FindStream(const Partition& pqz);

  /// Bounds the number of live streams; <= 0 means unbounded.
  void SetCapacity(int64_t cap) { cap_ = cap; }
  int64_t capacity() const { return cap_; }
  int64_t size() const { return static_cast<int64_t>(streams_.size()); }
  int64_t evictions() const { return evictions_; }

  void Clear() { streams_.clear(); }

 private:
  std::vector<std::unique_ptr<ProjectionStream>> streams_;
  int64_t cap_ = 0;
  int64_t tick_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace oracle
}  // namespace dd

#endif  // DD_ORACLE_PROJECTION_STORE_H_
