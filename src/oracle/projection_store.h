// Memoized minimal-projection streams: blocking-clause reuse across
// successive enumeration calls.
//
// EnumerateMinimalProjections is the workhorse inside the Σ₂ᵖ oracle of
// the paper's counting algorithm (Section 3.1): the binary search calls it
// O(log n) times over the SAME database and partition, each time from
// scratch in the fresh-solver regime. A ProjectionStream instead records
// the projections in their discovery order together with the session
// context holding their region-blocking clauses; later calls replay the
// memoized prefix with zero SAT calls and, only if the consumer wants
// more, resume the persistent context exactly where the last call stopped.
//
// The stream order is well-defined because enumeration is deterministic:
// the k-th projection is a function of the database, the partition, and
// the k-1 blocks already asserted — independent of which oracle call
// happened to discover it.
#ifndef DD_ORACLE_PROJECTION_STORE_H_
#define DD_ORACLE_PROJECTION_STORE_H_

#include <memory>
#include <vector>

#include "logic/interpretation.h"
#include "minimal/pqz.h"
#include "oracle/sat_session.h"

namespace dd {
namespace oracle {

/// One partition's memoized enumeration state.
struct ProjectionStream {
  Partition pqz;
  /// Minimal projections in discovery order (each is a full model; its
  /// (P,Q)-projection is the canonical datum).
  std::vector<Interpretation> projections;
  /// True once the region blocks cover the whole model space.
  bool exhausted = false;
  /// Persistent context guarding the region-blocking clauses; kept alive
  /// for the life of the stream so resumption is incremental.
  std::unique_ptr<SatSession::Context> ctx;
};

/// Per-engine registry of streams, one per partition (full bitset
/// equality, never hashed).
class ProjectionStore {
 public:
  /// Finds or creates the stream for `pqz`.
  ProjectionStream* GetStream(const Partition& pqz);

  void Clear() { streams_.clear(); }

 private:
  std::vector<std::unique_ptr<ProjectionStream>> streams_;
};

}  // namespace oracle
}  // namespace dd

#endif  // DD_ORACLE_PROJECTION_STORE_H_
