#include "oracle/sat_session.h"

#include <utility>

namespace dd {
namespace oracle {

SatSession::SatSession(const Database& db) : base_vars_(db.num_vars()) {
  solver_.EnsureVars(base_vars_);
  // Prefer-false polarity makes the first model found already small, which
  // shortens every minimization loop run through the session.
  solver_.SetDefaultPolarity(false);
  for (const auto& cl : db.ToCnf()) {
    solver_.AddClause(cl.data(), cl.size());
  }
  next_var_ = static_cast<Var>(solver_.num_vars());
  if (next_var_ < base_vars_) next_var_ = base_vars_;
  ++stats_.base_loads;
}

Var SatSession::AllocVar() {
  Var v = next_var_++;
  solver_.EnsureVars(v + 1);
  return v;
}

void SatSession::ReserveVars(Var next) {
  if (next > next_var_) {
    next_var_ = next;
    solver_.EnsureVars(next);
  }
}

sat::SolveResult SatSession::Solve(const std::vector<Lit>& assumptions) {
  ++stats_.solves;
  return solver_.Solve(assumptions);
}

SatSession::Context::Context(SatSession* session) : session_(session) {
  act_ = session_->AllocVar();
  ++session_->stats_.contexts_opened;
}

SatSession::Context::~Context() {
  if (keep_) return;
  // Retract: ¬act permanently satisfies every clause of the group (and
  // every learnt clause that depended on one, since those contain ¬act).
  //
  // Beyond the group's clauses, pin *every variable allocated during this
  // context's window* [act, next_var) false at level 0. Those variables
  // (selectors, Tseitin auxiliaries) occur only in guarded clauses that the
  // retraction just satisfied, so they are unconstrained — but a CDCL model
  // is a total assignment, so left free each of them would cost every later
  // Solve() a decision forever. Pinning keeps the per-solve search effort
  // proportional to the *live* variables, not to session history.
  //
  // Sound because allocation is monotone (dead variables are never reused)
  // and context lifetimes nest: groups opened inside this window were
  // retired (and pinned, harmlessly re-pinned here) before this one, and
  // kept groups (enumeration streams) are only ever created outside any
  // retiring window — see the header contract.
  Var end = session_->next_var_;
  for (Var v = act_; v < end; ++v) {
    session_->solver_.AddUnit(Lit::Neg(v));
  }
  ++session_->stats_.contexts_retired;
}

void SatSession::Context::AddClause(std::vector<Lit> lits) {
  AddClause(lits.data(), lits.size());
}

void SatSession::Context::AddClause(const Lit* lits, size_t n) {
  scratch_.clear();
  scratch_.reserve(n + 1);
  scratch_.push_back(Lit::Neg(act_));
  scratch_.insert(scratch_.end(), lits, lits + n);
  session_->solver_.AddClause(scratch_.data(), scratch_.size());
  ++session_->stats_.guarded_clauses;
}

sat::SolveResult SatSession::Context::Solve(
    const std::vector<Lit>& extra_assumptions) {
  scratch_.clear();
  scratch_.reserve(extra_assumptions.size() + 1);
  scratch_.push_back(activation());
  scratch_.insert(scratch_.end(), extra_assumptions.begin(),
                  extra_assumptions.end());
  return session_->Solve(scratch_);
}

}  // namespace oracle
}  // namespace dd
