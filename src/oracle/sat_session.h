// Persistent incremental NP-oracle sessions.
//
// Every membership algorithm in the paper is "polynomial time with an
// NP (or Σ₂ᵖ) oracle", and a single query drives thousands of oracle
// calls over ONE fixed database. Historically each call built a fresh
// sat::Solver and re-loaded the same CNF; a SatSession instead owns one
// incremental solver per Database, loads the base clauses exactly once,
// and serves every subsequent oracle call through activation-literal
// scoped contexts:
//
//   * base clauses            — loaded once, never touched again
//   * query-specific clauses  — added as (¬act ∨ C) under a fresh
//                               activation variable `act`; the query
//                               solves under the assumption `act`
//   * retraction              — the context's destructor asserts the unit
//                               ¬act, permanently satisfying (and thereby
//                               disabling) every clause of the group
//
// Soundness: CDCL learnt clauses are resolvents of existing clauses, so
// any learnt clause depending on a guarded clause contains ¬act itself and
// dies with the group. Learnt clauses over base clauses survive and are
// the mechanism by which later oracle calls get faster. See docs/ORACLE.md
// for the full protocol and the cache-soundness argument.
#ifndef DD_ORACLE_SAT_SESSION_H_
#define DD_ORACLE_SAT_SESSION_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "logic/database.h"
#include "logic/interpretation.h"
#include "logic/types.h"
#include "sat/solver.h"
#include "util/budget.h"

namespace dd {
namespace oracle {

/// Cumulative reuse accounting for one session (and, via Add, for a whole
/// engine). Complements MinimalStats: MinimalStats counts the *semantic*
/// oracle work, SessionStats shows how much of it was served from reuse.
struct SessionStats {
  int64_t base_loads = 0;         ///< databases loaded (1 per session)
  int64_t solves = 0;             ///< Solve() calls routed through sessions
  int64_t contexts_opened = 0;    ///< activation groups created
  int64_t contexts_retired = 0;   ///< groups retracted via ¬act
  int64_t guarded_clauses = 0;    ///< query clauses added under guards
  int64_t cache_hits = 0;         ///< oracle answers served from memo
  int64_t cache_misses = 0;       ///< oracle answers actually computed
  int64_t projections_replayed = 0;    ///< minimal projections from memo
  int64_t projections_discovered = 0;  ///< minimal projections computed
  int64_t cache_evictions = 0;  ///< memo entries / streams dropped at cap

  void Add(const SessionStats& o) {
    base_loads += o.base_loads;
    solves += o.solves;
    contexts_opened += o.contexts_opened;
    contexts_retired += o.contexts_retired;
    guarded_clauses += o.guarded_clauses;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    projections_replayed += o.projections_replayed;
    projections_discovered += o.projections_discovered;
    cache_evictions += o.cache_evictions;
  }
};

/// One persistent incremental solver bound to one Database.
///
/// Not thread-safe: parallel callers use one session (or one fresh engine)
/// per thread and merge results in task order.
class SatSession {
 public:
  /// Loads the database CNF once (prefer-false polarity, the right default
  /// for minimization work).
  explicit SatSession(const Database& db);

  int base_vars() const { return base_vars_; }

  /// Current variable high-water mark (base + activations + Tseitin).
  Var next_var() const { return next_var_; }

  /// Allocates one fresh variable above everything handed out so far.
  Var AllocVar();

  /// Registers externally allocated variables (e.g. a Tseitin encoder ran
  /// with a Var counter seeded from next_var()): bumps the high-water mark
  /// to `next` and grows the solver.
  void ReserveVars(Var next);

  /// Solves against the base clauses only (plus any still-live guarded
  /// groups, which are inactive without their activation assumptions).
  sat::SolveResult Solve(const std::vector<Lit>& assumptions = {});

  /// Attaches a shared query budget to the underlying solver (nullptr
  /// detaches). Budgeted solves report kUnknown on exhaustion; callers
  /// must treat that as "no answer", never as UNSAT.
  void SetBudget(std::shared_ptr<Budget> budget) {
    solver_.SetBudget(std::move(budget));
  }

  /// The satisfying assignment restricted to [0, n) after a kSat Solve.
  Interpretation Model(int n) const { return solver_.Model(n); }

  sat::Solver& solver() { return solver_; }
  SessionStats& stats() { return stats_; }
  const SessionStats& stats() const { return stats_; }

  /// An activation-guarded clause group: the RAII unit of one oracle call.
  ///
  /// Clauses added through the context receive the guard ¬act; Solve()
  /// assumes `act` (plus caller assumptions). Destruction retracts the
  /// group with the unit ¬act unless Keep() was called (persistent groups,
  /// e.g. the blocking clauses of a memoized enumeration stream).
  ///
  /// Lifetime contract: contexts nest LIFO — a context opened while another
  /// is alive is destroyed first — and Keep()-groups are only created while
  /// no retiring context is alive. Under that discipline retraction also
  /// pins the context's whole variable window [act, next_var) false: those
  /// auxiliaries (selectors, Tseitin variables) are unconstrained once
  /// their guarded clauses die, and pinning them keeps later solves from
  /// spending a decision per dead variable for the rest of the session.
  class Context {
   public:
    explicit Context(SatSession* session);
    ~Context();

    Context(const Context&) = delete;
    Context& operator=(const Context&) = delete;

    Lit activation() const { return Lit::Pos(act_); }

    /// Adds (¬act ∨ lits).
    void AddClause(std::vector<Lit> lits);
    void AddClause(const Lit* lits, size_t n);
    void AddUnit(Lit l) { AddClause({l}); }

    /// Solves under {act} ∪ extra_assumptions.
    sat::SolveResult Solve(const std::vector<Lit>& extra_assumptions = {});

    Interpretation Model(int n) const { return session_->Model(n); }

    /// Leaves the group live after destruction (no ¬act retraction); the
    /// group then only constrains solves that assume its activation.
    void Keep() { keep_ = true; }

   private:
    SatSession* session_;
    Var act_;
    bool keep_ = false;
    std::vector<Lit> scratch_;  // reusable guarded-clause buffer
  };

 private:
  sat::Solver solver_;
  int base_vars_;
  Var next_var_;
  SessionStats stats_;
};

}  // namespace oracle
}  // namespace dd

#endif  // DD_ORACLE_SAT_SESSION_H_
