#include "qbf/qbf.h"

#include <vector>

#include "util/string_util.h"

namespace dd {

namespace {

Status ValidateQuantification(int num_vars, const std::vector<Var>& a,
                              const std::vector<Var>& b,
                              const std::vector<std::vector<Lit>>& lit_sets) {
  std::vector<int> count(static_cast<size_t>(num_vars), 0);
  for (Var v : a) {
    if (v < 0 || v >= num_vars)
      return Status::InvalidArgument("quantified variable out of range");
    ++count[static_cast<size_t>(v)];
  }
  for (Var v : b) {
    if (v < 0 || v >= num_vars)
      return Status::InvalidArgument("quantified variable out of range");
    ++count[static_cast<size_t>(v)];
  }
  for (int c : count) {
    if (c > 1) return Status::InvalidArgument("variable quantified twice");
  }
  for (const auto& ls : lit_sets) {
    for (Lit l : ls) {
      if (l.var() < 0 || l.var() >= num_vars)
        return Status::InvalidArgument("matrix variable out of range");
      if (count[static_cast<size_t>(l.var())] == 0)
        return Status::InvalidArgument(
            StrFormat("matrix variable %d is not quantified", l.var()));
    }
  }
  return Status::OK();
}

}  // namespace

Status QbfForallExistsCnf::Validate() const {
  return ValidateQuantification(num_vars, universal, existential, clauses);
}

Status QbfExistsForallDnf::Validate() const {
  return ValidateQuantification(num_vars, existential, universal, terms);
}

QbfExistsForallDnf NegateToExistsForall(const QbfForallExistsCnf& q) {
  QbfExistsForallDnf out;
  out.num_vars = q.num_vars;
  out.existential = q.universal;
  out.universal = q.existential;
  out.terms.reserve(q.clauses.size());
  for (const auto& cl : q.clauses) {
    std::vector<Lit> term;
    term.reserve(cl.size());
    for (Lit l : cl) term.push_back(~l);
    out.terms.push_back(std::move(term));
  }
  return out;
}

QbfForallExistsCnf NegateToForallExists(const QbfExistsForallDnf& q) {
  QbfForallExistsCnf out;
  out.num_vars = q.num_vars;
  out.universal = q.existential;
  out.existential = q.universal;
  out.clauses.reserve(q.terms.size());
  for (const auto& t : q.terms) {
    std::vector<Lit> cl;
    cl.reserve(t.size());
    for (Lit l : t) cl.push_back(~l);
    out.clauses.push_back(std::move(cl));
  }
  return out;
}

}  // namespace dd
