// Two-level quantified Boolean formulas.
//
// The paper's hardness results live at the second level of the polynomial
// hierarchy: Π₂ᵖ via validity of ∀X∃Y φ with φ in CNF, Σ₂ᵖ via validity of
// ∃X∀Y ψ with ψ in DNF. The two are dual: ¬(∀X∃Y φ) = ∃X∀Y ¬φ and ¬CNF is
// a DNF over the negated literals.
#ifndef DD_QBF_QBF_H_
#define DD_QBF_QBF_H_

#include <string>
#include <vector>

#include "logic/types.h"
#include "util/status.h"

namespace dd {

/// Φ = ∀X ∃Y φ, φ a CNF over X ∪ Y. Validity is Π₂ᵖ-complete.
struct QbfForallExistsCnf {
  int num_vars = 0;
  std::vector<Var> universal;    ///< X
  std::vector<Var> existential;  ///< Y
  std::vector<std::vector<Lit>> clauses;

  /// Every variable of every clause must be quantified exactly once.
  Status Validate() const;
};

/// Φ = ∃X ∀Y ψ, ψ a DNF (disjunction of terms, each a conjunction of
/// literals). Validity is Σ₂ᵖ-complete.
struct QbfExistsForallDnf {
  int num_vars = 0;
  std::vector<Var> existential;  ///< X
  std::vector<Var> universal;    ///< Y
  std::vector<std::vector<Lit>> terms;

  Status Validate() const;
};

/// De Morgan dual: ¬(∀X∃Yφ) as ∃X∀Y(¬φ). The result is valid iff the
/// input is invalid.
QbfExistsForallDnf NegateToExistsForall(const QbfForallExistsCnf& q);

/// De Morgan dual in the other direction.
QbfForallExistsCnf NegateToForallExists(const QbfExistsForallDnf& q);

}  // namespace dd

#endif  // DD_QBF_QBF_H_
