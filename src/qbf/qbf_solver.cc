#include "qbf/qbf_solver.h"

#include "sat/solver.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace dd {

namespace {
using sat::SolveResult;
using sat::Solver;
}  // namespace

QbfCegarSession::QbfCegarSession(const QbfForallExistsCnf& q)
    : q_(q), validate_(q.Validate()), is_existential_(q.num_vars) {
  if (!validate_.ok()) return;
  for (Var v : q_.existential) is_existential_.Insert(v);
  // Verification solver: the matrix, loaded once, queried under
  // X-assumptions for the rest of the session's life.
  verify_.EnsureVars(q_.num_vars);
  for (const auto& cl : q_.clauses) verify_.AddClause(cl.data(), cl.size());
  // Abstraction solver over X (selector variables are appended above the
  // matrix variables).
  abstract_.EnsureVars(q_.num_vars);
  next_selector_ = static_cast<Var>(q_.num_vars);
}

Result<bool> QbfCegarSession::Solve(Interpretation* counterexample) {
  DD_RETURN_IF_ERROR(validate_);
  if (result_.has_value()) {
    // Memoized verdict: replay with zero SAT calls.
    if (!*result_ && counterexample != nullptr) {
      *counterexample = counterexample_;
    }
    return *result_;
  }
  // One "qbf"-layer span per unmemoized Solve(), attributing the CEGAR
  // work this call performed (deltas against the session's cumulative
  // counters, so a budget-interrupted run plus its retry split correctly).
  obs::ScopedSpan span(trace_, "qbf.cegar", "qbf");
  const QbfStats before = stats_;
  struct SpanCloser {
    obs::ScopedSpan& span;
    const QbfStats& before;
    const QbfStats& stats;
    ~SpanCloser() {
      span.Counter("candidate_calls",
                   stats.candidate_calls - before.candidate_calls);
      span.Counter("verification_calls",
                   stats.verification_calls - before.verification_calls);
      span.Counter("refinements", stats.refinements - before.refinements);
      span.Counter("oracle_calls",
                   (stats.candidate_calls - before.candidate_calls) +
                       (stats.verification_calls - before.verification_calls));
    }
  } closer{span, before, stats_};
  for (;;) {
    ++stats_.candidate_calls;
    SolveResult ar = abstract_.Solve();
    if (ar == SolveResult::kUnknown) {
      // No memoization: the refinement state stays warm for a retry.
      return BudgetOrUnknownStatus(budget_, "QBF candidate oracle unknown");
    }
    if (ar == SolveResult::kUnsat) {
      // Every X-assignment has been certified to have a completion.
      result_ = true;
      return true;
    }
    Interpretation cand = abstract_.Model(q_.num_vars);

    std::vector<Lit> assumptions;
    assumptions.reserve(q_.universal.size());
    for (Var v : q_.universal) {
      assumptions.push_back(Lit::Make(v, cand.Contains(v)));
    }
    ++stats_.verification_calls;
    SolveResult vr = verify_.Solve(assumptions);
    if (vr == SolveResult::kUnknown) {
      return BudgetOrUnknownStatus(budget_, "QBF verification oracle unknown");
    }
    if (vr == SolveResult::kUnsat) {
      Interpretation ce(q_.num_vars);
      for (Var v : q_.universal) {
        if (cand.Contains(v)) ce.Insert(v);
      }
      counterexample_ = ce;
      if (counterexample != nullptr) *counterexample = ce;
      result_ = false;
      return false;
    }
    Interpretation y = verify_.Model(q_.num_vars);

    // Refine: exclude every X for which the found Y-assignment works, i.e.
    // assert that some clause is falsified once Y := y.
    ++stats_.refinements;
    std::vector<Lit> some_violated;
    bool all_clauses_satisfied_by_y = true;
    for (const auto& cl : q_.clauses) {
      bool sat_by_y = false;
      for (Lit l : cl) {
        if (is_existential_.Contains(l.var()) && y.Satisfies(l)) {
          sat_by_y = true;
          break;
        }
      }
      if (sat_by_y) continue;
      all_clauses_satisfied_by_y = false;
      // The clause survives with its universal part; a fresh selector
      // asserts "this clause is violated".
      Var sel = next_selector_++;
      abstract_.EnsureVars(sel + 1);
      for (Lit l : cl) {
        if (!is_existential_.Contains(l.var())) {
          abstract_.AddBinary(Lit::Neg(sel), ~l);
        }
      }
      some_violated.push_back(Lit::Pos(sel));
    }
    if (all_clauses_satisfied_by_y) {
      // y satisfies the whole matrix on its own: valid for every X.
      result_ = true;
      return true;
    }
    abstract_.AddClause(std::move(some_violated));
  }
}

Result<bool> SolveForallExists(const QbfForallExistsCnf& q,
                               Interpretation* counterexample,
                               QbfStats* stats,
                               const std::shared_ptr<Budget>& budget,
                               obs::TraceContext* trace) {
  QbfCegarSession session(q);
  session.SetBudget(budget);
  session.SetTrace(trace);
  DD_ASSIGN_OR_RETURN(bool valid, session.Solve(counterexample));
  if (stats != nullptr) {
    stats->candidate_calls += session.stats().candidate_calls;
    stats->verification_calls += session.stats().verification_calls;
    stats->refinements += session.stats().refinements;
  }
  return valid;
}

Result<bool> SolveExistsForall(const QbfExistsForallDnf& q,
                               Interpretation* witness, QbfStats* stats,
                               const std::shared_ptr<Budget>& budget,
                               obs::TraceContext* trace) {
  DD_RETURN_IF_ERROR(q.Validate());
  QbfForallExistsCnf dual = NegateToForallExists(q);
  Interpretation ce;
  DD_ASSIGN_OR_RETURN(bool dual_valid,
                      SolveForallExists(dual, &ce, stats, budget, trace));
  if (!dual_valid && witness != nullptr) *witness = ce;
  return !dual_valid;
}

Result<bool> SolveForallExistsByExpansion(
    const QbfForallExistsCnf& q, const std::shared_ptr<Budget>& budget) {
  DD_RETURN_IF_ERROR(q.Validate());
  if (q.universal.size() > 25) {
    return Status::ResourceExhausted(
        StrFormat("expansion over %d universal variables is infeasible",
                  static_cast<int>(q.universal.size())));
  }
  Solver verify;
  verify.SetBudget(budget);
  verify.EnsureVars(q.num_vars);
  for (const auto& cl : q.clauses) verify.AddClause(cl);

  const uint64_t count = uint64_t{1} << q.universal.size();
  for (uint64_t bits = 0; bits < count; ++bits) {
    std::vector<Lit> assumptions;
    assumptions.reserve(q.universal.size());
    for (size_t i = 0; i < q.universal.size(); ++i) {
      assumptions.push_back(
          Lit::Make(q.universal[i], (bits >> i) & 1));
    }
    SolveResult r = verify.Solve(assumptions);
    if (r == SolveResult::kUnknown) {
      return BudgetOrUnknownStatus(budget, "QBF expansion oracle unknown");
    }
    if (r == SolveResult::kUnsat) return false;
  }
  return true;
}

}  // namespace dd
