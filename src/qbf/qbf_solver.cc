#include "qbf/qbf_solver.h"

#include "sat/solver.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace dd {

namespace {
using sat::SolveResult;
using sat::Solver;
}  // namespace

Result<bool> SolveForallExists(const QbfForallExistsCnf& q,
                               Interpretation* counterexample,
                               QbfStats* stats) {
  DD_RETURN_IF_ERROR(q.Validate());
  QbfStats local;
  QbfStats* st = stats != nullptr ? stats : &local;

  Interpretation is_existential(q.num_vars);
  for (Var v : q.existential) is_existential.Insert(v);

  // Verification solver: the matrix, queried under X-assumptions.
  Solver verify;
  verify.EnsureVars(q.num_vars);
  for (const auto& cl : q.clauses) verify.AddClause(cl);

  // Abstraction solver over X (selector variables are appended above the
  // matrix variables).
  Solver abstract;
  abstract.EnsureVars(q.num_vars);
  Var next_selector = static_cast<Var>(q.num_vars);

  for (;;) {
    ++st->candidate_calls;
    SolveResult ar = abstract.Solve();
    DD_CHECK(ar != SolveResult::kUnknown);
    if (ar == SolveResult::kUnsat) {
      // Every X-assignment has been certified to have a completion.
      return true;
    }
    Interpretation cand = abstract.Model(q.num_vars);

    std::vector<Lit> assumptions;
    assumptions.reserve(q.universal.size());
    for (Var v : q.universal) {
      assumptions.push_back(Lit::Make(v, cand.Contains(v)));
    }
    ++st->verification_calls;
    SolveResult vr = verify.Solve(assumptions);
    DD_CHECK(vr != SolveResult::kUnknown);
    if (vr == SolveResult::kUnsat) {
      if (counterexample != nullptr) {
        Interpretation ce(q.num_vars);
        for (Var v : q.universal) {
          if (cand.Contains(v)) ce.Insert(v);
        }
        *counterexample = ce;
      }
      return false;
    }
    Interpretation y = verify.Model(q.num_vars);

    // Refine: exclude every X for which the found Y-assignment works, i.e.
    // assert that some clause is falsified once Y := y.
    ++st->refinements;
    std::vector<Lit> some_violated;
    bool all_clauses_satisfied_by_y = true;
    for (const auto& cl : q.clauses) {
      bool sat_by_y = false;
      for (Lit l : cl) {
        if (is_existential.Contains(l.var()) && y.Satisfies(l)) {
          sat_by_y = true;
          break;
        }
      }
      if (sat_by_y) continue;
      all_clauses_satisfied_by_y = false;
      // The clause survives with its universal part; a fresh selector
      // asserts "this clause is violated".
      Var sel = next_selector++;
      abstract.EnsureVars(sel + 1);
      for (Lit l : cl) {
        if (!is_existential.Contains(l.var())) {
          abstract.AddBinary(Lit::Neg(sel), ~l);
        }
      }
      some_violated.push_back(Lit::Pos(sel));
    }
    if (all_clauses_satisfied_by_y) {
      // y satisfies the whole matrix on its own: valid for every X.
      return true;
    }
    abstract.AddClause(std::move(some_violated));
  }
}

Result<bool> SolveExistsForall(const QbfExistsForallDnf& q,
                               Interpretation* witness, QbfStats* stats) {
  DD_RETURN_IF_ERROR(q.Validate());
  QbfForallExistsCnf dual = NegateToForallExists(q);
  Interpretation ce;
  DD_ASSIGN_OR_RETURN(bool dual_valid, SolveForallExists(dual, &ce, stats));
  if (!dual_valid && witness != nullptr) *witness = ce;
  return !dual_valid;
}

Result<bool> SolveForallExistsByExpansion(const QbfForallExistsCnf& q) {
  DD_RETURN_IF_ERROR(q.Validate());
  if (q.universal.size() > 25) {
    return Status::ResourceExhausted(
        StrFormat("expansion over %d universal variables is infeasible",
                  static_cast<int>(q.universal.size())));
  }
  Solver verify;
  verify.EnsureVars(q.num_vars);
  for (const auto& cl : q.clauses) verify.AddClause(cl);

  const uint64_t count = uint64_t{1} << q.universal.size();
  for (uint64_t bits = 0; bits < count; ++bits) {
    std::vector<Lit> assumptions;
    assumptions.reserve(q.universal.size());
    for (size_t i = 0; i < q.universal.size(); ++i) {
      assumptions.push_back(
          Lit::Make(q.universal[i], (bits >> i) & 1));
    }
    SolveResult r = verify.Solve(assumptions);
    DD_CHECK(r != SolveResult::kUnknown);
    if (r == SolveResult::kUnsat) return false;
  }
  return true;
}

}  // namespace dd
