// 2-QBF solving: the library's Σ₂ᵖ / Π₂ᵖ oracle.
//
// Two engines:
//  * CEGAR (default): a candidate solver over the outer block and a
//    verification solver over the full matrix refine each other, the
//    standard counterexample-guided 2QBF loop.
//  * Expansion: enumerates all outer-block assignments; exponential, kept
//    as the independent reference implementation (ablation + tests).
#ifndef DD_QBF_QBF_SOLVER_H_
#define DD_QBF_QBF_SOLVER_H_

#include <cstdint>
#include <memory>
#include <optional>

#include "logic/interpretation.h"
#include "obs/trace.h"
#include "qbf/qbf.h"
#include "sat/solver.h"
#include "util/budget.h"
#include "util/status.h"

namespace dd {

/// Counters for the CEGAR loop.
struct QbfStats {
  int64_t candidate_calls = 0;     ///< SAT calls on the abstraction
  int64_t verification_calls = 0;  ///< SAT calls on the matrix
  int64_t refinements = 0;
};

/// A persistent CEGAR engine for one ∀X∃Yφ instance.
///
/// The abstraction and verification solvers follow the same session
/// discipline as src/oracle/sat_session.h: the matrix is loaded once, both
/// solvers stay hot across the refinement loop, and the final verdict (plus
/// counterexample) is memoized so repeated Solve() calls on the same
/// instance replay without SAT calls. The free functions below are
/// single-shot wrappers over this class.
class QbfCegarSession {
 public:
  explicit QbfCegarSession(const QbfForallExistsCnf& q);

  /// Decides validity; memoized after the first call. On invalidity,
  /// `counterexample` (if non-null) receives an X-assignment with no
  /// Y-completion (Y-part zero). Under an exhausted budget (or injected
  /// oracle fault) returns kDeadlineExceeded/kResourceExhausted — the
  /// verdict is then NOT memoized, so a retry with a fresh budget resumes
  /// the refinement loop on the warm solvers.
  Result<bool> Solve(Interpretation* counterexample = nullptr);

  /// Attaches a shared query budget to both CEGAR solvers (nullptr
  /// detaches).
  void SetBudget(std::shared_ptr<Budget> budget) {
    budget_ = budget;
    verify_.SetBudget(budget);
    abstract_.SetBudget(std::move(budget));
  }

  /// Attaches (nullptr detaches) a query trace: each unmemoized Solve()
  /// records one "qbf"-layer span carrying its candidate/verification/
  /// refinement deltas. Memoized replays record no span.
  void SetTrace(obs::TraceContext* trace) { trace_ = trace; }

  /// Cumulative CEGAR accounting (frozen once the verdict is memoized).
  const QbfStats& stats() const { return stats_; }

  /// True once a verdict is memoized (later Solve()s are free).
  bool solved() const { return result_.has_value(); }

 private:
  QbfForallExistsCnf q_;
  Status validate_;
  Interpretation is_existential_;
  sat::Solver verify_;    ///< the matrix, queried under X-assumptions
  sat::Solver abstract_;  ///< over X, refined with violation selectors
  Var next_selector_;
  QbfStats stats_;
  std::optional<bool> result_;
  Interpretation counterexample_;
  std::shared_ptr<Budget> budget_;
  obs::TraceContext* trace_ = nullptr;
};

/// Decides validity of ∀X∃Yφ. If invalid and `counterexample` is non-null,
/// it receives an X-assignment with no Y-completion (over [0, num_vars),
/// Y-part zero). An exhausted `budget` yields
/// kDeadlineExceeded/kResourceExhausted, never a wrong verdict.
Result<bool> SolveForallExists(const QbfForallExistsCnf& q,
                               Interpretation* counterexample = nullptr,
                               QbfStats* stats = nullptr,
                               const std::shared_ptr<Budget>& budget = nullptr,
                               obs::TraceContext* trace = nullptr);

/// Decides validity of ∃X∀Yψ (DNF matrix). If valid and `witness` non-null,
/// it receives an X-assignment all of whose Y-completions satisfy ψ.
Result<bool> SolveExistsForall(const QbfExistsForallDnf& q,
                               Interpretation* witness = nullptr,
                               QbfStats* stats = nullptr,
                               const std::shared_ptr<Budget>& budget = nullptr,
                               obs::TraceContext* trace = nullptr);

/// Reference implementation by full expansion of the universal block
/// (exponential in |X|; use only for small instances / cross-checks).
Result<bool> SolveForallExistsByExpansion(
    const QbfForallExistsCnf& q,
    const std::shared_ptr<Budget>& budget = nullptr);

}  // namespace dd

#endif  // DD_QBF_QBF_SOLVER_H_
