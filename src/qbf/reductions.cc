#include "qbf/reductions.h"

#include <string>
#include <unordered_map>

#include "util/macros.h"
#include "util/string_util.h"

namespace dd {

namespace {

// Shared gadget body for Theorem 3.1 / Section 5.2: builds the choice
// clauses, the w-saturation of the universal block, and the term rules.
ReducedInstance BuildMinimalMembershipGadget(const QbfExistsForallDnf& q) {
  DD_CHECK(q.Validate().ok());
  ReducedInstance out;
  Vocabulary& voc = out.db.vocabulary();

  // pos[v] / neg[v]: the atom standing for "v true" / "v false".
  std::unordered_map<Var, Var> pos, neg;
  auto make_pair = [&](Var v, const char* prefix) {
    std::string base = StrFormat("%s%d", prefix, v);
    pos[v] = voc.Intern(base);
    neg[v] = voc.Intern(base + "'");
  };
  for (Var x : q.existential) make_pair(x, "x");
  for (Var y : q.universal) make_pair(y, "y");
  out.w = voc.Intern("w");

  auto sigma = [&](Lit l) { return l.positive() ? pos[l.var()] : neg[l.var()]; };

  // Choice clauses: every variable gets one of its two atoms.
  for (Var x : q.existential) {
    out.db.AddClause(Clause::Fact({pos[x], neg[x]}));
  }
  for (Var y : q.universal) {
    out.db.AddClause(Clause::Fact({pos[y], neg[y]}));
  }
  // w saturates the universal block.
  for (Var y : q.universal) {
    out.db.AddClause(Clause({pos[y]}, {out.w}, {}));
    out.db.AddClause(Clause({neg[y]}, {out.w}, {}));
  }
  // One rule per DNF term: the term fires w.
  for (const auto& term : q.terms) {
    std::vector<Var> body;
    body.reserve(term.size());
    for (Lit l : term) body.push_back(sigma(l));
    out.db.AddClause(Clause({out.w}, std::move(body), {}));
  }
  return out;
}

}  // namespace

ReducedInstance ReduceSigma2ToMinimalMembership(const QbfExistsForallDnf& q) {
  return BuildMinimalMembershipGadget(q);
}

ReducedInstance ReducePi2ToGcwaLiteral(const QbfForallExistsCnf& q) {
  // Φ valid <=> ¬Φ invalid <=> no minimal model contains w.
  return BuildMinimalMembershipGadget(NegateToExistsForall(q));
}

ReducedInstance ReduceSigma2ToDsmExistence(const QbfExistsForallDnf& q) {
  ReducedInstance out = BuildMinimalMembershipGadget(q);
  // w :- not w : kills every stable model without w.
  out.db.AddClause(Clause({out.w}, {}, {out.w}));
  return out;
}

Database CnfToDatabase(const sat::Cnf& cnf) {
  Database db;
  Vocabulary& voc = db.vocabulary();
  for (Var v = 0; v < cnf.num_vars; ++v) {
    voc.Intern(StrFormat("v%d", v));
  }
  for (const auto& cl : cnf.clauses) {
    std::vector<Var> heads, body;
    for (Lit l : cl) {
      if (l.positive()) {
        heads.push_back(l.var());
      } else {
        body.push_back(l.var());
      }
    }
    db.AddClause(Clause(std::move(heads), std::move(body), {}));
  }
  return db;
}

ReducedInstance ReduceUnsatToUniqueMinimalModel(const sat::Cnf& cnf) {
  ReducedInstance out;
  Vocabulary& voc = out.db.vocabulary();
  std::vector<Var> pos(static_cast<size_t>(cnf.num_vars));
  std::vector<Var> neg(static_cast<size_t>(cnf.num_vars));
  for (Var v = 0; v < cnf.num_vars; ++v) {
    pos[static_cast<size_t>(v)] = voc.Intern(StrFormat("x%d", v));
    neg[static_cast<size_t>(v)] = voc.Intern(StrFormat("x%d'", v));
  }
  out.w = voc.Intern("w");
  for (Var v = 0; v < cnf.num_vars; ++v) {
    Var xv = pos[static_cast<size_t>(v)];
    Var nv = neg[static_cast<size_t>(v)];
    out.db.AddClause(Clause::Fact({xv, nv, out.w}));
    out.db.AddClause(Clause({out.w}, {xv, nv}, {}));
  }
  for (const auto& cl : cnf.clauses) {
    std::vector<Var> heads{out.w};
    for (Lit l : cl) {
      heads.push_back(l.positive() ? pos[static_cast<size_t>(l.var())]
                                   : neg[static_cast<size_t>(l.var())]);
    }
    out.db.AddClause(Clause::Fact(std::move(heads)));
  }
  return out;
}

Result<Database> PositiveDbToNormalProgram(const Database& db) {
  if (db.HasNegation()) {
    return Status::FailedPrecondition(
        "PositiveDbToNormalProgram expects a database without negation");
  }
  Database out(db.vocabulary());
  for (const Clause& c : db.clauses()) {
    if (c.heads().size() <= 1) {
      out.AddClause(c);
      continue;
    }
    // a1 | ... | an :- body  ==>  a1 :- body, not a2, ..., not an
    // (classically the same clause).
    std::vector<Var> neg_body(c.heads().begin() + 1, c.heads().end());
    out.AddClause(Clause({c.heads()[0]}, c.pos_body(), std::move(neg_body)));
  }
  return out;
}

}  // namespace dd
