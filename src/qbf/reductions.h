// The paper's hardness proofs as executable instance translators.
//
// Each reduction comes with the exact correctness property the proof
// establishes; the test suite cross-validates every property against the
// QBF solvers and the brute-force reference on randomized instances — the
// lower-bound arguments of the paper are thereby "run" rather than merely
// cited.
//
//   * Theorem 3.1 (and its reuse for EGCWA/ECWA/CIRC, Thm 4.2/ICWA, PERF,
//     DSM literal inference): Σ₂ᵖ-hardness of "some minimal model contains
//     w", dually Π₂ᵖ-hardness of GCWA |= ¬w, for positive DDBs.
//   * Section 5.2: Σ₂ᵖ-hardness of disjunctive stable model existence.
//   * Table 2 / EGCWA column: NP-hardness of model existence with
//     integrity clauses (plain SAT embedding).
//   * Proposition 5.4: coNP-hardness of UMINSAT (unique minimal model).
//   * Lemma 5.5: transfer of UMINSAT to normal logic programs.
#ifndef DD_QBF_REDUCTIONS_H_
#define DD_QBF_REDUCTIONS_H_

#include "logic/database.h"
#include "qbf/qbf.h"
#include "sat/dimacs.h"

namespace dd {

/// A reduced database together with its distinguished query atom.
struct ReducedInstance {
  Database db;
  Var w = kInvalidVar;
};

/// Theorem 3.1 gadget. Given Φ = ∃X∀Yψ (DNF), builds a *positive* DDB T
/// (rules with bodies, no negation, no integrity clauses) and atom w with
///
///    Φ is valid  <=>  some minimal model of T contains w.
///
/// Construction: choice clauses x|x' and y|y' for every variable, rules
/// y :- w and y' :- w saturating the universal block under w, and a rule
/// w :- σ(t) for every DNF term t (σ maps positive literals to the atom,
/// negative ones to the primed complement atom).
///
/// A minimal model avoiding w picks one atom per pair, i.e. an assignment
/// (x,y) with ψ(x,y) false; the saturated model σ(x) ∪ allY ∪ {w} is
/// minimal exactly when no such y exists below it, i.e. when ∀y ψ(x,y).
ReducedInstance ReduceSigma2ToMinimalMembership(const QbfExistsForallDnf& q);

/// Dual form used for the Π₂ᵖ-hardness rows of Table 1: for Φ = ∀X∃Yφ
/// (CNF), builds T and w with
///
///    Φ is valid  <=>  GCWA(T) |= ¬w   (w false in all minimal models).
ReducedInstance ReducePi2ToGcwaLiteral(const QbfForallExistsCnf& q);

/// Section 5.2 gadget: adds the rule  w :- not w  to the Theorem 3.1
/// database, so that
///
///    Φ = ∃X∀Yψ is valid  <=>  the DNDB has a disjunctive stable model.
///
/// (Every stable model must contain w, and the candidates containing w are
/// stable exactly when they are minimal, reducing to Theorem 3.1.)
ReducedInstance ReduceSigma2ToDsmExistence(const QbfExistsForallDnf& q);

/// Embeds a CNF as a deductive database with integrity clauses (positive
/// literals become heads, negative ones positive body atoms). Since
/// EGCWA(DB) = MM(DB), the database has an EGCWA model iff the CNF is
/// satisfiable — the NP-hardness entry of Table 2's model-existence column.
Database CnfToDatabase(const sat::Cnf& cnf);

/// Proposition 5.4 gadget: a positive DDB D over complement pairs {x,x'}
/// plus a guard atom w such that
///
///    the CNF is unsatisfiable  <=>  D has a unique minimal model ({w}).
///
/// Clauses: x | x' | w per variable, c~ | w per CNF clause (c~ replaces ¬x
/// by x'), and w :- x, x' per variable (mixed pairs force w, so models
/// avoiding w are exactly the satisfying assignments).
ReducedInstance ReduceUnsatToUniqueMinimalModel(const sat::Cnf& cnf);

/// Lemma 5.5 realization: rewrites a *positive* database (such as the
/// Proposition 5.4 gadget) into a normal logic program — single-head rules
/// with negation, a1 :- body, not a2, ..., not an — with literally the same
/// classical models, hence the same (unique-)minimal-model answer.
/// Requires db.IsDeductive().
Result<Database> PositiveDbToNormalProgram(const Database& db);

}  // namespace dd

#endif  // DD_QBF_REDUCTIONS_H_
