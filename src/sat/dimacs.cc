#include "sat/dimacs.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace dd {
namespace sat {

Result<Cnf> ParseDimacs(std::string_view text) {
  Cnf cnf;
  std::vector<Lit> current;
  std::istringstream in{std::string(text)};
  std::string tok;
  bool in_header = false;
  while (in >> tok) {
    if (tok == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (tok == "p") {
      in_header = true;
      continue;
    }
    if (in_header && (tok == "cnf" || tok == "ddb")) continue;
    char* end = nullptr;
    long v = std::strtol(tok.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') {
      return Status::InvalidArgument("bad DIMACS token: " + tok);
    }
    if (in_header) {
      // First number of the header is the variable count; ignore the
      // clause count (we trust the clause list itself).
      cnf.num_vars = std::max(cnf.num_vars, static_cast<int>(v));
      std::string rest;
      std::getline(in, rest);
      in_header = false;
      continue;
    }
    if (v == 0) {
      cnf.clauses.push_back(std::move(current));
      current.clear();
    } else {
      Var var = static_cast<Var>(std::labs(v)) - 1;
      cnf.num_vars = std::max(cnf.num_vars, var + 1);
      current.push_back(Lit::Make(var, v > 0));
    }
  }
  if (!current.empty()) {
    return Status::InvalidArgument("clause not terminated by 0");
  }
  return cnf;
}

std::string ToDimacs(const Cnf& cnf) {
  std::string out = StrFormat("p cnf %d %d\n", cnf.num_vars,
                              static_cast<int>(cnf.clauses.size()));
  for (const auto& cl : cnf.clauses) {
    for (Lit l : cl) {
      out += std::to_string(l.positive() ? l.var() + 1 : -(l.var() + 1));
      out += " ";
    }
    out += "0\n";
  }
  return out;
}

}  // namespace sat
}  // namespace dd
