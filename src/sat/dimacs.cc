#include "sat/dimacs.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "util/string_util.h"

namespace dd {
namespace sat {

namespace {

// Hard cap on DIMACS variable indices and header counts. Malformed or
// hostile input ("p cnf 99999999999 1", a literal of 2^40, ...) must fail
// with a Status here, not drive downstream EnsureVars allocations to
// gigabytes or overflow the Var arithmetic.
constexpr long long kMaxDimacsVar = 20'000'000;

}  // namespace

Result<Cnf> ParseDimacs(std::string_view text) {
  Cnf cnf;
  std::vector<Lit> current;
  std::istringstream in{std::string(text)};
  std::string tok;
  bool in_header = false;
  while (in >> tok) {
    if (tok == "c") {
      std::string rest;
      std::getline(in, rest);
      continue;
    }
    if (tok == "p") {
      in_header = true;
      continue;
    }
    if (in_header && (tok == "cnf" || tok == "ddb")) continue;
    // strtoll (not strtol): `long` is 32-bit on some targets, and an
    // overflowed parse must be *detected*, never wrapped into a small var.
    errno = 0;
    char* end = nullptr;
    long long v = std::strtoll(tok.c_str(), &end, 10);
    if (end == nullptr || end == tok.c_str() || *end != '\0') {
      return Status::InvalidArgument("bad DIMACS token: " + tok);
    }
    if (errno == ERANGE || v > kMaxDimacsVar || v < -kMaxDimacsVar) {
      return Status::InvalidArgument("DIMACS literal out of range: " + tok);
    }
    if (in_header) {
      // First number of the header is the variable count; ignore the
      // clause count (we trust the clause list itself).
      if (v < 0) {
        return Status::InvalidArgument("negative DIMACS variable count: " +
                                       tok);
      }
      cnf.num_vars = std::max(cnf.num_vars, static_cast<int>(v));
      std::string rest;
      std::getline(in, rest);
      in_header = false;
      continue;
    }
    if (v == 0) {
      cnf.clauses.push_back(std::move(current));
      current.clear();
    } else {
      Var var = static_cast<Var>(v > 0 ? v : -v) - 1;
      cnf.num_vars = std::max(cnf.num_vars, var + 1);
      current.push_back(Lit::Make(var, v > 0));
    }
  }
  if (!current.empty()) {
    return Status::InvalidArgument("clause not terminated by 0");
  }
  return cnf;
}

std::string ToDimacs(const Cnf& cnf) {
  std::string out = StrFormat("p cnf %d %d\n", cnf.num_vars,
                              static_cast<int>(cnf.clauses.size()));
  for (const auto& cl : cnf.clauses) {
    for (Lit l : cl) {
      out += std::to_string(l.positive() ? l.var() + 1 : -(l.var() + 1));
      out += " ";
    }
    out += "0\n";
  }
  return out;
}

}  // namespace sat
}  // namespace dd
