// DIMACS CNF import/export, used by tests and the bench tooling.
#ifndef DD_SAT_DIMACS_H_
#define DD_SAT_DIMACS_H_

#include <string>
#include <string_view>
#include <vector>

#include "logic/types.h"
#include "util/status.h"

namespace dd {
namespace sat {

/// A raw CNF: number of variables plus clause list.
struct Cnf {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parses DIMACS text ("p cnf V C" header optional; 0-terminated clauses).
Result<Cnf> ParseDimacs(std::string_view text);

/// Renders a CNF in DIMACS format.
std::string ToDimacs(const Cnf& cnf);

}  // namespace sat
}  // namespace dd

#endif  // DD_SAT_DIMACS_H_
