#include "sat/fault.h"

#include <cstdlib>

namespace dd {
namespace sat {

namespace {
int64_t EnvInt64(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return 0;
  char* end = nullptr;
  long long parsed = std::strtoll(v, &end, 10);
  if (end == v || parsed < 0) return 0;
  return static_cast<int64_t>(parsed);
}
}  // namespace

FaultInjector::FaultInjector() {
  FaultPlan env;
  env.unknown_at = EnvInt64("DD_FAULT_UNKNOWN_AT");
  env.exhaust_after = EnvInt64("DD_FAULT_EXHAUST_AFTER");
  if (env.enabled()) SetPlan(env);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();  // never destroyed
  return *injector;
}

void FaultInjector::SetPlan(const FaultPlan& plan) {
  unknown_at_.store(plan.unknown_at, std::memory_order_relaxed);
  exhaust_after_.store(plan.exhaust_after, std::memory_order_relaxed);
  solves_.store(0, std::memory_order_relaxed);
  // Written last: once enabled_ is seen, the knobs are already in place.
  enabled_.store(plan.enabled(), std::memory_order_release);
}

FaultPlan FaultInjector::plan() const {
  FaultPlan p;
  p.unknown_at = unknown_at_.load(std::memory_order_relaxed);
  p.exhaust_after = exhaust_after_.load(std::memory_order_relaxed);
  return p;
}

bool FaultInjector::OnSolve() {
  if (!enabled_.load(std::memory_order_acquire)) return false;
  int64_t k = solves_.fetch_add(1, std::memory_order_relaxed) + 1;
  int64_t at = unknown_at_.load(std::memory_order_relaxed);
  if (at > 0 && k == at) return true;
  int64_t after = exhaust_after_.load(std::memory_order_relaxed);
  if (after > 0 && k > after) return true;
  return false;
}

}  // namespace sat
}  // namespace dd
