// Oracle fault injection: deterministically force sat::Solver::Solve to
// report kUnknown at chosen points, to prove that every layer above the
// oracle degrades to a clean Status / Unknown answer — never a crash,
// never a wrong yes/no.
//
// The injector is a process-global singleton consulted at the top of every
// Solve(). Two knobs, settable from the environment or from tests:
//
//   DD_FAULT_UNKNOWN_AT=n     the n-th Solve() in the process (1-based)
//                             returns kUnknown; all others run normally.
//   DD_FAULT_EXHAUST_AFTER=n  every Solve() after the first n returns
//                             kUnknown, simulating a budget that ran dry
//                             mid-query and stays dry.
//
// Tests drive the injector through ScopedFaultPlan, which saves and
// restores the previous configuration (including one installed from the
// environment), so a test can compute a fault-free reference answer and
// then replay the same query under a fault plan. The counters are atomics:
// the injector is safe to consult from parallel solver threads, and a
// given plan trips deterministically on the n-th global solve.
//
// sat::FaultySolver wraps the same mechanism as an object for call sites
// that want a locally faulty solver without touching global state.
#ifndef DD_SAT_FAULT_H_
#define DD_SAT_FAULT_H_

#include <atomic>
#include <cstdint>

#include "sat/solver.h"

namespace dd {
namespace sat {

/// A fault plan: which global solve indices must report kUnknown.
/// Values <= 0 disable the corresponding knob.
struct FaultPlan {
  int64_t unknown_at = 0;      ///< 1-based index of the one faulty solve
  int64_t exhaust_after = 0;   ///< all solves after this many are faulty
  bool enabled() const { return unknown_at > 0 || exhaust_after > 0; }
};

/// Process-global injector. Thread-safe. Reads DD_FAULT_UNKNOWN_AT /
/// DD_FAULT_EXHAUST_AFTER once, on first access.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Called by Solver::Solve on entry. Returns true if this solve must
  /// report kUnknown. Advances the global solve counter only while a plan
  /// is enabled, so unfaulted runs pay a single relaxed load.
  bool OnSolve();

  /// Installs a new plan and resets the solve counter.
  void SetPlan(const FaultPlan& plan);
  FaultPlan plan() const;

  /// Solves observed since the last SetPlan (test introspection).
  int64_t solve_count() const {
    return solves_.load(std::memory_order_relaxed);
  }

 private:
  FaultInjector();

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> unknown_at_{0};
  std::atomic<int64_t> exhaust_after_{0};
  std::atomic<int64_t> solves_{0};
};

/// RAII plan installer for tests: saves the current plan (from a previous
/// scope or the environment), installs `plan`, restores on destruction.
/// Pass a default-constructed plan to run a fault-free reference section
/// even when DD_FAULT_* is set in the environment.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan)
      : saved_(FaultInjector::Global().plan()) {
    FaultInjector::Global().SetPlan(plan);
  }
  ~ScopedFaultPlan() { FaultInjector::Global().SetPlan(saved_); }

  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

 private:
  FaultPlan saved_;
};

/// A Solver whose Solve() can be forced to report kUnknown at the n-th
/// call on *this* object, independent of the global injector. Useful for
/// unit-testing a single call site's kUnknown handling in isolation.
class FaultySolver : public Solver {
 public:
  FaultySolver() = default;

  /// The n-th Solve() on this object (1-based) reports kUnknown.
  void FailAt(int64_t n) { fail_at_ = n; }
  /// Every Solve() after the first n reports kUnknown.
  void ExhaustAfter(int64_t n) { exhaust_after_ = n; }

  SolveResult Solve(const std::vector<Lit>& assumptions = {}) {
    int64_t k = ++local_solves_;
    if ((fail_at_ > 0 && k == fail_at_) ||
        (exhaust_after_ > 0 && k > exhaust_after_)) {
      return SolveResult::kUnknown;
    }
    return Solver::Solve(assumptions);
  }

  int64_t local_solves() const { return local_solves_; }

 private:
  int64_t fail_at_ = 0;
  int64_t exhaust_after_ = 0;
  int64_t local_solves_ = 0;
};

}  // namespace sat
}  // namespace dd

#endif  // DD_SAT_FAULT_H_
