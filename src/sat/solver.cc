#include "sat/solver.h"

#include <algorithm>
#include <cmath>

#include "sat/fault.h"
#include "util/macros.h"

namespace dd {
namespace sat {

namespace {

// Luby restart sequence: 1,1,2,1,1,2,4,...
int64_t Luby(int64_t i) {
  // Find the finite subsequence that contains index i, then index into it.
  int64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return int64_t{1} << seq;
}

constexpr double kVarDecay = 0.95;
constexpr double kClauseDecay = 0.999;
constexpr double kRescaleLimit = 1e100;
constexpr int64_t kRestartBase = 100;

}  // namespace

Solver::Solver() = default;

void Solver::EnsureVars(int n) {
  while (num_vars() < n) {
    assign_.push_back(kUndef);
    level_.push_back(0);
    reason_.push_back(-1);
    polarity_.push_back(default_polarity_);
    activity_.push_back(0.0);
    heap_pos_.push_back(-1);
    watches_.emplace_back();
    watches_.emplace_back();
    HeapInsert(num_vars() - 1);
  }
}

void Solver::AddClause(std::vector<Lit> lits) {
  AddClause(lits.data(), lits.size());
}

void Solver::AddClause(const Lit* lits, size_t n) {
  DD_CHECK(DecisionLevel() == 0);
  if (!ok_) return;
  // Copy into the reusable scratch buffer: bulk load paths (session base
  // loads, guarded-context clauses) then pay no per-clause allocation.
  add_buf_.assign(lits, lits + n);
  for (Lit l : add_buf_) EnsureVars(l.var() + 1);

  // Simplify against the level-0 assignment; drop tautologies/duplicates.
  std::sort(add_buf_.begin(), add_buf_.end());
  std::vector<Lit> out;
  Lit prev;
  for (Lit l : add_buf_) {
    if (l == prev) continue;
    if (prev.valid() && l == ~prev) return;  // tautology
    uint8_t v = ValueLit(l);
    if (v == kTrue) return;  // satisfied at level 0
    if (v == kFalse) {
      prev = l;
      continue;  // falsified at level 0: drop literal
    }
    out.push_back(l);
    prev = l;
  }

  if (out.empty()) {
    ok_ = false;
    return;
  }
  if (out.size() == 1) {
    Enqueue(out[0], -1);
    if (Propagate() != -1) ok_ = false;
    return;
  }
  ClauseData cd;
  cd.lits = std::move(out);
  cd.learnt = false;
  AttachClause(std::move(cd));
}

int Solver::AttachClause(ClauseData cd) {
  int ci = static_cast<int>(clauses_.size());
  DD_DCHECK(cd.lits.size() >= 2);
  watches_[static_cast<size_t>((~cd.lits[0]).code())].push_back(
      {ci, cd.lits[1]});
  watches_[static_cast<size_t>((~cd.lits[1]).code())].push_back(
      {ci, cd.lits[0]});
  clauses_.push_back(std::move(cd));
  return ci;
}

void Solver::Enqueue(Lit l, int reason) {
  DD_DCHECK(ValueLit(l) == kUndef);
  assign_[static_cast<size_t>(l.var())] = l.positive() ? kTrue : kFalse;
  level_[static_cast<size_t>(l.var())] = DecisionLevel();
  reason_[static_cast<size_t>(l.var())] = reason;
  trail_.push_back(l);
}

int Solver::Propagate() {
  int confl = -1;
  while (qhead_ < trail_.size()) {
    Lit p = trail_[qhead_++];  // p became true; clauses watching ~p wake up
    ++stats_.propagations;
    auto& ws = watches_[static_cast<size_t>(p.code())];
    size_t i = 0, j = 0;
    while (i < ws.size()) {
      Watcher w = ws[i];
      if (ValueLit(w.blocker) == kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      ClauseData& c = clauses_[static_cast<size_t>(w.clause)];
      auto& lits = c.lits;
      // Normalize so the false watched literal ~p sits at position 1.
      Lit false_lit = ~p;
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      DD_DCHECK(lits[1] == false_lit);
      ++i;

      Lit first = lits[0];
      if (first != w.blocker && ValueLit(first) == kTrue) {
        ws[j++] = {w.clause, first};
        continue;
      }

      // Look for a new literal to watch.
      bool moved = false;
      for (size_t k = 2; k < lits.size(); ++k) {
        if (ValueLit(lits[k]) != kFalse) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<size_t>((~lits[1]).code())].push_back(
              {w.clause, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;

      // Clause is unit or conflicting.
      ws[j++] = {w.clause, first};
      if (ValueLit(first) == kFalse) {
        confl = w.clause;
        qhead_ = trail_.size();
        // Copy the remaining watchers before bailing out.
        while (i < ws.size()) ws[j++] = ws[i++];
        break;
      }
      Enqueue(first, w.clause);
    }
    ws.resize(j);
    if (confl != -1) break;
  }
  return confl;
}

void Solver::BumpVar(Var v) {
  activity_[static_cast<size_t>(v)] += var_inc_;
  if (activity_[static_cast<size_t>(v)] > kRescaleLimit) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[static_cast<size_t>(v)] >= 0)
    HeapSiftUp(heap_pos_[static_cast<size_t>(v)]);
}

void Solver::BumpClause(int ci) {
  ClauseData& c = clauses_[static_cast<size_t>(ci)];
  c.activity += cla_inc_;
  if (c.activity > kRescaleLimit) {
    for (auto& cl : clauses_)
      if (cl.learnt) cl.activity *= 1e-100;
    cla_inc_ *= 1e-100;
  }
}

void Solver::DecayActivities() {
  var_inc_ /= kVarDecay;
  cla_inc_ /= kClauseDecay;
}

void Solver::Analyze(int confl, std::vector<Lit>* learnt, int* out_btlevel) {
  learnt->clear();
  learnt->push_back(Lit());  // placeholder for the asserting literal

  int path_count = 0;
  Lit p;  // invalid
  int index = static_cast<int>(trail_.size()) - 1;

  do {
    DD_DCHECK(confl != -1);
    ClauseData& c = clauses_[static_cast<size_t>(confl)];
    if (c.learnt) BumpClause(confl);
    // Skip lits[0] on non-first iterations: it is the literal p itself.
    for (size_t k = p.valid() ? 1 : 0; k < c.lits.size(); ++k) {
      Lit q = c.lits[k];
      Var v = q.var();
      if (!seen_[static_cast<size_t>(v)] && level_[static_cast<size_t>(v)] > 0) {
        seen_[static_cast<size_t>(v)] = 1;
        BumpVar(v);
        if (level_[static_cast<size_t>(v)] >= DecisionLevel()) {
          ++path_count;
        } else {
          learnt->push_back(q);
        }
      }
    }
    // Select the next literal on the trail to resolve on.
    while (!seen_[static_cast<size_t>(trail_[static_cast<size_t>(index)].var())])
      --index;
    p = trail_[static_cast<size_t>(index)];
    --index;
    confl = reason_[static_cast<size_t>(p.var())];
    seen_[static_cast<size_t>(p.var())] = 0;
    --path_count;
  } while (path_count > 0);
  (*learnt)[0] = ~p;

  // Local clause minimization (MiniSat's "deep" variant).
  analyze_toclear_.assign(learnt->begin(), learnt->end());
  for (Lit l : *learnt) seen_[static_cast<size_t>(l.var())] = 1;
  uint32_t abstract_levels = 0;
  for (size_t k = 1; k < learnt->size(); ++k) {
    abstract_levels |=
        1u << (level_[static_cast<size_t>((*learnt)[k].var())] & 31);
  }
  size_t out = 1;
  for (size_t k = 1; k < learnt->size(); ++k) {
    Lit l = (*learnt)[k];
    if (reason_[static_cast<size_t>(l.var())] == -1 ||
        !LitRedundant(l, abstract_levels)) {
      (*learnt)[out++] = l;
    }
  }
  learnt->resize(out);
  for (Lit l : analyze_toclear_) seen_[static_cast<size_t>(l.var())] = 0;

  // Backtrack level: highest level among the non-asserting literals.
  if (learnt->size() == 1) {
    *out_btlevel = 0;
  } else {
    size_t max_i = 1;
    for (size_t k = 2; k < learnt->size(); ++k) {
      if (level_[static_cast<size_t>((*learnt)[k].var())] >
          level_[static_cast<size_t>((*learnt)[max_i].var())])
        max_i = k;
    }
    std::swap((*learnt)[1], (*learnt)[max_i]);
    *out_btlevel = level_[static_cast<size_t>((*learnt)[1].var())];
  }
}

bool Solver::LitRedundant(Lit l, uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    int r = reason_[static_cast<size_t>(q.var())];
    DD_DCHECK(r != -1);
    ClauseData& c = clauses_[static_cast<size_t>(r)];
    for (size_t k = 1; k < c.lits.size(); ++k) {
      Lit p = c.lits[k];
      Var v = p.var();
      if (seen_[static_cast<size_t>(v)] || level_[static_cast<size_t>(v)] == 0)
        continue;
      if (reason_[static_cast<size_t>(v)] == -1 ||
          (1u << (level_[static_cast<size_t>(v)] & 31) & abstract_levels) == 0) {
        // Not removable: undo the marks added by this check.
        for (size_t j = top; j < analyze_toclear_.size(); ++j)
          seen_[static_cast<size_t>(analyze_toclear_[j].var())] = 0;
        analyze_toclear_.resize(top);
        return false;
      }
      seen_[static_cast<size_t>(v)] = 1;
      analyze_stack_.push_back(p);
      analyze_toclear_.push_back(p);
    }
  }
  return true;
}

void Solver::AnalyzeFinal(Lit p) {
  // Computes the subset of assumptions responsible for forcing ~p.
  conflict_.clear();
  conflict_.push_back(p);
  if (DecisionLevel() == 0) return;
  seen_[static_cast<size_t>(p.var())] = 1;
  for (int i = static_cast<int>(trail_.size()) - 1;
       i >= trail_lim_[0]; --i) {
    Var v = trail_[static_cast<size_t>(i)].var();
    if (!seen_[static_cast<size_t>(v)]) continue;
    int r = reason_[static_cast<size_t>(v)];
    if (r == -1) {
      // A decision inside the assumption prefix: it is an assumption.
      conflict_.push_back(trail_[static_cast<size_t>(i)]);
    } else {
      ClauseData& c = clauses_[static_cast<size_t>(r)];
      for (size_t k = 1; k < c.lits.size(); ++k) {
        Var u = c.lits[k].var();
        if (level_[static_cast<size_t>(u)] > 0)
          seen_[static_cast<size_t>(u)] = 1;
      }
    }
    seen_[static_cast<size_t>(v)] = 0;
  }
  seen_[static_cast<size_t>(p.var())] = 0;
}

void Solver::CancelUntil(int level) {
  if (DecisionLevel() <= level) return;
  for (int i = static_cast<int>(trail_.size()) - 1;
       i >= trail_lim_[static_cast<size_t>(level)]; --i) {
    Var v = trail_[static_cast<size_t>(i)].var();
    polarity_[static_cast<size_t>(v)] = assign_[static_cast<size_t>(v)] == kTrue;
    assign_[static_cast<size_t>(v)] = kUndef;
    reason_[static_cast<size_t>(v)] = -1;
    if (heap_pos_[static_cast<size_t>(v)] < 0) HeapInsert(v);
  }
  trail_.resize(static_cast<size_t>(trail_lim_[static_cast<size_t>(level)]));
  trail_lim_.resize(static_cast<size_t>(level));
  qhead_ = trail_.size();
}

Lit Solver::PickBranchLit() {
  while (!HeapEmpty()) {
    Var v = HeapPop();
    if (assign_[static_cast<size_t>(v)] == kUndef) {
      return Lit::Make(v, polarity_[static_cast<size_t>(v)]);
    }
  }
  return Lit();
}

void Solver::ReduceDb() {
  // Keep the most active half of the learnt clauses (and all locked ones).
  std::vector<int> learnts;
  for (int ci = 0; ci < static_cast<int>(clauses_.size()); ++ci) {
    const ClauseData& c = clauses_[static_cast<size_t>(ci)];
    if (!c.learnt || c.removed) continue;
    Var v0 = c.lits[0].var();
    bool locked = assign_[static_cast<size_t>(v0)] != kUndef &&
                  reason_[static_cast<size_t>(v0)] == ci;
    if (!locked && c.lits.size() > 2) learnts.push_back(ci);
  }
  std::sort(learnts.begin(), learnts.end(), [this](int a, int b) {
    return clauses_[static_cast<size_t>(a)].activity <
           clauses_[static_cast<size_t>(b)].activity;
  });
  size_t to_remove = learnts.size() / 2;
  for (size_t i = 0; i < to_remove; ++i) {
    clauses_[static_cast<size_t>(learnts[i])].removed = true;
    ++stats_.removed_clauses;
    --num_learnts_;
  }
  if (to_remove > 0) ReattachAll();
}

void Solver::DetachAll() {
  for (auto& w : watches_) w.clear();
}

void Solver::ReattachAll() {
  DetachAll();
  for (int ci = 0; ci < static_cast<int>(clauses_.size()); ++ci) {
    ClauseData& c = clauses_[static_cast<size_t>(ci)];
    if (c.removed) continue;
    watches_[static_cast<size_t>((~c.lits[0]).code())].push_back(
        {ci, c.lits[1]});
    watches_[static_cast<size_t>((~c.lits[1]).code())].push_back(
        {ci, c.lits[0]});
  }
}

SolveResult Solver::Solve(const std::vector<Lit>& assumptions) {
  ++stats_.solve_calls;
  conflict_.clear();
  model_.clear();
  // Fault injection first, so the global solve numbering is uniform across
  // trivially-decided and fully-searched calls alike.
  if (FaultInjector::Global().OnSolve()) return SolveResult::kUnknown;
  if (budget_ != nullptr &&
      (!budget_->ConsumeOracleCall() || budget_->Exhausted())) {
    return SolveResult::kUnknown;
  }
  if (!ok_) return SolveResult::kUnsat;
  for (Lit a : assumptions) EnsureVars(a.var() + 1);
  seen_.assign(static_cast<size_t>(num_vars()), 0);

  CancelUntil(0);
  if (Propagate() != -1) {
    ok_ = false;
    return SolveResult::kUnsat;
  }

  int64_t conflicts_left = conflict_budget_;
  if (max_learnts_ <= 0)
    max_learnts_ = std::max<double>(1000.0, clauses_.size() / 3.0);

  int64_t curr_restarts = 0;
  int64_t budget_ticks = 0;  // decision/propagation rounds since entry
  std::vector<Lit> learnt;

  for (;;) {
    int64_t restart_limit = kRestartBase * Luby(curr_restarts);
    int64_t conflicts_this_restart = 0;

    // ---- search loop ----
    for (;;) {
      // Deadline poll on propagation/decision ticks: catches long satisfiable
      // searches that rarely conflict. Every 1024 rounds keeps the check off
      // the hot path.
      if (budget_ != nullptr && ((++budget_ticks & 1023) == 0) &&
          budget_->Exhausted()) {
        CancelUntil(0);
        return SolveResult::kUnknown;
      }
      int confl = Propagate();
      if (confl != -1) {
        ++stats_.conflicts;
        ++conflicts_this_restart;
        if (conflicts_left > 0) --conflicts_left;
        // Global budget: one unit per conflict, deadline polled every 64.
        if (budget_ != nullptr &&
            (!budget_->ConsumeConflicts(1) ||
             ((stats_.conflicts & 63) == 0 && budget_->Exhausted()))) {
          CancelUntil(0);
          return SolveResult::kUnknown;
        }
        if (DecisionLevel() == 0) {
          ok_ = false;
          CancelUntil(0);
          return SolveResult::kUnsat;
        }
        int bt = 0;
        Analyze(confl, &learnt, &bt);
        CancelUntil(bt);
        if (learnt.size() == 1) {
          Enqueue(learnt[0], -1);
        } else {
          ClauseData cd;
          cd.lits = learnt;
          cd.learnt = true;
          cd.activity = cla_inc_;
          int ci = AttachClause(std::move(cd));
          ++stats_.learnt_clauses;
          ++num_learnts_;
          Enqueue(learnt[0], ci);
        }
        DecayActivities();
        if (conflict_budget_ >= 0 && conflicts_left == 0) {
          CancelUntil(0);
          return SolveResult::kUnknown;
        }
        continue;
      }

      if (conflicts_this_restart >= restart_limit) {
        ++stats_.restarts;
        ++curr_restarts;
        CancelUntil(0);
        break;  // restart
      }

      if (num_learnts_ > static_cast<int64_t>(max_learnts_) +
                             static_cast<int64_t>(trail_.size())) {
        ReduceDb();
        max_learnts_ *= 1.1;
      }

      // Extend with the next assumption, or decide.
      Lit next;
      while (DecisionLevel() < static_cast<int>(assumptions.size())) {
        Lit p = assumptions[static_cast<size_t>(DecisionLevel())];
        uint8_t v = ValueLit(p);
        if (v == kTrue) {
          NewDecisionLevel();  // dummy level keeps indices aligned
        } else if (v == kFalse) {
          AnalyzeFinal(p);
          CancelUntil(0);
          return SolveResult::kUnsat;
        } else {
          next = p;
          break;
        }
      }
      if (!next.valid()) {
        ++stats_.decisions;
        next = PickBranchLit();
        if (!next.valid()) {
          // All variables assigned: a model.
          model_.assign(assign_.begin(), assign_.end());
          CancelUntil(0);
          return SolveResult::kSat;
        }
      }
      NewDecisionLevel();
      Enqueue(next, -1);
    }
  }
}

Interpretation Solver::Model(int n) const {
  Interpretation out(n);
  for (Var v = 0; v < n && v < static_cast<int>(model_.size()); ++v) {
    if (model_[static_cast<size_t>(v)] == kTrue) out.Insert(v);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Activity heap.
// ---------------------------------------------------------------------------

void Solver::HeapInsert(Var v) {
  DD_DCHECK(heap_pos_[static_cast<size_t>(v)] < 0);
  heap_pos_[static_cast<size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  HeapSiftUp(static_cast<int>(heap_.size()) - 1);
}

Var Solver::HeapPop() {
  DD_DCHECK(!heap_.empty());
  Var top = heap_[0];
  heap_pos_[static_cast<size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[static_cast<size_t>(heap_[0])] = 0;
    HeapSiftDown(0);
  }
  return top;
}

void Solver::HeapSiftUp(int i) {
  Var v = heap_[static_cast<size_t>(i)];
  double a = activity_[static_cast<size_t>(v)];
  while (i > 0) {
    int parent = (i - 1) / 2;
    Var pv = heap_[static_cast<size_t>(parent)];
    if (activity_[static_cast<size_t>(pv)] >= a) break;
    heap_[static_cast<size_t>(i)] = pv;
    heap_pos_[static_cast<size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_pos_[static_cast<size_t>(v)] = i;
}

void Solver::HeapSiftDown(int i) {
  Var v = heap_[static_cast<size_t>(i)];
  double a = activity_[static_cast<size_t>(v)];
  int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<size_t>(heap_[static_cast<size_t>(child + 1)])] >
            activity_[static_cast<size_t>(heap_[static_cast<size_t>(child)])])
      ++child;
    Var cv = heap_[static_cast<size_t>(child)];
    if (a >= activity_[static_cast<size_t>(cv)]) break;
    heap_[static_cast<size_t>(i)] = cv;
    heap_pos_[static_cast<size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<size_t>(i)] = v;
  heap_pos_[static_cast<size_t>(v)] = i;
}

void Solver::HeapUpdate(Var v) {
  int p = heap_pos_[static_cast<size_t>(v)];
  if (p >= 0) {
    HeapSiftUp(p);
    HeapSiftDown(heap_pos_[static_cast<size_t>(v)]);
  }
}

}  // namespace sat
}  // namespace dd
