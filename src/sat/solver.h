// A from-scratch CDCL SAT solver: the "NP oracle" that every membership
// algorithm in the paper is built on.
//
// Features: two-literal watching, VSIDS-style activity with a binary heap,
// phase saving, first-UIP conflict analysis with local clause minimization,
// Luby restarts, activity-driven learnt-clause reduction, incremental
// solving under assumptions with failed-assumption extraction.
//
// The solver counts its invocations and conflicts; the bench harness uses
// these counters as the observable correlate of the paper's oracle-based
// complexity bounds.
#ifndef DD_SAT_SOLVER_H_
#define DD_SAT_SOLVER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "logic/interpretation.h"
#include "logic/types.h"
#include "util/budget.h"

namespace dd {
namespace sat {

/// Outcome of a Solve() call.
enum class SolveResult {
  kSat,
  kUnsat,
  kUnknown,  ///< conflict budget exhausted
};

/// Running counters, cumulative over the life of the solver.
struct SolverStats {
  int64_t solve_calls = 0;
  int64_t decisions = 0;
  int64_t propagations = 0;
  int64_t conflicts = 0;
  int64_t restarts = 0;
  int64_t learnt_clauses = 0;
  int64_t removed_clauses = 0;
};

/// Incremental CDCL solver.
///
/// Variables are the same dense Vars as the logic layer; callers must
/// EnsureVars() (or AddClause, which grows the variable range implicitly)
/// before referencing a variable.
class Solver {
 public:
  Solver();

  /// Grows the variable range to at least `n` variables.
  void EnsureVars(int n);

  int num_vars() const { return static_cast<int>(assign_.size()); }

  /// Adds a clause (empty clause makes the instance trivially UNSAT).
  /// Tautologies are dropped; duplicate literals are merged.
  void AddClause(std::vector<Lit> lits);

  /// Span-style overload for hot load paths: copies the literals into a
  /// reusable internal buffer, so bulk loaders (sessions re-adding a whole
  /// database CNF, guarded-context clause injection) do not allocate one
  /// vector per clause.
  void AddClause(const Lit* lits, size_t n);

  /// Convenience for unit/binary/ternary clauses.
  void AddUnit(Lit a) { AddClause({a}); }
  void AddBinary(Lit a, Lit b) { AddClause({a, b}); }
  void AddTernary(Lit a, Lit b, Lit c) { AddClause({a, b, c}); }

  /// Decides satisfiability under the given assumptions.
  SolveResult Solve(const std::vector<Lit>& assumptions = {});

  /// After kSat: the satisfying assignment restricted to [0, n) vars.
  /// Unassigned variables (possible when clauses never mention them) are
  /// reported false, which is the preferred polarity for minimal-model work.
  Interpretation Model(int n) const;
  Interpretation Model() const { return Model(num_vars()); }

  /// After kUnsat under assumptions: a subset of the assumptions whose
  /// conjunction is already inconsistent with the clauses (the "final
  /// conflict"). Empty if the clause set itself is UNSAT.
  const std::vector<Lit>& FailedAssumptions() const { return conflict_; }

  /// Limits the number of conflicts a single Solve() may spend
  /// (<0 = unlimited). On exhaustion Solve returns kUnknown.
  void SetConflictBudget(int64_t budget) { conflict_budget_ = budget; }

  /// Attaches a shared query budget (nullptr detaches). While attached,
  /// Solve() consumes one oracle call per entry and one unit of the global
  /// conflict budget per conflict, and polls the wall-clock deadline on
  /// conflict/decision ticks; any exhaustion makes Solve return kUnknown
  /// (never a wrong verdict). Orthogonal to SetConflictBudget, which stays
  /// a per-call limit.
  void SetBudget(std::shared_ptr<Budget> budget) {
    budget_ = std::move(budget);
  }
  const std::shared_ptr<Budget>& budget() const { return budget_; }

  /// Sets the default polarity used when a variable is first decided
  /// (false = prefer setting variables false; good for minimization work).
  void SetDefaultPolarity(bool value) { default_polarity_ = value; }

  const SolverStats& stats() const { return stats_; }

 private:
  // Assignment lattice values.
  enum : uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

  struct ClauseData {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool removed = false;
  };

  struct Watcher {
    int clause;
    Lit blocker;
  };

  uint8_t ValueLit(Lit l) const {
    uint8_t v = assign_[static_cast<size_t>(l.var())];
    if (v == kUndef) return kUndef;
    return (v == kTrue) == l.positive() ? kTrue : kFalse;
  }

  void Enqueue(Lit l, int reason);
  int Propagate();  // returns conflicting clause index or -1
  Lit PickBranchLit();
  void Analyze(int confl, std::vector<Lit>* learnt, int* out_btlevel);
  bool LitRedundant(Lit l, uint32_t abstract_levels);
  void AnalyzeFinal(Lit p);
  void CancelUntil(int level);
  void NewDecisionLevel() { trail_lim_.push_back(static_cast<int>(trail_.size())); }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  int AttachClause(ClauseData cd);
  void DetachAll();
  void ReattachAll();
  void ReduceDb();
  void BumpVar(Var v);
  void BumpClause(int ci);
  void DecayActivities();

  // Heap keyed by var activity.
  void HeapInsert(Var v);
  void HeapUpdate(Var v);
  Var HeapPop();
  bool HeapEmpty() const { return heap_.empty(); }
  void HeapSiftUp(int i);
  void HeapSiftDown(int i);

  std::vector<ClauseData> clauses_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by lit code
  std::vector<uint8_t> assign_;                // per var
  std::vector<int> level_;                     // per var
  std::vector<int> reason_;                    // per var, clause idx or -1
  std::vector<bool> polarity_;                 // saved phase per var
  std::vector<double> activity_;               // per var
  std::vector<int> heap_pos_;                  // per var, -1 if absent
  std::vector<Var> heap_;

  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t qhead_ = 0;

  std::vector<Lit> add_buf_;    // reusable AddClause scratch
  std::vector<Lit> conflict_;   // failed assumptions
  std::vector<uint8_t> seen_;   // per var scratch for Analyze
  std::vector<Lit> analyze_toclear_;
  std::vector<Lit> analyze_stack_;

  std::vector<uint8_t> model_;  // snapshot of the last satisfying assignment

  bool ok_ = true;  // false once an empty clause is derived at level 0
  int64_t num_learnts_ = 0;
  bool default_polarity_ = false;
  double var_inc_ = 1.0;
  double cla_inc_ = 1.0;
  int64_t conflict_budget_ = -1;
  double max_learnts_ = 0.0;
  std::shared_ptr<Budget> budget_;  // shared query budget (may be null)

  SolverStats stats_;
};

}  // namespace sat
}  // namespace dd

#endif  // DD_SAT_SOLVER_H_
