#include "semantics/ccwa.h"

#include "util/macros.h"

namespace dd {

CcwaSemantics::CcwaSemantics(const Database& db, Partition pqz,
                             const SemanticsOptions& opts)
    : ClosedWorldSemantics(db, opts), pqz_(std::move(pqz)) {
  DD_CHECK(pqz_.Validate().ok());
  DD_CHECK(pqz_.num_vars() == db.num_vars());
}

Result<bool> CcwaSemantics::HasModel() {
  // Every <P;Z>-minimal model satisfies the augmentation, so CCWA(DB) is
  // nonempty exactly when DB is satisfiable.
  if (db().IsPositive()) return true;
  bool has = engine()->HasModel();
  if (engine()->interrupted()) return engine()->interrupt_status();
  return has;
}

Result<bool> CcwaSemantics::InfersLiteral(Lit l) {
  if (l.negative() && pqz_.p.Contains(l.var())) {
    bool exists = engine()->ExistsMinimalModelWith(~l, pqz_);
    if (engine()->interrupted()) return engine()->interrupt_status();
    return !exists;
  }
  return InfersFormula(FormulaNode::MakeLit(l));
}

Result<CountingInferenceResult> CcwaSemantics::InfersFormulaViaCounting(
    const Formula& f) {
  return CountingInference(engine(), pqz_, f);
}

Result<Interpretation> CcwaSemantics::ComputeNegatedAtoms() {
  Interpretation free = engine()->FreeAtoms(pqz_);
  if (engine()->interrupted()) return engine()->interrupt_status();
  Interpretation negs(db().num_vars());
  for (Var v = 0; v < db().num_vars(); ++v) {
    if (pqz_.p.Contains(v) && !free.Contains(v)) negs.Insert(v);
  }
  return negs;
}

}  // namespace dd
