// Careful Closed World Assumption (Gelfond & Przymusinska 86), Section 3.1.
//
// For a partition <P;Q;Z>, CCWA adds ¬x for every x ∈ P false in all
// <P;Z>-minimal models:
//
//   CCWA(DB) = M( DB ∪ {¬x : x ∈ P, MM(DB;P;Z) |= ¬x} )
//
// GCWA is the special case Q = Z = ∅. Complexity: literal and formula
// inference Π₂ᵖ-hard and in PᶺΣ₂ᵖ[O(log n)]; model existence as GCWA.
#ifndef DD_SEMANTICS_CCWA_H_
#define DD_SEMANTICS_CCWA_H_

#include "minimal/pqz.h"
#include "semantics/closed_world_base.h"
#include "semantics/counting_inference.h"

namespace dd {

class CcwaSemantics : public ClosedWorldSemantics {
 public:
  CcwaSemantics(const Database& db, Partition pqz,
                const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kCcwa; }

  const Partition& partition() const { return pqz_; }

  /// As GCWA: consistency equals classical satisfiability.
  Result<bool> HasModel() override;

  /// Negative literals over P short-circuit through the free-atom query.
  Result<bool> InfersLiteral(Lit l) override;

  /// Section 3.1 algorithm (O(log |P|) Σ₂ᵖ-oracle calls + 1).
  Result<CountingInferenceResult> InfersFormulaViaCounting(const Formula& f);

 protected:
  Result<Interpretation> ComputeNegatedAtoms() override;

 private:
  Partition pqz_;
};

}  // namespace dd

#endif  // DD_SEMANTICS_CCWA_H_
