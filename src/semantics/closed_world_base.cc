#include "semantics/closed_world_base.h"

#include "sat/solver.h"
#include "util/string_util.h"

namespace dd {

ClosedWorldSemantics::ClosedWorldSemantics(const Database& db,
                                           const SemanticsOptions& opts)
    : db_(db), opts_(opts), engine_(db) {}

Result<Interpretation> ClosedWorldSemantics::NegatedAtoms() {
  if (!negs_.has_value()) {
    DD_ASSIGN_OR_RETURN(Interpretation n, ComputeNegatedAtoms());
    negs_ = std::move(n);
  }
  return *negs_;
}

Result<bool> ClosedWorldSemantics::InfersFormula(const Formula& f) {
  DD_ASSIGN_OR_RETURN(Interpretation negs, NegatedAtoms());
  sat::Solver s;
  s.EnsureVars(db_.num_vars());
  for (const auto& cl : db_.ToCnf()) s.AddClause(cl);
  for (Var v : negs.TrueAtoms()) s.AddUnit(Lit::Neg(v));
  Var next = static_cast<Var>(db_.num_vars());
  std::vector<std::vector<Lit>> fcnf;
  Lit fl = TseitinEncode(f, &next, &fcnf);
  s.EnsureVars(next);
  for (auto& cl : fcnf) s.AddClause(std::move(cl));
  s.AddUnit(~fl);
  bool unsat = s.Solve() == sat::SolveResult::kUnsat;
  MinimalStats ms;
  ms.sat_calls = s.stats().solve_calls;
  engine_.AbsorbStats(ms);
  return unsat;
}

Result<std::optional<Interpretation>> ClosedWorldSemantics::FindCounterexample(
    const Formula& f) {
  DD_ASSIGN_OR_RETURN(Interpretation negs, NegatedAtoms());
  sat::Solver s;
  s.EnsureVars(db_.num_vars());
  for (const auto& cl : db_.ToCnf()) s.AddClause(cl);
  for (Var v : negs.TrueAtoms()) s.AddUnit(Lit::Neg(v));
  Var next = static_cast<Var>(db_.num_vars());
  std::vector<std::vector<Lit>> fcnf;
  Lit fl = TseitinEncode(f, &next, &fcnf);
  s.EnsureVars(next);
  for (auto& cl : fcnf) s.AddClause(std::move(cl));
  s.AddUnit(~fl);
  bool sat = s.Solve() == sat::SolveResult::kSat;
  MinimalStats ms;
  ms.sat_calls = s.stats().solve_calls;
  engine_.AbsorbStats(ms);
  if (!sat) return std::optional<Interpretation>();
  return std::optional<Interpretation>(s.Model(db_.num_vars()));
}

Result<bool> ClosedWorldSemantics::HasModel() {
  DD_ASSIGN_OR_RETURN(Interpretation negs, NegatedAtoms());
  sat::Solver s;
  s.EnsureVars(db_.num_vars());
  for (const auto& cl : db_.ToCnf()) s.AddClause(cl);
  for (Var v : negs.TrueAtoms()) s.AddUnit(Lit::Neg(v));
  bool sat = s.Solve() == sat::SolveResult::kSat;
  MinimalStats ms;
  ms.sat_calls = s.stats().solve_calls;
  engine_.AbsorbStats(ms);
  return sat;
}

Result<std::vector<Interpretation>> ClosedWorldSemantics::Models(
    int64_t cap) {
  if (cap < 0) cap = opts_.max_models;
  DD_ASSIGN_OR_RETURN(Interpretation negs, NegatedAtoms());
  sat::Solver s;
  s.EnsureVars(db_.num_vars());
  for (const auto& cl : db_.ToCnf()) s.AddClause(cl);
  for (Var v : negs.TrueAtoms()) s.AddUnit(Lit::Neg(v));

  std::vector<Interpretation> out;
  while (s.Solve() == sat::SolveResult::kSat) {
    Interpretation m = s.Model(db_.num_vars());
    out.push_back(m);
    if (static_cast<int64_t>(out.size()) > cap) {
      return Status::ResourceExhausted(
          StrFormat("more than %lld models", static_cast<long long>(cap)));
    }
    // Exclude exactly m.
    std::vector<Lit> block;
    for (Var v = 0; v < db_.num_vars(); ++v) {
      block.push_back(m.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
    }
    if (block.empty()) break;
    s.AddClause(std::move(block));
  }
  MinimalStats ms;
  ms.sat_calls = s.stats().solve_calls;
  engine_.AbsorbStats(ms);
  return out;
}

}  // namespace dd
