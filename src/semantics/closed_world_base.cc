#include "semantics/closed_world_base.h"

#include <utility>

#include "sat/solver.h"
#include "util/string_util.h"

namespace dd {

ClosedWorldSemantics::ClosedWorldSemantics(const Database& db,
                                           const SemanticsOptions& opts)
    : db_(db), opts_(opts), engine_(db, opts.minimal_options()) {}

void ClosedWorldSemantics::SetBudget(std::shared_ptr<Budget> budget) {
  opts_.budget = budget;
  engine_.SetBudget(std::move(budget));
}

Result<Interpretation> ClosedWorldSemantics::NegatedAtoms() {
  if (!negs_.has_value()) {
    DD_ASSIGN_OR_RETURN(Interpretation n, ComputeNegatedAtoms());
    negs_ = std::move(n);
  }
  return *negs_;
}

Result<bool> ClosedWorldSemantics::InfersFormula(const Formula& f) {
  DD_ASSIGN_OR_RETURN(Interpretation negs, NegatedAtoms());
  // One oracle call on DB ∪ N ∪ Tseitin(¬F): mode-transparently either a
  // guarded context on the engine's session or a dedicated solver.
  MinimalEngine::Query q(&engine_);
  for (Var v : negs.TrueAtoms()) q.AddUnit(Lit::Neg(v));
  Var next = q.NextVar();
  std::vector<std::vector<Lit>> fcnf;
  Lit fl = TseitinEncode(f, &next, &fcnf);
  q.ReserveVars(next);
  for (auto& cl : fcnf) q.AddClause(std::move(cl));
  q.AddUnit(~fl);
  sat::SolveResult r = q.Solve();
  if (engine_.interrupted()) {
    // kUnknown must not be read as UNSAT ("inferred"): degrade to Status.
    return engine_.interrupt_status();
  }
  return r == sat::SolveResult::kUnsat;
}

Result<std::optional<Interpretation>> ClosedWorldSemantics::FindCounterexample(
    const Formula& f) {
  DD_ASSIGN_OR_RETURN(Interpretation negs, NegatedAtoms());
  MinimalEngine::Query q(&engine_);
  for (Var v : negs.TrueAtoms()) q.AddUnit(Lit::Neg(v));
  Var next = q.NextVar();
  std::vector<std::vector<Lit>> fcnf;
  Lit fl = TseitinEncode(f, &next, &fcnf);
  q.ReserveVars(next);
  for (auto& cl : fcnf) q.AddClause(std::move(cl));
  q.AddUnit(~fl);
  sat::SolveResult r = q.Solve();
  if (engine_.interrupted()) return engine_.interrupt_status();
  if (r != sat::SolveResult::kSat) {
    return std::optional<Interpretation>();
  }
  return std::optional<Interpretation>(q.Model(db_.num_vars()));
}

Result<bool> ClosedWorldSemantics::HasModel() {
  DD_ASSIGN_OR_RETURN(Interpretation negs, NegatedAtoms());
  MinimalEngine::Query q(&engine_);
  for (Var v : negs.TrueAtoms()) q.AddUnit(Lit::Neg(v));
  sat::SolveResult r = q.Solve();
  if (engine_.interrupted()) return engine_.interrupt_status();
  return r == sat::SolveResult::kSat;
}

Result<std::vector<Interpretation>> ClosedWorldSemantics::Models(
    int64_t cap) {
  if (cap < 0) cap = opts_.max_models;
  DD_ASSIGN_OR_RETURN(Interpretation negs, NegatedAtoms());
  MinimalEngine::Query q(&engine_);
  for (Var v : negs.TrueAtoms()) q.AddUnit(Lit::Neg(v));

  std::vector<Interpretation> out;
  for (;;) {
    sat::SolveResult r = q.Solve();
    if (engine_.interrupted()) {
      // Anytime payload: everything collected so far IS a model of DB ∪ N;
      // the enumeration is merely truncated.
      partial_models_ = std::move(out);
      return engine_.interrupt_status();
    }
    if (r != sat::SolveResult::kSat) break;
    Interpretation m = q.Model(db_.num_vars());
    out.push_back(m);
    if (static_cast<int64_t>(out.size()) > cap) {
      partial_models_ = std::move(out);
      return Status::ResourceExhausted(
          StrFormat("more than %lld models", static_cast<long long>(cap)));
    }
    // Exclude exactly m.
    std::vector<Lit> block;
    for (Var v = 0; v < db_.num_vars(); ++v) {
      block.push_back(m.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
    }
    if (block.empty()) break;
    q.AddClause(std::move(block));
  }
  return out;
}

}  // namespace dd
