// Shared machinery for the CWA-family semantics (GCWA, CCWA, DDR): each
// augments the database with a set of negative literals N and then reasons
// classically over DB ∪ N. Concrete semantics differ only in how N is
// computed (minimal models for GCWA/CCWA, the T_DB fixpoint for DDR).
#ifndef DD_SEMANTICS_CLOSED_WORLD_BASE_H_
#define DD_SEMANTICS_CLOSED_WORLD_BASE_H_

#include <optional>
#include <vector>

#include "semantics/semantics.h"

namespace dd {

/// Base class: models(DB ∪ {¬x : x ∈ NegatedAtoms()}).
class ClosedWorldSemantics : public Semantics {
 public:
  ClosedWorldSemantics(const Database& db, const SemanticsOptions& opts);

  /// The augmentation set N (cached after the first successful
  /// computation). Can fail for semantics whose N-computation is resource
  /// bounded (PWS split enumeration).
  Result<Interpretation> NegatedAtoms();

  /// DB ∪ N |= F (one SAT call once N is known).
  Result<bool> InfersFormula(const Formula& f) override;

  /// DB ∪ N consistent.
  Result<bool> HasModel() override;

  /// All classical models of DB ∪ N (enumeration with blocking).
  Result<std::vector<Interpretation>> Models(int64_t cap = -1) override;

  /// One SAT call on DB ∪ N ∧ ¬F.
  Result<std::optional<Interpretation>> FindCounterexample(
      const Formula& f) override;

  const MinimalStats& stats() const override { return engine_.stats(); }

  /// Installs the budget on the options (inherited by helper solvers built
  /// from options()) and on the owned engine; clears latched interrupts.
  /// The cached augmentation set N survives — it is only ever cached after
  /// a *successful* (uninterrupted) computation, so it stays sound.
  void SetBudget(std::shared_ptr<Budget> budget) override;

  /// Attaches the query trace to the owned engine.
  void SetTrace(obs::TraceContext* trace) override { engine_.SetTrace(trace); }

  /// Session-reuse accounting of the underlying engine (all zero in
  /// fresh-solver mode). The benches report cache_hits from here.
  oracle::SessionStats session_stats() const override {
    return engine_.session_stats();
  }

 protected:
  /// Computes the set of atoms x whose ¬x joins the database.
  virtual Result<Interpretation> ComputeNegatedAtoms() = 0;

  const Database& db() const { return db_; }
  const SemanticsOptions& options() const { return opts_; }
  MinimalEngine* engine() { return &engine_; }

 private:
  Database db_;
  SemanticsOptions opts_;
  MinimalEngine engine_;
  std::optional<Interpretation> negs_;
};

}  // namespace dd

#endif  // DD_SEMANTICS_CLOSED_WORLD_BASE_H_
