#include "semantics/counting_inference.h"

#include "sat/solver.h"

namespace dd {

namespace {

// Σ₂ᵖ oracle: do at least `j` P-atoms appear in some <P;Z>-minimal model?
// Realized by enumerating minimal projections and accumulating the union of
// their P-parts with early exit; the enumeration is "inside" the oracle.
bool AtLeastJFree(MinimalEngine* engine, const Partition& pqz, int j) {
  if (j <= 0) return true;
  Interpretation covered(engine->db().num_vars());
  int count = 0;
  bool reached = false;
  engine->EnumerateMinimalProjections(
      pqz, /*cap=*/-1, [&](const Interpretation& m) {
        for (Var v : m.TrueAtoms()) {
          if (pqz.p.Contains(v) && !covered.Contains(v)) {
            covered.Insert(v);
            ++count;
          }
        }
        if (count >= j) {
          reached = true;
          return false;  // stop enumeration
        }
        return true;
      });
  return reached;
}

// Final Σ₂ᵖ oracle: with f* known, is there a model of
// DB ∪ {¬x : x ∈ P \ FreeSet} that violates F?
bool CounterexampleWithFreeCount(MinimalEngine* engine, const Partition& pqz,
                                 const Formula& f, int free_count) {
  // Recover the (unique) free set of size free_count.
  Interpretation covered(engine->db().num_vars());
  int count = 0;
  engine->EnumerateMinimalProjections(
      pqz, /*cap=*/-1, [&](const Interpretation& m) {
        for (Var v : m.TrueAtoms()) {
          if (pqz.p.Contains(v) && !covered.Contains(v)) {
            covered.Insert(v);
            ++count;
          }
        }
        return count < free_count;
      });
  // SAT: DB ∧ {¬x : x ∈ P \ covered} ∧ ¬F — one oracle call through the
  // engine (a guarded session context, or a dedicated solver in fresh mode).
  const Database& db = engine->db();
  MinimalEngine::Query q(engine);
  for (Var v = 0; v < db.num_vars(); ++v) {
    if (pqz.p.Contains(v) && !covered.Contains(v)) q.AddUnit(Lit::Neg(v));
  }
  Var next = q.NextVar();
  std::vector<std::vector<Lit>> fcnf;
  Lit fl = TseitinEncode(f, &next, &fcnf);
  q.ReserveVars(next);
  for (auto& cl : fcnf) q.AddClause(std::move(cl));
  q.AddUnit(~fl);
  // kUnknown latches the engine interrupt (Query::Solve); the caller checks
  // engine->interrupted() and must not trust this placeholder.
  return q.Solve() == sat::SolveResult::kSat;
}

}  // namespace

Result<CountingInferenceResult> CountingInference(MinimalEngine* engine,
                                                  const Partition& pqz,
                                                  const Formula& f) {
  DD_RETURN_IF_ERROR(pqz.Validate());
  CountingInferenceResult out;

  const int p_size = pqz.p.TrueCount();
  // Binary search the largest j with "at least j P-atoms free".
  // Invariant: lo is known-true, hi+1 known-false.
  int lo = 0, hi = p_size;
  while (lo < hi) {
    int mid = lo + (hi - lo + 1) / 2;
    ++out.oracle_calls;
    bool at_least = AtLeastJFree(engine, pqz, mid);
    if (engine->interrupted()) return engine->interrupt_status();
    if (at_least) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  out.free_count = lo;

  ++out.oracle_calls;
  out.inferred = !CounterexampleWithFreeCount(engine, pqz, f, out.free_count);
  if (engine->interrupted()) return engine->interrupt_status();
  return out;
}

}  // namespace dd
