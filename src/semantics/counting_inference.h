// The paper's Section 3.1 algorithm: formula inference under GCWA/CCWA in
// polynomial time with O(log n) calls to a Σ₂ᵖ oracle.
//
// Augmented inference DB ∪ {¬x : x ∈ P, x false in all <P;Z>-minimal
// models} |= F is decided in two steps (method of [Eiter & Gottlob 91]):
//
//   1. Binary-search the number f* of *free* P-atoms (true in some minimal
//      model) using the Σ₂ᵖ-oracle "are at least j P-atoms free?" —
//      O(log |P|) calls.
//   2. One final Σ₂ᵖ call: "is there a set U of exactly f* free atoms and a
//      model of DB ∪ {¬x : x ∈ P∖U} violating F?" Since f* is the maximum,
//      U necessarily equals the free set, so the call is sound.
//
// The oracle-call counter is the observable the bench_oracle_calls harness
// plots against |P| to exhibit the O(log n) bound.
#ifndef DD_SEMANTICS_COUNTING_INFERENCE_H_
#define DD_SEMANTICS_COUNTING_INFERENCE_H_

#include <cstdint>

#include "logic/database.h"
#include "logic/formula.h"
#include "minimal/minimal_models.h"
#include "minimal/pqz.h"
#include "util/status.h"

namespace dd {

/// Outcome of the counting algorithm.
struct CountingInferenceResult {
  bool inferred = false;
  int free_count = 0;         ///< f*: number of free P-atoms
  int64_t oracle_calls = 0;   ///< Σ₂ᵖ-oracle invocations (binary search + 1)
};

/// Runs the Section 3.1 algorithm for the partition `pqz` (GCWA is the
/// P = V case). Oracle internals accrue to `engine`'s SAT statistics.
Result<CountingInferenceResult> CountingInference(MinimalEngine* engine,
                                                  const Partition& pqz,
                                                  const Formula& f);

}  // namespace dd

#endif  // DD_SEMANTICS_COUNTING_INFERENCE_H_
