#include "semantics/cwa.h"

#include "sat/solver.h"

namespace dd {

CwaSemantics::CwaSemantics(const Database& db, const SemanticsOptions& opts)
    : ClosedWorldSemantics(db, opts) {}

Result<Interpretation> CwaSemantics::ComputeNegatedAtoms() {
  // ¬x joins CWA(DB) iff DB |≠ x, i.e. DB ∧ ¬x is satisfiable (or DB
  // itself is unsatisfiable, in which case everything is entailed and
  // nothing is negated — CWA(DB) is then inconsistent anyway).
  const Database& database = db();
  Interpretation negs(database.num_vars());
  sat::Solver s;
  s.SetBudget(options().budget);
  s.EnsureVars(database.num_vars());
  for (const auto& cl : database.ToCnf()) s.AddClause(cl);
  for (Var v = 0; v < database.num_vars(); ++v) {
    sat::SolveResult r = s.Solve({Lit::Neg(v)});
    if (r == sat::SolveResult::kUnknown) {
      // Folding kUnknown into "not negated" would silently shrink the
      // augmentation set and change downstream answers.
      MinimalStats ms;
      ms.sat_calls = s.stats().solve_calls;
      engine()->AbsorbStats(ms);
      return BudgetOrUnknownStatus(options().budget,
                                   "CWA augmentation oracle unknown");
    }
    if (r == sat::SolveResult::kSat) {
      negs.Insert(v);
    }
  }
  MinimalStats ms;
  ms.sat_calls = s.stats().solve_calls;
  engine()->AbsorbStats(ms);
  return negs;
}

}  // namespace dd
