// Reiter's Closed World Assumption (paper Section 3.1, introductory
// discussion): CWA(DB) adds ¬x for every atom x the database does not
// entail. On disjunctive databases the result is usually inconsistent
// (from a|b neither a nor b is entailed, so both get negated) — which is
// exactly why the paper moves on to GCWA. The paper notes that deciding
// consistency of CWA(DB) is coNP-hard and in PᶺNP[O(log n)], yet not in
// coDᴾ unless the polynomial hierarchy collapses.
//
// Implemented as the natural PᶺNP procedure: one entailment (SAT) call per
// atom to build the negation set, then one consistency call.
#ifndef DD_SEMANTICS_CWA_H_
#define DD_SEMANTICS_CWA_H_

#include "semantics/closed_world_base.h"

namespace dd {

class CwaSemantics : public ClosedWorldSemantics {
 public:
  explicit CwaSemantics(const Database& db, const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kCwa; }

 protected:
  /// {x : DB does not entail x} — one SAT call per atom.
  Result<Interpretation> ComputeNegatedAtoms() override;
};

}  // namespace dd

#endif  // DD_SEMANTICS_CWA_H_
