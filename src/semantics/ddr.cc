#include "semantics/ddr.h"

#include "fixpoint/ddr_fixpoint.h"
#include "util/macros.h"

namespace dd {

DdrSemantics::DdrSemantics(const Database& db, const SemanticsOptions& opts)
    : ClosedWorldSemantics(db, opts),
      deductive_(!db.HasNegation()),
      positive_(deductive_ && !db.HasIntegrityClauses()) {}

Status DdrSemantics::CheckDeductive() const {
  if (!deductive_) {
    return Status::FailedPrecondition(
        "DDR is defined for deductive databases (no negation)");
  }
  return Status::OK();
}

Result<Interpretation> DdrSemantics::FixpointAtoms() {
  DD_RETURN_IF_ERROR(CheckDeductive());
  if (!fixpoint_.has_value()) {
    DD_ASSIGN_OR_RETURN(Interpretation fix, DerivableAtoms(db()));
    fixpoint_ = std::move(fix);
  }
  return *fixpoint_;
}

Result<bool> DdrSemantics::InfersLiteral(Lit l) {
  DD_RETURN_IF_ERROR(CheckDeductive());
  if (l.negative() && positive_) {
    // Polynomial path (Chan): DDR |= ¬x iff x ∉ T_DB↑ω. If x is outside
    // the fixpoint, ¬x is part of the augmentation. If x is inside, the
    // fixpoint atom set is itself a model of DB plus the augmentation
    // (bodies inside it force heads inside it, and it avoids every negated
    // atom), and it contains x — a counter-model.
    DD_ASSIGN_OR_RETURN(Interpretation fix, FixpointAtoms());
    return !fix.Contains(l.var());
  }
  return InfersFormula(FormulaNode::MakeLit(l));
}

Result<bool> DdrSemantics::InfersFormula(const Formula& f) {
  DD_RETURN_IF_ERROR(CheckDeductive());
  return ClosedWorldSemantics::InfersFormula(f);
}

Result<bool> DdrSemantics::HasModel() {
  DD_RETURN_IF_ERROR(CheckDeductive());
  if (positive_) return true;  // T↑ω is a model of the augmentation
  return ClosedWorldSemantics::HasModel();
}

Result<Interpretation> DdrSemantics::ComputeNegatedAtoms() {
  DD_RETURN_IF_ERROR(CheckDeductive());
  Interpretation fix = DefiniteLeastModel(db());
  Interpretation negs(db().num_vars());
  for (Var v = 0; v < db().num_vars(); ++v) {
    if (!fix.Contains(v)) negs.Insert(v);
  }
  return negs;
}

}  // namespace dd
