// Disjunctive Database Rule (Ross & Topor 88) ≡ Weak GCWA (Rajasekar, Lobo
// & Minker 89), paper Section 3.2:
//
//   DDR(DB) = M( DB ∪ {¬x : x occurs in no disjunct of T_DB↑ω} )
//
// Defined for deductive databases (C+). The fixpoint ignores integrity
// clauses — the paper's Example 3.1 (DDR(DB) ⊭ ¬c although :- a,b rules
// out a∧b) is reproduced verbatim in the tests.
//
// Complexity: literal inference of ¬x on positive DBs is polynomial (the
// fixpoint atoms are a least model — the only tractable entries of
// Table 1, with PWS); formula inference coNP-complete; with integrity
// clauses literal inference becomes coNP-complete (Chan).
#ifndef DD_SEMANTICS_DDR_H_
#define DD_SEMANTICS_DDR_H_

#include <optional>

#include "semantics/closed_world_base.h"

namespace dd {

class DdrSemantics : public ClosedWorldSemantics {
 public:
  /// Fails (in the first operation) when the database contains negation.
  explicit DdrSemantics(const Database& db, const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kDdr; }

  /// Negative literals on positive databases: pure fixpoint lookup, no SAT
  /// call (the paper's polynomial path). Everything else routes through
  /// the augmented theory.
  Result<bool> InfersLiteral(Lit l) override;

  Result<bool> InfersFormula(const Formula& f) override;
  Result<bool> HasModel() override;

  /// Atoms occurring in T_DB↑ω (computed once, then cached; repeated
  /// negative-literal queries are bitset lookups).
  Result<Interpretation> FixpointAtoms();

 protected:
  Result<Interpretation> ComputeNegatedAtoms() override;

 private:
  Status CheckDeductive() const;

  /// Syntactic class, classified once at construction (the per-query
  /// HasNegation()/IsPositive() rescans used to dominate the P-time path).
  bool deductive_;
  bool positive_;
  std::optional<Interpretation> fixpoint_;
};

}  // namespace dd

#endif  // DD_SEMANTICS_DDR_H_
