#include "semantics/dsm.h"

#include "sat/solver.h"
#include "util/string_util.h"

namespace dd {

DsmSemantics::DsmSemantics(const Database& db, const SemanticsOptions& opts)
    : db_(db),
      opts_(opts),
      engine_(db, opts.minimal_options()),
      all_(Partition::MinimizeAll(db.num_vars())) {}

void DsmSemantics::SetBudget(std::shared_ptr<Budget> budget) {
  opts_.budget = budget;
  engine_.SetBudget(std::move(budget));
}

Result<bool> DsmSemantics::IsStable(const Interpretation& m) {
  if (!db_.Satisfies(m)) return false;
  Database reduct = db_.GlReduct(m);
  // m satisfies the reduct whenever it satisfies DB; stability is
  // minimality within the reduct. The reduct engine inherits the budget
  // through opts_.minimal_options().
  MinimalEngine re(reduct, opts_.minimal_options());
  bool stable = re.IsMinimal(m, all_);
  engine_.AbsorbStats(re.stats());
  if (re.interrupted()) return re.interrupt_status();
  return stable;
}

Status DsmSemantics::ForEachStable(
    const std::function<bool(const Interpretation&)>& visit) {
  if (!support_pruning_) {
    Status inner = Status::OK();
    int64_t candidates = 0;
    engine_.EnumerateMinimalProjections(
        all_, /*cap=*/-1, [&](const Interpretation& m) {
          if (++candidates > opts_.max_candidates) {
            inner = Status::ResourceExhausted(StrFormat(
                "DSM candidate search exceeded %lld minimal models",
                static_cast<long long>(opts_.max_candidates)));
            return false;
          }
          Result<bool> stable = IsStable(m);
          if (!stable.ok()) {
            inner = stable.status();
            return false;
          }
          if (*stable) return visit(m);
          return true;
        });
    if (engine_.interrupted()) return engine_.interrupt_status();
    return inner;
  }

  // Support-pruned search. Candidate solver: DB CNF + supportedness (every
  // stable model satisfies it, so no stable model is lost):
  //   a -> ∨_{rules r with a in head} y_{r,a}
  //   y_{r,a} -> pos body true, neg body false, other head atoms false.
  // Candidates found are minimized w.r.t. DB and region-blocked exactly as
  // in the unpruned enumeration; distinct minimal models are never
  // supersets of one another, so every stable model still surfaces.
  sat::Solver s;
  s.SetBudget(opts_.budget);
  s.EnsureVars(db_.num_vars());
  s.SetDefaultPolarity(false);
  for (const auto& cl : db_.ToCnf()) s.AddClause(cl);
  Var next = static_cast<Var>(db_.num_vars());
  std::vector<std::vector<Lit>> support(
      static_cast<size_t>(db_.num_vars()));
  for (const Clause& c : db_.clauses()) {
    for (Var a : c.heads()) {
      Var y = next++;
      s.EnsureVars(y + 1);
      for (Var b : c.pos_body()) s.AddBinary(Lit::Neg(y), Lit::Pos(b));
      for (Var neg : c.neg_body()) s.AddBinary(Lit::Neg(y), Lit::Neg(neg));
      for (Var h : c.heads()) {
        if (h != a) s.AddBinary(Lit::Neg(y), Lit::Neg(h));
      }
      support[static_cast<size_t>(a)].push_back(Lit::Pos(y));
    }
  }
  for (Var a = 0; a < db_.num_vars(); ++a) {
    std::vector<Lit> cl{Lit::Neg(a)};
    for (Lit y : support[static_cast<size_t>(a)]) cl.push_back(y);
    s.AddClause(std::move(cl));
  }

  int64_t candidates = 0;
  for (;;) {
    sat::SolveResult r = s.Solve();
    if (r == sat::SolveResult::kUnknown) {
      // Folding kUnknown into "no more candidates" would silently end the
      // stable-model search early and report wrong inferences.
      MinimalStats ms;
      ms.sat_calls = s.stats().solve_calls;
      engine_.AbsorbStats(ms);
      return BudgetOrUnknownStatus(opts_.budget,
                                   "DSM candidate oracle unknown");
    }
    if (r != sat::SolveResult::kSat) break;
    if (++candidates > opts_.max_candidates) {
      return Status::ResourceExhausted(
          StrFormat("DSM candidate search exceeded %lld candidates",
                    static_cast<long long>(opts_.max_candidates)));
    }
    Interpretation m = s.Model(db_.num_vars());
    Interpretation mm = engine_.Minimize(m, all_);
    if (engine_.interrupted()) {
      MinimalStats ms;
      ms.sat_calls = s.stats().solve_calls;
      engine_.AbsorbStats(ms);
      return engine_.interrupt_status();
    }
    DD_ASSIGN_OR_RETURN(bool stable, IsStable(mm));
    if (stable && !visit(mm)) break;
    // Block the region above mm (supersets can only be non-minimal).
    std::vector<Lit> block;
    for (Var v : mm.TrueAtoms()) block.push_back(Lit::Neg(v));
    if (block.empty()) break;  // the empty model's region is everything
    s.AddClause(std::move(block));
  }
  MinimalStats ms;
  ms.sat_calls = s.stats().solve_calls;
  engine_.AbsorbStats(ms);
  return Status::OK();
}

Result<std::vector<Interpretation>> DsmSemantics::Models(int64_t cap) {
  if (cap < 0) cap = opts_.max_models;
  std::vector<Interpretation> out;
  Status st = ForEachStable([&](const Interpretation& m) {
    out.push_back(m);
    return static_cast<int64_t>(out.size()) < cap;
  });
  if (!st.ok()) {
    // Anytime payload: every visited model passed the stability check, so
    // the collection is a sound (merely truncated) prefix.
    if (st.IsBudgetExhaustion()) partial_models_ = std::move(out);
    return st;
  }
  return out;
}

Result<bool> DsmSemantics::InfersFormula(const Formula& f) {
  DD_ASSIGN_OR_RETURN(std::optional<Interpretation> ce,
                      FindCounterexample(f));
  return !ce.has_value();
}

Result<std::optional<Interpretation>> DsmSemantics::FindCounterexample(
    const Formula& f) {
  std::optional<Interpretation> out;
  DD_RETURN_IF_ERROR(ForEachStable([&](const Interpretation& m) {
    if (!f->Eval(m)) {
      out = m;
      return false;
    }
    return true;
  }));
  return out;
}

Result<bool> DsmSemantics::HasModel() {
  if (db_.IsPositive()) return true;  // DSM = MM for positive DBs
  bool found = false;
  DD_RETURN_IF_ERROR(ForEachStable([&](const Interpretation&) {
    found = true;
    return false;
  }));
  return found;
}

}  // namespace dd
