// Disjunctive Stable Model Semantics (Przymusinski 91), paper Section 5.2.
//
// The Gelfond-Lifschitz reduct DB^M drops every clause whose negative body
// intersects M and strips the negative bodies of the rest; M is a
// disjunctive stable model iff M ∈ MM(DB^M). Stable models are minimal
// models of DB, and on positive databases DSM = MM.
//
// Complexity: stability of a candidate is one SAT call; literal and
// formula inference Π₂ᵖ-complete; model existence Σ₂ᵖ-complete for DNDBs
// (trivial for positive DBs).
#ifndef DD_SEMANTICS_DSM_H_
#define DD_SEMANTICS_DSM_H_

#include "minimal/pqz.h"
#include "semantics/semantics.h"

namespace dd {

class DsmSemantics : public Semantics {
 public:
  explicit DsmSemantics(const Database& db, const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kDsm; }

  /// One reduct construction + one minimality (SAT) call.
  Result<bool> IsStable(const Interpretation& m);

  /// Enables support pruning in the candidate search: every stable model
  /// is *supported* (each true atom has a rule with true body, false
  /// negative body and no other true head atom), so the candidate solver
  /// carries that encoding and skips unsupported minimal models wholesale.
  /// Sound and complete for stable models; on by default.
  void SetSupportPruning(bool on) { support_pruning_ = on; }

  /// Enumerates minimal models of DB and filters by stability.
  Result<std::vector<Interpretation>> Models(int64_t cap = -1) override;

  Result<bool> InfersFormula(const Formula& f) override;

  /// A stable model violating f, if any.
  Result<std::optional<Interpretation>> FindCounterexample(
      const Formula& f) override;

  /// Trivially true for positive DBs (DSM = MM ≠ ∅); candidate search
  /// otherwise (the Σ₂ᵖ-complete entry).
  Result<bool> HasModel() override;

  const MinimalStats& stats() const override { return engine_.stats(); }

  /// Installs the budget on the owned engine and the options (reduct
  /// engines and the support-pruned candidate solver are budgeted from the
  /// options).
  void SetBudget(std::shared_ptr<Budget> budget) override;

  /// Attaches the query trace to the owned engine (reduct engines run
  /// untraced; their counters fold into stats()).
  void SetTrace(obs::TraceContext* trace) override { engine_.SetTrace(trace); }

  /// Session-reuse accounting of the owned engine.
  oracle::SessionStats session_stats() const override {
    return engine_.session_stats();
  }

 private:
  /// Runs `visit` over stable models until it returns false.
  Status ForEachStable(const std::function<bool(const Interpretation&)>& visit);

  Database db_;
  SemanticsOptions opts_;
  MinimalEngine engine_;
  Partition all_;
  bool support_pruning_ = true;
};

}  // namespace dd

#endif  // DD_SEMANTICS_DSM_H_
