#include "semantics/ecwa_circ.h"

#include "util/macros.h"
#include "util/string_util.h"

namespace dd {

EcwaSemantics::EcwaSemantics(const Database& db, Partition pqz,
                             const SemanticsOptions& opts)
    : db_(db),
      opts_(opts),
      engine_(db, opts.minimal_options()),
      pqz_(std::move(pqz)) {
  DD_CHECK(pqz_.Validate().ok());
  DD_CHECK(pqz_.num_vars() == db.num_vars());
}

void EcwaSemantics::SetBudget(std::shared_ptr<Budget> budget) {
  opts_.budget = budget;
  engine_.SetBudget(std::move(budget));
}

Result<bool> EcwaSemantics::InfersFormula(const Formula& f) {
  bool entails = engine_.MinimalEntails(f, pqz_);
  if (engine_.interrupted()) return engine_.interrupt_status();
  return entails;
}

Result<std::optional<Interpretation>> EcwaSemantics::FindCounterexample(
    const Formula& f) {
  Interpretation witness;
  bool entails = engine_.MinimalEntails(f, pqz_, &witness);
  if (engine_.interrupted()) return engine_.interrupt_status();
  if (entails) {
    return std::optional<Interpretation>();
  }
  return std::optional<Interpretation>(witness);
}

Result<bool> EcwaSemantics::HasModel() {
  if (db_.IsPositive()) return true;
  bool has = engine_.HasModel();
  if (engine_.interrupted()) return engine_.interrupt_status();
  return has;
}

Result<std::vector<Interpretation>> EcwaSemantics::Models(int64_t cap) {
  if (cap < 0) cap = opts_.max_models;
  std::vector<Interpretation> out;
  bool overflow = false;
  engine_.EnumerateAllMinimalModels(pqz_, cap + 1,
                                    [&](const Interpretation& m) {
                                      if (static_cast<int64_t>(out.size()) >=
                                          cap) {
                                        overflow = true;
                                        return false;
                                      }
                                      out.push_back(m);
                                      return true;
                                    });
  if (engine_.interrupted()) {
    partial_models_ = std::move(out);
    return engine_.interrupt_status();
  }
  if (overflow) {
    partial_models_ = std::move(out);
    return Status::ResourceExhausted(StrFormat(
        "more than %lld ECWA models", static_cast<long long>(cap)));
  }
  return out;
}

bool EcwaSemantics::IsCircumscriptionModel(const Interpretation& m) {
  return engine_.IsMinimal(m, pqz_);
}

std::vector<bool> EcwaSemantics::AreCircumscriptionModels(
    const std::vector<Interpretation>& candidates) {
  return engine_.AreMinimal(candidates, pqz_, opts_.num_threads);
}

}  // namespace dd
