// Extended Closed World Assumption (Gelfond, Przymusinska & Przymusinski
// 89) ≡ propositional circumscription (Lifschitz 85), paper Section 3.3:
//
//   ECWA_{P;Z}(DB) = MM(DB;P;Z) = M(Circ(DB;P;Z))
//
// EGCWA is the case Q = Z = ∅. Complexity: literal and formula inference
// Π₂ᵖ-complete; model existence as EGCWA.
//
// The class carries both names: EcwaSemantics reasons over the
// <P;Z>-minimal models; IsCircumscriptionModel() exposes the circumscription
// view (pointwise model checking), which the tests use to confirm the
// ECWA = CIRC equivalence the paper relies on.
#ifndef DD_SEMANTICS_ECWA_CIRC_H_
#define DD_SEMANTICS_ECWA_CIRC_H_

#include "minimal/pqz.h"
#include "semantics/semantics.h"

namespace dd {

class EcwaSemantics : public Semantics {
 public:
  EcwaSemantics(const Database& db, Partition pqz,
                const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kEcwa; }

  const Partition& partition() const { return pqz_; }

  /// True in every <P;Z>-minimal model.
  Result<bool> InfersFormula(const Formula& f) override;

  /// A <P;Z>-minimal model violating f, if any.
  Result<std::optional<Interpretation>> FindCounterexample(
      const Formula& f) override;

  Result<bool> HasModel() override;

  /// Every <P;Z>-minimal model, including Z-completions.
  Result<std::vector<Interpretation>> Models(int64_t cap = -1) override;

  /// Circumscription view: is `m` a model of Circ(DB;P;Z)? By Lifschitz'
  /// theorem this holds iff m ∈ MM(DB;P;Z); one SAT call.
  bool IsCircumscriptionModel(const Interpretation& m);

  /// Bulk circumscription check: verdicts[i] == IsCircumscriptionModel(
  /// candidates[i]). Fans the per-candidate SAT calls out over
  /// `opts.num_threads` workers (chunked deterministically, so the result
  /// and the merged stats are thread-count-invariant).
  std::vector<bool> AreCircumscriptionModels(
      const std::vector<Interpretation>& candidates);

  const MinimalStats& stats() const override { return engine_.stats(); }

  /// Installs the budget on the owned engine; clears latched interrupts.
  void SetBudget(std::shared_ptr<Budget> budget) override;

  /// Attaches the query trace to the owned engine.
  void SetTrace(obs::TraceContext* trace) override { engine_.SetTrace(trace); }

  /// Session-reuse accounting of the owned engine.
  oracle::SessionStats session_stats() const override {
    return engine_.session_stats();
  }

 private:
  Database db_;
  SemanticsOptions opts_;
  MinimalEngine engine_;
  Partition pqz_;
};

}  // namespace dd

#endif  // DD_SEMANTICS_ECWA_CIRC_H_
