#include "semantics/egcwa.h"

#include <algorithm>
#include <cstdint>

#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dd {

EgcwaSemantics::EgcwaSemantics(const Database& db,
                               const SemanticsOptions& opts)
    : db_(db),
      opts_(opts),
      engine_(db, opts.minimal_options()),
      all_(Partition::MinimizeAll(db.num_vars())),
      positive_(db.IsPositive()) {}

void EgcwaSemantics::SetBudget(std::shared_ptr<Budget> budget) {
  opts_.budget = budget;
  engine_.SetBudget(std::move(budget));
}

Result<bool> EgcwaSemantics::InfersFormula(const Formula& f) {
  bool entails = engine_.MinimalEntails(f, all_);
  if (engine_.interrupted()) return engine_.interrupt_status();
  return entails;
}

Result<std::optional<Interpretation>> EgcwaSemantics::FindCounterexample(
    const Formula& f) {
  Interpretation witness;
  bool entails = engine_.MinimalEntails(f, all_, &witness);
  if (engine_.interrupted()) return engine_.interrupt_status();
  if (entails) {
    return std::optional<Interpretation>();
  }
  return std::optional<Interpretation>(witness);
}

Result<bool> EgcwaSemantics::HasModel() {
  // EGCWA(DB) = MM(DB) is nonempty iff DB has any model at all (finite
  // propositional case: every model contains a minimal one).
  if (positive_) return true;  // Table 1's O(1) entry
  bool has = engine_.HasModel();
  if (engine_.interrupted()) return engine_.interrupt_status();
  return has;
}

Result<std::vector<Interpretation>> EgcwaSemantics::Models(int64_t cap) {
  if (cap < 0) cap = opts_.max_models;
  std::vector<Interpretation> out;
  bool overflow = false;
  engine_.EnumerateMinimalProjections(all_, cap + 1,
                                      [&](const Interpretation& m) {
                                        if (static_cast<int64_t>(out.size()) >=
                                            cap) {
                                          overflow = true;
                                          return false;
                                        }
                                        out.push_back(m);
                                        return true;
                                      });
  if (engine_.interrupted()) {
    // Anytime payload: every collected model IS minimal; the enumeration
    // is merely truncated by the budget.
    partial_models_ = std::move(out);
    return engine_.interrupt_status();
  }
  if (overflow) {
    partial_models_ = std::move(out);
    return Status::ResourceExhausted(StrFormat(
        "more than %lld minimal models", static_cast<long long>(cap)));
  }
  return out;
}

Result<std::shared_ptr<const std::vector<Interpretation>>>
EgcwaSemantics::SharedModels(int64_t cap) {
  if (cap < 0) cap = opts_.max_models;
  // Drive the (memoized) projection stream to exhaustion — or to cap+1,
  // which proves overflow — WITHOUT collecting: on success the stream
  // itself is the model set and we alias it.
  int64_t seen = 0;
  bool overflow = false;
  engine_.EnumerateMinimalProjections(all_, cap + 1,
                                      [&](const Interpretation&) {
                                        if (seen >= cap) {
                                          overflow = true;
                                          return false;
                                        }
                                        ++seen;
                                        return true;
                                      });
  if (engine_.interrupted()) return engine_.interrupt_status();
  if (overflow) {
    return Status::ResourceExhausted(StrFormat(
        "more than %lld minimal models", static_cast<long long>(cap)));
  }
  std::shared_ptr<const std::vector<Interpretation>> shared =
      engine_.SharedExhaustedProjections(all_);
  if (shared != nullptr) return shared;
  // Fresh-solver mode has no memoized stream; copy via the default.
  return Semantics::SharedModels(cap);
}

Result<std::vector<std::vector<Var>>> EgcwaSemantics::EntailedNegativeClauses(
    int max_size) {
  // Materialize the minimal models once; a set S yields an entailed
  // negative clause iff no minimal model contains S, and we report only
  // the ⊆-minimal such S (everything above them is subsumed).
  DD_ASSIGN_OR_RETURN(std::vector<Interpretation> minimal, Models());
  const int n = db_.num_vars();
  std::vector<std::vector<Var>> found;

  // Breadth-first by size: a candidate is interesting only if all its
  // proper subsets are "covered" (contained in some minimal model), which
  // by induction means no previously found set is a subset.
  //
  // Each level runs in three deterministic stages so the per-candidate
  // coverage scan (the hot loop: |candidates| × |minimal| containment
  // tests) can fan out over `opts_.num_threads`:
  //  1. generate the level's candidates in the canonical (base, v) order,
  //     filtering against `found` — sound because found sets of the
  //     *current* size never subsume a distinct same-size candidate, so
  //     only strictly smaller (prior-level) sets matter, and those are all
  //     present before the level starts;
  //  2. check coverage in parallel (pure reads of `minimal`; verdicts land
  //     in an index-addressed byte buffer, so no element races and no
  //     dependence on thread count);
  //  3. merge sequentially in candidate order, reproducing exactly the
  //     sequential found/next interleaving.
  const CancelToken* cancel =
      opts_.budget ? opts_.budget->cancel_token().get() : nullptr;
  std::vector<std::vector<Var>> frontier{{}};  // sets of the previous size
  for (int size = 1; size <= max_size && size <= n; ++size) {
    if (opts_.budget != nullptr && opts_.budget->Exhausted()) {
      return opts_.budget->ToStatus();
    }
    std::vector<std::vector<Var>> candidates;
    for (const auto& base : frontier) {
      Var start = base.empty() ? 0 : base.back() + 1;
      for (Var v = start; v < n; ++v) {
        std::vector<Var> cand = base;
        cand.push_back(v);
        // Skip if a found (smaller) entailed set is inside cand.
        bool subsumed = false;
        for (const auto& f : found) {
          if (std::includes(cand.begin(), cand.end(), f.begin(), f.end())) {
            subsumed = true;
            break;
          }
        }
        if (!subsumed) candidates.push_back(std::move(cand));
      }
    }

    std::vector<uint8_t> covered(candidates.size(), 0);
    ParallelFor(static_cast<int64_t>(candidates.size()), opts_.num_threads,
                cancel, [&](int64_t i) {
                  const std::vector<Var>& cand =
                      candidates[static_cast<size_t>(i)];
                  for (const auto& m : minimal) {
                    bool inside = true;
                    for (Var x : cand) {
                      if (!m.Contains(x)) {
                        inside = false;
                        break;
                      }
                    }
                    if (inside) {
                      covered[static_cast<size_t>(i)] = 1;
                      return;
                    }
                  }
                });

    // A cancelled scan leaves `covered` partially computed; merging it
    // would misclassify unchecked candidates as entailed.
    if (cancel != nullptr && cancel->cancelled()) {
      return BudgetOrUnknownStatus(opts_.budget,
                                   "EGCWA clause scan cancelled");
    }
    std::vector<std::vector<Var>> next;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (covered[i]) {
        next.push_back(std::move(candidates[i]));  // still alive; grow later
      } else {
        found.push_back(std::move(candidates[i]));  // minimal entailed clause
      }
    }
    frontier = std::move(next);
  }
  return found;
}

}  // namespace dd
