// Extended Generalized Closed World Assumption (Yahya & Henschen 85),
// paper Section 3.3: DB is augmented by every negative clause true in all
// minimal models, which model-theoretically collapses to
//
//   EGCWA(DB) = MM(DB).
//
// Complexity: literal and formula inference Π₂ᵖ-complete; model existence
// O(1) for positive DBs, NP-complete with integrity clauses.
#ifndef DD_SEMANTICS_EGCWA_H_
#define DD_SEMANTICS_EGCWA_H_

#include "minimal/pqz.h"
#include "semantics/semantics.h"

namespace dd {

class EgcwaSemantics : public Semantics {
 public:
  explicit EgcwaSemantics(const Database& db,
                          const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kEgcwa; }

  /// True in every minimal model (counterexample-guided, Π₂ᵖ-faithful).
  Result<bool> InfersFormula(const Formula& f) override;

  /// The CEGAR loop's witness: a minimal model violating f, if any.
  Result<std::optional<Interpretation>> FindCounterexample(
      const Formula& f) override;

  /// O(1) for positive databases; one SAT call otherwise.
  Result<bool> HasModel() override;

  /// The minimal models themselves.
  Result<std::vector<Interpretation>> Models(int64_t cap = -1) override;

  /// Zero-copy model handle: EGCWA's model set IS the engine's memoized
  /// projection stream, so once enumeration exhausts the stream this
  /// aliases its storage instead of re-materializing — the stream, the
  /// batch layer's in-flight bank and the bank store then share ONE copy
  /// (safe: exhausted streams are frozen, and stream eviction only drops
  /// the engine's reference). Falls back to the copying default when the
  /// stream is unavailable (fresh-solver mode). Same cap/overflow
  /// conventions as Models().
  Result<std::shared_ptr<const std::vector<Interpretation>>> SharedModels(
      int64_t cap = -1) override;

  /// The augmentation EGCWA literally performs (Yahya & Henschen): the
  /// ⊆-minimal atom sets S with |S| <= max_size such that the negative
  /// clause ¬s1 | ... | ¬sk is true in every minimal model — equivalently,
  /// no minimal model contains S. Each returned set is minimal: every
  /// proper subset is contained in some minimal model. GCWA's negation set
  /// is exactly the singletons here.
  Result<std::vector<std::vector<Var>>> EntailedNegativeClauses(
      int max_size);

  const MinimalStats& stats() const override { return engine_.stats(); }

  /// Installs the budget on the owned engine (and on the options, so any
  /// helper machinery derived from them inherits it); clears latched
  /// interrupts from a previous budgeted query.
  void SetBudget(std::shared_ptr<Budget> budget) override;

  /// Attaches the query trace to the owned engine.
  void SetTrace(obs::TraceContext* trace) override { engine_.SetTrace(trace); }

  /// Session-reuse accounting of the underlying engine (all zero in
  /// fresh-solver mode). The benches report cache_hits from here.
  oracle::SessionStats session_stats() const override {
    return engine_.session_stats();
  }

 private:
  Database db_;
  SemanticsOptions opts_;
  MinimalEngine engine_;
  Partition all_;
  /// Classified once at construction; HasModel() consults it per call.
  bool positive_;
};

}  // namespace dd

#endif  // DD_SEMANTICS_EGCWA_H_
