#include "semantics/gcwa.h"

namespace dd {

GcwaSemantics::GcwaSemantics(const Database& db, const SemanticsOptions& opts)
    : ClosedWorldSemantics(db, opts),
      all_(Partition::MinimizeAll(db.num_vars())) {}

Result<bool> GcwaSemantics::InfersLiteral(Lit l) {
  if (l.negative()) {
    // GCWA |= ¬x iff x is false in every minimal model: if so, ¬x is part
    // of the augmentation; if x is true in some minimal model M, then M is
    // itself a GCWA model containing x.
    return !engine()->ExistsMinimalModelWith(~l, all_);
  }
  return InfersFormula(FormulaNode::MakeLit(l));
}

Result<bool> GcwaSemantics::HasModel() {
  // MM(DB) ⊆ GCWA(DB): consistency coincides with classical satisfiability,
  // which is immediate for positive databases (the all-true interpretation
  // is a model) — the O(1) entry of Table 1.
  if (db().IsPositive()) return true;
  return engine()->HasModel();
}

Result<CountingInferenceResult> GcwaSemantics::InfersFormulaViaCounting(
    const Formula& f) {
  return CountingInference(engine(), all_, f);
}

Result<Interpretation> GcwaSemantics::ComputeNegatedAtoms() {
  Interpretation free = engine()->FreeAtoms(all_);
  Interpretation negs(db().num_vars());
  for (Var v = 0; v < db().num_vars(); ++v) {
    if (!free.Contains(v)) negs.Insert(v);
  }
  return negs;
}

}  // namespace dd
