#include "semantics/gcwa.h"

namespace dd {

GcwaSemantics::GcwaSemantics(const Database& db, const SemanticsOptions& opts)
    : ClosedWorldSemantics(db, opts),
      all_(Partition::MinimizeAll(db.num_vars())) {}

Result<bool> GcwaSemantics::InfersLiteral(Lit l) {
  if (l.negative()) {
    // GCWA |= ¬x iff x is false in every minimal model: if so, ¬x is part
    // of the augmentation; if x is true in some minimal model M, then M is
    // itself a GCWA model containing x.
    bool exists = engine()->ExistsMinimalModelWith(~l, all_);
    if (engine()->interrupted()) return engine()->interrupt_status();
    return !exists;
  }
  return InfersFormula(FormulaNode::MakeLit(l));
}

Result<bool> GcwaSemantics::HasModel() {
  // MM(DB) ⊆ GCWA(DB): consistency coincides with classical satisfiability,
  // which is immediate for positive databases (the all-true interpretation
  // is a model) — the O(1) entry of Table 1.
  if (db().IsPositive()) return true;
  bool has = engine()->HasModel();
  if (engine()->interrupted()) return engine()->interrupt_status();
  return has;
}

Result<CountingInferenceResult> GcwaSemantics::InfersFormulaViaCounting(
    const Formula& f) {
  return CountingInference(engine(), all_, f);
}

Result<Interpretation> GcwaSemantics::ComputeNegatedAtoms() {
  Interpretation free = engine()->FreeAtoms(all_);
  if (engine()->interrupted()) return engine()->interrupt_status();
  Interpretation negs(db().num_vars());
  for (Var v = 0; v < db().num_vars(); ++v) {
    if (!free.Contains(v)) negs.Insert(v);
  }
  return negs;
}

}  // namespace dd
