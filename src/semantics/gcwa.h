// Generalized Closed World Assumption (Minker 82), paper Section 3.1.
//
//   GCWA(DB) = { M model of DB : M |= ¬x for every atom x that is false in
//                all minimal models of DB }
//
// Complexity (paper): literal inference Π₂ᵖ-complete; formula inference
// Π₂ᵖ-hard and in PᶺΣ₂ᵖ[O(log n)]; model existence O(1) for positive DBs,
// NP-complete with integrity clauses (= satisfiability of DB, since every
// minimal model is a GCWA model).
#ifndef DD_SEMANTICS_GCWA_H_
#define DD_SEMANTICS_GCWA_H_

#include "semantics/closed_world_base.h"
#include "semantics/counting_inference.h"

namespace dd {

class GcwaSemantics : public ClosedWorldSemantics {
 public:
  explicit GcwaSemantics(const Database& db, const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kGcwa; }

  /// ¬x is inferred iff no minimal model contains x (one Σ₂ᵖ-style query);
  /// positive literals go through the augmented theory.
  Result<bool> InfersLiteral(Lit l) override;

  /// O(1) for positive databases (they always have minimal models); one
  /// SAT call otherwise.
  Result<bool> HasModel() override;

  /// The paper's Section 3.1 algorithm: O(log |V|) Σ₂ᵖ-oracle calls plus a
  /// final one. Returns the verdict together with the call count.
  Result<CountingInferenceResult> InfersFormulaViaCounting(const Formula& f);

 protected:
  Result<Interpretation> ComputeNegatedAtoms() override;

 private:
  Partition all_;
};

}  // namespace dd

#endif  // DD_SEMANTICS_GCWA_H_
