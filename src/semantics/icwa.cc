#include "semantics/icwa.h"

#include "sat/solver.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace dd {

namespace {
using sat::SolveResult;
using sat::Solver;
}  // namespace

IcwaSemantics::IcwaSemantics(const Database& db, const SemanticsOptions& opts)
    : db_(db),
      opts_(opts),
      positivized_(db.Positivize()),
      engine_(positivized_, opts.minimal_options()) {}

IcwaSemantics::IcwaSemantics(const Database& db, Stratification strat,
                             const SemanticsOptions& opts)
    : db_(db),
      opts_(opts),
      positivized_(db.Positivize()),
      engine_(positivized_, opts.minimal_options()),
      strat_(std::move(strat)),
      strat_provided_(true) {}

Status IcwaSemantics::EnsureStratified() {
  if (!strat_.has_value()) {
    DD_ASSIGN_OR_RETURN(Stratification s, Stratify(db_));
    strat_ = std::move(s);
  }
  if (stratum_partitions_.empty()) {
    const int n = db_.num_vars();
    for (int i = 0; i < strat_->num_strata; ++i) {
      Partition p;
      p.p = Interpretation(n);
      p.q = Interpretation(n);
      p.z = Interpretation(n);
      for (Var v = 0; v < n; ++v) {
        int lv = strat_->atom_level[static_cast<size_t>(v)];
        if (lv == i) {
          p.p.Insert(v);
        } else if (lv < i) {
          p.q.Insert(v);
        } else {
          p.z.Insert(v);
        }
      }
      stratum_partitions_.push_back(std::move(p));
    }
  }
  return Status::OK();
}

void IcwaSemantics::SetBudget(std::shared_ptr<Budget> budget) {
  opts_.budget = budget;
  engine_.SetBudget(std::move(budget));
}

Result<bool> IcwaSemantics::IsIcwaModel(const Interpretation& m) {
  DD_RETURN_IF_ERROR(EnsureStratified());
  if (!positivized_.Satisfies(m)) return false;
  for (const Partition& p : stratum_partitions_) {
    bool minimal = engine_.IsMinimal(m, p);
    if (engine_.interrupted()) return engine_.interrupt_status();
    if (!minimal) return false;
  }
  return true;
}

Result<bool> IcwaSemantics::InfersFormula(const Formula& f) {
  DD_RETURN_IF_ERROR(EnsureStratified());
  // Counterexample-guided search for an ICWA model violating F.
  Solver s;
  s.SetBudget(opts_.budget);
  s.EnsureVars(positivized_.num_vars());
  for (const auto& cl : positivized_.ToCnf()) s.AddClause(cl);
  Var next = static_cast<Var>(positivized_.num_vars());
  std::vector<std::vector<Lit>> fcnf;
  Lit fl = TseitinEncode(f, &next, &fcnf);
  s.EnsureVars(next);
  for (auto& cl : fcnf) s.AddClause(std::move(cl));
  s.AddUnit(~fl);

  int64_t iterations = 0;
  for (;;) {
    if (++iterations > opts_.max_candidates) {
      return Status::ResourceExhausted(
          "ICWA inference exceeded the candidate budget");
    }
    SolveResult r = s.Solve();
    if (r == SolveResult::kUnknown) {
      // Deadline / conflict budget / injected fault: kUnsat would wrongly
      // report "inferred", so degrade to Status.
      return BudgetOrUnknownStatus(opts_.budget,
                                   "ICWA candidate oracle unknown");
    }
    if (r != SolveResult::kSat) return true;
    Interpretation m = s.Model(positivized_.num_vars());

    int failing = -1;
    for (size_t i = 0; i < stratum_partitions_.size(); ++i) {
      bool minimal = engine_.IsMinimal(m, stratum_partitions_[i]);
      if (engine_.interrupted()) return engine_.interrupt_status();
      if (!minimal) {
        failing = static_cast<int>(i);
        break;
      }
    }
    if (failing < 0) return false;  // m is an ICWA counterexample

    const Partition& pi = stratum_partitions_[static_cast<size_t>(failing)];
    Interpretation mm = engine_.Minimize(m, pi);
    if (engine_.interrupted()) return engine_.interrupt_status();
    // Probe: a ¬F-model sharing mm's exact <Pᵢ,Qᵢ>-projection would be
    // ECWA_i-minimal; if none exists the whole region is safe to block
    // (its ICWA models, if any, satisfy F). The probe is "positivized DB
    // plus Tseitin(¬F)", so it rides the engine's session in session mode.
    MinimalEngine::Query probe(&engine_);
    {
      std::vector<std::vector<Lit>> pcnf;
      Var pnext = probe.NextVar();
      Lit pl = TseitinEncode(f, &pnext, &pcnf);
      probe.ReserveVars(pnext);
      for (auto& cl : pcnf) probe.AddClause(std::move(cl));
      probe.AddUnit(~pl);
    }
    std::vector<Lit> proj;
    for (Var v = 0; v < positivized_.num_vars(); ++v) {
      if (pi.p.Contains(v) || pi.q.Contains(v)) {
        proj.push_back(Lit::Make(v, mm.Contains(v)));
      }
    }
    SolveResult pr = probe.Solve(proj);
    if (engine_.interrupted()) {
      // kUnknown must not fall through to region-blocking: the region might
      // hold the counterexample the probe failed to find.
      return engine_.interrupt_status();
    }
    if (pr == SolveResult::kSat) {
      // Inconclusive region: exclude exactly m and keep searching.
      std::vector<Lit> block;
      for (Var v = 0; v < positivized_.num_vars(); ++v) {
        block.push_back(m.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
      }
      s.AddClause(std::move(block));
    } else {
      // Block the whole region {P_i ⊇ mm∩P_i, Q_i = mm∩Q_i}.
      std::vector<Lit> block;
      for (Var v = 0; v < positivized_.num_vars(); ++v) {
        if (pi.p.Contains(v) && mm.Contains(v)) block.push_back(Lit::Neg(v));
        if (pi.q.Contains(v)) {
          block.push_back(mm.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
        }
      }
      if (block.empty()) return true;  // the region is everything
      s.AddClause(std::move(block));
    }
  }
}

Result<bool> IcwaSemantics::HasModel() {
  DD_RETURN_IF_ERROR(EnsureStratified());
  if (!db_.HasIntegrityClauses()) {
    // Paper Section 4: a stratified database (no integrity clauses) always
    // has ICWA models — the O(1) entry.
    return true;
  }
  DD_ASSIGN_OR_RETURN(std::vector<Interpretation> ms, Models(1));
  return !ms.empty();
}

Result<std::vector<Interpretation>> IcwaSemantics::Models(int64_t cap) {
  DD_RETURN_IF_ERROR(EnsureStratified());
  if (cap < 0) cap = opts_.max_models;
  // ICWA models are ECWA_1-minimal; enumerate those and filter by the
  // remaining strata.
  std::vector<Interpretation> out;
  Status inner = Status::OK();
  int64_t candidates = 0;
  engine_.EnumerateAllMinimalModels(
      stratum_partitions_[0], /*cap=*/-1, [&](const Interpretation& m) {
        if (++candidates > opts_.max_candidates) {
          inner = Status::ResourceExhausted("too many ECWA_1 models");
          return false;
        }
        bool ok = true;
        for (size_t i = 1; i < stratum_partitions_.size(); ++i) {
          bool minimal = engine_.IsMinimal(m, stratum_partitions_[i]);
          if (engine_.interrupted()) return false;  // stop; handled below
          if (!minimal) {
            ok = false;
            break;
          }
        }
        if (ok) {
          out.push_back(m);
          if (static_cast<int64_t>(out.size()) >= cap) return false;
        }
        return true;
      });
  if (engine_.interrupted()) {
    // Anytime payload: each collected model passed every stratum check
    // before the interrupt, so all of them ARE ICWA models.
    partial_models_ = std::move(out);
    return engine_.interrupt_status();
  }
  DD_RETURN_IF_ERROR(inner);
  return out;
}

}  // namespace dd
