// Iterated Closed World Assumption (Gelfond, Przymusinska & Przymusinski
// 89), paper Section 4: ECWA applied stratum by stratum to a disjunctive
// stratified database.
//
// With strata P1 > ... > Pr and floating atoms Z, over the positivized
// database DB+ (negative body literals moved into the head):
//
//   ICWA(DB) = ⋂ᵢ ECWA_{Pᵢ ; Pᵢ₊₁ ∪ ... ∪ P_r ∪ Z}(DB+)
//
// i.e. the models that are <Pᵢ;Zᵢ>-minimal for every stratum i, where
// stratum atoms below i are fixed and those above float.
//
// Complexity: formula inference Π₂ᵖ (Theorem 4.1), literal inference
// Π₂ᵖ-hard already for positive DBs (Theorem 4.2, via Theorem 3.1 with the
// single-stratum stratification); model existence O(1) given a
// stratification (stratifiability asserts consistency).
#ifndef DD_SEMANTICS_ICWA_H_
#define DD_SEMANTICS_ICWA_H_

#include <vector>

#include "minimal/pqz.h"
#include "semantics/semantics.h"
#include "strat/stratifier.h"

namespace dd {

class IcwaSemantics : public Semantics {
 public:
  /// Stratifies the database itself (FailedPrecondition surfaces from the
  /// first operation if that is impossible). Every atom belongs to the
  /// stratum the stratifier assigns; the extra floating set Z is empty
  /// under this constructor.
  explicit IcwaSemantics(const Database& db, const SemanticsOptions& opts = {});

  /// Uses a caller-provided stratification (the paper treats S as given).
  IcwaSemantics(const Database& db, Stratification strat,
                const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kIcwa; }

  /// Is `m` an ICWA model, i.e. <Pᵢ;Zᵢ>-minimal for every stratum?
  /// (r SAT calls.)
  Result<bool> IsIcwaModel(const Interpretation& m);

  Result<bool> InfersFormula(const Formula& f) override;

  /// O(1): a stratified database always has ICWA models (paper Section 4);
  /// the method fails only when no stratification exists.
  Result<bool> HasModel() override;

  Result<std::vector<Interpretation>> Models(int64_t cap = -1) override;

  const MinimalStats& stats() const override { return engine_.stats(); }

  /// Installs the budget on the owned engine and the options (the CEGAR
  /// loop's dedicated solver is budgeted from the options).
  void SetBudget(std::shared_ptr<Budget> budget) override;

  /// Attaches the query trace to the owned engine.
  void SetTrace(obs::TraceContext* trace) override { engine_.SetTrace(trace); }

  /// Session-reuse accounting of the owned engine.
  oracle::SessionStats session_stats() const override {
    return engine_.session_stats();
  }

 private:
  Status EnsureStratified();

  Database db_;
  SemanticsOptions opts_;
  Database positivized_;
  MinimalEngine engine_;  ///< over the positivized database
  std::optional<Stratification> strat_;
  bool strat_provided_ = false;
  std::vector<Partition> stratum_partitions_;
};

}  // namespace dd

#endif  // DD_SEMANTICS_ICWA_H_
