#include "semantics/pdsm.h"

#include "sat/solver.h"
#include "util/macros.h"
#include "util/string_util.h"

namespace dd {

namespace {

// Builds the bit-level vocabulary: t-bits share the source ids [0,n),
// nf-bits live at [n, 2n).
Vocabulary MakeBitVocabulary(const Database& db) {
  Vocabulary voc;
  for (Var v = 0; v < db.num_vars(); ++v) {
    voc.Intern("t(" + db.vocabulary().Name(v) + ")");
  }
  for (Var v = 0; v < db.num_vars(); ++v) {
    voc.Intern("nf(" + db.vocabulary().Name(v) + ")");
  }
  return voc;
}

}  // namespace

PdsmSemantics::PdsmSemantics(const Database& db, const SemanticsOptions& opts)
    : db_(db),
      opts_(opts),
      bit_db_(MakeBitVocabulary(db)),
      engine_(bit_db_, opts.minimal_options()) {
  const Var n = db_.num_vars();
  auto t = [](Var v) { return v; };
  auto nf = [n](Var v) { return n + v; };

  // Consistency: t(v) -> nf(v).
  for (Var v = 0; v < n; ++v) {
    bit_db_.AddClause(Clause({nf(v)}, {t(v)}, {}));
  }
  // Per source clause (heads a, pos body b, neg body c), 3-valued
  // satisfaction value(head) >= value(body) splits into two implications:
  //   body >= 1/2  ->  head >= 1/2 :   ∨ nf(a) ∨ ¬nf(b)... ∨ t(c)...
  //   body  = 1    ->  head  = 1   :   ∨ t(a)  ∨ ¬t(b)...  ∨ nf(c)...
  for (const Clause& c : db_.clauses()) {
    std::vector<Var> heads_a, heads_b, body_a, body_b;
    for (Var a : c.heads()) {
      heads_a.push_back(nf(a));
      heads_b.push_back(t(a));
    }
    for (Var b : c.pos_body()) {
      body_a.push_back(nf(b));
      body_b.push_back(t(b));
    }
    for (Var neg : c.neg_body()) {
      // value(¬c) >= 1/2 iff c <= 1/2 iff ¬t(c); value(¬c)=1 iff ¬nf(c).
      heads_a.push_back(t(neg));
      heads_b.push_back(nf(neg));
    }
    bit_db_.AddClause(Clause(std::move(heads_a), std::move(body_a), {}));
    bit_db_.AddClause(Clause(std::move(heads_b), std::move(body_b), {}));
  }
  engine_ = MinimalEngine(bit_db_, opts_.minimal_options());
}

PartialInterpretation PdsmSemantics::DecodeBits(
    const Interpretation& bits) const {
  const Var n = db_.num_vars();
  PartialInterpretation out(n);
  for (Var v = 0; v < n; ++v) {
    bool tb = bits.Contains(v);
    bool nfb = bits.Contains(n + v);
    out.SetValue(v, tb ? TruthValue::kTrue
                       : (nfb ? TruthValue::kUndef : TruthValue::kFalse));
  }
  return out;
}

Interpretation PdsmSemantics::EncodeBits(const PartialInterpretation& i) const {
  const Var n = db_.num_vars();
  Interpretation out(2 * n);
  for (Var v = 0; v < n; ++v) {
    if (i.Value(v) == TruthValue::kTrue) out.Insert(v);
    if (i.Value(v) != TruthValue::kFalse) out.Insert(n + v);
  }
  return out;
}

Database PdsmSemantics::BuildReductBitDb(const PartialInterpretation& i) const {
  const Var n = db_.num_vars();
  auto t = [](Var v) { return v; };
  auto nf = [n](Var v) { return n + v; };
  Database out(bit_db_.vocabulary());
  for (Var v = 0; v < n; ++v) {
    out.AddClause(Clause({nf(v)}, {t(v)}, {}));
  }
  for (const Clause& c : db_.clauses()) {
    // Constant contribution of the (replaced) negative body.
    TruthValue kappa = TruthValue::kTrue;
    for (Var neg : c.neg_body()) kappa = std::min(kappa, Negate(i.Value(neg)));
    if (kappa == TruthValue::kFalse) continue;  // body is 0: clause holds

    std::vector<Var> heads_a, body_a;
    for (Var a : c.heads()) heads_a.push_back(nf(a));
    for (Var b : c.pos_body()) body_a.push_back(nf(b));
    out.AddClause(Clause(std::move(heads_a), std::move(body_a), {}));

    if (kappa == TruthValue::kTrue) {
      std::vector<Var> heads_b, body_b;
      for (Var a : c.heads()) heads_b.push_back(t(a));
      for (Var b : c.pos_body()) body_b.push_back(t(b));
      out.AddClause(Clause(std::move(heads_b), std::move(body_b), {}));
    }
  }
  return out;
}

void PdsmSemantics::SetBudget(std::shared_ptr<Budget> budget) {
  opts_.budget = budget;
  engine_.SetBudget(std::move(budget));
}

Result<bool> PdsmSemantics::IsPartialStable(const PartialInterpretation& i) {
  if (i.num_vars() != db_.num_vars()) {
    return Status::InvalidArgument("interpretation size mismatch");
  }
  Database reduct = BuildReductBitDb(i);
  Interpretation bits = EncodeBits(i);
  if (!reduct.Satisfies(bits)) return false;
  MinimalEngine re(reduct, opts_.minimal_options());
  Partition all = Partition::MinimizeAll(reduct.num_vars());
  bool minimal = re.IsMinimal(bits, all);
  engine_.AbsorbStats(re.stats());
  if (re.interrupted()) return re.interrupt_status();
  return minimal;
}

Status PdsmSemantics::ForEachPartialStable(
    const std::function<bool(const PartialInterpretation&)>& visit) {
  // Candidates: 3-valued models of DB, enumerated over the bit encoding
  // with exact blocking.
  sat::Solver s;
  s.SetBudget(opts_.budget);
  s.EnsureVars(bit_db_.num_vars());
  for (const auto& cl : bit_db_.ToCnf()) s.AddClause(cl);

  int64_t candidates = 0;
  for (;;) {
    sat::SolveResult r = s.Solve();
    if (r == sat::SolveResult::kUnknown) {
      // kUnknown is not "no more candidates": stopping here would silently
      // truncate the partial-stable search and flip inferences.
      MinimalStats ms;
      ms.sat_calls = s.stats().solve_calls;
      engine_.AbsorbStats(ms);
      return BudgetOrUnknownStatus(opts_.budget,
                                   "PDSM candidate oracle unknown");
    }
    if (r != sat::SolveResult::kSat) break;
    if (++candidates > opts_.max_candidates) {
      return Status::ResourceExhausted(
          StrFormat("PDSM candidate search exceeded %lld interpretations",
                    static_cast<long long>(opts_.max_candidates)));
    }
    Interpretation bits = s.Model(bit_db_.num_vars());
    PartialInterpretation i = DecodeBits(bits);
    DD_ASSIGN_OR_RETURN(bool stable, IsPartialStable(i));
    if (stable && !visit(i)) return Status::OK();
    // Exclude exactly this bit pattern.
    std::vector<Lit> block;
    for (Var v = 0; v < bit_db_.num_vars(); ++v) {
      block.push_back(bits.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
    }
    if (block.empty()) break;
    s.AddClause(std::move(block));
  }
  return Status::OK();
}

Result<std::vector<PartialInterpretation>> PdsmSemantics::PartialModels(
    int64_t cap) {
  if (cap < 0) cap = opts_.max_models;
  std::vector<PartialInterpretation> out;
  DD_RETURN_IF_ERROR(
      ForEachPartialStable([&](const PartialInterpretation& i) {
        out.push_back(i);
        return static_cast<int64_t>(out.size()) < cap;
      }));
  return out;
}

Result<std::vector<Interpretation>> PdsmSemantics::Models(int64_t cap) {
  if (cap < 0) cap = opts_.max_models;
  std::vector<Interpretation> out;
  Status st = ForEachPartialStable([&](const PartialInterpretation& i) {
    if (i.IsTotal()) {
      out.push_back(i.TrueSet());
      if (static_cast<int64_t>(out.size()) >= cap) return false;
    }
    return true;
  });
  if (!st.ok()) {
    // Anytime payload: each collected model is a verified total stable
    // model; the enumeration is merely truncated.
    if (st.IsBudgetExhaustion()) partial_models_ = std::move(out);
    return st;
  }
  return out;
}

Result<bool> PdsmSemantics::InfersFormula(const Formula& f) {
  DD_ASSIGN_OR_RETURN(std::optional<PartialInterpretation> ce,
                      FindPartialCounterexample(f));
  return !ce.has_value();
}

Result<std::optional<PartialInterpretation>>
PdsmSemantics::FindPartialCounterexample(const Formula& f) {
  std::optional<PartialInterpretation> out;
  DD_RETURN_IF_ERROR(
      ForEachPartialStable([&](const PartialInterpretation& i) {
        if (f->Eval3(i) != TruthValue::kTrue) {
          out = i;
          return false;
        }
        return true;
      }));
  return out;
}

Result<std::optional<Interpretation>> PdsmSemantics::FindCounterexample(
    const Formula& f) {
  DD_ASSIGN_OR_RETURN(std::optional<PartialInterpretation> ce,
                      FindPartialCounterexample(f));
  if (!ce.has_value()) return std::optional<Interpretation>();
  return std::optional<Interpretation>(ce->TrueSet());
}

Result<bool> PdsmSemantics::HasModel() {
  if (db_.IsPositive()) {
    // The reduct of a positive DB is the DB itself; its 3-valued models
    // form a nonempty finite poset under the truth order, so truth-minimal
    // ones (= partial stable models) always exist — Table 1's O(1) entry.
    return true;
  }
  bool found = false;
  DD_RETURN_IF_ERROR(ForEachPartialStable([&](const PartialInterpretation&) {
    found = true;
    return false;
  }));
  return found;
}

}  // namespace dd
