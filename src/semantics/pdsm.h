// Partial (3-valued) Disjunctive Stable Model Semantics (Przymusinski 91),
// paper Section 5.2.
//
// Interpretations assign {0, 1/2, 1}. The 3-valued reduct DB^I replaces
// every negative body literal by its (constant) truth value under I; I is a
// partial stable model iff I is a truth-minimal 3-valued model of DB^I.
//
// Implementation: the two-bit encoding t(v) => nf(v) maps each 3-valued
// interpretation to a set of bits ordered exactly like the truth ordering
// (0=(0,0) < 1/2=(0,1) < 1=(1,1)), so 3-valued truth-minimality becomes
// ordinary subset-minimality of a derived two-valued database over 2n
// atoms, and the whole MinimalEngine machinery applies.
//
// Inference reads "F is inferred" as "F evaluates to true (1) in every
// partial stable model" (strong Kleene). Complexity: as DSM (paper: the
// same rows of Tables 1 and 2; model existence stays Σ₂ᵖ-hard even
// without integrity clauses, end of Section 5.2).
#ifndef DD_SEMANTICS_PDSM_H_
#define DD_SEMANTICS_PDSM_H_

#include <vector>

#include "minimal/pqz.h"
#include "semantics/semantics.h"

namespace dd {

class PdsmSemantics : public Semantics {
 public:
  explicit PdsmSemantics(const Database& db,
                         const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kPdsm; }

  /// Builds the reduct's bit-level database and runs one subset-minimality
  /// check (one SAT call).
  Result<bool> IsPartialStable(const PartialInterpretation& i);

  /// All partial stable models (exact-blocking enumeration over the
  /// two-bit encoding; bounded by options().max_candidates).
  Result<std::vector<PartialInterpretation>> PartialModels(int64_t cap = -1);

  /// The *total* partial stable models, i.e. precisely the disjunctive
  /// stable models (cross-checked against DsmSemantics in the tests).
  Result<std::vector<Interpretation>> Models(int64_t cap = -1) override;

  /// F true (value 1) in every partial stable model.
  Result<bool> InfersFormula(const Formula& f) override;

  /// The true-atom projection of a partial stable model in which f is not
  /// true; prefer FindPartialCounterexample for the full 3-valued witness.
  Result<std::optional<Interpretation>> FindCounterexample(
      const Formula& f) override;

  /// The 3-valued witness itself.
  Result<std::optional<PartialInterpretation>> FindPartialCounterexample(
      const Formula& f);

  Result<bool> HasModel() override;

  const MinimalStats& stats() const override { return engine_.stats(); }

  /// Installs the budget on the owned engine and the options (the reduct
  /// engines and the bit-model candidate solver inherit it).
  void SetBudget(std::shared_ptr<Budget> budget) override;

  /// Attaches the query trace to the owned (bit-level) engine; reduct
  /// engines run untraced and fold their counters into stats().
  void SetTrace(obs::TraceContext* trace) override { engine_.SetTrace(trace); }

  /// Session-reuse accounting of the owned engine.
  oracle::SessionStats session_stats() const override {
    return engine_.session_stats();
  }

  /// The two-bit encoding of the 3-valued models of the database itself
  /// (exposed for tests): atom v maps to bits t=v and nf=num_vars+v.
  const Database& bit_database() const { return bit_db_; }

  /// Bit-level <-> 3-valued conversions for the encoding above.
  PartialInterpretation DecodeBits(const Interpretation& bits) const;
  Interpretation EncodeBits(const PartialInterpretation& i) const;

 private:
  /// Visits partial stable models until `visit` returns false.
  Status ForEachPartialStable(
      const std::function<bool(const PartialInterpretation&)>& visit);

  Database BuildReductBitDb(const PartialInterpretation& i) const;

  Database db_;
  SemanticsOptions opts_;
  Database bit_db_;
  MinimalEngine engine_;  ///< over bit_db_ (accounting)
};

}  // namespace dd

#endif  // DD_SEMANTICS_PDSM_H_
