#include "semantics/perf.h"

#include "sat/solver.h"
#include "util/string_util.h"

namespace dd {

PerfSemantics::PerfSemantics(const Database& db, const SemanticsOptions& opts)
    : db_(db),
      opts_(opts),
      engine_(db, opts.minimal_options()),
      priority_(db),
      all_(Partition::MinimizeAll(db.num_vars())) {}

Status PerfSemantics::CheckSupported() const {
  if (db_.HasIntegrityClauses()) {
    return Status::FailedPrecondition(
        "PERF is defined for databases without integrity clauses "
        "(paper footnote 3)");
  }
  return Status::OK();
}

void PerfSemantics::SetBudget(std::shared_ptr<Budget> budget) {
  opts_.budget = budget;
  engine_.SetBudget(std::move(budget));
}

Result<bool> PerfSemantics::IsPerfect(const Interpretation& m) {
  DD_RETURN_IF_ERROR(CheckSupported());
  if (!db_.Satisfies(m)) return false;
  // One SAT call: does a model N preferable to m exist? N « m iff N ≠ m and
  // every x ∈ N∖m is dominated by some y ∈ m∖N with x < y. This is "DB plus
  // a few query clauses", so it rides the engine's persistent session (a
  // dedicated solver in --no-sessions mode); the per-candidate loop in
  // Models() makes it the hot PERF oracle call.
  MinimalEngine::Query q(&engine_);
  std::vector<Lit> differs;
  for (Var v = 0; v < db_.num_vars(); ++v) {
    differs.push_back(m.Contains(v) ? Lit::Neg(v) : Lit::Pos(v));
  }
  q.AddClause(std::move(differs));
  for (Var x = 0; x < db_.num_vars(); ++x) {
    if (m.Contains(x)) continue;
    std::vector<Lit> dom{Lit::Neg(x)};
    for (Var y : priority_.StrictlyAbove(x).TrueAtoms()) {
      if (m.Contains(y)) dom.push_back(Lit::Neg(y));
    }
    q.AddClause(std::move(dom));
  }
  sat::SolveResult r = q.Solve();
  if (engine_.interrupted()) {
    // kUnknown must not read as kUnsat ("perfect"): degrade to Status.
    return engine_.interrupt_status();
  }
  return r == sat::SolveResult::kUnsat;
}

Result<std::vector<Interpretation>> PerfSemantics::Models(int64_t cap) {
  DD_RETURN_IF_ERROR(CheckSupported());
  if (cap < 0) cap = opts_.max_models;
  std::vector<Interpretation> out;
  Status inner = Status::OK();
  int64_t candidates = 0;
  engine_.EnumerateMinimalProjections(
      all_, /*cap=*/-1, [&](const Interpretation& m) {
        if (++candidates > opts_.max_candidates) {
          inner = Status::ResourceExhausted("too many minimal models");
          return false;
        }
        Result<bool> perfect = IsPerfect(m);
        if (!perfect.ok()) {
          inner = perfect.status();
          return false;
        }
        if (*perfect) {
          out.push_back(m);
          if (static_cast<int64_t>(out.size()) >= cap) return false;
        }
        return true;
      });
  if (engine_.interrupted()) {
    // Anytime payload: each collected model passed IsPerfect before the
    // interrupt, so the set is a sound truncated prefix.
    partial_models_ = std::move(out);
    return engine_.interrupt_status();
  }
  if (!inner.ok()) {
    if (inner.IsBudgetExhaustion()) partial_models_ = std::move(out);
    return inner;
  }
  return out;
}

Result<std::vector<Interpretation>> PerfSemantics::ModelsByStrataIteration(
    int64_t cap) {
  DD_RETURN_IF_ERROR(CheckSupported());
  if (cap < 0) cap = opts_.max_models;
  DD_ASSIGN_OR_RETURN(Stratification strat, Stratify(db_));

  std::vector<Interpretation> out;
  Status inner = Status::OK();
  int64_t explored = 0;

  // Depth-first over strata: at level i extend the prefix (atoms of levels
  // < i) by every minimal completion of the clauses up to level i.
  std::function<void(int, const Interpretation&)> descend =
      [&](int level, const Interpretation& prefix) {
        if (!inner.ok() || static_cast<int64_t>(out.size()) >= cap) return;
        if (level == strat.num_strata) {
          out.push_back(prefix);
          return;
        }
        // Clauses up to this level, plus pins for the prefix atoms.
        Database dbi = db_.SelectClauses(strat.ClausesUpToLevel(level));
        for (Var v = 0; v < db_.num_vars(); ++v) {
          if (strat.atom_level[static_cast<size_t>(v)] < level) {
            if (prefix.Contains(v)) {
              dbi.AddClause(Clause::Fact({v}));
            } else {
              dbi.AddClause(Clause::Integrity({v}));
            }
          }
        }
        MinimalEngine e(dbi, opts_.minimal_options());
        Partition p = Partition::MinimizeAll(db_.num_vars());
        e.EnumerateMinimalProjections(
            p, /*cap=*/-1, [&](const Interpretation& m) {
              if (++explored > opts_.max_candidates) {
                inner = Status::ResourceExhausted(
                    "strata iteration explored too many candidates");
                return false;
              }
              // The completion keeps the prefix and fixes this level.
              descend(level + 1, m);
              return inner.ok() &&
                     static_cast<int64_t>(out.size()) < cap;
            });
        if (inner.ok() && e.interrupted()) inner = e.interrupt_status();
      };
  descend(0, Interpretation(db_.num_vars()));
  DD_RETURN_IF_ERROR(inner);
  return out;
}

Result<bool> PerfSemantics::InfersFormula(const Formula& f) {
  DD_ASSIGN_OR_RETURN(std::optional<Interpretation> ce,
                      FindCounterexample(f));
  return !ce.has_value();
}

Result<std::optional<Interpretation>> PerfSemantics::FindCounterexample(
    const Formula& f) {
  DD_RETURN_IF_ERROR(CheckSupported());
  // Counterexample search among the minimal models (perfect ⊆ minimal).
  std::optional<Interpretation> out;
  Status inner = Status::OK();
  int64_t candidates = 0;
  engine_.EnumerateMinimalProjections(
      all_, /*cap=*/-1, [&](const Interpretation& m) {
        if (++candidates > opts_.max_candidates) {
          inner = Status::ResourceExhausted("too many minimal models");
          return false;
        }
        if (f->Eval(m)) return true;  // satisfies F: not a counterexample
        Result<bool> perfect = IsPerfect(m);
        if (!perfect.ok()) {
          inner = perfect.status();
          return false;
        }
        if (*perfect) {
          out = m;
          return false;
        }
        return true;
      });
  if (!inner.ok()) return inner;
  if (!out.has_value() && engine_.interrupted()) {
    // No counterexample found, but the enumeration was cut short: "no
    // counterexample" would wrongly report the formula as inferred.
    return engine_.interrupt_status();
  }
  return out;
}

Result<bool> PerfSemantics::HasModel() {
  DD_RETURN_IF_ERROR(CheckSupported());
  if (db_.IsPositive()) {
    // Without negation there are no strict priorities, PERF = MM, and a
    // positive DB always has minimal models — Table 1's O(1) entry.
    return true;
  }
  DD_ASSIGN_OR_RETURN(std::vector<Interpretation> ms, Models(1));
  return !ms.empty();
}

}  // namespace dd
