// Perfect Models Semantics (Przymusinski 88), paper Section 5.1.
//
// The priority relation (strat/priority.h) induces a preference order on
// models: N is *preferable* to M (N « M) iff N ≠ M and every atom of N∖M is
// compensated by an atom of M∖N with strictly higher priority. A model is
// *perfect* when no model is preferable to it.
//
// Perfect models are minimal models (with no strict priorities, « collapses
// to ⊊), so PERF = MM on positive databases; on stratified databases the
// perfect models coincide with the iterated stratified minimal models,
// which this class also implements as an independent algorithm.
//
// Complexity: "is M perfect" is one SAT call (the paper's "DB' has no
// model" transformation); literal/formula inference Π₂ᵖ-complete; model
// existence Σ₂ᵖ-complete for DNDBs.
#ifndef DD_SEMANTICS_PERF_H_
#define DD_SEMANTICS_PERF_H_

#include "minimal/pqz.h"
#include "semantics/semantics.h"
#include "strat/priority.h"
#include "strat/stratifier.h"

namespace dd {

class PerfSemantics : public Semantics {
 public:
  /// Defined for databases without integrity clauses (paper footnote 3);
  /// operations fail with FailedPrecondition otherwise.
  explicit PerfSemantics(const Database& db, const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kPerf; }

  const PriorityRelation& priority() const { return priority_; }

  /// One SAT call: no model preferable to `m` exists. (This realizes the
  /// paper's reduction of the perfect-model check to unsatisfiability of a
  /// transformed database DB'.)
  Result<bool> IsPerfect(const Interpretation& m);

  /// Enumerates minimal models and filters by IsPerfect (perfect ⊆ minimal).
  Result<std::vector<Interpretation>> Models(int64_t cap = -1) override;

  /// Independent algorithm for stratified databases: stratum-wise iterated
  /// minimal models. FailedPrecondition when the DB is not stratifiable.
  Result<std::vector<Interpretation>> ModelsByStrataIteration(
      int64_t cap = -1);

  Result<bool> InfersFormula(const Formula& f) override;
  Result<bool> HasModel() override;

  /// A perfect model violating f, if any.
  Result<std::optional<Interpretation>> FindCounterexample(
      const Formula& f) override;

  const MinimalStats& stats() const override { return engine_.stats(); }

  /// Installs the budget on the owned engine and the options (the strata
  /// iteration's per-level engines inherit it from the options).
  void SetBudget(std::shared_ptr<Budget> budget) override;

  /// Attaches the query trace to the owned engine (per-level helper
  /// engines run untraced; their counters fold into stats()).
  void SetTrace(obs::TraceContext* trace) override { engine_.SetTrace(trace); }

  /// Session-reuse accounting of the owned engine.
  oracle::SessionStats session_stats() const override {
    return engine_.session_stats();
  }

 private:
  Status CheckSupported() const;

  Database db_;
  SemanticsOptions opts_;
  MinimalEngine engine_;
  PriorityRelation priority_;
  Partition all_;
};

}  // namespace dd

#endif  // DD_SEMANTICS_PERF_H_
