#include "semantics/pws.h"

#include <algorithm>
#include <set>

#include "fixpoint/ddr_fixpoint.h"
#include "semantics/pws_encoding.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dd {

namespace {

// A definite rule of a split program.
struct SplitRule {
  Var head;
  const std::vector<Var>* body;
};

// Least model of a set of definite rules (queue-based unit fixpoint).
Interpretation LeastModel(int num_vars, const std::vector<SplitRule>& rules) {
  struct Pending {
    Var head;
    int unsatisfied;
  };
  std::vector<Pending> pending;
  std::vector<std::vector<int>> watch(static_cast<size_t>(num_vars));
  std::vector<Var> queue;
  Interpretation derived(num_vars);
  auto derive = [&](Var v) {
    if (!derived.Contains(v)) {
      derived.Insert(v);
      queue.push_back(v);
    }
  };
  for (const SplitRule& r : rules) {
    if (r.body->empty()) {
      derive(r.head);
      continue;
    }
    int idx = static_cast<int>(pending.size());
    pending.push_back({r.head, static_cast<int>(r.body->size())});
    for (Var b : *r.body) watch[static_cast<size_t>(b)].push_back(idx);
  }
  while (!queue.empty()) {
    Var v = queue.back();
    queue.pop_back();
    for (int ri : watch[static_cast<size_t>(v)]) {
      if (--pending[static_cast<size_t>(ri)].unsatisfied == 0) {
        derive(pending[static_cast<size_t>(ri)].head);
      }
    }
  }
  return derived;
}

}  // namespace

PwsSemantics::PwsSemantics(const Database& db, const SemanticsOptions& opts)
    : ClosedWorldSemantics(db, opts),
      deductive_(!db.HasNegation()),
      positive_(deductive_ && !db.HasIntegrityClauses()) {}

Status PwsSemantics::CheckDeductive() const {
  if (!deductive_) {
    return Status::FailedPrecondition(
        "PWS is defined for deductive databases (no negation)");
  }
  return Status::OK();
}

Result<std::vector<Interpretation>> PwsSemantics::PossibleModels() {
  DD_RETURN_IF_ERROR(CheckDeductive());
  // Collect the rules (non-integrity clauses) and the integrity clauses.
  std::vector<const Clause*> rules;
  std::vector<const Clause*> constraints;
  for (const Clause& c : db().clauses()) {
    if (c.heads().size() > 31) {
      return Status::ResourceExhausted(
          "PWS split enumeration limited to heads of at most 31 atoms");
    }
    (c.is_integrity() ? constraints : rules).push_back(&c);
  }

  // Evaluates one split program (given by the choice masks) and inserts its
  // least model into `out` if the integrity clauses hold. `split` is the
  // caller's scratch buffer (avoids per-split allocation).
  auto process = [&](const std::vector<uint32_t>& choice,
                     std::vector<SplitRule>* split,
                     std::set<Interpretation>* out) {
    split->clear();
    for (size_t i = 0; i < rules.size(); ++i) {
      const Clause& c = *rules[i];
      uint32_t mask = choice[i];
      for (size_t h = 0; h < c.heads().size(); ++h) {
        if (mask & (1u << h)) split->push_back({c.heads()[h], &c.pos_body()});
      }
    }
    Interpretation lm = LeastModel(db().num_vars(), *split);
    for (const Clause* ic : constraints) {
      if (!ic->SatisfiedBy(lm)) return;
    }
    out->insert(std::move(lm));
  };

  std::set<Interpretation> found;

  if (options().num_threads > 1 && !rules.empty()) {
    // Parallel enumeration, partitioned by the first rule's head choice.
    // The split-count budget is checked upfront (saturating product of the
    // per-rule nonempty-subset counts), so workers run unthrottled; the
    // sequential path's budget check trips in exactly the same cases.
    // Each worker owns a std::set, merged below — the master set is the
    // canonical (sorted, deduplicated) union, so the result is identical
    // to the sequential enumeration for every thread count.
    int64_t total = 1;
    for (const Clause* r : rules) {
      const int64_t opts_r = (int64_t{1} << r->heads().size()) - 1;
      if (total > options().max_candidates / opts_r) {
        total = options().max_candidates + 1;
        break;
      }
      total *= opts_r;
    }
    if (total > options().max_candidates) {
      return Status::ResourceExhausted(StrFormat(
          "PWS split enumeration exceeded %lld splits",
          static_cast<long long>(options().max_candidates)));
    }
    const uint32_t full0 = (1u << rules[0]->heads().size()) - 1;
    std::vector<std::set<Interpretation>> partials(full0);
    const CancelToken* cancel =
        options().budget ? options().budget->cancel_token().get() : nullptr;
    ParallelFor(static_cast<int64_t>(full0), options().num_threads, cancel,
                [&](int64_t t) {
                  std::vector<uint32_t> choice(rules.size(), 1);
                  choice[0] = static_cast<uint32_t>(t) + 1;
                  std::vector<SplitRule> split;
                  int64_t ticks = 0;
                  for (;;) {
                    if (cancel != nullptr && ((++ticks & 255) == 0) &&
                        cancel->cancelled()) {
                      return;  // partial set discarded via the budget check
                    }
                    process(choice, &split, &partials[static_cast<size_t>(t)]);
                    // Advance the odometer over rules[1..] only; rule 0 is
                    // this task's fixed partition coordinate.
                    size_t i = 1;
                    for (; i < rules.size(); ++i) {
                      uint32_t full = (1u << rules[i]->heads().size()) - 1;
                      if (choice[i] < full) {
                        ++choice[i];
                        break;
                      }
                      choice[i] = 1;
                    }
                    if (i == rules.size()) break;  // inner odometer wrapped
                  }
                });
    // Deadline mid-enumeration: the merged set would be missing splits, so
    // degrade to Status instead of returning a too-small possible-model set.
    if (options().budget != nullptr && options().budget->Exhausted()) {
      return options().budget->ToStatus();
    }
    for (std::set<Interpretation>& p : partials) {
      found.insert(p.begin(), p.end());
    }
    return std::vector<Interpretation>(found.begin(), found.end());
  }

  int64_t splits_explored = 0;

  // Odometer over nonempty head subsets of every rule.
  std::vector<uint32_t> choice(rules.size(), 1);  // masks, start at {first}
  std::vector<SplitRule> split;
  for (;;) {
    if (++splits_explored > options().max_candidates) {
      return Status::ResourceExhausted(StrFormat(
          "PWS split enumeration exceeded %lld splits",
          static_cast<long long>(options().max_candidates)));
    }
    if (options().budget != nullptr && ((splits_explored & 255) == 0) &&
        options().budget->Exhausted()) {
      return options().budget->ToStatus();
    }
    process(choice, &split, &found);

    // Advance the odometer.
    size_t i = 0;
    for (; i < rules.size(); ++i) {
      uint32_t full = (1u << rules[i]->heads().size()) - 1;
      if (choice[i] < full) {
        ++choice[i];
        break;
      }
      choice[i] = 1;
    }
    if (i == rules.size()) break;  // odometer wrapped: done
    // Rules with empty choice impossible: masks start at 1.
  }
  return std::vector<Interpretation>(found.begin(), found.end());
}

Result<Interpretation> PwsSemantics::PossibleAtoms() {
  DD_RETURN_IF_ERROR(CheckDeductive());
  if (possible_atoms_.has_value()) return *possible_atoms_;
  if (positive_) {
    // Polynomial path: split choices are monotone, so the full-split least
    // model is itself a possible model containing every atom any possible
    // model contains.
    possible_atoms_ = DefiniteLeastModel(db());
    return *possible_atoms_;
  }
  if (options().pws_use_sat_encoding) {
    PwsEncodingStats stats;
    DD_ASSIGN_OR_RETURN(Interpretation atoms,
                        PossibleAtomsViaSat(db(), &stats, options().budget));
    MinimalStats ms;
    ms.sat_calls = stats.sat_calls;
    engine()->AbsorbStats(ms);
    possible_atoms_ = std::move(atoms);
    return *possible_atoms_;
  }
  DD_ASSIGN_OR_RETURN(std::vector<Interpretation> pms, PossibleModels());
  Interpretation atoms(db().num_vars());
  for (const auto& m : pms) {
    for (Var v : m.TrueAtoms()) atoms.Insert(v);
  }
  possible_atoms_ = std::move(atoms);
  return *possible_atoms_;
}

Result<bool> PwsSemantics::InfersLiteral(Lit l) {
  DD_RETURN_IF_ERROR(CheckDeductive());
  if (l.negative() && positive_) {
    DD_ASSIGN_OR_RETURN(Interpretation atoms, PossibleAtoms());
    // As with DDR: the atom set of the full split is a counter-model when
    // it contains x, and ¬x is part of the augmentation otherwise.
    return !atoms.Contains(l.var());
  }
  return InfersFormula(FormulaNode::MakeLit(l));
}

Result<bool> PwsSemantics::InfersFormula(const Formula& f) {
  DD_RETURN_IF_ERROR(CheckDeductive());
  return ClosedWorldSemantics::InfersFormula(f);
}

Result<bool> PwsSemantics::HasModel() {
  DD_RETURN_IF_ERROR(CheckDeductive());
  if (positive_) return true;
  return ClosedWorldSemantics::HasModel();
}

Result<Interpretation> PwsSemantics::ComputeNegatedAtoms() {
  DD_ASSIGN_OR_RETURN(Interpretation atoms, PossibleAtoms());
  Interpretation negs(db().num_vars());
  for (Var v = 0; v < db().num_vars(); ++v) {
    if (!atoms.Contains(v)) negs.Insert(v);
  }
  return negs;
}

}  // namespace dd
