// Possible Worlds Semantics (Chan 91) ≡ Possible Models Semantics
// (Sakama 89), paper Section 3.2.
//
// A *split* of DB selects a nonempty subset of every rule head; a possible
// model is the least model of the resulting definite program, provided it
// satisfies DB's integrity clauses. PWS augments DB with ¬x for every atom
// x false in all possible models:
//
//   PWS(DB) = M( DB ∪ {¬x : x ∉ ⋃ PM(DB)} )
//
// On positive databases the union of possible models equals the full-split
// least model (split choices are monotone), which is exactly the DDR
// fixpoint atom set — the polynomial path. Integrity clauses cut possible
// models away (Example 3.1: PWS |= ¬c where DDR does not) and push literal
// inference to coNP-completeness.
#ifndef DD_SEMANTICS_PWS_H_
#define DD_SEMANTICS_PWS_H_

#include <optional>
#include <vector>

#include "semantics/closed_world_base.h"

namespace dd {

class PwsSemantics : public ClosedWorldSemantics {
 public:
  /// Defined for deductive databases (no negation); operations fail with
  /// FailedPrecondition otherwise.
  explicit PwsSemantics(const Database& db, const SemanticsOptions& opts = {});

  SemanticsKind kind() const override { return SemanticsKind::kPws; }

  /// All possible models (deduplicated across splits). Exponential in the
  /// number of disjunctive rules; bounded by options().max_candidates.
  Result<std::vector<Interpretation>> PossibleModels();

  /// Negative literals on positive DBs use the polynomial full-split path.
  Result<bool> InfersLiteral(Lit l) override;

  Result<bool> InfersFormula(const Formula& f) override;
  Result<bool> HasModel() override;

 protected:
  Result<Interpretation> ComputeNegatedAtoms() override;

 private:
  Status CheckDeductive() const;
  /// Union of all possible models (computed once, then cached).
  Result<Interpretation> PossibleAtoms();

  /// Syntactic class, classified once at construction (the per-query
  /// HasNegation()/IsPositive() rescans used to dominate the P-time path).
  bool deductive_;
  bool positive_;
  std::optional<Interpretation> possible_atoms_;
};

}  // namespace dd

#endif  // DD_SEMANTICS_PWS_H_
