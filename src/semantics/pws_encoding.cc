#include "semantics/pws_encoding.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sat/solver.h"
#include "util/macros.h"

namespace dd {

namespace {

using sat::SolveResult;
using sat::Solver;

// Builder for the possible-model encoding. Variable layout:
//   [0, n)            x_v (shared with the database ids)
//   then K bits per atom, then selectors and auxiliaries as allocated.
class Encoder {
 public:
  explicit Encoder(const Database& db) : db_(db), n_(db.num_vars()) {
    // K = bits needed to count to n-1 (levels in [0, n)).
    k_ = 1;
    while ((1 << k_) < std::max(2, n_)) ++k_;
    next_ = static_cast<Var>(n_);
    level_base_ = next_;
    next_ += static_cast<Var>(n_ * k_);
    Build();
  }

  void LoadInto(Solver* s) const {
    s->EnsureVars(next_);
    for (const auto& cl : clauses_) s->AddClause(cl);
  }

  int num_vars() const { return next_; }
  int num_clauses() const { return static_cast<int>(clauses_.size()); }

  /// First variable beyond the encoding (for goal-side Tseitin).
  Var FreshBase() const { return next_; }

 private:
  Var LevelBit(Var v, int k) const {
    return level_base_ + static_cast<Var>(v) * k_ + static_cast<Var>(k);
  }

  Var Fresh() { return next_++; }

  void Emit(std::vector<Lit> cl) { clauses_.push_back(std::move(cl)); }

  // Returns a literal asserting level(b) < level(a) (binary comparison,
  // most significant bit first), built from fresh auxiliaries.
  Lit LessThan(Var b, Var a) {
    // lt_k: bits above k are equal and bit k has b=0, a=1.
    // result = ∨_k lt_k ; eq_k tracks equality of bits > k.
    Lit result = Lit::Pos(Fresh());
    std::vector<Lit> some_lt{~result};
    Lit eq_above;  // invalid for the most significant position
    for (int k = k_ - 1; k >= 0; --k) {
      Lit bb = Lit::Pos(LevelBit(b, k));
      Lit ab = Lit::Pos(LevelBit(a, k));
      Lit lt_k = Lit::Pos(Fresh());
      // lt_k -> ~bb, lt_k -> ab, lt_k -> eq_above.
      Emit({~lt_k, ~bb});
      Emit({~lt_k, ab});
      if (eq_above.valid()) Emit({~lt_k, eq_above});
      // Completeness direction: (~bb & ab & eq_above) -> lt_k.
      if (eq_above.valid()) {
        Emit({bb, ~ab, ~eq_above, lt_k});
      } else {
        Emit({bb, ~ab, lt_k});
      }
      some_lt.push_back(lt_k);
      // eq_k = eq_above & (bb == ab).
      if (k > 0) {
        Lit eq_k = Lit::Pos(Fresh());
        Emit({~eq_k, ~bb, ab});
        Emit({~eq_k, bb, ~ab});
        if (eq_above.valid()) {
          Emit({~eq_k, eq_above});
          Emit({eq_k, ~bb, ~ab, ~eq_above});
          Emit({eq_k, bb, ab, ~eq_above});
        } else {
          Emit({eq_k, ~bb, ~ab});
          Emit({eq_k, bb, ab});
        }
        eq_above = eq_k;
      }
    }
    // result -> some lt_k. (The reverse direction is unnecessary: the
    // soundness argument only needs "result => b<a", and satisfiability is
    // preserved because the completeness clauses force the lt_k whose bit
    // condition holds, after which result may be set freely.)
    Emit(std::move(some_lt));
    return result;
  }

  void Build() {
    // Collect rules (non-integrity) and constraints.
    for (int ci = 0; ci < db_.num_clauses(); ++ci) {
      const Clause& c = db_.clause(ci);
      if (c.is_integrity()) {
        // Classical: ∨_b ¬x_b (deductive DBs have positive bodies only).
        std::vector<Lit> cl;
        for (Var b : c.pos_body()) cl.push_back(Lit::Neg(b));
        Emit(std::move(cl));
        continue;
      }
      // Selectors.
      std::vector<Var> sel;
      sel.reserve(c.heads().size());
      for (size_t ai = 0; ai < c.heads().size(); ++ai) sel.push_back(Fresh());
      // (1) nonempty selection.
      std::vector<Lit> nonempty;
      for (Var s : sel) nonempty.push_back(Lit::Pos(s));
      Emit(std::move(nonempty));
      // (2) selected rules fire.
      for (size_t ai = 0; ai < c.heads().size(); ++ai) {
        std::vector<Lit> fire{Lit::Neg(sel[ai])};
        for (Var b : c.pos_body()) fire.push_back(Lit::Neg(b));
        fire.push_back(Lit::Pos(c.heads()[ai]));
        Emit(std::move(fire));
      }
      // Remember occurrences for the support constraints.
      for (size_t ai = 0; ai < c.heads().size(); ++ai) {
        occurrences_[c.heads()[ai]].push_back({ci, sel[ai]});
      }
    }
    // (3) support with acyclic levels.
    for (Var v = 0; v < n_; ++v) {
      std::vector<Lit> support{Lit::Neg(v)};
      auto it = occurrences_.find(v);
      if (it != occurrences_.end()) {
        for (const auto& [ci, sel] : it->second) {
          const Clause& c = db_.clause(ci);
          Lit y = Lit::Pos(Fresh());
          Emit({~y, Lit::Pos(sel)});
          for (Var b : c.pos_body()) {
            Emit({~y, Lit::Pos(b)});
            Lit lt = LessThan(b, v);
            Emit({~y, lt});
          }
          support.push_back(y);
        }
      }
      Emit(std::move(support));
    }
  }

  const Database& db_;
  int n_;
  int k_;
  Var next_;
  Var level_base_;
  std::vector<std::vector<Lit>> clauses_;
  std::unordered_map<Var, std::vector<std::pair<int, Var>>> occurrences_;
};

Status RequireDeductive(const Database& db) {
  if (db.HasNegation()) {
    return Status::FailedPrecondition(
        "the possible-model encoding requires a deductive database");
  }
  return Status::OK();
}

Result<bool> Query(const Database& db,
                   const std::function<void(Solver*, Var)>& add_goal,
                   Interpretation* witness, PwsEncodingStats* stats,
                   const std::shared_ptr<Budget>& budget) {
  DD_RETURN_IF_ERROR(RequireDeductive(db));
  Encoder enc(db);
  Solver s;
  s.SetBudget(budget);
  enc.LoadInto(&s);
  add_goal(&s, enc.FreshBase());
  SolveResult r = s.Solve();
  if (stats != nullptr) {
    stats->encoded_vars = enc.num_vars();
    stats->encoded_clauses = enc.num_clauses();
    stats->sat_calls += s.stats().solve_calls;
  }
  if (r == SolveResult::kUnknown) {
    // Budget exhaustion or an injected fault: degrade to Status; folding
    // kUnknown into "no possible model" would flip downstream inferences.
    return BudgetOrUnknownStatus(budget, "possible-model encoding oracle unknown");
  }
  if (r == SolveResult::kSat && witness != nullptr) {
    *witness = s.Model(db.num_vars());
  }
  return r == SolveResult::kSat;
}

}  // namespace

Result<bool> ExistsPossibleModelWith(const Database& db, Lit goal_lit,
                                     Interpretation* witness,
                                     PwsEncodingStats* stats,
                                     const std::shared_ptr<Budget>& budget) {
  return Query(
      db, [&](Solver* s, Var) { s->AddUnit(goal_lit); }, witness, stats,
      budget);
}

Result<bool> ExistsPossibleModelViolating(const Database& db,
                                          const Formula& f,
                                          Interpretation* witness,
                                          PwsEncodingStats* stats,
                                          const std::shared_ptr<Budget>& budget) {
  return Query(
      db,
      [&](Solver* s, Var fresh) {
        Var next = fresh;
        std::vector<std::vector<Lit>> fcnf;
        Lit fl = TseitinEncode(f, &next, &fcnf);
        s->EnsureVars(next);
        for (auto& cl : fcnf) s->AddClause(std::move(cl));
        s->AddUnit(~fl);
      },
      witness, stats, budget);
}

Result<Interpretation> PossibleAtomsViaSat(const Database& db,
                                           PwsEncodingStats* stats,
                                           const std::shared_ptr<Budget>& budget) {
  DD_RETURN_IF_ERROR(RequireDeductive(db));
  Interpretation atoms(db.num_vars());
  Interpretation decided(db.num_vars());
  for (Var v = 0; v < db.num_vars(); ++v) {
    if (decided.Contains(v)) continue;
    Interpretation witness;
    DD_ASSIGN_OR_RETURN(
        bool in_some, ExistsPossibleModelWith(db, Lit::Pos(v), &witness,
                                              stats, budget));
    decided.Insert(v);
    if (in_some) {
      // The whole witness settles its atoms positively.
      for (Var w : witness.TrueAtoms()) {
        atoms.Insert(w);
        decided.Insert(w);
      }
    }
  }
  return atoms;
}

}  // namespace dd
