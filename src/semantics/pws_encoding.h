// SAT encoding of possible-model search for PWS (extension module).
//
// The paper's coNP upper bound for PWS literal inference with integrity
// clauses rests on "guess a possible world, verify in P". The split
// enumeration in PwsSemantics realizes the verifier but explores splits
// exhaustively; this module implements the guess as a single SAT query, so
// a possible model containing a given atom (or violating a formula) is
// found in one NP-oracle call.
//
// Encoding ("level" justification of least models): variables
//   x_v       atom v true in the possible model
//   s_{r,a}   head atom a selected in the split of rule r
//   l_{v,k}   binary level bits per atom (K = ceil(lg n))
// with clauses
//   (1) each rule selects a nonempty head subset:  ∨_a s_{r,a}
//   (2) selected rules fire:  s_{r,a} ∧ body -> x_a
//   (3) every true atom is supported by a selected rule whose body is true
//       at strictly smaller levels (acyclic justification), via one
//       auxiliary y_{r,a} per head occurrence and bitwise < comparators.
// Integrity clauses are added classically over the x variables.
//
// M satisfies (1)-(3) iff M is the least model of the selected split (the
// level function witnesses derivability; conversely derivation order gives
// levels), so SAT(encoding ∧ goal) decides "∃ possible model ⊨ goal".
#ifndef DD_SEMANTICS_PWS_ENCODING_H_
#define DD_SEMANTICS_PWS_ENCODING_H_

#include <memory>
#include <optional>

#include "logic/database.h"
#include "logic/formula.h"
#include "logic/interpretation.h"
#include "util/budget.h"
#include "util/status.h"

namespace dd {

/// Statistics for one encoded query.
struct PwsEncodingStats {
  int encoded_vars = 0;
  int encoded_clauses = 0;
  int64_t sat_calls = 0;
};

/// Decides whether some possible model of `db` satisfies `goal_lit`.
/// On success, `witness` (if non-null) receives such a possible model.
/// Requires db.IsDeductive(). A non-null `budget` is installed on the
/// encoded solver; exhaustion (or an injected fault) surfaces as the
/// budget's Status rather than a wrong answer.
Result<bool> ExistsPossibleModelWith(
    const Database& db, Lit goal_lit, Interpretation* witness = nullptr,
    PwsEncodingStats* stats = nullptr,
    const std::shared_ptr<Budget>& budget = nullptr);

/// Decides whether some possible model of `db` violates `f`
/// (the counterexample query of PWS formula inference over possible
/// models). Requires db.IsDeductive().
Result<bool> ExistsPossibleModelViolating(
    const Database& db, const Formula& f, Interpretation* witness = nullptr,
    PwsEncodingStats* stats = nullptr,
    const std::shared_ptr<Budget>& budget = nullptr);

/// The union of all possible models computed through the encoding: one SAT
/// query per undecided atom (with witness propagation). This is the
/// polynomially-many-oracle-calls realization of PWS's negation set.
Result<Interpretation> PossibleAtomsViaSat(
    const Database& db, PwsEncodingStats* stats = nullptr,
    const std::shared_ptr<Budget>& budget = nullptr);

}  // namespace dd

#endif  // DD_SEMANTICS_PWS_ENCODING_H_
