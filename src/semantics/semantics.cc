#include "semantics/semantics.h"

#include <utility>

#include "minimal/pqz.h"
#include "semantics/ccwa.h"
#include "semantics/cwa.h"
#include "semantics/ddr.h"
#include "semantics/dsm.h"
#include "semantics/ecwa_circ.h"
#include "semantics/egcwa.h"
#include "semantics/gcwa.h"
#include "semantics/icwa.h"
#include "semantics/pdsm.h"
#include "semantics/perf.h"
#include "semantics/pws.h"
#include "util/macros.h"

namespace dd {

const char* SemanticsKindName(SemanticsKind k) {
  switch (k) {
    case SemanticsKind::kCwa:
      return "CWA";
    case SemanticsKind::kGcwa:
      return "GCWA";
    case SemanticsKind::kEgcwa:
      return "EGCWA";
    case SemanticsKind::kCcwa:
      return "CCWA";
    case SemanticsKind::kEcwa:
      return "ECWA";
    case SemanticsKind::kDdr:
      return "DDR";
    case SemanticsKind::kPws:
      return "PWS";
    case SemanticsKind::kPerf:
      return "PERF";
    case SemanticsKind::kIcwa:
      return "ICWA";
    case SemanticsKind::kDsm:
      return "DSM";
    case SemanticsKind::kPdsm:
      return "PDSM";
  }
  DD_CHECK(false);
  return "?";
}

std::optional<SemanticsKind> SemanticsKindFromName(std::string_view name) {
  std::string lower(name);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  static const std::pair<const char*, SemanticsKind> kMap[] = {
      {"cwa", SemanticsKind::kCwa},     {"gcwa", SemanticsKind::kGcwa},
      {"egcwa", SemanticsKind::kEgcwa}, {"ccwa", SemanticsKind::kCcwa},
      {"ecwa", SemanticsKind::kEcwa},   {"circ", SemanticsKind::kEcwa},
      {"ddr", SemanticsKind::kDdr},     {"wgcwa", SemanticsKind::kDdr},
      {"pws", SemanticsKind::kPws},     {"pms", SemanticsKind::kPws},
      {"perf", SemanticsKind::kPerf},   {"icwa", SemanticsKind::kIcwa},
      {"dsm", SemanticsKind::kDsm},     {"pdsm", SemanticsKind::kPdsm},
  };
  for (const auto& [n, kind] : kMap) {
    if (lower == n) return kind;
  }
  return std::nullopt;
}

Result<bool> Semantics::InfersLiteral(Lit l) {
  return InfersFormula(FormulaNode::MakeLit(l));
}

Result<bool> Semantics::InfersCredulously(const Formula& f) {
  // A model violating ~f is exactly a model satisfying f.
  DD_ASSIGN_OR_RETURN(std::optional<Interpretation> witness,
                      FindCounterexample(FormulaNode::MakeNot(f)));
  return witness.has_value();
}

Result<std::shared_ptr<const std::vector<Interpretation>>>
Semantics::SharedModels(int64_t cap) {
  DD_ASSIGN_OR_RETURN(std::vector<Interpretation> models, Models(cap));
  return std::shared_ptr<const std::vector<Interpretation>>(
      std::make_shared<std::vector<Interpretation>>(std::move(models)));
}

Result<std::optional<Interpretation>> Semantics::FindCounterexample(
    const Formula& f) {
  DD_ASSIGN_OR_RETURN(std::vector<Interpretation> models, Models());
  for (const Interpretation& m : models) {
    if (!f->Eval(m)) return std::optional<Interpretation>(m);
  }
  return std::optional<Interpretation>();
}

std::unique_ptr<Semantics> MakeSemantics(SemanticsKind kind,
                                         const Database& db,
                                         const SemanticsOptions& opts) {
  switch (kind) {
    case SemanticsKind::kCwa:
      return std::make_unique<CwaSemantics>(db, opts);
    case SemanticsKind::kGcwa:
      return std::make_unique<GcwaSemantics>(db, opts);
    case SemanticsKind::kEgcwa:
      return std::make_unique<EgcwaSemantics>(db, opts);
    case SemanticsKind::kCcwa:
      return std::make_unique<CcwaSemantics>(
          db, Partition::MinimizeAll(db.num_vars()), opts);
    case SemanticsKind::kEcwa:
      return std::make_unique<EcwaSemantics>(
          db, Partition::MinimizeAll(db.num_vars()), opts);
    case SemanticsKind::kDdr:
      return std::make_unique<DdrSemantics>(db, opts);
    case SemanticsKind::kPws:
      return std::make_unique<PwsSemantics>(db, opts);
    case SemanticsKind::kPerf:
      return std::make_unique<PerfSemantics>(db, opts);
    case SemanticsKind::kIcwa:
      return std::make_unique<IcwaSemantics>(db, opts);
    case SemanticsKind::kDsm:
      return std::make_unique<DsmSemantics>(db, opts);
    case SemanticsKind::kPdsm:
      return std::make_unique<PdsmSemantics>(db, opts);
  }
  DD_CHECK(false);
  return nullptr;
}

}  // namespace dd
