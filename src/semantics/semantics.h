// The common interface of the paper's database semantics.
//
// Every semantics assigns a database DB a set of "intended" models (for
// PDSM, three-valued ones). The three decision problems the paper studies
// are exposed uniformly:
//
//   InfersLiteral(l)  - is l true in every intended model?
//   InfersFormula(F)  - is F true in every intended model?
//   HasModel()        - is the intended-model set nonempty?
//
// Implementations are algorithm-faithful to the paper's membership proofs:
// their oracle structure (SAT calls, CEGAR refinements) is counted and
// reported through stats().
#ifndef DD_SEMANTICS_SEMANTICS_H_
#define DD_SEMANTICS_SEMANTICS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "logic/database.h"
#include "logic/formula.h"
#include "logic/interpretation.h"
#include "minimal/minimal_models.h"
#include "obs/trace.h"
#include "util/status.h"

namespace dd {

/// Tuning knobs shared by all semantics.
struct SemanticsOptions {
  /// Upper bound on models returned by Models().
  int64_t max_models = 1000000;
  /// Upper bound on candidate interpretations examined by enumeration-based
  /// procedures (PWS splits, PERF/DSM candidate loops, PDSM bit models).
  /// Exceeding it yields ResourceExhausted rather than a wrong answer.
  int64_t max_candidates = 1000000;
  /// PWS: compute the possible-atom set through the SAT encoding
  /// (semantics/pws_encoding.h) instead of split enumeration. One NP-oracle
  /// call per undecided atom; immune to split blowup.
  bool pws_use_sat_encoding = false;
  /// Reasoner: route queries through the static-analysis dispatch layer
  /// (analysis/dispatch.h), which downgrades to polynomial engines when
  /// ProgramProperties proves the input easy (Tables 1/2). Answers are
  /// identical to the generic path; off forces the generic engines.
  bool analysis_dispatch = true;
  /// Route NP-oracle calls through one persistent incremental session per
  /// database (src/oracle/sat_session.h) instead of a fresh solver per
  /// call. Answers are identical in both modes; off restores the
  /// historical baseline (the benches' --no-sessions A/B leg).
  bool use_sessions = true;
  /// Worker threads for the parallel helpers (bulk minimality checks, DDR
  /// expansion rounds, PWS split scanning). Results are bit-identical for
  /// every value; <= 1 runs serially on the calling thread.
  int num_threads = 1;
  /// Shared query budget (deadline / global conflict / oracle-call limits);
  /// null = unbudgeted. Inherited by every engine and solver the semantics
  /// creates. Exhaustion surfaces as kDeadlineExceeded/kResourceExhausted —
  /// answers degrade to Unknown, never to a wrong yes/no. Installed
  /// per-query via Semantics::SetBudget (see core/Reasoner's QueryOptions).
  std::shared_ptr<Budget> budget;

  /// Answer minimality checks through the polynomial founded-fixpoint test
  /// when the engine's database is deductive and head-cycle-free
  /// (minimal/hcf.h; EnginePath::kHcfUnfounded). Inherited by every owned
  /// and helper MinimalEngine, each of which re-verifies applicability on
  /// its own (possibly derived) database. Off by default; the Reasoner
  /// enables it on dedicated engine instances so baseline oracle-call
  /// accounting is untouched.
  bool hcf_minimality = false;

  /// Certificate sink for the HCF fast path (see MinimalOptions); not
  /// owned, may be null. Set by the Reasoner in --certify mode only.
  std::vector<analysis::Certificate>* hcf_certificates = nullptr;

  /// Entry cap for each engine's minimality memo and cap on its live
  /// memoized projection streams (see MinimalOptions; <= 0 = unbounded).
  /// Evictions cost recomputation only and are counted in
  /// SessionStats::cache_evictions (dd.oracle.cache_evictions).
  int64_t oracle_cache_cap = 1 << 20;
  int64_t projection_stream_cap = 64;

  /// The engine-level tuning derived from these options.
  MinimalOptions minimal_options() const {
    MinimalOptions mo;
    mo.use_sessions = use_sessions;
    mo.budget = budget;
    mo.hcf_minimality = hcf_minimality;
    mo.hcf_certificates = hcf_certificates;
    mo.oracle_cache_cap = oracle_cache_cap;
    mo.projection_stream_cap = projection_stream_cap;
    return mo;
  }
};

/// Identifier for each implemented semantics.
enum class SemanticsKind {
  kCwa,  ///< Reiter's CWA (baseline the paper departs from)
  kGcwa,
  kEgcwa,
  kCcwa,
  kEcwa,  ///< identical to propositional circumscription (CIRC)
  kDdr,   ///< identical to WGCWA
  kPws,   ///< identical to PMS
  kPerf,
  kIcwa,
  kDsm,
  kPdsm,
};

/// Short uppercase name ("GCWA", ...).
const char* SemanticsKindName(SemanticsKind k);

/// Parses a (case-insensitive) semantics name, accepting the paper's
/// aliases: "circ" = ECWA, "wgcwa" = DDR, "pms" = PWS. This is the one
/// name table the CLI shells, the --batch/.queries parser and the serve
/// protocol all share. Returns nullopt for unknown names.
std::optional<SemanticsKind> SemanticsKindFromName(std::string_view name);

/// Abstract base for all semantics.
class Semantics {
 public:
  virtual ~Semantics() = default;

  virtual SemanticsKind kind() const = 0;
  std::string name() const { return SemanticsKindName(kind()); }

  /// Skeptical inference of a propositional formula.
  virtual Result<bool> InfersFormula(const Formula& f) = 0;

  /// Skeptical inference of a literal. Default delegates to InfersFormula;
  /// semantics with cheaper literal paths (DDR, PWS, GCWA) override it.
  virtual Result<bool> InfersLiteral(Lit l);

  /// Does the database possess a model under this semantics?
  virtual Result<bool> HasModel() = 0;

  /// The intended two-valued models, up to `cap` (< 0: options cap).
  /// PDSM overrides the three-valued variant instead and reports its total
  /// stable models here.
  virtual Result<std::vector<Interpretation>> Models(int64_t cap = -1) = 0;

  /// Models() with shared ownership, for consumers that hold the model
  /// set beyond the engine's lifetime (the batch layer's model banks,
  /// batch/model_bank_store.h). The default moves the Models(cap) result
  /// into a freshly allocated handle — still a single materialization.
  /// Engines whose enumeration is memoized override it to alias internal
  /// storage (EGCWA hands out its exhausted projection stream), so the
  /// stream, the in-flight bank and the store all reference ONE copy.
  /// Same cap/overflow conventions as Models().
  virtual Result<std::shared_ptr<const std::vector<Interpretation>>>
  SharedModels(int64_t cap = -1);

  /// A certificate for a failed inference: an intended model violating `f`,
  /// or nullopt when f is inferred. The default enumerates Models() (so it
  /// may hit the resource caps); semantics with native counterexample
  /// search override it. (PDSM reports the true-atom projection of a
  /// partial counterexample.)
  virtual Result<std::optional<Interpretation>> FindCounterexample(
      const Formula& f);

  /// Brave (credulous) inference: is f true in *some* intended model?
  /// The dual of InfersFormula, realized through FindCounterexample(~f)
  /// (the complexity jumps from the paper's Π-side classes to their
  /// Σ-side duals, the variant Schaerf's related work analyzes).
  /// Under PDSM's 3-valued reading this asks for a partial stable model in
  /// which f is not false.
  Result<bool> InfersCredulously(const Formula& f);

  /// Cumulative oracle accounting.
  virtual const MinimalStats& stats() const = 0;

  /// Installs (or with nullptr removes) a shared query budget on this
  /// semantics and every engine/solver it owns, clearing any interrupt
  /// latched by a previous budgeted query. While a budget is attached,
  /// the Result-returning entry points answer
  /// kDeadlineExceeded/kResourceExhausted on exhaustion; any OK answer is
  /// identical to the unbudgeted one ("Unknown is allowed, wrong is not",
  /// docs/ROBUSTNESS.md).
  virtual void SetBudget(std::shared_ptr<Budget> budget) = 0;

  /// Attaches (nullptr detaches) a query trace to this semantics and the
  /// engine(s) it owns: the owned MinimalEngine opens one "minimal"-layer
  /// span per outermost operation. Helper/reduct engines spawned during a
  /// query run untraced — their counters fold into the owning engine's
  /// stats and are attributed to the enclosing span. Installed per query
  /// by core/Reasoner; see obs/trace.h and docs/OBSERVABILITY.md.
  virtual void SetTrace(obs::TraceContext* trace) = 0;

  /// Session-reuse accounting of the owned engine(s) (all zero in
  /// fresh-solver mode). The benches and the reasoner's trace spans report
  /// cache_hits from here.
  virtual oracle::SessionStats session_stats() const = 0;

  /// Anytime payload: the models a Models() call had already collected when
  /// it was cut short by budget exhaustion (the call itself returns the
  /// exhaustion Status). Moving-out; cleared by the next Models() call.
  /// Every returned model IS an intended model — the set is merely
  /// truncated, per the anytime-soundness contract.
  std::vector<Interpretation> TakePartialModels() {
    return std::move(partial_models_);
  }

 protected:
  /// Implementations stash their collected-so-far models here before
  /// returning an exhaustion Status from Models().
  std::vector<Interpretation> partial_models_;
};

/// Factory covering the semantics that need no extra parameters
/// (CCWA/ECWA require a partition and have their own constructors; the
/// factory instantiates them with the all-minimized partition, under which
/// CCWA degenerates to GCWA and ECWA to EGCWA).
std::unique_ptr<Semantics> MakeSemantics(SemanticsKind kind,
                                         const Database& db,
                                         const SemanticsOptions& opts = {});

}  // namespace dd

#endif  // DD_SEMANTICS_SEMANTICS_H_
