#include "semantics/wfs.h"

#include "fixpoint/ddr_fixpoint.h"
#include "util/macros.h"

namespace dd {

namespace {

Status CheckNormal(const Database& db) {
  for (const Clause& c : db.clauses()) {
    if (c.is_integrity()) {
      return Status::FailedPrecondition(
          "WFS is defined for programs without integrity clauses");
    }
    if (!c.is_normal_rule()) {
      return Status::FailedPrecondition(
          "WFS is defined for normal (non-disjunctive) programs");
    }
  }
  return Status::OK();
}

// Γ(S): least model of the GL-reduct of db w.r.t. S.
Interpretation Gamma(const Database& db, const Interpretation& s) {
  return DefiniteLeastModel(db.GlReduct(s));
}

}  // namespace

Result<PartialInterpretation> WellFoundedModel(const Database& db) {
  DD_RETURN_IF_ERROR(CheckNormal(db));
  const int n = db.num_vars();
  // Alternate from the empty set: T_0 = ∅, U_0 = Γ(∅) ⊇ everything
  // derivable, then T_{i+1} = Γ(U_i), U_{i+1} = Γ(T_{i+1}).
  Interpretation t(n);
  Interpretation u = Gamma(db, t);
  for (;;) {
    Interpretation t_next = Gamma(db, u);
    Interpretation u_next = Gamma(db, t_next);
    if (t_next == t && u_next == u) break;
    t = t_next;
    u = u_next;
  }
  DD_CHECK(t.SubsetOf(u));
  PartialInterpretation out(n);
  for (Var v = 0; v < n; ++v) {
    if (t.Contains(v)) {
      out.SetValue(v, TruthValue::kTrue);
    } else if (!u.Contains(v)) {
      out.SetValue(v, TruthValue::kFalse);
    } else {
      out.SetValue(v, TruthValue::kUndef);
    }
  }
  return out;
}

Result<bool> WellFoundedModelIsTotal(const Database& db) {
  DD_ASSIGN_OR_RETURN(PartialInterpretation wfm, WellFoundedModel(db));
  return wfm.IsTotal();
}

}  // namespace dd
