// Well-Founded Semantics for normal (non-disjunctive) logic programs
// (van Gelder, Ross & Schlipf [29]) — the semantics PDSM extends.
//
// Extension module: the paper defines PDSM as the disjunctive
// generalization of WFS; this module implements WFS directly through the
// alternating-fixpoint construction and the tests confirm the relationship
// on normal programs (the well-founded model is the knowledge-least
// partial stable model; a total well-founded model is the unique stable
// model).
//
// Alternating fixpoint: for a set of atoms S, let Γ(S) be the least model
// of the GL-reduct DB^S. Γ is antitone, Γ² is monotone; iterating from ∅
// yields the least fixpoint T of Γ² and its companion U = Γ(T) with
// T ⊆ U. The well-founded model makes T true, complement(U) false and
// U \ T undefined.
#ifndef DD_SEMANTICS_WFS_H_
#define DD_SEMANTICS_WFS_H_

#include "logic/database.h"
#include "logic/partial_interpretation.h"
#include "util/status.h"

namespace dd {

/// Computes the well-founded model of a normal logic program (every clause
/// has at most one head atom; integrity clauses are rejected — WFS is a
/// single-model semantics and constraints would need a paraconsistent
/// treatment). Polynomial time; no oracle involved.
Result<PartialInterpretation> WellFoundedModel(const Database& db);

/// Convenience: the well-founded model is total iff the program has a
/// unique stable model equal to its true part.
Result<bool> WellFoundedModelIsTotal(const Database& db);

}  // namespace dd

#endif  // DD_SEMANTICS_WFS_H_
