#include "serve/request_gate.h"

#include <algorithm>

#include "util/macros.h"

namespace dd {
namespace serve {

RequestGate::Ticket& RequestGate::Ticket::operator=(Ticket&& o) noexcept {
  if (this != &o) {
    Release();
    gate_ = o.gate_;
    o.gate_ = nullptr;
  }
  return *this;
}

void RequestGate::Ticket::Release() {
  if (gate_ != nullptr) {
    gate_->Release();
    gate_ = nullptr;
  }
}

RequestGate::RequestGate(const Options& opts) : opts_(opts) {
  DD_CHECK(opts_.max_concurrent >= 1);
  DD_CHECK(opts_.max_queue >= 0);
}

Result<RequestGate::Ticket> RequestGate::Enter() {
  std::unique_lock<std::mutex> lock(mu_);
  if (shutdown_) {
    ++stats_.shed;
    return Status::Unavailable("gate shut down");
  }
  if (in_flight_ < opts_.max_concurrent && waiting_ == 0) {
    ++in_flight_;
    ++stats_.admitted;
    return Ticket(this);
  }
  if (waiting_ >= opts_.max_queue) {
    // The load-shedding answer: refuse NOW rather than queue unboundedly.
    ++stats_.shed;
    return Status::Unavailable("queue full");
  }
  const uint64_t my_seq = next_seq_++;
  ++waiting_;
  ++stats_.queued;
  stats_.queue_peak = std::max<int64_t>(stats_.queue_peak, waiting_);
  cv_.wait(lock, [&] {
    return shutdown_ ||
           (serving_seq_ == my_seq && in_flight_ < opts_.max_concurrent);
  });
  --waiting_;
  if (shutdown_) {
    ++stats_.shed;
    cv_.notify_all();
    return Status::Unavailable("gate shut down");
  }
  ++serving_seq_;
  ++in_flight_;
  ++stats_.admitted;
  cv_.notify_all();  // the next FIFO waiter may also be admittable
  return Ticket(this);
}

void RequestGate::Release() {
  std::lock_guard<std::mutex> lock(mu_);
  --in_flight_;
  cv_.notify_all();
}

void RequestGate::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

int RequestGate::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_flight_;
}

int RequestGate::waiting() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_;
}

RequestGate::Stats RequestGate::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace serve
}  // namespace dd
