// Admission control for the serving layer: a concurrency cap, a bounded
// wait queue, and load shedding.
//
// The paper's complexity results guarantee that some requests are slow —
// Pi2p-hard queries cannot be made uniformly fast, only bounded. A server
// that queues unboundedly therefore converts one adversarial query into
// unbounded memory growth and unbounded tail latency for everyone behind
// it. The RequestGate makes the overload behaviour explicit:
//
//   * at most `max_concurrent` requests hold an execution slot;
//   * at most `max_queue` further requests wait for one;
//   * anything beyond that is shed immediately with
//     StatusCode::kUnavailable — a first-class "try again later" answer,
//     sibling to kUnknown in the degradation ladder (docs/SERVING.md):
//     Unknown means "ran out of budget computing", Unavailable means
//     "refused to start". Both are allowed; wrong is not.
//
// Enter() blocks (queued) until a slot frees or the gate shuts down;
// admission is FIFO among waiters. The returned Ticket releases the slot
// on destruction (RAII), so a throwing/early-returning caller can never
// leak a slot.
#ifndef DD_SERVE_REQUEST_GATE_H_
#define DD_SERVE_REQUEST_GATE_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/status.h"

namespace dd {
namespace serve {

class RequestGate {
 public:
  struct Options {
    int max_concurrent = 1;  ///< execution slots (>= 1)
    int max_queue = 16;      ///< waiters beyond the slots; 0 = shed at cap
  };

  /// Counters published under dd.serve.* (docs/OBSERVABILITY.md).
  struct Stats {
    int64_t admitted = 0;    ///< requests that got a slot
    int64_t shed = 0;        ///< requests refused with kUnavailable
    int64_t queued = 0;      ///< admitted requests that had to wait first
    int64_t queue_peak = 0;  ///< max waiters observed
  };

  /// RAII execution slot. A default-constructed (or moved-from) ticket
  /// holds nothing; ok() says whether admission succeeded.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : gate_(o.gate_) { o.gate_ = nullptr; }
    Ticket& operator=(Ticket&& o) noexcept;
    ~Ticket() { Release(); }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;

    bool ok() const { return gate_ != nullptr; }
    void Release();

   private:
    friend class RequestGate;
    explicit Ticket(RequestGate* gate) : gate_(gate) {}
    RequestGate* gate_ = nullptr;
  };

  explicit RequestGate(const Options& opts);

  /// Admits the caller, waiting in the bounded queue when all slots are
  /// busy. Returns a holding Ticket, or kUnavailable when the queue is
  /// full (load shed) or the gate was shut down while waiting.
  Result<Ticket> Enter();

  /// Wakes every waiter with kUnavailable and sheds all future Enter()s.
  /// Slots already handed out stay valid until released.
  void Shutdown();

  int in_flight() const;  ///< slots currently held
  int waiting() const;    ///< callers blocked in Enter()
  Stats stats() const;

 private:
  const Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int in_flight_ = 0;
  int waiting_ = 0;
  uint64_t next_seq_ = 0;    ///< FIFO order among waiters
  uint64_t serving_seq_ = 0; ///< lowest seq not yet admitted
  bool shutdown_ = false;
  Stats stats_;

  void Release();
};

}  // namespace serve
}  // namespace dd

#endif  // DD_SERVE_REQUEST_GATE_H_
