#include "serve/retry_ladder.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dd {
namespace serve {

namespace {

int64_t ScaleAxis(int64_t initial, int64_t ceiling, double growth, int rung) {
  if (initial < 0) return -1;  // unlimited stays unlimited
  const double scaled = static_cast<double>(initial) * std::pow(growth, rung);
  int64_t v;
  if (scaled >= static_cast<double>(std::numeric_limits<int64_t>::max()) / 2) {
    v = std::numeric_limits<int64_t>::max() / 2;  // overflow clamp
  } else {
    v = static_cast<int64_t>(scaled);
  }
  v = std::max<int64_t>(v, 1);
  if (ceiling >= 0) v = std::min(v, ceiling);
  return v;
}

}  // namespace

Budget::Limits RungLimits(const RetryPolicy& policy, int rung) {
  const double growth = policy.growth > 1.0 ? policy.growth : 1.0;
  Budget::Limits lim;
  lim.conflict_budget =
      ScaleAxis(policy.initial_conflicts, policy.conflict_ceiling, growth, rung);
  lim.oracle_call_budget = ScaleAxis(policy.initial_oracle_calls,
                                     policy.oracle_call_ceiling, growth, rung);
  lim.deadline_ms = ScaleAxis(policy.initial_deadline_ms,
                              policy.deadline_ceiling_ms, growth, rung);
  return lim;
}

LadderResult RunLadder(const RetryPolicy& policy, const AttemptFn& attempt) {
  LadderResult out;
  const int max_rungs = std::max(1, policy.max_rungs);
  for (int rung = 0; rung < max_rungs; ++rung) {
    Status why;
    out.answer = attempt(RungLimits(policy, rung), &why);
    ++out.rungs;
    if (out.answer != Trilean::kUnknown) {
      out.exhausted = Status::OK();
      break;
    }
    if (!why.ok() && !why.IsBudgetExhaustion()) {
      // A hard failure (parse error, violated precondition) — escalation
      // cannot fix it; surface it instead of burning the remaining rungs.
      out.exhausted = why;
      break;
    }
    out.exhausted =
        why.ok() ? Status::ResourceExhausted("rung budget exhausted") : why;
  }
  out.escalated = out.rungs > 1;
  return out;
}

}  // namespace serve
}  // namespace dd
