// Budget-escalation retry ladder: kUnknown is a rung, not a wall.
//
// Under the anytime contract (docs/ROBUSTNESS.md) a budgeted query answers
// kUnknown when its budget runs dry — sound, but terminal for the caller.
// The serving layer turns that into graceful escalation: run the query on
// a small budget first (most queries are easy — the paper's hardness is
// worst-case), and re-run only the kUnknown ones with geometrically larger
// budgets, up to a per-request ceiling.
//
// Determinism: RungLimits is a pure function of (policy, rung); with
// conflict/oracle-call budgets (the default — wall-clock rungs are opt-in,
// since deadlines depend on machine load) the whole ladder is
// deterministic: the same seed and policy produce the same rung sequence
// and the same final answer on every run. docs/SERVING.md §retry ladder.
//
// The ladder never caches and never invents answers: a definite verdict
// from any rung equals the unbudgeted answer (anytime contract), and a
// ladder that exhausts its ceiling surfaces kUnknown.
#ifndef DD_SERVE_RETRY_LADDER_H_
#define DD_SERVE_RETRY_LADDER_H_

#include <cstdint>
#include <functional>

#include "util/budget.h"

namespace dd {
namespace serve {

/// Geometric escalation policy. Any axis set to -1 at rung 0 stays
/// unlimited on every rung (escalating "unlimited" is meaningless); a
/// ceiling of -1 means "no ceiling" for that axis.
struct RetryPolicy {
  int max_rungs = 3;       ///< total attempts (>= 1); 1 = no retries
  double growth = 4.0;     ///< per-rung budget multiplier (> 1)

  int64_t initial_conflicts = 2048;    ///< rung-0 CDCL conflict budget
  int64_t conflict_ceiling = -1;       ///< clamp for escalated rungs

  int64_t initial_oracle_calls = -1;   ///< rung-0 oracle-call budget
  int64_t oracle_call_ceiling = -1;

  int64_t initial_deadline_ms = -1;    ///< rung-0 wall-clock (opt-in)
  int64_t deadline_ceiling_ms = -1;

  /// True when rung 0 already imposes no limit on any axis — the ladder
  /// degenerates to a single unbudgeted attempt.
  bool unlimited() const {
    return initial_conflicts < 0 && initial_oracle_calls < 0 &&
           initial_deadline_ms < 0;
  }
};

/// The budget limits of attempt `rung` (0-based): each limited axis grows
/// by growth^rung, clamped to its ceiling. Pure — this is what makes the
/// rung sequence reproducible.
Budget::Limits RungLimits(const RetryPolicy& policy, int rung);

/// One ladder run. `rungs` is the number of attempts actually made;
/// `escalated` is true when more than one rung ran; `exhausted` reports
/// the last rung's budget status when the final answer is kUnknown.
struct LadderResult {
  Trilean answer = Trilean::kUnknown;
  int rungs = 0;
  bool escalated = false;
  Status exhausted;  ///< OK unless the ladder ended kUnknown
};

/// The attempt callback: evaluate the query under `limits`, reporting the
/// answer and (for kUnknown) the exhaustion status via *why.
using AttemptFn =
    std::function<Trilean(const Budget::Limits& limits, Status* why)>;

/// Runs `attempt` up the ladder until a definite answer or the rung
/// ceiling. An attempt whose kUnknown was NOT budget exhaustion (e.g. an
/// injected oracle fault with no budget attached) is still retried — the
/// escalated rung re-runs it — but a hard error Status in *why stops the
/// ladder immediately (callers surface it; retrying can't fix a parse
/// error).
LadderResult RunLadder(const RetryPolicy& policy, const AttemptFn& attempt);

}  // namespace serve
}  // namespace dd

#endif  // DD_SERVE_RETRY_LADDER_H_
