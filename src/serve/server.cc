#include "serve/server.h"

#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "logic/parser.h"
#include "logic/printer.h"
#include "util/string_util.h"

namespace dd {
namespace serve {

namespace {

/// Protocol lines beyond this are refused (the serve-mode analogue of the
/// .queries line cap — docs/SERVING.md §protocol).
constexpr size_t kMaxProtocolLine = 1 << 20;

/// Attribute-sized view of a query (trace attrs should not embed a
/// megabyte formula).
std::string QueryPreview(const std::string& text) {
  constexpr size_t kCap = 120;
  if (text.size() <= kCap) return text;
  return text.substr(0, kCap) + "...";
}

}  // namespace

void Publish(const ServeStats& s, obs::MetricsRegistry* reg) {
  reg->Add("dd.serve.requests", s.requests);
  reg->Add("dd.serve.admitted", s.admitted);
  reg->Add("dd.serve.shed", s.shed);
  reg->Add("dd.serve.queued", s.queued);
  reg->Add("dd.serve.cache_hits", s.cache_hits);
  reg->Add("dd.serve.cache_misses", s.cache_misses);
  reg->Add("dd.serve.brave_requests", s.brave_requests);
  reg->Add("dd.serve.template_requests", s.template_requests);
  reg->Add("dd.serve.bank_reuses", s.bank_reuses);
  reg->Add("dd.serve.rungs", s.rungs);
  reg->Add("dd.serve.escalations", s.escalations);
  reg->Add("dd.serve.retry_successes", s.retry_successes);
  reg->Add("dd.serve.unknowns", s.unknowns);
  reg->Add("dd.serve.errors", s.errors);
  reg->Add("dd.serve.reloads", s.reloads);
  reg->Add("dd.serve.cache_loads", s.cache_loads);
  reg->Add("dd.serve.cache_stale", s.cache_stale);
  reg->Add("dd.serve.cache_load_failures", s.cache_load_failures);
  reg->Add("dd.serve.cache_saves", s.cache_saves);
  reg->Add("dd.serve.cache_save_failures", s.cache_save_failures);
}

std::string ToJson(const ServeStats& s) {
  // Render through the registry serializer: same dd.serve.* names, same
  // sorted-key determinism as ddquery --metrics.
  obs::MetricsRegistry reg;
  Publish(s, &reg);
  return obs::ToJsonString(reg.Snapshot());
}

QueryServer::QueryServer(Database db, ServeOptions opts)
    : opts_(std::move(opts)), gate_(opts_.gate) {
  session_ = MakeSession(std::move(db));
}

std::shared_ptr<QueryServer::Session> QueryServer::MakeSession(Database db) {
  auto session = std::make_shared<Session>(std::move(db), opts_.engine,
                                           opts_.cache_capacity);
  session->fp = session->reasoner.fingerprint();
  if (!opts_.cache_path.empty()) {
    SnapshotLoad outcome = SnapshotLoad::kMissing;
    Status s = LoadAnswerCache(opts_.cache_path, session->fp, &session->cache,
                               &outcome);
    std::lock_guard<std::mutex> lock(stats_mu_);
    switch (outcome) {
      case SnapshotLoad::kLoaded:
        ++stats_.cache_loads;
        break;
      case SnapshotLoad::kStale:
        ++stats_.cache_stale;
        break;
      case SnapshotLoad::kCorrupt:
        // The contract: corruption degrades to a cold start — counted
        // here, surfaced in STATS, never fatal and never a wrong answer.
        ++stats_.cache_load_failures;
        break;
      case SnapshotLoad::kMissing:
        break;
    }
    (void)s;  // classification above carries everything the server needs
  }
  return session;
}

std::shared_ptr<QueryServer::Session> QueryServer::CurrentSession() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return session_;
}

QueryServer::Answer QueryServer::Submit(SemanticsKind kind,
                                        const batch::BatchQuery& query,
                                        batch::BatchMode mode) {
  const bool brave = mode == batch::BatchMode::kBrave;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
    if (brave) ++stats_.brave_requests;
  }
  Result<RequestGate::Ticket> ticket = gate_.Enter();
  if (!ticket.ok()) {
    Answer a;
    a.status = ticket.status();
    return a;
  }

  obs::ScopedSpan request_span(opts_.trace, "serve_request", "serve");
  request_span.Attr("semantics", SemanticsKindName(kind));
  request_span.Attr("mode", brave ? "brave" : "skeptical");
  request_span.Attr("query", QueryPreview(query.text));

  // In-flight requests pin their session: a concurrent Reload swaps the
  // server's pointer but cannot pull this database out from under us.
  std::shared_ptr<Session> session = CurrentSession();
  std::lock_guard<std::mutex> eval(session->eval_mu);

  bool cache_hit = false;
  int64_t first_rung_misses = 0;
  int64_t bank_reuses = 0;
  int rung_index = 0;
  LadderResult lr = RunLadder(
      opts_.retry, [&](const Budget::Limits& lim, Status* why) -> Trilean {
        obs::ScopedSpan rung_span(opts_.trace, "serve_rung", "serve");
        rung_span.Counter("rung", rung_index);
        rung_span.Counter("conflict_limit", lim.conflict_budget);
        batch::BatchOptions bo;
        bo.num_threads = opts_.num_threads;
        bo.model_bank_cap = opts_.model_bank_cap;
        bo.cache = &session->cache;
        // The session Reasoner's own bank store spans requests AND rungs:
        // a retried query reuses every complete bank an earlier rung (or
        // an earlier request) built instead of re-enumerating it — the
        // ladder never rebuilds a bank it just finished.
        bo.use_bank_store = opts_.bank_store_capacity > 0;
        bo.bank_store_capacity = opts_.bank_store_capacity;
        bo.deadline_ms = lim.deadline_ms;
        bo.conflict_budget = lim.conflict_budget;
        bo.oracle_call_budget = lim.oracle_call_budget;
        bo.trace = opts_.trace;
        auto r = brave
                     ? session->reasoner.AnswerBatchCredulous(kind, {query}, bo)
                     : session->reasoner.AnswerBatch(kind, {query}, bo);
        if (!r.ok()) {
          *why = r.status();
          rung_span.Attr("status", r.status().ToString());
          ++rung_index;
          return Trilean::kUnknown;
        }
        if (rung_index == 0) {
          cache_hit = r->stats.cache_hits > 0;
          first_rung_misses = r->stats.cache_misses;
        }
        bank_reuses += r->stats.bank_store_hits;
        rung_span.Counter("bank_reuses", r->stats.bank_store_hits);
        rung_span.Attr("result", TrileanName(r->answers[0]));
        ++rung_index;
        return r->answers[0];
      });

  Answer a;
  a.verdict = lr.answer;
  a.rungs = lr.rungs;
  a.cache_hit = cache_hit;
  if (lr.answer == Trilean::kUnknown && !lr.exhausted.ok() &&
      !lr.exhausted.IsBudgetExhaustion()) {
    a.status = lr.exhausted;  // hard failure (parse error, precondition)
  }
  request_span.Counter("rungs", lr.rungs);
  request_span.Counter("cache_hit", cache_hit ? 1 : 0);
  request_span.Attr("result", TrileanName(lr.answer));

  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.rungs += lr.rungs;
  stats_.escalations += lr.rungs - 1;
  if (cache_hit) ++stats_.cache_hits;
  stats_.cache_misses += first_rung_misses;
  stats_.bank_reuses += bank_reuses;
  if (!a.status.ok()) {
    ++stats_.errors;
  } else if (lr.answer == Trilean::kUnknown) {
    ++stats_.unknowns;
  } else if (lr.escalated) {
    ++stats_.retry_successes;
  }
  return a;
}

QueryServer::TemplateResult QueryServer::SubmitTemplate(
    SemanticsKind kind, std::string_view template_text,
    batch::BatchMode mode) {
  const bool brave = mode == batch::BatchMode::kBrave;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.requests;
    ++stats_.template_requests;
    if (brave) ++stats_.brave_requests;
  }
  TemplateResult out;
  Result<RequestGate::Ticket> ticket = gate_.Enter();
  if (!ticket.ok()) {
    out.status = ticket.status();
    return out;
  }

  obs::ScopedSpan request_span(opts_.trace, "serve_request", "serve");
  request_span.Attr("semantics", SemanticsKindName(kind));
  request_span.Attr("mode", brave ? "brave" : "skeptical");
  request_span.Attr("template", QueryPreview(std::string(template_text)));

  std::shared_ptr<Session> session = CurrentSession();
  std::lock_guard<std::mutex> eval(session->eval_mu);

  int64_t bank_reuses = 0;
  int rung_index = 0;
  bool have_answer = false;
  LadderResult lr = RunLadder(
      opts_.retry, [&](const Budget::Limits& lim, Status* why) -> Trilean {
        obs::ScopedSpan rung_span(opts_.trace, "serve_rung", "serve");
        rung_span.Counter("rung", rung_index);
        rung_span.Counter("conflict_limit", lim.conflict_budget);
        tmpl::TemplateOptions topts;
        topts.batch.num_threads = opts_.num_threads;
        topts.batch.model_bank_cap = opts_.model_bank_cap;
        topts.batch.cache = &session->cache;
        topts.batch.use_bank_store = opts_.bank_store_capacity > 0;
        topts.batch.bank_store_capacity = opts_.bank_store_capacity;
        topts.batch.deadline_ms = lim.deadline_ms;
        topts.batch.conflict_budget = lim.conflict_budget;
        topts.batch.oracle_call_budget = lim.oracle_call_budget;
        topts.batch.trace = opts_.trace;
        auto r = tmpl::AnswerTemplateText(&session->reasoner, kind,
                                          template_text, mode, topts);
        if (!r.ok()) {
          *why = r.status();
          rung_span.Attr("status", r.status().ToString());
          ++rung_index;
          return Trilean::kUnknown;
        }
        have_answer = true;
        out.answer = *std::move(r);
        bank_reuses += out.answer.batch_stats.bank_store_hits;
        rung_span.Counter("bank_reuses", out.answer.batch_stats.bank_store_hits);
        rung_span.Counter("yes", static_cast<int64_t>(out.answer.yes.size()));
        rung_span.Counter("unknown",
                          static_cast<int64_t>(out.answer.unknown.size()));
        ++rung_index;
        // A rung is definite when every substitution answered; residual
        // kUnknown substitutions escalate (the cache carries the definite
        // ones forward, so the next rung only re-evaluates the residue).
        if (!out.answer.unknown.empty()) {
          *why = Status::ResourceExhausted(
              StrFormat("%lld substitutions out of budget",
                        static_cast<long long>(out.answer.unknown.size())));
          return Trilean::kUnknown;
        }
        return Trilean::kYes;
      });

  out.rungs = lr.rungs;
  if (!have_answer) {
    // No rung produced an answer at all: the hard Status (parse error,
    // candidate-cap ResourceExhausted, precondition) is the outcome.
    out.status = !lr.exhausted.ok()
                     ? lr.exhausted
                     : Status::Internal("template ladder produced no answer");
  }
  request_span.Counter("rungs", lr.rungs);
  request_span.Attr("result",
                    !out.status.ok()             ? "error"
                    : out.answer.unknown.empty() ? "complete"
                                                 : "degraded");

  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.rungs += lr.rungs;
  stats_.escalations += lr.rungs - 1;
  stats_.bank_reuses += bank_reuses;
  if (!out.status.ok()) {
    ++stats_.errors;
  } else if (!out.answer.unknown.empty()) {
    ++stats_.unknowns;
  } else if (lr.escalated) {
    ++stats_.retry_successes;
  }
  return out;
}

Status QueryServer::Reload(Database db) {
  std::shared_ptr<Session> fresh = MakeSession(std::move(db));
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    session_ = std::move(fresh);
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.reloads;
  return Status::OK();
}

Status QueryServer::SaveCache() {
  if (opts_.cache_path.empty()) {
    return Status::FailedPrecondition("no cache file configured");
  }
  std::shared_ptr<Session> session = CurrentSession();
  // Hold the evaluation lock so the snapshot sees a quiescent cache.
  std::lock_guard<std::mutex> eval(session->eval_mu);
  Status s = SaveAnswerCache(session->cache, session->fp, opts_.cache_path);
  std::lock_guard<std::mutex> lock(stats_mu_);
  if (s.ok()) {
    ++stats_.cache_saves;
  } else {
    ++stats_.cache_save_failures;
  }
  return s;
}

void QueryServer::Shutdown() { gate_.Shutdown(); }

uint64_t QueryServer::fingerprint() const { return CurrentSession()->fp; }

std::string QueryServer::DbSummary() const {
  std::shared_ptr<Session> session = CurrentSession();
  std::lock_guard<std::mutex> eval(session->eval_mu);
  return DatabaseSummary(session->reasoner.db());
}

ServeStats QueryServer::stats() const {
  ServeStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
  }
  // Admission counters live in the gate; merging here keeps one source of
  // truth per counter.
  RequestGate::Stats g = gate_.stats();
  s.admitted = g.admitted;
  s.shed = g.shed;
  s.queued = g.queued;
  return s;
}

int QueryServer::ExitCode() const {
  ServeStats s = stats();
  return (s.unknowns > 0 || s.shed > 0) ? 2 : 0;
}

std::string QueryServer::HandleLine(std::string_view line, bool* quit) {
  *quit = false;
  if (line.size() > kMaxProtocolLine) return "ERR line too long";
  // CRLF clients are accepted; the protocol is LF-terminated.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  std::istringstream in{std::string(line)};
  std::string cmd;
  if (!(in >> cmd) || cmd[0] == '#') return "";

  if (cmd == "QUIT") {
    *quit = true;
    return "BYE";
  }
  if (cmd == "STATS") return "STATS " + ToJson(stats());
  if (cmd == "SAVE") {
    Status s = SaveCache();
    if (!s.ok()) return "ERR " + s.ToString();
    std::shared_ptr<Session> session = CurrentSession();
    std::lock_guard<std::mutex> eval(session->eval_mu);
    return StrFormat("SAVED %s entries=%lld", opts_.cache_path.c_str(),
                     static_cast<long long>(session->cache.size()));
  }
  if (cmd == "RELOAD") {
    std::string path;
    if (!(in >> path)) return "ERR RELOAD needs a file path";
    std::ifstream f(path);
    if (!f) return "ERR cannot read " + path;
    std::ostringstream buf;
    buf << f.rdbuf();
    auto db = ParseDatabase(buf.str());
    if (!db.ok()) return "ERR " + db.status().ToString();
    Status s = Reload(std::move(db).value());
    if (!s.ok()) return "ERR " + s.ToString();
    return StrFormat("RELOADED fp=%016llx %s",
                     static_cast<unsigned long long>(fingerprint()),
                     DbSummary().c_str());
  }
  if (cmd == "QUERY") {
    std::string sem_name;
    std::string mode;
    in >> sem_name >> mode;
    auto kind = SemanticsKindFromName(sem_name);
    const bool is_lit = mode == "lit";
    if (!kind || (!is_lit && mode != "infer")) {
      return "ERR usage: QUERY <semantics> <lit|infer> <query>";
    }
    std::string rest;
    std::getline(in, rest);
    const std::string_view trimmed = Trim(rest);
    if (trimmed.empty()) return "ERR empty query";
    Answer a = Submit(*kind, batch::BatchQuery{std::string(trimmed), is_lit});
    if (a.status.code() == StatusCode::kUnavailable) {
      return "UNAVAILABLE " + a.status.message();
    }
    if (!a.status.ok()) return "ERR " + a.status.ToString();
    return StrFormat("ANSWER %s rungs=%d cached=%d", TrileanName(a.verdict),
                     a.rungs, a.cache_hit ? 1 : 0);
  }
  if (cmd == "ANSWERS") {
    // First-order template answers (docs/TEMPLATES.md), one response line:
    //   ANSWERS <SEM> <skeptical|brave> <template>
    //     -> ANSWERS yes=N unknown=M candidates=K rungs=R [vacuous=1]
    //        [X=n1,C=r X=n2,C=g ...]
    // Yes-tuples print comma-joined and lexicographically sorted; residual
    // kUnknown substitutions are counted (degrading the exit code), not
    // listed.
    std::string sem_name;
    std::string mode_name;
    in >> sem_name >> mode_name;
    auto kind = SemanticsKindFromName(sem_name);
    const bool is_brave = mode_name == "brave";
    if (!kind || (!is_brave && mode_name != "skeptical")) {
      return "ERR usage: ANSWERS <semantics> <skeptical|brave> <template>";
    }
    std::string rest;
    std::getline(in, rest);
    const std::string_view trimmed = Trim(rest);
    if (trimmed.empty()) return "ERR empty template";
    TemplateResult r = SubmitTemplate(
        *kind, trimmed,
        is_brave ? batch::BatchMode::kBrave : batch::BatchMode::kSkeptical);
    if (r.status.code() == StatusCode::kUnavailable) {
      return "UNAVAILABLE " + r.status.message();
    }
    if (!r.status.ok()) return "ERR " + r.status.ToString();
    std::string resp = StrFormat(
        "ANSWERS yes=%lld unknown=%lld candidates=%lld rungs=%d",
        static_cast<long long>(r.answer.yes.size()),
        static_cast<long long>(r.answer.unknown.size()),
        static_cast<long long>(r.answer.candidates), r.rungs);
    if (r.answer.vacuous) resp += " vacuous=1";
    for (const auto& binding : r.answer.yes) {
      resp += " ";
      for (size_t i = 0; i < binding.size(); ++i) {
        if (i) resp += ",";
        resp += r.answer.vars[i] + "=" + binding[i];
      }
    }
    return resp;
  }
  if (cmd == "BRAVE") {
    // Brave/credulous inference, same response shape as QUERY. Formulas
    // only: a literal is its own formula, so no lit|infer discriminator.
    std::string sem_name;
    in >> sem_name;
    auto kind = SemanticsKindFromName(sem_name);
    if (!kind) return "ERR usage: BRAVE <semantics> <formula>";
    std::string rest;
    std::getline(in, rest);
    const std::string_view trimmed = Trim(rest);
    if (trimmed.empty()) return "ERR empty query";
    Answer a = Submit(*kind, batch::BatchQuery{std::string(trimmed), false},
                      batch::BatchMode::kBrave);
    if (a.status.code() == StatusCode::kUnavailable) {
      return "UNAVAILABLE " + a.status.message();
    }
    if (!a.status.ok()) return "ERR " + a.status.ToString();
    return StrFormat("ANSWER %s rungs=%d cached=%d", TrileanName(a.verdict),
                     a.rungs, a.cache_hit ? 1 : 0);
  }
  return "ERR unknown command '" + cmd + "'";
}

}  // namespace serve
}  // namespace dd
