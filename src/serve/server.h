// QueryServer: the resilient long-lived serving layer over
// Reasoner::AnswerBatch (docs/SERVING.md).
//
// One QueryServer owns one *session* at a time — a Reasoner plus its
// fingerprint-epoch-pinned AnswerCache — and composes the serve-layer
// machinery around every request:
//
//   Submit(kind, query)
//     └─ RequestGate        admission: concurrency cap, bounded queue,
//        │                  kUnavailable load shedding
//     └─ RetryLadder        rung 0 runs on a small budget; kUnknown
//        │                  answers re-run under geometrically escalated
//        │                  budgets up to the policy ceiling
//     └─ AnswerBatch        one-query batches: canonicalization, the
//                           answer cache (hits skip the ladder entirely),
//                           slice-grouped evaluation
//
// Degradation ladder (docs/ROBUSTNESS.md §degradation ladder): a request
// is answered definitely, or kUnknown after the full ladder, or
// kUnavailable without starting — never wrongly. kUnknown is never cached.
//
// SubmitTemplate (the ANSWERS verb) runs a first-order template
// (tmpl/answer.h) through the same gate and ladder: each rung answers the
// whole instantiation set as ONE batch against the session cache, so
// escalated rungs re-evaluate only the previously-kUnknown substitutions.
//
// Hot reload: Reload() builds a NEW session and atomically swaps it in.
// In-flight requests keep a shared_ptr to the old session and finish
// against the database they started with; the new session's cache is
// pinned to the new fingerprint (and warm-started from the snapshot file
// when it matches), so no answer computed against the old database can
// serve a query against the new one.
//
// Persistence: with a cache_path configured, construction and Reload()
// warm-start from the snapshot (corruption and stale epochs degrade to a
// cold start — counted, never fatal) and SaveCache() persists atomically
// (serve/snapshot.h).
//
// Thread safety: Submit/Reload/SaveCache/stats may be called from any
// thread. Evaluation on one session is serialized (the Reasoner is not
// thread-safe; parallelism lives inside AnswerBatch's group evaluation) —
// the gate's queue bounds how many requests may be waiting for the
// session, which is the admission-control contract.
#ifndef DD_SERVE_SERVER_H_
#define DD_SERVE_SERVER_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "batch/query_batch.h"
#include "core/reasoner.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/request_gate.h"
#include "serve/retry_ladder.h"
#include "serve/snapshot.h"
#include "tmpl/answer.h"

namespace dd {
namespace serve {

struct ServeOptions {
  RequestGate::Options gate;
  RetryPolicy retry;

  /// Snapshot file for crash-safe cache persistence; empty = in-memory
  /// only. Loaded on construction and Reload, written by SaveCache.
  std::string cache_path;
  int64_t cache_capacity = 4096;

  /// Forwarded to AnswerBatch (per-request one-query batches).
  int num_threads = 1;
  int64_t model_bank_cap = 4096;

  /// Capacity of the session Reasoner's cross-batch model-bank store
  /// (batch/model_bank_store.h): complete banks built by one request —
  /// or one ladder rung — are reused by later requests and rungs on the
  /// same module, so a retry never rebuilds a bank an earlier rung
  /// already completed. <= 0 disables reuse. ServeStats::bank_reuses
  /// counts the hits.
  int64_t bank_store_capacity = 32;

  /// Base engine options for every session's Reasoner.
  SemanticsOptions engine;

  /// Optional trace: each request records a "serve"-layer request span
  /// with one child span per ladder rung (plus the nested reasoner spans).
  obs::TraceContext* trace = nullptr;
};

/// Serve-layer accounting, published under dd.serve.* (Publish below).
struct ServeStats {
  int64_t requests = 0;     ///< Submit calls
  int64_t admitted = 0;     ///< past the gate
  int64_t shed = 0;         ///< kUnavailable (queue full / shutdown)
  int64_t queued = 0;       ///< admitted after waiting
  int64_t cache_hits = 0;   ///< served from the answer cache
  int64_t cache_misses = 0;
  int64_t brave_requests = 0;   ///< Submit calls in brave/credulous mode
  int64_t template_requests = 0;  ///< SubmitTemplate calls (ANSWERS verb)
  int64_t bank_reuses = 0;      ///< groups answered from a stored bank
  int64_t rungs = 0;            ///< ladder attempts run
  int64_t escalations = 0;      ///< rungs beyond the first
  int64_t retry_successes = 0;  ///< definite answers from an escalated rung
  int64_t unknowns = 0;         ///< requests ending kUnknown
  int64_t errors = 0;           ///< requests ending in a hard Status
  int64_t reloads = 0;          ///< successful hot reloads
  int64_t cache_loads = 0;          ///< snapshots restored
  int64_t cache_stale = 0;          ///< snapshots skipped: epoch mismatch
  int64_t cache_load_failures = 0;  ///< snapshots rejected: corruption
  int64_t cache_saves = 0;
  int64_t cache_save_failures = 0;
};

/// Folds the counters into `reg` under dd.serve.* (monotonic registry:
/// publish once per server, e.g. at exit).
void Publish(const ServeStats& s, obs::MetricsRegistry* reg);

/// Renders the counters as one JSON object line (the STATS protocol
/// response; keys sorted, byte-deterministic for a given value set).
std::string ToJson(const ServeStats& s);

class QueryServer {
 public:
  /// One request's outcome. `status` is OK for definite and kUnknown
  /// verdicts, kUnavailable when shed, and a hard error otherwise.
  struct Answer {
    Trilean verdict = Trilean::kUnknown;
    int rungs = 0;
    bool cache_hit = false;
    Status status;
  };

  QueryServer(Database db, ServeOptions opts);

  /// Serves one query through gate + cache + retry ladder: skeptical by
  /// default, brave/credulous with BatchMode::kBrave (the BRAVE protocol
  /// verb). Both modes share the session's answer cache (mode-tagged
  /// keys) and model-bank store; snapshots persist skeptical entries
  /// only (docs/SERVING.md).
  Answer Submit(SemanticsKind kind, const batch::BatchQuery& query,
                batch::BatchMode mode = batch::BatchMode::kSkeptical);

  /// One template request's outcome (the ANSWERS protocol verb). `status`
  /// is OK when the template was answered (possibly with residual
  /// kUnknown substitutions, listed in answer.unknown), kUnavailable when
  /// shed, and a hard error (e.g. a template parse failure) otherwise.
  struct TemplateResult {
    tmpl::TemplateAnswer answer;
    int rungs = 0;
    Status status;
  };

  /// Serves one first-order template through the same gate + ladder as
  /// Submit: every rung routes ALL instantiations through one AnswerBatch
  /// call against the session cache (tmpl/answer.h), so an escalated rung
  /// re-evaluates only the substitutions the previous rung left kUnknown —
  /// the definite ones answer from the cache. A rung counts as complete
  /// (no retry) when no substitution is kUnknown; residual unknowns after
  /// the full ladder degrade the exit code exactly like a kUnknown Submit.
  TemplateResult SubmitTemplate(
      SemanticsKind kind, std::string_view template_text,
      batch::BatchMode mode = batch::BatchMode::kSkeptical);

  /// Swaps in a new database without dropping in-flight requests (they
  /// finish on the old session). The new session's cache is epoch-pinned
  /// to the new fingerprint and warm-started from the snapshot file.
  Status Reload(Database db);

  /// Atomically persists the current session's cache. Fails with
  /// FailedPrecondition when no cache_path is configured.
  Status SaveCache();

  /// Sheds all queued and future requests (used on shutdown paths).
  void Shutdown();

  /// Handles one line of the serve protocol (QUERY / BRAVE / ANSWERS /
  /// RELOAD / SAVE / STATS / QUIT — docs/SERVING.md). Returns the response
  /// line ("" for blank/comment input) and sets *quit on QUIT. Robust to
  /// oversized lines, CRLF endings and arbitrary bytes: malformed input
  /// yields an "ERR ..." response, never a crash.
  std::string HandleLine(std::string_view line, bool* quit);

  /// Exit-code audit for serve mode (docs/ROBUSTNESS.md §CLI): 0 when
  /// every request was answered definitely, 2 when any request degraded
  /// (kUnknown after the ladder, or shed as kUnavailable).
  int ExitCode() const;

  /// Current database fingerprint (the cache epoch).
  uint64_t fingerprint() const;
  /// Summary of the current database (protocol responses, banners).
  std::string DbSummary() const;

  ServeStats stats() const;
  const ServeOptions& options() const { return opts_; }

 private:
  struct Session {
    Session(Database db, const SemanticsOptions& engine_opts,
            int64_t cache_capacity)
        : reasoner(std::move(db), engine_opts), cache(cache_capacity) {}
    Reasoner reasoner;
    uint64_t fp = 0;
    batch::AnswerCache cache;
    /// Serializes evaluation AND cache access (neither is thread-safe).
    std::mutex eval_mu;
  };

  std::shared_ptr<Session> MakeSession(Database db);
  std::shared_ptr<Session> CurrentSession() const;

  ServeOptions opts_;
  RequestGate gate_;

  mutable std::mutex state_mu_;  ///< guards session_ swap
  std::shared_ptr<Session> session_;

  mutable std::mutex stats_mu_;
  ServeStats stats_;
};

}  // namespace serve
}  // namespace dd

#endif  // DD_SERVE_SERVER_H_
