#include "serve/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "util/fingerprint.h"
#include "util/string_util.h"

namespace dd {
namespace serve {

namespace {

constexpr char kMagic[8] = {'D', 'D', 'C', 'A', 'C', 'H', 'E', '1'};
constexpr size_t kMagicLen = sizeof(kMagic);
constexpr size_t kU64 = 8;
constexpr size_t kU32 = 4;
/// Header (magic + epoch + count) and trailer (checksum) sizes.
constexpr size_t kHeaderLen = kMagicLen + 2 * kU64;
constexpr size_t kMinLen = kHeaderLen + kU64;
/// Hard caps: a snapshot failing them is corrupt, not huge. Keys are
/// "fp|SEM|canonical-query" strings — 1 MiB is orders of magnitude above
/// any real key; the file cap bounds the load-time allocation.
constexpr uint64_t kMaxKeyLen = 1ull << 20;
constexpr uint64_t kMaxFileLen = 1ull << 30;

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

uint64_t ReadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}

/// The crash-injection point requested via DD_SNAPSHOT_CRASH_AT, read
/// fresh on every save (the knob is a CI harness, not a hot path).
const char* CrashPoint() { return std::getenv("DD_SNAPSHOT_CRASH_AT"); }

void MaybeCrash(const char* point) {
  const char* want = CrashPoint();
  // _exit skips every destructor and stream flush — the closest a process
  // can get to its own kill -9.
  if (want != nullptr && std::strcmp(want, point) == 0) _exit(137);
}

/// Writes `data` to `path` via POSIX fd so it can be fsync'd before the
/// rename (an atomic rename of un-synced data can survive the process but
/// not a power cut). `write_bytes` < data.size() simulates a torn write.
Status WriteFileDurably(const std::string& path, const std::string& data,
                        size_t write_bytes) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal(
        StrFormat("snapshot: cannot open %s: %s", path.c_str(),
                  std::strerror(errno)));
  }
  size_t off = 0;
  while (off < write_bytes) {
    ssize_t n = ::write(fd, data.data() + off, write_bytes - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::Internal(StrFormat("snapshot: write %s: %s",
                                            path.c_str(),
                                            std::strerror(errno)));
      ::close(fd);
      return s;
    }
    off += static_cast<size_t>(n);
  }
  // fsync failure is a real durability failure, not a soft warning.
  if (::fsync(fd) != 0) {
    Status s = Status::Internal(StrFormat("snapshot: fsync %s: %s",
                                          path.c_str(),
                                          std::strerror(errno)));
    ::close(fd);
    return s;
  }
  if (::close(fd) != 0) {
    return Status::Internal(StrFormat("snapshot: close %s: %s", path.c_str(),
                                      std::strerror(errno)));
  }
  return Status::OK();
}

}  // namespace

Status SaveAnswerCache(const batch::AnswerCache& cache, uint64_t epoch,
                       const std::string& path) {
  // Serialize LRU-last so a loader's Inserts (which prepend) reproduce the
  // recency order exactly — snapshots round-trip byte-identically.
  // Snapshots stay skeptical-only (docs/SERVING.md): brave entries are
  // filtered here, so pre-brave snapshot files remain byte-compatible in
  // both directions and a skeptical-only consumer never sees a
  // mode-tagged key.
  std::vector<std::pair<std::string, Trilean>> entries;
  entries.reserve(static_cast<size_t>(cache.size()));
  cache.ForEach([&](const std::string& key, Trilean answer) {
    if (batch::AnswerCache::IsBraveKey(key)) return;
    entries.emplace_back(key, answer);
  });

  std::string data;
  data.append(kMagic, kMagicLen);
  AppendU64(&data, epoch);
  AppendU64(&data, static_cast<uint64_t>(entries.size()));
  for (const auto& [key, answer] : entries) {
    AppendU32(&data, static_cast<uint32_t>(key.size()));
    data.append(key);
    data.push_back(answer == Trilean::kYes ? 1 : 0);
  }
  AppendU64(&data, FingerprintBytes(data));

  const std::string tmp = path + ".tmp";
  const char* crash = CrashPoint();
  const bool partial = crash != nullptr && std::strcmp(crash, "partial") == 0;
  // "partial" tears the write mid-payload: the temp file holds a prefix
  // whose checksum cannot validate, and the target is never touched.
  DD_RETURN_IF_ERROR(
      WriteFileDurably(tmp, data, partial ? data.size() / 2 : data.size()));
  MaybeCrash("partial");
  MaybeCrash("before-rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = Status::Internal(StrFormat("snapshot: rename %s -> %s: %s",
                                          tmp.c_str(), path.c_str(),
                                          std::strerror(errno)));
    std::remove(tmp.c_str());
    return s;
  }
  MaybeCrash("after-rename");
  return Status::OK();
}

Status LoadAnswerCache(const std::string& path, uint64_t expected_epoch,
                       batch::AnswerCache* cache, SnapshotLoad* outcome) {
  // Every exit path leaves the cache cold-started and epoch-pinned; only
  // the success path below adds entries on top.
  cache->Clear();
  cache->SetEpoch(expected_epoch);
  auto classify = [&](SnapshotLoad o, Status s) {
    if (outcome != nullptr) *outcome = o;
    return s;
  };
  auto corrupt = [&](const std::string& why) {
    return classify(SnapshotLoad::kCorrupt,
                    Status::DataLoss(StrFormat("snapshot %s: %s", path.c_str(),
                                               why.c_str())));
  };

  std::ifstream in(path, std::ios::binary);
  if (!in) return classify(SnapshotLoad::kMissing, Status::OK());
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return corrupt("read failed");
  const std::string data = buf.str();

  if (data.size() < kMinLen) return corrupt("truncated header");
  if (data.size() > kMaxFileLen) return corrupt("file exceeds size cap");
  if (std::memcmp(data.data(), kMagic, kMagicLen) != 0) {
    return corrupt("bad magic / version skew");
  }
  const uint64_t checksum = ReadU64(data.data() + data.size() - kU64);
  const std::string_view payload(data.data(), data.size() - kU64);
  if (FingerprintBytes(payload) != checksum) return corrupt("checksum mismatch");

  const uint64_t epoch = ReadU64(data.data() + kMagicLen);
  const uint64_t count = ReadU64(data.data() + kMagicLen + kU64);

  // Structural validation BEFORE the epoch check: a corrupt file must
  // always be reported as corrupt, even if it happens to carry another
  // database's epoch.
  std::vector<std::pair<std::string_view, Trilean>> entries;
  size_t off = kHeaderLen;
  const size_t end = data.size() - kU64;
  for (uint64_t i = 0; i < count; ++i) {
    if (end - off < kU32) return corrupt("truncated entry length");
    const uint64_t key_len = ReadU32(data.data() + off);
    off += kU32;
    if (key_len > kMaxKeyLen) return corrupt("entry key exceeds cap");
    if (end - off < key_len + 1) return corrupt("truncated entry");
    std::string_view key(data.data() + off, key_len);
    off += key_len;
    const uint8_t answer = static_cast<uint8_t>(data[off++]);
    // No encoding for kUnknown exists on purpose; anything but 0/1 is
    // corruption, never a third answer.
    if (answer > 1) return corrupt("answer byte outside {no, yes}");
    entries.emplace_back(key, answer == 1 ? Trilean::kYes : Trilean::kNo);
  }
  if (off != end) return corrupt("trailing bytes after last entry");

  if (epoch != expected_epoch) return classify(SnapshotLoad::kStale, Status::OK());

  // Insert LRU-first (reverse of serialization order) so the restored
  // recency order matches the saved cache.
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    cache->Insert(std::string(it->first), it->second);
  }
  return classify(SnapshotLoad::kLoaded, Status::OK());
}

}  // namespace serve
}  // namespace dd
