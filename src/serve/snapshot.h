// Crash-safe persistence for the batch answer cache.
//
// A snapshot is one self-validating binary file:
//
//   magic   "DDCACHE1"                     8 bytes
//   epoch   database fingerprint           u64 LE
//   count   number of entries              u64 LE
//   entry*  [key_len u32 LE][key bytes][answer u8: 0=no, 1=yes]
//   check   FingerprintBytes over all preceding bytes   u64 LE
//
// The invalidation contract mirrors the in-memory cache (docs/BATCHING.md):
// the epoch is the database fingerprint the answers were computed against,
// so a snapshot from a different database loads as a *stale* empty cache —
// silently, by design. Corruption of any kind (truncation, bit flips,
// version skew, absurd lengths) must degrade to a cold start, never a crash
// and never a wrong answer: every length is bounds-checked before use and
// the trailing checksum covers every payload byte, so a torn or flipped
// file fails closed. "Unknown is never cached" extends to disk — the format
// has no encoding for kUnknown, and a loader finding an answer byte outside
// {0,1} rejects the file.
//
// Saves are atomic: the snapshot is serialized to `path + ".tmp"`, flushed
// and fsync'd, then renamed over `path`. A reader therefore sees either the
// complete previous snapshot or the complete new one; a process killed
// mid-save (scripts/check.sh does this with SIGKILL) leaves at worst a
// stale temp file, which later saves simply overwrite.
//
// DD_SNAPSHOT_CRASH_AT — test-only crash injection (the snapshot analogue
// of DD_FAULT_*, docs/ROBUSTNESS.md): when set to "partial", "before-rename"
// or "after-rename", SaveAnswerCache calls _exit(137) at that point of the
// save, simulating kill -9 with deterministic timing. Used by the
// crash-recovery leg of scripts/check.sh.
#ifndef DD_SERVE_SNAPSHOT_H_
#define DD_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "batch/answer_cache.h"
#include "util/status.h"

namespace dd {
namespace serve {

/// Outcome classification of LoadAnswerCache, for dd.serve.* accounting.
enum class SnapshotLoad {
  kLoaded,   ///< entries restored (epoch matched)
  kMissing,  ///< no file at `path` — plain cold start
  kStale,    ///< valid file for a different epoch — cold start by contract
  kCorrupt,  ///< failed integrity checks — cold start, counts as a failure
};

/// Serializes `cache` (all live entries, MRU first) stamped with `epoch`
/// and atomically replaces `path`. Returns non-OK on I/O failure; the
/// previous snapshot, if any, is preserved in that case.
Status SaveAnswerCache(const batch::AnswerCache& cache, uint64_t epoch,
                       const std::string& path);

/// Restores `cache` from `path` for a database whose fingerprint is
/// `expected_epoch`. The cache is cleared and epoch-pinned first, so every
/// outcome leaves it usable; entries are added only when the snapshot is
/// intact AND stamped with `expected_epoch`. `*outcome` (may be null)
/// reports the classification; the returned Status is non-OK only for
/// kCorrupt (so callers can log/count it) — missing and stale files are
/// normal cold starts.
Status LoadAnswerCache(const std::string& path, uint64_t expected_epoch,
                       batch::AnswerCache* cache, SnapshotLoad* outcome);

}  // namespace serve
}  // namespace dd

#endif  // DD_SERVE_SNAPSHOT_H_
