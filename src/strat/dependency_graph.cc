#include "strat/dependency_graph.h"

#include <algorithm>

#include "util/macros.h"

namespace dd {

DependencyGraph::DependencyGraph(const Database& db,
                                 const DepGraphOptions& opts)
    : adj_(static_cast<size_t>(db.num_vars())) {
  for (const Clause& c : db.clauses()) {
    for (Var a : c.heads()) {
      for (Var b : c.pos_body()) {
        adj_[static_cast<size_t>(b)].push_back({a, false});
      }
      if (opts.include_negation) {
        for (Var neg : c.neg_body()) {
          adj_[static_cast<size_t>(neg)].push_back({a, true});
        }
      }
      if (opts.link_heads) {
        for (Var a2 : c.heads()) {
          if (a2 != a) adj_[static_cast<size_t>(a)].push_back({a2, false});
        }
      }
    }
  }
}

std::vector<int> DependencyGraph::SccIds() const {
  // Iterative Tarjan.
  const int n = num_nodes();
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> comp(static_cast<size_t>(n), -1);
  std::vector<Var> stack;
  int next_index = 0;
  int next_comp = 0;

  struct Frame {
    Var v;
    size_t edge;
  };
  std::vector<Frame> call;

  for (Var root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != -1) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      Frame& f = call.back();
      Var v = f.v;
      if (f.edge == 0) {
        index[static_cast<size_t>(v)] = lowlink[static_cast<size_t>(v)] =
            next_index++;
        stack.push_back(v);
        on_stack[static_cast<size_t>(v)] = true;
      }
      bool descended = false;
      while (f.edge < adj_[static_cast<size_t>(v)].size()) {
        Var w = adj_[static_cast<size_t>(v)][f.edge].to;
        ++f.edge;
        if (index[static_cast<size_t>(w)] == -1) {
          call.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[static_cast<size_t>(w)]) {
          lowlink[static_cast<size_t>(v)] = std::min(
              lowlink[static_cast<size_t>(v)], index[static_cast<size_t>(w)]);
        }
      }
      if (descended) continue;
      // v finished.
      if (lowlink[static_cast<size_t>(v)] == index[static_cast<size_t>(v)]) {
        for (;;) {
          Var w = stack.back();
          stack.pop_back();
          on_stack[static_cast<size_t>(w)] = false;
          comp[static_cast<size_t>(w)] = next_comp;
          if (w == v) break;
        }
        ++next_comp;
      }
      call.pop_back();
      if (!call.empty()) {
        Var parent = call.back().v;
        lowlink[static_cast<size_t>(parent)] =
            std::min(lowlink[static_cast<size_t>(parent)],
                     lowlink[static_cast<size_t>(v)]);
      }
    }
  }
  return comp;
}

bool IsHeadCycleFree(const Database& db,
                     const std::vector<int>& pos_scc_ids) {
  const int n = db.num_vars();
  std::vector<int> comp_size(static_cast<size_t>(n), 0);
  for (Var v = 0; v < n; ++v) {
    ++comp_size[static_cast<size_t>(pos_scc_ids[static_cast<size_t>(v)])];
  }
  for (const Clause& c : db.clauses()) {
    if (c.heads().size() < 2) continue;
    for (size_t i = 0; i + 1 < c.heads().size(); ++i) {
      for (size_t j = i + 1; j < c.heads().size(); ++j) {
        Var a = c.heads()[i], b = c.heads()[j];
        if (a != b &&
            pos_scc_ids[static_cast<size_t>(a)] ==
                pos_scc_ids[static_cast<size_t>(b)] &&
            comp_size[static_cast<size_t>(
                pos_scc_ids[static_cast<size_t>(a)])] > 1) {
          return false;
        }
      }
    }
  }
  return true;
}

bool IsHeadCycleFree(const Database& db) {
  DependencyGraph positive(db, DepGraphOptions{/*link_heads=*/false,
                                               /*include_negation=*/false});
  return IsHeadCycleFree(db, positive.SccIds());
}

bool DependencyGraph::HasStrictCycle() const {
  std::vector<int> comp = SccIds();
  for (Var v = 0; v < num_nodes(); ++v) {
    for (const DepEdge& e : adj_[static_cast<size_t>(v)]) {
      if (e.strict &&
          comp[static_cast<size_t>(v)] == comp[static_cast<size_t>(e.to)]) {
        return true;
      }
    }
  }
  return false;
}

}  // namespace dd
