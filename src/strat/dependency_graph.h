// Atom dependency graph of a database, with strictness-annotated edges.
//
// An edge u -> v with weight w ∈ {0,1} encodes the stratification
// constraint  level(v) >= level(u) + w :
//   * positive body atom b, head atom a:  b ->0 a
//   * negated  body atom c, head atom a:  c ->1 a   (strict)
//   * head atoms a, a' of one clause:     a ->0 a' and a' ->0 a
//     (disjunctive heads must share a stratum, after Przymusinski)
#ifndef DD_STRAT_DEPENDENCY_GRAPH_H_
#define DD_STRAT_DEPENDENCY_GRAPH_H_

#include <vector>

#include "logic/database.h"
#include "logic/types.h"

namespace dd {

/// One directed dependency edge.
struct DepEdge {
  Var to;
  bool strict;  ///< true for edges induced by negation
};

/// Which edge families the graph contains. The default (everything) is the
/// stratification graph; the analysis layer builds restricted variants:
/// the *positive* graph without head links is the one head-cycle-freeness
/// and tightness (Fages) are defined over.
struct DepGraphOptions {
  bool link_heads = true;        ///< a ->0 a' between co-head atoms
  bool include_negation = true;  ///< c ->1 a for negated body atoms
};

/// The dependency graph over the atoms of a database.
class DependencyGraph {
 public:
  explicit DependencyGraph(const Database& db)
      : DependencyGraph(db, DepGraphOptions{}) {}
  DependencyGraph(const Database& db, const DepGraphOptions& opts);

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  const std::vector<DepEdge>& OutEdges(Var v) const {
    return adj_[static_cast<size_t>(v)];
  }

  /// Tarjan SCC. Returns the component id of each node; ids are assigned in
  /// reverse topological order of the condensation (i.e. if comp(u) can
  /// reach comp(v) and they differ, then comp(u) > comp(v)).
  std::vector<int> SccIds() const;

  /// True iff some strict edge joins two nodes of the same SCC — exactly
  /// the condition under which no stratification exists.
  bool HasStrictCycle() const;

 private:
  std::vector<std::vector<DepEdge>> adj_;
};

/// Head-cycle-freeness (Ben-Eliyahu & Dechter): no clause has two distinct
/// head atoms in one nontrivial SCC of the positive body->head graph
/// (DepGraphOptions{link_heads=false, include_negation=false}).
/// `pos_scc_ids` must be the SccIds() of exactly that graph.
bool IsHeadCycleFree(const Database& db,
                     const std::vector<int>& pos_scc_ids);

/// Convenience overload that builds the positive graph itself.
bool IsHeadCycleFree(const Database& db);

}  // namespace dd

#endif  // DD_STRAT_DEPENDENCY_GRAPH_H_
