#include "strat/priority.h"

#include <queue>

namespace dd {

PriorityRelation::PriorityRelation(const Database& db) {
  const int n = db.num_vars();
  // Direct edges x -> y (x <= y), with strict flag.
  struct Edge {
    Var to;
    bool strict;
  };
  std::vector<std::vector<Edge>> adj(static_cast<size_t>(n));
  for (const Clause& c : db.clauses()) {
    for (Var a : c.heads()) {
      for (Var neg : c.neg_body())
        adj[static_cast<size_t>(a)].push_back({neg, true});
      for (Var b : c.pos_body())
        adj[static_cast<size_t>(a)].push_back({b, false});
      for (Var a2 : c.heads()) {
        if (a2 != a) adj[static_cast<size_t>(a)].push_back({a2, false});
      }
    }
  }

  leq_.assign(static_cast<size_t>(n), Interpretation(n));
  lt_.assign(static_cast<size_t>(n), Interpretation(n));

  // Per-source BFS over (node, crossed-strict-edge) states.
  for (Var src = 0; src < n; ++src) {
    // state 0: reachable without a strict edge; state 1: with one.
    std::vector<uint8_t> seen(static_cast<size_t>(n) * 2, 0);
    std::queue<std::pair<Var, int>> q;
    q.push({src, 0});
    seen[static_cast<size_t>(src) * 2] = 1;
    leq_[static_cast<size_t>(src)].Insert(src);
    while (!q.empty()) {
      auto [v, strict] = q.front();
      q.pop();
      for (const Edge& e : adj[static_cast<size_t>(v)]) {
        int ns = strict | (e.strict ? 1 : 0);
        size_t key = static_cast<size_t>(e.to) * 2 + static_cast<size_t>(ns);
        if (seen[key]) continue;
        seen[key] = 1;
        leq_[static_cast<size_t>(src)].Insert(e.to);
        if (ns) lt_[static_cast<size_t>(src)].Insert(e.to);
        q.push({e.to, ns});
      }
    }
  }
}

bool PriorityRelation::HasStrictCycle() const {
  for (Var v = 0; v < num_vars(); ++v) {
    if (Less(v, v)) return true;
  }
  return false;
}

}  // namespace dd
