// The priority relation of the Perfect Models Semantics (paper Section 5.1,
// after Przymusinski).
//
// For every clause  a1|...|an :- b1,...,bk, not c1,...,not cm :
//   (i)   ai <  cj   (negated body atoms get strictly higher priority)
//   (ii)  ai <= bj   (positive body atoms get at least the heads' priority)
//   (iii) ai ~~ aj   (head atoms share a priority level)
// where "x < y" reads: y has higher priority than x.
//
// The relation used by the preference order is the transitive closure;
// Less(x,y) holds iff a <=-path from x to y crosses a strict edge.
#ifndef DD_STRAT_PRIORITY_H_
#define DD_STRAT_PRIORITY_H_

#include <vector>

#include "logic/database.h"
#include "logic/interpretation.h"
#include "logic/types.h"

namespace dd {

/// Precomputed transitive priority relation over the atoms of a database.
class PriorityRelation {
 public:
  explicit PriorityRelation(const Database& db);

  int num_vars() const { return static_cast<int>(leq_.size()); }

  /// x <= y: y has at least x's priority (reflexive, transitive).
  bool LessEq(Var x, Var y) const {
    return leq_[static_cast<size_t>(x)].Contains(y);
  }
  /// x < y: y has strictly higher priority.
  bool Less(Var x, Var y) const {
    return lt_[static_cast<size_t>(x)].Contains(y);
  }

  /// All y with x < y, as a bitset (used by the SAT encoding of the
  /// preference check).
  const Interpretation& StrictlyAbove(Var x) const {
    return lt_[static_cast<size_t>(x)];
  }

  /// True iff some atom satisfies x < x, i.e. the priority relation has a
  /// cycle through negation; perfect models are then not guaranteed to
  /// exist (the DB is not locally stratified).
  bool HasStrictCycle() const;

 private:
  std::vector<Interpretation> leq_;  ///< row x = { y : x <= y }
  std::vector<Interpretation> lt_;   ///< row x = { y : x <  y }
};

}  // namespace dd

#endif  // DD_STRAT_PRIORITY_H_
