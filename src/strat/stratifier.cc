#include "strat/stratifier.h"

#include <algorithm>

#include "strat/dependency_graph.h"
#include "util/macros.h"

namespace dd {

std::vector<Var> Stratification::AtomsOfLevel(int i) const {
  std::vector<Var> out;
  for (Var v = 0; v < static_cast<Var>(atom_level.size()); ++v) {
    if (atom_level[static_cast<size_t>(v)] == i) out.push_back(v);
  }
  return out;
}

std::vector<Var> Stratification::AtomsAboveLevel(int i) const {
  std::vector<Var> out;
  for (Var v = 0; v < static_cast<Var>(atom_level.size()); ++v) {
    if (atom_level[static_cast<size_t>(v)] > i) out.push_back(v);
  }
  return out;
}

std::vector<int> Stratification::ClausesUpToLevel(int i) const {
  std::vector<int> out;
  for (int c = 0; c < static_cast<int>(clause_level.size()); ++c) {
    if (clause_level[static_cast<size_t>(c)] <= i) out.push_back(c);
  }
  return out;
}

std::string Stratification::ToString(const Vocabulary& voc) const {
  std::string out;
  for (int i = 0; i < num_strata; ++i) {
    // Append-style (not `"S" + ...`): avoids gcc-12's -O3 -Wrestrict
    // false positive on operator+(const char*, std::string&&) (PR105651).
    out += "S";
    out += std::to_string(i + 1);
    out += ": {";
    bool first = true;
    for (Var v : AtomsOfLevel(i)) {
      if (!first) out += ", ";
      first = false;
      out += voc.Name(v);
    }
    out += "}\n";
  }
  return out;
}

Result<Stratification> Stratify(const Database& db) {
  DependencyGraph g(db);
  std::vector<int> comp = g.SccIds();

  // Reject cycles through negation.
  for (Var v = 0; v < db.num_vars(); ++v) {
    for (const DepEdge& e : g.OutEdges(v)) {
      if (e.strict &&
          comp[static_cast<size_t>(v)] == comp[static_cast<size_t>(e.to)]) {
        return Status::FailedPrecondition(
            "database is not stratifiable: atom '" + db.vocabulary().Name(v) +
            "' depends on itself through negation");
      }
    }
  }

  // Longest path over the condensation, counting strict edges. Tarjan ids
  // are in reverse topological order, so descending id order is
  // topological.
  int num_comps = 0;
  for (int c : comp) num_comps = std::max(num_comps, c + 1);
  std::vector<int> comp_level(static_cast<size_t>(num_comps), 0);
  for (int c = num_comps - 1; c >= 0; --c) {
    for (Var v = 0; v < db.num_vars(); ++v) {
      if (comp[static_cast<size_t>(v)] != c) continue;
      for (const DepEdge& e : g.OutEdges(v)) {
        int tc = comp[static_cast<size_t>(e.to)];
        if (tc == c) continue;
        comp_level[static_cast<size_t>(tc)] =
            std::max(comp_level[static_cast<size_t>(tc)],
                     comp_level[static_cast<size_t>(c)] + (e.strict ? 1 : 0));
      }
    }
  }

  Stratification out;
  out.atom_level.resize(static_cast<size_t>(db.num_vars()));
  int max_level = 0;
  for (Var v = 0; v < db.num_vars(); ++v) {
    out.atom_level[static_cast<size_t>(v)] =
        comp_level[static_cast<size_t>(comp[static_cast<size_t>(v)])];
    max_level = std::max(max_level, out.atom_level[static_cast<size_t>(v)]);
  }
  out.num_strata = max_level + 1;

  out.clause_level.resize(static_cast<size_t>(db.num_clauses()));
  for (int ci = 0; ci < db.num_clauses(); ++ci) {
    const Clause& c = db.clause(ci);
    int level = 0;
    if (!c.heads().empty()) {
      // All head atoms share an SCC (they are mutually 0-linked).
      level = out.atom_level[static_cast<size_t>(c.heads()[0])];
    } else {
      // Integrity clause: evaluated once all its atoms are settled.
      for (Var b : c.pos_body())
        level = std::max(level, out.atom_level[static_cast<size_t>(b)]);
      for (Var n : c.neg_body())
        level = std::max(level, out.atom_level[static_cast<size_t>(n)]);
    }
    out.clause_level[static_cast<size_t>(ci)] = level;
  }
  return out;
}

bool IsStratifiable(const Database& db) {
  return !DependencyGraph(db).HasStrictCycle();
}

}  // namespace dd
