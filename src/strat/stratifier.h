// Stratification of disjunctive databases (Section 4 of the paper).
//
// A stratification splits the clauses into strata S1,...,Sr such that for
// every clause, positive body atoms are defined in the same or an earlier
// stratum and negated body atoms strictly earlier. The paper notes a
// stratification can be found efficiently; Stratify() computes one with the
// minimum number of strata (levels are longest strict-edge distances).
#ifndef DD_STRAT_STRATIFIER_H_
#define DD_STRAT_STRATIFIER_H_

#include <string>
#include <vector>

#include "logic/database.h"
#include "util/status.h"

namespace dd {

/// A computed stratification.
struct Stratification {
  /// Stratum index of each atom, in [0, num_strata).
  std::vector<int> atom_level;
  /// Stratum index of each clause (= its head atoms' level; integrity
  /// clauses sit at the highest level their body atoms require).
  std::vector<int> clause_level;
  int num_strata = 0;

  /// Atoms of stratum `i`.
  std::vector<Var> AtomsOfLevel(int i) const;
  /// Atoms of strata > `i` (the floating part when stratum i is minimized).
  std::vector<Var> AtomsAboveLevel(int i) const;
  /// Indices of clauses at levels <= `i`.
  std::vector<int> ClausesUpToLevel(int i) const;

  std::string ToString(const Vocabulary& voc) const;
};

/// Computes a stratification, or FailedPrecondition when the database is
/// not stratifiable (a cycle through negation exists).
Result<Stratification> Stratify(const Database& db);

/// Cheap predicate form of Stratify().
bool IsStratifiable(const Database& db);

}  // namespace dd

#endif  // DD_STRAT_STRATIFIER_H_
