#include "tmpl/answer.h"

#include <unordered_map>
#include <utility>

#include "obs/trace.h"
#include "util/string_util.h"

namespace dd {
namespace tmpl {

namespace {

/// The whole-template budget, as the sequential entry points consume it
/// (naive mode and the consistency probe).
QueryOptions QueryOptionsFrom(const batch::BatchOptions& b) {
  QueryOptions q;
  q.deadline_ms = b.deadline_ms;
  q.conflict_budget = b.conflict_budget;
  q.oracle_call_budget = b.oracle_call_budget;
  q.cancel = b.cancel;
  q.trace = b.trace;
  return q;
}

/// Attribute-sized template preview for trace spans.
std::string TemplatePreview(const Template& t) {
  std::string s = t.ToString();
  constexpr size_t kCap = 120;
  if (s.size() > kCap) s = s.substr(0, kCap) + "...";
  return s;
}

}  // namespace

void TemplateStats::Add(const TemplateStats& o) {
  templates += o.templates;
  candidates += o.candidates;
  full_space += o.full_space;
  pruned += o.pruned;
  answers += o.answers;
  unknowns += o.unknowns;
  vacuous += o.vacuous;
  naive_evals += o.naive_evals;
}

void Publish(const TemplateStats& s, obs::MetricsRegistry* reg) {
  reg->Add("dd.tmpl.templates", s.templates);
  reg->Add("dd.tmpl.candidates", s.candidates);
  reg->Add("dd.tmpl.full_space", s.full_space);
  reg->Add("dd.tmpl.pruned", s.pruned);
  reg->Add("dd.tmpl.answers", s.answers);
  reg->Add("dd.tmpl.unknowns", s.unknowns);
  reg->Add("dd.tmpl.vacuous", s.vacuous);
  reg->Add("dd.tmpl.naive_evals", s.naive_evals);
}

Result<TemplateAnswer> AnswerTemplate(Reasoner* r, SemanticsKind kind,
                                      const Template& t,
                                      batch::BatchMode mode,
                                      const TemplateOptions& opts) {
  const bool brave = mode == batch::BatchMode::kBrave;
  obs::TraceContext* trace =
      opts.batch.trace != nullptr ? opts.batch.trace : r->trace();
  obs::ScopedSpan span(trace, "tmpl_answers", "tmpl");
  span.Attr("semantics", SemanticsKindName(kind));
  span.Attr("mode", brave ? "brave" : "skeptical");
  span.Attr("template", TemplatePreview(t));

  TemplateAnswer out;
  out.vars = t.vars;
  out.stats.templates = 1;

  DomainIndex idx = DomainIndex::Build(r->db());

  // Pruning gates (header comment): a custom CCWA/ECWA partition lets
  // unmentioned atoms float, and a model-free database makes skeptical
  // inference vacuous — both fall back to the full-universe odometer.
  bool prune = true;
  if (r->partition() != nullptr &&
      (kind == SemanticsKind::kCcwa || kind == SemanticsKind::kEcwa)) {
    prune = false;
  }
  if (prune && !brave) {
    Result<Trilean> consistent =
        r->HasModel(kind, QueryOptionsFrom(opts.batch));
    if (!consistent.ok()) return consistent.status();
    if (*consistent != Trilean::kYes) prune = false;
    if (*consistent == Trilean::kNo) {
      out.vacuous = true;
      out.stats.vacuous = 1;
    }
  }
  span.Attr("pruned", prune ? "yes" : "no");

  EnumerateOptions eo;
  eo.max_candidates = opts.max_candidates;
  eo.prune = prune;
  DD_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> bindings,
                      EnumerateBindings(t, idx, eo));
  out.candidates = static_cast<int64_t>(bindings.size());
  out.stats.candidates = out.candidates;
  out.stats.full_space =
      SaturatingPow(static_cast<int64_t>(idx.universe.size()), t.vars.size());
  if (prune && out.stats.full_space > out.candidates) {
    out.stats.pruned = out.stats.full_space - out.candidates;
  }

  std::vector<batch::BatchQuery> queries;
  queries.reserve(bindings.size());
  for (const std::vector<std::string>& b : bindings) {
    queries.push_back(InstantiateQuery(t, b, mode));
  }

  std::vector<Trilean> verdicts;
  verdicts.reserve(queries.size());
  if (opts.naive) {
    // A/B baseline: every instantiation through the sequential entry
    // points — no batch, no shared bank, no cache. Each call builds its
    // own budget from the same limits (the batch path shares ONE budget
    // across the whole template; docs/TEMPLATES.md §benchmarks).
    QueryOptions q = QueryOptionsFrom(opts.batch);
    for (const batch::BatchQuery& query : queries) {
      Result<Trilean> v =
          brave ? r->InfersCredulously(kind, query.text, q)
                : (query.is_literal ? r->InfersLiteral(kind, query.text, q)
                                    : r->InfersFormula(kind, query.text, q));
      if (!v.ok()) return v.status();
      verdicts.push_back(*v);
      ++out.stats.naive_evals;
    }
  } else if (!queries.empty()) {
    Result<batch::BatchAnswer> ba =
        brave ? r->AnswerBatchCredulous(kind, queries, opts.batch)
              : r->AnswerBatch(kind, queries, opts.batch);
    if (!ba.ok()) return ba.status();
    verdicts = std::move(ba->answers);
    out.batch_stats = std::move(ba->stats);
  }

  for (size_t i = 0; i < verdicts.size(); ++i) {
    if (verdicts[i] == Trilean::kYes) {
      out.yes.push_back(bindings[i]);
    } else if (verdicts[i] == Trilean::kUnknown) {
      out.unknown.push_back(bindings[i]);
    }
  }
  out.stats.answers = static_cast<int64_t>(out.yes.size());
  out.stats.unknowns = static_cast<int64_t>(out.unknown.size());

  span.Counter("candidates", out.candidates);
  span.Counter("answers", out.stats.answers);
  span.Counter("unknowns", out.stats.unknowns);
  return out;
}

Result<TemplateAnswer> AnswerTemplateText(Reasoner* r, SemanticsKind kind,
                                          std::string_view template_text,
                                          batch::BatchMode mode,
                                          const TemplateOptions& opts) {
  DD_ASSIGN_OR_RETURN(Template t, ParseTemplate(template_text));
  return AnswerTemplate(r, kind, t, mode, opts);
}

std::string FormatAnswer(const TemplateAnswer& a) {
  std::string out;
  auto render = [&](const char* tag,
                    const std::vector<std::vector<std::string>>& rows) {
    for (const std::vector<std::string>& row : rows) {
      out += tag;
      for (size_t i = 0; i < row.size(); ++i) {
        out += i ? " " : " ";
        out += a.vars[i] + "=" + row[i];
      }
      out += "\n";
    }
  };
  render("answer:", a.yes);
  render("unknown:", a.unknown);
  out += StrFormat("answers: %lld yes, %lld unknown, %lld candidates",
                   static_cast<long long>(a.yes.size()),
                   static_cast<long long>(a.unknown.size()),
                   static_cast<long long>(a.candidates));
  if (a.vacuous) out += " (no intended model: vacuous)";
  out += "\n";
  return out;
}

}  // namespace tmpl
}  // namespace dd
