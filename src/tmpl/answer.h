// Template answering: one template → one propositional query batch.
//
// AnswerTemplate enumerates the candidate substitutions (tmpl/enumerate.h),
// compiles each into a canonical propositional query, and routes the whole
// set through ONE Reasoner::AnswerBatch / AnswerBatchCredulous call — so
// every instantiation of a template shares a single database fingerprint,
// group model bank (batch/model_bank_store.h) and answer cache, which is
// the amortization the grounder-to-batch pipeline exists for
// (docs/TEMPLATES.md).
//
// Soundness (inherited + local gates):
//   * the batch layer's per-semantics gates (BankIsSound, SliceIsSound,
//     kUnknown-never-cached) apply unchanged — an instantiation answers
//     exactly like the sequential entry point, or kUnknown, never wrong;
//   * relevance pruning restricts candidates to clause-mentioned atoms,
//     which is sound because an atom no clause mentions is false in every
//     intended model under every implemented semantics with the default
//     minimize-everything partition. Two cases break that premise and
//     disable pruning (full-universe odometer instead):
//       - a custom CCWA/ECWA partition: floating (Z) and fixed (Q) atoms
//         outside every clause can still be true in intended models;
//       - skeptical mode on a database with NO intended model (HasModel
//         says kNo, or kUnknown under budget): inference is vacuous, so
//         unmentioned instantiations are answers too. The answer carries
//         vacuous=true in the kNo case.
//   * degradation: budget/fault pressure turns individual instantiations
//     kUnknown (listed in TemplateAnswer::unknown, never cached); callers
//     see exactly which substitutions degraded.
#ifndef DD_TMPL_ANSWER_H_
#define DD_TMPL_ANSWER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "batch/query_batch.h"
#include "core/reasoner.h"
#include "obs/metrics.h"
#include "tmpl/enumerate.h"
#include "tmpl/template.h"
#include "util/status.h"

namespace dd {
namespace tmpl {

/// Per-call knobs. The batch options carry the whole-template budget,
/// threads, cache/bank-store wiring and trace, exactly as AnswerBatch
/// consumes them.
struct TemplateOptions {
  /// Candidate cap (ResourceExhausted beyond — the template analogue of
  /// GroundOptions::max_clauses).
  int64_t max_candidates = 1000000;
  /// A/B baseline: evaluate every instantiation through the sequential
  /// single-query entry points instead of one batch (no shared banks, no
  /// cache). Same answers by the anytime contract; bench_template
  /// measures the gap.
  bool naive = false;
  batch::BatchOptions batch;
};

/// Template accounting, published under dd.tmpl.* (docs/OBSERVABILITY.md).
struct TemplateStats {
  int64_t templates = 0;    ///< AnswerTemplate calls
  int64_t candidates = 0;   ///< substitutions compiled into queries
  int64_t full_space = 0;   ///< universe^|vars| (saturated)
  int64_t pruned = 0;       ///< full_space - candidates when pruning ran
  int64_t answers = 0;      ///< kYes substitutions
  int64_t unknowns = 0;     ///< kUnknown substitutions (degraded)
  int64_t vacuous = 0;      ///< templates answered under "no intended model"
  int64_t naive_evals = 0;  ///< sequential evaluations (naive mode only)

  void Add(const TemplateStats& o);
};

/// Folds the counters into `reg` under dd.tmpl.*. Monotonic registry:
/// publish once per accumulation, not per call.
void Publish(const TemplateStats& s, obs::MetricsRegistry* reg);

/// One template's answers. `yes` and `unknown` are disjoint subsets of
/// the candidates, lexicographically sorted; every candidate in neither
/// list answered kNo. Bindings are parallel to `vars`.
struct TemplateAnswer {
  std::vector<std::string> vars;
  std::vector<std::vector<std::string>> yes;
  std::vector<std::vector<std::string>> unknown;
  int64_t candidates = 0;
  /// Skeptical mode only: the database has no intended model under this
  /// semantics, so inference is vacuous and the candidates cover the full
  /// universe rather than the clause-mentioned domain.
  bool vacuous = false;
  TemplateStats stats;
  batch::BatchStats batch_stats;  ///< zeroed in naive mode
};

/// Answers `t` against r's database under `kind`: the substitutions θ
/// with P |~ tθ (skeptical) resp. tθ true in some intended model (brave).
/// Opens a "tmpl_answers" span on the batch/reasoner trace.
Result<TemplateAnswer> AnswerTemplate(Reasoner* r, SemanticsKind kind,
                                      const Template& t,
                                      batch::BatchMode mode,
                                      const TemplateOptions& opts = {});

/// Convenience: parse + answer in one step.
Result<TemplateAnswer> AnswerTemplateText(Reasoner* r, SemanticsKind kind,
                                          std::string_view template_text,
                                          batch::BatchMode mode,
                                          const TemplateOptions& opts = {});

/// Renders the CLI answer block (shared verbatim by ddquery's --batch and
/// interactive paths, so replaying a .queries file through the shell
/// diffs clean):
///
///   answer: X=n1 C=red
///   unknown: X=n2 C=red
///   answers: 1 yes, 1 unknown, 6 candidates
std::string FormatAnswer(const TemplateAnswer& a);

}  // namespace tmpl
}  // namespace dd

#endif  // DD_TMPL_ANSWER_H_
